// Repository-level benchmark harness: one benchmark per table and figure
// of the paper, each regenerating the experiment's data and reporting its
// headline metrics via b.ReportMetric. The cmd/ harnesses print the full
// row/series outputs; these benchmarks measure the cost of regenerating
// them and pin the headline numbers into benchmark output.
//
// Benchmarks run the workloads at tiny scale so `go test -bench=.`
// completes quickly; the cmd tools default to full scale.
package gtpin_test

import (
	"sync"
	"testing"

	"gtpin/internal/cachesim"
	"gtpin/internal/cl"
	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/features"
	"gtpin/internal/intervals"
	"gtpin/internal/isa"
	"gtpin/internal/selection"
	"gtpin/internal/simpoint"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
)

var benchScale = workloads.ScaleTiny

// fixture profiles every benchmark once and shares the results across
// benchmarks.
type fixture struct {
	specs   []*workloads.Spec
	results map[string]*workloads.Result
	evals   map[string][]*selection.Evaluation
	opts    selection.Options
}

var (
	fxOnce sync.Once
	fx     *fixture
)

func getFixture(b testing.TB) *fixture {
	b.Helper()
	fxOnce.Do(func() {
		f := &fixture{
			specs:   workloads.All(),
			results: make(map[string]*workloads.Result),
			evals:   make(map[string][]*selection.Evaluation),
			opts:    selection.Options{ApproxTarget: workloads.ApproxTarget(benchScale), Seed: 42},
		}
		cfg := device.IvyBridgeHD4000()
		for _, spec := range f.specs {
			res, err := workloads.Run(spec, benchScale, cfg, 1)
			if err != nil {
				panic(err)
			}
			f.results[spec.Name] = res
			evs, err := selection.EvaluateAll(res.Profile, f.opts)
			if err != nil {
				panic(err)
			}
			f.evals[spec.Name] = evs
		}
		fx = f
	})
	return fx
}

// BenchmarkTableI regenerates the benchmark roster: building all 25
// applications from their specs.
func BenchmarkTableI(b *testing.B) {
	specs := workloads.All()
	if len(specs) != 25 {
		b.Fatalf("expected 25 benchmarks, got %d", len(specs))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if _, err := spec.Build(benchScale); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3a regenerates the API-call breakdown: one full profiled
// run of an application per iteration, reporting the cross-suite average
// kernel/sync shares.
func BenchmarkFig3a(b *testing.B) {
	f := getFixture(b)
	var kp, sp []float64
	for _, spec := range f.specs {
		k, s, _ := f.results[spec.Name].Tracer.BreakdownPct()
		kp = append(kp, k)
		sp = append(sp, s)
	}
	cfg := device.IvyBridgeHD4000()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := f.specs[i%len(f.specs)]
		if _, err := workloads.Run(spec, benchScale, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean(kp), "kernel-pct")
	b.ReportMetric(stats.Mean(sp), "sync-pct")
}

// BenchmarkFig3b regenerates the static program structures.
func BenchmarkFig3b(b *testing.B) {
	f := getFixture(b)
	var uk, ub []float64
	for _, spec := range f.specs {
		ks := f.results[spec.Name].GTPin.Kernels()
		blocks := 0
		for _, ki := range ks {
			blocks += ki.NumBlocks
		}
		uk = append(uk, float64(len(ks)))
		ub = append(ub, float64(blocks))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			_ = f.results[spec.Name].GTPin.Kernels()
		}
	}
	b.ReportMetric(stats.Mean(uk), "kernels-avg")
	b.ReportMetric(stats.Mean(ub), "blocks-avg")
}

// BenchmarkFig3c regenerates dynamic GPU work aggregation.
func BenchmarkFig3c(b *testing.B) {
	f := getFixture(b)
	var invs, instrs float64
	for _, spec := range f.specs {
		agg := f.results[spec.Name].Profile.Aggregate()
		invs += float64(agg.KernelInvocations)
		instrs += float64(agg.Instrs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			_ = f.results[spec.Name].Profile.Aggregate()
		}
	}
	b.ReportMetric(invs/25, "invocations-avg")
	b.ReportMetric(instrs/25, "instrs-avg")
}

// BenchmarkFig4a regenerates the instruction-mix percentages.
func BenchmarkFig4a(b *testing.B) {
	f := getFixture(b)
	var comp, ctrl, sends []float64
	for _, spec := range f.specs {
		agg := f.results[spec.Name].Profile.Aggregate()
		total := float64(agg.Instrs)
		comp = append(comp, stats.Pct(float64(agg.ByCategory[isa.CatComputation]), total))
		ctrl = append(ctrl, stats.Pct(float64(agg.ByCategory[isa.CatControl]), total))
		sends = append(sends, stats.Pct(float64(agg.ByCategory[isa.CatSend]), total))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			_ = f.results[spec.Name].Profile.Aggregate()
		}
	}
	b.ReportMetric(stats.Mean(comp), "computation-pct")
	b.ReportMetric(stats.Mean(ctrl), "control-pct")
	b.ReportMetric(stats.Mean(sends), "sends-pct")
}

// BenchmarkFig4b regenerates the SIMD-width distribution.
func BenchmarkFig4b(b *testing.B) {
	f := getFixture(b)
	var w16, w8, w1 []float64
	for _, spec := range f.specs {
		agg := f.results[spec.Name].Profile.Aggregate()
		total := float64(agg.Instrs)
		w16 = append(w16, stats.Pct(float64(agg.ByWidth[isa.WidthIndex(isa.W16)]), total))
		w8 = append(w8, stats.Pct(float64(agg.ByWidth[isa.WidthIndex(isa.W8)]), total))
		w1 = append(w1, stats.Pct(float64(agg.ByWidth[isa.WidthIndex(isa.W1)]), total))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			_ = f.results[spec.Name].Profile.Aggregate()
		}
	}
	b.ReportMetric(stats.Mean(w16), "w16-pct")
	b.ReportMetric(stats.Mean(w8), "w8-pct")
	b.ReportMetric(stats.Mean(w1), "w1-pct")
}

// BenchmarkFig4c regenerates the memory-activity totals.
func BenchmarkFig4c(b *testing.B) {
	f := getFixture(b)
	var rd, wr float64
	for _, spec := range f.specs {
		agg := f.results[spec.Name].Profile.Aggregate()
		rd += float64(agg.BytesRead)
		wr += float64(agg.BytesWritten)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			_ = f.results[spec.Name].Profile.Aggregate()
		}
	}
	b.ReportMetric(rd/25, "bytes-read-avg")
	b.ReportMetric(wr/25, "bytes-written-avg")
}

// BenchmarkTableII regenerates the interval space: all three divisions of
// every profile per iteration.
func BenchmarkTableII(b *testing.B) {
	f := getFixture(b)
	var counts [intervals.NumSchemes][]float64
	for _, spec := range f.specs {
		for si, s := range intervals.Schemes {
			ivs, err := intervals.Divide(f.results[spec.Name].Profile, s, f.opts.ApproxTarget)
			if err != nil {
				b.Fatal(err)
			}
			counts[si] = append(counts[si], float64(len(ivs)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			for _, s := range intervals.Schemes {
				if _, err := intervals.Divide(f.results[spec.Name].Profile, s, f.opts.ApproxTarget); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(stats.Mean(counts[0]), "sync-avg")
	b.ReportMetric(stats.Mean(counts[1]), "approx-avg")
	b.ReportMetric(stats.Mean(counts[2]), "kernel-avg")
}

// BenchmarkTableIII regenerates the feature space: extracting all ten
// feature-vector kinds over kernel intervals of one application.
func BenchmarkTableIII(b *testing.B) {
	f := getFixture(b)
	p := f.results["cb-physics-ocean-surf"].Profile
	ivs, err := intervals.Divide(p, intervals.Kernel, f.opts.ApproxTarget)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range features.Kinds {
			_ = features.ExtractAll(p, ivs, k)
		}
	}
}

// BenchmarkFig5 regenerates the 30-combination exploration for the three
// sample applications of Figure 5.
func BenchmarkFig5(b *testing.B) {
	f := getFixture(b)
	apps := []string{"cb-physics-ocean-surf", "sandra-crypt-aes128", "sonyvegas-proj-r3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := apps[i%len(apps)]
		if _, err := selection.EvaluateAll(f.results[app].Profile, f.opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the per-application error-minimizing
// configuration study and reports its headline metrics.
func BenchmarkFig6(b *testing.B) {
	f := getFixture(b)
	var errs, spds []float64
	for _, spec := range f.specs {
		ev := selection.MinError(f.evals[spec.Name])
		errs = append(errs, ev.ErrorPct)
		spds = append(spds, ev.Speedup)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			_ = selection.MinError(f.evals[spec.Name])
		}
	}
	b.ReportMetric(stats.Mean(errs), "error-pct")
	b.ReportMetric(stats.Mean(spds), "speedup-x")
}

// BenchmarkFig7 regenerates the error-threshold co-optimization sweep.
func BenchmarkFig7(b *testing.B) {
	f := getFixture(b)
	thresholds := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var errAt10, spdAt10 []float64
	for _, spec := range f.specs {
		ev := selection.SmallestUnderThreshold(f.evals[spec.Name], 10)
		errAt10 = append(errAt10, ev.ErrorPct)
		spdAt10 = append(spdAt10, ev.Speedup)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range f.specs {
			for _, thr := range thresholds {
				_ = selection.SmallestUnderThreshold(f.evals[spec.Name], thr)
			}
		}
	}
	b.ReportMetric(stats.Mean(errAt10), "error-pct-at-10")
	b.ReportMetric(stats.Mean(spdAt10), "speedup-x-at-10")
}

func crossErrors(b *testing.B, f *fixture, cfg device.Config, seed int64) []float64 {
	b.Helper()
	var errs []float64
	for _, spec := range f.specs {
		res := f.results[spec.Name]
		best := selection.MinError(f.evals[spec.Name])
		times, err := workloads.TimedReplay(res.Recording, cfg, seed)
		if err != nil {
			b.Fatal(err)
		}
		e, err := selection.CrossError(best, res.Profile, times)
		if err != nil {
			b.Fatal(err)
		}
		errs = append(errs, e)
	}
	return errs
}

// BenchmarkFig8Trials regenerates the cross-trial validation: trial-1
// selections evaluated on a re-timed trial per iteration.
func BenchmarkFig8Trials(b *testing.B) {
	f := getFixture(b)
	base := device.IvyBridgeHD4000()
	errs := crossErrors(b, f, base, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crossErrors(b, f, base, int64(2+i%9))
	}
	b.ReportMetric(stats.Mean(errs), "error-pct")
}

// BenchmarkFig8Freq regenerates the cross-frequency validation.
func BenchmarkFig8Freq(b *testing.B) {
	f := getFixture(b)
	freqs := []int{1000, 850, 700, 550, 350}
	errs := crossErrors(b, f, device.IvyBridgeHD4000().WithFrequency(350), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := device.IvyBridgeHD4000().WithFrequency(freqs[i%len(freqs)])
		crossErrors(b, f, cfg, 1)
	}
	b.ReportMetric(stats.Mean(errs), "error-pct-350MHz")
}

// BenchmarkFig8Arch regenerates the cross-architecture validation
// (Ivy Bridge selections predicting Haswell executions).
func BenchmarkFig8Arch(b *testing.B) {
	f := getFixture(b)
	hsw := device.HaswellHD4600()
	errs := crossErrors(b, f, hsw, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crossErrors(b, f, hsw, 1)
	}
	b.ReportMetric(stats.Mean(errs), "error-pct")
}

// BenchmarkOverheadGTPin measures the Section III-C instrumented-replay
// cost (one instrumented replay of a recorded application per iteration).
func BenchmarkOverheadGTPin(b *testing.B) {
	f := getFixture(b)
	rec := f.results["cb-physics-ocean-surf"].Recording
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workloads.TimedReplay(rec, device.IvyBridgeHD4000(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadDetailed measures full detailed simulation of a
// recorded application (the cost subset selection avoids).
func BenchmarkOverheadDetailed(b *testing.B) {
	f := getFixture(b)
	res := f.results["cb-physics-ocean-surf"]
	n := len(res.Tracer.Timings())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(res.Recording, []detsim.Range{{From: 0, To: n}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadSubsetSim measures detailed simulation of only the
// selected subset — the paper's end goal.
func BenchmarkOverheadSubsetSim(b *testing.B) {
	f := getFixture(b)
	res := f.results["cb-physics-ocean-surf"]
	best := selection.MinError(f.evals["cb-physics-ocean-surf"])
	var ranges []detsim.Range
	for _, s := range best.Selections {
		iv := best.Intervals[s.Interval]
		ranges = append(ranges, detsim.Range{From: iv.Start, To: iv.End})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(res.Recording, ranges); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best.Speedup, "speedup-x")
}

// BenchmarkExtensionIntraKernel measures the intra-kernel sampling
// extension: detailed simulation of the whole program with only every
// N-th channel-group modelled at cycle level, reporting the timing
// distortion versus the full detailed run.
func BenchmarkExtensionIntraKernel(b *testing.B) {
	f := getFixture(b)
	res := f.results["cb-physics-part-sim-64k"]
	n := len(res.Tracer.Timings())
	full, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	fullRep, err := full.Run(res.Recording, []detsim.Range{{From: 0, To: n}})
	if err != nil {
		b.Fatal(err)
	}
	for _, every := range []int{1, 4, 16} {
		every := every
		b.Run("sample="+itoa(every), func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				sim, err := detsim.New(detsim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				rep, err := sim.Run(res.Recording, []detsim.Range{{From: 0, To: n, SampleGroups: every}})
				if err != nil {
					b.Fatal(err)
				}
				d := rep.DetailedTimeNs - fullRep.DetailedTimeNs
				if d < 0 {
					d = -d
				}
				lastErr = 100 * d / fullRep.DetailedTimeNs
			}
			b.ReportMetric(lastErr, "time-distortion-pct")
		})
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationSimPointDims sweeps the random-projection dimension.
func BenchmarkAblationSimPointDims(b *testing.B) {
	f := getFixture(b)
	p := f.results["cb-physics-ocean-surf"].Profile
	ivs, err := intervals.Divide(p, intervals.Kernel, f.opts.ApproxTarget)
	if err != nil {
		b.Fatal(err)
	}
	vecs := features.ExtractAll(p, ivs, features.BB)
	weights := make([]float64, len(ivs))
	for i, iv := range ivs {
		weights[i] = float64(iv.Instrs)
	}
	for _, dims := range []int{5, 15, 40} {
		cfg := simpoint.DefaultConfig(42)
		cfg.Dims = dims
		b.Run("dims="+itoa(dims), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := simpoint.Run(vecs, weights, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaxK sweeps the cluster budget (selection count).
func BenchmarkAblationMaxK(b *testing.B) {
	f := getFixture(b)
	p := f.results["sonyvegas-proj-r3"].Profile
	for _, maxK := range []int{5, 10, 20} {
		opts := f.opts
		opts.SimPoint = simpoint.DefaultConfig(42)
		opts.SimPoint.MaxK = maxK
		b.Run("maxK="+itoa(maxK), func(b *testing.B) {
			var errSum, spdSum float64
			for i := 0; i < b.N; i++ {
				ev, err := selection.Evaluate(p, selection.Config{Scheme: intervals.Sync, Feature: features.BB}, opts)
				if err != nil {
					b.Fatal(err)
				}
				errSum += ev.ErrorPct
				spdSum += ev.Speedup
			}
			b.ReportMetric(errSum/float64(b.N), "error-pct")
			b.ReportMetric(spdSum/float64(b.N), "speedup-x")
		})
	}
}

// BenchmarkAblationWeighting contrasts instruction-count-weighted BB
// vectors (the paper's Section V-B choice) against raw execution counts:
// same clustering pipeline, different vector values. Reports both errors.
func BenchmarkAblationWeighting(b *testing.B) {
	f := getFixture(b)
	p := f.results["cb-vision-facedetect"].Profile // heterogeneous block sizes
	ivs, err := intervals.Divide(p, intervals.Kernel, f.opts.ApproxTarget)
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, len(ivs))
	for i, iv := range ivs {
		weights[i] = float64(iv.Instrs)
	}
	evalWith := func(vecs []features.Vector) float64 {
		res, err := simpoint.Run(vecs, weights, simpoint.DefaultConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		measured := p.MeasuredSPI()
		projected := selection.ProjectSPI(ivs, res.Selections)
		d := measured - projected
		if d < 0 {
			d = -d
		}
		return 100 * d / measured
	}
	weighted := features.ExtractAll(p, ivs, features.BB)
	raw := make([]features.Vector, len(ivs))
	for i, iv := range ivs {
		raw[i] = features.ExtractRawBB(p, iv)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalWith(weighted)
	}
	b.ReportMetric(evalWith(weighted), "weighted-error-pct")
	b.ReportMetric(evalWith(raw), "raw-error-pct")
}

// BenchmarkAblationDrift contrasts selection error with the device's
// performance drift enabled (the default, modelling thermal/contention
// variation) and disabled — demonstrating where the methodology's
// residual error comes from.
func BenchmarkAblationDrift(b *testing.B) {
	spec := mustSpec(b, "cb-physics-ocean-surf")
	run := func(cfg device.Config) float64 {
		res, err := workloads.Run(spec, benchScale, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := selection.Evaluate(res.Profile,
			selection.Config{Scheme: intervals.Sync, Feature: features.BB},
			selection.Options{ApproxTarget: workloads.ApproxTarget(benchScale), Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		return ev.ErrorPct
	}
	withDrift := device.IvyBridgeHD4000()
	noDrift := device.IvyBridgeHD4000()
	noDrift.ThermalAmp, noDrift.ContentionAmp = 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(withDrift)
	}
	b.ReportMetric(run(withDrift), "drift-error-pct")
	b.ReportMetric(run(noDrift), "nodrift-error-pct")
}

// BenchmarkDeviceExec measures raw functional-execution throughput.
func BenchmarkDeviceExec(b *testing.B) {
	app, err := mustSpec(b, "sandra-crypt-aes128").Build(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := device.New(device.IvyBridgeHD4000())
		if err != nil {
			b.Fatal(err)
		}
		ctx := cl.NewContext(dev)
		if err := app.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSim measures the trace-driven cache simulator.
func BenchmarkCacheSim(b *testing.B) {
	h, err := cachesim.NewHierarchy(180, cachesim.HD4000L3(), cachesim.HD4000LLC())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 97 % (16 << 20)
		h.Access(addr, i%3 == 0)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func mustSpec(b *testing.B, name string) *workloads.Spec {
	b.Helper()
	s, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
