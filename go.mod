module gtpin

go 1.22
