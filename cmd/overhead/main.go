// Command overhead regenerates the paper's Section III-C measurements:
// the cost of GT-Pin profiling relative to native execution (the paper
// observes 2-10X), contrasted with the cost of detailed
// microarchitectural simulation (up to ~2,000,000X on real systems; our
// detailed simulator demonstrates the same orders-of-magnitude gap on a
// common substrate).
//
// Three quantities are reported per application:
//
//	native    — wall-clock host time of the plain (uninstrumented) run
//	gt-pin    — wall-clock host time of the GT-Pin instrumented replay
//	detailed  — wall-clock host time of full detailed simulation
//
// plus the instrumented/native instruction expansion the rewriter causes
// on the device itself.
//
// Usage:
//
//	overhead [-scale small|tiny|full] [-apps N] [-detailed] [-timeout D]
//	         [-fault-rate R] [-fault-seed S] [-watchdog N]
//
// The chaos flags mirror cmd/characterize: -fault-rate enables
// deterministic fault injection (seeded by -fault-seed) in the native
// run and both instrumented replays, and -watchdog bounds each
// enqueue's instruction budget — measuring overheads while the
// resilience layer is absorbing faults.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/gtpin"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/report"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
)

// main delegates to run so error exits unwind through deferred cleanup
// (observability export) instead of os.Exit skipping it.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scaleFlag := flag.String("scale", "small", "workload scale: full, small, or tiny")
	appsFlag := flag.Int("apps", 6, "number of applications to measure (0 = all 25)")
	detailedFlag := flag.Bool("detailed", true, "also run full detailed simulation")
	faultRate := flag.Float64("fault-rate", 0, "chaos mode: per-site fault-injection rate in [0,1]")
	faultSeed := flag.Int64("fault-seed", 1, "chaos mode: fault-injection seed")
	watchdog := flag.Uint64("watchdog", 0, "per-enqueue kernel watchdog budget in instructions (0 = off)")
	noCache := flag.Bool("no-cache", false, "disable the rewrite cache so every phase pays full instrumentation cost")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none), checked between measurement phases and classified as a unit-timeout fault")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	// The measurement phases run inline (they are the thing being
	// timed, so there is no supervised pool to thread a deadline
	// through); instead the deadline is checked at every phase
	// boundary, classified with the same taxonomy a pool abandonment
	// would use.
	checkDeadline := func(app, phase string) error {
		err := runCtx.Err()
		switch {
		case err == nil:
			return nil
		case errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("before %s of %s: %w: %v", phase, app, faults.ErrUnitTimeout, err)
		default:
			return fmt.Errorf("before %s of %s: %w", phase, app, err)
		}
	}
	if *noCache {
		gtpin.SetDefaultRewriteCache(nil)
	}
	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	sc, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("-fault-rate %v outside [0,1]", *faultRate)
	}
	var fo *workloads.FaultOptions
	if *faultRate > 0 || *watchdog > 0 {
		fo = &workloads.FaultOptions{
			Rates:    faults.Uniform(*faultRate),
			Seed:     *faultSeed,
			Watchdog: *watchdog,
		}
	}
	specs := workloads.All()
	if *appsFlag > 0 && *appsFlag < len(specs) {
		specs = specs[:*appsFlag]
	}

	report.Section(os.Stdout, "Section III-C: profiling and simulation overheads (scale=%s)", sc.Name)
	t := report.NewTable("", "Application", "Native(ms)", "GT-Pin(ms)", "GT-Pin X", "Heavy X", "Instr X", "Detailed(ms)", "Detailed X", "vs GPU X")
	var pinX, heavyX, detX, gpuX []float64
	for _, spec := range specs {
		if err := checkDeadline(spec.Name, "native run"); err != nil {
			return err
		}
		app, err := spec.Build(sc)
		if err != nil {
			return err
		}

		// Native run (uninstrumented), recorded for replays.
		dev, err := device.New(device.IvyBridgeHD4000())
		if err != nil {
			return err
		}
		if _, err := fo.Arm(dev, spec.Name, "native"); err != nil {
			return err
		}
		ctx := cl.NewContext(dev)
		fo.Apply(ctx)
		tr := cofluent.Attach(ctx)
		t0 := time.Now()
		if err := app.Run(ctx); err != nil {
			return err
		}
		nativeMs := ms(time.Since(t0))
		rec, err := cofluent.Record(spec.Name, tr, app.Programs)
		if err != nil {
			return err
		}
		nativeInstrs := deviceInstrs(tr)

		// GT-Pin instrumented replay.
		if err := checkDeadline(spec.Name, "instrumented replay"); err != nil {
			return err
		}
		idev, err := device.New(device.IvyBridgeHD4000())
		if err != nil {
			return err
		}
		if _, err := fo.Arm(idev, spec.Name, "replay"); err != nil {
			return err
		}
		t1 := time.Now()
		var g *gtpin.GTPin
		itr, err := rec.Replay(idev, func(rctx *cl.Context) error {
			fo.Apply(rctx)
			var aerr error
			g, aerr = gtpin.Attach(rctx, gtpin.Options{})
			return aerr
		})
		if err != nil {
			return err
		}
		pinMs := ms(time.Since(t1))
		instrX := float64(deviceInstrs(itr)) / float64(nativeInstrs)
		_ = g

		// GT-Pin with heavyweight tools (memory tracing + latency
		// profiling) — the top of the paper's 2-10X overhead band.
		if err := checkDeadline(spec.Name, "heavyweight replay"); err != nil {
			return err
		}
		hdev, err := device.New(device.IvyBridgeHD4000())
		if err != nil {
			return err
		}
		if _, err := fo.Arm(hdev, spec.Name, "heavy"); err != nil {
			return err
		}
		t1h := time.Now()
		if _, err := rec.Replay(hdev, func(rctx *cl.Context) error {
			fo.Apply(rctx)
			_, aerr := gtpin.Attach(rctx, gtpin.Options{MemTrace: true, Latency: true})
			return aerr
		}); err != nil {
			return err
		}
		pinHeavyMs := ms(time.Since(t1h))

		detMs := 0.0
		if *detailedFlag {
			if err := checkDeadline(spec.Name, "detailed simulation"); err != nil {
				return err
			}
			sim, err := detsim.New(detsim.DefaultConfig())
			if err != nil {
				return err
			}
			t2 := time.Now()
			if _, err := sim.Run(rec, []detsim.Range{{From: 0, To: len(tr.Timings())}}); err != nil {
				return err
			}
			detMs = ms(time.Since(t2))
		}

		px := pinMs / nativeMs
		hx := pinHeavyMs / nativeMs
		pinX = append(pinX, px)
		heavyX = append(heavyX, hx)
		row := []any{spec.Name, nativeMs, pinMs, px, hx, instrX}
		if *detailedFlag {
			dx := detMs / nativeMs
			detX = append(detX, dx)
			// The ratio the paper's motivation is about: host seconds of
			// detailed simulation per second of (modelled) GPU execution.
			gpuMs := tr.TotalKernelTimeNs() / 1e6
			gx := detMs / gpuMs
			gpuX = append(gpuX, gx)
			row = append(row, detMs, dx, gx)
		} else {
			row = append(row, "-", "-", "-")
		}
		t.Row(row...)
	}
	t.Write(os.Stdout)
	fmt.Printf("GT-Pin overhead: %.1fX mean with basic tools, %.1fX with memory tracing + latency (paper: 2-10X). ",
		stats.Mean(pinX), stats.Mean(heavyX))
	if len(detX) > 0 {
		fmt.Printf("Detailed simulation: %.0fX mean over the fast functional path, and %.0fX host time per modelled-GPU second "+
			"(paper: up to 2,000,000X over native hardware; the fast-path ratio compresses because our \"native\" execution is itself an interpreter on the same CPU).",
			stats.Mean(detX), stats.Mean(gpuX))
	}
	fmt.Println()
	return nil
}

// deviceInstrs sums the dynamic instructions the device executed across
// all invocations, as observed at kernel completion.
func deviceInstrs(tr *cofluent.Tracer) uint64 {
	var n uint64
	for _, kt := range tr.Timings() {
		n += kt.Instrs
	}
	return n
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}
