// Command gtpin is the standalone profiler: it runs one of the 25
// benchmark applications under GT-Pin instrumentation and prints the
// requested profile reports — the tool-style usage from Section III of
// the paper.
//
// Usage:
//
//	gtpin -app cb-throughput-juliaset [-scale small] [-tools basic|mem|latency|all]
//	      [-per-kernel] [-per-invocation N] [-record file.rec] [-timeout D]
//	gtpin -replay file.rec [-tools ...]    # profile a saved CoFluent recording
//
// Reports: whole-program dynamic counts, opcode and SIMD mixes, memory
// bytes, API-call breakdown; optionally per-kernel summaries, the first N
// per-invocation records, memory-trace statistics, and per-site memory
// latencies.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/export"
	"gtpin/internal/faults"
	"gtpin/internal/gtpin"
	"gtpin/internal/isa"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/profile"
	"gtpin/internal/report"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
)

// main delegates to run so error exits unwind through deferred cleanup
// (observability export) instead of os.Exit skipping it.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gtpin:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	appFlag := flag.String("app", "", "benchmark to profile (required; see -list)")
	listFlag := flag.Bool("list", false, "list available benchmarks")
	scaleFlag := flag.String("scale", "small", "workload scale: full, small, or tiny")
	toolsFlag := flag.String("tools", "basic", "instrumentation tools: basic, mem, latency, or all")
	perKernel := flag.Bool("per-kernel", false, "print per-kernel summaries")
	perInv := flag.Int("per-invocation", 0, "print the first N per-invocation records")
	jsonOut := flag.String("json", "", "write the whole-program profile summary as JSON to this file")
	hotBlocks := flag.Int("hot-blocks", 0, "print the N most executed basic blocks")
	recordPath := flag.String("record", "", "save a CoFluent recording of the run to this file")
	replayPath := flag.String("replay", "", "profile a saved recording instead of running a benchmark")
	noCache := flag.Bool("no-cache", false, "disable the rewrite cache: instrument every binary from scratch")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none); a run still going at the deadline is abandoned and classified as a unit-timeout fault")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if *listFlag {
		for _, s := range workloads.All() {
			fmt.Printf("%-28s %s\n", s.Name, s.Suite)
		}
		return nil
	}
	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if *appFlag == "" && *replayPath == "" {
		return fmt.Errorf("-app or -replay is required (use -list to see benchmarks)")
	}
	sc, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	var opts gtpin.Options
	opts.DisableCache = *noCache
	switch *toolsFlag {
	case "basic":
	case "mem":
		opts.MemTrace = true
	case "latency":
		opts.Latency = true
	case "all":
		opts.MemTrace = true
		opts.Latency = true
	default:
		return fmt.Errorf("unknown tools %q", *toolsFlag)
	}

	// The whole profiling run races a watchdog when -timeout is set:
	// a wedged run is abandoned (the goroutine cannot be killed, but
	// the process exits) and classified as a unit-timeout fault, the
	// same taxonomy kind the sweep harnesses report for hung units.
	work := func() error {
		dev, err := device.New(device.IvyBridgeHD4000())
		if err != nil {
			return err
		}
		var (
			g    *gtpin.GTPin
			tr   *cofluent.Tracer
			name string
		)
		if *replayPath != "" {
			rec, err := cofluent.LoadFile(*replayPath)
			if err != nil {
				return err
			}
			name = rec.App
			tr, err = rec.Replay(dev, func(rctx *cl.Context) error {
				var aerr error
				g, aerr = gtpin.Attach(rctx, opts)
				return aerr
			})
			if err != nil {
				return err
			}
		} else {
			spec, err := workloads.ByName(*appFlag)
			if err != nil {
				return err
			}
			name = spec.Name
			app, err := spec.Build(sc)
			if err != nil {
				return err
			}
			ctx := cl.NewContext(dev)
			g, err = gtpin.Attach(ctx, opts)
			if err != nil {
				return err
			}
			tr = cofluent.Attach(ctx)
			if err := app.Run(ctx); err != nil {
				return err
			}
			if *recordPath != "" {
				rec, err := cofluent.Record(spec.Name, tr, app.Programs)
				if err != nil {
					return err
				}
				if err := rec.SaveFile(*recordPath); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "recording saved to %s\n", *recordPath)
			}
		}

		scaleName := sc.Name
		if *replayPath != "" {
			scaleName = "recorded"
		}
		recs := g.Records()
		report.Section(os.Stdout, "GT-Pin profile: %s (scale=%s, device=%s)", name, scaleName, dev.Config().Name)

		// Whole-program summary.
		var instrs, bytesR, bytesW, blockExecs uint64
		var byCat [isa.NumCategories]uint64
		var byW [isa.NumWidths]uint64
		for _, r := range recs {
			instrs += r.Instrs
			bytesR += r.BytesRead
			bytesW += r.BytesWritten
			for c := range r.ByCategory {
				byCat[c] += r.ByCategory[c]
			}
			for w := range r.ByWidth {
				byW[w] += r.ByWidth[w]
			}
			for _, c := range r.BlockCounts {
				blockExecs += c
			}
		}
		kc, scc, oc := tr.Breakdown()
		sum := report.NewTable("Whole-program dynamic counts", "Metric", "Value")
		sum.Row("Kernel invocations", len(recs))
		sum.Row("Dynamic instructions", report.HumanCount(float64(instrs)))
		sum.Row("Basic block executions", report.HumanCount(float64(blockExecs)))
		sum.Row("Bytes read", report.HumanBytes(float64(bytesR)))
		sum.Row("Bytes written", report.HumanBytes(float64(bytesW)))
		sum.Row("API calls (kernel/sync/other)", fmt.Sprintf("%d / %d / %d", kc, scc, oc))
		sum.Write(os.Stdout)

		mix := report.NewTable("Instruction mix", "Category", "Count", "%")
		for c := 0; c < isa.NumCategories; c++ {
			mix.Row(isa.Category(c).String(), report.HumanCount(float64(byCat[c])),
				stats.Pct(float64(byCat[c]), float64(instrs)))
		}
		mix.Write(os.Stdout)

		simd := report.NewTable("SIMD widths", "Width", "Count", "%")
		for i := len(isa.Widths) - 1; i >= 0; i-- {
			simd.Row(fmt.Sprintf("W%d", isa.Widths[i]), report.HumanCount(float64(byW[i])),
				stats.Pct(float64(byW[i]), float64(instrs)))
		}
		simd.Write(os.Stdout)

		if *perKernel {
			t := report.NewTable("Per-kernel summary",
				"Kernel", "Invocations", "Instructions", "BytesR", "BytesW", "Time(ms)", "Chan Util")
			for _, s := range g.KernelSummaries() {
				t.Row(s.Name, s.Invocations, report.HumanCount(float64(s.Instrs)),
					report.HumanBytes(float64(s.BytesRead)), report.HumanBytes(float64(s.BytesWritten)),
					s.TimeNs/1e6, s.ChannelUtilization)
			}
			t.Write(os.Stdout)
		}

		if *perInv > 0 {
			t := report.NewTable("Per-invocation records", "Seq", "Kernel", "GWS", "Instrs", "BytesR", "BytesW", "SyncEpoch")
			for i, r := range recs {
				if i >= *perInv {
					break
				}
				t.Row(r.Seq, r.Kernel, r.GWS, r.Instrs, r.BytesRead, r.BytesWritten, r.SyncEpoch)
			}
			t.Write(os.Stdout)
		}

		if *hotBlocks > 0 {
			t := report.NewTable("Hottest basic blocks", "Kernel", "Block", "Executions", "Instructions")
			for _, hb := range g.HottestBlocks(*hotBlocks) {
				t.Row(hb.Kernel, hb.Block, hb.Execs, report.HumanCount(float64(hb.Instrs)))
			}
			t.Write(os.Stdout)
			executed, static := g.BlockCoverage()
			fmt.Printf("Block coverage: %d of %d static blocks executed (%.1f%%)\n\n",
				executed, static, 100*float64(executed)/float64(static))
		}

		if *jsonOut != "" {
			p, err := profile.Build(name, g, tr.TimesNs())
			if err != nil {
				return err
			}
			if err := export.ProfileJSONFile(*jsonOut, p); err != nil {
				return err
			}
			fmt.Printf("profile summary written to %s\n", *jsonOut)
		}

		if opts.MemTrace {
			mt := g.MemTrace()
			reads, writes := 0, 0
			for _, a := range mt {
				if a.Kind.Reads() {
					reads++
				}
				if a.Kind.Writes() {
					writes++
				}
			}
			fmt.Printf("Memory trace: %d entries captured (%d read sites, %d write sites), %d dropped in the ring\n\n",
				len(mt), reads, writes, g.RingDrops())
		}

		if opts.Latency {
			var lat []float64
			for _, r := range recs {
				for _, l := range r.SiteLatency {
					if l > 0 {
						lat = append(lat, l)
					}
				}
			}
			fmt.Printf("Memory latency: %.1f cycles mean, %.1f median across %d site samples\n",
				stats.Mean(lat), stats.Median(lat), len(lat))
		}
		return nil
	}
	if *timeout <= 0 {
		return work()
	}
	done := make(chan error, 1)
	go func() { done <- work() }()
	tm := time.NewTimer(*timeout)
	defer tm.Stop()
	select {
	case err := <-done:
		return err
	case <-tm.C:
		return fmt.Errorf("%w after %v (profiling run abandoned)", faults.ErrUnitTimeout, *timeout)
	}
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}
