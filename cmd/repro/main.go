// Command repro is the one-shot reproduction driver: it runs the entire
// pipeline — characterization, interval/feature exploration, selection,
// co-optimization, and cross-trial/frequency/architecture validation —
// and prints each headline number of the paper next to the measured
// value, with a band verdict.
//
// Usage:
//
//	repro [-scale small|full|tiny] [-skip-validate] [-state-dir DIR] [-resume] [-timeout D]
//	      [-fleet N]
//
// At -scale small the whole run takes a couple of minutes; -scale full
// matches the committed reference outputs under results/.
//
// With -state-dir the profiling sweep is journaled: each application's
// profile artifact and CoFluent recording are persisted atomically, and
// a killed run continued with -resume skips journaled-complete
// applications (digest-verified) and reproduces the same headline
// numbers an uninterrupted run prints. See docs/checkpointing.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/fleet"
	"gtpin/internal/intervals"
	"gtpin/internal/isa"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/par"
	"gtpin/internal/profile"
	"gtpin/internal/report"
	"gtpin/internal/runstate"
	"gtpin/internal/selection"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
)

type check struct {
	name     string
	paper    string
	measured string
	ok       bool
}

// main delegates to run so error exits unwind through deferred cleanup
// (journal close, signal handler release, observability export) instead
// of os.Exit skipping it.
func main() {
	fleet.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scaleFlag := flag.String("scale", "small", "workload scale: full, small, or tiny")
	skipValidate := flag.Bool("skip-validate", false, "skip the Figure 8 validations (the slowest step)")
	stateDir := flag.String("state-dir", "", "checkpoint directory: journal each application and persist profiles and recordings atomically")
	resume := flag.Bool("resume", false, "continue a journaled run from -state-dir: skip completed applications, re-run in-flight ones")
	workers := flag.Int("workers", 0, "concurrent sweep shards (0 = GOMAXPROCS, 1 = serial); reports are identical at any setting")
	fleetN := flag.Int("fleet", 0, "distribute the profiling sweep across N worker processes with lease-based fault tolerance (0 = in-process pool); requires -state-dir so recordings survive the handoff")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none); units still running at the deadline are abandoned and classified as unit-timeout faults")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	opts := selection.Options{ApproxTarget: workloads.ApproxTarget(sc), Seed: 42}
	base := device.IvyBridgeHD4000()

	state, err := runstate.OpenSweep(*stateDir, *resume, "repro", os.Stderr)
	if err != nil {
		return err
	}
	if state != nil {
		defer state.Close()
	}
	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if *stateDir != "" {
		obsSess.SetDefaultMetricsPath(filepath.Join(*stateDir, "metrics.json"))
	}

	var checks []check
	add := func(name, paper, measured string, ok bool) {
		checks = append(checks, check{name, paper, measured, ok})
	}

	// ---- Profile all 25 applications. ----
	// Every downstream number is computed from each unit's durable
	// artifact (profile + API-call counts) and, for the replay
	// validations, its persisted recording — so a resumed run reproduces
	// the same headline numbers without re-profiling completed apps.
	type appRun struct {
		spec      *workloads.Spec
		art       *workloads.Artifact
		prof      *profile.Profile
		recording func() (*cofluent.Recording, error)
		evals     []*selection.Evaluation
	}
	specs := workloads.All()
	units := make([]workloads.Unit, len(specs))
	for i, spec := range specs {
		units[i] = workloads.Unit{Spec: spec, Scale: sc, Cfg: base, TrialSeed: 1}
	}
	progress := func(o workloads.Outcome) {
		switch {
		case o.Err != nil:
			fmt.Fprintf(os.Stderr, "FAILED   %-28s %v\n", o.Unit.Spec.Name, o.Err)
		case o.Resumed:
			fmt.Fprintf(os.Stderr, "resumed  %-28s\n", o.Unit.Spec.Name)
		default:
			fmt.Fprintf(os.Stderr, "profiled %-28s\n", o.Unit.Spec.Name)
		}
	}
	var outs []workloads.Outcome
	var perr error
	if *fleetN > 0 {
		// The replay validations need each unit's recording, and a fleet
		// worker's in-memory recording dies with the worker — the persisted
		// blob in the state dir is the only handoff that survives.
		if state == nil {
			return fmt.Errorf("-fleet requires -state-dir (recordings must be persisted for replay validation)")
		}
		outs, perr = fleet.Run(ctx, units, fleet.Options{
			Dir:            filepath.Join(*stateDir, "fleet"),
			State:          state,
			Resume:         *resume,
			Workers:        *fleetN,
			SaveRecordings: true,
			OnOutcome:      progress,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
	} else {
		outs, perr = workloads.RunPool(ctx, units, workloads.PoolOptions{
			State:          state,
			Resume:         *resume,
			SaveRecordings: state != nil,
			Workers:        *workers,
			OnOutcome:      progress,
		})
	}
	if perr != nil {
		if state != nil {
			fmt.Fprintf(os.Stderr, "repro: interrupted; progress journaled in %s — continue with -resume\n", *stateDir)
		}
		return perr
	}
	apps := make([]appRun, len(specs))
	for i, o := range outs {
		if o.Err != nil {
			// The reproduction needs every application; a journaled run
			// can be continued after the failure is addressed.
			return fmt.Errorf("%s: %w", specs[i].Name, o.Err)
		}
		prof, err := o.Artifact.Profile()
		if err != nil {
			return err
		}
		evals, err := selection.EvaluateAll(prof, opts)
		if err != nil {
			return err
		}
		apps[i] = appRun{spec: specs[i], art: o.Artifact, prof: prof, evals: evals, recording: recordingSource(o, state)}
	}
	add("Table I: benchmark roster", "25 apps in 4 suites",
		fmt.Sprintf("%d apps", len(apps)), len(apps) == 25)

	// ---- Figure 3/4 characterization. ----
	var kPct, sPct, comp, ctrl []float64
	var w16w8, w4 float64
	var totalInstr float64
	for _, a := range apps {
		k, s, _ := a.art.BreakdownPct()
		kPct = append(kPct, k)
		sPct = append(sPct, s)
		agg := a.prof.Aggregate()
		ti := float64(agg.Instrs)
		comp = append(comp, stats.Pct(float64(agg.ByCategory[isa.CatComputation]), ti))
		ctrl = append(ctrl, stats.Pct(float64(agg.ByCategory[isa.CatControl]), ti))
		w16w8 += float64(agg.ByWidth[isa.WidthIndex(isa.W16)] + agg.ByWidth[isa.WidthIndex(isa.W8)])
		w4 += float64(agg.ByWidth[isa.WidthIndex(isa.W4)])
		totalInstr += ti
	}
	mk := stats.Mean(kPct)
	add("Fig 3a: mean kernel-call share", "~15%",
		fmt.Sprintf("%.1f%%", mk), mk > 8 && mk < 30)
	ms := stats.Mean(sPct)
	add("Fig 3a: mean sync-call share", "6.8%",
		fmt.Sprintf("%.1f%%", ms), ms > 3 && ms < 12)
	mc := stats.Mean(comp)
	add("Fig 4a: mean computation share", "36.2%",
		fmt.Sprintf("%.1f%%", mc), mc > 28 && mc < 45)
	mct := stats.Mean(ctrl)
	add("Fig 4a: mean control share", "7.3%",
		fmt.Sprintf("%.1f%%", mct), mct > 4 && mct < 13)
	w168 := 100 * w16w8 / totalInstr
	add("Fig 4b: SIMD16+SIMD8 share", "97%",
		fmt.Sprintf("%.1f%%", w168), w168 > 85)
	w4pct := 100 * w4 / totalInstr
	add("Fig 4b: SIMD4 share", "<0.1%",
		fmt.Sprintf("%.2f%%", w4pct), w4pct < 1)

	// ---- Table II: interval counts. ----
	for si, s := range intervals.Schemes {
		var counts []float64
		for _, a := range apps {
			ivs, err := intervals.Divide(a.prof, s, opts.ApproxTarget)
			if err != nil {
				return err
			}
			counts = append(counts, float64(len(ivs)))
		}
		paper := []string{"56/545/2115", "55/916/3121", "55/4749/18157"}[si]
		add(fmt.Sprintf("Table II: %s intervals (min/avg/max)", s),
			paper,
			fmt.Sprintf("%.0f/%.0f/%.0f", stats.Min(counts), stats.Mean(counts), stats.Max(counts)),
			stats.Mean(counts) > 10)
	}

	// ---- Figure 6: per-app error-minimizing configuration. ----
	var errs, spds []float64
	bb := 0
	for _, a := range apps {
		best := selection.MinError(a.evals)
		errs = append(errs, best.ErrorPct)
		spds = append(spds, best.Speedup)
		if best.Config.Feature.IsBlockBased() {
			bb++
		}
	}
	me := stats.Mean(errs)
	add("Fig 6: avg error (per-app best config)", "0.3%",
		fmt.Sprintf("%.2f%%", me), me < 1.5)
	we := stats.Max(errs)
	add("Fig 6: worst error", "2.1%",
		fmt.Sprintf("%.2f%%", we), we < 10)
	msd := stats.Mean(spds)
	add("Fig 6: avg simulation speedup", "35X (6X-6509X)",
		fmt.Sprintf("%.0fX", msd), msd > 5)
	// Reduced scales blur the BB-vs-KN gap (fewer intervals per app); the
	// full-scale run reaches 19/25.
	add("Fig 6: block-based features preferred", "20/25",
		fmt.Sprintf("%d/25", bb), bb >= 10)

	// ---- Figure 7: co-optimization monotonicity and the 10% point. ----
	mono := true
	prev := 0.0
	var err10, spd10 []float64
	for _, thr := range []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		var spdsT []float64
		for _, a := range apps {
			ev := selection.SmallestUnderThreshold(a.evals, thr)
			spdsT = append(spdsT, ev.Speedup)
			if thr == 10 {
				err10 = append(err10, ev.ErrorPct)
				spd10 = append(spd10, ev.Speedup)
			}
		}
		m := stats.Mean(spdsT)
		if m < prev-1e-9 {
			mono = false
		}
		prev = m
	}
	add("Fig 7: speedup monotone in threshold", "monotone", boolWord(mono), mono)
	add("Fig 7: avg error at 10% threshold", "3.0%",
		fmt.Sprintf("%.2f%%", stats.Mean(err10)), stats.Mean(err10) < 6)
	add("Fig 7: avg speedup at 10% threshold", "223X",
		fmt.Sprintf("%.0fX", stats.Mean(spd10)), stats.Mean(spd10) > 50)

	// ---- Figure 8: validations. ----
	if !*skipValidate {
		crossErrs := func(cfg device.Config, seed int64) ([]float64, error) {
			out := make([]float64, len(apps))
			if err := par.ForEachN(ctx, len(apps), *workers, func(i int) error {
				best := selection.MinError(apps[i].evals)
				rec, err := apps[i].recording()
				if err != nil {
					return err
				}
				times, err := workloads.TimedReplay(rec, cfg, seed)
				if err != nil {
					return err
				}
				e, err := selection.CrossError(best, apps[i].prof, times)
				if err != nil {
					return err
				}
				out[i] = e
				return nil
			}); err != nil {
				return nil, err
			}
			return out, nil
		}
		fmt.Fprintln(os.Stderr, "validating trials / frequencies / Haswell ...")
		trial, err := crossErrs(base, 2)
		if err != nil {
			return err
		}
		under3 := 0
		for _, e := range trial {
			if e < 3 {
				under3++
			}
		}
		add("Fig 8: cross-trial errors below 3%", "most", fmt.Sprintf("%d/25", under3), under3 >= 20)
		freq, err := crossErrs(base.WithFrequency(350), 1)
		if err != nil {
			return err
		}
		under3 = 0
		for _, e := range freq {
			if e < 3 {
				under3++
			}
		}
		add("Fig 8: 350MHz errors below 3%", "most", fmt.Sprintf("%d/25", under3), under3 >= 20)
		hsw, err := crossErrs(device.HaswellHD4600(), 1)
		if err != nil {
			return err
		}
		under3 = 0
		for _, e := range hsw {
			if e < 3 {
				under3++
			}
		}
		add("Fig 8: Haswell errors below 3%", "most (worst ~11%)", fmt.Sprintf("%d/25", under3), under3 >= 18)

		ivb, err := workloads.LuxMarkScore(base)
		if err != nil {
			return err
		}
		hswScore, err := workloads.LuxMarkScore(device.HaswellHD4600())
		if err != nil {
			return err
		}
		ratio := hswScore / ivb
		add("Fig 8: LuxMark HD4600/HD4000 ratio", "1.30x (351/269)",
			fmt.Sprintf("%.2fx", ratio), ratio > 1.1 && ratio < 1.6)
	}

	// ---- Verdict. ----
	t := report.NewTable(fmt.Sprintf("Reproduction summary (scale=%s)", sc.Name),
		"Check", "Paper", "Measured", "Verdict")
	passed := 0
	for _, c := range checks {
		verdict := "IN BAND"
		if !c.ok {
			verdict = "OUT OF BAND"
		} else {
			passed++
		}
		t.Row(c.name, c.paper, c.measured, verdict)
	}
	t.Write(os.Stdout)
	fmt.Printf("%d/%d checks in band\n", passed, len(checks))
	if passed < len(checks) {
		return fmt.Errorf("%d of %d checks out of band", len(checks)-passed, len(checks))
	}
	return nil
}

// recordingSource returns the replay-validation recording for one
// settled unit: the in-memory one when the unit executed this process,
// or the persisted blob when it was resumed from the journal or
// executed by a fleet worker (whose in-memory state died with it).
// Journaled repro runs persist recordings alongside artifacts in both
// cases.
func recordingSource(o workloads.Outcome, state *runstate.Dir) func() (*cofluent.Recording, error) {
	if o.Result != nil {
		rec := o.Result.Recording
		return func() (*cofluent.Recording, error) { return rec, nil }
	}
	key := o.Unit.Key()
	return func() (*cofluent.Recording, error) {
		if state == nil || !o.Artifact.HasRecording {
			return nil, fmt.Errorf("repro: no persisted recording for unit %s", key)
		}
		return cofluent.LoadFile(state.UnitFile(key, ".rec"))
	}
}

func boolWord(b bool) string {
	if b {
		return "monotone"
	}
	return "NOT monotone"
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}
