// Command obscheck validates observability artifacts against their
// schemas: a Chrome trace-event JSON written by -trace and/or a
// metrics.json snapshot written by -metrics. CI's bench-smoke target
// runs it on the artifacts of a tiny traced sweep, so a schema
// regression fails the build instead of producing files chrome://tracing
// or a dashboard cannot load.
//
// Usage:
//
//	obscheck [-trace trace.json] [-metrics metrics.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"gtpin/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON artifact to validate")
	metricsPath := flag.String("metrics", "", "metrics.json artifact to validate")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" {
		return fmt.Errorf("nothing to check: pass -trace and/or -metrics")
	}
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			return err
		}
		if err := obs.ValidateTrace(data); err != nil {
			return err
		}
		fmt.Printf("obscheck: %s: valid %s artifact (%d bytes)\n", *tracePath, obs.TraceSchema, len(data))
	}
	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			return err
		}
		if err := obs.ValidateMetrics(data); err != nil {
			return err
		}
		fmt.Printf("obscheck: %s: valid %s artifact (%d bytes)\n", *metricsPath, obs.MetricsSchema, len(data))
	}
	return nil
}
