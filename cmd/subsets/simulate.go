package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/intervals"
	"gtpin/internal/par"
	"gtpin/internal/report"
	"gtpin/internal/runstate"
	"gtpin/internal/selection"
	"gtpin/internal/workloads"
)

// This file is the paper's step 6 made parallel: actually simulate the
// selected interval subset in detail. Two execution modes produce
// byte-identical stdout:
//
//   - serial: one fast-forwarding detsim.Run per selected interval —
//     every run replays the program from the start, so total cost grows
//     with where the intervals sit in the program.
//   - snippets: one functional capture pass extracts each interval (plus
//     warmup) as a portable snippet, then all intervals replay
//     concurrently on -workers private simulators, skipping every
//     fast-forwarded prefix.
//
// The mode and timings are narrated on stderr only, so `cmp` across
// modes and worker counts is the equivalence check (make snippets-smoke).

// simOptions configures the subset simulation step.
type simOptions struct {
	Apps     []string
	Mode     string // "snippets" or "serial"
	Warmup   int
	Workers  int
	Scale    workloads.Scale
	Device   device.Config
	StateDir string // when set, sealed snippets persist under <dir>/snippets
}

// runSimulate simulates each application's error-minimizing subset
// selection in detail and prints per-interval and aggregate results.
func runSimulate(ctx context.Context, w io.Writer, evals map[string][]*selection.Evaluation, opt simOptions) error {
	report.Section(w, "Subset simulation: detailed replay of the selected intervals")
	for _, app := range opt.Apps {
		evs, ok := evals[app]
		if !ok {
			return fmt.Errorf("simulate: no evaluations for %s", app)
		}
		if err := simulateApp(ctx, w, app, selection.MinError(evs), opt); err != nil {
			return err
		}
	}
	return nil
}

func simulateApp(ctx context.Context, w io.Writer, app string, best *selection.Evaluation, opt simOptions) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	selected := make([]int, len(best.Selections))
	for i, s := range best.Selections {
		selected[i] = s.Interval
	}
	windows, err := intervals.SelectedWindows(best.Intervals, selected, opt.Warmup)
	if err != nil {
		return fmt.Errorf("simulate %s: %w", app, err)
	}
	ranges := make([]detsim.Range, len(windows))
	for i, win := range windows {
		ranges[i] = detsim.Range{From: win.From, To: win.To, Warmup: win.Warmup}
	}

	rec, err := workloads.Record(spec, opt.Scale, opt.Device)
	if err != nil {
		return err
	}

	simCfg := detsim.DefaultConfig()
	simCfg.Device = opt.Device

	start := time.Now()
	var reps []*detsim.Report
	switch opt.Mode {
	case "serial":
		reps = make([]*detsim.Report, len(ranges))
		for i, r := range ranges {
			sim, err := detsim.New(simCfg)
			if err != nil {
				return err
			}
			if reps[i], err = sim.Run(rec, []detsim.Range{r}); err != nil {
				return fmt.Errorf("simulate %s interval %d: %w", app, i, err)
			}
		}
	case "snippets":
		capSim, err := detsim.New(simCfg)
		if err != nil {
			return err
		}
		snips, err := capSim.Capture(rec, ranges)
		if err != nil {
			return fmt.Errorf("simulate %s: capture: %w", app, err)
		}
		if opt.StateDir != "" {
			if err := persistSnippets(opt.StateDir, app, snips); err != nil {
				return err
			}
		}
		reps, err = par.Map(ctx, len(snips), opt.Workers, func(i int) (*detsim.Report, error) {
			sim, err := detsim.New(simCfg)
			if err != nil {
				return nil, err
			}
			rep, err := sim.RunSnippet(snips[i])
			if err != nil {
				return nil, fmt.Errorf("simulate %s interval %d: %w", app, i, err)
			}
			return rep, nil
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -sim-mode %q (want snippets or serial)", opt.Mode)
	}
	elapsed := time.Since(start)

	// Everything below prints only quantities both modes agree on
	// byte-for-byte; mode and wall time are stderr-only narration.
	agg := detsim.MergeReports(reps)
	t := report.NewTable(fmt.Sprintf("%s (%s, %d intervals)", app, best.Config, len(ranges)),
		"Interval", "Warmup", "Invocations", "Detailed Instrs", "Detailed ms", "Warmup ms")
	for _, rep := range reps {
		rr := rep.Ranges[0]
		t.Row(fmt.Sprintf("[%d, %d)", rr.Range.From, rr.Range.To), rr.Range.Warmup,
			rr.Invocations, rr.DetailedInstrs, rr.DetailedTimeNs/1e6, rep.WarmupTimeNs/1e6)
	}
	t.Write(w)
	var hits, accesses uint64
	for _, c := range agg.Cache {
		hits += c.Hits
		accesses += c.Accesses
	}
	hitPct := 0.0
	if accesses > 0 {
		hitPct = 100 * float64(hits) / float64(accesses)
	}
	fmt.Fprintf(w, "%s: %d detailed + %d warmup invocations, %d instrs, modeled %.3f ms detailed + %.3f ms warmup, cache hit %.2f%%, %d DRAM accesses\n",
		app, agg.Detailed, agg.Warmed, agg.DetailedInstrs,
		agg.DetailedTimeNs/1e6, agg.WarmupTimeNs/1e6, hitPct, agg.MemAccesses)

	fmt.Fprintf(os.Stderr, "simulated %-28s %d intervals in %v (%s mode)\n", app, len(ranges), elapsed.Round(time.Millisecond), opt.Mode)
	return nil
}

// persistSnippets seals each captured snippet into
// <state-dir>/snippets/<app>-<i>.snip. Sealed files carry their own
// digest header, so a later process can replay them without the
// recording — and bit rot fails loudly instead of skewing results.
func persistSnippets(dir, app string, snips []*detsim.Snippet) error {
	base := filepath.Join(dir, "snippets")
	for i, sn := range snips {
		data, err := sn.Encode()
		if err != nil {
			return err
		}
		path := filepath.Join(base, fmt.Sprintf("%s-%d.snip", app, i))
		if _, err := runstate.WriteSealed(path, data); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "sealed %d snippets under %s\n", len(snips), base)
	return nil
}

// parseApps splits a comma-separated -sim-apps list, defaulting to the
// Figure 5 sample applications.
func parseApps(s string) []string {
	if s == "" {
		return fig5Apps
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
