// Command subsets regenerates the paper's simulation subset selection
// study (Section V): Table II (the interval space), Table III (the
// feature space), Figure 5 (error and selection size for all 30
// interval/feature combinations on three sample applications), Figure 6
// (per-application error-minimizing configurations), Figure 7 (joint
// error/selection-size optimization under error thresholds), and the
// Section V-B best-average universal configuration.
//
// Usage:
//
//	subsets [-scale full|small|tiny] [-fig table2|table3|5|6|7|bestavg|all]
//	        [-csv DIR] [-state-dir DIR] [-resume] [-timeout D] [-fleet N]
//
// With -state-dir the profiling sweep (the expensive step) is journaled
// and each profile persisted atomically, so a killed run continued with
// -resume skips journaled-complete applications and produces the same
// tables. CSV exports are written atomically (temp file + rename) in
// all modes. See docs/checkpointing.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"gtpin/internal/device"
	"gtpin/internal/export"
	"gtpin/internal/features"
	"gtpin/internal/fleet"
	"gtpin/internal/intervals"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/par"
	"gtpin/internal/profile"
	"gtpin/internal/report"
	"gtpin/internal/runstate"
	"gtpin/internal/selection"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
	"gtpin/internal/xlate"
)

// fig5Apps are the three sample applications shown in Figure 5.
var fig5Apps = []string{"cb-physics-ocean-surf", "sandra-crypt-aes128", "sonyvegas-proj-r3"}

// main delegates to run so error exits unwind through deferred cleanup
// (journal close, signal handler release, observability export) instead
// of os.Exit skipping it.
func main() {
	fleet.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "subsets:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scaleFlag := flag.String("scale", "full", "workload scale: full, small, or tiny")
	figFlag := flag.String("fig", "all", "output: table2, table3, 5, 6, 7, bestavg, or all")
	csvDir := flag.String("csv", "", "directory to write per-app evaluation CSVs and selection work lists (atomic writes)")
	stateDir := flag.String("state-dir", "", "checkpoint directory: journal each application and persist profiles atomically")
	resume := flag.Bool("resume", false, "continue a journaled run from -state-dir: skip completed applications, re-run in-flight ones")
	workers := flag.Int("workers", 0, "concurrent sweep shards (0 = GOMAXPROCS, 1 = serial); reports are identical at any setting")
	simFlag := flag.Bool("simulate", false, "after selection, simulate each application's error-minimizing subset in detail")
	simMode := flag.String("sim-mode", "snippets", "subset simulation mode: snippets (parallel interval replay) or serial (per-interval fast-forwarding); stdout is byte-identical across modes")
	simApps := flag.String("sim-apps", "", "comma-separated applications to simulate (default: the Figure 5 sample apps)")
	simWarmup := flag.Int("sim-warmup", 2, "cache-warming invocations preceding each simulated interval")
	fleetN := flag.Int("fleet", 0, "distribute the profiling sweep across N worker processes with lease-based fault tolerance (0 = in-process pool); reports are identical either way")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none); units still running at the deadline are abandoned and classified as unit-timeout faults")
	xlFlags := xlate.RegisterFlags(flag.CommandLine)
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()
	if err := xlFlags.Install(); err != nil {
		return err
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	opts := selection.Options{ApproxTarget: workloads.ApproxTarget(sc), Seed: 42}

	state, err := runstate.OpenSweep(*stateDir, *resume, "subsets", os.Stderr)
	if err != nil {
		return err
	}
	if state != nil {
		defer state.Close()
	}
	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if *stateDir != "" {
		obsSess.SetDefaultMetricsPath(filepath.Join(*stateDir, "metrics.json"))
	}

	if show(*figFlag, "table3") {
		printTableIII()
	}

	// Profile every application once; all interval/feature exploration
	// reuses the same profiles (the paper's "no additional overhead"
	// observation in Section V-C). The sweep runs as a supervised pool:
	// with -state-dir each profile is journaled and persisted, so a
	// resumed run rebuilds the identical tables from the artifacts.
	cfg := device.IvyBridgeHD4000()
	specs := workloads.All()
	units := make([]workloads.Unit, len(specs))
	for i, spec := range specs {
		units[i] = workloads.Unit{Spec: spec, Scale: sc, Cfg: cfg, TrialSeed: 1}
	}
	progress := func(o workloads.Outcome) {
		switch {
		case o.Err != nil:
			fmt.Fprintf(os.Stderr, "FAILED   %-28s %v\n", o.Unit.Spec.Name, o.Err)
		case o.Resumed:
			fmt.Fprintf(os.Stderr, "resumed  %-28s\n", o.Unit.Spec.Name)
		default:
			fmt.Fprintf(os.Stderr, "profiled %-28s\n", o.Unit.Spec.Name)
		}
	}
	var outs []workloads.Outcome
	var perr error
	if *fleetN > 0 {
		fleetDir := ""
		if *stateDir != "" {
			fleetDir = filepath.Join(*stateDir, "fleet")
		}
		outs, perr = fleet.Run(ctx, units, fleet.Options{
			Dir:       fleetDir,
			State:     state,
			Resume:    *resume,
			Workers:   *fleetN,
			OnOutcome: progress,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
	} else {
		outs, perr = workloads.RunPool(ctx, units, workloads.PoolOptions{
			State:     state,
			Resume:    *resume,
			Workers:   *workers,
			OnOutcome: progress,
		})
	}
	if perr != nil {
		if state != nil {
			fmt.Fprintf(os.Stderr, "subsets: interrupted; progress journaled in %s — continue with -resume\n", *stateDir)
		}
		return perr
	}
	profiles := make(map[string]*profile.Profile)
	var order []string
	for i, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", specs[i].Name, o.Err)
		}
		p, err := o.Artifact.Profile()
		if err != nil {
			return err
		}
		profiles[specs[i].Name] = p
		order = append(order, specs[i].Name)
	}

	if show(*figFlag, "table2") {
		if err := printTableII(order, profiles, opts); err != nil {
			return err
		}
	}

	// The 30-combination evaluation per application.
	evals := make(map[string][]*selection.Evaluation)
	needEvals := show(*figFlag, "5") || show(*figFlag, "6") || show(*figFlag, "7") || show(*figFlag, "bestavg") || *simFlag
	if needEvals {
		all := make([][]*selection.Evaluation, len(order))
		if err := par.ForEachN(ctx, len(order), *workers, func(i int) error {
			evs, err := selection.EvaluateAll(profiles[order[i]], opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "evaluated 30 configurations for %-28s\n", order[i])
			all[i] = evs
			return nil
		}); err != nil {
			return err
		}
		for i, name := range order {
			evals[name] = all[i]
		}
	}

	if *csvDir != "" && needEvals {
		if err := writeCSVs(*csvDir, order, evals); err != nil {
			return err
		}
	}

	if show(*figFlag, "5") {
		printFig5(evals)
	}
	if show(*figFlag, "bestavg") {
		printBestAvg(order, evals)
	}
	if show(*figFlag, "6") {
		printFig6(order, evals)
	}
	if show(*figFlag, "7") {
		printFig7(order, evals)
	}
	if *simFlag {
		if err := runSimulate(ctx, os.Stdout, evals, simOptions{
			Apps:     parseApps(*simApps),
			Mode:     *simMode,
			Warmup:   *simWarmup,
			Workers:  *workers,
			Scale:    sc,
			Device:   cfg,
			StateDir: *stateDir,
		}); err != nil {
			return err
		}
	}
	return nil
}

func printTableII(order []string, profiles map[string]*profile.Profile, opts selection.Options) error {
	report.Section(os.Stdout, "Table II: the program interval space (intervals per program)")
	t := report.NewTable("", "Interval Bound", "Relative Size", "Min", "Avg", "Max")
	sizes := map[intervals.Scheme]string{
		intervals.Sync: "large", intervals.Approx: "medium", intervals.Kernel: "small",
	}
	for _, s := range intervals.Schemes {
		var counts []float64
		for _, name := range order {
			ivs, err := intervals.Divide(profiles[name], s, opts.ApproxTarget)
			if err != nil {
				return err
			}
			counts = append(counts, float64(len(ivs)))
		}
		t.Row(s.String(), sizes[s], stats.Min(counts), stats.Mean(counts), stats.Max(counts))
	}
	t.Write(os.Stdout)
	return nil
}

func printTableIII() {
	report.Section(os.Stdout, "Table III: the program feature space")
	t := report.NewTable("", "Identifier", "Feature Key", "Block-based", "Memory-augmented")
	desc := map[features.Kind]string{
		features.KN:        "Kernel",
		features.KNArgs:    "Kernel, Argument Values",
		features.KNGWS:     "Kernel, Global Work Size",
		features.KNArgsGWS: "Kernel, Argument Values, Global Work Size",
		features.KNRW:      "Kernel, # Bytes Read, # Bytes Written",
		features.BB:        "Basic Block",
		features.BBR:       "Basic Block, # Bytes Read",
		features.BBW:       "Basic Block, # Bytes Written",
		features.BBRW:      "Basic Block, # Bytes Read, # Bytes Written",
		features.BBRpW:     "Basic Block, # Bytes Read + # Bytes Written",
	}
	for _, k := range features.Kinds {
		t.Row(k.String(), desc[k], k.IsBlockBased(), k.UsesMemory())
	}
	t.Write(os.Stdout)
}

func printFig5(evals map[string][]*selection.Evaluation) {
	report.Section(os.Stdout, "Figure 5: feature and division space exploration (3 sample apps)")
	for _, app := range fig5Apps {
		evs, ok := evals[app]
		if !ok {
			continue
		}
		t := report.NewTable(app, "Config", "Intervals", "Error%", "Selection% of Instrs", "Speedup")
		for _, ev := range evs {
			t.Row(ev.Config.String(), ev.NumIntervals, ev.ErrorPct, 100*ev.SelectedFrac, ev.Speedup)
		}
		t.Write(os.Stdout)
	}
}

func printBestAvg(order []string, evals map[string][]*selection.Evaluation) {
	report.Section(os.Stdout, "Section V-B: best universal interval/feature combination")
	configs := selection.AllConfigs()
	t := report.NewTable("", "Config", "Avg Error%", "Worst Error%", "Avg Selection%", "Worst Selection%", "Avg Speedup")
	type row struct {
		cfg              selection.Config
		avgErr, worstErr float64
		avgSel, worstSel float64
		avgSpd           float64
	}
	var best *row
	for ci, cfg := range configs {
		var errs, sels, spds []float64
		for _, name := range order {
			ev := evals[name][ci]
			errs = append(errs, ev.ErrorPct)
			sels = append(sels, 100*ev.SelectedFrac)
			spds = append(spds, ev.Speedup)
		}
		r := row{cfg: cfg, avgErr: stats.Mean(errs), worstErr: stats.Max(errs),
			avgSel: stats.Mean(sels), worstSel: stats.Max(sels), avgSpd: stats.GeoMean(spds)}
		t.Row(cfg.String(), r.avgErr, r.worstErr, r.avgSel, r.worstSel, r.avgSpd)
		if best == nil || r.avgErr < best.avgErr {
			b := r
			best = &b
		}
	}
	t.Write(os.Stdout)
	fmt.Printf("Best universal config: %s (avg error %.2f%%, avg selection %.2f%% of instructions, worst error %.2f%%, worst selection %.2f%%)\n",
		best.cfg, best.avgErr, best.avgSel, best.worstErr, best.worstSel)
	fmt.Printf("Paper: BB + synchronization intervals, 1.5%% avg error, 1.9%% selection (53X), worst 8.8%% error / 24.0%% selection\n")
}

func printFig6(order []string, evals map[string][]*selection.Evaluation) {
	report.Section(os.Stdout, "Figure 6: per-application error-minimizing configuration")
	t := report.NewTable("", "Application", "Best Config", "Intervals", "Error%", "Speedup")
	var errs, spds []float64
	schemeCount := map[intervals.Scheme]int{}
	bbCount, memCount := 0, 0
	minSpd, maxSpd := 0.0, 0.0
	for _, name := range order {
		ev := selection.MinError(evals[name])
		t.Row(name, ev.Config.String(), ev.NumIntervals, ev.ErrorPct, ev.Speedup)
		errs = append(errs, ev.ErrorPct)
		spds = append(spds, ev.Speedup)
		schemeCount[ev.Config.Scheme]++
		if ev.Config.Feature.IsBlockBased() {
			bbCount++
		}
		if ev.Config.Feature.UsesMemory() {
			memCount++
		}
		if minSpd == 0 || ev.Speedup < minSpd {
			minSpd = ev.Speedup
		}
		if ev.Speedup > maxSpd {
			maxSpd = ev.Speedup
		}
	}
	t.Write(os.Stdout)
	fmt.Printf("Average error %.2f%% (paper: 0.3%%), worst %.2f%% (paper: 2.1%%)\n", stats.Mean(errs), stats.Max(errs))
	fmt.Printf("Average speedup %.0fX (paper: 35X), range %.0fX-%.0fX (paper: 6X-6509X)\n",
		stats.Mean(spds), minSpd, maxSpd)
	fmt.Printf("Block-based features chosen by %d/25 (paper: 20/25); memory features by %d/25 (paper: 20/25)\n", bbCount, memCount)
	fmt.Printf("Interval choices: %d sync, %d approx-100M, %d single-kernel (paper: 11/11/3)\n",
		schemeCount[intervals.Sync], schemeCount[intervals.Approx], schemeCount[intervals.Kernel])
}

func printFig7(order []string, evals map[string][]*selection.Evaluation) {
	report.Section(os.Stdout, "Figure 7: co-optimization of simulation time and error")
	t := report.NewTable("", "Threshold", "Avg Error%", "Avg Speedup", "Geo Speedup")
	emit := func(label string, pick func([]*selection.Evaluation) *selection.Evaluation) {
		var errs, spds []float64
		for _, name := range order {
			ev := pick(evals[name])
			errs = append(errs, ev.ErrorPct)
			spds = append(spds, ev.Speedup)
		}
		t.Row(label, stats.Mean(errs), stats.Mean(spds), stats.GeoMean(spds))
	}
	emit("min-error", selection.MinError)
	thresholds := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, thr := range thresholds {
		thr := thr
		emit(fmt.Sprintf("%.1f%%", thr), func(evs []*selection.Evaluation) *selection.Evaluation {
			return selection.SmallestUnderThreshold(evs, thr)
		})
	}
	t.Write(os.Stdout)
	fmt.Println("Paper: speedups rise monotonically with the threshold; at 10% threshold, 3.0% avg error and 223X avg speedup.")
}

// writeCSVs exports every application's 30 evaluations plus the
// error-minimizing configuration's simulation work list. Writes are
// atomic: a crash mid-export never leaves a truncated CSV behind.
func writeCSVs(dir string, order []string, evals map[string][]*selection.Evaluation) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range order {
		if err := export.EvaluationsCSVFile(filepath.Join(dir, name+"_evaluations.csv"), evals[name]); err != nil {
			return err
		}
		best := selection.MinError(evals[name])
		if err := export.SelectionsCSVFile(filepath.Join(dir, name+"_selection.csv"), best); err != nil {
			return err
		}
	}
	return nil
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}

func show(figFlag, name string) bool { return figFlag == "all" || figFlag == name }
