// Command characterize regenerates the paper's characterization study
// (Section IV): Table I (the benchmark roster), Figure 3 (API call
// breakdown, program structures, dynamic work), and Figure 4
// (instruction mixes, SIMD widths, memory activity) for the 25 OpenCL
// applications, profiled with CoFluent (host side) and GT-Pin (device
// side).
//
// Usage:
//
//	characterize [-scale full|small|tiny] [-app name] [-fig table1|3a|3b|3c|4a|4b|4c|all]
//	             [-fault-rate R] [-fault-seed S] [-watchdog N]
//	             [-state-dir DIR] [-resume] [-timeout D] [-fleet N]
//
// The sweep runs as a supervised worker pool. With -state-dir each
// (app, device-config, fault-seed) unit is journaled in a crash-
// consistent WAL and its profile persisted atomically, so a run killed
// partway through — crash, OOM, Ctrl-C — can be continued with -resume:
// journaled-complete units are skipped (their artifacts digest-verified)
// and in-flight ones re-executed, producing a report byte-identical to
// an uninterrupted run with the same seeds. See docs/checkpointing.md.
//
// A per-application failure does not abort the sweep: the failed
// application is reported in the run-status table with its error class,
// the figures are produced from the applications that completed, and the
// exit status is non-zero only when every application failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/fleet"
	"gtpin/internal/isa"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/profile"
	"gtpin/internal/report"
	"gtpin/internal/runstate"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
	"gtpin/internal/xlate"
)

// main delegates to run so that every error path unwinds through the
// deferred cleanups (journal close, signal stop, observability export)
// instead of os.Exit skipping them. MaybeWorker comes first: when this
// process was spawned by a fleet coordinator it is a worker, not a CLI.
func main() {
	fleet.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scaleFlag := flag.String("scale", "full", "workload scale: full, small, or tiny")
	appFlag := flag.String("app", "", "profile a single benchmark by name")
	figFlag := flag.String("fig", "all", "which output to produce: table1, 3a, 3b, 3c, 4a, 4b, 4c, or all")
	faultRate := flag.Float64("fault-rate", 0, "chaos mode: per-site fault-injection rate in [0,1]")
	faultSeed := flag.Int64("fault-seed", 1, "chaos mode: fault-injection seed")
	watchdog := flag.Uint64("watchdog", 0, "per-enqueue kernel watchdog budget in instructions (0 = off)")
	stateDir := flag.String("state-dir", "", "checkpoint directory: journal each unit and persist profiles atomically")
	resume := flag.Bool("resume", false, "continue a journaled run from -state-dir: skip completed units, re-run in-flight ones")
	workers := flag.Int("workers", 0, "concurrent sweep shards (0 = GOMAXPROCS, 1 = serial); reports are identical at any setting")
	fleetN := flag.Int("fleet", 0, "distribute the sweep across N worker processes with lease-based fault tolerance (0 = in-process pool); reports are identical either way")
	timeout := flag.Duration("timeout", 0, "overall sweep deadline (0 = none); units still running at the deadline are abandoned and classified as unit-timeout faults")
	xlFlags := xlate.RegisterFlags(flag.CommandLine)
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()
	if err := xlFlags.Install(); err != nil {
		return err
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}

	specs := workloads.All()
	if *appFlag != "" {
		spec, err := workloads.ByName(*appFlag)
		if err != nil {
			return err
		}
		specs = []*workloads.Spec{spec}
	}
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("-fault-rate %v outside [0,1]", *faultRate)
	}
	var fo *workloads.FaultOptions
	if *faultRate > 0 || *watchdog > 0 {
		fo = &workloads.FaultOptions{
			Rates:    faults.Uniform(*faultRate),
			Seed:     *faultSeed,
			Watchdog: *watchdog,
		}
	}

	state, err := runstate.OpenSweep(*stateDir, *resume, "characterize", os.Stderr)
	if err != nil {
		return err
	}
	if state != nil {
		defer state.Close()
	}

	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if *stateDir != "" {
		obsSess.SetDefaultMetricsPath(filepath.Join(*stateDir, "metrics.json"))
	}

	if show(*figFlag, "table1") {
		printTableI(specs)
	}

	units := make([]workloads.Unit, len(specs))
	for i, spec := range specs {
		units[i] = workloads.Unit{Spec: spec, Scale: sc, Cfg: device.IvyBridgeHD4000(), TrialSeed: 1, Faults: fo}
	}
	var outs []workloads.Outcome
	var perr error
	if *fleetN > 0 {
		fleetDir := ""
		if *stateDir != "" {
			fleetDir = filepath.Join(*stateDir, "fleet")
		}
		outs, perr = fleet.Run(ctx, units, fleet.Options{
			Dir:       fleetDir,
			State:     state,
			Resume:    *resume,
			Workers:   *fleetN,
			OnOutcome: progressLine,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
	} else {
		outs, perr = workloads.RunPool(ctx, units, workloads.PoolOptions{
			State:     state,
			Resume:    *resume,
			OnOutcome: progressLine,
			Workers:   *workers,
		})
	}
	if perr != nil {
		if !errors.Is(perr, context.Canceled) {
			return perr
		}
		fmt.Fprintln(os.Stderr, "characterize: interrupted; reporting completed applications")
		if state != nil {
			fmt.Fprintf(os.Stderr, "characterize: progress journaled in %s; continue with -resume\n", *stateDir)
		}
	}

	type row struct {
		spec *workloads.Spec
		art  *workloads.Artifact
		prof *profile.Profile
	}
	var rows []row
	failed := 0
	for i, o := range outs {
		switch {
		case o.Err != nil:
			failed++
		case o.Artifact != nil:
			p, err := o.Artifact.Profile()
			if err != nil {
				return err
			}
			rows = append(rows, row{spec: specs[i], art: o.Artifact, prof: p})
		}
	}
	if failed > 0 || len(rows) < len(outs) || fo != nil {
		report.Section(os.Stdout, "Run status")
		t := report.NewTable("", "Application", "Status", "Error Class", "Injected Faults")
		for i, o := range outs {
			switch {
			case o.Err != nil:
				class := faults.Kind(o.Err)
				if class == "" {
					class = faults.ClassOf(o.Err).String()
				}
				t.Row(specs[i].Name, "FAILED", class, "")
			case o.Artifact != nil:
				t.Row(specs[i].Name, "ok", "", o.Artifact.FaultStats.Total())
			default:
				t.Row(specs[i].Name, "not run", "", "")
			}
		}
		t.Write(os.Stdout)
	}
	if len(rows) == 0 {
		return fmt.Errorf("all %d applications failed", len(outs))
	}

	if show(*figFlag, "3a") {
		report.Section(os.Stdout, "Figure 3a: OpenCL API call breakdown (%%)")
		t := report.NewTable("", "Application", "Total Calls", "Kernel%", "Sync%", "Other%")
		var ks, ss []float64
		for _, r := range rows {
			k, s, o := r.art.BreakdownPct()
			t.Row(r.spec.Name, r.art.TotalCalls(), k, s, o)
			ks = append(ks, k)
			ss = append(ss, s)
		}
		t.Row("AVERAGE", "", stats.Mean(ks), stats.Mean(ss), 100-stats.Mean(ks)-stats.Mean(ss))
		t.Write(os.Stdout)
	}

	if show(*figFlag, "3b") {
		report.Section(os.Stdout, "Figure 3b: GPU program structures (static)")
		t := report.NewTable("", "Application", "Unique Kernels", "Unique Basic Blks")
		var uk, ub []float64
		for _, r := range rows {
			blocks := 0
			for _, ki := range r.art.Static {
				blocks += ki.NumBlocks
			}
			t.Row(r.spec.Name, len(r.art.Static), blocks)
			uk = append(uk, float64(len(r.art.Static)))
			ub = append(ub, float64(blocks))
		}
		t.Row("AVERAGE", stats.Mean(uk), stats.Mean(ub))
		t.Write(os.Stdout)
	}

	if show(*figFlag, "3c") {
		report.Section(os.Stdout, "Figure 3c: dynamic GPU work")
		t := report.NewTable("", "Application", "Kernel Count", "Basic Blk Count", "Instr. Count")
		var inv, bb, in []float64
		for _, r := range rows {
			agg := r.prof.Aggregate()
			t.Row(r.spec.Name, agg.KernelInvocations,
				report.HumanCount(float64(agg.BlockExecs)), report.HumanCount(float64(agg.Instrs)))
			inv = append(inv, float64(agg.KernelInvocations))
			bb = append(bb, float64(agg.BlockExecs))
			in = append(in, float64(agg.Instrs))
		}
		t.Row("AVERAGE", stats.Mean(inv), report.HumanCount(stats.Mean(bb)), report.HumanCount(stats.Mean(in)))
		t.Write(os.Stdout)
	}

	if show(*figFlag, "4a") {
		report.Section(os.Stdout, "Figure 4a: dynamic instruction mixes (%%)")
		t := report.NewTable("", "Application", "Moves", "Logic", "Control", "Computation", "Sends")
		sums := make([][]float64, isa.NumCategories)
		for _, r := range rows {
			agg := r.prof.Aggregate()
			total := float64(agg.Instrs)
			var pct [isa.NumCategories]float64
			for c := 0; c < isa.NumCategories; c++ {
				pct[c] = stats.Pct(float64(agg.ByCategory[c]), total)
				sums[c] = append(sums[c], pct[c])
			}
			t.Row(r.spec.Name, pct[isa.CatMove], pct[isa.CatLogic], pct[isa.CatControl],
				pct[isa.CatComputation], pct[isa.CatSend])
		}
		t.Row("AVERAGE", stats.Mean(sums[isa.CatMove]), stats.Mean(sums[isa.CatLogic]),
			stats.Mean(sums[isa.CatControl]), stats.Mean(sums[isa.CatComputation]), stats.Mean(sums[isa.CatSend]))
		t.Write(os.Stdout)
	}

	if show(*figFlag, "4b") {
		report.Section(os.Stdout, "Figure 4b: SIMD widths (%% of dynamic instructions)")
		t := report.NewTable("", "Application", "W16", "W8", "W4", "W2", "W1")
		sums := make([][]float64, isa.NumWidths)
		for _, r := range rows {
			agg := r.prof.Aggregate()
			total := float64(agg.Instrs)
			var pct [isa.NumWidths]float64
			for w := 0; w < isa.NumWidths; w++ {
				pct[w] = stats.Pct(float64(agg.ByWidth[w]), total)
				sums[w] = append(sums[w], pct[w])
			}
			t.Row(r.spec.Name, pct[4], pct[3], pct[2], pct[1], pct[0])
		}
		t.Row("AVERAGE", stats.Mean(sums[4]), stats.Mean(sums[3]), stats.Mean(sums[2]),
			stats.Mean(sums[1]), stats.Mean(sums[0]))
		t.Write(os.Stdout)
	}

	if show(*figFlag, "4c") {
		report.Section(os.Stdout, "Figure 4c: GPU memory activity")
		t := report.NewTable("", "Application", "Bytes Read", "Bytes Written", "W/R Ratio")
		var rd, wr []float64
		for _, r := range rows {
			agg := r.prof.Aggregate()
			ratio := 0.0
			if agg.BytesRead > 0 {
				ratio = float64(agg.BytesWritten) / float64(agg.BytesRead)
			}
			t.Row(r.spec.Name, report.HumanBytes(float64(agg.BytesRead)),
				report.HumanBytes(float64(agg.BytesWritten)), ratio)
			rd = append(rd, float64(agg.BytesRead))
			wr = append(wr, float64(agg.BytesWritten))
		}
		t.Row("AVERAGE", report.HumanBytes(stats.Mean(rd)), report.HumanBytes(stats.Mean(wr)), "")
		t.Write(os.Stdout)
	}
	return nil
}

// progressLine reports one settled unit on stderr.
func progressLine(o workloads.Outcome) {
	name := o.Unit.Spec.Name
	switch {
	case o.Err != nil:
		fmt.Fprintf(os.Stderr, "FAILED   %-28s %v\n", name, o.Err)
	case o.Resumed:
		fmt.Fprintf(os.Stderr, "resumed  %-28s (journaled complete, artifact verified)\n", name)
	default:
		var instrs uint64
		for i := range o.Artifact.Invocations {
			instrs += o.Artifact.Invocations[i].Instrs
		}
		fmt.Fprintf(os.Stderr, "profiled %-28s %s instrs, %d invocations\n",
			name, report.HumanCount(float64(instrs)), len(o.Artifact.Invocations))
	}
}

func printTableI(specs []*workloads.Spec) {
	report.Section(os.Stdout, "Table I: benchmarks used in this study")
	t := report.NewTable("", "Source", "Application")
	for _, s := range specs {
		t.Row(s.Suite, s.Name)
	}
	t.Write(os.Stdout)
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}

func show(figFlag, name string) bool { return figFlag == "all" || figFlag == name }
