// Command validate regenerates the paper's Section V-E study (Figure 8):
// whether subsets selected from one profiled execution predict whole-
// program performance across repeated trials, across GPU frequencies
// (1150 MHz selections vs 1000/850/700/550/350 MHz executions), and
// across architecture generations (Ivy Bridge HD 4000 selections vs a
// Haswell HD 4600 execution).
//
// Selections are made once per application (its error-minimizing
// interval/feature configuration, as in Figure 6) from a CoFluent
// recording of trial 1; every validation replays that recording so the
// kernel calls in the selected intervals are present and findable.
//
// Usage:
//
//	validate [-scale full|small|tiny] [-part trials|freq|arch|all] [-trials N]
//	         [-fault-rate R] [-fault-seed S] [-watchdog N] [-timeout D]
//
// The chaos flags mirror cmd/characterize: -fault-rate enables
// deterministic fault injection (seeded by -fault-seed) during the
// profiling runs, and -watchdog bounds each enqueue's instruction
// budget — exercising whether selections survive a fault-absorbing
// profile run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/par"
	"gtpin/internal/report"
	"gtpin/internal/selection"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
	"gtpin/internal/xlate"
)

var freqsMHz = []int{1000, 850, 700, 550, 350}

// main delegates to run so error exits unwind through deferred cleanup
// (signal handler release, observability export) instead of os.Exit
// skipping it.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scaleFlag := flag.String("scale", "full", "workload scale: full, small, or tiny")
	partFlag := flag.String("part", "all", "which validation: trials, freq, arch, or all")
	nTrials := flag.Int("trials", 9, "number of additional trials (paper: trials 2-10)")
	faultRate := flag.Float64("fault-rate", 0, "chaos mode: per-site fault-injection rate in [0,1] during profiling")
	faultSeed := flag.Int64("fault-seed", 1, "chaos mode: fault-injection seed")
	watchdog := flag.Uint64("watchdog", 0, "per-enqueue kernel watchdog budget in instructions (0 = off)")
	workers := flag.Int("workers", 0, "concurrent validation shards (0 = GOMAXPROCS, 1 = serial); reports are identical at any setting")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none); profiling units still running at the deadline are abandoned and classified as unit-timeout faults")
	xlFlags := xlate.RegisterFlags(flag.CommandLine)
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()
	if err := xlFlags.Install(); err != nil {
		return err
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("-fault-rate %v outside [0,1]", *faultRate)
	}
	var fo *workloads.FaultOptions
	if *faultRate > 0 || *watchdog > 0 {
		fo = &workloads.FaultOptions{
			Rates:    faults.Uniform(*faultRate),
			Seed:     *faultSeed,
			Watchdog: *watchdog,
		}
	}
	opts := selection.Options{ApproxTarget: workloads.ApproxTarget(sc), Seed: 42}
	base := device.IvyBridgeHD4000()

	type appState struct {
		spec *workloads.Spec
		res  *workloads.Result
		best *selection.Evaluation
	}
	specs := workloads.All()
	apps := make([]appState, len(specs))
	// Profiling runs on the supervised pool (not a bare par loop) so a
	// -timeout deadline abandons hung units with a typed unit-timeout
	// fault instead of wedging the whole validation.
	units := make([]workloads.Unit, len(specs))
	for i, spec := range specs {
		units[i] = workloads.Unit{Spec: spec, Scale: sc, Cfg: base, TrialSeed: 1, Faults: fo}
	}
	outs, perr := workloads.RunPool(ctx, units, workloads.PoolOptions{
		Workers: *workers,
		OnOutcome: func(o workloads.Outcome) {
			if o.Err == nil {
				fmt.Fprintf(os.Stderr, "profiled %-28s\n", o.Unit.Spec.Name)
			}
		},
	})
	if perr != nil {
		return perr
	}
	for i, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("profile %s: %w", specs[i].Name, o.Err)
		}
		evals, err := selection.EvaluateAll(o.Result.Profile, opts)
		if err != nil {
			return err
		}
		apps[i] = appState{spec: specs[i], res: o.Result, best: selection.MinError(evals)}
	}

	crossErr := func(a appState, cfg device.Config, seed int64) (float64, error) {
		times, err := workloads.TimedReplay(a.res.Recording, cfg, seed)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", a.spec.Name, err)
		}
		e, err := selection.CrossError(a.best, a.res.Profile, times)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", a.spec.Name, err)
		}
		return e, nil
	}

	if show(*partFlag, "trials") {
		report.Section(os.Stdout, "Figure 8 (top): error using trial-1 selections on trials 2-%d", *nTrials+1)
		t := report.NewTable("", "Application", "Config", "Mean Error%", "Max Error%")
		perApp := make([][]float64, len(apps))
		if err := par.ForEachN(ctx, len(apps), *workers, func(i int) error {
			for trial := 2; trial <= *nTrials+1; trial++ {
				e, err := crossErr(apps[i], base, int64(trial))
				if err != nil {
					return err
				}
				perApp[i] = append(perApp[i], e)
			}
			fmt.Fprintf(os.Stderr, "trials done for %-28s\n", apps[i].spec.Name)
			return nil
		}); err != nil {
			return err
		}
		var all []float64
		under3, total := 0, 0
		for i, a := range apps {
			for _, e := range perApp[i] {
				total++
				if e < 3 {
					under3++
				}
			}
			all = append(all, perApp[i]...)
			t.Row(a.spec.Name, a.best.Config.String(), stats.Mean(perApp[i]), stats.Max(perApp[i]))
		}
		t.Write(os.Stdout)
		fmt.Printf("Cross-trial: mean %.2f%%, max %.2f%%, %d/%d runs below 3%% (paper: most below 3%%, many below 1%%)\n\n",
			stats.Mean(all), stats.Max(all), under3, total)
	}

	if show(*partFlag, "freq") {
		report.Section(os.Stdout, "Figure 8 (middle): error using 1150MHz selections at lower frequencies")
		headers := []string{"Application"}
		for _, f := range freqsMHz {
			headers = append(headers, fmt.Sprintf("%dMHz", f))
		}
		t := report.NewTable("", headers...)
		perApp := make([][]float64, len(apps))
		if err := par.ForEachN(ctx, len(apps), *workers, func(i int) error {
			for _, f := range freqsMHz {
				e, err := crossErr(apps[i], base.WithFrequency(f), 1)
				if err != nil {
					return err
				}
				perApp[i] = append(perApp[i], e)
			}
			fmt.Fprintf(os.Stderr, "frequencies done for %-28s\n", apps[i].spec.Name)
			return nil
		}); err != nil {
			return err
		}
		var all []float64
		under3, total := 0, 0
		for i, a := range apps {
			row := []any{a.spec.Name}
			for _, e := range perApp[i] {
				row = append(row, e)
				all = append(all, e)
				total++
				if e < 3 {
					under3++
				}
			}
			t.Row(row...)
		}
		t.Write(os.Stdout)
		fmt.Printf("Cross-frequency: mean %.2f%%, max %.2f%%, %d/%d below 3%% (paper: most below 3%%)\n\n",
			stats.Mean(all), stats.Max(all), under3, total)
	}

	if show(*partFlag, "arch") {
		// The paper establishes the two GPUs genuinely differ by
		// comparing LuxMark scores (HD4000: 269, HD4600: 351).
		ivb, err := workloads.LuxMarkScore(device.IvyBridgeHD4000())
		if err != nil {
			return err
		}
		hswScore, err := workloads.LuxMarkScore(device.HaswellHD4600())
		if err != nil {
			return err
		}
		fmt.Printf("\nLuxMark-style scores: HD4000 %.0f, HD4600 %.0f (%.2fx; paper: 269 vs 351, 1.30x)\n",
			ivb, hswScore, hswScore/ivb)

		report.Section(os.Stdout, "Figure 8 (bottom): error using Ivy Bridge selections on Haswell (HD4600)")
		t := report.NewTable("", "Application", "Config", "Error%")
		hsw := device.HaswellHD4600()
		errsArch := make([]float64, len(apps))
		if err := par.ForEachN(ctx, len(apps), *workers, func(i int) error {
			e, err := crossErr(apps[i], hsw, 1)
			if err != nil {
				return err
			}
			errsArch[i] = e
			return nil
		}); err != nil {
			return err
		}
		var all []float64
		under3 := 0
		for i, a := range apps {
			e := errsArch[i]
			all = append(all, e)
			if e < 3 {
				under3++
			}
			t.Row(a.spec.Name, a.best.Config.String(), e)
		}
		t.Write(os.Stdout)
		fmt.Printf("Cross-architecture: mean %.2f%%, max %.2f%%, %d/%d below 3%% (paper: most below 3%%, worst gaussian-image ~11%%)\n",
			stats.Mean(all), stats.Max(all), under3, len(apps))
	}
	return nil
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}

func show(partFlag, name string) bool { return partFlag == "all" || partFlag == name }
