package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"gtpin/internal/service"
)

// runSmoke is the -smoke mode: a self-contained end-to-end exercise of
// the daemon used by `make serve-smoke`. It starts the server on a
// loopback port, drives it purely through the HTTP API — submit a tiny
// single-app job, poll it to a terminal state, fetch the result — then
// drains and verifies the readiness flip. Any deviation is a non-zero
// exit.
func runSmoke(cfg service.Config) error {
	cfg.DrainTimeout = smokeDrainTimeout
	// Observe the not-ready window from inside the drain sequence:
	// admission has stopped, the listener is still up. This is the
	// ordering the acceptance demands, checked without racing the drain.
	var base string
	flipped := false
	cfg.DrainHook = func() {
		c := &http.Client{Timeout: 10 * time.Second}
		r, err := c.Get(base + "/readyz")
		if err != nil {
			return
		}
		defer r.Body.Close()
		flipped = r.StatusCode == http.StatusServiceUnavailable
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		srv.Close()
		return err
	}
	base = "http://" + srv.Addr()
	log.Printf("gtpind: smoke: serving on %s", base)

	client := &http.Client{Timeout: 10 * time.Second}

	if err := expectStatus(client, base+"/healthz", http.StatusOK); err != nil {
		srv.Close()
		return err
	}
	if err := expectStatus(client, base+"/readyz", http.StatusOK); err != nil {
		srv.Close()
		return err
	}

	spec := map[string]any{
		"id": "smoke", "kind": "characterize",
		"apps": []string{"cb-gaussian-buffer"}, "scale": "tiny",
	}
	body, _ := json.Marshal(spec)
	resp, err := client.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		srv.Close()
		return fmt.Errorf("smoke: submit: %w", err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		return fmt.Errorf("smoke: submit: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	resp.Body.Close()
	log.Printf("gtpind: smoke: job submitted")

	deadline := time.Now().Add(2 * time.Minute)
	var view struct {
		State     string `json:"state"`
		Error     string `json:"error"`
		UnitsDone int    `json:"units_done"`
	}
	for {
		if time.Now().After(deadline) {
			srv.Close()
			return fmt.Errorf("smoke: job did not settle within 2m (state %s)", view.State)
		}
		if err := getJSON(client, base+"/api/v1/jobs/smoke", &view); err != nil {
			srv.Close()
			return err
		}
		if view.State == string(service.StateDone) {
			break
		}
		if terminal := service.State(view.State).Terminal(); terminal {
			srv.Close()
			return fmt.Errorf("smoke: job settled %s: %s", view.State, view.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("gtpind: smoke: job done (%d unit(s))", view.UnitsDone)

	var result struct {
		Units []struct {
			Status string `json:"status"`
			Digest string `json:"digest"`
		} `json:"units"`
	}
	if err := getJSON(client, base+"/api/v1/jobs/smoke/result", &result); err != nil {
		srv.Close()
		return err
	}
	if len(result.Units) == 0 || result.Units[0].Status != "completed" || result.Units[0].Digest == "" {
		srv.Close()
		return fmt.Errorf("smoke: result.json malformed: %+v", result)
	}

	if err := srv.Drain(); err != nil {
		return fmt.Errorf("smoke: drain: %w", err)
	}
	if !flipped {
		return fmt.Errorf("smoke: /readyz did not serve 503 during the drain window")
	}
	log.Printf("gtpind: smoke: drained cleanly, readiness flip observed")
	fmt.Println("gtpind smoke: OK")
	return nil
}

func expectStatus(c *http.Client, url string, want int) error {
	resp, err := c.Get(url)
	if err != nil {
		return fmt.Errorf("smoke: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("smoke: GET %s: got %s, want %d", url, resp.Status, want)
	}
	return nil
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return fmt.Errorf("smoke: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("smoke: GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
