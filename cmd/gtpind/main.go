// Command gtpind is the fault-tolerant profiling daemon: an HTTP/JSON
// front end over the supervised sweep pool, so characterize/repro/
// subsets jobs can be submitted, queued, retried, and resumed without
// re-invoking the CLI harnesses — and so the process-wide hot caches
// stay warm across jobs.
//
// Usage:
//
//	gtpind -state-dir DIR [-addr :8321] [-queue-cap N] [-job-workers N]
//	       [-unit-workers N] [-max-retry-passes N] [-retry-base D] [-retry-cap D]
//	       [-breaker-threshold N] [-drain-timeout D] [-unit-timeout D]
//	       [-tenants FILE] [-smoke]
//
// The daemon claims -state-dir with an exclusive flock (a second daemon
// or a CLI sweep pointed at the same directory fails fast instead of
// replaying the same journals), recovers any jobs a previous life left
// queued or running, and serves:
//
//	POST   /api/v1/jobs                   submit a job (429 + Retry-After when full)
//	GET    /api/v1/jobs                   list jobs
//	GET    /api/v1/jobs/{id}              one job's state and progress
//	DELETE /api/v1/jobs/{id}              cancel a job
//	GET    /api/v1/jobs/{id}/result       the canonical result.json
//	GET    /api/v1/jobs/{id}/artifacts    artifact inventory (and .../{name})
//	GET    /healthz /readyz               liveness / readiness
//	GET    /metrics /metrics.json         Prometheus text / obs snapshot
//
// SIGTERM and SIGINT trigger a graceful drain: /readyz flips to 503
// while the listener still serves, admission stops, in-flight jobs
// finish (or, past -drain-timeout, are abandoned to their journals for
// the next start), the metrics artifact is flushed, then the listener
// closes. SIGKILL is survivable by design: restart with the same
// -state-dir and interrupted jobs resume to byte-identical artifacts.
//
// -smoke runs a self-contained smoke test instead of serving: start on
// a loopback port, submit a tiny job over HTTP, poll it to completion,
// drain, and exit non-zero on any failure. CI uses it as the service
// health gate (make serve-smoke).
//
// See docs/service.md for the API and job lifecycle in detail.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gtpin/internal/fleet"
	"gtpin/internal/service"
)

func main() {
	// Fleet-mode jobs spawn workers by re-executing this binary;
	// MaybeWorker diverts those children into the worker loop before any
	// daemon setup runs.
	fleet.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gtpind:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8321", "listen address")
	stateDir := flag.String("state-dir", "", "service state directory (required): job specs, journals, artifacts")
	queueCap := flag.Int("queue-cap", service.DefaultQueueCap, "bounded queue capacity; full queue sheds with 429 + Retry-After")
	jobWorkers := flag.Int("job-workers", service.DefaultJobWorkers, "jobs executing concurrently")
	unitWorkers := flag.Int("unit-workers", 0, "per-job pool shards (0 = GOMAXPROCS); artifacts identical at any setting")
	maxRetryPasses := flag.Int("max-retry-passes", service.DefaultMaxRetryPasses, "service-level retry passes for transiently-failed units (-1 disables)")
	retryBase := flag.Duration("retry-base", service.DefaultRetryBase, "base backoff between retry passes (doubles per pass, jittered)")
	retryCap := flag.Duration("retry-cap", service.DefaultRetryCap, "backoff ceiling between retry passes")
	breakerThreshold := flag.Int("breaker-threshold", service.DefaultBreakerThreshold, "consecutive unit failures that trip a job's circuit breaker (-1 disables)")
	drainTimeout := flag.Duration("drain-timeout", service.DefaultDrainTimeout, "how long a SIGTERM drain waits for in-flight jobs before journaling them")
	unitTimeout := flag.Duration("unit-timeout", 0, "per-unit attempt wall-clock bound; hung units are abandoned as unit-timeout faults (0 = off)")
	tenants := flag.String("tenants", "", "tenant policy file (JSON); absent means open admission")
	smoke := flag.Bool("smoke", false, "run the self-contained smoke test (submit a tiny job, drain) and exit")
	flag.Parse()

	if *stateDir == "" {
		return fmt.Errorf("-state-dir is required")
	}

	cfg := service.Config{
		StateDir:         *stateDir,
		QueueCap:         *queueCap,
		JobWorkers:       *jobWorkers,
		UnitWorkers:      *unitWorkers,
		MaxRetryPasses:   normalizeDisable(*maxRetryPasses),
		RetryBase:        *retryBase,
		RetryCap:         *retryCap,
		BreakerThreshold: normalizeDisable(*breakerThreshold),
		DrainTimeout:     *drainTimeout,
		UnitTimeout:      *unitTimeout,
		Logf:             log.New(os.Stderr, "", log.LstdFlags).Printf,
	}
	if *tenants != "" {
		pol, err := service.LoadPolicies(*tenants)
		if err != nil {
			return err
		}
		cfg.Tenants = pol
		log.Printf("gtpind: closed admission, tenants: %v", pol.Names())
	}

	if *smoke {
		return runSmoke(cfg)
	}

	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		srv.Close()
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("gtpind: %v: draining (second signal aborts immediately)", got)
	go func() {
		<-sig
		log.Printf("gtpind: second signal: aborting")
		os.Exit(1)
	}()
	return srv.Drain()
}

// normalizeDisable maps the CLI's "-1 disables" convention onto the
// Config convention (negative disables, 0 means default).
func normalizeDisable(v int) int {
	if v < 0 {
		return -1
	}
	return v
}

// smokeDrainTimeout bounds the smoke test's drain so a wedged queue
// fails CI instead of hanging it.
const smokeDrainTimeout = 60 * time.Second
