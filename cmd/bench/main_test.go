package main

import (
	"math"
	"testing"
	"time"
)

// Regression test for the -min-speedup gate: a degenerate (zero or
// negative) optimized duration used to produce +Inf, which compares
// greater than any threshold and silently passed the gate.
func TestSpeedupRejectsDegenerateTimings(t *testing.T) {
	for _, tc := range []struct {
		name      string
		base, opt time.Duration
	}{
		{"zero optimized", time.Second, 0},
		{"negative optimized", time.Second, -time.Millisecond},
		{"zero baseline", 0, time.Second},
		{"both zero", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := speedup(tc.base, tc.opt)
			if err == nil {
				t.Fatalf("speedup(%v, %v) = %v, want error", tc.base, tc.opt, s)
			}
			if s != 0 {
				t.Fatalf("speedup(%v, %v) returned %v with error; want 0", tc.base, tc.opt, s)
			}
		})
	}
}

// The overhead gate compares medians of repeated sweeps; the median must
// shrug off a single outlier rep (the flakiness the reps exist to fix)
// and behave sensibly at the edges.
func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []time.Duration
		want time.Duration
	}{
		{"empty", nil, 0},
		{"single", []time.Duration{7 * time.Second}, 7 * time.Second},
		{"odd ignores outlier", []time.Duration{time.Second, 90 * time.Second, 2 * time.Second}, 2 * time.Second},
		{"even averages middle", []time.Duration{4 * time.Second, time.Second, 2 * time.Second, 3 * time.Second}, 2500 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := append([]time.Duration(nil), tc.in...)
			if got := median(in); got != tc.want {
				t.Fatalf("median(%v) = %v, want %v", tc.in, got, tc.want)
			}
			// The caller reuses the slice for the report; median must not
			// reorder it.
			for i := range tc.in {
				if in[i] != tc.in[i] {
					t.Fatalf("median mutated its input: %v -> %v", tc.in, in)
				}
			}
		})
	}
}

func TestSpeedupComputesRatio(t *testing.T) {
	s, err := speedup(4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatalf("speedup: %v", err)
	}
	if math.Abs(s-2.0) > 1e-12 {
		t.Fatalf("speedup = %v, want 2.0", s)
	}
	if math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("speedup = %v, want finite", s)
	}
}
