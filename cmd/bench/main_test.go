package main

import (
	"math"
	"testing"
	"time"
)

// Regression test for the -min-speedup gate: a degenerate (zero or
// negative) optimized duration used to produce +Inf, which compares
// greater than any threshold and silently passed the gate.
func TestSpeedupRejectsDegenerateTimings(t *testing.T) {
	for _, tc := range []struct {
		name      string
		base, opt time.Duration
	}{
		{"zero optimized", time.Second, 0},
		{"negative optimized", time.Second, -time.Millisecond},
		{"zero baseline", 0, time.Second},
		{"both zero", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := speedup(tc.base, tc.opt)
			if err == nil {
				t.Fatalf("speedup(%v, %v) = %v, want error", tc.base, tc.opt, s)
			}
			if s != 0 {
				t.Fatalf("speedup(%v, %v) returned %v with error; want 0", tc.base, tc.opt, s)
			}
		})
	}
}

func TestSpeedupComputesRatio(t *testing.T) {
	s, err := speedup(4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatalf("speedup: %v", err)
	}
	if math.Abs(s-2.0) > 1e-12 {
		t.Fatalf("speedup = %v, want 2.0", s)
	}
	if math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("speedup = %v, want finite", s)
	}
}
