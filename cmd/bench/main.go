// Command bench is the benchmark-regression harness for the profiling
// hot path: it runs one characterization sweep three ways — the
// pre-optimization baseline (serial, rewrite cache disabled), the
// optimized path (sharded across -workers with the content-addressed
// rewrite cache), and an observed run (optimized options with the obs
// tracer installed) — verifies all runs settle into byte-identical
// artifacts, and records the wall-clock comparisons in a JSON report
// written atomically so CI can trend it across commits. The observed
// run is what enforces the observability layer's two invariants:
// artifacts unchanged, wall-clock overhead bounded by -max-obs-overhead.
//
// The overhead ratio is a quotient of two wall-clock times, so a single
// scheduler hiccup in either sweep used to flip the -max-obs-overhead
// gate. Two defenses are built in: the optimized and observed sweeps
// are each repeated -overhead-reps times (fresh caches per rep) and the
// gate compares medians, and -obs-overhead-warn downgrades a gate
// breach to a warning for environments (shared CI boxes) where even the
// median is not trustworthy.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/gtpin"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
	"gtpin/internal/obs"
	"gtpin/internal/obs/obsflag"
	"gtpin/internal/runstate"
	"gtpin/internal/testgen"
	"gtpin/internal/workloads"
)

// report is the schema of BENCH_sweep.json.
type report struct {
	Scale         string  `json:"scale"`
	Trials        int     `json:"trials"`
	Units         int     `json:"units"`
	Workers       int     `json:"workers"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	BaselineNs    int64   `json:"baseline_ns"` // serial, cache disabled
	OptimizedNs   int64   `json:"optimized_ns"`
	Speedup       float64 `json:"speedup"`
	ByteIdentical bool    `json:"byte_identical"`
	RewriteHits   uint64  `json:"rewrite_cache_hits"`
	RewriteMisses uint64  `json:"rewrite_cache_misses"`
	ReplayHits    uint64  `json:"replay_cache_hits"`
	ReplayMisses  uint64  `json:"replay_cache_misses"`
	NativeHits    uint64  `json:"native_cache_hits"`
	NativeMisses  uint64  `json:"native_cache_misses"`

	// Observed run: the optimized configuration with the span tracer
	// installed. ObsOverhead is observed/optimized wall time; trace
	// events count what the tracer captured. OptimizedNs and ObservedNs
	// are each the median of OverheadReps repetitions.
	ObservedNs       int64   `json:"observed_ns"`
	ObsOverhead      float64 `json:"obs_overhead"`
	ObsByteIdentical bool    `json:"obs_byte_identical"`
	TraceEvents      int     `json:"trace_events"`
	OverheadReps     int     `json:"overhead_reps"`

	// Detailed-interpreter throughput (engine cycle-level loop driven
	// through detsim), in millions of simulated instructions per second.
	// Gated against the previous report by -min-detsim-ratio.
	DetsimMIPS float64 `json:"detsim_mips"`
}

// speedup computes base/other, refusing degenerate timings: a zero or
// negative denominator yields +Inf (or NaN), which compares greater
// than any -min-speedup threshold and would silently pass the gate.
func speedup(base, other time.Duration) (float64, error) {
	if base <= 0 || other <= 0 {
		return 0, fmt.Errorf("degenerate sweep timings (%v vs %v); refusing to compute a ratio", base, other)
	}
	return float64(base) / float64(other), nil
}

// median returns the median of the given durations (the mean of the two
// middle values for even counts). The overhead gate compares medians
// rather than single runs because a lone scheduler stall in either sweep
// skews a one-shot ratio far more than it can skew the middle of N.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "full":
		return workloads.ScaleFull, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "tiny":
		return workloads.ScaleTiny, nil
	}
	return workloads.Scale{}, fmt.Errorf("unknown scale %q (want full, small, or tiny)", s)
}

// buildUnits lays out the benchmark sweep: every workload at the given
// scale, repeated for trials seeds — the shape of a real
// characterization run, where repeated trials re-instrument the same
// kernels and the rewrite cache earns its keep.
func buildUnits(sc workloads.Scale, trials int) []workloads.Unit {
	specs := workloads.All()
	units := make([]workloads.Unit, 0, len(specs)*trials)
	for trial := 1; trial <= trials; trial++ {
		for _, s := range specs {
			units = append(units, workloads.Unit{
				Spec: s, Scale: sc, Cfg: device.IvyBridgeHD4000(), TrialSeed: int64(trial),
			})
		}
	}
	return units
}

// sweep runs the unit list and returns wall time plus the encoded
// artifact of every unit, in unit order.
func sweep(ctx context.Context, units []workloads.Unit, opts workloads.PoolOptions) (time.Duration, [][]byte, error) {
	t0 := time.Now()
	outs, err := workloads.RunPool(ctx, units, opts)
	elapsed := time.Since(t0)
	if err != nil {
		return 0, nil, err
	}
	enc := make([][]byte, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return 0, nil, fmt.Errorf("unit %s: %w", units[i].Key(), o.Err)
		}
		data, err := o.Artifact.Encode()
		if err != nil {
			return 0, nil, fmt.Errorf("unit %s: encode: %w", units[i].Key(), err)
		}
		enc[i] = data
	}
	return elapsed, enc, nil
}

// detsimRecording builds the detailed-interpreter benchmark input: a
// deterministic testgen program recorded through the functional device,
// the same shape BenchmarkDetailedInterp uses.
func detsimRecording(seed int64, steps int) (*cofluent.Recording, int, error) {
	rng := rand.New(rand.NewSource(seed))
	cfg := testgen.DefaultConfig()
	p := testgen.Program(rng, fmt.Sprintf("bench%d", seed), cfg)
	sched := testgen.Driver(rng, p, steps, cfg)

	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		return nil, 0, err
	}
	ctx := cl.NewContext(dev)
	tr := cofluent.Attach(ctx)
	q := ctx.CreateQueue()
	in, err := ctx.CreateBuffer(1 << 12)
	if err != nil {
		return nil, 0, err
	}
	out, err := ctx.CreateBuffer(1 << 12)
	if err != nil {
		return nil, 0, err
	}
	data := make([]byte, 1<<12)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	if err := q.EnqueueWriteBuffer(in, 0, data); err != nil {
		return nil, 0, err
	}
	prog := ctx.CreateProgram(p)
	if err := prog.Build(); err != nil {
		return nil, 0, err
	}
	kernels := map[string]*cl.Kernel{}
	for _, k := range p.Kernels {
		ko, err := prog.CreateKernel(k.Name)
		if err != nil {
			return nil, 0, err
		}
		if err := ko.SetBuffer(0, in); err != nil {
			return nil, 0, err
		}
		if err := ko.SetBuffer(1, out); err != nil {
			return nil, 0, err
		}
		kernels[k.Name] = ko
	}
	for _, s := range sched {
		ko := kernels[s.Kernel]
		if err := ko.SetArg(0, s.Iters); err != nil {
			return nil, 0, err
		}
		if err := q.EnqueueNDRangeKernel(ko, s.GWS); err != nil {
			return nil, 0, err
		}
	}
	if err := q.Finish(); err != nil {
		return nil, 0, err
	}
	rec, err := cofluent.Record("bench", tr, []*kernel.Program{p})
	if err != nil {
		return nil, 0, err
	}
	return rec, len(tr.Timings()), nil
}

// measureDetsim times full detailed simulation of a fixed recording and
// returns throughput in millions of simulated instructions per second.
// One untimed warm-up rep steadies the runtime; the best of reps timed
// passes is reported, which is the standard defense against scheduler
// noise in a wall-clock gate.
func measureDetsim(reps int) (float64, error) {
	rec, n, err := detsimRecording(1234, 8)
	if err != nil {
		return 0, fmt.Errorf("detsim benchmark recording: %w", err)
	}
	best := 0.0
	for rep := 0; rep <= reps; rep++ {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		r, err := sim.Run(rec, []detsim.Range{{From: 0, To: n}})
		elapsed := time.Since(t0)
		if err != nil {
			return 0, fmt.Errorf("detsim benchmark run: %w", err)
		}
		if rep == 0 {
			continue // warm-up
		}
		if elapsed <= 0 || r.DetailedInstrs == 0 {
			return 0, fmt.Errorf("degenerate detsim benchmark (%v, %d instrs)", elapsed, r.DetailedInstrs)
		}
		if mips := float64(r.DetailedInstrs) / elapsed.Seconds() / 1e6; mips > best {
			best = mips
		}
	}
	return best, nil
}

// priorDetsimMIPS reads the previous report's detsim_mips, for the
// regression gate. A missing report, or one predating the field, yields
// 0 — the gate is then skipped, and this run's measurement seeds it.
func priorDetsimMIPS(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var prior report
	if err := json.Unmarshal(data, &prior); err != nil {
		return 0, fmt.Errorf("prior report %s: %w", path, err)
	}
	return prior.DetsimMIPS, nil
}

func run() (retErr error) {
	scale := flag.String("scale", "tiny", "workload scale: full, small, or tiny")
	workers := flag.Int("workers", 0, "shard count for the optimized run (0 = GOMAXPROCS)")
	trials := flag.Int("trials", 3, "trial seeds per workload (re-instrumentation pressure)")
	out := flag.String("out", "BENCH_sweep.json", "report path (written atomically)")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless optimized/baseline speedup reaches this factor")
	maxObsOverhead := flag.Float64("max-obs-overhead", 0, "fail if the traced run exceeds this multiple of the optimized wall time (0 = report only)")
	obsOverheadWarn := flag.Bool("obs-overhead-warn", false, "downgrade a -max-obs-overhead breach from a failure to a warning (for noisy shared machines)")
	overheadReps := flag.Int("overhead-reps", 3, "repetitions of the optimized and observed sweeps; the overhead gate compares median wall times")
	minDetsimRatio := flag.Float64("min-detsim-ratio", 0, "fail if detailed-interpreter MI/s falls below this fraction of the previous report's (0 = report only)")
	requireDetsimPrior := flag.Bool("require-detsim-prior", false, "fail if -min-detsim-ratio is set but no prior report exists to gate against (CI arms this so the gate can never be silently vacuous)")
	detsimReps := flag.Int("detsim-reps", 3, "timed repetitions of the detailed-interpreter benchmark (best is kept)")
	timeout := flag.Duration("timeout", 0, "overall benchmark deadline (0 = none); sweeps still running at the deadline are abandoned and their units classified as unit-timeout faults")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		return err
	}
	if *overheadReps < 1 {
		return fmt.Errorf("-overhead-reps %d: need at least one repetition", *overheadReps)
	}
	obsSess, err := obsflag.Start(obsFlags)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsSess.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	units := buildUnits(sc, *trials)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Warm-up pass: populates the page cache and steadies the Go runtime
	// so neither timed run pays one-time costs. Not timed.
	gtpin.SetDefaultRewriteCache(gtpin.NewRewriteCache())
	if _, _, err := sweep(ctx, units, workloads.PoolOptions{Workers: w}); err != nil {
		return fmt.Errorf("warm-up sweep: %w", err)
	}

	// Baseline: the pre-optimization hot path — one unit at a time, every
	// unit rewriting its kernels and re-executing its instrumented replay
	// from scratch.
	gtpin.SetDefaultRewriteCache(nil)
	baseNs, baseArt, err := sweep(ctx, units, workloads.PoolOptions{
		Workers: 1, DisableReplayCache: true,
	})
	if err != nil {
		return fmt.Errorf("baseline sweep: %w", err)
	}

	// Optimized: sharded execution sharing the content-addressed rewrite
	// cache and the per-pool replay cache. Repeated -overhead-reps times
	// with fresh caches each rep so no rep inherits warmth from the one
	// before; the median wall time feeds the speedup and overhead ratios,
	// while artifacts and cache counters come from the first rep.
	var optTimes []time.Duration
	var optArt [][]byte
	var rwStats jit.CacheStats
	var rst workloads.ReplayCacheStats
	for r := 0; r < *overheadReps; r++ {
		gtpin.SetDefaultRewriteCache(gtpin.NewRewriteCache())
		replays := workloads.NewReplayCache()
		ns, art, err := sweep(ctx, units, workloads.PoolOptions{
			Workers: w, ReplayCache: replays,
		})
		if err != nil {
			return fmt.Errorf("optimized sweep (rep %d/%d): %w", r+1, *overheadReps, err)
		}
		optTimes = append(optTimes, ns)
		if r == 0 {
			optArt = art
			if rc := gtpin.DefaultRewriteCache(); rc != nil {
				rwStats = rc.Stats()
			}
			rst = replays.Stats()
		}
	}
	optNs := median(optTimes)

	identical := len(baseArt) == len(optArt)
	for i := 0; identical && i < len(baseArt); i++ {
		identical = bytes.Equal(baseArt[i], optArt[i])
	}

	rep := report{
		Scale:         sc.Name,
		Trials:        *trials,
		Units:         len(units),
		Workers:       w,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		BaselineNs:    baseNs.Nanoseconds(),
		OptimizedNs:   optNs.Nanoseconds(),
		ByteIdentical: identical,
		OverheadReps:  *overheadReps,
	}
	rep.Speedup, err = speedup(baseNs, optNs)
	if err != nil {
		return err
	}
	rep.RewriteHits, rep.RewriteMisses = rwStats.Hits, rwStats.Misses
	rep.ReplayHits, rep.ReplayMisses = rst.Hits, rst.Misses
	rep.NativeHits, rep.NativeMisses = rst.NativeHits, rst.NativeMisses

	// Observed: the optimized configuration again, with the span tracer
	// installed — the run that proves observation changes neither the
	// artifact bytes nor (within -max-obs-overhead) the wall clock.
	// Same repetition discipline as the optimized sweep, so the gate
	// compares median to median.
	var obsTimes []time.Duration
	var obsArt [][]byte
	traceEvents := 0
	for r := 0; r < *overheadReps; r++ {
		gtpin.SetDefaultRewriteCache(gtpin.NewRewriteCache())
		prevTracer := obs.ActiveTracer()
		tracer := obs.NewTracer()
		obs.SetTracer(tracer)
		ns, art, err := sweep(ctx, units, workloads.PoolOptions{
			Workers: w, ReplayCache: workloads.NewReplayCache(),
		})
		obs.SetTracer(prevTracer)
		if err != nil {
			return fmt.Errorf("observed sweep (rep %d/%d): %w", r+1, *overheadReps, err)
		}
		obsTimes = append(obsTimes, ns)
		if r == 0 {
			obsArt = art
			traceEvents = tracer.Len()
		}
	}
	obsNs := median(obsTimes)
	obsIdentical := len(baseArt) == len(obsArt)
	for i := 0; obsIdentical && i < len(baseArt); i++ {
		obsIdentical = bytes.Equal(baseArt[i], obsArt[i])
	}
	rep.ObservedNs = obsNs.Nanoseconds()
	rep.ObsByteIdentical = obsIdentical
	rep.TraceEvents = traceEvents
	rep.ObsOverhead, err = speedup(obsNs, optNs)
	if err != nil {
		return err
	}

	// Detailed-interpreter throughput, gated against the previous report
	// (read before this run's report overwrites it).
	prior, err := priorDetsimMIPS(*out)
	if err != nil {
		return err
	}
	rep.DetsimMIPS, err = measureDetsim(*detsimReps)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := runstate.WriteFileAtomic(*out, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("bench: %d units @ %s, %d workers: baseline %v, optimized %v (%.2fx), byte-identical=%v -> %s\n",
		rep.Units, rep.Scale, rep.Workers, baseNs.Round(time.Millisecond),
		optNs.Round(time.Millisecond), rep.Speedup, identical, *out)
	fmt.Printf("bench: observed (traced) %v, overhead %.3fx (medians of %d reps), %d trace events, byte-identical=%v\n",
		obsNs.Round(time.Millisecond), rep.ObsOverhead, *overheadReps, rep.TraceEvents, obsIdentical)
	fmt.Printf("bench: detailed interpreter %.1f MI/s (prior %.1f)\n", rep.DetsimMIPS, prior)

	if !identical {
		return fmt.Errorf("optimized sweep artifacts diverge from the serial baseline")
	}
	if !obsIdentical {
		return fmt.Errorf("observed (traced) sweep artifacts diverge from the serial baseline")
	}
	if rep.TraceEvents == 0 {
		return fmt.Errorf("observed sweep recorded no trace events; tracer not wired through the pipeline")
	}
	if *minSpeedup > 0 && rep.Speedup < *minSpeedup {
		return fmt.Errorf("speedup %.2fx below required %.2fx", rep.Speedup, *minSpeedup)
	}
	if *maxObsOverhead > 0 && rep.ObsOverhead > *maxObsOverhead {
		breach := fmt.Sprintf("observability overhead %.3fx above allowed %.3fx (medians of %d reps)",
			rep.ObsOverhead, *maxObsOverhead, *overheadReps)
		if !*obsOverheadWarn {
			return errors.New(breach)
		}
		fmt.Fprintln(os.Stderr, "bench: WARNING:", breach)
	}
	if *minDetsimRatio > 0 {
		if prior <= 0 {
			// No prior report: the ratio gate has nothing to compare
			// against. Say so loudly — a silently skipped gate reads as a
			// pass — and fail outright when the caller requires a prior.
			if *requireDetsimPrior {
				return fmt.Errorf("detsim gate cannot arm: -min-detsim-ratio %.2f set but no prior report at %s (-require-detsim-prior)", *minDetsimRatio, *out)
			}
			fmt.Fprintf(os.Stderr, "bench: WARNING: detsim gate SKIPPED: no prior report at %s to compare against\n", *out)
		} else if rep.DetsimMIPS < prior**minDetsimRatio {
			return fmt.Errorf("detailed interpreter %.1f MI/s below %.0f%% of prior %.1f MI/s",
				rep.DetsimMIPS, *minDetsimRatio*100, prior)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
