// Newworkload: how a user brings their own OpenCL-style application to
// the selection methodology. The example authors a small two-phase
// molecular-dynamics-flavoured app (neighbour search + force integration,
// with an equilibration phase shift), records it under CoFluent, profiles
// it under GT-Pin, explores the interval/feature space, and prints the
// subset a simulator should run.
package main

import (
	"fmt"
	"log"
	"os"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/gtpin"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
	"gtpin/internal/profile"
	"gtpin/internal/report"
	"gtpin/internal/selection"
	"gtpin/internal/workloads"
)

// buildProgram writes the app's two kernels.
func buildProgram() (*kernel.Program, error) {
	// neighbours: per particle, scan `count` (arg 0) candidates and count
	// those within a cutoff — branchy, data-dependent.
	a := asm.NewKernel("neighbours", isa.W16)
	count := a.Arg(0)
	pos := a.Surface(0)
	nbr := a.Surface(1)
	addr, p, q, d, n, i := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Load(p, addr, pos, 4)
	a.MovI(n, 0)
	a.MovI(i, 0)
	a.Label("scan")
	a.Mad(q, asm.R(i), asm.I(613), asm.R(kernel.GIDReg))
	a.And(q, asm.R(q), asm.I(0xFFFF))
	a.Shl(q, asm.R(q), asm.I(2))
	a.Load(q, q, pos, 4)
	a.Sub(d, asm.R(p), asm.R(q))
	a.Abs(d, asm.R(d))
	a.Cmp(isa.CondLT, asm.R(d), asm.I(1<<28)) // within cutoff
	a.SetPred(isa.PredOn)
	a.AddI(n, n, 1)
	a.SetPred(isa.PredNoneMode)
	a.AddI(i, i, 1)
	a.Cmp(isa.CondLT, asm.R(i), asm.R(count))
	a.Br(isa.BranchAny, "scan")
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Store(nbr, addr, n, 4)
	a.End()
	kNbr, err := a.Build()
	if err != nil {
		return nil, err
	}

	// integrate: forces from neighbour counts, inverse-sqrt flavoured.
	b := asm.NewKernel("integrate", isa.W8)
	dt := b.Arg(0)
	nbrS := b.Surface(0)
	posS := b.Surface(1)
	ad, nv, pv, f := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.Shl(ad, asm.R(kernel.GIDReg), asm.I(2))
	b.Load(nv, ad, nbrS, 4)
	b.Load(pv, ad, posS, 4)
	b.AddI(nv, nv, 1)
	b.Math(isa.MathSqrt, f, asm.R(nv), asm.I(0))
	b.Math(isa.MathInv, f, asm.R(f), asm.I(0))
	b.Shr(f, asm.R(f), asm.I(12))
	b.Mad(pv, asm.R(f), asm.R(dt), asm.R(pv))
	b.Store(posS, ad, pv, 4)
	b.End()
	kInt, err := b.Build()
	if err != nil {
		return nil, err
	}
	return asm.Program("md-demo", kNbr, kInt)
}

func main() {
	prog, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}

	// Host driver: 400 MD steps; the first quarter is "equilibration"
	// with a wider neighbour scan — a phase the selection must represent.
	run := func(ctx *cl.Context) error {
		ctx.EmitSetupCalls()
		q := ctx.CreateQueue()
		pos, err := ctx.CreateBuffer(1 << 18)
		if err != nil {
			return err
		}
		nbr, err := ctx.CreateBuffer(1 << 18)
		if err != nil {
			return err
		}
		seed := make([]byte, 1<<18)
		for i := range seed {
			seed[i] = byte(i * 2654435761)
		}
		if err := q.EnqueueWriteBuffer(pos, 0, seed); err != nil {
			return err
		}
		p := ctx.CreateProgram(prog)
		if err := p.Build(); err != nil {
			return err
		}
		kn, err := p.CreateKernel("neighbours")
		if err != nil {
			return err
		}
		ki, err := p.CreateKernel("integrate")
		if err != nil {
			return err
		}
		if err := kn.SetBuffer(0, pos); err != nil {
			return err
		}
		if err := kn.SetBuffer(1, nbr); err != nil {
			return err
		}
		if err := ki.SetBuffer(0, nbr); err != nil {
			return err
		}
		if err := ki.SetBuffer(1, pos); err != nil {
			return err
		}
		const steps, gws = 400, 1024
		for s := 0; s < steps; s++ {
			scan := uint32(8)
			if s < steps/4 {
				scan = 20 // equilibration scans wider
			}
			if err := kn.SetArg(0, scan); err != nil {
				return err
			}
			if err := q.EnqueueNDRangeKernel(kn, gws); err != nil {
				return err
			}
			if err := ki.SetArg(0, uint32(3+s%2)); err != nil {
				return err
			}
			if err := q.EnqueueNDRangeKernel(ki, gws); err != nil {
				return err
			}
			if err := q.Finish(); err != nil {
				return err
			}
		}
		return q.EnqueueReadBuffer(pos, 0, make([]byte, 4096))
	}

	// Step 1: native timed run + recording.
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		log.Fatal(err)
	}
	dev.SetJitter(device.NewTimingJitter(1, workloads.JitterSigma))
	ctx := cl.NewContext(dev)
	tr := cofluent.Attach(ctx)
	if err := run(ctx); err != nil {
		log.Fatal(err)
	}
	rec, err := cofluent.Record("md-demo", tr, []*kernel.Program{prog})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: instrumented replay.
	idev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		log.Fatal(err)
	}
	var g *gtpin.GTPin
	if _, err := rec.Replay(idev, func(rctx *cl.Context) error {
		var aerr error
		g, aerr = gtpin.Attach(rctx, gtpin.Options{})
		return aerr
	}); err != nil {
		log.Fatal(err)
	}
	prof, err := profile.Build("md-demo", g, tr.TimesNs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d invocations, %d dynamic instructions, measured SPI %.3g s/instr\n\n",
		len(prof.Invocations), prof.TotalInstrs(), prof.MeasuredSPI())

	// Step 3: explore the 30 interval/feature configurations.
	evals, err := selection.EvaluateAll(prof, selection.Options{ApproxTarget: 10000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	best := selection.MinError(evals)
	t := report.NewTable("Top configurations by error", "Config", "Intervals", "Error%", "Speedup")
	shown := 0
	for _, ev := range evals {
		if ev.ErrorPct <= best.ErrorPct*4+0.05 && shown < 8 {
			t.Row(ev.Config.String(), ev.NumIntervals, ev.ErrorPct, ev.Speedup)
			shown++
		}
	}
	t.Write(os.Stdout)

	fmt.Printf("chosen: %s — simulate these %d invocation ranges (of %d invocations):\n",
		best.Config, len(best.Selections), len(prof.Invocations))
	for _, s := range best.Selections {
		iv := best.Intervals[s.Interval]
		fmt.Printf("  invocations [%5d, %5d): weight %.3f\n", iv.Start, iv.End, s.Ratio)
	}
}
