// Designsweep: the paper's end-to-end use case. A GPU architect wants to
// evaluate candidate designs (here: EU counts) against a large
// computational workload without simulating the whole program. The flow:
//
//  1. Profile the application natively with GT-Pin + CoFluent (fast).
//  2. Select a small representative subset of kernel invocations with
//     the SimPoint-based pipeline (no simulation needed).
//  3. Simulate only the subset in detail on each candidate design,
//     fast-forwarding the rest functionally.
//  4. Extrapolate whole-program performance from the representation
//     ratios and compare designs.
//
// The example also runs the full detailed simulation once per design to
// show the extrapolation error and the simulation-time savings.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/report"
	"gtpin/internal/selection"
	"gtpin/internal/workloads"
)

func main() {
	// The particle simulation dispatches many more channel-groups than
	// any candidate design has hardware threads, so EU count genuinely
	// changes performance.
	const appName = "cb-physics-part-sim-64k"
	sc := workloads.ScaleSmall

	// Steps 1-2: profile natively, choose the error-minimizing
	// interval/feature configuration, take its selections.
	spec, err := workloads.ByName(appName)
	if err != nil {
		log.Fatal(err)
	}
	res, err := workloads.Run(spec, sc, device.IvyBridgeHD4000(), 1)
	if err != nil {
		log.Fatal(err)
	}
	evals, err := selection.EvaluateAll(res.Profile, selection.Options{
		ApproxTarget: workloads.ApproxTarget(sc), Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := selection.MinError(evals)
	fmt.Printf("%s: %d invocations profiled; config %s selected %d of %d intervals (%.1fX simulation speedup)\n\n",
		appName, len(res.Profile.Invocations), best.Config,
		len(best.Selections), best.NumIntervals, best.Speedup)

	// Selected ranges with their extrapolation weights, sorted the way
	// detsim reports them.
	type sel struct {
		r      detsim.Range
		ratio  float64
		instrs uint64
	}
	sels := make([]sel, 0, len(best.Selections))
	for _, s := range best.Selections {
		iv := best.Intervals[s.Interval]
		sels = append(sels, sel{
			r:      detsim.Range{From: iv.Start, To: iv.End},
			ratio:  s.Ratio,
			instrs: iv.Instrs,
		})
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i].r.From < sels[j].r.From })
	ranges := make([]detsim.Range, len(sels))
	for i, s := range sels {
		ranges[i] = s.r
	}
	all := []detsim.Range{{From: 0, To: len(res.Profile.Invocations)}}

	// Steps 3-4: sweep candidate EU counts.
	t := report.NewTable("EU-count design sweep (detailed simulation)",
		"Design", "Subset SPI*", "Full SPI", "Extrap. Error", "Subset Wall", "Full Wall", "Saved")
	for _, eus := range []int{8, 16, 24, 32} {
		cfg := detsim.DefaultConfig()
		cfg.Device = device.IvyBridgeHD4000().WithEUs(eus)

		// Subset simulation: one pass, detailed only inside the ranges.
		sim, err := detsim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		subRep, err := sim.Run(res.Recording, ranges)
		if err != nil {
			log.Fatal(err)
		}
		subsetWall := time.Since(t0)
		extrapSPI := 0.0
		for i, rr := range subRep.Ranges {
			extrapSPI += sels[i].ratio * (rr.DetailedTimeNs / float64(sels[i].instrs))
		}

		// Full detailed simulation (ground truth).
		fullSim, err := detsim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		fullRep, err := fullSim.Run(res.Recording, all)
		if err != nil {
			log.Fatal(err)
		}
		fullWall := time.Since(t1)
		fullSPI := fullRep.DetailedTimeNs / float64(res.Profile.TotalInstrs())

		errPct := 100 * abs(extrapSPI-fullSPI) / fullSPI
		saved := 100 * (1 - subsetWall.Seconds()/fullWall.Seconds())
		t.Row(fmt.Sprintf("%d EUs", eus),
			fmt.Sprintf("%.3g ns/instr", extrapSPI),
			fmt.Sprintf("%.3g ns/instr", fullSPI),
			fmt.Sprintf("%.2f%%", errPct),
			fmt.Sprintf("%.0fms", subsetWall.Seconds()*1e3),
			fmt.Sprintf("%.0fms", fullWall.Seconds()*1e3),
			fmt.Sprintf("%.0f%%", saved))
	}
	t.Write(os.Stdout)
	fmt.Println("* SPI: modelled whole-program seconds-per-instruction extrapolated from the subset.")
	fmt.Println("  Wall-clock savings understate the paper's because the fast-forward path here is")
	fmt.Println("  itself an interpreter; on real hardware fast-forwarding is orders of magnitude cheaper.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
