// Cachestudy: use GT-Pin's memory-trace instrumentation to drive the
// cache simulator across candidate cache geometries — the "cache
// simulation through the use of memory traces" capability of
// Section III-B, applied to a cache design sweep.
//
// The example authors a custom kernel with a deliberate working-set
// structure (a 128 KiB hot region touched by 4 of every 5 accesses, and
// a 4 MiB cold region for the rest), runs it under GT-Pin with full
// per-channel memory tracing, and replays the captured trace through
// four candidate L3 geometries.
package main

import (
	"fmt"
	"log"
	"os"

	"gtpin/internal/asm"
	"gtpin/internal/cachesim"
	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/gtpin"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
	"gtpin/internal/report"
)

// buildScanKernel writes a kernel whose accesses split between a hot and
// a cold region: per item, `taps` (arg 0) rounds of four hot loads and
// one cold load.
func buildScanKernel() (*kernel.Program, error) {
	a := asm.NewKernel("scan", isa.W16)
	taps := a.Arg(0)
	data := a.Surface(0)
	out := a.Surface(1)
	addr, v, acc, t := a.Temp(), a.Temp(), a.Temp(), a.Temp()

	const (
		hotMask  = (128<<10)/4 - 1 // 128 KiB of 4-byte words
		coldMask = (4<<20)/4 - 1   // 4 MiB of 4-byte words
	)
	a.MovI(acc, 0)
	i := a.Temp()
	a.MovI(i, 0)
	a.Label("tap")
	for h := 0; h < 4; h++ {
		// hot: word = (gid + i*97)*7 + h*1009, folded into the hot region
		a.Mad(t, asm.R(i), asm.I(97), asm.R(kernel.GIDReg))
		a.MulI(t, t, 7)
		a.Add(t, asm.R(t), asm.I(uint32(h*1009)))
		a.And(t, asm.R(t), asm.I(hotMask))
		a.Shl(addr, asm.R(t), asm.I(2))
		a.Load(v, addr, data, 4)
		a.Add(acc, asm.R(acc), asm.R(v))
	}
	// cold: scattered over the full buffer (Knuth-hash the gid so the
	// cold stream has no spatial locality)
	a.Mul(t, asm.R(kernel.GIDReg), asm.I(2654435761))
	a.Mad(t, asm.R(i), asm.I(40503), asm.R(t))
	a.Shr(t, asm.R(t), asm.I(8))
	a.And(t, asm.R(t), asm.I(coldMask))
	a.Shl(addr, asm.R(t), asm.I(2))
	a.Load(v, addr, data, 4)
	a.Add(acc, asm.R(acc), asm.R(v))
	a.AddI(i, i, 1)
	a.Cmp(isa.CondLT, asm.R(i), asm.R(taps))
	a.Br(isa.BranchAny, "tap")
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Store(out, addr, acc, 4)
	a.End()
	k, err := a.Build()
	if err != nil {
		return nil, err
	}
	return asm.Program("cachestudy", k)
}

func main() {
	prog, err := buildScanKernel()
	if err != nil {
		log.Fatal(err)
	}

	// Run it under GT-Pin with per-channel memory tracing.
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		log.Fatal(err)
	}
	ctx := cl.NewContext(dev)
	g, err := gtpin.Attach(ctx, gtpin.Options{MemTrace: true, TraceBufBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	q := ctx.CreateQueue()
	data, _ := ctx.CreateBuffer(4 << 20)
	out, _ := ctx.CreateBuffer(64 << 10)
	p := ctx.CreateProgram(prog)
	if err := p.Build(); err != nil {
		log.Fatal(err)
	}
	k, err := p.CreateKernel("scan")
	if err != nil {
		log.Fatal(err)
	}
	check(k.SetArg(0, 24)) // 24 taps
	check(k.SetBuffer(0, data))
	check(k.SetBuffer(1, out))
	check(q.EnqueueNDRangeKernel(k, 8192))
	check(q.Finish())

	trace := g.MemTrace()
	lines := map[uint64]bool{}
	for _, a := range trace {
		lines[uint64(a.Surface)<<32|uint64(a.Addr)>>6] = true
	}
	fmt.Printf("captured %d per-channel accesses over %d distinct 64B lines (%d chunks dropped)\n\n",
		len(trace), len(lines), g.RingDrops())

	// Replay the trace through candidate L3 geometries.
	type candidate struct {
		name string
		cfg  cachesim.Config
	}
	cands := []candidate{
		{"L3 64KB 4-way", cachesim.Config{Name: "L3", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, HitNs: 10}},
		{"L3 128KB 8-way", cachesim.Config{Name: "L3", SizeBytes: 128 << 10, Ways: 8, LineBytes: 64, HitNs: 11}},
		{"L3 256KB 8-way (HD4000)", cachesim.HD4000L3()},
		{"L3 512KB 16-way", cachesim.Config{Name: "L3", SizeBytes: 512 << 10, Ways: 16, LineBytes: 64, HitNs: 14}},
	}
	t := report.NewTable("Trace-driven cache design sweep", "Geometry", "L3 Hit Rate", "LLC Hit Rate", "Avg Latency(ns)")
	for _, c := range cands {
		h, err := cachesim.NewHierarchy(180, c.cfg, cachesim.HD4000LLC())
		if err != nil {
			log.Fatal(err)
		}
		totalNs := 0.0
		for _, a := range trace {
			totalNs += h.Access(uint64(a.Surface)<<32|uint64(a.Addr), a.Kind.Writes())
		}
		l3 := h.Levels()[0].Stats()
		llc := h.Levels()[1].Stats()
		t.Row(c.name, fmt.Sprintf("%.1f%%", 100*l3.HitRate()),
			fmt.Sprintf("%.1f%%", 100*llc.HitRate()), totalNs/float64(len(trace)))
	}
	t.Write(os.Stdout)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
