// Quickstart: write a kernel in the assembler DSL, run it through the
// OpenCL-style runtime under GT-Pin instrumentation, and print the
// profile — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/gtpin"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

func main() {
	// 1. Write a kernel: y[i] = a*x[i] + y[i], `iters` times per item.
	a := asm.NewKernel("saxpy", isa.W16)
	scale := a.Arg(0)
	iters := a.Arg(1)
	x := a.Surface(0)
	y := a.Surface(1)
	addr, xv, yv, i := a.Temp(), a.Temp(), a.Temp(), a.Temp()

	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2)) // byte address = gid*4
	a.MovI(i, 0)
	a.Label("loop")
	a.Load(xv, addr, x, 4)
	a.Load(yv, addr, y, 4)
	a.Mad(yv, asm.R(scale), asm.R(xv), asm.R(yv))
	a.Store(y, addr, yv, 4)
	a.AddI(i, i, 1)
	a.Cmp(isa.CondLT, asm.R(i), asm.R(iters))
	a.Br(isa.BranchAny, "loop")
	a.End()

	k, err := a.Build()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Program("quickstart", k)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create the device and context, and attach GT-Pin before any
	// program is built — the rewriter hooks the driver JIT.
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		log.Fatal(err)
	}
	ctx := cl.NewContext(dev)
	g, err := gtpin.Attach(ctx, gtpin.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Standard OpenCL host flow: buffers, program, kernel, args,
	// enqueue, synchronize.
	const n = 256
	q := ctx.CreateQueue()
	xb, _ := ctx.CreateBuffer(4 * n)
	yb, _ := ctx.CreateBuffer(4 * n)
	data := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		data[4*i] = byte(i)
	}
	if err := q.EnqueueWriteBuffer(xb, 0, data); err != nil {
		log.Fatal(err)
	}

	p := ctx.CreateProgram(prog)
	if err := p.Build(); err != nil {
		log.Fatal(err)
	}
	ko, err := p.CreateKernel("saxpy")
	if err != nil {
		log.Fatal(err)
	}
	check(ko.SetArg(0, 3))  // a = 3
	check(ko.SetArg(1, 10)) // 10 iterations
	check(ko.SetBuffer(0, xb))
	check(ko.SetBuffer(1, yb))
	check(q.EnqueueNDRangeKernel(ko, n))
	out := make([]byte, 4*n)
	check(q.EnqueueReadBuffer(yb, 0, out)) // sync point: kernels execute here

	// 4. Read the GT-Pin profile.
	for _, rec := range g.Records() {
		fmt.Printf("kernel %s: GWS=%d, %d dynamic instructions, %dB read, %dB written\n",
			rec.Kernel, rec.GWS, rec.Instrs, rec.BytesRead, rec.BytesWritten)
		fmt.Println("instruction mix:")
		for c, count := range rec.ByCategory {
			fmt.Printf("  %-12s %6d (%.1f%%)\n", isa.Category(c), count,
				100*float64(count)/float64(rec.Instrs))
		}
		fmt.Println("per-block execution counts:")
		for b, count := range rec.BlockCounts {
			fmt.Printf("  block %d: %d\n", b, count)
		}
	}
	fmt.Printf("result y[5] = %d (want 5*3*10 = 150)\n", out[4*5+0])
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
