// Reproduction guard tests: pin the paper's headline claims so a
// regression in any layer (workloads, timing model, instrumentation,
// selection pipeline) fails `go test` rather than silently skewing the
// reproduced figures. Bands are generous — they assert shape, not exact
// numbers — and the workloads run at tiny scale.
package gtpin_test

import (
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/isa"
	"gtpin/internal/selection"
	"gtpin/internal/stats"
	"gtpin/internal/workloads"
)

// TestReproTableI: 25 applications in the paper's four suites.
func TestReproTableI(t *testing.T) {
	f := getFixture(t)
	if len(f.specs) != 25 {
		t.Fatalf("suite has %d applications, want 25", len(f.specs))
	}
}

// TestReproFig3a: API-call mix bands.
func TestReproFig3a(t *testing.T) {
	f := getFixture(t)
	var kp, sp []float64
	for _, spec := range f.specs {
		k, s, _ := f.results[spec.Name].Tracer.BreakdownPct()
		kp = append(kp, k)
		sp = append(sp, s)
	}
	if m := stats.Mean(kp); m < 8 || m > 35 {
		t.Errorf("mean kernel-call share %.1f%% outside band (paper ~15%%)", m)
	}
	if m := stats.Mean(sp); m < 3 || m > 14 {
		t.Errorf("mean sync-call share %.1f%% outside band (paper 6.8%%)", m)
	}
}

// TestReproFig4a: instruction-mix bands.
func TestReproFig4a(t *testing.T) {
	f := getFixture(t)
	var comp []float64
	for _, spec := range f.specs {
		agg := f.results[spec.Name].Profile.Aggregate()
		comp = append(comp, stats.Pct(float64(agg.ByCategory[isa.CatComputation]), float64(agg.Instrs)))
	}
	if m := stats.Mean(comp); m < 25 || m > 50 {
		t.Errorf("mean computation share %.1f%% outside band (paper 36.2%%)", m)
	}
}

// TestReproFig6: per-application best-config accuracy and speedup bands.
func TestReproFig6(t *testing.T) {
	f := getFixture(t)
	var errs, spds []float64
	for _, spec := range f.specs {
		best := selection.MinError(f.evals[spec.Name])
		errs = append(errs, best.ErrorPct)
		spds = append(spds, best.Speedup)
	}
	if m := stats.Mean(errs); m > 1.5 {
		t.Errorf("mean best-config error %.2f%% outside band (paper 0.3%%)", m)
	}
	if w := stats.Max(errs); w > 10 {
		t.Errorf("worst best-config error %.2f%% outside band (paper 2.1%%)", w)
	}
	if m := stats.Mean(spds); m < 3 {
		t.Errorf("mean speedup %.1fX outside band (paper 35X)", m)
	}
}

// TestReproFig7: threshold relaxation must never reduce the speedup.
func TestReproFig7(t *testing.T) {
	f := getFixture(t)
	prev := 0.0
	for _, thr := range []float64{0.5, 1, 2, 3, 5, 8, 10} {
		var spds []float64
		for _, spec := range f.specs {
			spds = append(spds, selection.SmallestUnderThreshold(f.evals[spec.Name], thr).Speedup)
		}
		m := stats.Mean(spds)
		if m < prev-1e-9 {
			t.Errorf("speedup not monotone at threshold %.1f%%: %.1f < %.1f", thr, m, prev)
		}
		prev = m
	}
}

// TestReproFig8: trial-1 selections transfer to a new trial and to the
// Haswell generation within loose bands.
func TestReproFig8(t *testing.T) {
	f := getFixture(t)
	for _, tc := range []struct {
		name string
		cfg  device.Config
		seed int64
		band float64
		most int
	}{
		{"trial2", device.IvyBridgeHD4000(), 2, 3, 20},
		{"350MHz", device.IvyBridgeHD4000().WithFrequency(350), 1, 3, 20},
		{"haswell", device.HaswellHD4600(), 1, 3, 15},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			under := 0
			for _, spec := range f.specs {
				res := f.results[spec.Name]
				best := selection.MinError(f.evals[spec.Name])
				times, err := workloads.TimedReplay(res.Recording, tc.cfg, tc.seed)
				if err != nil {
					t.Fatal(err)
				}
				e, err := selection.CrossError(best, res.Profile, times)
				if err != nil {
					t.Fatal(err)
				}
				if e < tc.band {
					under++
				}
			}
			if under < tc.most {
				t.Errorf("only %d/25 applications below %.0f%% error", under, tc.band)
			}
		})
	}
}

// TestReproBBFeaturesBeatKN: aggregated across interval schemes, BB
// features are not meaningfully worse than plain KN — the paper's central
// feature-space finding (at full scale BB wins decisively within every
// scheme; tiny-scale intervals are too few for a per-scheme assertion).
func TestReproBBFeaturesBeatKN(t *testing.T) {
	f := getFixture(t)
	var knErr, bbErr []float64
	for _, spec := range f.specs {
		for _, ev := range f.evals[spec.Name] {
			switch ev.Config.Feature.String() {
			case "KN":
				knErr = append(knErr, ev.ErrorPct)
			case "BB":
				bbErr = append(bbErr, ev.ErrorPct)
			}
		}
	}
	if len(knErr) != 75 || len(bbErr) != 75 { // 25 apps × 3 schemes
		t.Fatalf("unexpected sample sizes: KN %d, BB %d", len(knErr), len(bbErr))
	}
	if stats.Mean(bbErr) > stats.Mean(knErr)*1.5 {
		t.Errorf("BB mean error %.2f%% far worse than KN %.2f%%",
			stats.Mean(bbErr), stats.Mean(knErr))
	}
}
