// Package testgen generates random, well-formed kernels and host drivers
// for property-based testing: the same generated program is run through
// the fast functional device, the instrumented (GT-Pin) path, and the
// detailed simulator, and the test suites assert the three agree on
// architectural results and dynamic counts.
package testgen

import (
	"math/rand"

	"gtpin/internal/asm"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// Config bounds the generated programs.
type Config struct {
	MaxKernels   int // ≥1
	MaxBlockOps  int // straight-line ops per segment
	MaxLoopIters int // loop trip counts

	// Timers folds EU timestamp reads (MsgTimer sends) into the stored
	// results. Backends disagree on live timer values, so tests that turn
	// this on must install the same deterministic timer hook on every
	// backend under comparison.
	Timers bool
	// PredOff emits regions where every channel is predicated off —
	// including a predicated load — exercising the
	// no-write/no-scoreboard-update paths.
	PredOff bool
}

// DefaultConfig returns moderate bounds. Timers and PredOff stay off so
// seeded workloads (benchmarks, committed baselines) are unchanged.
func DefaultConfig() Config {
	return Config{MaxKernels: 3, MaxBlockOps: 8, MaxLoopIters: 6}
}

// FidelityConfig returns DefaultConfig with the interpreter-fidelity
// stressors (timer sends, fully-predicated-off regions) enabled.
func FidelityConfig() Config {
	cfg := DefaultConfig()
	cfg.Timers = true
	cfg.PredOff = true
	return cfg
}

var dataOps = []isa.Opcode{
	isa.OpMov, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpNot, isa.OpShl,
	isa.OpShr, isa.OpAsr, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpMach,
	isa.OpMad, isa.OpMin, isa.OpMax, isa.OpAbs, isa.OpAvg, isa.OpMath,
}

// Kernel generates one random kernel with loops, predication,
// data-dependent branches, and memory traffic over two surfaces.
func Kernel(rng *rand.Rand, name string, cfg Config) *kernel.Kernel {
	widths := []isa.Width{isa.W8, isa.W16}
	a := asm.NewKernel(name, widths[rng.Intn(len(widths))])
	iters := a.Arg(0)
	in := a.Surface(0)
	out := a.Surface(1)
	regs := a.Temps(6)
	addr := a.Temp()

	// Seed registers from the ABI and memory.
	a.Mov(regs[0], asm.R(kernel.GIDReg))
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Load(regs[1], addr, in, 4)
	a.MovI(regs[2], rng.Uint32())
	a.Mov(regs[3], asm.R(kernel.TIDReg))
	a.MovI(regs[4], rng.Uint32()|1)
	a.MovI(regs[5], 0)

	emitOps := func(n int) {
		for i := 0; i < n; i++ {
			op := dataOps[rng.Intn(len(dataOps))]
			dst := regs[rng.Intn(len(regs))]
			s0 := asm.R(regs[rng.Intn(len(regs))])
			var s1 isa.Operand
			if rng.Intn(3) == 0 {
				s1 = asm.I(rng.Uint32())
			} else {
				s1 = asm.R(regs[rng.Intn(len(regs))])
			}
			switch op {
			case isa.OpMov, isa.OpNot, isa.OpAbs:
				a.Mov(dst, s0)
			case isa.OpMad:
				a.Mad(dst, s0, s1, asm.R(regs[rng.Intn(len(regs))]))
			case isa.OpMath:
				fns := []isa.MathFn{isa.MathInv, isa.MathSqrt, isa.MathIDiv, isa.MathLog2, isa.MathSin}
				a.Math(fns[rng.Intn(len(fns))], dst, s0, s1)
			default:
				switch op {
				case isa.OpAnd:
					a.And(dst, s0, s1)
				case isa.OpOr:
					a.Or(dst, s0, s1)
				case isa.OpXor:
					a.Xor(dst, s0, s1)
				case isa.OpShl:
					a.Shl(dst, s0, s1)
				case isa.OpShr:
					a.Shr(dst, s0, s1)
				case isa.OpAsr:
					a.Asr(dst, s0, s1)
				case isa.OpAdd:
					a.Add(dst, s0, s1)
				case isa.OpSub:
					a.Sub(dst, s0, s1)
				case isa.OpMul:
					a.Mul(dst, s0, s1)
				case isa.OpMach:
					a.Mach(dst, s0, s1)
				case isa.OpMin:
					a.Min(dst, s0, s1)
				case isa.OpMax:
					a.Max(dst, s0, s1)
				case isa.OpAvg:
					a.Avg(dst, s0, s1)
				}
			}
		}
	}

	// Optional counted loop with a memory access and predicated update.
	if rng.Intn(2) == 0 {
		i := a.Temp()
		a.MovI(i, 0)
		a.Label("loop")
		emitOps(1 + rng.Intn(cfg.MaxBlockOps))
		a.And(addr, asm.R(regs[0]), asm.I(0x3FF))
		a.Shl(addr, asm.R(addr), asm.I(2))
		a.Load(regs[1], addr, in, 4)
		if rng.Intn(2) == 0 {
			a.Cmp(isa.CondLT, asm.R(regs[1]), asm.I(1<<31))
			a.SetPred(isa.PredOn)
			a.AddI(regs[5], regs[5], 1)
			a.SetPred(isa.PredNoneMode)
		}
		a.AddI(i, i, 1)
		a.Cmp(isa.CondLT, asm.R(i), asm.R(iters))
		a.Br(isa.BranchAny, "loop")
	} else {
		emitOps(2 + rng.Intn(cfg.MaxBlockOps))
		// Data-dependent branch over a diamond.
		a.Cmp(isa.CondGT, asm.R(regs[1]), asm.R(regs[2]))
		a.Br(isa.BranchAll, "big")
		emitOps(1 + rng.Intn(cfg.MaxBlockOps))
		a.Jmp("join")
		a.Label("big")
		emitOps(1 + rng.Intn(cfg.MaxBlockOps))
		a.Label("join")
	}

	if cfg.PredOff {
		// Fully-predicated-off region: a register compared with itself is
		// false on every channel, so with PredOn nothing executes. The ops
		// below — including the load — must write no state and must not
		// create a scoreboard dependency on their destinations.
		a.Cmp(isa.CondLT, asm.R(regs[3]), asm.R(regs[3]))
		a.SetPred(isa.PredOn)
		emitOps(1 + rng.Intn(3))
		a.And(addr, asm.R(regs[0]), asm.I(0x3FF))
		a.Shl(addr, asm.R(addr), asm.I(2))
		a.Load(regs[1], addr, in, 4)
		a.AddI(regs[5], regs[5], 7)
		a.SetPred(isa.PredNoneMode)
	}
	if cfg.Timers {
		// Fold a timestamp read into the stored result. MsgTimer writes
		// channel 0 only, so the temp is zeroed first.
		rt := a.Temp()
		a.MovI(rt, 0)
		a.Timer(rt)
		a.Add(regs[5], asm.R(regs[5]), asm.R(rt))
	}

	// Result store, sometimes atomic.
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	if rng.Intn(4) == 0 {
		one := a.Temp()
		a.MovI(one, 1)
		a.AtomicAdd(regs[4], out, addr, one, 4)
	}
	a.Store(out, addr, regs[5], 4)
	a.Store(out, addr, regs[1], 4)
	a.End()
	return a.MustBuild()
}

// Program generates a random program of 1..MaxKernels kernels.
func Program(rng *rand.Rand, name string, cfg Config) *kernel.Program {
	n := 1 + rng.Intn(cfg.MaxKernels)
	ks := make([]*kernel.Kernel, n)
	for i := range ks {
		ks[i] = Kernel(rng, name+"_k"+string(rune('a'+i)), cfg)
	}
	return asm.MustProgram(name, ks...)
}

// DriverStep describes one generated host action.
type DriverStep struct {
	Kernel string
	GWS    int
	Iters  uint32
	Sync   bool // issue a sync call after the enqueue
}

// Driver generates a deterministic host schedule over the program's
// kernels: which kernel to enqueue, with what work size and trip count,
// and where the synchronization points fall.
func Driver(rng *rand.Rand, p *kernel.Program, steps int, cfg Config) []DriverStep {
	out := make([]DriverStep, steps)
	gwss := []int{16, 32, 48, 64, 128}
	for i := range out {
		k := p.Kernels[rng.Intn(len(p.Kernels))]
		out[i] = DriverStep{
			Kernel: k.Name,
			GWS:    gwss[rng.Intn(len(gwss))],
			Iters:  uint32(1 + rng.Intn(cfg.MaxLoopIters)),
			Sync:   rng.Intn(3) == 0 || i == steps-1,
		}
	}
	return out
}
