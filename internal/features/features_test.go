package features_test

import (
	"reflect"
	"testing"

	"gtpin/internal/features"
	"gtpin/internal/intervals"
	"gtpin/internal/kernel"
	"gtpin/internal/profile"
)

// twoKernelProfile builds a profile with two kernels: kA has two blocks
// (3-instr and 20-instr, the paper's weighting example), kB has one
// send-heavy block.
func twoKernelProfile(t *testing.T) *profile.Profile {
	t.Helper()
	ks := []profile.KernelStatic{
		{
			Name: "kA",
			Blocks: []kernel.BlockStats{
				{Instrs: 3},
				{Instrs: 20, BytesRead: 64, BytesWritten: 32},
			},
			StaticInstrs: 23,
		},
		{
			Name: "kB",
			Blocks: []kernel.BlockStats{
				{Instrs: 5, BytesRead: 128},
			},
			StaticInstrs: 5,
		},
	}
	invs := []profile.Invocation{
		{
			Seq: 0, KernelIdx: 0, ArgsKey: 111, GWS: 64, SyncEpoch: 0,
			// Block A executed 10 times, block B 5 times — the Section
			// V-B example.
			BlockCounts:  []uint64{10, 5},
			Instrs:       10*3 + 5*20,
			BytesRead:    5 * 64,
			BytesWritten: 5 * 32,
			TimeSec:      1e-6,
		},
		{
			Seq: 1, KernelIdx: 1, ArgsKey: 222, GWS: 32, SyncEpoch: 0,
			BlockCounts: []uint64{7},
			Instrs:      35,
			BytesRead:   7 * 128,
			TimeSec:     2e-7,
		},
		{
			Seq: 2, KernelIdx: 0, ArgsKey: 111, GWS: 128, SyncEpoch: 1,
			// A different block mix than invocation 0 (10:5), so BB
			// features distinguish the two in normalized form.
			BlockCounts:  []uint64{2, 3},
			Instrs:       2*3 + 3*20,
			BytesRead:    3 * 64,
			BytesWritten: 3 * 32,
			TimeSec:      3e-7,
		},
	}
	p, err := profile.New("feat", ks, invs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wholeProgram(p *profile.Profile) intervals.Interval {
	iv := intervals.Interval{Start: 0, End: len(p.Invocations)}
	for i := range p.Invocations {
		iv.Instrs += p.Invocations[i].Instrs
		iv.TimeSec += p.Invocations[i].TimeSec
	}
	return iv
}

// TestBBWeightingMatchesPaperExample: with block A executed 10 times at
// 3 instructions and block B 5 times at 20 instructions, the weighted
// scores must be 30 and 100 — B dominates despite fewer executions
// (Section V-B).
func TestBBWeightingMatchesPaperExample(t *testing.T) {
	p := twoKernelProfile(t)
	iv := intervals.Interval{Start: 0, End: 1, Instrs: p.Invocations[0].Instrs}
	v := features.Extract(p, iv, features.BB)
	if len(v) != 2 {
		t.Fatalf("BB vector has %d entries, want 2", len(v))
	}
	var vals []float64
	for _, x := range v {
		vals = append(vals, x)
	}
	if !(contains(vals, 30) && contains(vals, 100)) {
		t.Errorf("weighted scores = %v, want {30, 100}", vals)
	}
}

func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestKNDegeneratesForSingleKernelIntervals: intervals containing only
// one kernel produce KN vectors that are identical after normalization —
// the reason kernel-only features fail for applications with few unique
// kernels.
func TestKNDegeneratesForSingleKernelIntervals(t *testing.T) {
	p := twoKernelProfile(t)
	iv0 := intervals.Interval{Start: 0, End: 1, Instrs: p.Invocations[0].Instrs}
	iv2 := intervals.Interval{Start: 2, End: 3, Instrs: p.Invocations[2].Instrs}
	v0 := features.Extract(p, iv0, features.KN)
	v2 := features.Extract(p, iv2, features.KN)
	if len(v0) != 1 || len(v2) != 1 {
		t.Fatalf("KN vectors: %v %v", v0, v2)
	}
	// Same single key: after L1 normalization they are indistinguishable.
	for k := range v0 {
		if _, ok := v2[k]; !ok {
			t.Error("same kernel must map to the same KN key")
		}
	}
	// BB features distinguish them (different block-count mixes).
	b0 := features.Extract(p, iv0, features.BB)
	b2 := features.Extract(p, iv2, features.BB)
	same := true
	for k, x := range b0 {
		if b2[k]/b2mass(b2) != x/b2mass(b0) {
			same = false
		}
	}
	if same {
		t.Error("BB vectors should differ in normalized form")
	}
}

func b2mass(v features.Vector) float64 { return v.L1() }

func TestKNArgsDistinguishesArguments(t *testing.T) {
	p := twoKernelProfile(t)
	// Mutate invocation 2's ArgsKey so KN-ARGS sees a new event.
	p.Invocations[2].ArgsKey = 999
	iv := wholeProgram(p)
	kn := features.Extract(p, iv, features.KN)
	knArgs := features.Extract(p, iv, features.KNArgs)
	if len(kn) != 2 {
		t.Errorf("KN keys = %d, want 2 (two kernels)", len(kn))
	}
	if len(knArgs) != 3 {
		t.Errorf("KN-ARGS keys = %d, want 3 (kA twice with different args, kB)", len(knArgs))
	}
}

func TestKNGWSDistinguishesWorkSizes(t *testing.T) {
	p := twoKernelProfile(t)
	iv := wholeProgram(p)
	knGWS := features.Extract(p, iv, features.KNGWS)
	// kA at GWS 64 and 128, kB at 32 → 3 keys.
	if len(knGWS) != 3 {
		t.Errorf("KN-GWS keys = %d, want 3", len(knGWS))
	}
	knAll := features.Extract(p, iv, features.KNArgsGWS)
	if len(knAll) != 3 {
		t.Errorf("KN-ARGS-GWS keys = %d, want 3", len(knAll))
	}
}

func TestMemoryAugmentedVectors(t *testing.T) {
	p := twoKernelProfile(t)
	iv := intervals.Interval{Start: 0, End: 1, Instrs: p.Invocations[0].Instrs}

	bb := features.Extract(p, iv, features.BB)
	bbr := features.Extract(p, iv, features.BBR)
	bbw := features.Extract(p, iv, features.BBW)
	bbrw := features.Extract(p, iv, features.BBRW)
	bbrpw := features.Extract(p, iv, features.BBRpW)

	if len(bbr) != len(bb)+1 { // only block 1 reads
		t.Errorf("BB-R entries = %d, want %d", len(bbr), len(bb)+1)
	}
	if len(bbw) != len(bb)+1 {
		t.Errorf("BB-W entries = %d, want %d", len(bbw), len(bb)+1)
	}
	if len(bbrw) != len(bb)+2 {
		t.Errorf("BB-R-W entries = %d, want %d", len(bbrw), len(bb)+2)
	}
	if len(bbrpw) != len(bb)+1 {
		t.Errorf("BB-(R+W) entries = %d, want %d", len(bbrpw), len(bb)+1)
	}
	// Byte values: block 1 read 5×64, written 5×32; combined 5×96.
	if !contains(values(bbr), 320) {
		t.Errorf("BB-R values = %v, want read mass 320", values(bbr))
	}
	if !contains(values(bbw), 160) {
		t.Errorf("BB-W values = %v", values(bbw))
	}
	if !contains(values(bbrpw), 480) {
		t.Errorf("BB-(R+W) values = %v", values(bbrpw))
	}

	knrw := features.Extract(p, iv, features.KNRW)
	if len(knrw) != 3 { // exec + read + write for one kernel
		t.Errorf("KN-RW entries = %d, want 3", len(knrw))
	}
}

func values(v features.Vector) []float64 {
	out := make([]float64, 0, len(v))
	for _, x := range v {
		out = append(out, x)
	}
	return out
}

func TestVectorsAreDeterministic(t *testing.T) {
	p := twoKernelProfile(t)
	iv := wholeProgram(p)
	for _, k := range features.Kinds {
		a := features.Extract(p, iv, k)
		b := features.Extract(p, iv, k)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s extraction not deterministic", k)
		}
	}
}

func TestExtractAllMatchesPerInterval(t *testing.T) {
	p := twoKernelProfile(t)
	ivs, err := intervals.Divide(p, intervals.Kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := features.ExtractAll(p, ivs, features.BB)
	for i, iv := range ivs {
		if !reflect.DeepEqual(all[i], features.Extract(p, iv, features.BB)) {
			t.Errorf("interval %d differs", i)
		}
	}
}

func TestKindPredicatesAndNames(t *testing.T) {
	for _, k := range features.Kinds {
		if k.String() == "" {
			t.Error("kind without name")
		}
	}
	if features.KN.IsBlockBased() || !features.BB.IsBlockBased() {
		t.Error("block-based predicate wrong")
	}
	if features.BB.UsesMemory() || !features.BBR.UsesMemory() || !features.KNRW.UsesMemory() {
		t.Error("memory predicate wrong")
	}
	if features.NumKinds != 10 {
		t.Error("Table III has ten feature vectors")
	}
}

func TestL1Mass(t *testing.T) {
	v := features.Vector{1: 30, 2: 100}
	if v.L1() != 130 {
		t.Errorf("L1 = %f", v.L1())
	}
	if (features.Vector{}).L1() != 0 {
		t.Error("empty L1")
	}
}

// TestExecMassEqualsInstructions: for every kind, the execution-count
// dimensions sum to the interval's dynamic instructions (the weighting
// invariant).
func TestExecMassEqualsInstructions(t *testing.T) {
	p := twoKernelProfile(t)
	iv := wholeProgram(p)
	for _, k := range []features.Kind{features.KN, features.KNArgs, features.KNGWS, features.KNArgsGWS, features.BB} {
		v := features.Extract(p, iv, k)
		if got := v.L1(); got != float64(iv.Instrs) {
			t.Errorf("%s: exec mass %f != instrs %d", k, got, iv.Instrs)
		}
	}
}
