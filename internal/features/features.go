// Package features constructs the per-interval feature vectors of
// Table III in the paper: ten vector types spanning kernel-level and
// basic-block-level program events, optionally augmented with memory
// interaction (bytes read/written) and invocation parameters (argument
// values, global work size).
//
// A feature vector is a sparse map from feature key to weighted dynamic
// count. Keys are distinct program events ("calls to kernel foo",
// "executions of block 17", "calls to kernel foo with argument 256").
// Following Section V-B, entries are weighted by instruction count so
// that differently sized kernels and blocks carry proportional weight:
// a block executed 10 times counting 3 instructions scores 30, while one
// executed 5 times counting 20 instructions scores 100.
//
// The memory-augmented vectors (BB-R, KN-RW, ...) extend the base vector
// with additional dimensions that accumulate the bytes read and/or
// written attributed to each block or kernel, capturing data interaction
// that pure execution counts miss.
package features

import (
	"fmt"

	"gtpin/internal/intervals"
	"gtpin/internal/profile"
)

// Kind identifies one of the ten feature-vector constructions.
type Kind uint8

// The feature space of Table III.
const (
	KN        Kind = iota // kernel execution counts
	KNArgs                // kernel + argument values
	KNGWS                 // kernel + global work size
	KNArgsGWS             // kernel + argument values + global work size
	KNRW                  // kernel + bytes read + bytes written
	BB                    // basic block execution counts
	BBR                   // basic block + bytes read
	BBW                   // basic block + bytes written
	BBRW                  // basic block + bytes read + bytes written
	BBRpW                 // basic block + (bytes read + bytes written)
	NumKinds  = 10
)

// Kinds lists all feature kinds in Table III order.
var Kinds = [NumKinds]Kind{KN, KNArgs, KNGWS, KNArgsGWS, KNRW, BB, BBR, BBW, BBRW, BBRpW}

// String returns the paper's identifier for the kind.
func (k Kind) String() string {
	switch k {
	case KN:
		return "KN"
	case KNArgs:
		return "KN-ARGS"
	case KNGWS:
		return "KN-GWS"
	case KNArgsGWS:
		return "KN-ARGS-GWS"
	case KNRW:
		return "KN-RW"
	case BB:
		return "BB"
	case BBR:
		return "BB-R"
	case BBW:
		return "BB-W"
	case BBRW:
		return "BB-R-W"
	case BBRpW:
		return "BB-(R+W)"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsBlockBased reports whether the kind keys on basic blocks rather than
// kernels.
func (k Kind) IsBlockBased() bool { return k >= BB }

// UsesMemory reports whether the kind includes memory-interaction
// dimensions.
func (k Kind) UsesMemory() bool {
	switch k {
	case KNRW, BBR, BBW, BBRW, BBRpW:
		return true
	}
	return false
}

// Vector is a sparse feature vector: feature key → weighted value.
type Vector map[uint64]float64

// Feature key construction: the low bits carry the program-event identity
// (global block ID, or kernel index mixed with argument/GWS identity);
// the top byte tags the dimension class so execution-count dimensions and
// memory dimensions never collide.
const (
	tagExec  uint64 = 0 << 56
	tagRead  uint64 = 1 << 56
	tagWrite uint64 = 2 << 56
	tagRW    uint64 = 3 << 56
)

func mix(a, b uint64) uint64 {
	// splitmix64-style mixing for composite keys.
	x := a ^ (b + 0x9E3779B97F4A7C15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x &^ (uint64(0xFF) << 56)
}

// Extract builds the feature vector of kind k for interval iv of profile p.
func Extract(p *profile.Profile, iv intervals.Interval, k Kind) Vector {
	v := make(Vector)
	for i := iv.Start; i < iv.End; i++ {
		inv := &p.Invocations[i]
		if k.IsBlockBased() {
			extractBlocks(p, inv, k, v)
		} else {
			extractKernel(p, inv, k, v)
		}
	}
	return v
}

func extractKernel(p *profile.Profile, inv *profile.Invocation, k Kind, v Vector) {
	key := uint64(inv.KernelIdx)
	switch k {
	case KNArgs:
		key = mix(key, inv.ArgsKey)
	case KNGWS:
		key = mix(key, uint64(inv.GWS))
	case KNArgsGWS:
		key = mix(mix(key, inv.ArgsKey), uint64(inv.GWS))
	}
	// Execution-count dimension, instruction-weighted: the invocation's
	// dynamic instructions are exactly count × per-invocation size.
	v[tagExec|key] += float64(inv.Instrs)
	if k == KNRW {
		v[tagRead|key] += float64(inv.BytesRead)
		v[tagWrite|key] += float64(inv.BytesWritten)
	}
}

func extractBlocks(p *profile.Profile, inv *profile.Invocation, k Kind, v Vector) {
	ks := &p.Kernels[inv.KernelIdx]
	for b, count := range inv.BlockCounts {
		if count == 0 {
			continue
		}
		bs := &ks.Blocks[b]
		key := uint64(ks.BlockBase + b)
		// Execution count weighted by block instruction size.
		v[tagExec|key] += float64(count * uint64(bs.Instrs))
		switch k {
		case BBR:
			if bs.BytesRead > 0 {
				v[tagRead|key] += float64(count * bs.BytesRead)
			}
		case BBW:
			if bs.BytesWritten > 0 {
				v[tagWrite|key] += float64(count * bs.BytesWritten)
			}
		case BBRW:
			if bs.BytesRead > 0 {
				v[tagRead|key] += float64(count * bs.BytesRead)
			}
			if bs.BytesWritten > 0 {
				v[tagWrite|key] += float64(count * bs.BytesWritten)
			}
		case BBRpW:
			if t := bs.BytesRead + bs.BytesWritten; t > 0 {
				v[tagRW|key] += float64(count * t)
			}
		}
	}
}

// ExtractRawBB builds an *unweighted* basic-block vector: values are raw
// execution counts, not instruction-weighted ones. It exists for the
// ablation of Section V-B's weighting argument (a 3-instruction block
// executed 10 times would outscore a 20-instruction block executed 5
// times without weighting); the selection pipeline never uses it.
func ExtractRawBB(p *profile.Profile, iv intervals.Interval) Vector {
	v := make(Vector)
	for i := iv.Start; i < iv.End; i++ {
		inv := &p.Invocations[i]
		ks := &p.Kernels[inv.KernelIdx]
		for b, count := range inv.BlockCounts {
			if count == 0 {
				continue
			}
			v[tagExec|uint64(ks.BlockBase+b)] += float64(count)
		}
	}
	return v
}

// ExtractAll builds one vector per interval.
func ExtractAll(p *profile.Profile, ivs []intervals.Interval, k Kind) []Vector {
	out := make([]Vector, len(ivs))
	for i, iv := range ivs {
		out[i] = Extract(p, iv, k)
	}
	return out
}

// L1 returns the vector's L1 mass (sum of absolute values; all entries
// are non-negative by construction).
func (v Vector) L1() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
