package jit

import (
	"bytes"
	"reflect"
	"testing"

	"gtpin/internal/isa"
)

// TestCompileDecodePerDialect: the binary format carries the dialect
// and round-trips kernels under each dialect's own instruction layout.
func TestCompileDecodePerDialect(t *testing.T) {
	for _, d := range isa.Dialects() {
		k := sampleKernel(t, "k-"+d.String())
		k.Dialect = d
		if err := k.Validate(); err != nil {
			t.Fatalf("%v: sample kernel invalid: %v", d, err)
		}
		bin, err := Compile(k)
		if err != nil {
			t.Fatalf("%v: compile: %v", d, err)
		}
		got, err := BinaryDialect(bin)
		if err != nil {
			t.Fatalf("%v: BinaryDialect: %v", d, err)
		}
		if got != d {
			t.Errorf("BinaryDialect = %v, want %v", got, d)
		}
		dec, err := Decode(bin)
		if err != nil {
			t.Fatalf("%v: decode: %v", d, err)
		}
		if !reflect.DeepEqual(k, dec) {
			t.Errorf("%v: decode(compile(k)) != k", d)
		}
	}
}

// TestCompiledBytesDifferAcrossDialects: the same IR compiles to
// different code bytes per dialect — the instruction words really are
// encoded in the dialect's layout, not just tagged in the header.
func TestCompiledBytesDifferAcrossDialects(t *testing.T) {
	gen := sampleKernel(t, "same")
	genx := sampleKernel(t, "same")
	genx.Dialect = isa.DialectGENX

	bg, err := Compile(gen)
	if err != nil {
		t.Fatal(err)
	}
	bx, err := Compile(genx)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the headers (identical up to the dialect byte) and compare
	// the instruction stream regions.
	if bytes.Equal(bg.Code[6:], bx.Code[6:]) {
		t.Error("instruction words identical across dialects")
	}
}

func TestBinaryDialectRejectsGarbage(t *testing.T) {
	if _, err := BinaryDialect(&Binary{Code: []byte{1, 2, 3}}); err == nil {
		t.Error("short code must fail")
	}
	if _, err := BinaryDialect(&Binary{Code: make([]byte, 16)}); err == nil {
		t.Error("bad magic must fail")
	}
}
