package jit

import (
	"sync"
	"testing"
)

func TestCacheKeyBoundaries(t *testing.T) {
	a := Key([]byte("ab"), []byte("c"))
	b := Key([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("part boundaries must be part of the content address")
	}
	if Key([]byte("x")) != Key([]byte("x")) {
		t.Fatal("Key must be deterministic")
	}
	if Key() == Key([]byte{}) {
		t.Fatal("zero parts and one empty part must hash differently")
	}
}

func TestCacheGetPutStats(t *testing.T) {
	c := NewCache()
	k := Key([]byte("bin"))
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache must miss")
	}
	bin := &Binary{Code: []byte{1, 2, 3}}
	c.Put(k, CacheEntry{Bin: bin, Meta: "m"})
	e, ok := c.Get(k)
	if !ok || e.Bin != bin || e.Meta != "m" {
		t.Fatalf("got %+v ok=%v", e, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	c.Reset()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key([]byte{byte(i % 16)})
				if e, ok := c.Get(k); ok {
					if e.Bin.Code[0] != byte(i%16) {
						panic("wrong entry under key")
					}
				} else {
					c.Put(k, CacheEntry{Bin: &Binary{Code: []byte{byte(i % 16)}}})
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 16 {
		t.Fatalf("entries = %d, want 16", st.Entries)
	}
}
