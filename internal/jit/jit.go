// Package jit models the GPU driver's just-in-time kernel compiler: it
// lowers kernel IR to flat, machine-specific device binaries and decodes
// such binaries back to IR.
//
// In the real system the driver JIT-compiles OpenCL C when
// clBuildProgram is issued; here the "source" is already IR, so
// compilation is serialization into the 16-byte/instruction GEN-flavoured
// encoding plus a small header. The significance of the binary form is
// that it is the interception point for the GT-Pin binary rewriter
// (gtpin/internal/gtpin), which decodes, instruments, and re-encodes the
// binary before the driver hands it to the device — exactly the flow in
// Figure 1 of the paper. Downstream, a dispatched binary is decoded
// once (and memoized) by its backend and interpreted by the shared
// execution engine (gtpin/internal/engine).
package jit

import (
	"encoding/binary"
	"fmt"

	"gtpin/internal/faults"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// Magic identifies a device kernel binary.
const Magic = 0x424E4547 // "GENB"

// Version is the binary format version. Version 2 added the dialect
// byte to the header and encodes instruction words in the kernel's
// dialect surface rather than always in GEN's.
const Version = 2

// Binary is a compiled, machine-specific kernel binary as produced by the
// driver JIT and consumed by the device.
type Binary struct {
	Code []byte
}

// Compile lowers a validated kernel to a device binary in the kernel's
// dialect encoding.
//
// Layout (little-endian):
//
//	u32 magic, u8 version, u8 dialect, u8 simd, u8 numArgs, u8 numSurfaces
//	u16 nameLen, name bytes
//	u32 numBlocks
//	per block: u32 numInstrs, instructions (16 bytes each, in the
//	dialect's field layout)
func Compile(k *kernel.Kernel) (*Binary, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("jit: %w", err)
	}
	if len(k.Name) > 0xFFFF {
		return nil, fmt.Errorf("jit: kernel name too long (%d bytes)", len(k.Name))
	}
	return compileUnchecked(k)
}

// Decode reconstructs the kernel IR from a device binary. The result is
// validated only structurally at the instruction level; callers that
// require full IR invariants should run Kernel.Validate. (Instrumented
// binaries intentionally relax some source-level invariants, e.g. they use
// the reserved scratch registers.)
func Decode(bin *Binary) (*kernel.Kernel, error) {
	code := bin.Code
	if len(code) < 15 {
		return nil, fmt.Errorf("jit: binary too short (%d bytes): %w", len(code), faults.ErrBadBinary)
	}
	if got := binary.LittleEndian.Uint32(code); got != Magic {
		return nil, fmt.Errorf("jit: bad magic %#x: %w", got, faults.ErrBadBinary)
	}
	if code[4] != Version {
		return nil, fmt.Errorf("jit: unsupported binary version %d: %w", code[4], faults.ErrBadBinary)
	}
	k := &kernel.Kernel{
		Dialect:     isa.Dialect(code[5]),
		SIMD:        isa.Width(code[6]),
		NumArgs:     int(code[7]),
		NumSurfaces: int(code[8]),
	}
	if !k.Dialect.Valid() {
		return nil, fmt.Errorf("jit: invalid dialect %d: %w", code[5], faults.ErrBadBinary)
	}
	if !k.Dialect.WidthValid(k.SIMD) {
		return nil, fmt.Errorf("jit: invalid dispatch width %d for dialect %s: %w", code[6], k.Dialect, faults.ErrBadBinary)
	}
	nameLen := int(binary.LittleEndian.Uint16(code[9:]))
	pos := 11
	if pos+nameLen+4 > len(code) {
		return nil, fmt.Errorf("jit: truncated header: %w", faults.ErrBadBinary)
	}
	k.Name = string(code[pos : pos+nameLen])
	pos += nameLen
	numBlocks := int(binary.LittleEndian.Uint32(code[pos:]))
	pos += 4
	for id := 0; id < numBlocks; id++ {
		if pos+4 > len(code) {
			return nil, fmt.Errorf("jit: truncated block header (block %d): %w", id, faults.ErrBadBinary)
		}
		n := int(binary.LittleEndian.Uint32(code[pos:]))
		pos += 4
		if pos+n*isa.InstrBytes > len(code) {
			return nil, fmt.Errorf("jit: truncated block body (block %d): %w", id, faults.ErrBadBinary)
		}
		instrs, err := k.Dialect.DecodeSlice(code[pos : pos+n*isa.InstrBytes])
		if err != nil {
			return nil, fmt.Errorf("jit: block %d: %w: %w", id, faults.ErrBadBinary, err)
		}
		pos += n * isa.InstrBytes
		k.Blocks = append(k.Blocks, &kernel.Block{ID: id, Instrs: instrs})
	}
	if pos != len(code) {
		return nil, fmt.Errorf("jit: %d trailing bytes: %w", len(code)-pos, faults.ErrBadBinary)
	}
	return k, nil
}

// Recompile re-encodes (possibly rewritten) kernel IR into a binary
// without enforcing source-level validation, for use by the binary
// rewriter whose injected code legitimately uses scratch registers.
func Recompile(k *kernel.Kernel) (*Binary, error) {
	// Structural sanity only: block IDs sequential, control-terminated.
	for i, b := range k.Blocks {
		if b.ID != i {
			return nil, fmt.Errorf("jit: block %d has ID %d", i, b.ID)
		}
		if len(b.Instrs) == 0 || !b.Terminator().Op.IsControl() {
			return nil, fmt.Errorf("jit: block %d not control-terminated", i)
		}
	}
	return compileUnchecked(k)
}

func compileUnchecked(k *kernel.Kernel) (*Binary, error) {
	// The header encodes these counts in single bytes; larger values would
	// silently truncate and decode as a different kernel shape.
	if k.NumArgs > 0xFF || k.NumSurfaces > 0xFF {
		return nil, fmt.Errorf("jit: kernel %s: %d args / %d surfaces overflow the byte-wide header fields: %w",
			k.Name, k.NumArgs, k.NumSurfaces, faults.ErrBadBinary)
	}
	size := 4 + 5 + 2 + len(k.Name) + 4
	for _, b := range k.Blocks {
		size += 4 + len(b.Instrs)*isa.InstrBytes
	}
	code := make([]byte, 0, size)
	var scratch [4]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		code = append(code, scratch[:4]...)
	}
	putU32(Magic)
	code = append(code, Version, byte(k.Dialect), byte(k.SIMD), byte(k.NumArgs), byte(k.NumSurfaces))
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(k.Name)))
	code = append(code, scratch[:2]...)
	code = append(code, k.Name...)
	putU32(uint32(len(k.Blocks)))
	var word [isa.InstrBytes]byte
	for _, b := range k.Blocks {
		putU32(uint32(len(b.Instrs)))
		for _, in := range b.Instrs {
			if err := k.Dialect.Encode(in, word[:]); err != nil {
				return nil, fmt.Errorf("jit: kernel %s block %d: %w", k.Name, b.ID, err)
			}
			code = append(code, word[:]...)
		}
	}
	return &Binary{Code: code}, nil
}

// BinaryDialect reads the dialect byte from a binary's header without
// decoding the body — how caches that key on raw binary bytes (the
// GT-Pin rewrite cache) learn which ISA surface those bytes are in.
func BinaryDialect(bin *Binary) (isa.Dialect, error) {
	if bin == nil || len(bin.Code) < 6 {
		return 0, fmt.Errorf("jit: binary too short for a header: %w", faults.ErrBadBinary)
	}
	if got := binary.LittleEndian.Uint32(bin.Code); got != Magic {
		return 0, fmt.Errorf("jit: bad magic %#x: %w", got, faults.ErrBadBinary)
	}
	d := isa.Dialect(bin.Code[5])
	if !d.Valid() {
		return 0, fmt.Errorf("jit: invalid dialect %d: %w", bin.Code[5], faults.ErrBadBinary)
	}
	return d, nil
}

// CompileProgram compiles every kernel in the program, returning binaries
// keyed by kernel name.
func CompileProgram(p *kernel.Program) (map[string]*Binary, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("jit: %w", err)
	}
	out := make(map[string]*Binary, len(p.Kernels))
	for _, k := range p.Kernels {
		bin, err := Compile(k)
		if err != nil {
			return nil, err
		}
		out[k.Name] = bin
	}
	return out, nil
}
