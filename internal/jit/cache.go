package jit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"gtpin/internal/obs"
)

var (
	mCacheHits = obs.DefaultCounter("jit_cache_hits_total",
		"binary-cache lookups that found an entry")
	mCacheMisses = obs.DefaultCounter("jit_cache_misses_total",
		"binary-cache lookups that missed")
)

// Cache is a content-addressed store of device binaries plus arbitrary
// per-entry metadata. Keys are SHA-256 content addresses built with Key,
// so an entry is valid exactly as long as every input that shaped the
// binary hashes identically — the property the GT-Pin rewrite cache
// relies on to reuse instrumented binaries across sweep units.
//
// A Cache is safe for concurrent use by the sharded sweep workers.
// Entries are immutable after Put: the stored *Binary and metadata are
// shared by every Get, so callers must never mutate them.
type Cache struct {
	mu      sync.RWMutex
	entries map[string]CacheEntry
	hits    uint64
	misses  uint64
}

// CacheEntry is one cached binary and the metadata its producer needs to
// reinstall alongside it (e.g. GT-Pin's per-kernel instrumentation
// bookkeeping).
type CacheEntry struct {
	Bin  *Binary
	Meta any
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// NewCache creates an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]CacheEntry)}
}

// Key builds a SHA-256 content address over the parts. Each part is
// length-prefixed before hashing, so distinct part boundaries can never
// produce the same key ("ab","c" != "a","bc").
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the entry stored under key and whether it exists,
// advancing the hit/miss counters.
func (c *Cache) Get(key string) (CacheEntry, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	c.mu.Lock()
	if ok {
		c.hits++
		mCacheHits.Inc()
	} else {
		c.misses++
		mCacheMisses.Inc()
	}
	c.mu.Unlock()
	return e, ok
}

// Put stores an entry under key. Concurrent producers racing the same
// key are harmless when the entry is a deterministic function of the key
// (the rewrite cache's invariant): whichever insert wins, the bytes are
// identical.
func (c *Cache) Put(key string, e CacheEntry) {
	c.mu.Lock()
	c.entries[key] = e
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Reset drops every entry and zeroes the counters (tests and benchmark
// baselines).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]CacheEntry)
	c.hits, c.misses = 0, 0
	c.mu.Unlock()
}
