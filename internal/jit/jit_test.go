package jit

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

func sampleKernel(t *testing.T, name string) *kernel.Kernel {
	t.Helper()
	a := asm.NewKernel(name, isa.W16)
	n := a.Arg(0)
	s := a.Surface(0)
	r, i := a.Temp(), a.Temp()
	a.MovI(i, 0)
	a.Label("loop")
	a.Shl(r, asm.R(kernel.GIDReg), asm.I(2))
	a.Load(r, r, s, 4)
	a.AddI(i, i, 1)
	a.Cmp(isa.CondLT, asm.R(i), asm.R(n))
	a.Br(isa.BranchAny, "loop")
	a.End()
	k, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCompileDecodeRoundTrip(t *testing.T) {
	k := sampleKernel(t, "sample")
	bin, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != k.Name || got.SIMD != k.SIMD || got.NumArgs != k.NumArgs || got.NumSurfaces != k.NumSurfaces {
		t.Errorf("header mismatch: %+v vs %+v", got, k)
	}
	if len(got.Blocks) != len(k.Blocks) {
		t.Fatalf("block count %d vs %d", len(got.Blocks), len(k.Blocks))
	}
	for i := range k.Blocks {
		if !reflect.DeepEqual(got.Blocks[i].Instrs, k.Blocks[i].Instrs) {
			t.Errorf("block %d differs", i)
		}
	}
}

func TestCompileRefusesByteFieldTruncation(t *testing.T) {
	// The header stores NumSurfaces and NumArgs in single bytes; values
	// beyond 255 used to truncate silently and decode as a smaller kernel.
	k := sampleKernel(t, "wide")
	k.NumSurfaces = 256
	if _, err := Compile(k); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("256 surfaces must refuse to encode, got %v", err)
	}
	k.NumSurfaces = 255
	bin, err := Compile(k)
	if err != nil {
		t.Fatalf("255 surfaces must encode: %v", err)
	}
	got, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSurfaces != 255 {
		t.Errorf("round-tripped NumSurfaces = %d, want 255", got.NumSurfaces)
	}
}

func TestCompileRejectsInvalidKernel(t *testing.T) {
	k := &kernel.Kernel{Name: "bad", SIMD: isa.W16} // no blocks
	if _, err := Compile(k); err == nil {
		t.Error("expected error")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	k := sampleKernel(t, "x")
	bin, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"short", func(b []byte) []byte { return b[:4] }, "too short"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "magic"},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, "version"},
		{"bad dialect", func(b []byte) []byte { b[5] = 99; return b }, "dialect"},
		{"bad width", func(b []byte) []byte { b[6] = 3; return b }, "width"},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-8] }, "truncated"},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0, 0, 0, 0) }, "trailing"},
	}
	for _, c := range cases {
		cp := append([]byte(nil), bin.Code...)
		if _, err := Decode(&Binary{Code: c.mutate(cp)}); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(256))
		rng.Read(b)
		_, _ = Decode(&Binary{Code: b})
	}
}

func TestRecompileAllowsScratchRegisters(t *testing.T) {
	k := sampleKernel(t, "inst")
	// Simulate instrumentation: an injected scratch-register instruction.
	inj := isa.Instruction{Op: isa.OpMovi, Width: isa.W1, Dst: isa.ScratchBase,
		Src0: isa.Imm(1), Injected: true}
	k.Blocks[0].Instrs = append([]isa.Instruction{inj}, k.Blocks[0].Instrs...)

	// Full Compile rejects it only through kernel validation of
	// non-injected use; injected is allowed there too, so use a
	// non-injected scratch write to show the difference.
	bad := sampleKernel(t, "bad")
	bad.Blocks[0].Instrs = append([]isa.Instruction{{
		Op: isa.OpMovi, Width: isa.W1, Dst: isa.ScratchBase, Src0: isa.Imm(1),
	}}, bad.Blocks[0].Instrs...)
	if _, err := Compile(bad); err == nil {
		t.Error("Compile should reject non-injected scratch use")
	}

	bin, err := Recompile(k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Blocks[0].Instrs[0].Injected {
		t.Error("injected flag lost in recompile round trip")
	}
}

func TestRecompileRejectsStructuralBreakage(t *testing.T) {
	k := sampleKernel(t, "broken")
	k.Blocks[0].Instrs = k.Blocks[0].Instrs[:1] // drop the terminator
	if _, err := Recompile(k); err == nil {
		t.Error("expected error for non-control-terminated block")
	}
}

func TestCompileProgram(t *testing.T) {
	k1 := sampleKernel(t, "alpha")
	k2 := sampleKernel(t, "beta")
	p := &kernel.Program{Name: "p", Kernels: []*kernel.Kernel{k1, k2}}
	bins, err := CompileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 || bins["alpha"] == nil || bins["beta"] == nil {
		t.Errorf("bins = %v", bins)
	}
	// Distinct kernels produce distinct binaries (names differ).
	if string(bins["alpha"].Code) == string(bins["beta"].Code) {
		t.Error("distinct kernels encoded identically")
	}
}
