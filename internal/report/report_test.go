package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.Row("short", 1)
	tb.Row("a-much-longer-name", 123456789)
	var sb strings.Builder
	tb.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "=====") {
		t.Error("missing title block")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + separator + 2 rows + title lines
	if len(lines) < 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines should align the second column consistently.
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("row content missing")
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.Row("x")
	var sb strings.Builder
	tb.Write(&sb)
	if strings.Contains(sb.String(), "=") {
		t.Error("untitled table should not render a title underline")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.23e+06",
		256:     "256",
		3.14159: "3.14",
		0.5:     "0.5000",
		1e-9:    "1e-09",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[float64]string{
		12:      "12",
		1500:    "1.50K",
		2.5e6:   "2.50M",
		3.08e11: "308.00B",
		2.9e12:  "2.90T",
	}
	for in, want := range cases {
		if got := HumanCount(in); got != want {
			t.Errorf("HumanCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[float64]string{
		12:      "12B",
		2048:    "2.05KB",
		1.11e12: "1.11TB",
		6.24e11: "624.00GB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSection(t *testing.T) {
	var sb strings.Builder
	Section(&sb, "Figure %d", 5)
	if !strings.Contains(sb.String(), "### Figure 5") {
		t.Errorf("section = %q", sb.String())
	}
}
