// Package report renders the ASCII tables and series the cmd harnesses
// print when regenerating the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows for aligned text rendering.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: large values without decimals,
// small values with enough precision to read.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// HumanCount renders a count with SI-style suffixes (K, M, B, T).
func HumanCount(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// HumanBytes renders a byte count with binary-ish decimal suffixes.
func HumanBytes(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fTB", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fGB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fKB", v/1e3)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "%s\n", t.title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.title)))
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Section prints a titled separator for grouping harness output.
func Section(w io.Writer, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	fmt.Fprintf(w, "\n### %s\n\n", s)
}
