// Package selection implements the paper's GPU simulation subset
// selection methodology (Section V): divide a profiled execution into
// intervals, characterize each interval with a feature vector, cluster
// with SimPoint, select one representative interval per cluster, and
// validate the selection by comparing projected whole-program
// seconds-per-instruction (SPI) against the measured SPI — Equation (1).
//
// The package also implements the paper's two meta-level optimizations:
// choosing the error-minimizing interval/feature configuration per
// application (Section V-C, Figure 6), and jointly optimizing error and
// selection size under an error threshold (Section V-D, Figure 7). Both
// searches come nearly for free because one native profiling run provides
// the data for all 30 interval/feature combinations.
package selection

import (
	"fmt"
	"math"

	"gtpin/internal/features"
	"gtpin/internal/intervals"
	"gtpin/internal/profile"
	"gtpin/internal/simpoint"
)

// Config is one point in the interval/feature exploration space: a
// division scheme crossed with a feature-vector kind (3 × 10 = 30).
type Config struct {
	Scheme  intervals.Scheme
	Feature features.Kind
}

// String returns a short identifier like "Sync/BB-R".
func (c Config) String() string {
	var s string
	switch c.Scheme {
	case intervals.Sync:
		s = "Sync"
	case intervals.Approx:
		s = "100M"
	case intervals.Kernel:
		s = "Single"
	}
	return s + "/" + c.Feature.String()
}

// AllConfigs enumerates the full 30-combination space in Figure 5 order
// (interval scheme major, feature kind minor).
func AllConfigs() []Config {
	out := make([]Config, 0, intervals.NumSchemes*features.NumKinds)
	for _, s := range intervals.Schemes {
		for _, f := range features.Kinds {
			out = append(out, Config{Scheme: s, Feature: f})
		}
	}
	return out
}

// Options holds pipeline-wide parameters.
type Options struct {
	// ApproxTarget is the target instruction count per Approx interval —
	// the paper's "approximately 100M instructions", scaled to the
	// workload scale in use.
	ApproxTarget uint64
	// SimPoint configures clustering; zero value means
	// simpoint.DefaultConfig(Seed).
	SimPoint simpoint.Config
	// Seed drives clustering randomness when SimPoint is zero.
	Seed int64
}

func (o Options) simpointConfig() simpoint.Config {
	if o.SimPoint.MaxK == 0 {
		return simpoint.DefaultConfig(o.Seed)
	}
	return o.SimPoint
}

// Evaluation is the outcome of running the pipeline under one
// configuration: the selected intervals with their representation ratios,
// and the accuracy/size metrics of Figures 5-7.
type Evaluation struct {
	App    string
	Config Config

	Intervals    []intervals.Interval
	Selections   []simpoint.Selection
	NumIntervals int

	// ErrorPct is Equation (1): |measured SPI - projected SPI| /
	// measured SPI × 100.
	ErrorPct float64
	// SelectedFrac is the fraction of total dynamic instructions inside
	// the selected intervals (Figure 5, bottom).
	SelectedFrac float64
	// Speedup is the simulation speedup from simulating only the
	// selection: total instructions / selected instructions.
	Speedup float64
}

// ProjectSPI extrapolates whole-program SPI from selected intervals: the
// ratio-weighted sum of each selected interval's SPI (Section V-A,
// step 7).
func ProjectSPI(ivs []intervals.Interval, sels []simpoint.Selection) float64 {
	spi := 0.0
	for _, s := range sels {
		spi += s.Ratio * ivs[s.Interval].SPI()
	}
	return spi
}

// Evaluate runs the full pipeline for one configuration.
func Evaluate(p *profile.Profile, cfg Config, opts Options) (*Evaluation, error) {
	ivs, err := intervals.Divide(p, cfg.Scheme, opts.ApproxTarget)
	if err != nil {
		return nil, fmt.Errorf("selection: %s: %w", p.App, err)
	}
	vecs := features.ExtractAll(p, ivs, cfg.Feature)
	weights := make([]float64, len(ivs))
	for i, iv := range ivs {
		weights[i] = float64(iv.Instrs)
	}
	res, err := simpoint.Run(vecs, weights, opts.simpointConfig())
	if err != nil {
		return nil, fmt.Errorf("selection: %s %s: %w", p.App, cfg, err)
	}
	ev := &Evaluation{
		App:          p.App,
		Config:       cfg,
		Intervals:    ivs,
		Selections:   res.Selections,
		NumIntervals: len(ivs),
	}
	measured := p.MeasuredSPI()
	if measured <= 0 {
		return nil, fmt.Errorf("selection: %s: measured SPI is zero", p.App)
	}
	projected := ProjectSPI(ivs, res.Selections)
	ev.ErrorPct = math.Abs(measured-projected) / measured * 100

	var selInstrs uint64
	for _, s := range res.Selections {
		selInstrs += ivs[s.Interval].Instrs
	}
	total := p.TotalInstrs()
	ev.SelectedFrac = float64(selInstrs) / float64(total)
	if selInstrs > 0 {
		ev.Speedup = float64(total) / float64(selInstrs)
	}
	return ev, nil
}

// EvaluateAll runs the pipeline for every configuration in the 30-point
// exploration space.
func EvaluateAll(p *profile.Profile, opts Options) ([]*Evaluation, error) {
	configs := AllConfigs()
	out := make([]*Evaluation, 0, len(configs))
	for _, cfg := range configs {
		ev, err := Evaluate(p, cfg, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// MinError returns the evaluation with the smallest error — the
// per-application policy of Figure 6. Ties break toward the smaller
// selection.
func MinError(evals []*Evaluation) *Evaluation {
	var best *Evaluation
	for _, ev := range evals {
		switch {
		case best == nil,
			ev.ErrorPct < best.ErrorPct,
			ev.ErrorPct == best.ErrorPct && ev.SelectedFrac < best.SelectedFrac:
			best = ev
		}
	}
	return best
}

// SmallestUnderThreshold returns the evaluation with the smallest
// selection size among those with error below thresholdPct; if none
// qualifies, it falls back to the minimum-error evaluation — the joint
// optimization policy of Figure 7.
func SmallestUnderThreshold(evals []*Evaluation, thresholdPct float64) *Evaluation {
	var best *Evaluation
	for _, ev := range evals {
		if ev.ErrorPct >= thresholdPct {
			continue
		}
		if best == nil || ev.SelectedFrac < best.SelectedFrac {
			best = ev
		}
	}
	if best == nil {
		return MinError(evals)
	}
	return best
}

// Retime recomputes interval times from a re-timed profile (same
// invocation sequence, new per-invocation timings), preserving the
// interval boundaries and instruction counts.
func Retime(ivs []intervals.Interval, p *profile.Profile) []intervals.Interval {
	out := make([]intervals.Interval, len(ivs))
	for i, iv := range ivs {
		n := iv
		n.TimeSec = 0
		for j := iv.Start; j < iv.End; j++ {
			n.TimeSec += p.Invocations[j].TimeSec
		}
		out[i] = n
	}
	return out
}

// CrossError evaluates a previously chosen selection against a new timed
// execution of the same application — another trial, another frequency,
// or another architecture generation (Section V-E, Figure 8). newTimesNs
// is indexed by invocation sequence; the invocation structure must match
// the profile the selection was built from (guaranteed by CoFluent
// replay).
func CrossError(ev *Evaluation, base *profile.Profile, newTimesNs []float64) (float64, error) {
	np, err := base.WithTimes(newTimesNs)
	if err != nil {
		return 0, fmt.Errorf("selection: cross error: %w", err)
	}
	ivs := Retime(ev.Intervals, np)
	measured := np.MeasuredSPI()
	if measured <= 0 {
		return 0, fmt.Errorf("selection: cross error: measured SPI is zero")
	}
	projected := ProjectSPI(ivs, ev.Selections)
	return math.Abs(measured-projected) / measured * 100, nil
}
