package selection_test

import (
	"math"
	"math/rand"
	"testing"

	"gtpin/internal/features"
	"gtpin/internal/intervals"
	"gtpin/internal/kernel"
	"gtpin/internal/profile"
	"gtpin/internal/selection"
	"gtpin/internal/simpoint"
)

// phasedProfile builds a synthetic two-phase application: phase A
// invocations run kernel kA (fast SPI), phase B invocations run kB (slow
// SPI), alternating in runs of `runLen`, with n invocations total and a
// sync boundary after every invocation.
func phasedProfile(t *testing.T, n, runLen int, noise float64, seed int64) *profile.Profile {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ks := []profile.KernelStatic{
		{Name: "kA", Blocks: []kernel.BlockStats{{Instrs: 10}}, StaticInstrs: 10},
		{Name: "kB", Blocks: []kernel.BlockStats{{Instrs: 10, BytesRead: 64}}, StaticInstrs: 10},
	}
	invs := make([]profile.Invocation, n)
	for i := range invs {
		phase := (i / runLen) % 2
		spi := 1e-9
		if phase == 1 {
			spi = 3e-9
		}
		spi *= 1 + noise*(2*rng.Float64()-1)
		instrs := uint64(10000)
		invs[i] = profile.Invocation{
			Seq: i, KernelIdx: phase, ArgsKey: uint64(phase), GWS: 64,
			SyncEpoch:   i,
			Instrs:      instrs,
			BlockCounts: []uint64{instrs / 10},
			BytesRead:   uint64(phase) * 64 * (instrs / 10),
			TimeSec:     spi * float64(instrs),
		}
	}
	p, err := profile.New("phased", ks, invs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func opts() selection.Options {
	return selection.Options{ApproxTarget: 50000, Seed: 42}
}

func TestEvaluatePhasedAppAccurately(t *testing.T) {
	p := phasedProfile(t, 200, 10, 0.01, 1)
	for _, cfg := range []selection.Config{
		{Scheme: intervals.Kernel, Feature: features.BB},
		{Scheme: intervals.Kernel, Feature: features.KN},
		{Scheme: intervals.Approx, Feature: features.BBR},
	} {
		ev, err := selection.Evaluate(p, cfg, opts())
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		// Two clean phases: any reasonable config should be accurate and
		// select a small subset.
		if ev.ErrorPct > 5 {
			t.Errorf("%s: error %.2f%% too large for a clean two-phase app", cfg, ev.ErrorPct)
		}
		if ev.SelectedFrac >= 0.5 {
			t.Errorf("%s: selection %.2f%% of instructions", cfg, 100*ev.SelectedFrac)
		}
		if ev.Speedup <= 1 {
			t.Errorf("%s: speedup %.1f", cfg, ev.Speedup)
		}
	}
}

// TestFullCoverageHasZeroError: if the selection covers every interval
// (k = number of intervals), projected SPI is the exact weighted mean.
func TestFullCoverageHasZeroError(t *testing.T) {
	p := phasedProfile(t, 8, 2, 0.2, 2)
	o := opts()
	o.SimPoint = simpoint.DefaultConfig(42)
	o.SimPoint.MaxK = 8
	o.SimPoint.BICFrac = 0 // accept the first candidate: k=1... instead force full k
	// Force k = n by making BIC pick the max: use MaxK = n and BICFrac 1.
	o.SimPoint.BICFrac = 1
	ev, err := selection.Evaluate(p, selection.Config{Scheme: intervals.Kernel, Feature: features.BB}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Selections) == ev.NumIntervals {
		if ev.ErrorPct > 1e-9 {
			t.Errorf("full coverage must have zero error, got %g%%", ev.ErrorPct)
		}
		if math.Abs(ev.SelectedFrac-1) > 1e-9 {
			t.Errorf("full coverage fraction = %f", ev.SelectedFrac)
		}
	}
}

func TestProjectSPIWeightedMean(t *testing.T) {
	ivs := []intervals.Interval{
		{Start: 0, End: 1, Instrs: 100, TimeSec: 100e-9}, // SPI 1e-9
		{Start: 1, End: 2, Instrs: 100, TimeSec: 300e-9}, // SPI 3e-9
	}
	sels := []simpoint.Selection{
		{Interval: 0, Ratio: 0.75},
		{Interval: 1, Ratio: 0.25},
	}
	got := selection.ProjectSPI(ivs, sels)
	want := 0.75*1e-9 + 0.25*3e-9
	if math.Abs(got-want) > 1e-20 {
		t.Errorf("projected SPI = %g, want %g", got, want)
	}
}

func TestEvaluateAllCovers30Configs(t *testing.T) {
	p := phasedProfile(t, 60, 6, 0.02, 3)
	evs, err := selection.EvaluateAll(p, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 30 {
		t.Fatalf("evaluations = %d, want 30", len(evs))
	}
	seen := map[string]bool{}
	for _, ev := range evs {
		if seen[ev.Config.String()] {
			t.Errorf("duplicate config %s", ev.Config)
		}
		seen[ev.Config.String()] = true
	}
}

func TestMinErrorAndThresholdPolicies(t *testing.T) {
	mk := func(err, frac float64) *selection.Evaluation {
		return &selection.Evaluation{ErrorPct: err, SelectedFrac: frac, Speedup: 1 / frac}
	}
	evs := []*selection.Evaluation{
		mk(2.0, 0.01),
		mk(0.5, 0.20),
		mk(0.9, 0.02),
		mk(9.0, 0.001),
	}
	if got := selection.MinError(evs); got.ErrorPct != 0.5 {
		t.Errorf("MinError picked %.2f", got.ErrorPct)
	}
	// Threshold 1%: eligible are 0.5 (frac .20) and 0.9 (frac .02) →
	// smallest selection wins.
	if got := selection.SmallestUnderThreshold(evs, 1); got.ErrorPct != 0.9 {
		t.Errorf("threshold 1%% picked error %.2f", got.ErrorPct)
	}
	// Threshold 10%: the 9%-error config with the tiniest selection wins.
	if got := selection.SmallestUnderThreshold(evs, 10); got.ErrorPct != 9.0 {
		t.Errorf("threshold 10%% picked error %.2f", got.ErrorPct)
	}
	// Threshold below every error: falls back to min error.
	if got := selection.SmallestUnderThreshold(evs, 0.1); got.ErrorPct != 0.5 {
		t.Errorf("fallback picked error %.2f", got.ErrorPct)
	}
	// Ties on error break toward the smaller selection.
	tie := []*selection.Evaluation{mk(1, 0.5), mk(1, 0.1)}
	if got := selection.MinError(tie); got.SelectedFrac != 0.1 {
		t.Error("tie must break toward the smaller selection")
	}
}

// TestThresholdMonotonicity: relaxing the threshold never shrinks the
// speedup (Figure 7's monotone trade-off).
func TestThresholdMonotonicity(t *testing.T) {
	p := phasedProfile(t, 120, 7, 0.05, 4)
	evs, err := selection.EvaluateAll(p, opts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, thr := range []float64{0.5, 1, 2, 3, 5, 8, 10} {
		ev := selection.SmallestUnderThreshold(evs, thr)
		if ev.Speedup < prev {
			t.Errorf("threshold %.1f: speedup %.1f below previous %.1f", thr, ev.Speedup, prev)
		}
		prev = ev.Speedup
	}
}

func TestCrossErrorIdentityAndShift(t *testing.T) {
	p := phasedProfile(t, 100, 10, 0, 5)
	ev, err := selection.Evaluate(p, selection.Config{Scheme: intervals.Kernel, Feature: features.BB}, opts())
	if err != nil {
		t.Fatal(err)
	}
	// Same times: cross error equals the original error.
	times := make([]float64, len(p.Invocations))
	for i := range p.Invocations {
		times[p.Invocations[i].Seq] = p.Invocations[i].TimeSec * 1e9
	}
	e, err := selection.CrossError(ev, p, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-ev.ErrorPct) > 1e-9 {
		t.Errorf("identity cross error %g vs %g", e, ev.ErrorPct)
	}
	// Uniformly scaled times: SPI scales identically in both measured and
	// projected values, so the error is unchanged.
	for i := range times {
		times[i] *= 2
	}
	e2, err := selection.CrossError(ev, p, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-ev.ErrorPct) > 1e-9 {
		t.Errorf("uniform scaling changed the error: %g vs %g", e2, ev.ErrorPct)
	}
	// Phase-selective slowdown (only kB slows): a representative-based
	// projection should track it closely since selections cover both
	// phases.
	for i := range p.Invocations {
		if p.Invocations[i].KernelIdx == 1 {
			times[p.Invocations[i].Seq] *= 1.5
		}
	}
	e3, err := selection.CrossError(ev, p, times)
	if err != nil {
		t.Fatal(err)
	}
	if e3 > 5 {
		t.Errorf("phase-selective shift error %.2f%% too large", e3)
	}
}

func TestCrossErrorValidatesLength(t *testing.T) {
	p := phasedProfile(t, 10, 2, 0, 6)
	ev, err := selection.Evaluate(p, selection.Config{Scheme: intervals.Kernel, Feature: features.BB}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := selection.CrossError(ev, p, make([]float64, 3)); err == nil {
		t.Error("expected error for short timing slice")
	}
}

func TestRetimePreservesStructure(t *testing.T) {
	p := phasedProfile(t, 20, 5, 0, 7)
	ivs, err := intervals.Divide(p, intervals.Sync, 0)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, len(p.Invocations))
	for i := range times {
		times[i] = 42 // ns
	}
	np, err := p.WithTimes(times)
	if err != nil {
		t.Fatal(err)
	}
	re := selection.Retime(ivs, np)
	for i, iv := range re {
		if iv.Start != ivs[i].Start || iv.End != ivs[i].End || iv.Instrs != ivs[i].Instrs {
			t.Errorf("interval %d structure changed", i)
		}
		want := 42e-9 * float64(iv.Invocations())
		if math.Abs(iv.TimeSec-want) > 1e-15 {
			t.Errorf("interval %d time = %g, want %g", i, iv.TimeSec, want)
		}
	}
}

func TestAllConfigsEnumeration(t *testing.T) {
	cfgs := selection.AllConfigs()
	if len(cfgs) != 30 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if cfgs[0].String() != "Sync/KN" {
		t.Errorf("first config = %s", cfgs[0])
	}
	if cfgs[29].String() != "Single/BB-(R+W)" {
		t.Errorf("last config = %s", cfgs[29])
	}
}
