package selection_test

import (
	"fmt"

	"gtpin/internal/features"
	"gtpin/internal/intervals"
	"gtpin/internal/kernel"
	"gtpin/internal/profile"
	"gtpin/internal/selection"
)

// Run the selection pipeline over a synthetic two-phase profile: ten
// invocations of a fast kernel alternate with ten of a slow one; the
// pipeline picks one representative per phase and projects whole-program
// SPI within a fraction of a percent.
func Example() {
	ks := []profile.KernelStatic{
		{Name: "fast", Blocks: []kernel.BlockStats{{Instrs: 10}}, StaticInstrs: 10},
		{Name: "slow", Blocks: []kernel.BlockStats{{Instrs: 10, BytesRead: 64}}, StaticInstrs: 10},
	}
	var invs []profile.Invocation
	for i := 0; i < 20; i++ {
		phase := (i / 5) % 2 // runs of five: fast, slow, fast, slow
		spi := 1e-9
		if phase == 1 {
			spi = 3e-9
		}
		invs = append(invs, profile.Invocation{
			Seq: i, KernelIdx: phase, GWS: 64, SyncEpoch: i,
			Instrs:      10000,
			BlockCounts: []uint64{1000},
			TimeSec:     spi * 10000,
		})
	}
	p, err := profile.New("two-phase", ks, invs)
	if err != nil {
		panic(err)
	}

	ev, err := selection.Evaluate(p,
		selection.Config{Scheme: intervals.Kernel, Feature: features.BB},
		selection.Options{ApproxTarget: 50000, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("intervals: %d, selected: %d\n", ev.NumIntervals, len(ev.Selections))
	fmt.Printf("error: %.2f%%, selection: %.0f%% of instructions, speedup: %.0fx\n",
		ev.ErrorPct, 100*ev.SelectedFrac, ev.Speedup)
	// Output:
	// intervals: 20, selected: 2
	// error: 0.00%, selection: 10% of instructions, speedup: 10x
}
