package detsim

import (
	"fmt"
	"sync"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// This file is the single recording walk both Run (simulate) and
// Capture (checkpoint) drive: it owns the object tables (buffers,
// programs, kernels, live argument bindings), validates every
// host-side data movement against buffer bounds, and compiles recorded
// programs through a process-wide content-addressed cache. The drivers
// differ only in their hooks — how an enqueue is executed and whether
// host events are recorded.

// launch describes one kernel enqueue the walker is about to execute.
// Args and Surfaces are the kernel object's live binding slices — a
// later SetKernelArg mutates them in place, so hooks that retain launch
// state must copy.
type launch struct {
	Invocation int // enqueue sequence number, starting at 0
	CallIdx    int // index into rec.Calls
	IR         *kernel.Kernel
	Bin        *jit.Binary
	Args       []uint32
	Surfaces   []*device.Buffer
	SurfIDs    []int // recording buffer ID per surface slot
	GWS        int
}

// walkHooks customizes a recording walk. The walker maintains object
// state and applies host-side data movement itself; beforeWrite and
// beforeCopy fire after bounds validation but before the bytes move,
// onCreate fires after a buffer exists, and onLaunch must execute the
// dispatch (the walker never runs kernels itself). Nil hooks are
// skipped, except onLaunch, which is required.
type walkHooks struct {
	onCreate    func(id int, b *device.Buffer, c *cl.APICall) error
	beforeWrite func(c *cl.APICall, dst *device.Buffer) error
	beforeCopy  func(c *cl.APICall, src, dst *device.Buffer) error
	onLaunch    func(l *launch) error
}

// walkRecording replays the host call stream into buffers, dispatching
// device work through the hooks. Errors from the walker's own
// validation are prefixed with the call index; hook errors pass through
// unwrapped so drivers control their messages.
func walkRecording(rec *cofluent.Recording, buffers map[int]*device.Buffer, h walkHooks) error {
	programs := make(map[int]map[string]*jit.Binary)
	kernelIR := make(map[int]*kernel.Kernel) // kernel object ID -> IR
	kernelBin := make(map[int]*jit.Binary)   // kernel object ID -> binary
	kargs := make(map[int][]uint32)          // kernel object ID -> scalar args
	ksurfs := make(map[int][]*device.Buffer) // kernel object ID -> surfaces
	ksurfIDs := make(map[int][]int)          // kernel object ID -> surface buffer IDs

	invocation := 0
	for i := range rec.Calls {
		c := &rec.Calls[i]
		switch c.Name {
		case cl.CallCreateBuffer:
			b, err := device.NewBuffer(c.Size)
			if err != nil {
				return fmt.Errorf("detsim: call %d: %w: %w", i, faults.ErrBadRecording, err)
			}
			buffers[c.Buffer] = b
			if h.onCreate != nil {
				if err := h.onCreate(c.Buffer, b, c); err != nil {
					return err
				}
			}
		case cl.CallBuildProgram:
			if c.Program < 0 || c.Program >= len(rec.Programs) {
				return fmt.Errorf("detsim: call %d: program %d not in recording: %w", i, c.Program, faults.ErrBadRecording)
			}
			bins, err := compileCached(rec.Programs[c.Program])
			if err != nil {
				return fmt.Errorf("detsim: call %d: %w", i, err)
			}
			programs[c.Program] = bins
		case cl.CallCreateKernel:
			bins, ok := programs[c.Program]
			if !ok {
				return fmt.Errorf("detsim: call %d: kernel %s of unbuilt program %d: %w", i, c.Kernel, c.Program, faults.ErrBadRecording)
			}
			ir := rec.Programs[c.Program].Kernel(c.Kernel)
			if ir == nil || bins[c.Kernel] == nil {
				return fmt.Errorf("detsim: call %d: unknown kernel %s: %w", i, c.Kernel, faults.ErrBadRecording)
			}
			kernelIR[c.KID] = ir
			kernelBin[c.KID] = bins[c.Kernel]
			kargs[c.KID] = make([]uint32, ir.NumArgs)
			ksurfs[c.KID] = make([]*device.Buffer, ir.NumSurfaces)
			ksurfIDs[c.KID] = make([]int, ir.NumSurfaces)
		case cl.CallSetKernelArg:
			ir, ok := kernelIR[c.KID]
			if !ok {
				return fmt.Errorf("detsim: call %d: arg on unknown kernel %d: %w", i, c.KID, faults.ErrBadRecording)
			}
			if c.ArgIdx >= ir.NumArgs {
				b, ok := buffers[c.Buffer]
				if !ok {
					return fmt.Errorf("detsim: call %d: unknown buffer %d: %w", i, c.Buffer, faults.ErrBadRecording)
				}
				slot := c.ArgIdx - ir.NumArgs
				if slot < 0 || slot >= len(ksurfs[c.KID]) {
					return fmt.Errorf("detsim: call %d: surface slot %d out of range (%d bound): %w",
						i, slot, len(ksurfs[c.KID]), faults.ErrBadRecording)
				}
				ksurfs[c.KID][slot] = b
				ksurfIDs[c.KID][slot] = c.Buffer
			} else {
				if c.ArgIdx < 0 {
					return fmt.Errorf("detsim: call %d: negative arg index %d: %w", i, c.ArgIdx, faults.ErrBadRecording)
				}
				kargs[c.KID][c.ArgIdx] = c.ArgVal
			}
		case cl.CallEnqueueWriteBuffer:
			b, ok := buffers[c.Buffer]
			if !ok {
				return fmt.Errorf("detsim: call %d: write to unknown buffer %d: %w", i, c.Buffer, faults.ErrBadRecording)
			}
			// A hostile or torn recording can carry any offset; reject
			// instead of panicking on the slice (or silently truncating).
			if c.Offset < 0 || c.Offset > b.Size() || len(c.Payload) > b.Size()-c.Offset {
				return fmt.Errorf("detsim: call %d: write [%d, %d+%d) out of bounds (buffer %d is %d bytes): %w",
					i, c.Offset, c.Offset, len(c.Payload), c.Buffer, b.Size(), faults.ErrBadRecording)
			}
			if h.beforeWrite != nil {
				if err := h.beforeWrite(c, b); err != nil {
					return err
				}
			}
			copy(b.Bytes()[c.Offset:], c.Payload)
		case cl.CallEnqueueCopyBuffer, cl.CallEnqueueCopyImgToBuf:
			src, dst := buffers[c.Buffer], buffers[c.Buffer2]
			if src == nil || dst == nil {
				return fmt.Errorf("detsim: call %d: copy with unknown buffer: %w", i, faults.ErrBadRecording)
			}
			if c.Size < 0 ||
				c.Offset < 0 || c.Offset > src.Size() || c.Size > src.Size()-c.Offset ||
				c.Offset2 < 0 || c.Offset2 > dst.Size() || c.Size > dst.Size()-c.Offset2 {
				return fmt.Errorf("detsim: call %d: copy src [%d, %d+%d) dst [%d, %d+%d) out of bounds (src %d, dst %d bytes): %w",
					i, c.Offset, c.Offset, c.Size, c.Offset2, c.Offset2, c.Size, src.Size(), dst.Size(), faults.ErrBadRecording)
			}
			if h.beforeCopy != nil {
				if err := h.beforeCopy(c, src, dst); err != nil {
					return err
				}
			}
			copy(dst.Bytes()[c.Offset2:c.Offset2+c.Size], src.Bytes()[c.Offset:c.Offset+c.Size])
		case cl.CallEnqueueNDRangeKernel:
			ir, ok := kernelIR[c.KID]
			if !ok {
				return fmt.Errorf("detsim: call %d: enqueue of unknown kernel %d: %w", i, c.KID, faults.ErrBadRecording)
			}
			// Dispatch is synchronous and the interpreters never append to
			// these slices, so the kernel's live bindings are passed
			// directly instead of copied per enqueue.
			if err := h.onLaunch(&launch{
				Invocation: invocation,
				CallIdx:    i,
				IR:         ir,
				Bin:        kernelBin[c.KID],
				Args:       kargs[c.KID],
				Surfaces:   ksurfs[c.KID],
				SurfIDs:    ksurfIDs[c.KID],
				GWS:        c.GWS,
			}); err != nil {
				return err
			}
			invocation++
		default:
			// Host-only calls carry no device work.
		}
	}
	return nil
}

// compileCache memoizes jit.CompileProgram results across Run and
// Capture calls, keyed by program content (kernel names + executable
// fingerprints) — the detsim-side analogue of the device's
// decoded-binary cache. Compiled binaries are immutable, so entries are
// shared freely; the map is guarded for the parallel snippet-replay
// workers, each of which owns a private Simulator but shares this
// process-wide cache.
type compileCache struct {
	mu     sync.RWMutex
	m      map[string]map[string]*jit.Binary
	hits   uint64
	misses uint64
}

var progCache = &compileCache{m: make(map[string]map[string]*jit.Binary)}

// programKey content-addresses a program: each kernel's name and
// executable fingerprint, length-delimited via jit.Key.
func programKey(p *kernel.Program) (string, error) {
	parts := make([][]byte, 0, 2*len(p.Kernels))
	for _, k := range p.Kernels {
		fp, err := k.Fingerprint()
		if err != nil {
			return "", err
		}
		parts = append(parts, []byte(k.Name), []byte(fp))
	}
	return jit.Key(parts...), nil
}

// compileCached returns the program's compiled binaries, compiling at
// most once per distinct program content in the process lifetime.
func compileCached(p *kernel.Program) (map[string]*jit.Binary, error) {
	key, err := programKey(p)
	if err != nil {
		return nil, fmt.Errorf("jit: %w", err)
	}
	progCache.mu.RLock()
	bins, ok := progCache.m[key]
	progCache.mu.RUnlock()
	if ok {
		progCache.mu.Lock()
		progCache.hits++
		progCache.mu.Unlock()
		mCompileCacheHits.Inc()
		return bins, nil
	}
	bins, err = jit.CompileProgram(p)
	if err != nil {
		return nil, err
	}
	progCache.mu.Lock()
	progCache.misses++
	// Concurrent compilers racing the same key are harmless: the binaries
	// are a deterministic function of the content address.
	progCache.m[key] = bins
	progCache.mu.Unlock()
	mCompileCacheMisses.Inc()
	return bins, nil
}

// CompileCacheStats reports the program-compile cache counters:
// lookups served from cache, compilations performed, and distinct
// programs held.
func CompileCacheStats() (hits, misses uint64, entries int) {
	progCache.mu.RLock()
	defer progCache.mu.RUnlock()
	return progCache.hits, progCache.misses, len(progCache.m)
}

// ResetCompileCache drops every cached program and zeroes the counters
// (tests and benchmark baselines).
func ResetCompileCache() {
	progCache.mu.Lock()
	progCache.m = make(map[string]map[string]*jit.Binary)
	progCache.hits, progCache.misses = 0, 0
	progCache.mu.Unlock()
}
