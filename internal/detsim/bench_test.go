package detsim_test

// Benchmarks for the interpreter hot paths: the cycle-level detailed
// model and the functional fast-forward, both over the same recording.
// The flattened five-class opcode dispatch and the preallocated
// operand scratch land here; regressions show up as dropped MI/s.

import (
	"testing"

	"gtpin/internal/detsim"
)

func benchSim(b *testing.B, ranges func(n int) []detsim.Range) {
	rec, n, _ := record(b, 1234, 8)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.Run(rec, ranges(n))
		if err != nil {
			b.Fatal(err)
		}
		instrs = rep.DetailedInstrs
	}
	b.StopTimer()
	if instrs > 0 {
		mips := float64(instrs) * float64(b.N) / b.Elapsed().Seconds() / 1e6
		b.ReportMetric(mips, "MI/s")
	}
}

// BenchmarkDetailedInterp simulates every invocation at cycle level.
func BenchmarkDetailedInterp(b *testing.B) {
	benchSim(b, func(n int) []detsim.Range { return []detsim.Range{{From: 0, To: n}} })
}

// BenchmarkFunctionalFastForward executes the same recording on the
// functional path only — the fast-forward interpreter.
func BenchmarkFunctionalFastForward(b *testing.B) {
	benchSim(b, func(int) []detsim.Range { return nil })
}
