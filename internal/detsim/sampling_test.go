package detsim_test

import (
	"bytes"
	"math"
	"testing"

	"gtpin/internal/detsim"
)

// TestIntraKernelSamplingPreservesState: sampling every 4th channel-group
// for detailed modelling must not change architectural results.
func TestIntraKernelSamplingPreservesState(t *testing.T) {
	rec, n, want := record(t, 71, 7)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(rec, []detsim.Range{{From: 0, To: n, SampleGroups: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sim.Buffer(1).Bytes(), want) {
		t.Fatal("intra-kernel sampling perturbed architectural results")
	}
	if rep.Detailed != n {
		t.Errorf("detailed invocations = %d, want %d", rep.Detailed, n)
	}
}

// TestIntraKernelSamplingExtrapolates: the sampled run's extrapolated
// time tracks the full run's, while doing less cycle-level work.
func TestIntraKernelSamplingExtrapolates(t *testing.T) {
	rec, n, _ := record(t, 72, 7)
	full, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := full.Run(rec, []detsim.Range{{From: 0, To: n}})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sampRep, err := sampled.Run(rec, []detsim.Range{{From: 0, To: n, SampleGroups: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Less cycle-level work: far fewer pipeline/cache events.
	if sampRep.LaneOps >= fullRep.LaneOps {
		t.Errorf("sampled lane ops %d not below full %d", sampRep.LaneOps, fullRep.LaneOps)
	}
	// Extrapolated time within a loose band of the full simulation.
	// (Distortion comes from cache warm-up gaps and group heterogeneity.)
	relErr := math.Abs(sampRep.DetailedTimeNs-fullRep.DetailedTimeNs) / fullRep.DetailedTimeNs
	if relErr > 0.35 {
		t.Errorf("extrapolation error %.1f%% too large (sampled %.0f vs full %.0f ns)",
			100*relErr, sampRep.DetailedTimeNs, fullRep.DetailedTimeNs)
	}
}

// TestSampleEveryGroupIsIdentity: SampleGroups values of 0 and 1 are the
// full detailed simulation.
func TestSampleEveryGroupIsIdentity(t *testing.T) {
	rec, n, _ := record(t, 73, 5)
	run := func(sg int) float64 {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(rec, []detsim.Range{{From: 0, To: n, SampleGroups: sg}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.DetailedTimeNs
	}
	t0, t1 := run(0), run(1)
	if t0 != t1 {
		t.Errorf("SampleGroups 0 vs 1: %f != %f", t0, t1)
	}
}
