package detsim_test

import (
	"bytes"
	"testing"

	"gtpin/internal/detsim"
)

// TestWarmupPreservesStateAndCounts: warmup invocations execute
// functionally (state preserved), are counted separately, and contribute
// no detailed time.
func TestWarmupPreservesStateAndCounts(t *testing.T) {
	rec, n, want := record(t, 81, 9)
	if n < 6 {
		t.Skip("schedule too short")
	}
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := detsim.Range{From: 4, To: 6, Warmup: 3}
	rep, err := sim.Run(rec, []detsim.Range{r})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sim.Buffer(1).Bytes(), want) {
		t.Fatal("warmup perturbed architectural results")
	}
	if rep.Detailed != 2 {
		t.Errorf("detailed = %d, want 2", rep.Detailed)
	}
	if rep.Warmed != 3 {
		t.Errorf("warmed = %d, want 3", rep.Warmed)
	}
	if rep.Detailed+rep.Warmed+rep.FastForwarded != n {
		t.Errorf("invocation accounting: %d+%d+%d != %d",
			rep.Detailed, rep.Warmed, rep.FastForwarded, n)
	}
}

// TestWarmupHeatsCaches: the detailed region after a warmup sees warmer
// caches (no fewer hits) than without warmup.
func TestWarmupHeatsCaches(t *testing.T) {
	rec, n, _ := record(t, 82, 9)
	if n < 6 {
		t.Skip("schedule too short")
	}
	run := func(warmup int) float64 {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(rec, []detsim.Range{{From: n - 2, To: n, Warmup: warmup}})
		if err != nil {
			t.Fatal(err)
		}
		total := rep.Cache[0]
		return total.HitRate()
	}
	cold := run(0)
	warm := run(n - 2) // warm through everything preceding the region
	if warm < cold-1e-9 {
		t.Errorf("warmup lowered the hit rate: cold %.3f vs warm %.3f", cold, warm)
	}
}

// TestWarmupClampsAtProgramStart: Warmup larger than From warms only the
// invocations that exist.
func TestWarmupClampsAtProgramStart(t *testing.T) {
	rec, n, _ := record(t, 83, 5)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(rec, []detsim.Range{{From: 1, To: 2, Warmup: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warmed != 1 {
		t.Errorf("warmed = %d, want 1", rep.Warmed)
	}
	_ = n
}
