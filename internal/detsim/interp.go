package detsim

import (
	"fmt"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// maxGroupInstrs bounds dynamic instructions per channel-group.
const maxGroupInstrs = 64 << 20

// First-level dispatch classes, mirroring internal/device: the functional
// hot loop pays one dense table lookup per instruction and only control
// flow re-examines the opcode.
const (
	classALU = iota
	classControl
	classEnd
	classSend
	classCmp
)

var opClass = func() [isa.NumOpcodes]uint8 {
	var t [isa.NumOpcodes]uint8
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		switch {
		case op == isa.OpEnd:
			t[op] = classEnd
		case op.IsControl():
			t[op] = classControl
		case op.IsSend():
			t[op] = classSend
		case op == isa.OpCmp:
			t[op] = classCmp
		default:
			t[op] = classALU
		}
	}
	return t
}()

// Pipeline geometry of the modelled in-order EU: fetch, decode, register
// read, two execute stages, write-back, retire.
const (
	numStages = 7
	execStage = 4
)

// runDetailed simulates one dispatch at cycle level: every channel of
// every instruction is evaluated individually (isa.Eval), every memory
// access walks the cache hierarchy, and an in-order scoreboard charges
// dependency stalls. The architectural results are identical to the fast
// functional path — a property the test suite enforces — but the
// simulation cost per instruction is orders of magnitude higher.
func (s *Simulator) runDetailed(k *kernel.Kernel, args []uint32, surfs []*device.Buffer, gws, sampleGroups int, rep *Report) error {
	if gws <= 0 {
		return fmt.Errorf("global work size %d", gws)
	}
	if len(args) < k.NumArgs || len(surfs) < k.NumSurfaces {
		return fmt.Errorf("insufficient args (%d/%d) or surfaces (%d/%d)",
			len(args), k.NumArgs, len(surfs), k.NumSurfaces)
	}
	if sampleGroups < 1 {
		sampleGroups = 1
	}
	width := int(k.SIMD)
	groups := (gws + width - 1) / width
	freq := float64(s.cfg.Device.FreqMHz) / 1000 // GHz

	var totalCycles uint64
	var missBytes uint64
	sampled := 0
	for g := 0; g < groups; g++ {
		active := gws - g*width
		if active > width {
			active = width
		}
		if g%sampleGroups == 0 {
			cycles, misses, err := s.runGroupDetailed(k, args, surfs, g, width, active, freq, rep)
			if err != nil {
				return fmt.Errorf("group %d: %w", g, err)
			}
			totalCycles += cycles
			missBytes += misses
			sampled++
		} else if err := s.runGroupFunctional(k, args, surfs, g, width, active, false, rep); err != nil {
			return fmt.Errorf("group %d: %w", g, err)
		}
	}
	// Extrapolate unsampled groups' timing from the sampled ones.
	if sampled > 0 && sampled < groups {
		scale := float64(groups) / float64(sampled)
		totalCycles = uint64(float64(totalCycles) * scale)
		missBytes = uint64(float64(missBytes) * scale)
	}

	rep.DetailedCycles += totalCycles
	// Wall-time: cycles across the machine's parallelism, with a DRAM
	// bandwidth floor on the traffic that missed every cache level (the
	// caches filter the rest — a refinement over the fast timing model).
	par := float64(s.cfg.Device.HWThreads())
	if g := float64(groups); g < par {
		par = g
	}
	t := float64(totalCycles) / freq / par / s.cfg.Device.IssueRate
	if bw := float64(missBytes) / s.cfg.Device.MemGBps; bw > t {
		t = bw
	}
	rep.DetailedTimeNs += s.cfg.Device.DispatchNs + t
	return nil
}

func (s *Simulator) runGroupDetailed(k *kernel.Kernel, args []uint32, surfs []*device.Buffer, group, width, active int, freq float64, rep *Report) (uint64, uint64, error) {
	// ABI setup.
	base := uint32(group * width)
	for l := 0; l < width; l++ {
		s.grf[kernel.GIDReg][l] = base + uint32(l)
		s.grf[kernel.TIDReg][l] = uint32(group)
	}
	for i := 0; i < k.NumArgs; i++ {
		for l := 0; l < width; l++ {
			s.grf[kernel.ArgReg(i)][l] = args[i]
		}
	}
	for r := range s.regReady {
		s.regReady[r] = 0
	}
	s.flagReady = 0

	var retStack [16]int
	sp := 0
	blk := 0
	var cycle uint64
	var instrs uint64
	var bytesMoved uint64
	depth := uint64(s.cfg.PipelineDepth)

	// In-order pipeline: stageFree[st] is the cycle at which stage st
	// can next accept an instruction. Every instruction walks all
	// stages, exposing structural hazards; memory operations occupy the
	// execute stage for their access latency.
	var stageFree [numStages]uint64
	issue := func(ready uint64, execHold uint64) uint64 {
		t := ready
		for st := 0; st < numStages; st++ {
			if stageFree[st] > t {
				t = stageFree[st]
			}
			t++
			if st == execStage {
				t += execHold
			}
			stageFree[st] = t
			rep.LaneOps++ // pipeline event bookkeeping
		}
		return t - uint64(numStages) + 1 // cycle the instruction issued
	}

	// readyAt checks the three sources explicitly rather than ranging over
	// a slice literal: this runs once per dynamic instruction and the
	// literal was the detailed loop's only per-instruction allocation.
	readyAt := func(in *isa.Instruction) uint64 {
		t := cycle
		if in.Src0.Kind == isa.OperandReg && s.regReady[in.Src0.Reg] > t {
			t = s.regReady[in.Src0.Reg]
		}
		if in.Src1.Kind == isa.OperandReg && s.regReady[in.Src1.Reg] > t {
			t = s.regReady[in.Src1.Reg]
		}
		if in.Src2.Kind == isa.OperandReg && s.regReady[in.Src2.Reg] > t {
			t = s.regReady[in.Src2.Reg]
		}
		if in.Pred != isa.PredNoneMode || in.Op == isa.OpSel || in.Op == isa.OpBr {
			if s.flagReady > t {
				t = s.flagReady
			}
		}
		return t
	}

	for {
		if blk >= len(k.Blocks) {
			return 0, 0, fmt.Errorf("fell off end of kernel (block %d)", blk)
		}
		b := k.Blocks[blk]
		next := blk + 1
	body:
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			instrs++
			if instrs > s.cfg.WatchdogInstrs {
				return 0, 0, fmt.Errorf("%w: group exceeded its %d-instruction budget", faults.ErrWatchdogTimeout, s.cfg.WatchdogInstrs)
			}
			start := readyAt(in)
			iw := int(in.Width)
			if iw > width {
				iw = width
			}

			switch in.Op {
			case isa.OpJmp:
				cycle = issue(start, 1)
				next = int(in.Target)
				break body
			case isa.OpBr:
				cycle = issue(start, 1)
				ba := active
				if iw < ba {
					ba = iw
				}
				taken := false
				switch in.BrMode {
				case isa.BranchAny:
					for l := 0; l < ba && !taken; l++ {
						taken = s.flag[l]
					}
				case isa.BranchAll:
					taken = true
					for l := 0; l < ba && taken; l++ {
						taken = s.flag[l]
					}
				case isa.BranchNone:
					taken = true
					for l := 0; l < ba && taken; l++ {
						taken = !s.flag[l]
					}
				}
				if taken {
					next = int(in.Target)
				}
				break body
			case isa.OpCall:
				if sp == len(retStack) {
					return 0, 0, fmt.Errorf("call stack overflow")
				}
				retStack[sp] = blk + 1
				sp++
				cycle = issue(start, 1)
				next = int(in.Target)
				break body
			case isa.OpRet:
				if sp == 0 {
					return 0, 0, fmt.Errorf("ret with empty call stack")
				}
				sp--
				cycle = issue(start, 1)
				next = retStack[sp]
				break body
			case isa.OpEnd:
				cycle = issue(start, 1)
				rep.DetailedInstrs += instrs
				return cycle + numStages, bytesMoved, nil
			case isa.OpCmp:
				for l := 0; l < iw; l++ {
					a := s.srcLane(in.Src0, l)
					c := s.srcLane(in.Src1, l)
					s.flag[l] = isa.EvalCmp(in.Cond, a, c)
					rep.LaneOps++
				}
				cycle = issue(start, 0)
				s.flagReady = cycle + depth
			case isa.OpSend, isa.OpSendc:
				sa := active
				if iw < sa {
					sa = iw
				}
				lat, moved, err := s.simSend(in, surfs, iw, sa, freq, rep)
				if err != nil {
					return 0, 0, err
				}
				cycle = issue(start, 2)
				bytesMoved += moved
				if in.Dst != 0 || in.Msg.Kind.Reads() {
					// The thread stalls for the full latency only when a
					// dependent read occurs; the scoreboard captures that.
					s.regReady[in.Dst] = cycle + lat
				}
			default:
				for l := 0; l < iw; l++ {
					if !s.laneOn(in.Pred, l) {
						continue
					}
					a := s.srcLane(in.Src0, l)
					c := s.srcLane(in.Src1, l)
					d2 := s.srcLane(in.Src2, l)
					s.grf[in.Dst][l] = isa.Eval(in.Op, in.Fn, a, c, d2, s.flag[l])
					rep.LaneOps++
				}
				var hold uint64
				if in.Op == isa.OpMath {
					hold = 8
				} else if in.Op == isa.OpMul || in.Op == isa.OpMach || in.Op == isa.OpMad {
					hold = 2
				}
				cycle = issue(start, hold)
				s.regReady[in.Dst] = cycle + depth
			}
		}
		blk = next
	}
}

// runGroupFunctional executes one channel-group with full architectural
// semantics but no timing or cache modelling — the unsampled groups of an
// intra-kernel-sampled invocation.
func (s *Simulator) runGroupFunctional(k *kernel.Kernel, args []uint32, surfs []*device.Buffer, group, width, active int, touchCaches bool, rep *Report) error {
	base := uint32(group * width)
	for l := 0; l < width; l++ {
		s.grf[kernel.GIDReg][l] = base + uint32(l)
		s.grf[kernel.TIDReg][l] = uint32(group)
	}
	for i := 0; i < k.NumArgs; i++ {
		for l := 0; l < width; l++ {
			s.grf[kernel.ArgReg(i)][l] = args[i]
		}
	}
	var retStack [16]int
	sp := 0
	blk := 0
	var instrs uint64
	for {
		if blk >= len(k.Blocks) {
			return fmt.Errorf("fell off end of kernel (block %d)", blk)
		}
		b := k.Blocks[blk]
		next := blk + 1
	body:
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			instrs++
			if instrs > s.cfg.WatchdogInstrs {
				return fmt.Errorf("%w: group exceeded its %d-instruction budget", faults.ErrWatchdogTimeout, s.cfg.WatchdogInstrs)
			}
			iw := int(in.Width)
			if iw > width {
				iw = width
			}
			switch opClass[in.Op] {
			case classALU:
				for l := 0; l < iw; l++ {
					if !s.laneOn(in.Pred, l) {
						continue
					}
					s.grf[in.Dst][l] = isa.Eval(in.Op, in.Fn,
						s.srcLane(in.Src0, l), s.srcLane(in.Src1, l), s.srcLane(in.Src2, l), s.flag[l])
				}
			case classCmp:
				for l := 0; l < iw; l++ {
					s.flag[l] = isa.EvalCmp(in.Cond, s.srcLane(in.Src0, l), s.srcLane(in.Src1, l))
				}
			case classSend:
				sa := active
				if iw < sa {
					sa = iw
				}
				if _, _, err := s.funcSend(in, surfs, iw, sa, touchCaches); err != nil {
					return err
				}
			case classEnd:
				return nil
			default: // classControl
				switch in.Op {
				case isa.OpJmp:
					next = int(in.Target)
				case isa.OpBr:
					ba := active
					if iw < ba {
						ba = iw
					}
					taken := false
					switch in.BrMode {
					case isa.BranchAny:
						for l := 0; l < ba && !taken; l++ {
							taken = s.flag[l]
						}
					case isa.BranchAll:
						taken = true
						for l := 0; l < ba && taken; l++ {
							taken = s.flag[l]
						}
					case isa.BranchNone:
						taken = true
						for l := 0; l < ba && taken; l++ {
							taken = !s.flag[l]
						}
					}
					if taken {
						next = int(in.Target)
					}
				case isa.OpCall:
					if sp == len(retStack) {
						return fmt.Errorf("call stack overflow")
					}
					retStack[sp] = blk + 1
					sp++
					next = int(in.Target)
				case isa.OpRet:
					if sp == 0 {
						return fmt.Errorf("ret with empty call stack")
					}
					sp--
					next = retStack[sp]
				}
				break body
			}
		}
		blk = next
	}
}

// funcSend performs a send's memory semantics without timing; when
// touchCaches is set (cache-warming mode) every access still walks the
// cache hierarchy so microarchitectural state stays warm.
func (s *Simulator) funcSend(in *isa.Instruction, surfs []*device.Buffer, width, active int, touchCaches bool) (uint64, uint64, error) {
	msg := in.Msg
	switch msg.Kind {
	case isa.MsgEOT, isa.MsgTimer:
		return 0, 0, nil
	}
	if int(msg.Surface) >= len(surfs) {
		return 0, 0, fmt.Errorf("send %s: surface %d not bound", msg.Kind, msg.Surface)
	}
	surf := surfs[msg.Surface]
	elem := int(msg.ElemBytes)
	addrs := &s.grf[in.Src0.Reg]
	touch := func(addr uint32, write bool) {
		if touchCaches {
			s.caches.Access(uint64(msg.Surface)<<32|uint64(addr), write)
		}
	}
	switch msg.Kind {
	case isa.MsgLoad:
		dst := &s.grf[in.Dst]
		for l := 0; l < active; l++ {
			if s.laneOn(in.Pred, l) {
				dst[l] = uint32(surf.LoadElem(addrs[l], elem))
				touch(addrs[l], false)
			}
		}
	case isa.MsgStore:
		data := &s.grf[in.Src1.Reg]
		for l := 0; l < active; l++ {
			if s.laneOn(in.Pred, l) {
				surf.StoreElem(addrs[l], elem, uint64(data[l]))
				touch(addrs[l], true)
			}
		}
	case isa.MsgLoadBlock:
		dst := &s.grf[in.Dst]
		base := addrs[0]
		for l := 0; l < width; l++ {
			dst[l] = uint32(surf.LoadElem(base+uint32(l*elem), elem))
			touch(base+uint32(l*elem), false)
		}
	case isa.MsgStoreBlock:
		data := &s.grf[in.Src1.Reg]
		base := addrs[0]
		for l := 0; l < width; l++ {
			surf.StoreElem(base+uint32(l*elem), elem, uint64(data[l]))
			touch(base+uint32(l*elem), true)
		}
	case isa.MsgAtomicAdd:
		data := &s.grf[in.Src1.Reg]
		dst := &s.grf[in.Dst]
		for l := 0; l < active; l++ {
			if s.laneOn(in.Pred, l) {
				dst[l] = uint32(surf.AtomicAdd(addrs[l], elem, uint64(data[l])))
				touch(addrs[l], true)
			}
		}
	default:
		return 0, 0, fmt.Errorf("send: unsupported message kind %s", msg.Kind)
	}
	return 0, 0, nil
}

// runWarmup executes an invocation in cache-warming mode: functional
// semantics plus cache touches, no timing contribution.
func (s *Simulator) runWarmup(k *kernel.Kernel, args []uint32, surfs []*device.Buffer, gws int, rep *Report) error {
	if gws <= 0 {
		return fmt.Errorf("global work size %d", gws)
	}
	if len(args) < k.NumArgs || len(surfs) < k.NumSurfaces {
		return fmt.Errorf("insufficient args (%d/%d) or surfaces (%d/%d)",
			len(args), k.NumArgs, len(surfs), k.NumSurfaces)
	}
	width := int(k.SIMD)
	groups := (gws + width - 1) / width
	for g := 0; g < groups; g++ {
		active := gws - g*width
		if active > width {
			active = width
		}
		if err := s.runGroupFunctional(k, args, surfs, g, width, active, true, rep); err != nil {
			return fmt.Errorf("group %d: %w", g, err)
		}
	}
	return nil
}

func (s *Simulator) laneOn(p isa.PredMode, l int) bool {
	switch p {
	case isa.PredOn:
		return s.flag[l]
	case isa.PredOff:
		return !s.flag[l]
	}
	return true
}

func (s *Simulator) srcLane(o isa.Operand, l int) uint32 {
	switch o.Kind {
	case isa.OperandReg:
		return s.grf[o.Reg][l]
	case isa.OperandImm:
		return o.Imm
	}
	return 0
}

// simSend performs a send's memory semantics with per-access cache
// simulation, returning the access latency in cycles and the line bytes
// that missed every cache level (DRAM traffic).
func (s *Simulator) simSend(in *isa.Instruction, surfs []*device.Buffer, width, active int, freq float64, rep *Report) (uint64, uint64, error) {
	msg := in.Msg
	switch msg.Kind {
	case isa.MsgEOT:
		return 0, 0, nil
	case isa.MsgTimer:
		s.grf[in.Dst][0] = uint32(rep.DetailedCycles)
		return 0, 0, nil
	}
	if int(msg.Surface) >= len(surfs) {
		return 0, 0, fmt.Errorf("send %s: surface %d not bound", msg.Kind, msg.Surface)
	}
	surf := surfs[msg.Surface]
	elem := int(msg.ElemBytes)
	addrs := &s.grf[in.Src0.Reg]
	var worstNs float64
	var missBytes uint64
	memNs := s.cfg.Device.MemLatencyNs

	access := func(addr uint32, write bool) {
		ns := s.caches.Access(uint64(msg.Surface)<<32|uint64(addr), write)
		if ns > worstNs {
			worstNs = ns
		}
		if ns >= memNs {
			missBytes += 64 // one line fill from DRAM
		}
		rep.LaneOps++
	}

	switch msg.Kind {
	case isa.MsgLoad:
		dst := &s.grf[in.Dst]
		for l := 0; l < active; l++ {
			if s.laneOn(in.Pred, l) {
				dst[l] = uint32(surf.LoadElem(addrs[l], elem))
				access(addrs[l], false)
			}
		}
	case isa.MsgStore:
		data := &s.grf[in.Src1.Reg]
		for l := 0; l < active; l++ {
			if s.laneOn(in.Pred, l) {
				surf.StoreElem(addrs[l], elem, uint64(data[l]))
				access(addrs[l], true)
			}
		}
	case isa.MsgLoadBlock:
		dst := &s.grf[in.Dst]
		base := addrs[0]
		for l := 0; l < width; l++ {
			dst[l] = uint32(surf.LoadElem(base+uint32(l*elem), elem))
			access(base+uint32(l*elem), false)
		}
	case isa.MsgStoreBlock:
		data := &s.grf[in.Src1.Reg]
		base := addrs[0]
		for l := 0; l < width; l++ {
			surf.StoreElem(base+uint32(l*elem), elem, uint64(data[l]))
			access(base+uint32(l*elem), true)
		}
	case isa.MsgAtomicAdd:
		data := &s.grf[in.Src1.Reg]
		dst := &s.grf[in.Dst]
		for l := 0; l < active; l++ {
			if s.laneOn(in.Pred, l) {
				old := surf.AtomicAdd(addrs[l], elem, uint64(data[l]))
				dst[l] = uint32(old)
				access(addrs[l], true)
			}
		}
	default:
		return 0, 0, fmt.Errorf("send: unsupported message kind %s", msg.Kind)
	}
	lat := uint64(worstNs * freq)
	if lat == 0 {
		lat = 1
	}
	return lat, missBytes, nil
}
