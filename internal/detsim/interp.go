package detsim

import (
	"fmt"

	"gtpin/internal/device"
	"gtpin/internal/engine"
	"gtpin/internal/kernel"
)

// This file composes the shared execution engine into the detailed
// backend: cycle-level groups run engine.Env.RunGroupDetailed against
// the simulated cache hierarchy, unsampled groups run the functional
// loop, and the per-enqueue watchdog budget is armed per invocation so
// it trips at the same dynamic instruction as the functional device.
// (Warmup invocations run on the fast-forward device with the
// cache-touch hook installed — see Run and RunSnippet.) All ISA
// interpretation lives in internal/engine; this package contributes the
// sampling, warmup, extrapolation, and wall-time modelling.

// beginInvocation arms the engine for one enqueue: watchdog budget and,
// when a probe is attached, the basic-block observer hook.
func (s *Simulator) beginInvocation(k *kernel.Kernel) {
	s.eng.Watchdog.Reset(s.cfg.WatchdogInstrs)
	if s.probe != nil {
		s.eng.OnBlock = s.probe.Profile(k).CountBlock
	} else {
		s.eng.OnBlock = nil
	}
}

// runDetailed simulates one dispatch at cycle level: every channel of
// every instruction is evaluated individually, every memory access
// walks the cache hierarchy, and an in-order scoreboard charges
// dependency stalls. The architectural results are identical to the
// fast functional path — a property the test suite enforces — but the
// simulation cost per instruction is orders of magnitude higher.
func (s *Simulator) runDetailed(k *kernel.Kernel, args []uint32, surfs []*device.Buffer, gws, sampleGroups int, rep *Report) error {
	if gws <= 0 {
		return fmt.Errorf("global work size %d", gws)
	}
	if len(args) < k.NumArgs || len(surfs) < k.NumSurfaces {
		return fmt.Errorf("insufficient args (%d/%d) or surfaces (%d/%d)",
			len(args), k.NumArgs, len(surfs), k.NumSurfaces)
	}
	if sampleGroups < 1 {
		sampleGroups = 1
	}
	width := int(k.SIMD)
	groups := (gws + width - 1) / width
	freq := float64(s.cfg.Device.FreqMHz) / 1000 // GHz

	s.beginInvocation(k)
	// Timer sends observe live time: the enqueue's starting cycle count
	// plus the in-flight group's own cycles (pipeline cycle at issue for
	// detailed groups, accumulated functional cycles for unsampled ones).
	// Previously the detailed hook was frozen at the dispatch-start value
	// and unsampled groups saw no timer at all, so a kernel timing itself
	// read a stale value that disagreed with the functional device.
	base := rep.DetailedCycles
	s.det.Timer = func(cycle uint64) uint32 { return uint32(base + cycle) }
	s.eng.Timer = func(groupCycles uint64) uint32 { return uint32(base + groupCycles) }
	if s.timerHook != nil {
		s.det.Timer = s.timerHook
		s.eng.Timer = s.timerHook
	}
	s.eng.Touch = nil

	var ds engine.DetailedStats
	var fst engine.Stats // functional-loop counters; detsim models time itself
	var totalCycles uint64
	var missBytes uint64
	sampled := 0
	for g := 0; g < groups; g++ {
		active := gws - g*width
		if active > width {
			active = width
		}
		if g%sampleGroups == 0 {
			cycles, misses, err := s.eng.RunGroupDetailed(&s.det, k, args, surfs, g, active, freq, &ds)
			if err != nil {
				return fmt.Errorf("group %d: %w", g, err)
			}
			totalCycles += cycles
			missBytes += misses
			sampled++
		} else if err := s.eng.RunGroup(k, args, surfs, g, active, &fst); err != nil {
			return fmt.Errorf("group %d: %w", g, err)
		}
	}
	rep.DetailedInstrs += ds.Instrs
	rep.LaneOps += ds.LaneOps
	// Extrapolate unsampled groups' timing from the sampled ones.
	if sampled > 0 && sampled < groups {
		scale := float64(groups) / float64(sampled)
		totalCycles = uint64(float64(totalCycles) * scale)
		missBytes = uint64(float64(missBytes) * scale)
	}

	rep.DetailedCycles += totalCycles
	// Wall-time: cycles across the machine's parallelism, with a DRAM
	// bandwidth floor on the traffic that missed every cache level (the
	// caches filter the rest — a refinement over the fast timing model).
	par := float64(s.cfg.Device.HWThreads())
	if g := float64(groups); g < par {
		par = g
	}
	t := float64(totalCycles) / freq / par / s.cfg.Device.IssueRate
	if bw := float64(missBytes) / s.cfg.Device.MemGBps; bw > t {
		t = bw
	}
	rep.DetailedTimeNs += s.cfg.Device.DispatchNs + t
	return nil
}

// touchCache is the warmup hook, installed on the fast-forward device
// while a warmup invocation runs: every send access walks the simulated
// hierarchy so microarchitectural state stays warm. (Warmup execution
// itself moved onto the device — see Run — so warmup time is modelled
// and the device clock advances exactly as it would without warmup.)
func (s *Simulator) touchCache(key uint64, write bool) {
	s.caches.Access(key, write)
}
