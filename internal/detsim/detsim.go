// Package detsim is the detailed microarchitectural GPU simulator whose
// cost motivates the paper: it interprets kernels lane-by-lane with an
// in-order scoreboard pipeline model and a simulated cache hierarchy.
// Detailed simulation runs orders of magnitude slower than the fast
// functional path in gtpin/internal/device — which is exactly why the
// paper selects small representative subsets to simulate instead of full
// programs.
//
// The simulator consumes a CoFluent recording and a set of invocation
// ranges to simulate in detail; invocations outside the ranges are
// fast-forwarded functionally (the paper's step 6: "simulate this subset
// of program intervals in detail, while ignoring the remainder of the
// program by fast-forwarding"). Both paths produce identical
// architectural state, so a partial detailed simulation observes the
// same memory images a full one would.
package detsim

import (
	"fmt"
	"sort"

	"gtpin/internal/cachesim"
	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/engine"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// Config describes the simulated machine.
type Config struct {
	Device device.Config
	// Caches lists cache levels nearest-first; when empty, the HD 4000
	// L3+LLC pair is used.
	Caches []cachesim.Config
	// PipelineDepth is the in-order pipeline's result latency in cycles
	// for single-cycle ops (dependent instructions stall on it).
	PipelineDepth int
	// WatchdogInstrs is the per-enqueue dynamic-instruction budget,
	// surfaced as faults.ErrWatchdogTimeout when exceeded — the same
	// engine accounting the functional device uses, so a budget trips at
	// the same dynamic instruction on both backends. 0 disables the
	// budget, leaving only the engine's per-group runaway backstop.
	WatchdogInstrs uint64
}

// DefaultConfig returns a detailed model of the paper's HD 4000 system.
func DefaultConfig() Config {
	return Config{
		Device:        device.IvyBridgeHD4000(),
		Caches:        []cachesim.Config{cachesim.HD4000L3(), cachesim.HD4000LLC()},
		PipelineDepth: 4,
	}
}

// Range selects invocations [From, To) by invocation sequence number for
// detailed simulation.
//
// SampleGroups enables the intra-kernel sampling extension the paper's
// related-work section points at (TBPoint, Huang et al.): when N > 1,
// only every N-th channel-group of a detailed invocation is modelled at
// cycle level — the rest execute functionally, preserving architectural
// state — and the detailed time is extrapolated by N. This composes the
// paper's whole-invocation skipping with partial-kernel simulation; the
// trade-off is cache warm-up distortion, since unsampled groups do not
// touch the simulated caches.
type Range struct {
	From, To     int
	SampleGroups int // 0 or 1 = model every group

	// Warmup asks for the W invocations preceding From to run in
	// cache-warming mode: functional execution that touches the simulated
	// caches without contributing timing — the PinPoints practice of
	// warming microarchitectural state before a simulation region so the
	// region does not start against cold caches.
	Warmup int
}

// Report summarizes a simulation.
type Report struct {
	Detailed      int // invocations simulated in detail
	FastForwarded int // invocations executed functionally only
	Warmed        int // invocations run in cache-warming mode

	DetailedInstrs uint64 // dynamic instructions simulated in detail
	DetailedCycles uint64 // summed per-thread pipeline cycles
	DetailedTimeNs float64
	LaneOps        uint64 // per-lane operations evaluated (simulation work)

	FastForwardTimeNs float64 // modelled time of fast-forwarded work

	Cache       []cachesim.Stats
	MemAccesses uint64 // accesses missing all cache levels

	// Ranges reports per-range detailed results, aligned with the ranges
	// passed to Run (after sorting by From) — what subset extrapolation
	// consumes.
	Ranges []RangeReport
}

// RangeReport is the detailed-simulation result of one invocation range.
type RangeReport struct {
	Range          Range
	Invocations    int
	DetailedInstrs uint64
	DetailedTimeNs float64
}

// Simulator runs recordings under the detailed model. It composes the
// shared execution engine (gtpin/internal/engine) with the cycle-level
// timing model: the engine interprets the ISA, this package supplies
// the scoreboard depth, cache hierarchy, sampling, and warmup policy.
type Simulator struct {
	cfg    Config
	caches *cachesim.Hierarchy

	// buffers holds the last run's memory state, for tests that compare
	// architectural results against the functional device.
	buffers map[int]*device.Buffer

	// eng is the shared execution engine (interpreter scratch, watchdog
	// accounting, hooks); det is its cycle-level extension (scoreboard,
	// cache model).
	eng engine.Env
	det engine.Detailed

	probe *engine.Probe // attached analysis probe, or nil

	// timerHook, when set, overrides the live cycle counters as the value
	// source for MsgTimer sends across every execution mode.
	timerHook func(uint64) uint32
}

// New creates a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 4
	}
	caches := cfg.Caches
	if len(caches) == 0 {
		caches = []cachesim.Config{cachesim.HD4000L3(), cachesim.HD4000LLC()}
	}
	h, err := cachesim.NewHierarchy(cfg.Device.MemLatencyNs, caches...)
	if err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	cfg.Caches = caches
	s := &Simulator{cfg: cfg, caches: h}
	s.det.Depth = uint64(cfg.PipelineDepth)
	s.det.Caches = h
	s.det.MemLatencyNs = cfg.Device.MemLatencyNs
	return s, nil
}

// SetProbe attaches an engine analysis probe observing every detailed or
// warmup invocation's dynamic basic-block entries; nil detaches. The
// probe is also attached to the inner fast-forward device, so a full
// replay yields complete block counts regardless of range selection.
// Pure observation: probes never alter execution, timing, or statistics.
func (s *Simulator) SetProbe(p *engine.Probe) { s.probe = p }

// SetTimerHook overrides the value MsgTimer sends read, across every
// execution mode — detailed, fast-forward, and warmup — with one
// deterministic function; nil restores the live cycle counters. Tests
// install the same hook on a recording device and on every replaying
// backend, so timer-reading kernels produce identical memory images
// everywhere despite the backends' different notions of time.
func (s *Simulator) SetTimerHook(h func(uint64) uint32) { s.timerHook = h }

// Run replays the recording, simulating invocations inside the detailed
// ranges with the cycle-level model and fast-forwarding the rest.
func (s *Simulator) Run(rec *cofluent.Recording, detailed []Range) (*Report, error) {
	s.caches.Reset()
	ranges := append([]Range(nil), detailed...)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].From < ranges[j].From })

	dev, err := device.New(s.cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	// The fast-forward device shares the per-enqueue budget and probe, so
	// watchdog trips and block counts are identical whether an invocation
	// lands inside or outside a detailed range.
	dev.SetWatchdog(s.cfg.WatchdogInstrs)
	dev.SetProbe(s.probe)
	dev.SetTimerHook(s.timerHook)

	rep := &Report{}
	buffers := make(map[int]*device.Buffer)
	s.buffers = buffers
	programs := make(map[int]map[string]*jit.Binary)
	kernelIR := make(map[int]*kernel.Kernel) // kernel object ID -> IR
	kernelBin := make(map[int]*jit.Binary)   // kernel object ID -> binary
	kargs := make(map[int][]uint32)          // kernel object ID -> scalar args
	ksurfs := make(map[int][]*device.Buffer) // kernel object ID -> surfaces

	rep.Ranges = make([]RangeReport, len(ranges))
	for i, r := range ranges {
		rep.Ranges[i].Range = r
	}
	rangeOf := func(seq int) int {
		for i, r := range ranges {
			if seq >= r.From && seq < r.To {
				return i
			}
		}
		return -1
	}
	inWarmup := func(seq int) bool {
		for _, r := range ranges {
			if r.Warmup > 0 && seq >= r.From-r.Warmup && seq < r.From {
				return true
			}
		}
		return false
	}

	invocation := 0
	for i := range rec.Calls {
		c := &rec.Calls[i]
		switch c.Name {
		case cl.CallCreateBuffer:
			b, err := device.NewBuffer(c.Size)
			if err != nil {
				return nil, fmt.Errorf("detsim: call %d: %w", i, err)
			}
			buffers[c.Buffer] = b
		case cl.CallBuildProgram:
			if c.Program >= len(rec.Programs) {
				return nil, fmt.Errorf("detsim: call %d: program %d not in recording", i, c.Program)
			}
			bins, err := jit.CompileProgram(rec.Programs[c.Program])
			if err != nil {
				return nil, fmt.Errorf("detsim: call %d: %w", i, err)
			}
			programs[c.Program] = bins
		case cl.CallCreateKernel:
			bins, ok := programs[c.Program]
			if !ok {
				return nil, fmt.Errorf("detsim: call %d: kernel %s of unbuilt program %d", i, c.Kernel, c.Program)
			}
			ir := rec.Programs[c.Program].Kernel(c.Kernel)
			if ir == nil || bins[c.Kernel] == nil {
				return nil, fmt.Errorf("detsim: call %d: unknown kernel %s", i, c.Kernel)
			}
			kernelIR[c.KID] = ir
			kernelBin[c.KID] = bins[c.Kernel]
			kargs[c.KID] = make([]uint32, ir.NumArgs)
			ksurfs[c.KID] = make([]*device.Buffer, ir.NumSurfaces)
		case cl.CallSetKernelArg:
			ir, ok := kernelIR[c.KID]
			if !ok {
				return nil, fmt.Errorf("detsim: call %d: arg on unknown kernel %d", i, c.KID)
			}
			if c.ArgIdx >= ir.NumArgs {
				b, ok := buffers[c.Buffer]
				if !ok {
					return nil, fmt.Errorf("detsim: call %d: unknown buffer %d", i, c.Buffer)
				}
				ksurfs[c.KID][c.ArgIdx-ir.NumArgs] = b
			} else {
				kargs[c.KID][c.ArgIdx] = c.ArgVal
			}
		case cl.CallEnqueueWriteBuffer:
			b, ok := buffers[c.Buffer]
			if !ok {
				return nil, fmt.Errorf("detsim: call %d: write to unknown buffer %d", i, c.Buffer)
			}
			copy(b.Bytes()[c.Offset:], c.Payload)
		case cl.CallEnqueueCopyBuffer, cl.CallEnqueueCopyImgToBuf:
			src, dst := buffers[c.Buffer], buffers[c.Buffer2]
			if src == nil || dst == nil {
				return nil, fmt.Errorf("detsim: call %d: copy with unknown buffer", i)
			}
			copy(dst.Bytes()[c.Offset2:c.Offset2+c.Size], src.Bytes()[c.Offset:c.Offset+c.Size])
		case cl.CallEnqueueNDRangeKernel:
			ir, ok := kernelIR[c.KID]
			if !ok {
				return nil, fmt.Errorf("detsim: call %d: enqueue of unknown kernel %d", i, c.KID)
			}
			// Dispatch is synchronous and the interpreters never append to
			// these slices, so the kernel's live bindings are passed
			// directly instead of copied per enqueue.
			args := kargs[c.KID]
			surfs := ksurfs[c.KID]
			if ri := rangeOf(invocation); ri >= 0 {
				beforeT, beforeI := rep.DetailedTimeNs, rep.DetailedInstrs
				if err := s.runDetailed(ir, args, surfs, c.GWS, ranges[ri].SampleGroups, rep); err != nil {
					return nil, fmt.Errorf("detsim: invocation %d (%s): %w", invocation, ir.Name, err)
				}
				rr := &rep.Ranges[ri]
				rr.Invocations++
				rr.DetailedTimeNs += rep.DetailedTimeNs - beforeT
				rr.DetailedInstrs += rep.DetailedInstrs - beforeI
				rep.Detailed++
			} else if inWarmup(invocation) {
				if err := s.runWarmup(ir, args, surfs, c.GWS, rep); err != nil {
					return nil, fmt.Errorf("detsim: warmup invocation %d: %w", invocation, err)
				}
				rep.Warmed++
				invocation++
				continue
			} else {
				st, err := dev.Run(device.Dispatch{
					Binary: kernelBin[c.KID], Args: args, Surfaces: surfs, GlobalWorkSize: c.GWS,
				})
				if err != nil {
					return nil, fmt.Errorf("detsim: fast-forward invocation %d: %w", invocation, err)
				}
				rep.FastForwardTimeNs += st.TimeNs
				rep.FastForwarded++
			}
			invocation++
		default:
			// Host-only calls carry no device work.
		}
	}
	for _, c := range s.caches.Levels() {
		rep.Cache = append(rep.Cache, c.Stats())
	}
	rep.MemAccesses = s.caches.MemAccesses
	observeReport(rep)
	return rep, nil
}

// Buffer returns the last run's buffer with the given recording ID, or
// nil. Tests use it to compare architectural state against the
// functional device.
func (s *Simulator) Buffer(id int) *device.Buffer { return s.buffers[id] }
