// Package detsim is the detailed microarchitectural GPU simulator whose
// cost motivates the paper: it interprets kernels lane-by-lane with an
// in-order scoreboard pipeline model and a simulated cache hierarchy.
// Detailed simulation runs orders of magnitude slower than the fast
// functional path in gtpin/internal/device — which is exactly why the
// paper selects small representative subsets to simulate instead of full
// programs.
//
// The simulator consumes a CoFluent recording and a set of invocation
// ranges to simulate in detail; invocations outside the ranges are
// fast-forwarded functionally (the paper's step 6: "simulate this subset
// of program intervals in detail, while ignoring the remainder of the
// program by fast-forwarding"). Both paths produce identical
// architectural state, so a partial detailed simulation observes the
// same memory images a full one would.
package detsim

import (
	"fmt"
	"sort"

	"gtpin/internal/cachesim"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/engine"
	"gtpin/internal/faults"
	"gtpin/internal/isa"
)

// Config describes the simulated machine.
type Config struct {
	Device device.Config
	// Caches lists cache levels nearest-first; when empty, the HD 4000
	// L3+LLC pair is used.
	Caches []cachesim.Config
	// PipelineDepth is the in-order pipeline's result latency in cycles
	// for single-cycle ops (dependent instructions stall on it).
	PipelineDepth int
	// WatchdogInstrs is the per-enqueue dynamic-instruction budget,
	// surfaced as faults.ErrWatchdogTimeout when exceeded — the same
	// engine accounting the functional device uses, so a budget trips at
	// the same dynamic instruction on both backends. 0 disables the
	// budget, leaving only the engine's per-group runaway backstop.
	WatchdogInstrs uint64
}

// DefaultConfig returns a detailed model of the paper's HD 4000 system.
func DefaultConfig() Config {
	return Config{
		Device:        device.IvyBridgeHD4000(),
		Caches:        []cachesim.Config{cachesim.HD4000L3(), cachesim.HD4000LLC()},
		PipelineDepth: 4,
	}
}

// Range selects invocations [From, To) by invocation sequence number for
// detailed simulation.
//
// SampleGroups enables the intra-kernel sampling extension the paper's
// related-work section points at (TBPoint, Huang et al.): when N > 1,
// only every N-th channel-group of a detailed invocation is modelled at
// cycle level — the rest execute functionally, preserving architectural
// state — and the detailed time is extrapolated by N. This composes the
// paper's whole-invocation skipping with partial-kernel simulation; the
// trade-off is cache warm-up distortion, since unsampled groups do not
// touch the simulated caches.
type Range struct {
	From, To     int
	SampleGroups int // 0 or 1 = model every group

	// Warmup asks for the W invocations preceding From to run in
	// cache-warming mode: functional execution that touches the simulated
	// caches without contributing timing — the PinPoints practice of
	// warming microarchitectural state before a simulation region so the
	// region does not start against cold caches.
	Warmup int
}

// Report summarizes a simulation.
type Report struct {
	Detailed      int // invocations simulated in detail
	FastForwarded int // invocations executed functionally only
	Warmed        int // invocations run in cache-warming mode

	DetailedInstrs uint64 // dynamic instructions simulated in detail
	DetailedCycles uint64 // summed per-thread pipeline cycles
	DetailedTimeNs float64
	LaneOps        uint64 // per-lane operations evaluated (simulation work)

	FastForwardTimeNs float64 // modelled time of fast-forwarded work

	// WarmupTimeNs is the modelled time of warmup invocations. They
	// execute through the same fast-forward device as plain functional
	// invocations — on real hardware the warmup prefix runs like any
	// other work — so FastForwardTimeNs + WarmupTimeNs is conserved no
	// matter how much of the fast-forwarded region a Warmup window
	// relabels.
	WarmupTimeNs float64

	Cache       []cachesim.Stats
	MemAccesses uint64 // accesses missing all cache levels

	// Ranges reports per-range detailed results, aligned with the ranges
	// passed to Run (after sorting by From) — what subset extrapolation
	// consumes.
	Ranges []RangeReport
}

// RangeReport is the detailed-simulation result of one invocation range.
type RangeReport struct {
	Range          Range
	Invocations    int
	DetailedInstrs uint64
	DetailedTimeNs float64
}

// Simulator runs recordings under the detailed model. It composes the
// shared execution engine (gtpin/internal/engine) with the cycle-level
// timing model: the engine interprets the ISA, this package supplies
// the scoreboard depth, cache hierarchy, sampling, and warmup policy.
type Simulator struct {
	cfg    Config
	caches *cachesim.Hierarchy

	// buffers holds the last run's memory state, for tests that compare
	// architectural results against the functional device.
	buffers map[int]*device.Buffer

	// eng is the shared execution engine (interpreter scratch, watchdog
	// accounting, hooks); det is its cycle-level extension (scoreboard,
	// cache model).
	eng engine.Env
	det engine.Detailed

	probe *engine.Probe // attached analysis probe, or nil

	// timerHook, when set, overrides the live cycle counters as the value
	// source for MsgTimer sends across every execution mode.
	timerHook func(uint64) uint32
}

// New creates a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 4
	}
	caches := cfg.Caches
	if len(caches) == 0 {
		caches = []cachesim.Config{cachesim.HD4000L3(), cachesim.HD4000LLC()}
	}
	h, err := cachesim.NewHierarchy(cfg.Device.MemLatencyNs, caches...)
	if err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	cfg.Caches = caches
	s := &Simulator{cfg: cfg, caches: h}
	s.det.Depth = uint64(cfg.PipelineDepth)
	s.det.Caches = h
	s.det.MemLatencyNs = cfg.Device.MemLatencyNs
	return s, nil
}

// SetProbe attaches an engine analysis probe observing every detailed or
// warmup invocation's dynamic basic-block entries; nil detaches. The
// probe is also attached to the inner fast-forward device, so a full
// replay yields complete block counts regardless of range selection.
// Pure observation: probes never alter execution, timing, or statistics.
func (s *Simulator) SetProbe(p *engine.Probe) { s.probe = p }

// SetTimerHook overrides the value MsgTimer sends read, across every
// execution mode — detailed, fast-forward, and warmup — with one
// deterministic function; nil restores the live cycle counters. Tests
// install the same hook on a recording device and on every replaying
// backend, so timer-reading kernels produce identical memory images
// everywhere despite the backends' different notions of time.
func (s *Simulator) SetTimerHook(h func(uint64) uint32) { s.timerHook = h }

// validateRanges rejects malformed or ambiguous sampling plans on a
// From-sorted range list: empty or negative ranges, overlapping
// detailed ranges (the old linear scan silently resolved overlaps
// first-match-wins), and warmup windows reaching back across an
// earlier detailed range (which would silently re-run already-detailed
// invocations in warmup mode). A warmup window larger than the
// preceding program is fine — it clamps at invocation 0.
func validateRanges(ranges []Range) error {
	for i, r := range ranges {
		if r.From < 0 {
			return fmt.Errorf("detsim: range [%d, %d) has negative start: %w", r.From, r.To, faults.ErrBadConfig)
		}
		if r.To <= r.From {
			return fmt.Errorf("detsim: range [%d, %d) is empty: %w", r.From, r.To, faults.ErrBadConfig)
		}
		if r.Warmup < 0 {
			return fmt.Errorf("detsim: range [%d, %d) has negative warmup %d: %w", r.From, r.To, r.Warmup, faults.ErrBadConfig)
		}
		if r.SampleGroups < 0 {
			return fmt.Errorf("detsim: range [%d, %d) has negative sample-groups %d: %w", r.From, r.To, r.SampleGroups, faults.ErrBadConfig)
		}
		if i == 0 {
			continue
		}
		prev := ranges[i-1]
		if r.From < prev.To {
			return fmt.Errorf("detsim: ranges [%d, %d) and [%d, %d) overlap: %w",
				prev.From, prev.To, r.From, r.To, faults.ErrBadConfig)
		}
		if r.Warmup > 0 && r.From-r.Warmup < prev.To {
			return fmt.Errorf("detsim: warmup window [%d, %d) of range [%d, %d) crosses detailed range [%d, %d): %w",
				r.From-r.Warmup, r.From, r.From, r.To, prev.From, prev.To, faults.ErrBadConfig)
		}
	}
	return nil
}

// Run replays the recording, simulating invocations inside the detailed
// ranges with the cycle-level model and fast-forwarding the rest.
// Warmup invocations execute through the fast-forward device (so their
// modelled time lands in WarmupTimeNs and the device clock advances as
// it would without warmup) with the cache-touch hook installed.
func (s *Simulator) Run(rec *cofluent.Recording, detailed []Range) (*Report, error) {
	s.caches.Reset()
	ranges := append([]Range(nil), detailed...)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].From < ranges[j].From })
	if err := validateRanges(ranges); err != nil {
		return nil, err
	}

	dev, err := device.New(s.cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	// The fast-forward device shares the per-enqueue budget and probe, so
	// watchdog trips and block counts are identical whether an invocation
	// lands inside or outside a detailed range.
	dev.SetWatchdog(s.cfg.WatchdogInstrs)
	dev.SetProbe(s.probe)
	dev.SetTimerHook(s.timerHook)

	rep := &Report{}
	buffers := make(map[int]*device.Buffer)
	s.buffers = buffers

	rep.Ranges = make([]RangeReport, len(ranges))
	for i, r := range ranges {
		rep.Ranges[i].Range = r
	}
	// Sorted, validated ranges are disjoint — and so are their warmup
	// windows — so first match is the only match.
	rangeOf := func(seq int) int {
		for i, r := range ranges {
			if seq >= r.From && seq < r.To {
				return i
			}
		}
		return -1
	}
	inWarmup := func(seq int) bool {
		for _, r := range ranges {
			if r.Warmup > 0 && seq >= r.From-r.Warmup && seq < r.From {
				return true
			}
		}
		return false
	}

	err = walkRecording(rec, buffers, walkHooks{onLaunch: func(l *launch) error {
		if ri := rangeOf(l.Invocation); ri >= 0 {
			beforeT, beforeI := rep.DetailedTimeNs, rep.DetailedInstrs
			if err := s.runDetailed(l.IR, l.Args, l.Surfaces, l.GWS, ranges[ri].SampleGroups, rep); err != nil {
				return fmt.Errorf("detsim: invocation %d (%s): %w", l.Invocation, l.IR.Name, err)
			}
			rr := &rep.Ranges[ri]
			rr.Invocations++
			rr.DetailedTimeNs += rep.DetailedTimeNs - beforeT
			rr.DetailedInstrs += rep.DetailedInstrs - beforeI
			rep.Detailed++
			return nil
		}
		touch := inWarmup(l.Invocation)
		if touch {
			dev.SetTouchHook(s.touchCache)
		}
		st, derr := dev.Run(device.Dispatch{
			Binary: l.Bin, Args: l.Args, Surfaces: l.Surfaces, GlobalWorkSize: l.GWS,
		})
		if touch {
			dev.SetTouchHook(nil)
			if derr != nil {
				return fmt.Errorf("detsim: warmup invocation %d: %w", l.Invocation, derr)
			}
			rep.WarmupTimeNs += st.TimeNs
			rep.Warmed++
			return nil
		}
		if derr != nil {
			return fmt.Errorf("detsim: fast-forward invocation %d: %w", l.Invocation, derr)
		}
		rep.FastForwardTimeNs += st.TimeNs
		rep.FastForwarded++
		return nil
	}})
	if err != nil {
		return nil, err
	}
	for _, c := range s.caches.Levels() {
		rep.Cache = append(rep.Cache, c.Stats())
	}
	rep.MemAccesses = s.caches.MemAccesses
	observeReport(rep, recordingDialect(rec))
	return rep, nil
}

// recordingDialect reports the ISA dialect a recording's programs were
// authored in (recordings are single-dialect: one application builds
// against one device generation). Zero-program recordings report the
// default dialect.
func recordingDialect(rec *cofluent.Recording) isa.Dialect {
	for _, p := range rec.Programs {
		for _, k := range p.Kernels {
			return k.Dialect
		}
	}
	return 0
}

// Buffer returns the last run's buffer with the given recording ID, or
// nil. Tests use it to compare architectural state against the
// functional device.
func (s *Simulator) Buffer(id int) *device.Buffer { return s.buffers[id] }
