package detsim_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/kernel"
	"gtpin/internal/par"
	"gtpin/internal/testgen"
)

// recordCfg is record with an explicit generator config and an optional
// deterministic timer hook on the recording device. The snippet
// differential needs both: the fidelity config emits timer-reading
// kernels, and those are only byte-comparable across backends under a
// shared hook.
func recordCfg(t testing.TB, seed int64, steps int, cfg testgen.Config, timer func(uint64) uint32) (*cofluent.Recording, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := testgen.Program(rng, fmt.Sprintf("snip%d", seed), cfg)
	sched := testgen.Driver(rng, p, steps, cfg)

	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetTimerHook(timer)
	ctx := cl.NewContext(dev)
	tr := cofluent.Attach(ctx)
	q := ctx.CreateQueue()
	in, _ := ctx.CreateBuffer(1 << 12)
	out, _ := ctx.CreateBuffer(1 << 12)
	data := make([]byte, 1<<12)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	if err := q.EnqueueWriteBuffer(in, 0, data); err != nil {
		t.Fatal(err)
	}
	prog := ctx.CreateProgram(p)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	kernels := map[string]*cl.Kernel{}
	for _, k := range p.Kernels {
		ko, err := prog.CreateKernel(k.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ko.SetBuffer(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ko.SetBuffer(1, out); err != nil {
			t.Fatal(err)
		}
		kernels[k.Name] = ko
	}
	for _, s := range sched {
		ko := kernels[s.Kernel]
		if err := ko.SetArg(0, s.Iters); err != nil {
			t.Fatal(err)
		}
		if err := q.EnqueueNDRangeKernel(ko, s.GWS); err != nil {
			t.Fatal(err)
		}
		if s.Sync {
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	rec, err := cofluent.Record("snip", tr, []*kernel.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	return rec, len(tr.Timings())
}

// constTimer is a deterministic, stateless timer hook. Snippet replays
// skip the prefix's timer reads, so only a hook with no cross-call
// state produces identical values on the serial and snippet paths.
func constTimer(uint64) uint32 { return 0x51C0FFEE }

// snippetRanges picks a representative sampling plan for an n-invocation
// recording: an early range with warmup clamping at program start, a
// middle one with warmup, and one ending at the last invocation.
func snippetRanges(n int) []detsim.Range {
	if n < 6 {
		return []detsim.Range{{From: n / 2, To: n/2 + 1, Warmup: 1}}
	}
	return []detsim.Range{
		{From: 1, To: 2, Warmup: 1},
		{From: n / 2, To: n/2 + 1, Warmup: 2},
		{From: n - 1, To: n},
	}
}

// comparable strips a report down to the fields the serial and snippet
// paths must agree on byte-for-byte. Fast-forward fields are excluded
// by construction: not fast-forwarding the prefix is the snippet path's
// entire purpose.
type comparableReport struct {
	Detailed       int
	Warmed         int
	DetailedInstrs uint64
	DetailedCycles uint64
	DetailedTimeNs float64
	LaneOps        uint64
	WarmupTimeNs   float64
	Cache          string
	MemAccesses    uint64
	Range          detsim.RangeReport
}

func comparable(rep *detsim.Report) comparableReport {
	return comparableReport{
		Detailed:       rep.Detailed,
		Warmed:         rep.Warmed,
		DetailedInstrs: rep.DetailedInstrs,
		DetailedCycles: rep.DetailedCycles,
		DetailedTimeNs: rep.DetailedTimeNs,
		LaneOps:        rep.LaneOps,
		WarmupTimeNs:   rep.WarmupTimeNs,
		Cache:          fmt.Sprintf("%+v", rep.Cache),
		MemAccesses:    rep.MemAccesses,
		Range:          rep.Ranges[0],
	}
}

// TestSnippetReplayMatchesSerial is the tentpole differential: for
// random workloads — including timer-reading, predication-heavy ones —
// capturing interval snippets and replaying them in parallel must
// reproduce the exact per-range reports, cache statistics, and memory
// images of the serial fast-forwarding path. Snippets round-trip
// through their serialized form on the way, so the portability format
// is under the same microscope.
func TestSnippetReplayMatchesSerial(t *testing.T) {
	cases := []struct {
		name  string
		cfg   testgen.Config
		timer func(uint64) uint32
	}{
		{"default", testgen.DefaultConfig(), nil},
		{"fidelity", testgen.FidelityConfig(), constTimer},
	}
	for _, tc := range cases {
		for trial := 0; trial < 4; trial++ {
			tc, trial := tc, trial
			t.Run(fmt.Sprintf("%s/trial%d", tc.name, trial), func(t *testing.T) {
				rec, n := recordCfg(t, int64(8600+trial), 8, tc.cfg, tc.timer)
				ranges := snippetRanges(n)

				// Serial baseline: one full fast-forwarding Run per range,
				// each on a fresh simulator — exactly what cmd/subsets did
				// before snippets.
				serial := make([]comparableReport, len(ranges))
				var serialOut [][]byte
				for i, r := range ranges {
					sim, err := detsim.New(detsim.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					sim.SetTimerHook(tc.timer)
					rep, err := sim.Run(rec, []detsim.Range{r})
					if err != nil {
						t.Fatal(err)
					}
					serial[i] = comparable(rep)
					if i == len(ranges)-1 && r.To == n {
						serialOut = append(serialOut, append([]byte(nil), sim.Buffer(0).Bytes()...))
						serialOut = append(serialOut, append([]byte(nil), sim.Buffer(1).Bytes()...))
					}
				}

				// Capture once, round-trip the serialization, replay all
				// snippets in parallel on private simulators.
				capSim, err := detsim.New(detsim.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				capSim.SetTimerHook(tc.timer)
				snips, err := capSim.Capture(rec, ranges)
				if err != nil {
					t.Fatal(err)
				}
				if len(snips) != len(ranges) {
					t.Fatalf("captured %d snippets for %d ranges", len(snips), len(ranges))
				}
				for i, sn := range snips {
					data, err := sn.Encode()
					if err != nil {
						t.Fatal(err)
					}
					rt, err := detsim.DecodeSnippet(data)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(sn, rt) {
						t.Fatalf("snippet %d did not survive the encode/decode round trip", i)
					}
					snips[i] = rt
				}

				type replayOut struct {
					rep  comparableReport
					bufs [][]byte
				}
				outs, err := par.Map(context.Background(), len(snips), 4, func(i int) (replayOut, error) {
					sim, err := detsim.New(detsim.DefaultConfig())
					if err != nil {
						return replayOut{}, err
					}
					sim.SetTimerHook(tc.timer)
					rep, err := sim.RunSnippet(snips[i])
					if err != nil {
						return replayOut{}, err
					}
					o := replayOut{rep: comparable(rep)}
					if i == len(snips)-1 && snips[i].Range.To == n {
						o.bufs = append(o.bufs, append([]byte(nil), sim.Buffer(0).Bytes()...))
						o.bufs = append(o.bufs, append([]byte(nil), sim.Buffer(1).Bytes()...))
					}
					return o, nil
				})
				if err != nil {
					t.Fatal(err)
				}

				for i := range ranges {
					if outs[i].rep != serial[i] {
						t.Errorf("range %d: snippet replay diverged from serial:\nserial:  %+v\nsnippet: %+v",
							i, serial[i], outs[i].rep)
					}
				}
				// The last range ends the recording, so its replay's final
				// images must equal the serial path's (which in turn equal
				// the original device's).
				if len(serialOut) > 0 {
					last := outs[len(outs)-1]
					if len(last.bufs) != len(serialOut) {
						t.Fatalf("buffer image sets differ in size")
					}
					for b := range serialOut {
						if !bytes.Equal(last.bufs[b], serialOut[b]) {
							t.Errorf("buffer %d: snippet replay memory diverged from serial", b)
						}
					}
				}
			})
		}
	}
}

// TestSnippetTrimsUntouchedBuffers: a snippet must not carry images (or
// digests) for buffers its window never touches — the size savings that
// make snippets shippable.
func TestSnippetTrimsUntouchedBuffers(t *testing.T) {
	rec, n := recordCfg(t, 8701, 6, testgen.DefaultConfig(), nil)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snips, err := sim.Capture(rec, []detsim.Range{{From: n - 1, To: n}})
	if err != nil {
		t.Fatal(err)
	}
	sn := snips[0]
	imaged := 0
	for _, b := range sn.Buffers {
		if len(b.Image) > 0 {
			imaged++
			if len(b.Image) != b.Size {
				t.Errorf("buffer %d: image %d bytes, size %d", b.ID, len(b.Image), b.Size)
			}
		}
	}
	if imaged == 0 {
		t.Fatal("no buffer carried an image — the window must touch something")
	}
	if len(sn.PostDigests) == 0 {
		t.Fatal("no post-digests recorded")
	}
	for _, d := range sn.PostDigests {
		if len(d.SHA256) != 64 {
			t.Errorf("buffer %d: malformed digest %q", d.ID, d.SHA256)
		}
	}
}

// TestSnippetDivergenceDetected: corrupting a snippet's memory image
// must surface as faults.ErrSnippetDiverged at replay, not as silently
// wrong results.
func TestSnippetDivergenceDetected(t *testing.T) {
	rec, n := recordCfg(t, 8702, 6, testgen.DefaultConfig(), nil)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snips, err := sim.Capture(rec, []detsim.Range{{From: n - 1, To: n}})
	if err != nil {
		t.Fatal(err)
	}
	sn := snips[0]
	flipped := false
	for i := range sn.Buffers {
		if len(sn.Buffers[i].Image) > 0 {
			sn.Buffers[i].Image[0] ^= 0xFF
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no image to corrupt")
	}
	rsim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsim.RunSnippet(sn); !errors.Is(err, faults.ErrSnippetDiverged) {
		t.Fatalf("corrupted snippet: want ErrSnippetDiverged, got %v", err)
	}
}

// TestSnippetRejectsMalformed: structural validation refuses snippets
// whose events reference undefined objects or whose version is foreign.
func TestSnippetRejectsMalformed(t *testing.T) {
	if _, err := detsim.DecodeSnippet([]byte("{")); !errors.Is(err, faults.ErrBadRecording) {
		t.Errorf("truncated JSON: got %v", err)
	}
	if _, err := detsim.DecodeSnippet([]byte(`{"version":99}`)); !errors.Is(err, faults.ErrBadRecording) {
		t.Errorf("foreign version: got %v", err)
	}
	bad := &detsim.Snippet{
		Version: detsim.SnippetVersion,
		Range:   detsim.Range{From: 0, To: 1},
		Kernels: []detsim.SnippetKernel{{Name: "k"}},
		Events:  []detsim.SnippetEvent{{Kind: "launch", Kernel: 0, Surfaces: []int{7}}},
	}
	data, err := bad.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detsim.DecodeSnippet(data); !errors.Is(err, faults.ErrBadRecording) {
		t.Errorf("undefined surface: got %v", err)
	}
}

// TestCaptureRejectsRangePastEnd: a range beyond the recording's
// invocations is a configuration error, not a silent partial snippet.
func TestCaptureRejectsRangePastEnd(t *testing.T) {
	rec, n := recordCfg(t, 8703, 4, testgen.DefaultConfig(), nil)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Capture(rec, []detsim.Range{{From: n, To: n + 2}}); !errors.Is(err, faults.ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

// TestMergeReports: the aggregate of per-interval reports sums counters
// and concatenates ranges in input order.
func TestMergeReports(t *testing.T) {
	rec, n := recordCfg(t, 8704, 8, testgen.DefaultConfig(), nil)
	ranges := snippetRanges(n)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snips, err := sim.Capture(rec, ranges)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*detsim.Report, len(snips))
	for i, sn := range snips {
		rsim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if reps[i], err = rsim.RunSnippet(sn); err != nil {
			t.Fatal(err)
		}
	}
	m := detsim.MergeReports(reps)
	var wantDet, wantWarm int
	var wantInstrs uint64
	for i, r := range reps {
		wantDet += r.Detailed
		wantWarm += r.Warmed
		wantInstrs += r.DetailedInstrs
		if m.Ranges[i].Range != ranges[i] {
			t.Errorf("merged range %d = %+v, want %+v", i, m.Ranges[i].Range, ranges[i])
		}
	}
	if m.Detailed != wantDet || m.Warmed != wantWarm || m.DetailedInstrs != wantInstrs {
		t.Errorf("merged %d/%d/%d, want %d/%d/%d",
			m.Detailed, m.Warmed, m.DetailedInstrs, wantDet, wantWarm, wantInstrs)
	}
	if len(m.Cache) != len(reps[0].Cache) {
		t.Fatalf("merged %d cache levels, want %d", len(m.Cache), len(reps[0].Cache))
	}
	var acc uint64
	for _, r := range reps {
		acc += r.Cache[0].Accesses
	}
	if m.Cache[0].Accesses != acc {
		t.Errorf("merged L3 accesses %d, want %d", m.Cache[0].Accesses, acc)
	}
	if detsim.MergeReports(nil).Detailed != 0 {
		t.Error("empty merge not zero")
	}
}
