package detsim_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/detsim"
	"gtpin/internal/device"
	"gtpin/internal/kernel"
	"gtpin/internal/testgen"
)

// record runs a generated program on the functional device under
// CoFluent and returns the recording, the invocation count, and the
// final output-buffer image (recording buffer ID 1).
func record(t testing.TB, seed int64, steps int) (*cofluent.Recording, int, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := testgen.DefaultConfig()
	p := testgen.Program(rng, fmt.Sprintf("det%d", seed), cfg)
	sched := testgen.Driver(rng, p, steps, cfg)

	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	ctx := cl.NewContext(dev)
	tr := cofluent.Attach(ctx)
	q := ctx.CreateQueue()
	in, _ := ctx.CreateBuffer(1 << 12)
	out, _ := ctx.CreateBuffer(1 << 12)
	data := make([]byte, 1<<12)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	if err := q.EnqueueWriteBuffer(in, 0, data); err != nil {
		t.Fatal(err)
	}
	prog := ctx.CreateProgram(p)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	kernels := map[string]*cl.Kernel{}
	for _, k := range p.Kernels {
		ko, err := prog.CreateKernel(k.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ko.SetBuffer(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ko.SetBuffer(1, out); err != nil {
			t.Fatal(err)
		}
		kernels[k.Name] = ko
	}
	for _, s := range sched {
		ko := kernels[s.Kernel]
		if err := ko.SetArg(0, s.Iters); err != nil {
			t.Fatal(err)
		}
		if err := q.EnqueueNDRangeKernel(ko, s.GWS); err != nil {
			t.Fatal(err)
		}
		if s.Sync {
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	rec, err := cofluent.Record("det", tr, []*kernel.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	final := make([]byte, out.Size())
	copy(final, out.Device().Bytes())
	return rec, len(tr.Timings()), final
}

// TestDetailedMatchesFunctionalDevice is the cross-simulator equivalence
// property: for random programs, full detailed simulation must produce
// bit-identical memory images to the fast functional device.
func TestDetailedMatchesFunctionalDevice(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rec, n, want := record(t, int64(300+trial), 6)
			sim, err := detsim.New(detsim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Run(rec, []detsim.Range{{From: 0, To: n}})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Detailed != n || rep.FastForwarded != 0 {
				t.Fatalf("detailed %d / ff %d, want %d / 0", rep.Detailed, rep.FastForwarded, n)
			}
			got := sim.Buffer(1) // output buffer was created second
			if got == nil {
				t.Fatal("missing output buffer")
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatal("detailed simulation diverged from functional device")
			}
			if rep.DetailedInstrs == 0 || rep.DetailedCycles == 0 || rep.DetailedTimeNs <= 0 {
				t.Errorf("degenerate report: %+v", rep)
			}
			if rep.LaneOps <= rep.DetailedInstrs {
				t.Error("detailed simulation should do much more work than one op per instruction")
			}
		})
	}
}

// TestSubsetMatchesFullFunctionally: fast-forwarding outside the detailed
// ranges must preserve the final memory image.
func TestSubsetMatchesFullFunctionally(t *testing.T) {
	rec, n, want := record(t, 41, 9)
	if n < 4 {
		t.Skip("schedule too short")
	}
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ranges := []detsim.Range{{From: 1, To: 2}, {From: n - 2, To: n - 1}}
	rep, err := sim.Run(rec, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detailed != 2 || rep.FastForwarded != n-2 {
		t.Errorf("detailed %d / ff %d", rep.Detailed, rep.FastForwarded)
	}
	if !bytes.Equal(sim.Buffer(1).Bytes(), want) {
		t.Fatal("subset simulation diverged from full execution")
	}
	// Per-range reports are aligned and populated.
	if len(rep.Ranges) != 2 {
		t.Fatalf("ranges = %d", len(rep.Ranges))
	}
	var sumT float64
	var sumI uint64
	for i, rr := range rep.Ranges {
		if rr.Invocations != 1 {
			t.Errorf("range %d invocations = %d", i, rr.Invocations)
		}
		if rr.DetailedInstrs == 0 || rr.DetailedTimeNs <= 0 {
			t.Errorf("range %d degenerate: %+v", i, rr)
		}
		sumT += rr.DetailedTimeNs
		sumI += rr.DetailedInstrs
	}
	if sumI != rep.DetailedInstrs {
		t.Errorf("range instrs %d != total %d", sumI, rep.DetailedInstrs)
	}
	if diff := sumT - rep.DetailedTimeNs; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("range time %f != total %f", sumT, rep.DetailedTimeNs)
	}
}

// TestEmptyRangesFastForwardsEverything: with no detailed ranges the
// simulator is purely functional.
func TestEmptyRangesFastForwardsEverything(t *testing.T) {
	rec, n, want := record(t, 9, 5)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detailed != 0 || rep.FastForwarded != n {
		t.Errorf("detailed %d / ff %d", rep.Detailed, rep.FastForwarded)
	}
	if !bytes.Equal(sim.Buffer(1).Bytes(), want) {
		t.Fatal("fast-forward diverged")
	}
	if rep.DetailedTimeNs != 0 {
		t.Error("no detailed time expected")
	}
}

// TestCacheStatsPopulated: detailed simulation must exercise the cache
// hierarchy.
func TestCacheStatsPopulated(t *testing.T) {
	rec, n, _ := record(t, 11, 6)
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(rec, []detsim.Range{{From: 0, To: n}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cache) != 2 {
		t.Fatalf("cache levels = %d", len(rep.Cache))
	}
	if rep.Cache[0].Accesses == 0 {
		t.Error("L3 saw no accesses")
	}
}

// TestEUScalingImprovesDetailedTime: a wider design must not be slower
// when there are plenty of channel-groups.
func TestEUScalingImprovesDetailedTime(t *testing.T) {
	rec, n, _ := record(t, 21, 6)
	run := func(eus int) float64 {
		cfg := detsim.DefaultConfig()
		cfg.Device = device.IvyBridgeHD4000().WithEUs(eus)
		sim, err := detsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(rec, []detsim.Range{{From: 0, To: n}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.DetailedTimeNs
	}
	if t4, t16 := run(4), run(16); t16 > t4 {
		t.Errorf("16 EUs slower than 4: %f vs %f", t16, t4)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := detsim.DefaultConfig()
	cfg.Device.EUs = 0
	if _, err := detsim.New(cfg); err == nil {
		t.Error("expected error")
	}
}
