package detsim_test

import (
	"strings"
	"testing"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/detsim"
	"gtpin/internal/kernel"
)

// corrupt builds recordings with specific defects and asserts the
// simulator rejects them with a descriptive error rather than panicking.
func TestRunRejectsCorruptRecordings(t *testing.T) {
	rec, _, _ := record(t, 91, 4)

	cases := []struct {
		name   string
		mutate func(r *cofluent.Recording)
		want   string
	}{
		{
			name: "missing program IR",
			mutate: func(r *cofluent.Recording) {
				r.Programs = nil
			},
			want: "not in recording",
		},
		{
			name: "enqueue of unknown kernel",
			mutate: func(r *cofluent.Recording) {
				for i := range r.Calls {
					if r.Calls[i].Name == cl.CallEnqueueNDRangeKernel {
						r.Calls[i].KID = 999
						return
					}
				}
			},
			want: "unknown kernel",
		},
		{
			name: "write to unknown buffer",
			mutate: func(r *cofluent.Recording) {
				for i := range r.Calls {
					if r.Calls[i].Name == cl.CallEnqueueWriteBuffer {
						r.Calls[i].Buffer = 999
						return
					}
				}
			},
			want: "unknown buffer",
		},
		{
			name: "arg on unknown kernel",
			mutate: func(r *cofluent.Recording) {
				for i := range r.Calls {
					if r.Calls[i].Name == cl.CallSetKernelArg {
						r.Calls[i].KID = 999
						return
					}
				}
			},
			want: "unknown kernel",
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cp := &cofluent.Recording{
				App:      rec.App,
				Calls:    append([]cl.APICall(nil), rec.Calls...),
				Programs: append([]*kernel.Program(nil), rec.Programs...),
			}
			c.mutate(cp)
			sim, err := detsim.New(detsim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			_, err = sim.Run(cp, nil)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
