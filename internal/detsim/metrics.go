package detsim

import (
	"gtpin/internal/engine"
	"gtpin/internal/isa"
	"gtpin/internal/obs"
)

// Observability for the detailed simulator — invocation granularity,
// recorded once per Run from the finished report so the per-lane step
// loops stay untouched.
// Engine-level work (detailed dispatches, instructions, lane ops) is
// recorded under the shared engine_ prefix via engine.ObserveExecution;
// only the counters specific to this backend's sampling and cache model
// keep the detsim_ prefix.
var (
	mDetailedInvocations = obs.DefaultCounter("detsim_detailed_invocations_total",
		"invocations simulated with the cycle-level model")
	mFastForwardInvocations = obs.DefaultCounter("detsim_fastforward_invocations_total",
		"invocations executed functionally only")
	mWarmedInvocations = obs.DefaultCounter("detsim_warmed_invocations_total",
		"invocations run in cache-warming mode")
	mSimCacheHits = obs.DefaultCounter("detsim_cache_hits_total",
		"simulated cache hits across all levels")
	mSimCacheMisses = obs.DefaultCounter("detsim_cache_misses_total",
		"simulated cache misses across all levels")
	mCompileCacheHits = obs.DefaultCounter("detsim_compile_cache_hits_total",
		"program builds served from the process-wide compile cache")
	mCompileCacheMisses = obs.DefaultCounter("detsim_compile_cache_misses_total",
		"program builds that ran the JIT compiler")
	mSnippetsCaptured = obs.DefaultCounter("detsim_snippets_captured_total",
		"interval snippets captured from recordings")
	mSnippetBytes = obs.DefaultCounter("detsim_snippet_bytes_total",
		"serialized bytes across captured snippets")
	mSnippetReplays = obs.DefaultCounter("detsim_snippet_replays_total",
		"interval snippets replayed in isolation")
)

// observeReport folds one finished simulation into the counters and —
// when a tracer is installed — records the detailed ranges as spans on
// the virtual timeline, positioned by modeled simulation time. The
// dialect attributes the engine-level instruction counters; recordings
// and snippets are single-dialect, so one value covers the report.
func observeReport(rep *Report, d isa.Dialect) {
	mDetailedInvocations.Add(uint64(rep.Detailed))
	mFastForwardInvocations.Add(uint64(rep.FastForwarded))
	mWarmedInvocations.Add(uint64(rep.Warmed))
	engine.ObserveExecution(d, uint64(rep.Detailed), rep.DetailedInstrs, rep.LaneOps)
	for _, c := range rep.Cache {
		mSimCacheHits.Add(c.Hits)
		mSimCacheMisses.Add(c.Misses)
	}
	t := obs.ActiveTracer()
	if t == nil {
		return
	}
	startNs := 0.0
	for i := range rep.Ranges {
		rr := &rep.Ranges[i]
		t.SpanVirtual("detsim", "detailed range", "detsim", startNs, rr.DetailedTimeNs,
			obs.A("from", rr.Range.From),
			obs.A("to", rr.Range.To),
			obs.A("invocations", rr.Invocations),
			obs.A("instrs", rr.DetailedInstrs))
		startNs += rr.DetailedTimeNs
	}
}
