package detsim_test

import (
	"errors"
	"math"
	"testing"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/detsim"
	"gtpin/internal/faults"
)

// Regression tests for the replay-path fixes that landed with the
// snippet work. Each pins a bug that was observable before the fix:
// redundant recompilation, silently-resolved range overlaps, panics on
// corrupt recordings, and warmup time vanishing from the report.

// TestCompileCacheReused: a second Run over the same recording must not
// recompile its programs — before the cache, every Run (and every
// parallel snippet worker) paid the full JIT cost again.
func TestCompileCacheReused(t *testing.T) {
	rec, n, _ := record(t, 501, 4)
	detsim.ResetCompileCache()
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(rec, []detsim.Range{{From: 0, To: 1}}); err != nil {
		t.Fatal(err)
	}
	_, misses1, entries := detsim.CompileCacheStats()
	if misses1 == 0 || entries == 0 {
		t.Fatalf("first run compiled nothing (misses %d, entries %d)", misses1, entries)
	}
	sim2, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(rec, []detsim.Range{{From: n - 1, To: n}}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := detsim.CompileCacheStats()
	if misses2 != misses1 {
		t.Errorf("second run recompiled: misses %d -> %d", misses1, misses2)
	}
	if hits2 == 0 {
		t.Error("second run never hit the cache")
	}
}

// TestRunRejectsBadRanges: overlapping ranges, warmup windows crossing
// an earlier detailed range, and degenerate ranges must be refused up
// front as faults.ErrBadConfig. The old linear scan silently resolved
// overlaps first-match-wins and double-ran invocations warmup windows
// reached back over.
func TestRunRejectsBadRanges(t *testing.T) {
	rec, n, _ := record(t, 502, 8)
	if n < 6 {
		t.Skip("schedule too short")
	}
	cases := []struct {
		name   string
		ranges []detsim.Range
	}{
		{"overlap", []detsim.Range{{From: 0, To: 3}, {From: 2, To: 4}}},
		{"duplicate", []detsim.Range{{From: 1, To: 2}, {From: 1, To: 2}}},
		{"warmup crosses detailed", []detsim.Range{{From: 0, To: 2}, {From: 3, To: 4, Warmup: 2}}},
		{"empty", []detsim.Range{{From: 2, To: 2}}},
		{"inverted", []detsim.Range{{From: 3, To: 1}}},
		{"negative start", []detsim.Range{{From: -1, To: 1}}},
		{"negative warmup", []detsim.Range{{From: 2, To: 3, Warmup: -1}}},
		{"negative sample groups", []detsim.Range{{From: 2, To: 3, SampleGroups: -2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := detsim.New(detsim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(rec, tc.ranges); !errors.Is(err, faults.ErrBadConfig) {
				t.Fatalf("want ErrBadConfig, got %v", err)
			}
		})
	}
	// A warmup window that merely clamps at invocation 0 stays legal.
	sim, err := detsim.New(detsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(rec, []detsim.Range{{From: 1, To: 2, Warmup: 100}}); err != nil {
		t.Fatalf("clamped warmup rejected: %v", err)
	}
}

// TestCorruptRecordingRejected: host data movement with out-of-range
// offsets must surface as faults.ErrBadRecording — the copy-buffer path
// used to panic slicing dst.Bytes()[Offset2:Offset2+Size], and the
// write path silently truncated.
func TestCorruptRecordingRejected(t *testing.T) {
	rec, _, _ := record(t, 503, 3)
	corrupt := func(c cl.APICall) *cofluent.Recording {
		calls := append([]cl.APICall(nil), rec.Calls...)
		// Insert after the buffers exist but before any enqueue consumes
		// them: directly after the original write call.
		at := -1
		for i := range calls {
			if calls[i].Name == cl.CallEnqueueWriteBuffer {
				at = i + 1
				break
			}
		}
		if at < 0 {
			t.Fatal("no write call in recording")
		}
		out := append([]cl.APICall(nil), calls[:at]...)
		out = append(out, c)
		out = append(out, calls[at:]...)
		return &cofluent.Recording{App: rec.App, Calls: out, Programs: rec.Programs}
	}
	cases := []struct {
		name string
		call cl.APICall
	}{
		{"copy dst overflow", cl.APICall{Name: cl.CallEnqueueCopyBuffer, Buffer: 0, Buffer2: 1, Offset: 0, Offset2: 1 << 30, Size: 64}},
		{"copy src overflow", cl.APICall{Name: cl.CallEnqueueCopyBuffer, Buffer: 0, Buffer2: 1, Offset: 1 << 30, Offset2: 0, Size: 64}},
		{"copy negative size", cl.APICall{Name: cl.CallEnqueueCopyBuffer, Buffer: 0, Buffer2: 1, Size: -8}},
		{"copy size past end", cl.APICall{Name: cl.CallEnqueueCopyBuffer, Buffer: 0, Buffer2: 1, Offset: 1 << 11, Size: 1 << 12}},
		{"write offset overflow", cl.APICall{Name: cl.CallEnqueueWriteBuffer, Buffer: 1, Offset: 1 << 30, Payload: []byte{1, 2, 3}}},
		{"write negative offset", cl.APICall{Name: cl.CallEnqueueWriteBuffer, Buffer: 1, Offset: -4, Payload: []byte{1}}},
		{"write payload past end", cl.APICall{Name: cl.CallEnqueueWriteBuffer, Buffer: 1, Offset: (1 << 12) - 2, Payload: []byte{1, 2, 3, 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := detsim.New(detsim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(corrupt(tc.call), nil); !errors.Is(err, faults.ErrBadRecording) {
				t.Fatalf("want ErrBadRecording, got %v", err)
			}
			// Capture walks the same recording and must refuse identically.
			csim, err := detsim.New(detsim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := csim.Capture(corrupt(tc.call), []detsim.Range{{From: 0, To: 1}}); !errors.Is(err, faults.ErrBadRecording) {
				t.Fatalf("capture: want ErrBadRecording, got %v", err)
			}
		})
	}
}

// TestWarmupTimeConservation: relabeling fast-forward invocations as
// warmup must move their modelled time into WarmupTimeNs, not drop it —
// the report's total modelled time is invariant in the warmup window.
// Before the fix, warmup ran on a private functional path whose time
// was discarded, so adding warmup silently shrank total time (and the
// device clock fell behind, skewing thermal drift for later work).
func TestWarmupTimeConservation(t *testing.T) {
	rec, n, _ := record(t, 504, 8)
	if n < 5 {
		t.Skip("schedule too short")
	}
	run := func(warmup int) *detsim.Report {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(rec, []detsim.Range{{From: n - 1, To: n, Warmup: warmup}})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(0)
	warmed := run(3)
	if base.WarmupTimeNs != 0 || base.Warmed != 0 {
		t.Fatalf("baseline has warmup: %+v", base)
	}
	if warmed.Warmed != 3 || warmed.WarmupTimeNs <= 0 {
		t.Fatalf("warmed run: Warmed=%d WarmupTimeNs=%f", warmed.Warmed, warmed.WarmupTimeNs)
	}
	total := func(r *detsim.Report) float64 { return r.FastForwardTimeNs + r.WarmupTimeNs }
	if diff := math.Abs(total(base) - total(warmed)); diff > 1e-9*total(base) {
		t.Errorf("modelled time not conserved: %f (warmup 0) vs %f (warmup 3)",
			total(base), total(warmed))
	}
	if warmed.FastForwarded != base.FastForwarded-3 {
		t.Errorf("fast-forwarded %d, want %d", warmed.FastForwarded, base.FastForwarded-3)
	}
}

// TestWarmupHeatsCachesViaDevice: the dev-routed warmup path must still
// feed the simulated cache hierarchy (detailed ranges after warmup see
// warm caches), pinning that the touch hook survives the reroute.
func TestWarmupHeatsCachesViaDevice(t *testing.T) {
	rec, n, _ := record(t, 505, 8)
	if n < 4 {
		t.Skip("schedule too short")
	}
	run := func(warmup int) *detsim.Report {
		sim, err := detsim.New(detsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(rec, []detsim.Range{{From: n - 1, To: n, Warmup: warmup}})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold, warm := run(0), run(3)
	coldAcc, warmAcc := cold.Cache[0].Accesses, warm.Cache[0].Accesses
	if warmAcc <= coldAcc {
		t.Errorf("warmup produced no extra cache accesses: %d vs %d", warmAcc, coldAcc)
	}
}
