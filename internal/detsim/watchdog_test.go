package detsim_test

import (
	"errors"
	"testing"

	"gtpin/internal/detsim"
	"gtpin/internal/faults"
)

// TestWatchdogBudgetInDetailedSimulation: the cycle-level simulator
// enforces the same per-enqueue instruction budget as the functional
// device, surfacing overruns as the typed watchdog timeout.
func TestWatchdogBudgetInDetailedSimulation(t *testing.T) {
	rec, n, _ := record(t, 300, 6)

	tight := detsim.DefaultConfig()
	tight.WatchdogInstrs = 10
	sim, err := detsim.New(tight)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(rec, []detsim.Range{{From: 0, To: n}})
	if !errors.Is(err, faults.ErrWatchdogTimeout) {
		t.Fatalf("err = %v, want ErrWatchdogTimeout under a 10-instruction budget", err)
	}
	if faults.IsTransient(err) {
		t.Error("watchdog timeouts are permanent")
	}

	generous := detsim.DefaultConfig()
	generous.WatchdogInstrs = 1 << 40
	sim2, err := detsim.New(generous)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(rec, []detsim.Range{{From: 0, To: n}}); err != nil {
		t.Fatalf("generous budget must not trip: %v", err)
	}
}
