// Snippet checkpoints: portable, self-verifying interval captures.
//
// The paper's subset step still replays every program from the start to
// reach each selected interval, so subset speedup is capped by serial
// fast-forwarding of the unselected prefix. Following Nugget's portable
// interval checkpoints, Capture runs one functional pass over a
// recording and extracts each selected interval — plus its warmup
// prefix — as a standalone Snippet: the launch state of every enqueue
// in the window (kernel binary, scalar args, surface bindings, global
// work size), a memory image of the surfaces the window actually
// touches (trimmed via the engine's Touch observer), the host events
// that interleave with the window's launches, and the device-clock seed
// at the window's start. RunSnippet then replays one snippet in
// isolation — cache warmup first, then the detailed range — producing
// bit-identical detailed results to a full fast-forwarding Run of the
// same range, without executing any of the prefix. That makes subset
// simulation embarrassingly parallel over intervals (cmd/subsets).
//
// Snippets are digest-verified twice over: the runstate store seals the
// serialized bytes, and the snippet itself records SHA-256 digests of
// every touched surface at window close, which RunSnippet checks after
// replay (faults.ErrSnippetDiverged on mismatch).
package detsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"gtpin/internal/cachesim"
	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/engine"
	"gtpin/internal/faults"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// SnippetVersion is the serialization version Encode writes and Decode
// requires.
const SnippetVersion = 1

// Snippet is one captured interval: everything needed to replay the
// invocation window [max(0, From-Warmup), To) on a fresh simulator,
// independent of the recording it came from.
type Snippet struct {
	Version int    `json:"version"`
	App     string `json:"app"`
	Range   Range  `json:"range"`

	// StartCycles and StartDispatches seed the replay device's clock
	// with the values the fast-forwarded prefix would have produced, so
	// MsgTimer reads and the thermal-drift phase of warmup invocations
	// match a full replay exactly.
	StartCycles     uint64 `json:"start_cycles"`
	StartDispatches uint64 `json:"start_dispatches"`

	// HasTimer marks windows whose kernels contain MsgTimer sends. Live
	// timer values differ between the capture pass (functional device
	// clock) and detailed replay (pipeline cycles), so post-replay digest
	// verification is skipped for timer-reading windows unless a
	// deterministic timer hook is installed on both sides.
	HasTimer bool `json:"has_timer,omitempty"`

	Kernels []SnippetKernel `json:"kernels"`
	Buffers []SnippetBuffer `json:"buffers"`
	Events  []SnippetEvent  `json:"events"`

	// PostDigests records the SHA-256 of every touched buffer's bytes at
	// window close, sorted by buffer ID — the capture-time ground truth
	// RunSnippet verifies its replay against.
	PostDigests []BufferDigest `json:"post_digests"`
}

// SnippetKernel is one kernel the window launches, carried as its
// compiled device binary (jit.Decode round-trips exactly, so the IR,
// and with it the engine's predecoded stream, is reconstructed
// bit-identically anywhere).
type SnippetKernel struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Code        []byte `json:"code"`
}

// SnippetBuffer is one surface that exists when the window opens. Image
// is its contents at window open; surfaces that are bound but never
// touched by the window carry only their size (replay recreates them
// zeroed — the window never observes their bytes).
type SnippetBuffer struct {
	ID    int    `json:"id"`
	Size  int    `json:"size"`
	Image []byte `json:"image,omitempty"`
}

// SnippetEvent is one window event in recording order: a kernel launch
// (warmup or detailed) or a host-side buffer operation interleaved with
// the launches.
type SnippetEvent struct {
	Kind string `json:"kind"` // "launch", "create", "write", "copy"

	// launch
	Kernel   int      `json:"kernel,omitempty"` // index into Kernels
	Args     []uint32 `json:"args,omitempty"`
	Surfaces []int    `json:"surfaces,omitempty"` // buffer IDs per slot
	GWS      int      `json:"gws,omitempty"`
	Detailed bool     `json:"detailed,omitempty"`

	// create / write / copy
	Buffer  int    `json:"buffer,omitempty"`
	Buffer2 int    `json:"buffer2,omitempty"`
	Offset  int    `json:"offset,omitempty"`
	Offset2 int    `json:"offset2,omitempty"`
	Size    int    `json:"size,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// BufferDigest binds a buffer ID to the hex SHA-256 of its bytes.
type BufferDigest struct {
	ID     int    `json:"id"`
	SHA256 string `json:"sha256"`
}

// Event kinds.
const (
	evLaunch = "launch"
	evCreate = "create"
	evWrite  = "write"
	evCopy   = "copy"
)

// Encode serializes the snippet. The encoding is deterministic: equal
// snippets produce equal bytes, so sealed artifacts are content-stable
// across capture runs.
func (sn *Snippet) Encode() ([]byte, error) {
	data, err := json.Marshal(sn)
	if err != nil {
		return nil, fmt.Errorf("detsim: encode snippet: %w", err)
	}
	return data, nil
}

// DecodeSnippet parses and structurally validates a serialized snippet.
func DecodeSnippet(data []byte) (*Snippet, error) {
	sn := &Snippet{}
	if err := json.Unmarshal(data, sn); err != nil {
		return nil, fmt.Errorf("detsim: decode snippet: %w: %w", faults.ErrBadRecording, err)
	}
	if sn.Version != SnippetVersion {
		return nil, fmt.Errorf("detsim: snippet version %d (want %d): %w", sn.Version, SnippetVersion, faults.ErrBadRecording)
	}
	if err := sn.validate(); err != nil {
		return nil, err
	}
	return sn, nil
}

// validate checks referential integrity: every event points at a kernel
// and buffers the snippet defines before use.
func (sn *Snippet) validate() error {
	have := make(map[int]bool, len(sn.Buffers))
	for _, b := range sn.Buffers {
		if b.Size <= 0 {
			return fmt.Errorf("detsim: snippet buffer %d has size %d: %w", b.ID, b.Size, faults.ErrBadRecording)
		}
		have[b.ID] = true
	}
	for i, ev := range sn.Events {
		switch ev.Kind {
		case evCreate:
			if ev.Size <= 0 {
				return fmt.Errorf("detsim: snippet event %d: create with size %d: %w", i, ev.Size, faults.ErrBadRecording)
			}
			have[ev.Buffer] = true
		case evWrite:
			if !have[ev.Buffer] {
				return fmt.Errorf("detsim: snippet event %d: write to undefined buffer %d: %w", i, ev.Buffer, faults.ErrBadRecording)
			}
		case evCopy:
			if !have[ev.Buffer] || !have[ev.Buffer2] {
				return fmt.Errorf("detsim: snippet event %d: copy with undefined buffer: %w", i, faults.ErrBadRecording)
			}
		case evLaunch:
			if ev.Kernel < 0 || ev.Kernel >= len(sn.Kernels) {
				return fmt.Errorf("detsim: snippet event %d: kernel %d out of range (%d kernels): %w",
					i, ev.Kernel, len(sn.Kernels), faults.ErrBadRecording)
			}
			for _, id := range ev.Surfaces {
				if !have[id] {
					return fmt.Errorf("detsim: snippet event %d: launch binds undefined buffer %d: %w", i, id, faults.ErrBadRecording)
				}
			}
		default:
			return fmt.Errorf("detsim: snippet event %d: unknown kind %q: %w", i, ev.Kind, faults.ErrBadRecording)
		}
	}
	for _, d := range sn.PostDigests {
		if !have[d.ID] {
			return fmt.Errorf("detsim: snippet digest for undefined buffer %d: %w", d.ID, faults.ErrBadRecording)
		}
	}
	return nil
}

// capWindow is one in-progress capture.
type capWindow struct {
	r      Range
	wstart int // max(0, From-Warmup): first invocation in the window
	open   bool
	done   bool
	sn     *Snippet

	images  map[int][]byte // buffer ID -> contents at window open
	sizes   map[int]int    // buffer ID -> size (every referenced buffer)
	touched map[int]bool   // buffer ID -> read/written/host-referenced
	kidx    map[string]int // kernel fingerprint -> index into sn.Kernels
}

// reference snapshots a buffer the window is about to observe or
// mutate. The first reference wins: every later mutation flows through
// a recorded event, so contents at first reference are contents at
// window open.
func (w *capWindow) reference(id int, b *device.Buffer, touch bool) {
	if _, ok := w.sizes[id]; !ok {
		w.sizes[id] = b.Size()
		w.images[id] = append([]byte(nil), b.Bytes()...)
	}
	if touch {
		w.touched[id] = true
	}
}

// Capture replays the recording once functionally and extracts one
// snippet per requested range. Ranges are validated individually (each
// snippet replays alone, so cross-range overlap is allowed — warmup
// windows of different snippets may cover the same invocations). The
// returned snippets align with the input ranges.
//
// The capture pass executes every invocation on a fresh fast-forward
// device configured like Run's (same watchdog budget, same timer hook),
// so the clock seeds recorded at each window's start equal the values a
// real fast-forwarding replay reaches.
func (s *Simulator) Capture(rec *cofluent.Recording, ranges []Range) ([]*Snippet, error) {
	windows := make([]*capWindow, len(ranges))
	for i, r := range ranges {
		if err := validateRanges([]Range{r}); err != nil {
			return nil, err
		}
		wstart := r.From - r.Warmup
		if wstart < 0 {
			wstart = 0
		}
		windows[i] = &capWindow{
			r: r, wstart: wstart,
			sn:      &Snippet{Version: SnippetVersion, App: rec.App, Range: r},
			images:  make(map[int][]byte),
			sizes:   make(map[int]int),
			touched: make(map[int]bool),
			kidx:    make(map[string]int),
		}
	}

	dev, err := device.New(s.cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	dev.SetWatchdog(s.cfg.WatchdogInstrs)
	dev.SetTimerHook(s.timerHook)
	var cur *engine.TouchSet
	dev.SetTouchHook(func(key uint64, write bool) {
		if cur != nil {
			cur.Observe(key, write)
		}
	})

	// Per-walk memo of kernel fingerprints and timer scans.
	fps := make(map[*kernel.Kernel]string)
	timers := make(map[*kernel.Kernel]bool)

	openAt := func(inv int) []*capWindow {
		var out []*capWindow
		for _, w := range windows {
			if !w.done && inv >= w.wstart && inv < w.r.To {
				if !w.open {
					w.open = true
					w.sn.StartCycles = dev.Timestamp()
					w.sn.StartDispatches = dev.Dispatches()
				}
				out = append(out, w)
			}
		}
		return out
	}
	// hostOpen: windows receiving host events — those already opened by
	// their first launch and not yet closed. Host calls before a window's
	// first launch are prefix state (baked into the images); host calls
	// after its last launch cannot affect the window.
	hostOpen := func() []*capWindow {
		var out []*capWindow
		for _, w := range windows {
			if w.open && !w.done {
				out = append(out, w)
			}
		}
		return out
	}

	buffers := make(map[int]*device.Buffer)
	err = walkRecording(rec, buffers, walkHooks{
		onCreate: func(id int, b *device.Buffer, c *cl.APICall) error {
			for _, w := range hostOpen() {
				// Created inside the window: defined by the event, touched
				// by definition (its zeroed birth state is observable).
				w.sizes[id] = b.Size()
				w.touched[id] = true
				w.sn.Events = append(w.sn.Events, SnippetEvent{Kind: evCreate, Buffer: id, Size: b.Size()})
			}
			return nil
		},
		beforeWrite: func(c *cl.APICall, dst *device.Buffer) error {
			for _, w := range hostOpen() {
				w.reference(c.Buffer, dst, true)
				w.sn.Events = append(w.sn.Events, SnippetEvent{
					Kind: evWrite, Buffer: c.Buffer, Offset: c.Offset,
					Payload: append([]byte(nil), c.Payload...),
				})
			}
			return nil
		},
		beforeCopy: func(c *cl.APICall, src, dst *device.Buffer) error {
			for _, w := range hostOpen() {
				w.reference(c.Buffer, src, true)
				w.reference(c.Buffer2, dst, true)
				w.sn.Events = append(w.sn.Events, SnippetEvent{
					Kind: evCopy, Buffer: c.Buffer, Buffer2: c.Buffer2,
					Offset: c.Offset, Offset2: c.Offset2, Size: c.Size,
				})
			}
			return nil
		},
		onLaunch: func(l *launch) error {
			open := openAt(l.Invocation)
			for _, w := range open {
				for si, b := range l.Surfaces {
					w.reference(l.SurfIDs[si], b, false)
				}
				fp, ok := fps[l.IR]
				if !ok {
					var ferr error
					fp, ferr = l.IR.Fingerprint()
					if ferr != nil {
						return fmt.Errorf("detsim: capture invocation %d: %w", l.Invocation, ferr)
					}
					fps[l.IR] = fp
					timers[l.IR] = engine.KernelReadsTimer(l.IR)
				}
				ki, ok := w.kidx[fp]
				if !ok {
					ki = len(w.sn.Kernels)
					w.kidx[fp] = ki
					w.sn.Kernels = append(w.sn.Kernels, SnippetKernel{
						Name: l.IR.Name, Fingerprint: fp,
						Code: append([]byte(nil), l.Bin.Code...),
					})
				}
				if timers[l.IR] {
					w.sn.HasTimer = true
				}
				w.sn.Events = append(w.sn.Events, SnippetEvent{
					Kind:     evLaunch,
					Kernel:   ki,
					Args:     append([]uint32(nil), l.Args...),
					Surfaces: append([]int(nil), l.SurfIDs...),
					GWS:      l.GWS,
					Detailed: l.Invocation >= w.r.From,
				})
			}
			cur = engine.NewTouchSet(len(l.Surfaces))
			_, derr := dev.Run(device.Dispatch{
				Binary: l.Bin, Args: l.Args, Surfaces: l.Surfaces, GlobalWorkSize: l.GWS,
			})
			ts := cur
			cur = nil
			if derr != nil {
				return fmt.Errorf("detsim: capture invocation %d (%s): %w", l.Invocation, l.IR.Name, derr)
			}
			for _, w := range open {
				for si, id := range l.SurfIDs {
					if ts.Touched(si) {
						w.touched[id] = true
					}
				}
				if l.Invocation == w.r.To-1 {
					w.finalize(buffers)
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	out := make([]*Snippet, len(windows))
	var totalBytes uint64
	for i, w := range windows {
		if !w.done {
			return nil, fmt.Errorf("detsim: range [%d, %d) extends past the recording's invocations: %w",
				w.r.From, w.r.To, faults.ErrBadConfig)
		}
		out[i] = w.sn
		if data, err := w.sn.Encode(); err == nil {
			totalBytes += uint64(len(data))
		}
	}
	mSnippetsCaptured.Add(uint64(len(out)))
	mSnippetBytes.Add(totalBytes)
	return out, nil
}

// finalize seals a window: assemble the buffer table (images kept only
// for touched surfaces) and digest the touched surfaces' bytes at
// window close.
func (w *capWindow) finalize(buffers map[int]*device.Buffer) {
	ids := make([]int, 0, len(w.sizes))
	for id := range w.sizes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		sb := SnippetBuffer{ID: id, Size: w.sizes[id]}
		if img, ok := w.images[id]; ok {
			if w.touched[id] {
				sb.Image = img
			}
			w.sn.Buffers = append(w.sn.Buffers, sb)
		}
		// Buffers created inside the window are defined by their create
		// events, not the buffer table.
		if w.touched[id] {
			sum := sha256.Sum256(buffers[id].Bytes())
			w.sn.PostDigests = append(w.sn.PostDigests, BufferDigest{ID: id, SHA256: hex.EncodeToString(sum[:])})
		}
	}
	w.done = true
	w.open = false
}

// RunSnippet replays one snippet in isolation: rebuild the window's
// memory from the images, run warmup launches on a clock-seeded
// fast-forward device with the cache-touch hook installed, run detailed
// launches under the cycle-level model, then verify the final memory
// images against the capture-time digests. The detailed results —
// range report, cache statistics, warmup time — are bit-identical to
// Run(rec, []Range{sn.Range}) on the originating recording.
//
// Digest verification is skipped for timer-reading windows when no
// deterministic timer hook is installed (the capture pass and the
// detailed model legitimately disagree on live timer values); install
// the same hook on capture and replay to keep verification armed.
func (s *Simulator) RunSnippet(sn *Snippet) (*Report, error) {
	if sn == nil {
		return nil, fmt.Errorf("detsim: nil snippet: %w", faults.ErrBadConfig)
	}
	if sn.Version != SnippetVersion {
		return nil, fmt.Errorf("detsim: snippet version %d (want %d): %w", sn.Version, SnippetVersion, faults.ErrBadRecording)
	}
	if err := sn.validate(); err != nil {
		return nil, err
	}
	s.caches.Reset()

	type snipKernel struct {
		ir  *kernel.Kernel
		bin *jit.Binary
	}
	kernels := make([]snipKernel, len(sn.Kernels))
	for i, sk := range sn.Kernels {
		bin := &jit.Binary{Code: sk.Code}
		ir, err := jit.Decode(bin)
		if err != nil {
			return nil, fmt.Errorf("detsim: snippet kernel %s: %w", sk.Name, err)
		}
		kernels[i] = snipKernel{ir: ir, bin: bin}
	}

	buffers := make(map[int]*device.Buffer, len(sn.Buffers))
	s.buffers = buffers
	for _, sb := range sn.Buffers {
		b, err := device.NewBuffer(sb.Size)
		if err != nil {
			return nil, fmt.Errorf("detsim: snippet buffer %d: %w", sb.ID, err)
		}
		if len(sb.Image) > 0 {
			if len(sb.Image) != b.Size() {
				return nil, fmt.Errorf("detsim: snippet buffer %d: image is %d bytes, buffer is %d: %w",
					sb.ID, len(sb.Image), b.Size(), faults.ErrBadRecording)
			}
			copy(b.Bytes(), sb.Image)
		}
		buffers[sb.ID] = b
	}

	dev, err := device.New(s.cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("detsim: %w", err)
	}
	dev.SetWatchdog(s.cfg.WatchdogInstrs)
	dev.SetProbe(s.probe)
	dev.SetTimerHook(s.timerHook)
	dev.SeedClock(sn.StartCycles, sn.StartDispatches)

	rep := &Report{Ranges: []RangeReport{{Range: sn.Range}}}
	rr := &rep.Ranges[0]
	invocation := 0
	for ei, ev := range sn.Events {
		switch ev.Kind {
		case evCreate:
			b, err := device.NewBuffer(ev.Size)
			if err != nil {
				return nil, fmt.Errorf("detsim: snippet event %d: %w", ei, err)
			}
			buffers[ev.Buffer] = b
		case evWrite:
			b := buffers[ev.Buffer]
			if ev.Offset < 0 || ev.Offset > b.Size() || len(ev.Payload) > b.Size()-ev.Offset {
				return nil, fmt.Errorf("detsim: snippet event %d: write [%d, %d+%d) out of bounds (buffer %d is %d bytes): %w",
					ei, ev.Offset, ev.Offset, len(ev.Payload), ev.Buffer, b.Size(), faults.ErrBadRecording)
			}
			copy(b.Bytes()[ev.Offset:], ev.Payload)
		case evCopy:
			src, dst := buffers[ev.Buffer], buffers[ev.Buffer2]
			if ev.Size < 0 ||
				ev.Offset < 0 || ev.Offset > src.Size() || ev.Size > src.Size()-ev.Offset ||
				ev.Offset2 < 0 || ev.Offset2 > dst.Size() || ev.Size > dst.Size()-ev.Offset2 {
				return nil, fmt.Errorf("detsim: snippet event %d: copy out of bounds: %w", ei, faults.ErrBadRecording)
			}
			copy(dst.Bytes()[ev.Offset2:ev.Offset2+ev.Size], src.Bytes()[ev.Offset:ev.Offset+ev.Size])
		case evLaunch:
			k := kernels[ev.Kernel]
			surfs := make([]*device.Buffer, len(ev.Surfaces))
			for si, id := range ev.Surfaces {
				surfs[si] = buffers[id]
			}
			if ev.Detailed {
				beforeT, beforeI := rep.DetailedTimeNs, rep.DetailedInstrs
				if err := s.runDetailed(k.ir, ev.Args, surfs, ev.GWS, sn.Range.SampleGroups, rep); err != nil {
					return nil, fmt.Errorf("detsim: snippet invocation %d (%s): %w", invocation, k.ir.Name, err)
				}
				rr.Invocations++
				rr.DetailedTimeNs += rep.DetailedTimeNs - beforeT
				rr.DetailedInstrs += rep.DetailedInstrs - beforeI
				rep.Detailed++
			} else {
				dev.SetTouchHook(s.touchCache)
				st, derr := dev.Run(device.Dispatch{
					Binary: k.bin, Args: ev.Args, Surfaces: surfs, GlobalWorkSize: ev.GWS,
				})
				dev.SetTouchHook(nil)
				if derr != nil {
					return nil, fmt.Errorf("detsim: snippet warmup invocation %d: %w", invocation, derr)
				}
				rep.WarmupTimeNs += st.TimeNs
				rep.Warmed++
			}
			invocation++
		}
	}
	for _, c := range s.caches.Levels() {
		rep.Cache = append(rep.Cache, c.Stats())
	}
	rep.MemAccesses = s.caches.MemAccesses

	if !sn.HasTimer || s.timerHook != nil {
		for _, d := range sn.PostDigests {
			sum := sha256.Sum256(buffers[d.ID].Bytes())
			if got := hex.EncodeToString(sum[:]); got != d.SHA256 {
				return nil, fmt.Errorf("detsim: snippet %s range [%d, %d): buffer %d: sha256 %s != captured %s: %w",
					sn.App, sn.Range.From, sn.Range.To, d.ID, got, d.SHA256, faults.ErrSnippetDiverged)
			}
		}
	}
	mSnippetReplays.Inc()
	var snd isa.Dialect
	if len(kernels) > 0 {
		snd = kernels[0].ir.Dialect
	}
	observeReport(rep, snd)
	return rep, nil
}

// MergeReports folds per-interval reports — one per selected interval,
// in interval order, as produced by serial per-range Runs or parallel
// RunSnippet replays — into one aggregate. Range reports concatenate in
// order; counters and times sum; per-level cache statistics sum
// elementwise. Deterministic: the merge is a pure fold, so equal inputs
// in equal order produce an identical aggregate at any worker count.
func MergeReports(reps []*Report) *Report {
	out := &Report{}
	for _, r := range reps {
		if r == nil {
			continue
		}
		out.Detailed += r.Detailed
		out.FastForwarded += r.FastForwarded
		out.Warmed += r.Warmed
		out.DetailedInstrs += r.DetailedInstrs
		out.DetailedCycles += r.DetailedCycles
		out.DetailedTimeNs += r.DetailedTimeNs
		out.LaneOps += r.LaneOps
		out.FastForwardTimeNs += r.FastForwardTimeNs
		out.WarmupTimeNs += r.WarmupTimeNs
		out.MemAccesses += r.MemAccesses
		out.Ranges = append(out.Ranges, r.Ranges...)
		for i, c := range r.Cache {
			if i >= len(out.Cache) {
				out.Cache = append(out.Cache, cachesim.Stats{})
			}
			out.Cache[i].Accesses += c.Accesses
			out.Cache[i].Hits += c.Hits
			out.Cache[i].Misses += c.Misses
			out.Cache[i].Evictions += c.Evictions
			out.Cache[i].Writes += c.Writes
		}
	}
	return out
}
