// Package export serializes profiles and selection results to CSV and
// JSON, so experiment outputs can be fed to external plotting and
// analysis tools (the figures in the paper are plots over exactly these
// rows).
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"gtpin/internal/isa"
	"gtpin/internal/profile"
	"gtpin/internal/selection"
)

// EvaluationsCSV writes one row per selection evaluation: the Figure 5
// data layout (app, interval scheme, feature kind, interval count,
// error, selection fraction, speedup).
func EvaluationsCSV(w io.Writer, evals []*selection.Evaluation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "scheme", "feature", "intervals", "selections",
		"error_pct", "selected_frac", "speedup",
	}); err != nil {
		return err
	}
	for _, ev := range evals {
		row := []string{
			ev.App,
			ev.Config.Scheme.String(),
			ev.Config.Feature.String(),
			strconv.Itoa(ev.NumIntervals),
			strconv.Itoa(len(ev.Selections)),
			fmt.Sprintf("%.6f", ev.ErrorPct),
			fmt.Sprintf("%.6f", ev.SelectedFrac),
			fmt.Sprintf("%.3f", ev.Speedup),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SelectionsCSV writes the chosen intervals of one evaluation: the
// simulation work list a simulator driver consumes (invocation ranges
// and representation ratios).
func SelectionsCSV(w io.Writer, ev *selection.Evaluation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cluster", "from_invocation", "to_invocation", "instrs", "ratio"}); err != nil {
		return err
	}
	for _, s := range ev.Selections {
		iv := ev.Intervals[s.Interval]
		if err := cw.Write([]string{
			strconv.Itoa(s.Cluster),
			strconv.Itoa(iv.Start),
			strconv.Itoa(iv.End),
			strconv.FormatUint(iv.Instrs, 10),
			fmt.Sprintf("%.6f", s.Ratio),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// profileJSON is the serialized profile summary.
type profileJSON struct {
	App         string            `json:"app"`
	Kernels     []kernelJSON      `json:"kernels"`
	Invocations int               `json:"invocations"`
	Totals      totalsJSON        `json:"totals"`
	Mix         map[string]uint64 `json:"instruction_mix"`
	SIMD        map[string]uint64 `json:"simd_widths"`
	MeasuredSPI float64           `json:"measured_spi"`
}

type kernelJSON struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Static int    `json:"static_instrs"`
}

type totalsJSON struct {
	Instrs       uint64  `json:"instrs"`
	BlockExecs   uint64  `json:"block_execs"`
	BytesRead    uint64  `json:"bytes_read"`
	BytesWritten uint64  `json:"bytes_written"`
	TimeSec      float64 `json:"time_sec"`
}

// ProfileJSON writes a whole-program profile summary as indented JSON.
func ProfileJSON(w io.Writer, p *profile.Profile) error {
	agg := p.Aggregate()
	out := profileJSON{
		App:         p.App,
		Invocations: agg.KernelInvocations,
		Totals: totalsJSON{
			Instrs:       agg.Instrs,
			BlockExecs:   agg.BlockExecs,
			BytesRead:    agg.BytesRead,
			BytesWritten: agg.BytesWritten,
			TimeSec:      agg.TimeSec,
		},
		Mix:         map[string]uint64{},
		SIMD:        map[string]uint64{},
		MeasuredSPI: p.MeasuredSPI(),
	}
	for _, k := range p.Kernels {
		out.Kernels = append(out.Kernels, kernelJSON{
			Name: k.Name, Blocks: len(k.Blocks), Static: k.StaticInstrs,
		})
	}
	for c := 0; c < isa.NumCategories; c++ {
		out.Mix[isa.Category(c).String()] = agg.ByCategory[c]
	}
	for i, w := range isa.Widths {
		out.SIMD[fmt.Sprintf("W%d", w)] = agg.ByWidth[i]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
