package export_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gtpin/internal/export"
	"gtpin/internal/kernel"
	"gtpin/internal/profile"
	"gtpin/internal/selection"
)

// TestFileHelpersMatchWriters: each atomic file helper produces exactly
// the bytes its io.Writer counterpart emits, and leaves no temp files
// behind.
func TestFileHelpersMatchWriters(t *testing.T) {
	dir := t.TempDir()
	ev := sampleEvaluation()

	var want bytes.Buffer
	if err := export.EvaluationsCSV(&want, []*selection.Evaluation{ev}); err != nil {
		t.Fatal(err)
	}
	evPath := filepath.Join(dir, "evals.csv")
	if err := export.EvaluationsCSVFile(evPath, []*selection.Evaluation{ev}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("EvaluationsCSVFile bytes differ from EvaluationsCSV")
	}

	want.Reset()
	if err := export.SelectionsCSV(&want, ev); err != nil {
		t.Fatal(err)
	}
	selPath := filepath.Join(dir, "sel.csv")
	if err := export.SelectionsCSVFile(selPath, ev); err != nil {
		t.Fatal(err)
	}
	if got, err = os.ReadFile(selPath); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("SelectionsCSVFile bytes differ from SelectionsCSV")
	}

	ks := []profile.KernelStatic{
		{Name: "k", Blocks: []kernel.BlockStats{{Instrs: 4}}, StaticInstrs: 4},
	}
	invs := []profile.Invocation{
		{Seq: 0, KernelIdx: 0, Instrs: 40, BlockCounts: []uint64{10}, TimeSec: 1e-6},
	}
	p, err := profile.New("jdemo", ks, invs)
	if err != nil {
		t.Fatal(err)
	}
	want.Reset()
	if err := export.ProfileJSON(&want, p); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "prof.json")
	if err := export.ProfileJSONFile(jsonPath, p); err != nil {
		t.Fatal(err)
	}
	if got, err = os.ReadFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("ProfileJSONFile bytes differ from ProfileJSON")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

// TestFileHelperPreservesOldOnError: an export that fails mid-write must
// leave an existing file untouched (the atomic-rename guarantee).
func TestFileHelperPreservesOldOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "evals.csv")
	ev := sampleEvaluation()
	if err := export.EvaluationsCSVFile(path, []*selection.Evaluation{ev}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A selection referencing a missing interval makes SelectionsCSV
	// panic-free but lets us exercise failure via an unwritable target
	// instead: point the helper at a path whose parent is a file.
	bad := filepath.Join(path, "nested.csv")
	if err := export.EvaluationsCSVFile(bad, []*selection.Evaluation{ev}); err == nil {
		t.Fatal("write under a file path unexpectedly succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed export disturbed the existing file")
	}
}
