package export_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"gtpin/internal/export"
	"gtpin/internal/features"
	"gtpin/internal/intervals"
	"gtpin/internal/kernel"
	"gtpin/internal/profile"
	"gtpin/internal/selection"
	"gtpin/internal/simpoint"
)

func sampleEvaluation() *selection.Evaluation {
	return &selection.Evaluation{
		App:    "demo",
		Config: selection.Config{Scheme: intervals.Sync, Feature: features.BBR},
		Intervals: []intervals.Interval{
			{Start: 0, End: 3, Instrs: 3000, TimeSec: 3e-6},
			{Start: 3, End: 5, Instrs: 2000, TimeSec: 2e-6},
		},
		Selections: []simpoint.Selection{
			{Interval: 0, Ratio: 0.6, Cluster: 0},
			{Interval: 1, Ratio: 0.4, Cluster: 1},
		},
		NumIntervals: 2,
		ErrorPct:     1.25,
		SelectedFrac: 1.0,
		Speedup:      1.0,
	}
}

// TestEvaluationsCSVHostileNames is the quoting regression test: an app
// name carrying commas, quotes, and newlines must survive a CSV
// write/parse round trip as one field of one logical row. Guarantees the
// emitters stay on encoding/csv rather than naive joins.
func TestEvaluationsCSVHostileNames(t *testing.T) {
	hostile := "evil,app\nwith \"quotes\", commas\r\nand newlines"
	ev := sampleEvaluation()
	ev.App = hostile
	var buf bytes.Buffer
	if err := export.EvaluationsCSV(&buf, []*selection.Evaluation{ev}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not re-parse: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("hostile name split the file into %d logical rows, want 2", len(rows))
	}
	if len(rows[1]) != 8 {
		t.Fatalf("hostile name split the row into %d fields, want 8", len(rows[1]))
	}
	// encoding/csv canonicalizes \r\n inside quoted fields to \n on read.
	want := strings.ReplaceAll(hostile, "\r\n", "\n")
	if rows[1][0] != want {
		t.Errorf("app field round-tripped as %q, want %q", rows[1][0], want)
	}
	if rows[1][7] != "1.000" {
		t.Errorf("trailing column = %q; hostile name shifted the row", rows[1][7])
	}
}

func TestEvaluationsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := export.EvaluationsCSV(&buf, []*selection.Evaluation{sampleEvaluation()}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "app" || len(rows[0]) != 8 {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "demo" || rows[1][2] != "BB-R" {
		t.Errorf("row = %v", rows[1])
	}
	if !strings.HasPrefix(rows[1][5], "1.25") {
		t.Errorf("error column = %q", rows[1][5])
	}
}

func TestSelectionsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := export.SelectionsCSV(&buf, sampleEvaluation()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][1] != "0" || rows[1][2] != "3" || rows[1][3] != "3000" {
		t.Errorf("selection row = %v", rows[1])
	}
}

func TestProfileJSON(t *testing.T) {
	ks := []profile.KernelStatic{
		{Name: "k", Blocks: []kernel.BlockStats{{Instrs: 4}}, StaticInstrs: 4},
	}
	invs := []profile.Invocation{
		{Seq: 0, KernelIdx: 0, Instrs: 40, BlockCounts: []uint64{10}, TimeSec: 1e-6},
	}
	p, err := profile.New("jdemo", ks, invs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := export.ProfileJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out["app"] != "jdemo" {
		t.Errorf("app = %v", out["app"])
	}
	totals := out["totals"].(map[string]any)
	if totals["instrs"].(float64) != 40 {
		t.Errorf("totals = %v", totals)
	}
	if _, ok := out["instruction_mix"].(map[string]any)["Computation"]; !ok {
		t.Error("missing instruction mix")
	}
}
