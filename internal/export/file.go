package export

// File-writing front ends for the exporters. Results written by long
// sweeps must never be observable half-written — a crash mid-export
// would otherwise leave a truncated CSV that downstream plotting reads
// as a short (but well-formed) result set. Each helper stages the full
// output through the atomic writer: temp file in the target directory,
// fsync, rename.

import (
	"io"

	"gtpin/internal/profile"
	"gtpin/internal/runstate"
	"gtpin/internal/selection"
)

// EvaluationsCSVFile atomically writes EvaluationsCSV output to path.
func EvaluationsCSVFile(path string, evals []*selection.Evaluation) error {
	return runstate.WriteAtomic(path, func(w io.Writer) error {
		return EvaluationsCSV(w, evals)
	})
}

// SelectionsCSVFile atomically writes SelectionsCSV output to path.
func SelectionsCSVFile(path string, ev *selection.Evaluation) error {
	return runstate.WriteAtomic(path, func(w io.Writer) error {
		return SelectionsCSV(w, ev)
	})
}

// ProfileJSONFile atomically writes ProfileJSON output to path.
func ProfileJSONFile(path string, p *profile.Profile) error {
	return runstate.WriteAtomic(path, func(w io.Writer) error {
		return ProfileJSON(w, p)
	})
}
