package isa

import "fmt"

// Dialect selects one concrete binary surface of the ISA. The neutral
// core of the package — opcodes, the five instruction-mix categories,
// and the per-lane semantics in sem.go — is shared by every dialect;
// what varies per dialect is the 16-byte field layout, the set of legal
// SIMD widths, the issue-cost and execute-hold tables the engine lowers
// from, and the register-file geometry (total registers and the base of
// the instrumentation scratch band).
//
// DialectGEN is the zero value, so kernels and binaries that predate
// the dialect split decode and execute exactly as before.
type Dialect uint8

// Supported dialects.
const (
	// DialectGEN is the original GEN-flavoured surface: all five SIMD
	// widths, 128 registers with an 8-register instrumentation band,
	// and the encoding documented in encode.go.
	DialectGEN Dialect = iota

	// DialectGENX is a second GEN-generation surface with a permuted
	// 16-byte field layout (genx.go), a narrower width set {1,4,8,16}
	// encoded in a 2-bit field, a 96-register file with the scratch
	// band at r88, and a different issue-cost profile (cheaper control,
	// costlier math and sends).
	DialectGENX

	numDialects
)

// NumDialects is the number of defined dialects, for table sizing.
const NumDialects = int(numDialects)

// Valid reports whether d is a defined dialect.
func (d Dialect) Valid() bool { return d < numDialects }

// String returns the dialect's flag-friendly name.
func (d Dialect) String() string {
	switch d {
	case DialectGEN:
		return "gen"
	case DialectGENX:
		return "genx"
	}
	return fmt.Sprintf("dialect(%d)", uint8(d))
}

// ParseDialect maps a flag value ("gen", "genx") to its dialect.
func ParseDialect(s string) (Dialect, error) {
	switch s {
	case "gen", "GEN":
		return DialectGEN, nil
	case "genx", "GENX":
		return DialectGENX, nil
	}
	return 0, fmt.Errorf("isa: unknown dialect %q (want gen or genx)", s)
}

// Dialects lists every defined dialect, for tests and fuzzers that
// iterate the full surface.
func Dialects() []Dialect { return []Dialect{DialectGEN, DialectGENX} }

var dialectWidths = [NumDialects][]Width{
	DialectGEN:  {W1, W2, W4, W8, W16},
	DialectGENX: {W1, W4, W8, W16},
}

// Widths returns the dialect's legal SIMD widths, narrowest first.
// Callers must not mutate the returned slice.
func (d Dialect) Widths() []Width { return dialectWidths[d] }

// WidthValid reports whether w is a legal execution width under d.
func (d Dialect) WidthValid(w Width) bool {
	if d == DialectGENX && w == W2 {
		return false
	}
	return w.Valid()
}

// Register-file geometry per dialect. The neutral Reg type spans the
// largest file (NumRegs == 128); narrower dialects use a prefix of it,
// so the engine's register arrays fit every dialect.
var dialectGeometry = [NumDialects]struct {
	numRegs     int
	scratchBase Reg
}{
	DialectGEN:  {numRegs: NumRegs, scratchBase: ScratchBase},
	DialectGENX: {numRegs: 96, scratchBase: 88},
}

// NumRegs returns the size of the dialect's general register file.
func (d Dialect) NumRegs() int { return dialectGeometry[d].numRegs }

// ScratchBase returns the first register of the dialect's
// instrumentation scratch band; the assembler and validator keep
// program registers below it, and the GT-Pin rewriter allocates its
// per-kernel scratch from it.
func (d Dialect) ScratchBase() Reg { return dialectGeometry[d].scratchBase }

// RegValid reports whether r addresses the dialect's register file.
func (d Dialect) RegValid(r Reg) bool { return int(r) < d.NumRegs() }

// dialectIssueCost holds each dialect's per-opcode base cost in EU
// cycles, charged by the engine's functional cycle accounting. GEN
// keeps the historical profile; GENX models a generation with a
// deeper math unit, a costlier memory fabric, and cheap control.
var dialectIssueCost = func() [NumDialects][opcodeCount]uint32 {
	var t [NumDialects][opcodeCount]uint32
	for op := Opcode(1); op < opcodeCount; op++ {
		switch {
		case op == OpMath:
			t[DialectGEN][op] = 8
			t[DialectGENX][op] = 12
		case op == OpMul || op == OpMach || op == OpMad:
			t[DialectGEN][op] = 2
			t[DialectGENX][op] = 3
		case op.IsControl():
			t[DialectGEN][op] = 2
			t[DialectGENX][op] = 1
		case op.IsSend():
			t[DialectGEN][op] = 4
			t[DialectGENX][op] = 6
		default:
			t[DialectGEN][op] = 1
			t[DialectGENX][op] = 1
		}
	}
	return t
}()

// IssueCost returns the dialect's base cost of op in EU cycles. Send
// latency beyond the issue cost is modelled at dispatch level by the
// owning backend.
func (d Dialect) IssueCost(op Opcode) uint32 { return dialectIssueCost[d][op] }

// ExecHold returns how many cycles beyond the first op occupies the
// execute stage of the detailed pipeline (0 for single-cycle ops). The
// hold mirrors the multi-cycle portion of the issue cost, so the two
// timing models rank opcodes consistently within a dialect.
func (d Dialect) ExecHold(op Opcode) uint64 {
	switch {
	case op == OpMath:
		if d == DialectGENX {
			return 12
		}
		return 8
	case op == OpMul || op == OpMach || op == OpMad:
		if d == DialectGENX {
			return 3
		}
		return 2
	}
	return 0
}

// Encode writes the instruction into buf using the dialect's binary
// layout; buf must be at least InstrBytes long. Encoding fails for
// widths the dialect lacks.
func (d Dialect) Encode(in Instruction, buf []byte) error {
	switch d {
	case DialectGEN:
		return Encode(in, buf)
	case DialectGENX:
		return encodeGENX(in, buf)
	}
	return fmt.Errorf("encode: invalid dialect %d", uint8(d))
}

// Decode parses one instruction word from buf using the dialect's
// binary layout.
func (d Dialect) Decode(buf []byte) (Instruction, error) {
	switch d {
	case DialectGEN:
		return Decode(buf)
	case DialectGENX:
		return decodeGENX(buf)
	}
	return Instruction{}, fmt.Errorf("decode: invalid dialect %d", uint8(d))
}

// EncodeSlice encodes a sequence of instructions under the dialect into
// a fresh byte slice.
func (d Dialect) EncodeSlice(instrs []Instruction) ([]byte, error) {
	out := make([]byte, len(instrs)*InstrBytes)
	for i, in := range instrs {
		if err := d.Encode(in, out[i*InstrBytes:]); err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeSlice decodes a sequence of instruction words under the
// dialect. The input length must be a multiple of InstrBytes.
func (d Dialect) DecodeSlice(data []byte) ([]Instruction, error) {
	if len(data)%InstrBytes != 0 {
		return nil, fmt.Errorf("decode: %d bytes is not a whole number of instructions", len(data))
	}
	out := make([]Instruction, len(data)/InstrBytes)
	for i := range out {
		in, err := d.Decode(data[i*InstrBytes:])
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
