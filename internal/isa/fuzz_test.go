package isa

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary instruction words must either fail to decode or
// decode to an instruction that re-encodes to the same semantic word
// (decode∘encode∘decode is the identity on the decoded form).
func FuzzDecode(f *testing.F) {
	// Seed with a few valid encodings.
	seed := []Instruction{
		{Op: OpAdd, Width: W16, Dst: 20, Src0: R(1), Src1: R(2)},
		{Op: OpBr, Width: W8, BrMode: BranchAll, Target: 7},
		{Op: OpSend, Width: W16, Dst: 3, Src0: R(4),
			Msg: MsgDesc{Kind: MsgLoad, Surface: 2, ElemBytes: 4}},
		{Op: OpMath, Width: W1, Fn: MathSqrt, Dst: 5, Src0: Imm(81)},
		{Op: OpEnd, Width: W16},
	}
	for _, in := range seed {
		var buf [InstrBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			f.Fatal(err)
		}
		f.Add(buf[:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return // invalid words must error, not panic
		}
		var rt [InstrBytes]byte
		if err := Encode(in, rt[:]); err != nil {
			t.Fatalf("decoded instruction failed to re-encode: %v (%v)", err, in)
		}
		in2, err := Decode(rt[:])
		if err != nil {
			t.Fatalf("re-encoded word failed to decode: %v", err)
		}
		var rt2 [InstrBytes]byte
		if err := Encode(in2, rt2[:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt[:], rt2[:]) {
			t.Fatalf("encode not stable: % x vs % x", rt, rt2)
		}
	})
}

// FuzzDecodeDialect extends the decode∘encode∘decode identity to every
// dialect's layout: the first input byte selects the dialect, the rest
// is the candidate instruction word.
func FuzzDecodeDialect(f *testing.F) {
	seed := []Instruction{
		{Op: OpAdd, Width: W16, Dst: 20, Src0: R(1), Src1: R(2)},
		{Op: OpBr, Width: W8, BrMode: BranchAll, Target: 7},
		{Op: OpSend, Width: W16, Dst: 3, Src0: R(4),
			Msg: MsgDesc{Kind: MsgLoad, Surface: 2, ElemBytes: 4}},
		{Op: OpMath, Width: W1, Fn: MathSqrt, Dst: 5, Src0: Imm(81)},
		{Op: OpEnd, Width: W16},
	}
	for _, d := range Dialects() {
		for _, in := range seed {
			var buf [InstrBytes]byte
			if err := d.Encode(in, buf[:]); err != nil {
				f.Fatal(err)
			}
			f.Add(byte(d), buf[:])
		}
	}
	f.Fuzz(func(t *testing.T, db byte, data []byte) {
		d := Dialect(db % byte(NumDialects))
		in, err := d.Decode(data)
		if err != nil {
			return // invalid words must error, not panic
		}
		var rt [InstrBytes]byte
		if err := d.Encode(in, rt[:]); err != nil {
			t.Fatalf("%v: decoded instruction failed to re-encode: %v (%v)", d, err, in)
		}
		in2, err := d.Decode(rt[:])
		if err != nil {
			t.Fatalf("%v: re-encoded word failed to decode: %v", d, err)
		}
		var rt2 [InstrBytes]byte
		if err := d.Encode(in2, rt2[:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt[:], rt2[:]) {
			t.Fatalf("%v: encode not stable: % x vs % x", d, rt, rt2)
		}
	})
}
