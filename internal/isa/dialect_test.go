package isa

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randInstrFor draws a random encodable instruction whose width is
// legal under the dialect.
func randInstrFor(rng *rand.Rand, d Dialect) Instruction {
	for {
		in := randInstr(rng)
		if d.WidthValid(in.Width) && d.RegValid(in.Dst) &&
			(in.Src0.Kind != OperandReg || d.RegValid(in.Src0.Reg)) &&
			(in.Src1.Kind != OperandReg || d.RegValid(in.Src1.Reg)) &&
			(in.Src2.Kind != OperandReg || d.RegValid(in.Src2.Reg)) {
			return in
		}
	}
}

func TestDialectStringParseRoundTrip(t *testing.T) {
	for _, d := range Dialects() {
		got, err := ParseDialect(d.String())
		if err != nil {
			t.Fatalf("ParseDialect(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDialect(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if _, err := ParseDialect("gen9"); err == nil {
		t.Error("ParseDialect must reject unknown names")
	}
	if Dialect(7).Valid() {
		t.Error("Dialect(7) must be invalid")
	}
}

func TestDialectWidthSets(t *testing.T) {
	for _, w := range Widths {
		if !DialectGEN.WidthValid(w) {
			t.Errorf("GEN must accept width %d", w)
		}
	}
	if DialectGENX.WidthValid(W2) {
		t.Error("GENX must reject W2")
	}
	for _, w := range []Width{W1, W4, W8, W16} {
		if !DialectGENX.WidthValid(w) {
			t.Errorf("GENX must accept width %d", w)
		}
	}
	if got := len(DialectGENX.Widths()); got != 4 {
		t.Errorf("GENX has %d widths, want 4", got)
	}
}

func TestDialectGeometry(t *testing.T) {
	if DialectGEN.NumRegs() != NumRegs || DialectGEN.ScratchBase() != ScratchBase {
		t.Error("GEN geometry must match the neutral constants")
	}
	if DialectGENX.NumRegs() != 96 || DialectGENX.ScratchBase() != 88 {
		t.Errorf("GENX geometry = %d/%d, want 96/88",
			DialectGENX.NumRegs(), DialectGENX.ScratchBase())
	}
	if DialectGENX.RegValid(96) || !DialectGENX.RegValid(95) {
		t.Error("GENX register validity boundary wrong")
	}
	for _, d := range Dialects() {
		// The instrumentation band must fit inside the register file.
		if int(d.ScratchBase()) >= d.NumRegs() {
			t.Errorf("%v scratch band starts past the register file", d)
		}
	}
}

// TestDialectIssueCostsDiverge pins the property the cross-dialect
// cache tests rely on: the two cost tables are not identical, and each
// covers every opcode with a nonzero cost.
func TestDialectIssueCostsDiverge(t *testing.T) {
	diverged := false
	for op := Opcode(1); op < opcodeCount; op++ {
		for _, d := range Dialects() {
			if d.IssueCost(op) == 0 {
				t.Errorf("%v issue cost of %v is zero", d, op)
			}
		}
		if DialectGEN.IssueCost(op) != DialectGENX.IssueCost(op) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("GEN and GENX issue-cost tables are identical")
	}
	if DialectGEN.ExecHold(OpMath) == DialectGENX.ExecHold(OpMath) {
		t.Error("GEN and GENX math holds are identical")
	}
}

// TestDialectEncodeDecodeRoundTrip is the per-dialect core property:
// Decode(Encode(x)) == x under each dialect's own layout.
func TestDialectEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range Dialects() {
		rng := rand.New(rand.NewSource(int64(3 + d)))
		for i := 0; i < 5000; i++ {
			in := randInstrFor(rng, d)
			var buf [InstrBytes]byte
			if err := d.Encode(in, buf[:]); err != nil {
				t.Fatalf("%v encode %v: %v", d, in, err)
			}
			got, err := d.Decode(buf[:])
			if err != nil {
				t.Fatalf("%v decode %v: %v", d, in, err)
			}
			if !reflect.DeepEqual(normalize(in), normalize(got)) {
				t.Fatalf("%v round-trip mismatch:\n in: %#v\nout: %#v",
					d, normalize(in), normalize(got))
			}
		}
	}
}

// TestDialectLayoutsDiverge: the same instruction encodes to different
// bytes under the two dialects — the layouts are genuinely distinct,
// so decoding with the wrong dialect cannot silently succeed for
// typical words.
func TestDialectLayoutsDiverge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	differ := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		in := randInstrFor(rng, DialectGENX) // widths legal in both
		var gen, genx [InstrBytes]byte
		if err := DialectGEN.Encode(in, gen[:]); err != nil {
			t.Fatal(err)
		}
		if err := DialectGENX.Encode(in, genx[:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gen[:], genx[:]) {
			differ++
		}
	}
	if differ < trials*9/10 {
		t.Errorf("only %d/%d instructions encode differently across dialects", differ, trials)
	}
}

func TestGENXRejectsW2(t *testing.T) {
	in := Instruction{Op: OpAdd, Width: W2, Dst: 1, Src0: R(2), Src1: R(3)}
	var buf [InstrBytes]byte
	if err := DialectGENX.Encode(in, buf[:]); err == nil {
		t.Error("GENX must refuse to encode W2")
	}
	if err := DialectGEN.Encode(in, buf[:]); err != nil {
		t.Errorf("GEN must encode W2: %v", err)
	}
}

// TestCrossDialectTranscode: GEN-decode ∘ GEN-encode applied to a
// GENX-decoded instruction preserves the instruction — the property
// the binary translator's re-encode step depends on (GEN's width set
// is a superset of GENX's).
func TestCrossDialectTranscode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		in := randInstrFor(rng, DialectGENX)
		var xw [InstrBytes]byte
		if err := DialectGENX.Encode(in, xw[:]); err != nil {
			t.Fatal(err)
		}
		dec, err := DialectGENX.Decode(xw[:])
		if err != nil {
			t.Fatal(err)
		}
		var gw [InstrBytes]byte
		if err := DialectGEN.Encode(dec, gw[:]); err != nil {
			t.Fatalf("GEN re-encode of GENX instruction %v: %v", dec, err)
		}
		back, err := DialectGEN.Decode(gw[:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(dec), normalize(back)) {
			t.Fatalf("transcode mismatch:\n in: %#v\nout: %#v", normalize(dec), normalize(back))
		}
	}
}
