package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInstr generates a random, encodable instruction.
func randInstr(rng *rand.Rand) Instruction {
	ops := []Opcode{
		OpMov, OpMovi, OpSel, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr, OpAsr,
		OpCmp, OpJmp, OpBr, OpCall, OpRet, OpEnd, OpAdd, OpSub, OpMul, OpMach,
		OpMad, OpMin, OpMax, OpAbs, OpAvg, OpMath, OpSend, OpSendc,
	}
	in := Instruction{
		Op:       ops[rng.Intn(len(ops))],
		Width:    Widths[rng.Intn(len(Widths))],
		Pred:     PredMode(rng.Intn(3)),
		Dst:      Reg(rng.Intn(NumRegs)),
		BrMode:   BranchMode(rng.Intn(3)),
		Fn:       MathFn(rng.Intn(8)),
		Target:   uint16(rng.Intn(1 << 16)),
		Injected: rng.Intn(2) == 0,
	}
	// At most one immediate source.
	immAt := rng.Intn(4) // 3 = no immediate
	srcs := []*Operand{&in.Src0, &in.Src1, &in.Src2}
	for i, s := range srcs {
		switch {
		case i == immAt:
			*s = Imm(rng.Uint32())
		case rng.Intn(3) == 0:
			*s = Operand{} // none
		default:
			*s = R(Reg(rng.Intn(NumRegs)))
		}
	}
	if in.Op == OpCmp {
		in.Cond = CondMod(1 + rng.Intn(8))
	}
	if in.Op.IsSend() {
		kinds := []MsgKind{MsgLoad, MsgStore, MsgLoadBlock, MsgStoreBlock, MsgAtomicAdd, MsgTimer, MsgEOT}
		elems := []uint8{1, 2, 4, 8}
		in.Msg = MsgDesc{
			Kind:      kinds[rng.Intn(len(kinds))],
			Surface:   uint8(rng.Intn(8)),
			ElemBytes: elems[rng.Intn(len(elems))],
		}
		if in.Msg.Kind == MsgTimer || in.Msg.Kind == MsgEOT {
			in.Msg.ElemBytes = 0
			in.Msg.Surface = 0
		}
	}
	return in
}

// TestEncodeDecodeRoundTrip is the core property: Decode(Encode(x)) == x
// for every encodable instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randInstr(rng)
		var buf [InstrBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		// Normalize fields the encoding legitimately does not carry for
		// this opcode class before comparing.
		if !reflect.DeepEqual(normalize(in), normalize(got)) {
			t.Fatalf("round-trip mismatch:\n in: %#v\nout: %#v", normalize(in), normalize(got))
		}
	}
}

// normalize zeroes encoding-insignificant sub-fields: an operand slot
// that is None carries no register number.
func normalize(in Instruction) Instruction {
	for _, s := range []*Operand{&in.Src0, &in.Src1, &in.Src2} {
		switch s.Kind {
		case OperandNone:
			*s = Operand{}
		case OperandReg:
			s.Imm = 0
		case OperandImm:
			s.Reg = 0
		}
	}
	if in.Msg.Kind == MsgNone {
		in.Msg = MsgDesc{}
	}
	return in
}

func TestEncodeRejectsTwoImmediates(t *testing.T) {
	in := Instruction{Op: OpAdd, Width: W16, Dst: 1, Src0: Imm(1), Src1: Imm(2)}
	var buf [InstrBytes]byte
	if err := Encode(in, buf[:]); err == nil {
		t.Error("expected error for two immediates")
	}
}

func TestEncodeRejectsShortBuffer(t *testing.T) {
	in := Instruction{Op: OpAdd, Width: W16, Dst: 1}
	if err := Encode(in, make([]byte, 8)); err == nil {
		t.Error("expected error for short buffer")
	}
	if _, err := Decode(make([]byte, 8)); err == nil {
		t.Error("expected error decoding short buffer")
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	var buf [InstrBytes]byte
	buf[0] = 0 // OpInvalid
	if _, err := Decode(buf[:]); err == nil {
		t.Error("expected error for invalid opcode")
	}
	buf[0] = 255
	if _, err := Decode(buf[:]); err == nil {
		t.Error("expected error for out-of-range opcode")
	}
}

func TestEncodeSliceDecodeSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ins := make([]Instruction, 64)
	for i := range ins {
		ins[i] = randInstr(rng)
	}
	data, err := EncodeSlice(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64*InstrBytes {
		t.Fatalf("encoded %d bytes, want %d", len(data), 64*InstrBytes)
	}
	got, err := DecodeSlice(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if !reflect.DeepEqual(normalize(ins[i]), normalize(got[i])) {
			t.Fatalf("instruction %d mismatch", i)
		}
	}
	if _, err := DecodeSlice(data[:InstrBytes+1]); err == nil {
		t.Error("expected error for ragged input")
	}
}

// TestDecodeNeverPanics fuzzes Decode with arbitrary bytes.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b [InstrBytes]byte) bool {
		_, _ = Decode(b[:]) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
