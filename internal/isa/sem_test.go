package isa

import (
	"testing"
	"testing/quick"
)

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		op      Opcode
		a, b, c uint32
		flag    bool
		want    uint32
	}{
		{OpMov, 7, 0, 0, false, 7},
		{OpSel, 1, 2, 0, true, 1},
		{OpSel, 1, 2, 0, false, 2},
		{OpAnd, 0xF0, 0x3C, 0, false, 0x30},
		{OpOr, 0xF0, 0x0F, 0, false, 0xFF},
		{OpXor, 0xFF, 0x0F, 0, false, 0xF0},
		{OpNot, 0, 0, 0, false, 0xFFFFFFFF},
		{OpShl, 1, 4, 0, false, 16},
		{OpShl, 1, 36, 0, false, 16}, // shift amounts wrap at 32
		{OpShr, 0x80000000, 31, 0, false, 1},
		{OpAsr, 0x80000000, 31, 0, false, 0xFFFFFFFF},
		{OpAdd, 3, 4, 0, false, 7},
		{OpSub, 3, 4, 0, false, 0xFFFFFFFF},
		{OpMul, 6, 7, 0, false, 42},
		{OpMach, 0x10000, 0x10000, 0, false, 1},
		{OpMad, 2, 3, 4, false, 10},
		{OpMin, 5, 9, 0, false, 5},
		{OpMax, 5, 9, 0, false, 9},
		{OpAbs, 0xFFFFFFFF, 0, 0, false, 1}, // |-1| = 1
		{OpAvg, 3, 4, 0, false, 4},          // (3+4+1)>>1
	}
	for _, c := range cases {
		if got := Eval(c.op, 0, c.a, c.b, c.c, c.flag); got != c.want {
			t.Errorf("Eval(%s, %d, %d, %d, %v) = %d, want %d", c.op, c.a, c.b, c.c, c.flag, got, c.want)
		}
	}
}

func TestEvalCmp(t *testing.T) {
	cases := []struct {
		cond CondMod
		a, b uint32
		want bool
	}{
		{CondEQ, 5, 5, true},
		{CondNE, 5, 5, false},
		{CondLT, 4, 5, true},
		{CondLE, 5, 5, true},
		{CondGT, 6, 5, true},
		{CondGE, 5, 5, true},
		// Unsigned vs signed disagreement: 0xFFFFFFFF is max unsigned
		// but -1 signed.
		{CondLT, 0xFFFFFFFF, 1, false},
		{CondLTS, 0xFFFFFFFF, 1, true},
		{CondGT, 0xFFFFFFFF, 1, true},
		{CondGTS, 0xFFFFFFFF, 1, false},
	}
	for _, c := range cases {
		if got := EvalCmp(c.cond, c.a, c.b); got != c.want {
			t.Errorf("EvalCmp(%s, %d, %d) = %v, want %v", c.cond, c.a, c.b, got, c.want)
		}
	}
	if EvalCmp(CondNone, 1, 1) {
		t.Error("CondNone must be false")
	}
}

// TestMathSqrtProperty: isqrt(v)² ≤ v < (isqrt(v)+1)².
func TestMathSqrtProperty(t *testing.T) {
	f := func(v uint32) bool {
		r := uint64(EvalMath(MathSqrt, v, 0))
		return r*r <= uint64(v) && uint64(v) < (r+1)*(r+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{0, 1, 2, 3, 4, 15, 16, 17, 0xFFFFFFFF} {
		if !f(v) {
			t.Errorf("sqrt property fails at %d", v)
		}
	}
}

// TestMathDivRemProperty: a = (a/b)*b + a%b for b != 0.
func TestMathDivRemProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		if b == 0 {
			b = 1 // the math unit substitutes 1 for 0 divisors
		}
		q := EvalMath(MathIDiv, a, b)
		r := EvalMath(MathIRem, a, b)
		return q*b+r == a && r < b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMathDivByZeroSafe(t *testing.T) {
	// Division and remainder by zero must not panic; the unit treats a
	// zero divisor as one.
	if got := EvalMath(MathIDiv, 42, 0); got != 42 {
		t.Errorf("42/0 -> %d, want 42", got)
	}
	if got := EvalMath(MathIRem, 42, 0); got != 0 {
		t.Errorf("42%%0 -> %d, want 0", got)
	}
	if got := EvalMath(MathInv, 0, 0); got != 0xFFFFFFFF {
		t.Errorf("inv(0) -> %d, want max", got)
	}
}

func TestMathLog2Exp2(t *testing.T) {
	for _, c := range []struct{ in, want uint32 }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {0x80000000, 31},
	} {
		if got := EvalMath(MathLog2, c.in, 0); got != c.want {
			t.Errorf("log2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := EvalMath(MathExp2, 10, 0); got != 1024 {
		t.Errorf("exp2(10) = %d", got)
	}
	if got := EvalMath(MathExp2, 33, 0); got != 2 {
		t.Errorf("exp2 must mask its argument: got %d", got)
	}
}

func TestSinTableProperties(t *testing.T) {
	// Period midpoint symmetry: sin(i) + sin(i+128) = 2*32768.
	for i := 0; i < 128; i++ {
		if SinTable[i]+SinTable[i+128] != 2*32768 {
			t.Fatalf("sin symmetry broken at %d: %d + %d", i, SinTable[i], SinTable[i+128])
		}
	}
	// Extremes.
	if SinTable[0] != 32768 {
		t.Errorf("sin(0) = %d, want 32768", SinTable[0])
	}
	if SinTable[64] != 32768+32767 {
		t.Errorf("sin peak = %d", SinTable[64])
	}
	// Cos is sin shifted by a quarter period.
	for i := 0; i < 256; i++ {
		if EvalMath(MathCos, uint32(i), 0) != SinTable[(i+64)&0xFF] {
			t.Fatalf("cos(%d) inconsistent", i)
		}
	}
}

func TestEvalMovIgnoresExtraSources(t *testing.T) {
	if got := Eval(OpMov, 0, 9, 123, 456, true); got != 9 {
		t.Errorf("mov must return src0, got %d", got)
	}
}
