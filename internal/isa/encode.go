package isa

import "fmt"

// InstrBytes is the fixed size of one encoded instruction word, matching
// the 16-byte native GEN instruction format.
const InstrBytes = 16

// Encoding layout (little-endian where multi-byte):
//
//	byte 0      opcode
//	byte 1      width index (bits 0-2) | pred (bits 3-4) | brmode (bits 5-6) | injected (bit 7)
//	byte 2      dst register
//	byte 3      cond (bits 0-3) | math fn (bits 4-7)
//	byte 4      src0 kind (bits 0-1) | src1 kind (bits 2-3) | src2 kind (bits 4-5)
//	byte 5-7    src0, src1, src2 register numbers
//	byte 8-11   immediate (at most one source may be immediate)
//	byte 12-13  branch target block index
//	byte 14     msg kind (bits 0-3) | log2 elem bytes (bits 4-5)
//	byte 15     msg surface

// Encode writes the instruction into buf, which must be at least
// InstrBytes long. It returns an error if the instruction cannot be
// represented (more than one immediate source, or invalid fields).
func Encode(in Instruction, buf []byte) error {
	if len(buf) < InstrBytes {
		return fmt.Errorf("encode: buffer too small (%d bytes)", len(buf))
	}
	wi := WidthIndex(in.Width)
	if wi < 0 {
		return fmt.Errorf("encode %s: invalid width %d", in.Op, in.Width)
	}
	var imm uint32
	immSeen := false
	srcs := [3]Operand{in.Src0, in.Src1, in.Src2}
	kinds := byte(0)
	for i, s := range srcs {
		kinds |= byte(s.Kind) << (2 * i)
		if s.Kind == OperandImm {
			if immSeen {
				return fmt.Errorf("encode %s: more than one immediate source", in.Op)
			}
			immSeen = true
			imm = s.Imm
		}
	}
	buf[0] = byte(in.Op)
	b1 := byte(wi) | byte(in.Pred)<<3 | byte(in.BrMode)<<5
	if in.Injected {
		b1 |= 1 << 7
	}
	buf[1] = b1
	buf[2] = byte(in.Dst)
	buf[3] = byte(in.Cond) | byte(in.Fn)<<4
	buf[4] = kinds
	buf[5] = byte(srcs[0].Reg)
	buf[6] = byte(srcs[1].Reg)
	buf[7] = byte(srcs[2].Reg)
	buf[8] = byte(imm)
	buf[9] = byte(imm >> 8)
	buf[10] = byte(imm >> 16)
	buf[11] = byte(imm >> 24)
	buf[12] = byte(in.Target)
	buf[13] = byte(in.Target >> 8)
	eb := byte(0)
	switch in.Msg.ElemBytes {
	case 0, 1:
		eb = 0
	case 2:
		eb = 1
	case 4:
		eb = 2
	case 8:
		eb = 3
	default:
		return fmt.Errorf("encode %s: unsupported element size %d", in.Op, in.Msg.ElemBytes)
	}
	buf[14] = byte(in.Msg.Kind) | eb<<4
	buf[15] = in.Msg.Surface
	return nil
}

// Decode parses one instruction word from buf.
func Decode(buf []byte) (Instruction, error) {
	if len(buf) < InstrBytes {
		return Instruction{}, fmt.Errorf("decode: buffer too small (%d bytes)", len(buf))
	}
	var in Instruction
	in.Op = Opcode(buf[0])
	if !in.Op.Valid() {
		return Instruction{}, fmt.Errorf("decode: invalid opcode %d", buf[0])
	}
	wi := int(buf[1] & 0x7)
	if wi >= len(Widths) {
		return Instruction{}, fmt.Errorf("decode: invalid width index %d", wi)
	}
	in.Width = Widths[wi]
	in.Pred = PredMode((buf[1] >> 3) & 0x3)
	in.BrMode = BranchMode((buf[1] >> 5) & 0x3)
	in.Injected = buf[1]&(1<<7) != 0
	in.Dst = Reg(buf[2])
	in.Cond = CondMod(buf[3] & 0xF)
	in.Fn = MathFn(buf[3] >> 4)
	imm := uint32(buf[8]) | uint32(buf[9])<<8 | uint32(buf[10])<<16 | uint32(buf[11])<<24
	srcs := [3]*Operand{&in.Src0, &in.Src1, &in.Src2}
	for i, s := range srcs {
		kind := OperandKind((buf[4] >> (2 * i)) & 0x3)
		s.Kind = kind
		switch kind {
		case OperandReg:
			s.Reg = Reg(buf[5+i])
		case OperandImm:
			s.Imm = imm
		}
	}
	in.Target = uint16(buf[12]) | uint16(buf[13])<<8
	in.Msg.Kind = MsgKind(buf[14] & 0xF)
	in.Msg.ElemBytes = 1 << ((buf[14] >> 4) & 0x3)
	switch in.Msg.Kind {
	case MsgNone, MsgTimer, MsgEOT:
		in.Msg.ElemBytes = 0 // these messages move no data elements
	}
	in.Msg.Surface = buf[15]
	return in, nil
}

// EncodeSlice encodes a sequence of instructions into a fresh byte slice.
func EncodeSlice(instrs []Instruction) ([]byte, error) {
	out := make([]byte, len(instrs)*InstrBytes)
	for i, in := range instrs {
		if err := Encode(in, out[i*InstrBytes:]); err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeSlice decodes a sequence of instruction words. The input length
// must be a multiple of InstrBytes.
func DecodeSlice(data []byte) ([]Instruction, error) {
	if len(data)%InstrBytes != 0 {
		return nil, fmt.Errorf("decode: %d bytes is not a whole number of instructions", len(data))
	}
	out := make([]Instruction, len(data)/InstrBytes)
	for i := range out {
		in, err := Decode(data[i*InstrBytes:])
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
