package isa

import "fmt"

// GENX binary surface: the same 16-byte instruction word as GEN, but
// with the fields laid out differently — the kind of generation-to-
// generation encoding shuffle real GEN hardware went through — and a
// 2-bit width field covering only the widths GENX supports.
//
// Encoding layout (big-endian where multi-byte, deliberately the
// opposite of GEN's little-endian fields):
//
//	byte 0      msg surface
//	byte 1      opcode
//	byte 2      src0 kind (bits 0-1) | src1 kind (bits 2-3) | src2 kind (bits 4-5) | injected (bit 6)
//	byte 3      width code (bits 0-1) | pred (bits 2-3) | brmode (bits 4-5) | log2 elem bytes (bits 6-7)
//	byte 4      dst register
//	byte 5      cond (bits 0-3) | msg kind (bits 4-7)
//	byte 6      math fn
//	byte 7-9    src0, src1, src2 register numbers
//	byte 10-11  branch target block index (big-endian)
//	byte 12-15  immediate (big-endian; at most one source may be immediate)

// genxWidths maps the 2-bit GENX width code to an execution width.
var genxWidths = [4]Width{W1, W4, W8, W16}

// genxWidthCode returns the width code for w, or -1 if GENX lacks it.
func genxWidthCode(w Width) int {
	switch w {
	case W1:
		return 0
	case W4:
		return 1
	case W8:
		return 2
	case W16:
		return 3
	}
	return -1
}

func encodeGENX(in Instruction, buf []byte) error {
	if len(buf) < InstrBytes {
		return fmt.Errorf("encode genx: buffer too small (%d bytes)", len(buf))
	}
	wc := genxWidthCode(in.Width)
	if wc < 0 {
		return fmt.Errorf("encode genx %s: width %d not in the GENX width set", in.Op, in.Width)
	}
	var imm uint32
	immSeen := false
	srcs := [3]Operand{in.Src0, in.Src1, in.Src2}
	kinds := byte(0)
	for i, s := range srcs {
		kinds |= byte(s.Kind) << (2 * i)
		if s.Kind == OperandImm {
			if immSeen {
				return fmt.Errorf("encode genx %s: more than one immediate source", in.Op)
			}
			immSeen = true
			imm = s.Imm
		}
	}
	eb := byte(0)
	switch in.Msg.ElemBytes {
	case 0, 1:
		eb = 0
	case 2:
		eb = 1
	case 4:
		eb = 2
	case 8:
		eb = 3
	default:
		return fmt.Errorf("encode genx %s: unsupported element size %d", in.Op, in.Msg.ElemBytes)
	}
	buf[0] = in.Msg.Surface
	buf[1] = byte(in.Op)
	b2 := kinds
	if in.Injected {
		b2 |= 1 << 6
	}
	buf[2] = b2
	buf[3] = byte(wc) | byte(in.Pred)<<2 | byte(in.BrMode)<<4 | eb<<6
	buf[4] = byte(in.Dst)
	buf[5] = byte(in.Cond) | byte(in.Msg.Kind)<<4
	buf[6] = byte(in.Fn)
	buf[7] = byte(srcs[0].Reg)
	buf[8] = byte(srcs[1].Reg)
	buf[9] = byte(srcs[2].Reg)
	buf[10] = byte(in.Target >> 8)
	buf[11] = byte(in.Target)
	buf[12] = byte(imm >> 24)
	buf[13] = byte(imm >> 16)
	buf[14] = byte(imm >> 8)
	buf[15] = byte(imm)
	return nil
}

func decodeGENX(buf []byte) (Instruction, error) {
	if len(buf) < InstrBytes {
		return Instruction{}, fmt.Errorf("decode genx: buffer too small (%d bytes)", len(buf))
	}
	var in Instruction
	in.Op = Opcode(buf[1])
	if !in.Op.Valid() {
		return Instruction{}, fmt.Errorf("decode genx: invalid opcode %d", buf[1])
	}
	in.Width = genxWidths[buf[3]&0x3]
	in.Pred = PredMode((buf[3] >> 2) & 0x3)
	in.BrMode = BranchMode((buf[3] >> 4) & 0x3)
	in.Injected = buf[2]&(1<<6) != 0
	in.Dst = Reg(buf[4])
	in.Cond = CondMod(buf[5] & 0xF)
	in.Fn = MathFn(buf[6])
	imm := uint32(buf[12])<<24 | uint32(buf[13])<<16 | uint32(buf[14])<<8 | uint32(buf[15])
	srcs := [3]*Operand{&in.Src0, &in.Src1, &in.Src2}
	for i, s := range srcs {
		kind := OperandKind((buf[2] >> (2 * i)) & 0x3)
		s.Kind = kind
		switch kind {
		case OperandReg:
			s.Reg = Reg(buf[7+i])
		case OperandImm:
			s.Imm = imm
		}
	}
	in.Target = uint16(buf[10])<<8 | uint16(buf[11])
	in.Msg.Kind = MsgKind(buf[5] >> 4)
	in.Msg.ElemBytes = 1 << ((buf[3] >> 6) & 0x3)
	switch in.Msg.Kind {
	case MsgNone, MsgTimer, MsgEOT:
		in.Msg.ElemBytes = 0 // these messages move no data elements
	}
	in.Msg.Surface = buf[0]
	return in, nil
}
