package isa

import (
	"testing"
)

func TestEveryOpcodeHasCategoryAndName(t *testing.T) {
	for op := OpInvalid + 1; op < opcodeCount; op++ {
		if !op.Valid() {
			t.Errorf("opcode %d should be valid", op)
		}
		c := CategoryOf(op)
		if int(c) >= NumCategories {
			t.Errorf("%s: category %d out of range", op, c)
		}
		if op.String() == "" || op.String() == "invalid" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if Opcode(200).Valid() {
		t.Error("out-of-range opcode must not be valid")
	}
}

func TestCategoryAssignments(t *testing.T) {
	cases := map[Opcode]Category{
		OpMov: CatMove, OpMovi: CatMove, OpSel: CatMove,
		OpAnd: CatLogic, OpCmp: CatLogic, OpShl: CatLogic,
		OpJmp: CatControl, OpBr: CatControl, OpEnd: CatControl, OpRet: CatControl,
		OpAdd: CatComputation, OpMad: CatComputation, OpMath: CatComputation,
		OpSend: CatSend, OpSendc: CatSend,
	}
	for op, want := range cases {
		if got := CategoryOf(op); got != want {
			t.Errorf("CategoryOf(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestControlAndSendPredicates(t *testing.T) {
	for _, op := range []Opcode{OpJmp, OpBr, OpCall, OpRet, OpEnd} {
		if !op.IsControl() {
			t.Errorf("%s should be control", op)
		}
	}
	for _, op := range []Opcode{OpSend, OpSendc} {
		if !op.IsSend() {
			t.Errorf("%s should be a send", op)
		}
		if op.IsControl() {
			t.Errorf("%s should not be control", op)
		}
	}
	if OpAdd.IsControl() || OpAdd.IsSend() {
		t.Error("add is neither control nor send")
	}
}

func TestWidths(t *testing.T) {
	if len(Widths) != NumWidths {
		t.Fatalf("Widths has %d entries, want %d", len(Widths), NumWidths)
	}
	for i, w := range Widths {
		if !w.Valid() {
			t.Errorf("width %d invalid", w)
		}
		if WidthIndex(w) != i {
			t.Errorf("WidthIndex(%d) = %d, want %d", w, WidthIndex(w), i)
		}
	}
	for _, w := range []Width{0, 3, 5, 17, 32} {
		if w.Valid() {
			t.Errorf("width %d should be invalid", w)
		}
		if WidthIndex(w) != -1 {
			t.Errorf("WidthIndex(%d) should be -1", w)
		}
	}
}

func TestOperandConstructors(t *testing.T) {
	r := R(7)
	if r.Kind != OperandReg || r.Reg != 7 {
		t.Errorf("R(7) = %+v", r)
	}
	im := Imm(42)
	if im.Kind != OperandImm || im.Imm != 42 {
		t.Errorf("Imm(42) = %+v", im)
	}
	var none Operand
	if none.Kind != OperandNone {
		t.Errorf("zero operand should be none")
	}
}

func TestMsgBytesMoved(t *testing.T) {
	cases := []struct {
		msg  MsgDesc
		w    Width
		want uint64
	}{
		{MsgDesc{Kind: MsgLoad, ElemBytes: 4}, W16, 64},
		{MsgDesc{Kind: MsgStore, ElemBytes: 1}, W8, 8},
		{MsgDesc{Kind: MsgLoadBlock, ElemBytes: 4}, W16, 64},
		{MsgDesc{Kind: MsgAtomicAdd, ElemBytes: 8}, W1, 8},
		{MsgDesc{Kind: MsgEOT}, W16, 0},
		{MsgDesc{Kind: MsgTimer}, W16, 0},
	}
	for _, c := range cases {
		if got := c.msg.BytesMoved(c.w); got != c.want {
			t.Errorf("BytesMoved(%v, %d) = %d, want %d", c.msg, c.w, got, c.want)
		}
	}
}

func TestMsgReadWritePredicates(t *testing.T) {
	if !MsgLoad.Reads() || MsgLoad.Writes() {
		t.Error("load reads only")
	}
	if MsgStore.Reads() || !MsgStore.Writes() {
		t.Error("store writes only")
	}
	if !MsgAtomicAdd.Reads() || !MsgAtomicAdd.Writes() {
		t.Error("atomic reads and writes")
	}
	if MsgEOT.Reads() || MsgEOT.Writes() || MsgTimer.Reads() || MsgTimer.Writes() {
		t.Error("EOT/timer move no memory")
	}
}

func TestInstructionValidate(t *testing.T) {
	valid := Instruction{Op: OpAdd, Width: W16, Dst: 20, Src0: R(1), Src1: R(2)}
	if err := valid.Validate(4); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}

	cases := []struct {
		name string
		in   Instruction
	}{
		{"invalid opcode", Instruction{Op: OpInvalid, Width: W16}},
		{"invalid width", Instruction{Op: OpAdd, Width: 3, Dst: 1}},
		{"branch target out of range", Instruction{Op: OpBr, Width: W16, Target: 4}},
		{"cmp without condition", Instruction{Op: OpCmp, Width: W16, Src0: R(1), Src1: R(2)}},
		{"send without message", Instruction{Op: OpSend, Width: W16, Dst: 1}},
		{"send with bad element size", Instruction{Op: OpSend, Width: W16,
			Msg: MsgDesc{Kind: MsgLoad, ElemBytes: 3}}},
	}
	for _, c := range cases {
		if err := c.in.Validate(4); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestInstructionString(t *testing.T) {
	ins := []Instruction{
		{Op: OpJmp, Width: W16, Target: 3},
		{Op: OpBr, Width: W16, Target: 1, BrMode: BranchAll},
		{Op: OpEnd, Width: W16},
		{Op: OpSend, Width: W16, Dst: 2, Src0: R(3), Msg: MsgDesc{Kind: MsgLoad, Surface: 1, ElemBytes: 4}},
		{Op: OpCmp, Width: W8, Cond: CondLT, Src0: R(1), Src1: Imm(5)},
		{Op: OpMath, Width: W16, Fn: MathSqrt, Dst: 4, Src0: R(5)},
		{Op: OpMad, Width: W16, Dst: 1, Src0: R(2), Src1: R(3), Src2: R(4)},
	}
	for _, in := range ins {
		if in.String() == "" {
			t.Errorf("empty String() for %v", in.Op)
		}
	}
}

func TestCondModString(t *testing.T) {
	for c := CondNone; c <= CondGTS; c++ {
		_ = c.String() // must not panic
	}
	for _, m := range []MsgKind{MsgNone, MsgLoad, MsgStore, MsgLoadBlock, MsgStoreBlock, MsgAtomicAdd, MsgTimer, MsgEOT} {
		if m.String() == "" {
			t.Errorf("empty message kind name for %d", m)
		}
	}
}
