package isa

// Per-lane semantic evaluation shared by simulators. The fast functional
// path in gtpin/internal/device inlines these operations in vectorized
// switches for speed; the detailed simulator (gtpin/internal/detsim)
// calls Eval lane-by-lane. Property tests assert the two agree on all
// opcodes so the implementations cannot drift apart.

// Eval computes a data-processing opcode on one channel. flag is the
// channel's flag bit (consumed by OpSel). Control opcodes, sends, and
// OpCmp are not data-processing and must not be passed.
func Eval(op Opcode, fn MathFn, a, b, c uint32, flag bool) uint32 {
	switch op {
	case OpMov, OpMovi:
		return a
	case OpSel:
		if flag {
			return a
		}
		return b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNot:
		return ^a
	case OpShl:
		return a << (b & 31)
	case OpShr:
		return a >> (b & 31)
	case OpAsr:
		return uint32(int32(a) >> (b & 31))
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpMach:
		return uint32((uint64(a) * uint64(b)) >> 32)
	case OpMad:
		return a*b + c
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpAbs:
		v := int32(a)
		if v < 0 {
			v = -v
		}
		return uint32(v)
	case OpAvg:
		return uint32((uint64(a) + uint64(b) + 1) >> 1)
	case OpMath:
		return EvalMath(fn, a, b)
	}
	return 0
}

// EvalCmp evaluates a comparison condition on one channel.
func EvalCmp(cond CondMod, a, b uint32) bool {
	switch cond {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	case CondLTS:
		return int32(a) < int32(b)
	case CondGTS:
		return int32(a) > int32(b)
	}
	return false
}

// EvalMath evaluates the extended math unit's integer functions.
func EvalMath(fn MathFn, a, b uint32) uint32 {
	switch fn {
	case MathInv:
		if a == 0 {
			a = 1
		}
		return uint32(0xFFFFFFFF / uint64(a))
	case MathSqrt:
		return isqrtU32(a)
	case MathIDiv:
		if b == 0 {
			b = 1
		}
		return a / b
	case MathIRem:
		if b == 0 {
			b = 1
		}
		return a % b
	case MathLog2:
		if a == 0 {
			return 0
		}
		n := uint32(0)
		for a > 1 {
			a >>= 1
			n++
		}
		return n
	case MathExp2:
		return 1 << (a & 31)
	case MathSin:
		return SinTable[a&0xFF]
	case MathCos:
		return SinTable[(a+64)&0xFF]
	}
	return 0
}

// isqrtU32 computes the integer square root by Newton iteration.
func isqrtU32(v uint32) uint32 {
	if v == 0 {
		return 0
	}
	x := uint64(v)
	bits := uint32(0)
	for t := v; t > 0; t >>= 1 {
		bits++
	}
	r := uint64(1) << ((bits + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			return uint32(r)
		}
		r = nr
	}
}

// SinTable is the math unit's 256-entry fixed-point sine period:
// 32768 + 32767·sin(2πi/256), evaluated with an integer quarter-wave
// parabola so device behaviour is float-free.
var SinTable = func() [256]uint32 {
	var t [256]uint32
	for i := 0; i < 256; i++ {
		q := i & 0x7F
		v := int64(q) * int64(128-q) * 32767 / (64 * 64)
		if i >= 128 {
			v = -v
		}
		t[i] = uint32(32768 + v)
	}
	return t
}()
