// Package isa defines a GEN-flavoured GPU instruction set architecture.
//
// The ISA models the axes of Intel's GEN ISA that GT-Pin's analyses are
// defined over: five opcode categories (move, logic, control, computation,
// send), SIMD execution widths of 1/2/4/8/16 channels, a general register
// file of 128 vector registers, per-channel flag predication, and "send"
// instructions that carry all memory traffic between hardware threads and
// the memory surfaces bound to a kernel.
//
// Instructions have a fixed 16-byte binary encoding (as GEN native
// instructions do); see Encode and Decode. The encoding is what the GT-Pin
// binary rewriter operates on.
//
// This package defines the ISA; it does not interpret it. The per-lane
// semantics (Eval, EvalCmp, EvalMath) and the classification helpers
// (CategoryOf, IsControl, IsSend) are consumed by gtpin/internal/engine,
// the single execution engine both the functional device and the
// detailed simulator are built on — see docs/architecture.md.
package isa

import "fmt"

// Opcode identifies an instruction operation.
type Opcode uint8

// Opcodes, grouped by category. The groups mirror the five categories used
// in the paper's instruction-mix characterization (Figure 4a).
const (
	// OpInvalid is the zero Opcode; it never appears in a valid program.
	OpInvalid Opcode = iota

	// Move instructions.
	OpMov  // dst = src0
	OpMovi // dst = broadcast immediate
	OpSel  // dst = flag ? src0 : src1

	// Logic instructions.
	OpAnd // dst = src0 & src1
	OpOr  // dst = src0 | src1
	OpXor // dst = src0 ^ src1
	OpNot // dst = ^src0
	OpShl // dst = src0 << (src1 & 31)
	OpShr // dst = src0 >> (src1 & 31) (logical)
	OpAsr // dst = src0 >> (src1 & 31) (arithmetic)
	OpCmp // flag = src0 <cmod> src1 (per channel)

	// Control instructions.
	OpJmp  // unconditional branch to Target block
	OpBr   // conditional branch to Target block (flag reduced by BranchMode)
	OpCall // call subroutine block (single level, returns via OpRet)
	OpRet  // return from subroutine
	OpEnd  // end of thread (EOT)

	// Computation instructions.
	OpAdd  // dst = src0 + src1
	OpSub  // dst = src0 - src1
	OpMul  // dst = src0 * src1 (low 32 bits)
	OpMach // dst = high 32 bits of src0 * src1
	OpMad  // dst = src0 * src1 + src2
	OpMin  // dst = min(src0, src1) (unsigned)
	OpMax  // dst = max(src0, src1) (unsigned)
	OpAbs  // dst = |src0| (two's complement)
	OpAvg  // dst = (src0 + src1 + 1) >> 1
	OpMath // dst = MathFn(src0, src1); extended math (inv, sqrt, ...)

	// Send instructions (all memory traffic).
	OpSend  // memory message; see MsgKind
	OpSendc // send with thread-serialized commit (modelled identically)

	opcodeCount // number of opcodes, for table sizing
)

// NumOpcodes is the number of defined opcodes (excluding OpInvalid).
const NumOpcodes = int(opcodeCount)

// Category classifies an opcode into one of the paper's five
// instruction-mix groups.
type Category uint8

// Instruction categories, matching Figure 4a of the paper.
const (
	CatMove Category = iota
	CatLogic
	CatControl
	CatComputation
	CatSend
	NumCategories int = 5
)

// String returns the category name as used in the paper's figures.
func (c Category) String() string {
	switch c {
	case CatMove:
		return "Moves"
	case CatLogic:
		return "Logic"
	case CatControl:
		return "Control"
	case CatComputation:
		return "Computation"
	case CatSend:
		return "Sends"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

var opcodeCategory = [opcodeCount]Category{
	OpMov: CatMove, OpMovi: CatMove, OpSel: CatMove,
	OpAnd: CatLogic, OpOr: CatLogic, OpXor: CatLogic, OpNot: CatLogic,
	OpShl: CatLogic, OpShr: CatLogic, OpAsr: CatLogic, OpCmp: CatLogic,
	OpJmp: CatControl, OpBr: CatControl, OpCall: CatControl,
	OpRet: CatControl, OpEnd: CatControl,
	OpAdd: CatComputation, OpSub: CatComputation, OpMul: CatComputation,
	OpMach: CatComputation, OpMad: CatComputation, OpMin: CatComputation,
	OpMax: CatComputation, OpAbs: CatComputation, OpAvg: CatComputation,
	OpMath: CatComputation,
	OpSend: CatSend, OpSendc: CatSend,
}

// CategoryOf reports the instruction-mix category of op.
func CategoryOf(op Opcode) Category { return opcodeCategory[op] }

var opcodeName = [opcodeCount]string{
	OpInvalid: "invalid",
	OpMov:     "mov", OpMovi: "movi", OpSel: "sel",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpAsr: "asr", OpCmp: "cmp",
	OpJmp: "jmp", OpBr: "br", OpCall: "call", OpRet: "ret", OpEnd: "end",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpMach: "mach", OpMad: "mad",
	OpMin: "min", OpMax: "max", OpAbs: "abs", OpAvg: "avg", OpMath: "math",
	OpSend: "send", OpSendc: "sendc",
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opcodeName) && opcodeName[op] != "" {
		return opcodeName[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op > OpInvalid && op < opcodeCount }

// IsControl reports whether op terminates a basic block.
func (op Opcode) IsControl() bool { return CategoryOf(op) == CatControl }

// IsSend reports whether op is a memory send.
func (op Opcode) IsSend() bool { return op == OpSend || op == OpSendc }

// Width is a SIMD execution width: the number of channels an instruction
// operates on simultaneously.
type Width uint8

// Supported SIMD widths. MaxWidth channels fit in one vector register.
const (
	W1  Width = 1
	W2  Width = 2
	W4  Width = 4
	W8  Width = 8
	W16 Width = 16

	MaxWidth = 16
)

// Valid reports whether w is one of the five supported widths.
func (w Width) Valid() bool {
	switch w {
	case W1, W2, W4, W8, W16:
		return true
	}
	return false
}

// NumWidths is the number of supported SIMD widths.
const NumWidths = 5

// Widths lists the supported SIMD widths from narrowest to widest.
var Widths = [NumWidths]Width{W1, W2, W4, W8, W16}

// WidthIndex maps a valid width to its index in Widths (W1→0 ... W16→4).
func WidthIndex(w Width) int {
	switch w {
	case W1:
		return 0
	case W2:
		return 1
	case W4:
		return 2
	case W8:
		return 3
	case W16:
		return 4
	}
	return -1
}

// NumRegs is the size of the general register file (GRF) visible to a
// hardware thread. Registers above ScratchBase are reserved by convention
// for dynamic instrumentation (the GT-Pin rewriter's scratch space); the
// assembler refuses to allocate them to kernels.
const (
	NumRegs     = 128
	ScratchBase = 120
)

// Reg names a general register r0..r127.
type Reg uint8

// Valid reports whether r addresses the register file.
func (r Reg) Valid() bool { return int(r) < NumRegs }

// String returns the assembly name of r.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// OperandKind distinguishes register sources from immediates.
type OperandKind uint8

// Operand kinds.
const (
	OperandNone OperandKind = iota // operand unused
	OperandReg                     // vector register source
	OperandImm                     // 32-bit immediate, broadcast to all channels
)

// Operand is an instruction source: a register, an immediate, or absent.
type Operand struct {
	Kind OperandKind
	Reg  Reg    // valid when Kind == OperandReg
	Imm  uint32 // valid when Kind == OperandImm
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v uint32) Operand { return Operand{Kind: OperandImm, Imm: v} }

// String returns the assembly form of the operand.
func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		return o.Reg.String()
	case OperandImm:
		return fmt.Sprintf("#%d", o.Imm)
	}
	return "_"
}

// CondMod is the comparison condition for OpCmp.
type CondMod uint8

// Comparison conditions. Ordered comparisons are unsigned unless the
// Signed suffix is present.
const (
	CondNone CondMod = iota
	CondEQ
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	CondLTS // signed <
	CondGTS // signed >
)

// String returns the condition mnemonic.
func (c CondMod) String() string {
	switch c {
	case CondNone:
		return ""
	case CondEQ:
		return "eq"
	case CondNE:
		return "ne"
	case CondLT:
		return "lt"
	case CondLE:
		return "le"
	case CondGT:
		return "gt"
	case CondGE:
		return "ge"
	case CondLTS:
		return "lts"
	case CondGTS:
		return "gts"
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// BranchMode selects how OpBr reduces the per-channel flag vector to a
// single taken/not-taken decision.
type BranchMode uint8

// Branch flag reductions.
const (
	BranchAny  BranchMode = iota // taken if any active channel's flag is set
	BranchAll                    // taken if all active channels' flags are set
	BranchNone                   // taken if no active channel's flag is set
)

// PredMode gates per-channel execution of non-control instructions on the
// flag register.
type PredMode uint8

// Predication modes.
const (
	PredNoneMode PredMode = iota // execute all channels
	PredOn                       // execute channels whose flag is set
	PredOff                      // execute channels whose flag is clear
)

// MathFn selects the extended-math function computed by OpMath.
type MathFn uint8

// Extended math functions (integer approximations of the GEN math unit).
const (
	MathInv  MathFn = iota // dst = 0xFFFFFFFF / max(src0,1): reciprocal scaled to fixed point
	MathSqrt               // dst = isqrt(src0)
	MathIDiv               // dst = src0 / max(src1,1)
	MathIRem               // dst = src0 % max(src1,1)
	MathLog2               // dst = floor(log2(src0)), 0 for src0==0
	MathExp2               // dst = 1 << (src0 & 31)
	MathSin                // dst = fixed-point sin over a 256-entry period
	MathCos                // dst = fixed-point cos over a 256-entry period
)

// MsgKind identifies the memory message carried by a send instruction.
type MsgKind uint8

// Send message kinds. Every kind moves ElemBytes bytes per enabled channel
// except MsgLoadBlock/MsgStoreBlock, which move ElemBytes*Width contiguous
// bytes addressed by channel 0, and MsgEOT, which moves none.
const (
	MsgNone       MsgKind = iota
	MsgLoad               // gather: per-channel address -> per-channel element
	MsgStore              // scatter: per-channel element -> per-channel address
	MsgLoadBlock          // contiguous block read at channel-0 address
	MsgStoreBlock         // contiguous block write at channel-0 address
	MsgAtomicAdd          // per-channel atomic add; returns previous value
	MsgTimer              // read the EU timestamp register into dst channel 0
	MsgEOT                // end-of-thread handshake (no data)
)

// String returns the message-kind mnemonic.
func (m MsgKind) String() string {
	switch m {
	case MsgNone:
		return "none"
	case MsgLoad:
		return "load"
	case MsgStore:
		return "store"
	case MsgLoadBlock:
		return "loadblk"
	case MsgStoreBlock:
		return "storeblk"
	case MsgAtomicAdd:
		return "atomadd"
	case MsgTimer:
		return "timer"
	case MsgEOT:
		return "eot"
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// Reads reports whether the message reads from memory.
func (m MsgKind) Reads() bool {
	return m == MsgLoad || m == MsgLoadBlock || m == MsgAtomicAdd
}

// Writes reports whether the message writes to memory.
func (m MsgKind) Writes() bool {
	return m == MsgStore || m == MsgStoreBlock || m == MsgAtomicAdd
}

// MsgDesc is the message descriptor of a send instruction: which surface
// (binding-table index) it targets, the message kind, and the element size
// per channel in bytes.
type MsgDesc struct {
	Kind      MsgKind
	Surface   uint8 // binding table index of the target surface
	ElemBytes uint8 // bytes per channel (1, 2, 4, or 8)
}

// BytesMoved returns the number of bytes the message transfers for an
// execution at width w with all channels enabled.
func (m MsgDesc) BytesMoved(w Width) uint64 {
	switch m.Kind {
	case MsgLoad, MsgStore, MsgAtomicAdd, MsgLoadBlock, MsgStoreBlock:
		return uint64(m.ElemBytes) * uint64(w)
	}
	return 0
}

// Instruction is one decoded GEN-flavoured instruction.
//
// Control instructions (OpJmp, OpBr, OpCall) carry a Target basic-block
// index; all other fields follow the usual three-source form. Sends use
// Src0 as the address register (per-channel byte offsets into the surface)
// and Dst as the destination (loads) or Src1 as the data source (stores).
type Instruction struct {
	Op     Opcode
	Width  Width
	Pred   PredMode
	Dst    Reg
	Src0   Operand
	Src1   Operand
	Src2   Operand
	Cond   CondMod    // OpCmp only
	BrMode BranchMode // OpBr only
	Fn     MathFn     // OpMath only
	Msg    MsgDesc    // sends only
	Target uint16     // OpJmp/OpBr/OpCall: destination basic-block index

	// Injected marks instructions spliced in by the GT-Pin binary
	// rewriter. The bit exists in the encoding so that a rewritten binary
	// can be re-rewritten idempotently; profiling tools exclude injected
	// instructions from all program statistics.
	Injected bool
}

// String returns a one-line assembly rendering of the instruction.
func (in Instruction) String() string {
	switch {
	case in.Op == OpJmp || in.Op == OpCall:
		return fmt.Sprintf("%s b%d", in.Op, in.Target)
	case in.Op == OpBr:
		return fmt.Sprintf("br.%d b%d", in.BrMode, in.Target)
	case in.Op == OpRet || in.Op == OpEnd:
		return in.Op.String()
	case in.Op.IsSend():
		return fmt.Sprintf("%s.%s surf%d.%dB %s, %s, %s (w%d)",
			in.Op, in.Msg.Kind, in.Msg.Surface, in.Msg.ElemBytes,
			in.Dst, in.Src0, in.Src1, in.Width)
	case in.Op == OpCmp:
		return fmt.Sprintf("cmp.%s %s, %s (w%d)", in.Cond, in.Src0, in.Src1, in.Width)
	case in.Op == OpMath:
		return fmt.Sprintf("math.%d %s, %s, %s (w%d)", in.Fn, in.Dst, in.Src0, in.Src1, in.Width)
	default:
		return fmt.Sprintf("%s %s, %s, %s, %s (w%d)", in.Op, in.Dst, in.Src0, in.Src1, in.Src2, in.Width)
	}
}

// Validate checks structural well-formedness of the instruction in a
// program with numBlocks basic blocks. It does not check register liveness.
func (in Instruction) Validate(numBlocks int) error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", uint8(in.Op))
	}
	if !in.Width.Valid() {
		return fmt.Errorf("%s: invalid SIMD width %d", in.Op, in.Width)
	}
	if !in.Dst.Valid() {
		return fmt.Errorf("%s: invalid dst %s", in.Op, in.Dst)
	}
	for i, src := range []Operand{in.Src0, in.Src1, in.Src2} {
		if src.Kind == OperandReg && !src.Reg.Valid() {
			return fmt.Errorf("%s: invalid src%d register %s", in.Op, i, src.Reg)
		}
	}
	switch in.Op {
	case OpJmp, OpBr, OpCall:
		if int(in.Target) >= numBlocks {
			return fmt.Errorf("%s: branch target b%d out of range (%d blocks)", in.Op, in.Target, numBlocks)
		}
	case OpCmp:
		if in.Cond == CondNone {
			return fmt.Errorf("cmp requires a condition modifier")
		}
	case OpSend, OpSendc:
		if in.Msg.Kind == MsgNone {
			return fmt.Errorf("send requires a message kind")
		}
		switch in.Msg.Kind {
		case MsgEOT, MsgTimer:
			// no surface required
		default:
			switch in.Msg.ElemBytes {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("send %s: unsupported element size %dB", in.Msg.Kind, in.Msg.ElemBytes)
			}
		}
	}
	return nil
}
