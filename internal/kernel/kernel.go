// Package kernel defines the intermediate representation of OpenCL-style
// GPU programs: a Program is a set of named Kernels, each a control-flow
// graph of basic Blocks over the ISA in gtpin/internal/isa.
//
// The IR is what workloads are authored in (via gtpin/internal/asm), what
// the driver JIT (gtpin/internal/jit) compiles to device binaries, and what
// the GT-Pin binary rewriter reconstructs when it instruments those
// binaries.
package kernel

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"gtpin/internal/isa"
)

// Block is a basic block: a straight-line instruction sequence with a
// single entry and a single (control-instruction) exit.
type Block struct {
	// ID is the block's index within its kernel.
	ID int
	// Instrs is the block body. The last instruction must be a control
	// instruction (jmp, br, call, ret, or end); br falls through to block
	// ID+1 when not taken.
	Instrs []isa.Instruction
}

// Terminator returns the block's final (control) instruction.
func (b *Block) Terminator() isa.Instruction {
	return b.Instrs[len(b.Instrs)-1]
}

// Succs returns the IDs of the blocks control may transfer to when the
// block exits. Call/ret edges are excluded: calls are treated as
// falling through after the callee returns, matching how the interpreter
// runs single-level subroutines.
func (b *Block) Succs() []int {
	t := b.Terminator()
	switch t.Op {
	case isa.OpJmp:
		return []int{int(t.Target)}
	case isa.OpBr:
		return []int{int(t.Target), b.ID + 1}
	case isa.OpCall:
		return []int{b.ID + 1}
	case isa.OpRet, isa.OpEnd:
		return nil
	}
	return nil
}

// NumInstrs returns the block's static instruction count.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// Kernel is a named GPU procedure: a list of basic blocks, executed from
// block 0 until an end-of-thread, once per SIMD channel-group of the
// dispatch.
type Kernel struct {
	Name string
	// Dialect is the ISA surface the kernel targets: which widths are
	// legal, which issue-cost table the engine lowers from, how many
	// registers exist, and how the JIT encodes the instruction words.
	// The zero value (DialectGEN) matches kernels that predate the
	// dialect split.
	Dialect isa.Dialect
	// SIMD is the dispatch width: how many work-items one hardware thread
	// executes per channel-group. Most instructions in the kernel should
	// use this width.
	SIMD isa.Width
	// Blocks are the kernel's basic blocks, indexed by Block.ID.
	Blocks []*Block
	// NumArgs is the number of scalar arguments the kernel accepts. The
	// device ABI broadcasts argument i into register ArgReg(i).
	NumArgs int
	// NumSurfaces is the number of memory surfaces (buffers) the kernel
	// binds. Surface s in a send descriptor refers to the s-th buffer
	// argument set on the kernel.
	NumSurfaces int
}

// ABI register conventions shared by the assembler, the device, and the
// GT-Pin rewriter.
const (
	// GIDReg receives the per-channel global work-item IDs at dispatch.
	GIDReg isa.Reg = 0
	// TIDReg receives the channel-group index (scalar, broadcast).
	TIDReg isa.Reg = 1
	// FirstArgReg is the register receiving kernel argument 0; argument i
	// lands in FirstArgReg+i, broadcast across channels.
	FirstArgReg isa.Reg = 2
	// MaxArgs bounds the number of scalar kernel arguments.
	MaxArgs = 16
	// FirstFreeReg is the first register available for kernel temporaries.
	FirstFreeReg = FirstArgReg + MaxArgs
)

// ArgReg returns the register that receives kernel argument i.
func ArgReg(i int) isa.Reg { return FirstArgReg + isa.Reg(i) }

// Fingerprint returns a content address of the kernel's executable
// form: the dialect, the SIMD width, the block structure, and every
// instruction's 16-byte encoding (injected instrumentation included,
// since it executes). Two kernels with equal fingerprints run
// identically on every interpreter, so caches of derived execution
// artifacts — the engine's pre-decoded threaded-code streams — can
// share entries across kernel objects the way the GT-Pin rewrite cache
// shares instrumented binaries across devices. The name is deliberately
// excluded: it does not affect execution. The dialect is included even
// though instruction words are hashed in the neutral (GEN) encoding:
// the same instruction stream executes with different issue costs under
// different dialects, so derived artifacts must not be shared across
// them.
func (k *Kernel) Fingerprint() (string, error) {
	h := sha256.New()
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(k.Dialect))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(k.SIMD))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(k.Blocks)))
	h.Write(hdr[:])
	var word [isa.InstrBytes]byte
	for _, b := range k.Blocks {
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(b.Instrs)))
		h.Write(hdr[:4])
		for _, in := range b.Instrs {
			if err := isa.Encode(in, word[:]); err != nil {
				return "", fmt.Errorf("kernel %s: fingerprint: %w", k.Name, err)
			}
			h.Write(word[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// StaticInstrs returns the kernel's static instruction count.
func (k *Kernel) StaticInstrs() int {
	n := 0
	for _, b := range k.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Validate checks the structural invariants of the kernel: non-empty
// blocks with control-terminated exits, in-range branch targets, correct
// block IDs, argument and surface references within declared bounds, and
// no use of the instrumentation scratch registers.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel has no name")
	}
	if !k.Dialect.Valid() {
		return fmt.Errorf("kernel %s: invalid dialect %d", k.Name, uint8(k.Dialect))
	}
	if !k.Dialect.WidthValid(k.SIMD) {
		return fmt.Errorf("kernel %s: invalid SIMD width %d for dialect %s", k.Name, k.SIMD, k.Dialect)
	}
	if len(k.Blocks) == 0 {
		return fmt.Errorf("kernel %s: no blocks", k.Name)
	}
	if k.NumArgs < 0 || k.NumArgs > MaxArgs {
		return fmt.Errorf("kernel %s: %d args (max %d)", k.Name, k.NumArgs, MaxArgs)
	}
	for i, b := range k.Blocks {
		if b.ID != i {
			return fmt.Errorf("kernel %s: block %d has ID %d", k.Name, i, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("kernel %s: block %d is empty", k.Name, i)
		}
		for j, in := range b.Instrs {
			if err := in.Validate(len(k.Blocks)); err != nil {
				return fmt.Errorf("kernel %s: block %d instr %d: %w", k.Name, i, j, err)
			}
			if !k.Dialect.WidthValid(in.Width) {
				return fmt.Errorf("kernel %s: block %d instr %d: width %d not in dialect %s",
					k.Name, i, j, in.Width, k.Dialect)
			}
			isLast := j == len(b.Instrs)-1
			if isLast != in.Op.IsControl() {
				if isLast {
					return fmt.Errorf("kernel %s: block %d does not end with a control instruction", k.Name, i)
				}
				return fmt.Errorf("kernel %s: block %d instr %d: control instruction %s in block body", k.Name, i, j, in.Op)
			}
			if in.Op.IsSend() && in.Msg.Kind != isa.MsgEOT && in.Msg.Kind != isa.MsgTimer {
				if int(in.Msg.Surface) >= k.NumSurfaces {
					return fmt.Errorf("kernel %s: block %d instr %d: surface %d out of range (%d bound)",
						k.Name, i, j, in.Msg.Surface, k.NumSurfaces)
				}
			}
			for _, r := range instrRegs(in) {
				if !k.Dialect.RegValid(r) {
					return fmt.Errorf("kernel %s: block %d instr %d: register %s outside dialect %s file (%d regs)",
						k.Name, i, j, r, k.Dialect, k.Dialect.NumRegs())
				}
				if !in.Injected && r >= k.Dialect.ScratchBase() {
					return fmt.Errorf("kernel %s: block %d instr %d: register %s is reserved for instrumentation",
						k.Name, i, j, r)
				}
			}
		}
		// br fall-through must exist.
		if t := b.Terminator(); t.Op == isa.OpBr && i == len(k.Blocks)-1 {
			return fmt.Errorf("kernel %s: block %d: br in final block has no fall-through", k.Name, i)
		}
	}
	return nil
}

func instrRegs(in isa.Instruction) []isa.Reg {
	regs := make([]isa.Reg, 0, 4)
	if in.Op != isa.OpCmp && !in.Op.IsControl() {
		regs = append(regs, in.Dst)
	}
	for _, s := range []isa.Operand{in.Src0, in.Src1, in.Src2} {
		if s.Kind == isa.OperandReg {
			regs = append(regs, s.Reg)
		}
	}
	return regs
}

// Program is a complete OpenCL-style program: the set of kernels an
// application builds and dispatches.
type Program struct {
	Name    string
	Kernels []*Kernel
}

// Kernel returns the kernel with the given name, or nil.
func (p *Program) Kernel(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Validate checks every kernel and that kernel names are unique.
func (p *Program) Validate() error {
	if len(p.Kernels) == 0 {
		return fmt.Errorf("program %s: no kernels", p.Name)
	}
	seen := make(map[string]bool, len(p.Kernels))
	for _, k := range p.Kernels {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("program %s: %w", p.Name, err)
		}
		if seen[k.Name] {
			return fmt.Errorf("program %s: duplicate kernel %q", p.Name, k.Name)
		}
		seen[k.Name] = true
	}
	return nil
}

// StaticStats summarizes a program's static structure, the quantities
// reported in Figure 3b of the paper.
type StaticStats struct {
	UniqueKernels    int
	UniqueBlocks     int
	StaticInstrs     int
	InstrsByCategory [isa.NumCategories]int
	InstrsByWidth    [isa.NumWidths]int
}

// Stats computes the program's static statistics. Injected
// (instrumentation) instructions are excluded.
func (p *Program) Stats() StaticStats {
	var s StaticStats
	s.UniqueKernels = len(p.Kernels)
	for _, k := range p.Kernels {
		s.UniqueBlocks += len(k.Blocks)
		for _, b := range k.Blocks {
			for _, in := range b.Instrs {
				if in.Injected {
					continue
				}
				s.StaticInstrs++
				s.InstrsByCategory[isa.CategoryOf(in.Op)]++
				s.InstrsByWidth[isa.WidthIndex(in.Width)]++
			}
		}
	}
	return s
}

// BlockStats summarizes one basic block's static content; profiling tools
// combine these with dynamic block counts to derive instruction-level
// statistics without per-instruction instrumentation.
type BlockStats struct {
	Instrs       int
	ByCategory   [isa.NumCategories]int
	ByWidth      [isa.NumWidths]int
	BytesRead    uint64 // bytes read by one execution of the block
	BytesWritten uint64 // bytes written by one execution of the block
}

// StatsOf computes the static statistics of a block, excluding injected
// instructions.
func StatsOf(b *Block) BlockStats {
	var s BlockStats
	for _, in := range b.Instrs {
		if in.Injected {
			continue
		}
		s.Instrs++
		s.ByCategory[isa.CategoryOf(in.Op)]++
		s.ByWidth[isa.WidthIndex(in.Width)]++
		if in.Op.IsSend() {
			moved := in.Msg.BytesMoved(in.Width)
			if in.Msg.Kind.Reads() {
				s.BytesRead += moved
			}
			if in.Msg.Kind.Writes() {
				s.BytesWritten += moved
			}
		}
	}
	return s
}
