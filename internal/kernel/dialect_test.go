package kernel

import (
	"strings"
	"testing"

	"gtpin/internal/isa"
)

// TestFingerprintDistinguishesDialect: two kernels with identical
// instructions but different dialects must fingerprint differently —
// every content-addressed cache in the stack (predecode, detsim
// compile) keys on the fingerprint, and a collision would serve one
// dialect's lowering to the other.
func TestFingerprintDistinguishesDialect(t *testing.T) {
	gen := validKernel()
	genx := validKernel()
	genx.Dialect = isa.DialectGENX

	fpGen, err := gen.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpGenx, err := genx.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpGen == fpGenx {
		t.Fatal("kernels differing only in dialect share a fingerprint")
	}

	// Same dialect, same content: the fingerprint stays deterministic.
	fpGen2, err := validKernel().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpGen != fpGen2 {
		t.Error("fingerprint not deterministic")
	}
}

// TestValidateDialectRules: width and register checks follow the
// kernel's dialect, not the neutral package constants.
func TestValidateDialectRules(t *testing.T) {
	// W2 is legal GEN, illegal GENX.
	k := validKernel()
	k.Blocks[0].Instrs[0] = isa.Instruction{Op: isa.OpAdd, Width: isa.W2,
		Dst: FirstFreeReg, Src0: isa.R(1), Src1: isa.R(2)}
	if err := k.Validate(); err != nil {
		t.Fatalf("GEN kernel with W2 rejected: %v", err)
	}
	k.Dialect = isa.DialectGENX
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "width") {
		t.Errorf("GENX kernel with W2 must fail on width, got %v", err)
	}

	// r90 is a program register under GEN (scratch starts at 120) but
	// sits inside GENX's scratch band (88).
	k = validKernel()
	k.Blocks[0].Instrs[0] = add(90)
	if err := k.Validate(); err != nil {
		t.Fatalf("GEN kernel using r90 rejected: %v", err)
	}
	k.Dialect = isa.DialectGENX
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("GENX kernel using r90 must fail on the scratch band, got %v", err)
	}

	// r120 is out of GENX's 96-register file entirely, even injected.
	k = validKernel()
	k.Dialect = isa.DialectGENX
	in := add(120)
	in.Injected = true
	k.Blocks[0].Instrs[0] = in
	if err := k.Validate(); err == nil {
		t.Error("GENX kernel addressing r120 must fail")
	}

	// An undefined dialect is rejected outright.
	k = validKernel()
	k.Dialect = isa.Dialect(9)
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "dialect") {
		t.Errorf("undefined dialect must fail, got %v", err)
	}
}
