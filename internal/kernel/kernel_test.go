package kernel

import (
	"strings"
	"testing"

	"gtpin/internal/isa"
)

// tiny helpers for building test kernels by hand.
func end() isa.Instruction { return isa.Instruction{Op: isa.OpEnd, Width: isa.W16} }
func add(dst isa.Reg) isa.Instruction {
	return isa.Instruction{Op: isa.OpAdd, Width: isa.W16, Dst: dst, Src0: isa.R(1), Src1: isa.R(2)}
}

func validKernel() *Kernel {
	return &Kernel{
		Name: "k",
		SIMD: isa.W16,
		Blocks: []*Block{
			{ID: 0, Instrs: []isa.Instruction{
				add(FirstFreeReg),
				{Op: isa.OpBr, Width: isa.W16, Target: 0},
				// wait: br in block 0 needs fall-through; block 1 follows.
			}},
			{ID: 1, Instrs: []isa.Instruction{end()}},
		},
	}
}

func TestValidKernelPasses(t *testing.T) {
	if err := validKernel().Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Kernel)
		want   string
	}{
		{"no name", func(k *Kernel) { k.Name = "" }, "no name"},
		{"bad simd", func(k *Kernel) { k.SIMD = 3 }, "SIMD"},
		{"no blocks", func(k *Kernel) { k.Blocks = nil }, "no blocks"},
		{"too many args", func(k *Kernel) { k.NumArgs = MaxArgs + 1 }, "args"},
		{"misnumbered block", func(k *Kernel) { k.Blocks[1].ID = 7 }, "has ID"},
		{"empty block", func(k *Kernel) { k.Blocks[1].Instrs = nil }, "empty"},
		{"no terminator", func(k *Kernel) {
			k.Blocks[1].Instrs = []isa.Instruction{add(FirstFreeReg)}
		}, "control"},
		{"control mid-block", func(k *Kernel) {
			k.Blocks[1].Instrs = []isa.Instruction{end(), end()}
		}, "in block body"},
		{"branch out of range", func(k *Kernel) {
			k.Blocks[0].Instrs[1].Target = 9
		}, "out of range"},
		{"surface out of range", func(k *Kernel) {
			k.Blocks[0].Instrs[0] = isa.Instruction{Op: isa.OpSend, Width: isa.W16,
				Dst: FirstFreeReg, Src0: isa.R(FirstFreeReg),
				Msg: isa.MsgDesc{Kind: isa.MsgLoad, Surface: 3, ElemBytes: 4}}
		}, "surface"},
		{"scratch register", func(k *Kernel) {
			k.Blocks[0].Instrs[0] = add(isa.ScratchBase)
		}, "reserved"},
		{"br with no fall-through", func(k *Kernel) {
			k.Blocks = k.Blocks[:1]
		}, ""},
	}
	for _, c := range cases {
		k := validKernel()
		c.mutate(k)
		err := k.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestInjectedInstructionsMayUseScratch(t *testing.T) {
	k := validKernel()
	in := add(isa.ScratchBase)
	in.Injected = true
	k.Blocks[0].Instrs[0] = in
	if err := k.Validate(); err != nil {
		t.Fatalf("injected scratch use rejected: %v", err)
	}
}

func TestSuccs(t *testing.T) {
	b := &Block{ID: 2, Instrs: []isa.Instruction{{Op: isa.OpJmp, Width: isa.W16, Target: 5}}}
	if got := b.Succs(); len(got) != 1 || got[0] != 5 {
		t.Errorf("jmp succs = %v", got)
	}
	b = &Block{ID: 2, Instrs: []isa.Instruction{{Op: isa.OpBr, Width: isa.W16, Target: 0}}}
	if got := b.Succs(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("br succs = %v", got)
	}
	b = &Block{ID: 2, Instrs: []isa.Instruction{end()}}
	if got := b.Succs(); got != nil {
		t.Errorf("end succs = %v", got)
	}
	b = &Block{ID: 2, Instrs: []isa.Instruction{{Op: isa.OpCall, Width: isa.W16, Target: 7}}}
	if got := b.Succs(); len(got) != 1 || got[0] != 3 {
		t.Errorf("call succs = %v (calls fall through)", got)
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Name: "p", Kernels: []*Kernel{validKernel()}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Kernels = append(p.Kernels, validKernel()) // duplicate name "k"
	if err := p.Validate(); err == nil {
		t.Error("expected duplicate-kernel error")
	}
	empty := &Program{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("expected no-kernels error")
	}
}

func TestKernelLookup(t *testing.T) {
	p := &Program{Name: "p", Kernels: []*Kernel{validKernel()}}
	if p.Kernel("k") == nil {
		t.Error("kernel k not found")
	}
	if p.Kernel("missing") != nil {
		t.Error("found a kernel that does not exist")
	}
}

func TestStatsCountsAndExcludesInjected(t *testing.T) {
	k := validKernel()
	// Add an injected instruction; it must not count.
	inj := add(isa.ScratchBase)
	inj.Injected = true
	k.Blocks[0].Instrs = append([]isa.Instruction{inj}, k.Blocks[0].Instrs...)
	p := &Program{Name: "p", Kernels: []*Kernel{k}}
	s := p.Stats()
	if s.UniqueKernels != 1 || s.UniqueBlocks != 2 {
		t.Errorf("structure: %+v", s)
	}
	if s.StaticInstrs != 3 { // add, br, end
		t.Errorf("static instrs = %d, want 3", s.StaticInstrs)
	}
	if s.InstrsByCategory[isa.CatComputation] != 1 {
		t.Errorf("computation count = %d", s.InstrsByCategory[isa.CatComputation])
	}
	if s.InstrsByCategory[isa.CatControl] != 2 {
		t.Errorf("control count = %d", s.InstrsByCategory[isa.CatControl])
	}
}

func TestStatsOfBlockBytes(t *testing.T) {
	b := &Block{ID: 0, Instrs: []isa.Instruction{
		{Op: isa.OpSend, Width: isa.W16, Dst: FirstFreeReg, Src0: isa.R(FirstFreeReg),
			Msg: isa.MsgDesc{Kind: isa.MsgLoad, Surface: 0, ElemBytes: 4}},
		{Op: isa.OpSend, Width: isa.W8, Src0: isa.R(FirstFreeReg), Src1: isa.R(FirstFreeReg + 1),
			Msg: isa.MsgDesc{Kind: isa.MsgStore, Surface: 0, ElemBytes: 2}},
		{Op: isa.OpSend, Width: isa.W1, Dst: FirstFreeReg, Src0: isa.R(FirstFreeReg), Src1: isa.R(FirstFreeReg + 1),
			Msg: isa.MsgDesc{Kind: isa.MsgAtomicAdd, Surface: 0, ElemBytes: 8}},
		end(),
	}}
	s := StatsOf(b)
	if s.Instrs != 4 {
		t.Errorf("instrs = %d", s.Instrs)
	}
	if want := uint64(16*4 + 8); s.BytesRead != want { // load 64 + atomic 8
		t.Errorf("bytes read = %d, want %d", s.BytesRead, want)
	}
	if want := uint64(8*2 + 8); s.BytesWritten != want { // store 16 + atomic 8
		t.Errorf("bytes written = %d, want %d", s.BytesWritten, want)
	}
}

func TestArgRegConvention(t *testing.T) {
	if ArgReg(0) != FirstArgReg {
		t.Error("arg 0 register")
	}
	if ArgReg(3) != FirstArgReg+3 {
		t.Error("arg 3 register")
	}
	if int(FirstFreeReg) != int(FirstArgReg)+MaxArgs {
		t.Error("free register space must follow the args")
	}
}

func TestStaticInstrs(t *testing.T) {
	k := validKernel()
	if got := k.StaticInstrs(); got != 3 {
		t.Errorf("StaticInstrs = %d, want 3", got)
	}
}
