// Package workloads implements the 25 benchmark applications of Table I
// as synthetic OpenCL-style programs: 15 CompuBench CL 1.2 applications
// (desktop and mobile), 3 SiSoftware Sandra 2014 benchmarks, and 7 Sony
// Vegas Pro rendering regions.
//
// The commercial binaries are unavailable, so each application is
// reconstructed from the paper's characterization: its kernels are real
// programs in the kernel IR (blurs actually convolve, hashes actually
// mix, fractals actually iterate with data-dependent exits), and its host
// driver issues an API-call stream shaped to the paper's reported
// structure — API-call mix (Figure 3a), unique kernel and basic-block
// counts (Figure 3b), kernel invocation and instruction volumes
// (Figure 3c), instruction and SIMD mixes (Figure 4a/b), and memory
// read/write behaviour (Figure 4c).
//
// Dynamic instruction volume is scaled by Scale.InstrFactor relative to
// the paper (ScaleFull ≈ 1e-4 of the paper's 308-billion-instruction
// average); counts of structural events (kernels, invocations, API
// calls) are kept at paper magnitude under ScaleFull and reduced under
// the test scales.
package workloads

import (
	"fmt"

	"gtpin/internal/cl"
	"gtpin/internal/kernel"
)

// Scale controls workload size.
type Scale struct {
	Name string
	// Iters scales inner-loop trip counts (dynamic instructions per
	// invocation).
	Iters float64
	// Invs scales kernel invocation counts (and with them API calls).
	Invs float64
	// Data scales buffer element counts / global work sizes.
	Data float64
}

// The standard scales. ScaleFull keeps event counts at paper magnitude
// with instructions at ~1e-4 of the paper's; the reduced scales keep the
// same program structure for fast tests.
var (
	ScaleFull  = Scale{Name: "full", Iters: 1, Invs: 1, Data: 1}
	ScaleSmall = Scale{Name: "small", Iters: 0.5, Invs: 0.12, Data: 0.5}
	ScaleTiny  = Scale{Name: "tiny", Iters: 0.25, Invs: 0.03, Data: 0.25}
)

// N scales a base count, with a floor of min.
func (s Scale) N(base float64, factor float64, min int) int {
	n := int(base*factor + 0.5)
	if n < min {
		n = min
	}
	return n
}

// PaperStats records the values the paper reports for an application,
// where given; zero fields mean the paper does not break the number out.
// EXPERIMENTS.md compares these against measured values.
type PaperStats struct {
	APICalls      int
	KernelPct     float64
	SyncPct       float64
	UniqueKernels int
	UniqueBlocks  int
	Invocations   int
	Instrs        float64 // paper-scale dynamic instructions
	BytesRead     float64 // paper-scale bytes
	BytesWritten  float64
}

// App is one instantiated benchmark: its program IR and the host driver
// that executes it against a context.
type App struct {
	Name  string
	Suite string
	Paper PaperStats
	// Programs holds the program IR in creation order (needed to finalize
	// CoFluent recordings).
	Programs []*kernel.Program
	// Run drives the application: creates buffers and kernels, enqueues
	// work, and synchronizes, leaving the queue drained.
	Run func(ctx *cl.Context) error
}

// Spec is a registered benchmark: metadata plus its builder.
type Spec struct {
	Name  string
	Suite string
	Paper PaperStats
	// Build instantiates the application at a scale. Builders are
	// deterministic: the same scale yields the same program and driver
	// behaviour.
	Build func(sc Scale) (*App, error)
}

var registry []*Spec

func register(s *Spec) {
	registry = append(registry, s)
}

// All returns the 25 registered benchmarks in Table I / figure order
// (registration order: CompuBench desktop, CompuBench mobile, Sandra,
// Sony Vegas).
func All() []*Spec {
	out := make([]*Spec, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (*Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, names)
}

// Suite names.
const (
	SuiteCompuBenchDesktop = "CompuBench CL 1.2 Desktop"
	SuiteCompuBenchMobile  = "CompuBench CL 1.2 Mobile"
	SuiteSandra            = "SiSoftware Sandra 2014"
	SuiteSonyVegas         = "Sony Vegas Pro 2013"
)
