package workloads

// The nine CompuBench CL 1.2 Mobile applications (Table I).

import (
	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

func init() {
	register(&Spec{
		Name:  "cb-graphics-provence",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 20, Instrs: 60e9},
		Build: buildProvence,
	})
	register(&Spec{
		Name:  "cb-gaussian-buffer",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 2, Instrs: 60e9},
		Build: buildGaussianBuffer,
	})
	register(&Spec{
		Name:  "cb-gaussian-image",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{UniqueKernels: 2, Invocations: 56, Instrs: 3.7e9},
		Build: buildGaussianImage,
	})
	register(&Spec{
		Name:  "cb-histogram-buffer",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 3, Instrs: 45e9},
		Build: buildHistogramBuffer,
	})
	register(&Spec{
		Name:  "cb-histogram-image",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 3, Instrs: 30e9},
		Build: buildHistogramImage,
	})
	register(&Spec{
		Name:  "cb-physics-part-sim-32k",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 76.5, UniqueKernels: 3, Instrs: 250e9},
		Build: buildPartSim32K,
	})
	register(&Spec{
		Name:  "cb-throughput-ao",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 5, Instrs: 150e9},
		Build: buildThroughputAO,
	})
	register(&Spec{
		Name:  "cb-throughput-juliaset",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{APICalls: 703, SyncPct: 25.7, UniqueKernels: 2, Instrs: 160e9},
		Build: buildJuliaset,
	})
	register(&Spec{
		Name:  "cb-vision-facedetect-m",
		Suite: SuiteCompuBenchMobile,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 8, Instrs: 80e9},
		Build: buildFaceDetectMobile,
	})
}

// buildProvence models the Provence scene render: a lighter sibling of
// T-Rex with 20 unique pipelines and smaller framebuffers.
func buildProvence(sc Scale) (*App, error) {
	const nVert, nFrag = 7, 10
	var ks []*kernel.Kernel
	for i := 0; i < nVert; i++ {
		ks = append(ks, newVertexTransformOpt("prov_vertex_"+itoa(i), isa.W8, i%3 == 1))
	}
	for i := 0; i < nFrag; i++ {
		w := isa.W16
		if i%3 == 2 {
			w = isa.W8
		}
		ks = append(ks, newFragShade("prov_frag_"+itoa(i), w))
	}
	ks = append(ks, newBlend("prov_composite", isa.W8),
		newBlur("prov_bloom", isa.W16, 4),
		newStreamScale("prov_tonemap", isa.W8))
	prog, err := asm.Program("cb-graphics-provence", ks...)
	if err != nil {
		return nil, err
	}

	frames := sc.N(310, sc.Invs, 4)
	vertGWS := dim(sc, 512)
	fragGWS := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		geom := h.buffer(vertGWS*12 + 4096)
		tex := h.buffer(1 << 19)
		fb := h.buffer(fragGWS*4 + 4096)
		fb2 := h.buffer(fragGWS*4 + 4096)
		h.upload(geom, 111)
		h.upload(tex, 112)
		p := h.build(prog)
		verts := make([]*cl.Kernel, nVert)
		frags := make([]*cl.Kernel, nFrag)
		for i := range verts {
			verts[i] = h.kernel(p, "prov_vertex_"+itoa(i))
		}
		for i := range frags {
			frags[i] = h.kernel(p, "prov_frag_"+itoa(i))
		}
		comp := h.kernel(p, "prov_composite")
		bloom := h.kernel(p, "prov_bloom")
		tone := h.kernel(p, "prov_tonemap")

		for f := 0; f < frames; f++ {
			taps := loops(sc, 2, 1)
			if (f/35)%2 == 1 {
				taps = loops(sc, 5, 2)
			}
			for i := f % 3; i < nVert; i += 3 {
				h.dispatch(verts[i], vertGWS,
					[]uint32{uint32(90 + f%11), uint32(60 + i), uint32(30 + i)}, geom, geom)
			}
			for i := f % 3; i < nFrag; i += 3 {
				h.dispatch(frags[i], fragGWS, []uint32{taps, uint32(160 + f%30)}, tex, fb)
			}
			h.dispatch(bloom, fragGWS, []uint32{loops(sc, 2, 1)}, fb, fb2)
			h.dispatch(comp, fragGWS, []uint32{loops(sc, 2, 1), uint32(96 + f%64), 64}, fb, fb2, fb)
			if f%2 == 1 {
				h.dispatch(tone, fragGWS, []uint32{loops(sc, 1, 1), 3, 9}, fb, fb)
			}
			h.finish()
			h.query(2)
		}
		h.read(fb, 4096)
		return h.done()
	}
	return &App{Name: "cb-graphics-provence", Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// gaussianApp is shared by the buffer and image Gaussian-blur variants;
// the image variant synchronizes with image reads/copies (two of the
// seven sync calls) and runs far fewer, larger invocations — it is the
// paper's shortest benchmark by kernel invocations and its worst
// cross-architecture case.
func gaussianApp(name string, image bool, sc Scale) (*App, error) {
	prog, err := asm.Program(name,
		newBlur(name+"_h", isa.W16, 4),
		newBlur(name+"_v", isa.W8, 4))
	if err != nil {
		return nil, err
	}

	var frames, gws int
	if image {
		frames = sc.N(28, sc.Invs, 2) // 2 invocations per frame ⇒ ~56
		gws = dim(sc, 4096)
	} else {
		frames = sc.N(800, sc.Invs, 4)
		gws = dim(sc, 1024)
	}

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		src := h.buffer(gws*4 + 16384)
		tmp := h.buffer(gws*4 + 16384)
		dst := h.buffer(gws*4 + 16384)
		h.upload(src, 121)
		p := h.build(prog)
		kh := h.kernel(p, name+"_h")
		kv := h.kernel(p, name+"_v")

		for f := 0; f < frames; f++ {
			radius := loops(sc, 4, 2)
			if image {
				radius = loops(sc, 40, 6) // fewer but much longer invocations
			} else if (f/70)%2 == 1 {
				radius = loops(sc, 9, 3)
			}
			h.dispatch(kh, gws, []uint32{radius}, src, tmp)
			h.dispatch(kv, gws, []uint32{radius}, tmp, dst)
			if image {
				h.readImage(dst, 4096)
				h.copyImg(dst, src, 8192)
			} else {
				h.copyBuf(dst, src, 8192)
			}
		}
		h.read(dst, 4096)
		return h.done()
	}
	return &App{Name: name, Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

func buildGaussianBuffer(sc Scale) (*App, error) { return gaussianApp("cb-gaussian-buffer", false, sc) }
func buildGaussianImage(sc Scale) (*App, error)  { return gaussianApp("cb-gaussian-image", true, sc) }

// histogramApp is shared by the buffer and image histogram variants.
func histogramApp(name string, image bool, sc Scale) (*App, error) {
	countW := isa.W16
	if image {
		countW = isa.W8
	}
	prog, err := asm.Program(name,
		newHistogram(name+"_count", countW, 4),
		newReduce(name+"_merge", isa.W8),
		newStreamScale(name+"_normalize", isa.W16))
	if err != nil {
		return nil, err
	}

	frames := sc.N(600, sc.Invs, 4)
	if image {
		frames = sc.N(380, sc.Invs, 4)
	}
	gws := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		data := h.buffer(1 << 19)
		hist := h.buffer(1 << 14)
		h.upload(data, 131)
		p := h.build(prog)
		count := h.kernel(p, name+"_count")
		merge := h.kernel(p, name+"_merge")
		norm := h.kernel(p, name+"_normalize")

		for f := 0; f < frames; f++ {
			per := loops(sc, 6, 2)
			if (f/60)%2 == 1 {
				per = loops(sc, 11, 3) // high-entropy segment
			}
			h.dispatch(count, gws, []uint32{per}, data, hist)
			if f%4 == 3 {
				h.dispatch(merge, dim(sc, 128), []uint32{loops(sc, 2, 1)}, hist, hist)
				h.dispatch(norm, dim(sc, 256), []uint32{loops(sc, 1, 1), 3, 1}, hist, hist)
			}
			if image {
				h.readImage(hist, 1024)
			} else {
				h.finish()
			}
		}
		h.read(hist, 1024)
		return h.done()
	}
	return &App{Name: name, Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

func buildHistogramBuffer(sc Scale) (*App, error) {
	return histogramApp("cb-histogram-buffer", false, sc)
}
func buildHistogramImage(sc Scale) (*App, error) { return histogramApp("cb-histogram-image", true, sc) }

// buildPartSim32K models the 32K-particle simulation. Its host sets
// arguments once and then streams bare enqueues — the paper's highest
// kernel-call share at 76.5% of API calls.
func buildPartSim32K(sc Scale) (*App, error) {
	prog, err := asm.Program("cb-physics-part-sim-32k",
		newNBody("psim32_force", isa.W8),
		newStreamScale("psim32_integrate", isa.W16),
		newJacobi("psim32_collide", isa.W8))
	if err != nil {
		return nil, err
	}

	steps := sc.N(2500, sc.Invs, 4)
	gws := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		pos := h.buffer(gws*4 + 8192)
		force := h.buffer(gws*4 + 8192)
		h.upload(pos, 141)
		p := h.build(prog)
		fk := h.kernel(p, "psim32_force")
		h.bind(fk, 0, pos)
		h.bind(fk, 1, force)
		integ := h.kernel(p, "psim32_integrate")
		h.bind(integ, 0, force)
		h.bind(integ, 1, pos)
		collide := h.kernel(p, "psim32_collide")
		h.bind(collide, 0, pos)
		h.bind(collide, 1, pos)

		// Arguments are set once; the stepping loop is almost pure
		// enqueue traffic.
		h.set(fk, 0, loops(sc, 6, 2))
		h.set(integ, 0, loops(sc, 1, 1))
		h.set(integ, 1, 1)
		h.set(integ, 2, 9)
		h.set(collide, 0, loops(sc, 1, 1))
		h.set(collide, 1, 8)
		for s := 0; s < steps; s++ {
			if s == steps/3 {
				h.set(fk, 0, loops(sc, 10, 3)) // mid-run clustering phase
			}
			if s == 2*steps/3 {
				h.set(fk, 0, loops(sc, 5, 2))
			}
			h.enqueue(fk, gws)
			h.enqueue(integ, gws)
			if s%3 == 2 {
				h.enqueue(collide, gws)
			}
			if s%2 == 1 {
				h.query(1) // light status polling
			}
			if s%16 == 15 {
				h.flush()
			}
		}
		h.finish()
		h.read(pos, 4096)
		return h.done()
	}
	return &App{Name: "cb-physics-part-sim-32k", Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildThroughputAO models the ambient-occlusion raycaster.
func buildThroughputAO(sc Scale) (*App, error) {
	prog, err := asm.Program("cb-throughput-ao",
		newRaycastAO("ao_primary", isa.W16),
		newRaycastAO("ao_bounce", isa.W8),
		newRaycastAO("ao_sky", isa.W8),
		newStreamScale("ao_resolve", isa.W16),
		newBlur("ao_denoise", isa.W8, 4))
	if err != nil {
		return nil, err
	}

	tiles := sc.N(520, sc.Invs, 4)
	gws := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		scene := h.buffer(1 << 19)
		out := h.buffer(gws*4 + 4096)
		h.upload(scene, 151)
		p := h.build(prog)
		prim := h.kernel(p, "ao_primary")
		bounce := h.kernel(p, "ao_bounce")
		sky := h.kernel(p, "ao_sky")
		resolve := h.kernel(p, "ao_resolve")
		denoise := h.kernel(p, "ao_denoise")

		for t := 0; t < tiles; t++ {
			samples := loops(sc, 8, 2)
			if (t/100)%2 == 1 {
				samples = loops(sc, 14, 3) // interior tiles need more rays
			}
			h.dispatch(prim, gws, []uint32{samples}, scene, out)
			h.dispatch(bounce, gws, []uint32{loops(sc, 3, 1)}, scene, out)
			if t%3 == 2 {
				h.dispatch(sky, gws, []uint32{loops(sc, 2, 1)}, scene, out)
			}
			if t%2 == 1 {
				h.dispatch(resolve, gws, []uint32{loops(sc, 1, 1), 2, 1}, out, out)
			}
			if t%8 == 7 {
				h.dispatch(denoise, gws, []uint32{loops(sc, 2, 1)}, out, out)
			}
			h.finish()
		}
		h.read(out, 4096)
		return h.done()
	}
	return &App{Name: "cb-throughput-ao", Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildJuliaset models the Julia-set fractal: the paper's smallest API
// stream (703 calls) with its highest synchronization share (25.7%) —
// the host reads the image back after almost every dispatch.
func buildJuliaset(sc Scale) (*App, error) {
	prog, err := asm.Program("cb-throughput-juliaset",
		newJulia("julia_iterate", isa.W16),
		newStreamScale("julia_colorize", isa.W8))
	if err != nil {
		return nil, err
	}

	zooms := sc.N(88, sc.Invs, 3)
	gws := dim(sc, 4096)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		img := h.buffer(gws*4 + 4096)
		p := h.build(prog)
		jk := h.kernel(p, "julia_iterate")
		ck := h.kernel(p, "julia_colorize")

		for z := 0; z < zooms; z++ {
			maxIter := loops(sc, 50, 8)
			if (z/22)%2 == 1 {
				maxIter = loops(sc, 120, 16) // deep-zoom phase iterates longer
			}
			h.dispatch(jk, gws, []uint32{maxIter, uint32(0x3000 + z*13)}, img)
			h.read(img, 2048) // sync after nearly every dispatch
			if z%4 == 3 {
				h.dispatch(ck, gws, []uint32{loops(sc, 1, 1), 5, 1}, img, img)
				h.wait()
				h.read(img, 1024)
			}
		}
		return h.done()
	}
	return &App{Name: "cb-throughput-juliaset", Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildFaceDetectMobile is the mobile face detector: a shallower cascade
// over smaller frames than the desktop variant.
func buildFaceDetectMobile(sc Scale) (*App, error) {
	stages := 300
	if sc.Iters < 1 {
		stages = int(300 * sc.Iters)
		if stages < 16 {
			stages = 16
		}
	}
	const scales = 6
	var ks []*kernel.Kernel
	for s := 0; s < scales; s++ {
		w := isa.W16
		if s%3 == 2 {
			w = isa.W8
		}
		ks = append(ks, newCascade("facem_cascade_s"+itoa(s), w, stages))
	}
	ks = append(ks,
		newReduce("facem_integral", isa.W8),
		newStreamScale("facem_pyramid", isa.W8))
	prog, err := asm.Program("cb-vision-facedetect-m", ks...)
	if err != nil {
		return nil, err
	}

	frames := sc.N(420, sc.Invs, 4)
	gws := dim(sc, 512)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		img := h.buffer(1 << 17)
		out := h.buffer(gws*4 + 4096)
		h.upload(img, 161)
		p := h.build(prog)
		cascades := make([]*cl.Kernel, scales)
		for s := range cascades {
			cascades[s] = h.kernel(p, "facem_cascade_s"+itoa(s))
		}
		integral := h.kernel(p, "facem_integral")
		pyramid := h.kernel(p, "facem_pyramid")

		for f := 0; f < frames; f++ {
			h.dispatch(integral, dim(sc, 256), []uint32{loops(sc, 2, 1)}, img, out)
			h.dispatch(pyramid, gws, []uint32{loops(sc, 2, 1), 3, uint32(f)}, img, img)
			for s, k := range cascades {
				thresh := uint32(0xD1800000) + uint32(s)*0x00400000 + uint32(f%8)*0x00100000
				h.dispatch(k, gws, []uint32{thresh}, img, out)
			}
			h.finish()
		}
		h.read(out, 2048)
		return h.done()
	}
	return &App{Name: "cb-vision-facedetect-m", Suite: SuiteCompuBenchMobile,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}
