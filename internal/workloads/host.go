package workloads

import (
	"fmt"
	"math/rand"

	"gtpin/internal/cl"
	"gtpin/internal/kernel"
)

// host wraps a cl.Context for terse driver code: operations record the
// first error and subsequent calls become no-ops, so drivers read as
// straight-line OpenCL host code.
type host struct {
	ctx *cl.Context
	q   *cl.Queue
	err error
}

func newHost(ctx *cl.Context) *host {
	ctx.EmitSetupCalls()
	ctx.QueryDeviceInfo()
	h := &host{ctx: ctx}
	h.q = ctx.CreateQueue()
	return h
}

func (h *host) fail(err error) {
	if h.err == nil && err != nil {
		h.err = err
	}
}

// buffer allocates a device buffer.
func (h *host) buffer(size int) *cl.Buffer {
	if h.err != nil {
		return nil
	}
	b, err := h.ctx.CreateBuffer(size)
	h.fail(err)
	return b
}

// upload fills a buffer with seeded pseudo-random 32-bit data through
// EnqueueWriteBuffer, so the data is captured in recordings.
func (h *host) upload(b *cl.Buffer, seed int64) {
	if h.err != nil {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, b.Size())
	for i := 0; i+4 <= len(data); i += 4 {
		v := rng.Uint32()
		data[i], data[i+1], data[i+2], data[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	h.fail(h.q.EnqueueWriteBuffer(b, 0, data))
}

// build creates and builds a program.
func (h *host) build(p *kernel.Program) *cl.Program {
	if h.err != nil {
		return nil
	}
	prog := h.ctx.CreateProgram(p)
	h.fail(prog.Build())
	return prog
}

// kernel creates a kernel object.
func (h *host) kernel(prog *cl.Program, name string) *cl.Kernel {
	if h.err != nil {
		return nil
	}
	k, err := prog.CreateKernel(name)
	h.fail(err)
	return k
}

// set sets a scalar argument.
func (h *host) set(k *cl.Kernel, i int, v uint32) {
	if h.err != nil {
		return
	}
	h.fail(k.SetArg(i, v))
}

// bind binds a buffer to a surface slot.
func (h *host) bind(k *cl.Kernel, s int, b *cl.Buffer) {
	if h.err != nil {
		return
	}
	h.fail(k.SetBuffer(s, b))
}

// enqueue dispatches a kernel.
func (h *host) enqueue(k *cl.Kernel, gws int) {
	if h.err != nil {
		return
	}
	h.fail(h.q.EnqueueNDRangeKernel(k, gws))
}

// dispatch sets every scalar argument and surface binding, then enqueues
// the kernel — the canonical OpenCL host pattern of re-supplying all
// arguments before each invocation, which is what gives real applications
// their ~15% kernel-call share (Figure 3a).
func (h *host) dispatch(k *cl.Kernel, gws int, scalars []uint32, bufs ...*cl.Buffer) {
	for i, v := range scalars {
		h.set(k, i, v)
	}
	for s, b := range bufs {
		h.bind(k, s, b)
	}
	h.enqueue(k, gws)
}

// finish drains the queue (clFinish).
func (h *host) finish() {
	if h.err != nil {
		return
	}
	h.fail(h.q.Finish())
}

// flush drains via clFlush.
func (h *host) flush() {
	if h.err != nil {
		return
	}
	h.fail(h.q.Flush())
}

// wait drains via clWaitForEvents.
func (h *host) wait() {
	if h.err != nil {
		return
	}
	h.fail(h.q.WaitForEvents())
}

// read drains via clEnqueueReadBuffer, discarding the data host-side.
func (h *host) read(b *cl.Buffer, n int) {
	if h.err != nil {
		return
	}
	if n > b.Size() {
		n = b.Size()
	}
	h.fail(h.q.EnqueueReadBuffer(b, 0, make([]byte, n)))
}

// readImage drains via clEnqueueReadImage.
func (h *host) readImage(b *cl.Buffer, n int) {
	if h.err != nil {
		return
	}
	if n > b.Size() {
		n = b.Size()
	}
	h.fail(h.q.EnqueueReadImage(b, 0, make([]byte, n)))
}

// copyBuf drains via clEnqueueCopyBuffer.
func (h *host) copyBuf(src, dst *cl.Buffer, n int) {
	if h.err != nil {
		return
	}
	if n > src.Size() {
		n = src.Size()
	}
	if n > dst.Size() {
		n = dst.Size()
	}
	h.fail(h.q.EnqueueCopyBuffer(src, dst, 0, 0, n))
}

// copyImg drains via clEnqueueCopyImageToBuffer.
func (h *host) copyImg(src, dst *cl.Buffer, n int) {
	if h.err != nil {
		return
	}
	if n > src.Size() {
		n = src.Size()
	}
	if n > dst.Size() {
		n = dst.Size()
	}
	h.fail(h.q.EnqueueCopyImageToBuffer(src, dst, 0, 0, n))
}

// query emits device-info "other" traffic.
func (h *host) query(n int) {
	for i := 0; i < n && h.err == nil; i++ {
		if i%2 == 0 {
			h.ctx.QueryDeviceInfo()
		} else {
			h.ctx.QueryEventProfilingInfo()
		}
	}
}

// releaseAll emits release calls for the given objects (cleanup traffic).
func (h *host) release(bufs []*cl.Buffer, kernels []*cl.Kernel, progs []*cl.Program) {
	if h.err != nil {
		return
	}
	for _, k := range kernels {
		k.Release()
	}
	for _, b := range bufs {
		h.ctx.ReleaseBuffer(b)
	}
	for _, p := range progs {
		p.Release()
	}
}

// done returns the accumulated error, ensuring the queue was drained.
func (h *host) done() error {
	if h.err != nil {
		return h.err
	}
	if h.q.Pending() > 0 {
		return fmt.Errorf("workload finished with %d undrained enqueues", h.q.Pending())
	}
	return nil
}
