package workloads

import (
	"sync"
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/isa"
)

// Paper-shape tests: the characterization signatures the paper reports
// for specific applications must hold for our reconstructions — at small
// scale, since the shapes are scale-invariant.

var (
	shapeOnce sync.Once
	shapeRes  map[string]*Result
)

func shapeResults(t *testing.T) map[string]*Result {
	t.Helper()
	shapeOnce.Do(func() {
		shapeRes = make(map[string]*Result)
		cfg := device.IvyBridgeHD4000()
		for _, spec := range All() {
			res, err := Run(spec, ScaleSmall, cfg, 1)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			shapeRes[spec.Name] = res
		}
	})
	return shapeRes
}

func kernelPct(res *Result) float64 {
	k, _, _ := res.Tracer.BreakdownPct()
	return k
}

func syncPct(res *Result) float64 {
	_, s, _ := res.Tracer.BreakdownPct()
	return s
}

// Figure 3a shapes.
func TestAPIBreakdownShapes(t *testing.T) {
	rs := shapeResults(t)

	// throughput-bitcoin has the lowest kernel-call share (paper: 4.5%).
	btc := kernelPct(rs["cb-throughput-bitcoin"])
	if btc > 12 {
		t.Errorf("bitcoin kernel%% = %.1f, expected the suite's lowest (paper 4.5%%)", btc)
	}
	// part-sim-32k has the highest (paper: 76.5%).
	ps32 := kernelPct(rs["cb-physics-part-sim-32k"])
	if ps32 < 50 {
		t.Errorf("part-sim-32k kernel%% = %.1f, expected the highest (paper 76.5%%)", ps32)
	}
	for name, res := range rs {
		if name == "cb-physics-part-sim-32k" {
			continue
		}
		if k := kernelPct(res); k >= ps32 {
			t.Errorf("%s kernel%% %.1f exceeds part-sim-32k's %.1f", name, k, ps32)
		}
		if k := kernelPct(res); k < btc && name != "cb-throughput-bitcoin" {
			t.Errorf("%s kernel%% %.1f below bitcoin's %.1f", name, k, btc)
		}
	}
	// juliaset has the highest synchronization share (paper: 25.7%).
	julia := syncPct(rs["cb-throughput-juliaset"])
	if julia < 15 {
		t.Errorf("juliaset sync%% = %.1f, expected the highest (paper 25.7%%)", julia)
	}
	for name, res := range rs {
		if s := syncPct(res); s > julia {
			t.Errorf("%s sync%% %.1f exceeds juliaset's %.1f", name, s, julia)
		}
	}
}

// Figure 3b shapes.
func TestStructureShapes(t *testing.T) {
	rs := shapeResults(t)
	// Desktop facedetect has the most unique basic blocks (paper ~11500).
	blocks := func(res *Result) int {
		n := 0
		for _, ki := range res.GTPin.Kernels() {
			n += ki.NumBlocks
		}
		return n
	}
	fd := blocks(rs["cb-vision-facedetect"])
	for name, res := range rs {
		if b := blocks(res); b > fd {
			t.Errorf("%s has %d blocks, more than facedetect's %d", name, b, fd)
		}
	}
	// T-Rex has the most unique kernels (paper max 50).
	trex := len(rs["cb-graphics-t-rex"].GTPin.Kernels())
	if trex < 30 {
		t.Errorf("t-rex kernels = %d, expected the suite maximum", trex)
	}
	// Gaussian apps have the fewest (paper min 1-2).
	if g := len(rs["cb-gaussian-image"].GTPin.Kernels()); g != 2 {
		t.Errorf("gaussian-image kernels = %d, want 2", g)
	}
}

// Figure 3c shapes.
func TestDynamicWorkShapes(t *testing.T) {
	rs := shapeResults(t)
	// tv-l1 has the most kernel invocations (paper max 18157).
	tvl1 := len(rs["cb-vision-tv-l1-of"].Profile.Invocations)
	for name, res := range rs {
		if n := len(res.Profile.Invocations); n > tvl1 {
			t.Errorf("%s has %d invocations, more than tv-l1's %d", name, n, tvl1)
		}
	}
	// gaussian-image has the fewest (paper: ~56, the shortest benchmark).
	gi := len(rs["cb-gaussian-image"].Profile.Invocations)
	for name, res := range rs {
		if n := len(res.Profile.Invocations); n < gi {
			t.Errorf("%s has %d invocations, fewer than gaussian-image's %d", name, n, gi)
		}
	}
}

// Figure 4a shapes.
func TestInstructionMixShapes(t *testing.T) {
	rs := shapeResults(t)
	// proc-gpu is computation-dominated (paper: 91%).
	agg := rs["sandra-proc-gpu"].Profile.Aggregate()
	comp := 100 * float64(agg.ByCategory[isa.CatComputation]) / float64(agg.Instrs)
	if comp < 85 {
		t.Errorf("proc-gpu computation%% = %.1f, want ≥85 (paper 91%%)", comp)
	}
	// Crypto apps are logic-dominated (table lookups + xors).
	for _, name := range []string{"sandra-crypt-aes128", "sandra-crypt-aes256"} {
		a := rs[name].Profile.Aggregate()
		logic := 100 * float64(a.ByCategory[isa.CatLogic]) / float64(a.Instrs)
		if logic < 40 {
			t.Errorf("%s logic%% = %.1f, expected dominant", name, logic)
		}
	}
}

// Figure 4b shapes.
func TestSIMDShapes(t *testing.T) {
	rs := shapeResults(t)
	var w16, w8, w4, w2 uint64
	var total uint64
	appsUsingW4 := 0
	for _, res := range rs {
		agg := res.Profile.Aggregate()
		w16 += agg.ByWidth[isa.WidthIndex(isa.W16)]
		w8 += agg.ByWidth[isa.WidthIndex(isa.W8)]
		w4 += agg.ByWidth[isa.WidthIndex(isa.W4)]
		w2 += agg.ByWidth[isa.WidthIndex(isa.W2)]
		total += agg.Instrs
		if agg.ByWidth[isa.WidthIndex(isa.W4)] > 0 {
			appsUsingW4++
		}
	}
	// Paper: 16- and 8-wide dominate (52% + 45%); 2-wide never used.
	if frac := float64(w16+w8) / float64(total); frac < 0.85 {
		t.Errorf("W16+W8 share = %.2f, expected dominant", frac)
	}
	if w2 != 0 {
		t.Errorf("W2 instructions executed: %d (paper: never used)", w2)
	}
	// Paper: 4-wide instructions are rare (<0.1% overall) and appear in
	// only 6 applications.
	if w4 == 0 {
		t.Error("no W4 instructions; the paper reports a handful of apps using them")
	}
	if frac := float64(w4) / float64(total); frac > 0.01 {
		t.Errorf("W4 share = %.4f, expected rare", frac)
	}
	if appsUsingW4 < 3 || appsUsingW4 > 10 {
		t.Errorf("%d apps use W4; the paper reports 6", appsUsingW4)
	}
}

// Figure 4c shapes.
func TestMemoryShapes(t *testing.T) {
	rs := shapeResults(t)
	// Crypto reads the most bytes.
	aesRead := rs["sandra-crypt-aes256"].Profile.Aggregate().BytesRead
	reads := 0
	for _, res := range rs {
		if res.Profile.Aggregate().BytesRead > aesRead {
			reads++
		}
	}
	if reads > 2 {
		t.Errorf("%d applications out-read aes256; the crypto pair should lead", reads)
	}
	// Every Sony Vegas region writes more than it reads; region 5 has the
	// extreme ratio.
	r5 := ratioWR(rs["sonyvegas-proj-r5"])
	for i := 1; i <= 7; i++ {
		name := "sonyvegas-proj-r" + itoa(i)
		r := ratioWR(rs[name])
		if r <= 1 {
			t.Errorf("%s writes/reads = %.2f, expected > 1", name, r)
		}
		if r > r5 {
			t.Errorf("%s ratio %.1f exceeds region 5's %.1f", name, r, r5)
		}
	}
	if r5 < 10 {
		t.Errorf("region 5 write amplification = %.1f, expected extreme (paper 525X)", r5)
	}
	// Most non-Vegas applications read more than they write (paper:
	// average 1110 GB read vs 105 GB written).
	wins := 0
	for name, res := range rs {
		if len(name) > 9 && name[:9] == "sonyvegas" {
			continue
		}
		if ratioWR(res) < 1 {
			wins++
		}
	}
	if wins < 12 {
		t.Errorf("only %d non-Vegas applications are read-dominated", wins)
	}
}

func ratioWR(res *Result) float64 {
	agg := res.Profile.Aggregate()
	if agg.BytesRead == 0 {
		return float64(agg.BytesWritten)
	}
	return float64(agg.BytesWritten) / float64(agg.BytesRead)
}
