package workloads

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/par"
	"gtpin/internal/runstate"
)

// Supervision defaults: panicked or transiently-failed units are
// restarted up to DefaultMaxRestarts times with capped exponential
// backoff modelled in virtual nanoseconds — never slept, matching the
// cl resilience layer, so supervised sweeps stay deterministic.
const (
	DefaultMaxRestarts   = 2
	RestartBackoffBaseNs = 1e6  // 1ms modelled delay before the first restart
	RestartBackoffCapNs  = 64e6 // doubling, capped at 64ms
)

// Unit is one schedulable work item of a characterization sweep: an
// application profiled on one device configuration at one scale, with
// one trial seed and one fault model. Its Key identifies it across
// processes, which is what lets a resumed sweep recognize work the
// previous run completed.
type Unit struct {
	Spec      *Spec
	Scale     Scale
	Cfg       device.Config
	TrialSeed int64
	Faults    *FaultOptions
}

// Key returns the stable journal identity of the unit:
// app|device@freq|scale|trial|fault-signature.
func (u Unit) Key() string {
	return fmt.Sprintf("%s|%s@%dMHz|%s|t%d|%s",
		u.Spec.Name, u.Cfg.Name, u.Cfg.FreqMHz, u.Scale.Name, u.TrialSeed, faultSig(u.Faults))
}

// faultSig folds the fault model into the unit key, so a sweep rerun
// with different rates, seed, or watchdog never resumes from artifacts
// of the old configuration.
func faultSig(fo *FaultOptions) string {
	if fo == nil {
		return "clean"
	}
	r := fo.Rates
	return fmt.Sprintf("s%d-h%g-n%g-j%g-c%g-w%d", fo.Seed, r.Hang, r.Send, r.JIT, r.Corrupt, fo.Watchdog)
}

// Outcome is one unit's terminal state after a pool run.
type Outcome struct {
	Unit     Unit
	Artifact *Artifact // nil only when the unit failed or never ran
	// Result is the live pipeline result; nil when the unit was
	// resumed from a journaled artifact instead of executed.
	Result   *Result
	Err      error
	Attempts int  // execution attempts consumed, restarts included
	Resumed  bool // satisfied from the journal without executing
	// BackoffNs is the modelled supervision backoff accumulated across
	// restarts, in virtual nanoseconds.
	BackoffNs float64
	// WallNs is the wall-clock time the unit spent settling (resume
	// lookup or supervised execution, restarts included) — what the
	// service's adaptive Retry-After hint is derived from.
	WallNs int64
}

// Ran reports whether the unit reached a usable artifact.
func (o *Outcome) Ran() bool { return o.Artifact != nil }

// PoolOptions configures a supervised sweep.
type PoolOptions struct {
	// State enables journaling and artifact persistence; nil runs the
	// pool purely in memory.
	State *runstate.Dir
	// Resume skips units whose completion (with a verifiable artifact)
	// the journal already records. Requires State.
	Resume bool
	// MaxRestarts overrides the per-unit restart budget; negative
	// disables restarts entirely, zero means DefaultMaxRestarts.
	MaxRestarts int
	// SaveRecordings additionally persists each unit's CoFluent
	// recording, so replay-based validations can resume too.
	SaveRecordings bool
	// OnOutcome, when set, observes each unit's outcome as it settles.
	// It may be called concurrently from worker goroutines.
	OnOutcome func(Outcome)
	// Workers bounds the sweep shards executing concurrently; 0 uses
	// GOMAXPROCS, 1 forces serial execution. Outcomes are always settled
	// into unit-index order, so reports derived from them are
	// byte-identical across worker counts.
	Workers int
	// ReplayCache shares instrumented-replay results across units that
	// differ only by trial seed; nil creates a fresh per-pool cache.
	ReplayCache *ReplayCache
	// DisableReplayCache forces every unit to replay from scratch — the
	// pre-optimization baseline the benchmark harness measures against.
	// Artifacts are byte-identical either way.
	DisableReplayCache bool
	// UnitTimeout bounds each execution attempt's wall-clock time. A
	// unit that exceeds it is abandoned (its worker goroutine keeps
	// running, detached, but the outcome settles) and fails with
	// faults.ErrUnitTimeout — a hung unit trips the fault taxonomy
	// instead of wedging the pool. 0 disables the per-attempt bound.
	UnitTimeout time.Duration
}

// poolTestHook, when non-nil, runs at the start of every execution
// attempt — the crash-recovery suite uses it to inject worker panics at
// chosen units and attempts.
var poolTestHook func(u Unit, attempt int)

// RunPool executes units as a supervised worker pool over internal/par.
//
// Each unit is journaled started before execution and completed/failed
// after; its artifact is made durable (atomic write + fsync) before the
// completion record, so a crash between the two re-executes the unit
// rather than trusting a phantom artifact. Worker panics are recovered
// and converted to typed failures (faults.ErrWorkerPanic); panicked and
// transiently-failed units are restarted within a per-unit budget with
// capped backoff in virtual time. Unit failures never abort the sweep —
// they settle into Outcomes — and cancelling ctx stops dispatching new
// units and promptly abandons in-flight attempts (their outcomes settle
// with the context error and no terminal journal record, so a resume
// re-executes them), exactly the shape a resumable, cancellable sweep
// needs.
//
// When ctx carries a deadline or PoolOptions.UnitTimeout is set,
// attempts are additionally time-bounded: a unit still executing when
// its bound expires settles with a faults.ErrUnitTimeout-classified
// failure instead of wedging the pool (see runAttempt).
func RunPool(ctx context.Context, units []Unit, opts PoolOptions) ([]Outcome, error) {
	if opts.Resume && opts.State == nil {
		return nil, errors.New("workloads: PoolOptions.Resume requires a state dir")
	}
	maxRestarts := opts.MaxRestarts
	switch {
	case maxRestarts == 0:
		maxRestarts = DefaultMaxRestarts
	case maxRestarts < 0:
		maxRestarts = 0
	}
	var completed map[string]runstate.Record
	if opts.Resume {
		completed = opts.State.Recovered.Completed()
	}
	rc := opts.ReplayCache
	if rc == nil && !opts.DisableReplayCache {
		rc = NewReplayCache()
	}
	if opts.DisableReplayCache {
		rc = nil
	}

	outcomes := make([]Outcome, len(units))
	for i := range units {
		outcomes[i].Unit = units[i]
	}
	err := par.ForEachN(ctx, len(units), opts.Workers, func(i int) error {
		o := &outcomes[i]
		start := time.Now()
		mUnitsInflight.Inc()
		runUnit(ctx, o, completed, opts, maxRestarts, rc)
		mUnitsInflight.Dec()
		o.WallNs = time.Since(start).Nanoseconds()
		observeOutcome(o, start)
		if opts.OnOutcome != nil {
			opts.OnOutcome(*o)
		}
		// Unit failures are outcomes, not pool errors; only a journal
		// I/O failure below would have aborted via panic-free return.
		return nil
	})
	return outcomes, err
}

// runUnit drives one unit to a settled outcome: resume, or supervised
// execution with journaling.
func runUnit(ctx context.Context, o *Outcome, completed map[string]runstate.Record, opts PoolOptions, maxRestarts int, rc *ReplayCache) {
	key := o.Unit.Key()

	// Resume: a journaled completion with a digest-verified artifact
	// satisfies the unit without executing.
	if rec, ok := completed[key]; ok {
		data, err := opts.State.ReadArtifact(key, rec.Digest)
		if err == nil {
			if art, derr := DecodeArtifact(data); derr == nil {
				o.Artifact, o.Resumed, o.Attempts = art, true, rec.Attempt
				return
			}
		}
		// Missing, torn, or stale artifact: fall through and re-execute
		// — never surface unverifiable data.
	}

	if opts.State != nil {
		if err := opts.State.Journal.Started(key); err != nil {
			o.Err = err
			return
		}
	}

	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = runAttempt(ctx, o.Unit, attempt, rc, opts.UnitTimeout)
		o.Attempts = attempt + 1
		if err == nil || !restartable(err) || attempt >= maxRestarts || ctx.Err() != nil {
			break
		}
		// Capped exponential backoff in virtual time, like the cl
		// resilience layer: modelled, never slept.
		d := RestartBackoffBaseNs
		for r := 0; r < attempt && d < RestartBackoffCapNs; r++ {
			d *= 2
		}
		if d > RestartBackoffCapNs {
			d = RestartBackoffCapNs
		}
		o.BackoffNs += d
	}

	if err != nil {
		o.Err = err
		// A cancelled unit is a simulated crash: leave it in-flight
		// (started without a terminal record) so a resume re-executes
		// it, and don't journal a terminal state.
		if opts.State != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			class := faults.Kind(err)
			if class == "" {
				class = faults.ClassOf(err).String()
			}
			if jerr := opts.State.Journal.Failed(key, o.Attempts, err.Error(), class); jerr != nil {
				o.Err = errors.Join(err, jerr)
			}
		}
		return
	}

	o.Result = res
	o.Artifact = NewArtifact(res)
	if opts.State != nil {
		if opts.SaveRecordings {
			if werr := opts.State.WriteBlob(key, ".rec", res.Recording.Save); werr != nil {
				o.Err = werr
				return
			}
			o.Artifact.HasRecording = true
		}
		data, merr := o.Artifact.Encode()
		if merr != nil {
			o.Err = merr
			return
		}
		digest, werr := opts.State.WriteArtifact(key, data)
		if werr != nil {
			o.Err = werr
			return
		}
		if jerr := opts.State.Journal.Completed(key, digest, o.Attempts); jerr != nil {
			o.Err = jerr
		}
	}
}

// runAttempt executes one attempt, bounded in wall-clock time when a
// per-unit timeout applies or the context can end (cancellation or a
// deadline). On the bounded path the attempt runs in its own goroutine
// so a hung or long-running unit can be abandoned: the goroutine keeps
// running (Go cannot kill it) but its result is discarded and the unit
// settles with a classified error — faults.ErrUnitTimeout for an
// expired per-unit budget, the context's own error (additionally marked
// ErrUnitTimeout when the context died of its deadline) for an expired
// sweep deadline, and context.Canceled for a cancelled sweep. Threading
// cancellation through the dispatch itself is what makes a service-side
// job cancel (DELETE /api/v1/jobs/{id}) take effect promptly instead of
// waiting for the in-flight unit to finish. The unbounded path — only
// reachable with an uncancellable context and no timeout — is
// byte-for-byte the pre-existing inline call.
func runAttempt(ctx context.Context, u Unit, attempt int, rc *ReplayCache, timeout time.Duration) (*Result, error) {
	if timeout <= 0 && ctx.Done() == nil {
		return runSupervised(u, attempt, rc)
	}
	type attemptResult struct {
		res *Result
		err error
	}
	ch := make(chan attemptResult, 1)
	go func() {
		res, err := runSupervised(u, attempt, rc)
		ch <- attemptResult{res, err}
	}()
	var expire <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		expire = tm.C
	}
	select {
	case r := <-ch:
		return r.res, r.err
	case <-expire:
		return nil, fmt.Errorf("workloads: unit %s attempt %d: %w after %v (worker abandoned)",
			u.Key(), attempt, faults.ErrUnitTimeout, timeout)
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// Sweep deadline: carry both the taxonomy sentinel (for
			// failure tables) and the context error (so the journal
			// leaves the unit in-flight for a resume with more time).
			return nil, fmt.Errorf("workloads: unit %s attempt %d abandoned at sweep deadline: %w: %w",
				u.Key(), attempt, faults.ErrUnitTimeout, ctx.Err())
		}
		return nil, fmt.Errorf("workloads: unit %s attempt %d abandoned: %w", u.Key(), attempt, ctx.Err())
	}
}

// runSupervised executes one attempt with panic isolation: a panicking
// worker is converted into a typed, classified error carrying the panic
// value and stack, so one bad unit can never take down the sweep.
func runSupervised(u Unit, attempt int, rc *ReplayCache) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("workloads: unit %s attempt %d: %w: %v\n%s",
				u.Key(), attempt, faults.ErrWorkerPanic, r, debug.Stack())
		}
	}()
	if hook := poolTestHook; hook != nil {
		hook(u, attempt)
	}
	return runPipeline(u.Spec, u.Scale, u.Cfg, u.TrialSeed, u.Faults, rc)
}

// restartable reports whether the supervision budget applies: recovered
// panics and transient faults get restarts; permanent failures and
// cancellation surface immediately.
func restartable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, faults.ErrWorkerPanic) || faults.IsTransient(err)
}
