package workloads

// The three SiSoftware Sandra 2014 benchmarks (Table I): two cryptography
// benchmarks — the paper's heaviest readers (624 GB and 2174 GB) — and
// the "Processor GPU" stress test, whose instruction mix is 91%
// computation.

import (
	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

func init() {
	register(&Spec{
		Name:  "sandra-crypt-aes128",
		Suite: SuiteSandra,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 3, Instrs: 70e9, BytesRead: 624e9},
		Build: func(sc Scale) (*App, error) { return cryptApp("sandra-crypt-aes128", 10, 380, isa.W16, sc) },
	})
	register(&Spec{
		Name:  "sandra-crypt-aes256",
		Suite: SuiteSandra,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 3, Instrs: 240e9, BytesRead: 2174e9},
		Build: func(sc Scale) (*App, error) { return cryptApp("sandra-crypt-aes256", 14, 820, isa.W8, sc) },
	})
	register(&Spec{
		Name:  "sandra-proc-gpu",
		Suite: SuiteSandra,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 4, Instrs: 650e9},
		Build: buildProcGPU,
	})
}

// cryptApp builds an AES-style benchmark: blocks stream through
// key-whitened table-lookup rounds. The table gathers dominate traffic,
// making the crypto pair the heaviest readers in the suite.
func cryptApp(name string, rounds, batches int, w isa.Width, sc Scale) (*App, error) {
	prog, err := asm.Program(name,
		newAESRound(name+"_encrypt", w),
		newAESRound(name+"_decrypt", w),
		newHashRounds(name+"_keyschedule", isa.W8))
	if err != nil {
		return nil, err
	}

	nBatches := sc.N(float64(batches), sc.Invs, 3)
	gws := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		in := h.buffer(gws*4 + 4096)
		sbox := h.buffer(256*4 + 64)
		out := h.buffer(gws*4 + 4096)
		keys := h.buffer(1 << 12)
		h.upload(in, 171)
		h.upload(sbox, 172)
		p := h.build(prog)
		enc := h.kernel(p, name+"_encrypt")
		dec := h.kernel(p, name+"_decrypt")
		ksched := h.kernel(p, name+"_keyschedule")

		for b := 0; b < nBatches; b++ {
			if b%32 == 0 { // periodic re-key
				h.dispatch(ksched, dim(sc, 128),
					[]uint32{loops(sc, 24, 4), uint32(0xA5A5A5A5 + b)}, keys)
			}
			h.dispatch(enc, gws, []uint32{loops(sc, rounds, 2), uint32(0x1000 + b)}, in, sbox, out)
			if b%2 == 1 { // verify pass decrypts half the batches
				h.dispatch(dec, gws, []uint32{loops(sc, rounds, 2), uint32(0x1000 + b)}, out, sbox, in)
			}
			if b%4 == 3 {
				h.finish()
				h.query(2)
			}
		}
		h.finish()
		h.read(out, 4096)
		return h.done()
	}
	return &App{Name: name, Suite: SuiteSandra, Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildProcGPU models the Sandra "Processor GPU" stress test: long
// multiply-add chains with almost no memory traffic — the application
// with the paper's highest computation share (91%).
func buildProcGPU(sc Scale) (*App, error) {
	prog, err := asm.Program("sandra-proc-gpu",
		newComputeStress("procgpu_float", isa.W16),
		newComputeStress("procgpu_double", isa.W8),
		newComputeStress("procgpu_int", isa.W16),
		newReduce("procgpu_score", isa.W8))
	if err != nil {
		return nil, err
	}

	passes := sc.N(36, sc.Invs, 2)
	gws := dim(sc, 2048)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		out := h.buffer(gws*4 + 4096)
		score := h.buffer(1 << 14)
		p := h.build(prog)
		kf := h.kernel(p, "procgpu_float")
		kd := h.kernel(p, "procgpu_double")
		ki := h.kernel(p, "procgpu_int")
		ks := h.kernel(p, "procgpu_score")

		for ps := 0; ps < passes; ps++ {
			iters := loops(sc, 90, 12)
			if ps >= passes/2 {
				iters = loops(sc, 130, 16) // second half runs the longer precision test
			}
			for _, k := range []*cl.Kernel{kf, kd, ki} {
				h.dispatch(k, gws, []uint32{iters, uint32(0x41C64E6D + ps)}, out)
			}
			h.dispatch(ks, dim(sc, 256), []uint32{loops(sc, 4, 1)}, out, score)
			h.finish()
			h.query(3)
		}
		h.read(score, 1024)
		return h.done()
	}
	return &App{Name: "sandra-proc-gpu", Suite: SuiteSandra,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}
