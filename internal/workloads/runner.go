package workloads

import (
	"fmt"
	"time"

	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/gtpin"
	"gtpin/internal/obs"
	"gtpin/internal/profile"
)

// JitterSigma is the relative timing noise applied to timed runs,
// standing in for run-to-run variation on real hardware.
const JitterSigma = 0.02

// Result bundles everything one application's profiling pipeline
// produces: the CoFluent recording and timings of the native (plain) run,
// and the GT-Pin profile from the instrumented replay.
type Result struct {
	App       *App
	Recording *cofluent.Recording
	Tracer    *cofluent.Tracer // from the uninstrumented timed run
	GTPin     *gtpin.GTPin
	Profile   *profile.Profile

	// FaultStats counts the faults injected across both pipeline phases
	// when the run was configured with FaultOptions; all survived faults
	// were absorbed by retry or degradation (a surfaced fault fails the
	// run instead).
	FaultStats faults.Stats
}

// FaultOptions enables chaos-mode profiling: deterministic fault
// injection at the given rates, an optional per-enqueue watchdog budget,
// and an optional resilience-policy override. Each pipeline phase
// (native run, instrumented replay) draws from its own injector, seeded
// from Seed and the application name, so parallel sweeps stay
// reproducible.
type FaultOptions struct {
	Rates faults.Rates
	Seed  int64
	// Watchdog is the per-enqueue instruction budget (0 = disabled),
	// metered by the shared engine accounting — the same budget trips at
	// the same dynamic instruction under detsim (see docs/architecture.md).
	Watchdog uint64
	// Resilience overrides the context policy; nil keeps
	// cl.DefaultResilience().
	Resilience *cl.Resilience
}

// arm configures one phase's device (and, via the returned function, its
// cl context) for fault injection.
func (fo *FaultOptions) arm(dev *device.Device, app, phase string) (*faults.Injector, error) {
	if fo == nil {
		return nil, nil
	}
	var inj *faults.Injector
	if !fo.Rates.Zero() {
		var err error
		inj, err = faults.NewInjector(faults.DeriveSeed(fo.Seed, app+"/"+phase), fo.Rates)
		if err != nil {
			return nil, err
		}
		dev.SetFaultInjector(inj)
	}
	dev.SetWatchdog(fo.Watchdog)
	return inj, nil
}

func (fo *FaultOptions) apply(ctx *cl.Context) {
	if fo != nil && fo.Resilience != nil {
		ctx.SetResilience(*fo.Resilience)
	}
}

// Arm configures a caller-owned device for fault injection under this
// fault model — how harnesses that drive the pipeline phases manually
// (cmd/overhead) get the same flags as the packaged pipeline. A nil
// receiver arms nothing and returns a nil injector.
func (fo *FaultOptions) Arm(dev *device.Device, app, phase string) (*faults.Injector, error) {
	return fo.arm(dev, app, phase)
}

// Apply applies the fault model's resilience-policy override to a
// caller-owned context; nil receivers and nil overrides keep the
// context's default policy.
func (fo *FaultOptions) Apply(ctx *cl.Context) { fo.apply(ctx) }

// Run executes the paper's profiling pipeline for one benchmark:
//
//  1. Run the application natively with the CoFluent tracer attached,
//     producing the API-call record, per-kernel timings (with the trial's
//     timing jitter), and a replayable recording.
//  2. Replay the recording with GT-Pin attached, collecting
//     per-invocation dynamic profiles from the instrumented binaries.
//  3. Join GT-Pin's counts with CoFluent's (uninstrumented) timings into
//     a profile for the selection pipeline.
//
// trialSeed seeds the timing jitter; different seeds model different
// trials on the same machine.
func Run(spec *Spec, sc Scale, cfg device.Config, trialSeed int64) (*Result, error) {
	return RunWithFaults(spec, sc, cfg, trialSeed, nil)
}

// RunWithFaults is Run under a fault model: fo configures deterministic
// fault injection, the kernel watchdog, and the resilience policy for
// both pipeline phases. A nil fo is identical to Run.
func RunWithFaults(spec *Spec, sc Scale, cfg device.Config, trialSeed int64, fo *FaultOptions) (*Result, error) {
	return runPipeline(spec, sc, cfg, trialSeed, fo, nil)
}

// runPipeline is the pipeline with an optional replay cache: when rc is
// non-nil, the instrumented-replay phase is satisfied from the cache
// for every unit after the first that shares this (app, scale, device,
// fault model) configuration — see ReplayCache for why that is exact.
func runPipeline(spec *Spec, sc Scale, cfg device.Config, trialSeed int64, fo *FaultOptions, rc *ReplayCache) (*Result, error) {
	tracer := obs.ActiveTracer()
	var phaseStart time.Time
	if tracer != nil {
		phaseStart = time.Now()
	}

	// Step 1: native timed run under CoFluent. jitter == nil records the
	// unjittered base times for the memoized path.
	native := func(jitter *device.TimingJitter) (*App, *cofluent.Recording, *cofluent.Tracer, *faults.Injector, error) {
		app, err := spec.Build(sc)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("workloads: build %s: %w", spec.Name, err)
		}
		dev, err := device.New(cfg)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("workloads: %s: %w", spec.Name, err)
		}
		dev.SetJitter(jitter)
		natInj, err := fo.arm(dev, spec.Name, "native")
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("workloads: %s: %w", spec.Name, err)
		}
		ctx := cl.NewContext(dev)
		fo.apply(ctx)
		tr := cofluent.Attach(ctx)
		if err := app.Run(ctx); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("workloads: run %s: %w", spec.Name, err)
		}
		rec, err := cofluent.Record(spec.Name, tr, app.Programs)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("workloads: record %s: %w", spec.Name, err)
		}
		return app, rec, tr, natInj, nil
	}

	var (
		app    *App
		rec    *cofluent.Recording
		tr     *cofluent.Tracer
		natInj *faults.Injector
	)
	if rc != nil && fo == nil {
		// Memoized native phase: trial seeds perturb only the reported
		// timings (workloads never read the device timestamp), so one
		// unjittered execution serves every trial and this trial's times
		// are synthesized from it — bit-identically to a live jittered
		// run, which TestPoolReplayCacheByteIdentical enforces. Fault
		// models stay on the live path: their retries consume jitter
		// draws the tracer never sees.
		e, err := rc.doNative(replayKey(spec, sc, cfg, nil), func() (*nativeEntry, error) {
			app, rec, base, _, err := native(nil)
			if err != nil {
				return nil, err
			}
			return &nativeEntry{app: app, rec: rec, tracer: base}, nil
		})
		if err != nil {
			return nil, err
		}
		app, rec = e.app, e.rec
		tr = e.tracer.PerturbTimes(device.NewTimingJitter(trialSeed, JitterSigma))
	} else {
		var err error
		app, rec, tr, natInj, err = native(device.NewTimingJitter(trialSeed, JitterSigma))
		if err != nil {
			return nil, err
		}
	}

	if tracer != nil {
		tracer.SpanWall("pipeline", "native "+spec.Name, "pipeline", phaseStart)
		phaseStart = time.Now()
	}

	// Step 2: instrumented replay under GT-Pin. The replay device never
	// gets the trial's timing jitter, so the phase is trial-independent
	// and memoizable.
	replay := func() (*gtpin.GTPin, faults.Stats, error) {
		idev, err := device.New(cfg)
		if err != nil {
			return nil, faults.Stats{}, fmt.Errorf("workloads: %s: %w", spec.Name, err)
		}
		repInj, err := fo.arm(idev, spec.Name, "replay")
		if err != nil {
			return nil, faults.Stats{}, fmt.Errorf("workloads: %s: %w", spec.Name, err)
		}
		var g *gtpin.GTPin
		if _, err := rec.Replay(idev, func(rctx *cl.Context) error {
			fo.apply(rctx)
			var aerr error
			g, aerr = gtpin.Attach(rctx, gtpin.Options{})
			return aerr
		}); err != nil {
			return nil, faults.Stats{}, fmt.Errorf("workloads: instrumented replay of %s: %w", spec.Name, err)
		}
		return g, repInj.Stats(), nil
	}
	var (
		g   *gtpin.GTPin
		rst faults.Stats
		err error
	)
	if rc != nil {
		g, rst, err = rc.do(replayKey(spec, sc, cfg, fo), replay)
	} else {
		g, rst, err = replay()
	}
	if err != nil {
		return nil, err
	}
	if tracer != nil {
		tracer.SpanWall("pipeline", "replay "+spec.Name, "pipeline", phaseStart)
	}

	// Step 3: join counts and timings.
	p, err := profile.Build(spec.Name, g, tr.TimesNs())
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", spec.Name, err)
	}
	st := natInj.Stats()
	st.Hangs += rst.Hangs
	st.SendFaults += rst.SendFaults
	st.JITFaults += rst.JITFaults
	st.Corruptions += rst.Corruptions
	return &Result{App: app, Recording: rec, Tracer: tr, GTPin: g, Profile: p, FaultStats: st}, nil
}

// Record runs the application natively once, without timing jitter, and
// returns just its CoFluent recording — the replayable call stream
// detsim and snippet capture consume. Recordings are jitter-independent
// (jitter perturbs reported times, never the call stream), so one
// unjittered run yields the same recording any trial would.
func Record(spec *Spec, sc Scale, cfg device.Config) (*cofluent.Recording, error) {
	app, err := spec.Build(sc)
	if err != nil {
		return nil, fmt.Errorf("workloads: build %s: %w", spec.Name, err)
	}
	dev, err := device.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", spec.Name, err)
	}
	ctx := cl.NewContext(dev)
	tr := cofluent.Attach(ctx)
	if err := app.Run(ctx); err != nil {
		return nil, fmt.Errorf("workloads: run %s: %w", spec.Name, err)
	}
	rec, err := cofluent.Record(spec.Name, tr, app.Programs)
	if err != nil {
		return nil, fmt.Errorf("workloads: record %s: %w", spec.Name, err)
	}
	return rec, nil
}

// TimedReplay re-executes a recording without instrumentation on the
// given device configuration and returns per-invocation times — a new
// trial (different seed), frequency, or architecture generation for the
// Section V-E validations.
func TimedReplay(rec *cofluent.Recording, cfg device.Config, trialSeed int64) ([]float64, error) {
	dev, err := device.New(cfg)
	if err != nil {
		return nil, err
	}
	dev.SetJitter(device.NewTimingJitter(trialSeed, JitterSigma))
	tr, err := rec.Replay(dev, nil)
	if err != nil {
		return nil, err
	}
	return tr.TimesNs(), nil
}

// ApproxTarget returns the Approx-interval instruction target for a
// scale: the paper's 100M instructions scaled by the suite's 1e-4
// instruction factor (≈10K), scaled further by the test scale factors.
func ApproxTarget(sc Scale) uint64 {
	t := 10000 * sc.Iters * sc.Data
	if t < 500 {
		t = 500
	}
	return uint64(t)
}
