package workloads

// The six CompuBench CL 1.2 Desktop applications (Table I).

import (
	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// dim scales a global work size, keeping it a positive multiple of 16 so
// full SIMD16 channel-groups dispatch without partial masking.
func dim(sc Scale, base int) int {
	n := int(float64(base) * sc.Data)
	n -= n % 16
	if n < 16 {
		n = 16
	}
	return n
}

// loops scales an inner-loop trip count with a floor of min.
func loops(sc Scale, base int, min int) uint32 {
	n := int(float64(base) * sc.Iters)
	if n < min {
		n = min
	}
	return uint32(n)
}

func init() {
	register(&Spec{
		Name:  "cb-graphics-t-rex",
		Suite: SuiteCompuBenchDesktop,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 48, Instrs: 150e9},
		Build: buildTRex,
	})
	register(&Spec{
		Name:  "cb-physics-ocean-surf",
		Suite: SuiteCompuBenchDesktop,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 11, Instrs: 95e9},
		Build: buildOceanSurf,
	})
	register(&Spec{
		Name:  "cb-throughput-bitcoin",
		Suite: SuiteCompuBenchDesktop,
		Paper: PaperStats{KernelPct: 4.5, UniqueKernels: 3, Instrs: 200e9},
		Build: buildBitcoin,
	})
	register(&Spec{
		Name:  "cb-vision-facedetect",
		Suite: SuiteCompuBenchDesktop,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 10, UniqueBlocks: 11500, Instrs: 190e9},
		Build: buildFaceDetect,
	})
	register(&Spec{
		Name:  "cb-vision-tv-l1-of",
		Suite: SuiteCompuBenchDesktop,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 8, Invocations: 18157, Instrs: 210e9},
		Build: buildTVL1,
	})
	register(&Spec{
		Name:  "cb-physics-part-sim-64k",
		Suite: SuiteCompuBenchDesktop,
		Paper: PaperStats{KernelPct: 15, UniqueKernels: 6, Instrs: 250e9},
		Build: buildPartSim64K,
	})
}

// buildTRex models the T-Rex render: many specialized vertex and
// fragment pipelines (48 unique kernels, the suite's largest roster)
// feeding a post-process blur and a composite blend. Scene segments
// alternate light and heavy shading every 25 frames.
func buildTRex(sc Scale) (*App, error) {
	const nVert, nFrag = 16, 28
	var ks []*kernel.Kernel
	for i := 0; i < nVert; i++ {
		w := isa.W8
		if i%4 == 0 {
			w = isa.W16
		}
		ks = append(ks, newVertexTransformOpt("trex_vertex_"+itoa(i), w, i%4 == 1))
	}
	for i := 0; i < nFrag; i++ {
		w := isa.W16
		if i%2 == 1 {
			w = isa.W8
		}
		ks = append(ks, newFragShade("trex_frag_"+itoa(i), w))
	}
	ks = append(ks, newBlur("trex_post_blur", isa.W16, 4))
	ks = append(ks, newBlur("trex_shadow_blur", isa.W8, 4))
	ks = append(ks, newBlend("trex_composite", isa.W8))
	ks = append(ks, newBlend("trex_overlay", isa.W16))
	prog, err := asm.Program("cb-graphics-t-rex", ks...)
	if err != nil {
		return nil, err
	}

	frames := sc.N(280, sc.Invs, 4)
	vertGWS := dim(sc, 512)
	fragGWS := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		geom := h.buffer(vertGWS*12 + 4096)
		tex := h.buffer(1 << 20)
		fb := h.buffer(fragGWS*4 + 4096)
		fb2 := h.buffer(fragGWS*4 + 4096)
		h.upload(geom, 101)
		h.upload(tex, 102)
		p := h.build(prog)
		verts := make([]*cl.Kernel, nVert)
		frags := make([]*cl.Kernel, nFrag)
		for i := range verts {
			verts[i] = h.kernel(p, "trex_vertex_"+itoa(i))
		}
		for i := range frags {
			frags[i] = h.kernel(p, "trex_frag_"+itoa(i))
		}
		blur := h.kernel(p, "trex_post_blur")
		shadow := h.kernel(p, "trex_shadow_blur")
		comp := h.kernel(p, "trex_composite")
		over := h.kernel(p, "trex_overlay")

		for f := 0; f < frames; f++ {
			taps := loops(sc, 3, 1)
			if (f/25)%2 == 1 {
				taps = loops(sc, 7, 2) // heavy scene segment
			}
			// Each frame touches a rotating quarter of the pipelines.
			for i := f % 4; i < nVert; i += 4 {
				h.dispatch(verts[i], vertGWS,
					[]uint32{uint32(200 + f%7), uint32(100 + i), uint32(50 + i)}, geom, geom)
			}
			for i := f % 4; i < nFrag; i += 4 {
				h.dispatch(frags[i], fragGWS,
					[]uint32{taps, uint32(180 + f%40)}, tex, fb)
			}
			h.dispatch(blur, fragGWS, []uint32{loops(sc, 3, 1)}, fb, fb2)
			if f%2 == 0 {
				h.dispatch(shadow, fragGWS, []uint32{loops(sc, 2, 1)}, fb2, fb)
			}
			h.dispatch(comp, fragGWS, []uint32{loops(sc, 2, 1), uint32(f % 256), 64}, fb, fb2, fb)
			if f%3 == 2 {
				h.dispatch(over, fragGWS, []uint32{loops(sc, 1, 1), 128, 64}, fb2, fb, fb2)
			}
			h.finish()
			h.query(2)
		}
		h.read(fb, 4096)
		return h.done()
	}
	return &App{Name: "cb-graphics-t-rex", Suite: SuiteCompuBenchDesktop,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildOceanSurf models the ocean-surface simulation: eight FFT butterfly
// passes per frame, two smoothing passes for normals, and a height scale.
// Sea state alternates calm and storm phases every 75 frames (more
// butterfly repetitions per pass in a storm).
func buildOceanSurf(sc Scale) (*App, error) {
	var ks []*kernel.Kernel
	for s := 0; s < 8; s++ {
		w := isa.W16
		if s%2 == 1 {
			w = isa.W8
		}
		ks = append(ks, newFFTPass("ocean_fft_s"+itoa(s), w))
	}
	ks = append(ks,
		newJacobi("ocean_normals_x", isa.W8),
		newJacobi("ocean_normals_y", isa.W8),
		newStreamScale("ocean_height", isa.W16))
	prog, err := asm.Program("cb-physics-ocean-surf", ks...)
	if err != nil {
		return nil, err
	}

	frames := sc.N(520, sc.Invs, 4)
	gws := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		field := h.buffer(gws*8 + 8192)
		normals := h.buffer(gws*4 + 8192)
		h.upload(field, 201)
		p := h.build(prog)
		ffts := make([]*cl.Kernel, 8)
		for s := range ffts {
			ffts[s] = h.kernel(p, "ocean_fft_s"+itoa(s))
		}
		nx := h.kernel(p, "ocean_normals_x")
		ny := h.kernel(p, "ocean_normals_y")
		hs := h.kernel(p, "ocean_height")

		for f := 0; f < frames; f++ {
			reps := loops(sc, 2, 1)
			if (f/75)%2 == 1 {
				reps = loops(sc, 4, 2) // storm phase
			}
			for s, k := range ffts {
				h.dispatch(k, gws, []uint32{reps, uint32(s)}, field)
			}
			h.dispatch(nx, gws, []uint32{loops(sc, 2, 1), 64}, field, normals)
			h.dispatch(ny, gws, []uint32{loops(sc, 2, 1), 1}, field, normals)
			h.dispatch(hs, gws, []uint32{loops(sc, 1, 1), uint32(3 + f%5), 17}, field, field)
			h.finish()
		}
		h.read(normals, 4096)
		return h.done()
	}
	return &App{Name: "cb-physics-ocean-surf", Suite: SuiteCompuBenchDesktop,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildBitcoin models the throughput bitcoin miner: few kernels, long
// hashing loops, and an API stream dominated by "other" calls (nonce
// updates and status polling) — the application with the paper's lowest
// kernel-call share, 4.5%.
func buildBitcoin(sc Scale) (*App, error) {
	prog, err := asm.Program("cb-throughput-bitcoin",
		newHashRounds("btc_search", isa.W16),
		newHashRounds("btc_verify", isa.W8),
		newReduce("btc_collect", isa.W8))
	if err != nil {
		return nil, err
	}

	batches := sc.N(340, sc.Invs, 3)
	gws := dim(sc, 2048)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		digests := h.buffer(gws*4 + 4096)
		partials := h.buffer(1 << 16)
		p := h.build(prog)
		search := h.kernel(p, "btc_search")
		verify := h.kernel(p, "btc_verify")
		collect := h.kernel(p, "btc_collect")

		for b := 0; b < batches; b++ {
			// Nonce churn: the host updates many parameters and polls
			// status between dispatches (the "other"-call deluge).
			h.query(9)
			h.dispatch(search, gws, []uint32{loops(sc, 16, 4), uint32(0x5bd1e995 + b)}, digests)
			h.query(7)
			h.dispatch(verify, gws, []uint32{loops(sc, 6, 2), uint32(0x9e3779b9 + b)}, digests)
			h.query(5)
			if b%8 == 7 {
				h.dispatch(collect, dim(sc, 256), []uint32{loops(sc, 4, 1)}, digests, partials)
				h.finish()
				h.query(4)
			}
		}
		h.finish()
		h.read(partials, 2048)
		return h.done()
	}
	return &App{Name: "cb-throughput-bitcoin", Suite: SuiteCompuBenchDesktop,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildFaceDetect models the Viola-Jones-style detector: an integral
// pass, a pyramid downscale, and eight branchy classifier cascades (one
// per pyramid scale, 1400 stages each) whose early-exit depth depends on
// the data — the application with the paper's largest unique-basic-block
// count (~11,500).
func buildFaceDetect(sc Scale) (*App, error) {
	stages := 1400
	if sc.Iters < 1 {
		stages = int(1400 * sc.Iters)
		if stages < 32 {
			stages = 32
		}
	}
	const scales = 8
	var ks []*kernel.Kernel
	for s := 0; s < scales; s++ {
		w := isa.W16
		if s%2 == 1 {
			w = isa.W8
		}
		ks = append(ks, newCascade("face_cascade_s"+itoa(s), w, stages))
	}
	ks = append(ks,
		newReduce("face_integral", isa.W16),
		newStreamScale("face_pyramid", isa.W8))
	prog, err := asm.Program("cb-vision-facedetect", ks...)
	if err != nil {
		return nil, err
	}

	frames := sc.N(330, sc.Invs, 4)
	gws := dim(sc, 512)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		img := h.buffer(1 << 18)
		out := h.buffer(gws*4 + 4096)
		h.upload(img, 301)
		p := h.build(prog)
		cascades := make([]*cl.Kernel, scales)
		for s := range cascades {
			cascades[s] = h.kernel(p, "face_cascade_s"+itoa(s))
		}
		integral := h.kernel(p, "face_integral")
		pyramid := h.kernel(p, "face_pyramid")

		for f := 0; f < frames; f++ {
			h.dispatch(integral, dim(sc, 256), []uint32{loops(sc, 3, 1)}, img, out)
			h.dispatch(pyramid, gws, []uint32{loops(sc, 2, 1), 3, uint32(f)}, img, img)
			for s, k := range cascades {
				// Rejection threshold ≈ 0.82 of the u32 range: a stage
				// rejects when all 16 lanes fall below it, with
				// probability (t/2³²)¹⁶ ≈ 4%, so the data-dependent
				// survival depth averages ~25 stages and drifts with the
				// scale (s) and the scene (f).
				thresh := uint32(0xD1000000) + uint32(s)*0x00400000 + uint32(f%16)*0x00080000
				h.dispatch(k, gws, []uint32{thresh}, img, out)
			}
			h.finish()
			if f%10 == 9 {
				h.read(out, 2048)
			}
		}
		return h.done()
	}
	return &App{Name: "cb-vision-facedetect", Suite: SuiteCompuBenchDesktop,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildTVL1 models the TV-L1 optical flow solver: per frame, one motion
// warp then a fixed-point loop of small smoothing dispatches — the
// invocation-heaviest application, matching the paper's 18K+ maximum.
func buildTVL1(sc Scale) (*App, error) {
	prog, err := asm.Program("cb-vision-tv-l1-of",
		newMotionEstimate("tvl1_warp", isa.W16),
		newJacobi("tvl1_smooth_u", isa.W16),
		newJacobi("tvl1_smooth_v", isa.W8),
		newStreamScale("tvl1_update", isa.W8),
		newBlur("tvl1_pyr_down", isa.W16, 4))
	if err != nil {
		return nil, err
	}

	frames := sc.N(1430, sc.Invs, 4)
	gws := dim(sc, 512)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		ref := h.buffer(1 << 18)
		cur := h.buffer(1 << 18)
		flow := h.buffer(gws*4 + 8192)
		h.upload(ref, 401)
		h.upload(cur, 402)
		p := h.build(prog)
		warp := h.kernel(p, "tvl1_warp")
		su := h.kernel(p, "tvl1_smooth_u")
		sv := h.kernel(p, "tvl1_smooth_v")
		up := h.kernel(p, "tvl1_update")
		down := h.kernel(p, "tvl1_pyr_down")

		for f := 0; f < frames; f++ {
			if f%16 == 0 {
				h.dispatch(down, gws, []uint32{loops(sc, 2, 1)}, cur, ref)
			}
			h.dispatch(warp, gws, []uint32{loops(sc, 4, 2)}, ref, cur, flow)
			iters := 4
			if (f/100)%3 == 2 {
				iters = 7 // hard-motion segment needs more solver steps
			}
			for it := 0; it < iters; it++ {
				h.dispatch(su, gws, []uint32{loops(sc, 1, 1), 64}, flow, flow)
				h.dispatch(sv, gws, []uint32{loops(sc, 1, 1), 1}, flow, flow)
			}
			h.dispatch(up, gws, []uint32{loops(sc, 1, 1), 2, 1}, flow, flow)
			h.wait()
		}
		h.read(flow, 4096)
		return h.done()
	}
	return &App{Name: "cb-vision-tv-l1-of", Suite: SuiteCompuBenchDesktop,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}

// buildPartSim64K models the 64K-particle simulation: near- and
// far-field force kernels, collision clamping, and integration, with the
// interaction count rising in a "clustering" phase.
func buildPartSim64K(sc Scale) (*App, error) {
	prog, err := asm.Program("cb-physics-part-sim-64k",
		newNBody("psim64_force_near", isa.W16),
		newNBody("psim64_force_far", isa.W8),
		newStreamScale("psim64_integrate", isa.W16),
		newJacobi("psim64_collide", isa.W8))
	if err != nil {
		return nil, err
	}

	steps := sc.N(520, sc.Invs, 4)
	gws := dim(sc, 4096)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		pos := h.buffer(gws*4 + 8192)
		force := h.buffer(gws*4 + 8192)
		h.upload(pos, 501)
		p := h.build(prog)
		near := h.kernel(p, "psim64_force_near")
		far := h.kernel(p, "psim64_force_far")
		integ := h.kernel(p, "psim64_integrate")
		collide := h.kernel(p, "psim64_collide")

		for s := 0; s < steps; s++ {
			count := loops(sc, 8, 2)
			if (s/120)%2 == 1 {
				count = loops(sc, 14, 3) // clustered phase: more neighbours
			}
			h.dispatch(near, gws, []uint32{count}, pos, force)
			h.dispatch(far, gws, []uint32{loops(sc, 4, 1)}, pos, force)
			h.dispatch(integ, gws, []uint32{loops(sc, 1, 1), 1, uint32(s % 17)}, force, pos)
			if s%4 == 3 {
				h.dispatch(collide, gws, []uint32{loops(sc, 1, 1), 8}, pos, pos)
			}
			h.finish()
		}
		h.read(pos, 4096)
		return h.done()
	}
	return &App{Name: "cb-physics-part-sim-64k", Suite: SuiteCompuBenchDesktop,
		Programs: []*kernel.Program{prog}, Run: run}, nil
}
