package workloads

import (
	"strings"
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

func newTestHost(t *testing.T) (*host, *cl.Context) {
	t.Helper()
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	ctx := cl.NewContext(dev)
	return newHost(ctx), ctx
}

// hostTestProgram builds a minimal kernel: out[gid] = arg0.
func hostTestProgram(t *testing.T) *kernel.Program {
	t.Helper()
	a := asm.NewKernel("hk", isa.W16)
	v := a.Arg(0)
	out := a.Surface(0)
	addr, vv := a.Temp(), a.Temp()
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Mov(vv, asm.R(v))
	a.Store(out, addr, vv, 4)
	a.End()
	p, err := asm.Program("host-test", a.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHostStopsAtFirstError: after an error, subsequent operations are
// no-ops and done() reports the first failure.
func TestHostStopsAtFirstError(t *testing.T) {
	h, _ := newTestHost(t)
	if b := h.buffer(-1); b != nil { // invalid size poisons the host
		t.Fatal("expected nil buffer")
	}
	if err := h.done(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("done = %v", err)
	}
	// Subsequent calls must not panic or clear the error.
	h.upload(nil, 1)
	h.finish()
	h.query(3)
	if err := h.done(); err == nil {
		t.Fatal("error lost")
	}
}

// TestHostDoneDetectsUndrainedQueue: finishing a driver with pending
// enqueues is a bug the helper must surface.
func TestHostDoneDetectsUndrainedQueue(t *testing.T) {
	h, _ := newTestHost(t)
	prog := h.build(hostTestProgram(t))
	k := h.kernel(prog, "hk")
	buf := h.buffer(4 * 16)
	h.set(k, 0, 3)
	h.bind(k, 0, buf)
	h.enqueue(k, 16)
	if err := h.done(); err == nil || !strings.Contains(err.Error(), "undrained") {
		t.Fatalf("done = %v", err)
	}
	h.finish()
	if err := h.done(); err != nil {
		t.Fatalf("after finish: %v", err)
	}
	got, _ := buf.Device().ReadU32(0, 1)
	if got[0] != 3 {
		t.Errorf("kernel result = %d", got[0])
	}
}

// callCounter counts clSetKernelArg calls.
type callCounter struct{ setArgs int }

func (c *callCounter) OnAPICall(call *cl.APICall) {
	if call.Name == cl.CallSetKernelArg {
		c.setArgs++
	}
}
func (c *callCounter) OnKernelComplete(*cl.KernelCompletion) {}

// TestHostDispatchSetsEverything: dispatch re-sets scalars and surfaces
// before each enqueue (the realistic host pattern behind Figure 3a).
func TestHostDispatchSetsEverything(t *testing.T) {
	h, ctx := newTestHost(t)
	rec := &callCounter{}
	ctx.AddInterceptor(rec)
	prog := h.build(hostTestProgram(t))
	k := h.kernel(prog, "hk")
	buf := h.buffer(4 * 16)
	before := rec.setArgs
	h.dispatch(k, 16, []uint32{5}, buf)
	h.finish()
	if err := h.done(); err != nil {
		t.Fatal(err)
	}
	// One scalar + one surface = two clSetKernelArg calls per dispatch.
	if got := rec.setArgs - before; got != 2 {
		t.Errorf("setArg calls = %d, want 2", got)
	}
}

// TestHostSyncVariants exercises the remaining sync helpers end to end.
func TestHostSyncVariants(t *testing.T) {
	h, _ := newTestHost(t)
	prog := h.build(hostTestProgram(t))
	k := h.kernel(prog, "hk")
	a := h.buffer(256)
	b := h.buffer(256)
	h.upload(a, 7)
	h.dispatch(k, 16, []uint32{1}, a)
	h.flush()
	h.dispatch(k, 16, []uint32{2}, a)
	h.wait()
	h.dispatch(k, 16, []uint32{3}, a)
	h.read(a, 64)
	h.dispatch(k, 16, []uint32{4}, a)
	h.readImage(a, 64)
	h.dispatch(k, 16, []uint32{5}, a)
	h.copyBuf(a, b, 64)
	h.dispatch(k, 16, []uint32{6}, a)
	h.copyImg(a, b, 64)
	h.release([]*cl.Buffer{a, b}, []*cl.Kernel{k}, []*cl.Program{prog})
	if err := h.done(); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Device().ReadU32(0, 1)
	if got[0] != 6 {
		t.Errorf("final value = %d, want 6", got[0])
	}
}
