package workloads

import (
	"context"
	"errors"
	"testing"
	"time"

	"gtpin/internal/runstate"
)

// TestPoolCancelPrompt: cancelling the pool context while a unit is
// mid-attempt returns promptly — the in-flight attempt is abandoned,
// not waited for — and leaves no terminal journal record for the
// abandoned unit, so a resume re-executes it. This is the service's
// DELETE /jobs/{id} path: a cancel must not block behind a long or hung
// unit.
func TestPoolCancelPrompt(t *testing.T) {
	state, err := runstate.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()
	units := poolUnits(t)

	release := make(chan struct{})
	entered := make(chan struct{}, len(units))
	poolTestHook = func(u Unit, attempt int) {
		entered <- struct{}{}
		<-release
	}
	defer func() {
		poolTestHook = nil
		close(release) // unblock abandoned attempt goroutines
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type poolReturn struct {
		outs []Outcome
		err  error
	}
	done := make(chan poolReturn, 1)
	go func() {
		outs, perr := RunPool(ctx, units, PoolOptions{State: state, Workers: 1})
		done <- poolReturn{outs, perr}
	}()

	<-entered // first unit is executing and blocked
	cancel()

	var ret poolReturn
	select {
	case ret = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunPool did not return promptly after cancel; it is waiting for the blocked unit")
	}
	if ret.err != nil && !errors.Is(ret.err, context.Canceled) {
		t.Fatalf("pool-level error: %v", ret.err)
	}
	if !errors.Is(ret.outs[0].Err, context.Canceled) {
		t.Fatalf("abandoned unit settled %v, want context.Canceled", ret.outs[0].Err)
	}
	for i, o := range ret.outs {
		if o.Artifact != nil {
			t.Fatalf("unit %d produced an artifact after cancel", i)
		}
		if o.Err != nil && !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("unit %d settled %v, want context.Canceled or undispatched", i, o.Err)
		}
	}

	// No terminal records: every unit must be resumable, including the
	// one whose attempt was abandoned mid-flight.
	rec, err := runstate.Recover(state.Path + "/journal.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.Completed()); n != 0 {
		t.Fatalf("%d units journaled completed after cancel", n)
	}
	if n := len(rec.Failed()); n != 0 {
		t.Fatalf("%d units journaled failed after cancel (cancellation is not a unit failure)", n)
	}
	if _, inflight := rec.InFlight()[units[0].Key()]; !inflight {
		t.Fatalf("abandoned unit %s not left in-flight for resume", units[0].Key())
	}
}
