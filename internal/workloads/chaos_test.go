package workloads

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/faults"
)

// chaosApps is the subset of the roster the chaos sweep exercises; tiny
// but structurally diverse (different kernels, invocation counts).
var chaosApps = []string{
	"cb-throughput-juliaset",
	"cb-gaussian-buffer",
	"sandra-proc-gpu",
}

// chaosFingerprint serializes everything a run produced — per-invocation
// counts, exact timings, fault accounting, or the failure text — so two
// runs can be compared byte-for-byte.
func chaosFingerprint(res *Result, err error) string {
	if err != nil {
		return "ERR|" + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "agg=%+v|time=%v|faults=%+v\n", res.Profile.Aggregate(), res.Profile.TotalTimeSec(), res.FaultStats)
	for _, inv := range res.Profile.Invocations {
		fmt.Fprintf(&b, "%+v\n", inv)
	}
	return b.String()
}

// TestChaosSweep sweeps fault rates over the pipeline and asserts the
// robustness contract: every run either completes with exactly the
// fault-free counts (all injected faults absorbed by retry/degradation) or
// fails with an error classified by the taxonomy — and two identical runs
// are byte-identical.
func TestChaosSweep(t *testing.T) {
	cfg := device.IvyBridgeHD4000()
	for _, name := range chaosApps {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(spec, ScaleTiny, cfg, 1)
		if err != nil {
			t.Fatalf("%s: fault-free baseline: %v", name, err)
		}
		baseAgg := base.Profile.Aggregate()
		for _, rate := range []float64{0, 0.01, 0.1} {
			fo := &FaultOptions{Rates: faults.Uniform(rate), Seed: 12345}
			r1, err1 := RunWithFaults(spec, ScaleTiny, cfg, 1, fo)

			// Determinism: an identical second run must reproduce the first
			// byte-for-byte, success or failure.
			fo2 := &FaultOptions{Rates: faults.Uniform(rate), Seed: 12345}
			r2, err2 := RunWithFaults(spec, ScaleTiny, cfg, 1, fo2)
			f1, f2 := chaosFingerprint(r1, err1), chaosFingerprint(r2, err2)
			if f1 != f2 {
				t.Fatalf("%s rate %v: two identical runs diverged:\n--- run 1\n%s\n--- run 2\n%s", name, rate, f1, f2)
			}

			if err1 != nil {
				// A surfaced failure must carry a taxonomy sentinel so the
				// caller can classify it with errors.Is/errors.As.
				var s *faults.Sentinel
				if !errors.As(err1, &s) {
					t.Fatalf("%s rate %v: failure not classified by the taxonomy: %v", name, rate, err1)
				}
				if rate == 0 {
					t.Fatalf("%s: zero-rate run failed: %v", name, err1)
				}
				t.Logf("%s rate %v: surfaced %q (%v)", name, rate, faults.Kind(err1), faults.ClassOf(err1))
				continue
			}

			// A successful run — at any rate — must report exactly the
			// fault-free dynamic counts: retries replay from clean
			// snapshots and degradation changes timing, never results.
			// (Timing may legitimately differ: a degraded re-execution is
			// slower, so only TimeSec is exempt from the comparison.)
			agg := r1.Profile.Aggregate()
			if agg.TimeSec <= 0 {
				t.Errorf("%s rate %v: non-positive total time", name, rate)
			}
			agg.TimeSec, baseAgg.TimeSec = 0, 0
			if agg != baseAgg {
				t.Errorf("%s rate %v: counts diverged from fault-free baseline:\n got %+v\nwant %+v",
					name, rate, agg, baseAgg)
			}
			if rate == 0 {
				if r1.FaultStats.Total() != 0 {
					t.Errorf("%s: zero-rate run recorded faults: %+v", name, r1.FaultStats)
				}
				// Zero rate is exactly the fault-free pipeline.
				if f0 := chaosFingerprint(base, nil); chaosFingerprint(r1, nil) != f0 {
					t.Errorf("%s: zero-rate run differs from plain Run", name)
				}
			} else if r1.FaultStats.Total() > 0 {
				t.Logf("%s rate %v: absorbed %d injected fault(s): %+v",
					name, rate, r1.FaultStats.Total(), r1.FaultStats)
			}
		}
	}
}

// TestChaosSeedsDecorrelate: different chaos seeds produce different fault
// streams for the same application (so sweeping seeds explores distinct
// failure interleavings).
func TestChaosSeedsDecorrelate(t *testing.T) {
	spec, err := ByName("cb-throughput-juliaset")
	if err != nil {
		t.Fatal(err)
	}
	cfg := device.IvyBridgeHD4000()
	sig := func(seed int64) string {
		res, rerr := RunWithFaults(spec, ScaleTiny, cfg, 1, &FaultOptions{Rates: faults.Uniform(0.2), Seed: seed})
		if rerr != nil {
			return "ERR|" + rerr.Error()
		}
		return fmt.Sprintf("%+v|%v", res.FaultStats, res.Profile.TotalTimeSec())
	}
	a, b := sig(1), sig(2)
	if a == b {
		t.Errorf("seeds 1 and 2 produced identical fault behaviour: %s", a)
	}
}

// TestChaosWatchdogGenerousBudgetHarmless: a watchdog budget far above any
// tiny-scale dispatch must not change the pipeline's results.
func TestChaosWatchdogGenerousBudgetHarmless(t *testing.T) {
	spec, err := ByName("cb-gaussian-buffer")
	if err != nil {
		t.Fatal(err)
	}
	cfg := device.IvyBridgeHD4000()
	base, err := Run(spec, ScaleTiny, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunWithFaults(spec, ScaleTiny, cfg, 1, &FaultOptions{Watchdog: 1 << 40})
	if err != nil {
		t.Fatalf("generous watchdog failed the run: %v", err)
	}
	if chaosFingerprint(guarded, nil) != chaosFingerprint(base, nil) {
		t.Error("a generous watchdog budget changed the pipeline output")
	}
}

// TestChaosResilienceDisabled: with retries and degradation off, a
// rate-1 corruption must surface as a typed error, not a panic or hang.
func TestChaosResilienceDisabled(t *testing.T) {
	spec, err := ByName("cb-throughput-juliaset")
	if err != nil {
		t.Fatal(err)
	}
	off := cl.Resilience{MaxRetries: 0, Degrade: false}
	_, rerr := RunWithFaults(spec, ScaleTiny, device.IvyBridgeHD4000(), 1, &FaultOptions{
		Rates:      faults.Rates{Corrupt: 1},
		Seed:       7,
		Resilience: &off,
	})
	if !errors.Is(rerr, faults.ErrCorruptResult) {
		t.Fatalf("err = %v, want ErrCorruptResult surfaced unretried", rerr)
	}
}
