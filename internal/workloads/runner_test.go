package workloads

import (
	"math"
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/selection"
)

// TestRunPipelineDeterministic: the full profiling pipeline (plain run +
// instrumented replay + profile join) is deterministic given the same
// trial seed, and functionally identical under different trial seeds.
func TestRunPipelineDeterministic(t *testing.T) {
	spec, err := ByName("cb-throughput-juliaset")
	if err != nil {
		t.Fatal(err)
	}
	cfg := device.IvyBridgeHD4000()
	r1, err := Run(spec, ScaleTiny, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec, ScaleTiny, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(spec, ScaleTiny, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2, p3 := r1.Profile, r2.Profile, r3.Profile
	if p1.TotalInstrs() != p2.TotalInstrs() || p1.TotalInstrs() != p3.TotalInstrs() {
		t.Fatal("instruction counts must be trial-invariant")
	}
	if p1.TotalTimeSec() != p2.TotalTimeSec() {
		t.Error("same trial seed must reproduce timings exactly")
	}
	if p1.TotalTimeSec() == p3.TotalTimeSec() {
		t.Error("different trial seeds must jitter timings")
	}
	// The timing difference is small (a couple of percent).
	ratio := p3.TotalTimeSec() / p1.TotalTimeSec()
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("trial-to-trial time ratio = %f", ratio)
	}
}

// TestTimedReplayMatchesInvocations: a timed replay yields exactly one
// timing per invocation, all positive.
func TestTimedReplayMatchesInvocations(t *testing.T) {
	spec, err := ByName("cb-gaussian-buffer")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, ScaleTiny, device.IvyBridgeHD4000(), 1)
	if err != nil {
		t.Fatal(err)
	}
	times, err := TimedReplay(res.Recording, device.IvyBridgeHD4000(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(res.Profile.Invocations) {
		t.Fatalf("timings = %d, invocations = %d", len(times), len(res.Profile.Invocations))
	}
	for i, tm := range times {
		if tm <= 0 {
			t.Fatalf("timing %d = %f", i, tm)
		}
	}
}

// TestCrossFrequencyReplaySlowsDown: replaying at a lower frequency is
// slower, sub-linearly (memory time does not scale with the clock).
func TestCrossFrequencyReplaySlowsDown(t *testing.T) {
	spec, err := ByName("sandra-proc-gpu")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, ScaleTiny, device.IvyBridgeHD4000(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TimedReplay(res.Recording, device.IvyBridgeHD4000(), 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := TimedReplay(res.Recording, device.IvyBridgeHD4000().WithFrequency(350), 1)
	if err != nil {
		t.Fatal(err)
	}
	var fSum, sSum float64
	for i := range fast {
		fSum += fast[i]
		sSum += slow[i]
	}
	if sSum <= fSum {
		t.Fatalf("350MHz not slower: %f vs %f", sSum, fSum)
	}
	if sSum/fSum > 1150.0/350.0+0.2 {
		t.Errorf("slowdown %.2f exceeds the clock ratio", sSum/fSum)
	}
}

// TestSelectionTransfersToHaswell: end-to-end Section V-E at tiny scale —
// selections chosen on Ivy Bridge predict a Haswell execution within a
// loose bound.
func TestSelectionTransfersToHaswell(t *testing.T) {
	spec, err := ByName("cb-physics-ocean-surf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, ScaleSmall, device.IvyBridgeHD4000(), 1)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := selection.EvaluateAll(res.Profile, selection.Options{
		ApproxTarget: ApproxTarget(ScaleSmall), Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := selection.MinError(evals)
	times, err := TimedReplay(res.Recording, device.HaswellHD4600(), 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := selection.CrossError(best, res.Profile, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(e) || e > 12 {
		t.Errorf("cross-architecture error = %.2f%%", e)
	}
}

// TestLuxMarkScoresFavorHaswell reproduces the paper's raw-performance
// sanity check (HD4000: 269 vs HD4600: 351 — a 1.30x ratio).
func TestLuxMarkScoresFavorHaswell(t *testing.T) {
	ivb, err := LuxMarkScore(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	hsw, err := LuxMarkScore(device.HaswellHD4600())
	if err != nil {
		t.Fatal(err)
	}
	ratio := hsw / ivb
	if ratio < 1.1 || ratio > 1.6 {
		t.Errorf("HD4600/HD4000 = %.2f, want ≈1.30 (paper: 351/269)", ratio)
	}
}

func TestApproxTargetScales(t *testing.T) {
	if ApproxTarget(ScaleFull) != 10000 {
		t.Errorf("full target = %d", ApproxTarget(ScaleFull))
	}
	if ApproxTarget(ScaleTiny) < 500 {
		t.Error("tiny target below floor")
	}
	if ApproxTarget(ScaleTiny) >= ApproxTarget(ScaleFull) {
		t.Error("targets must scale down")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Error("expected error")
	}
	if s, err := ByName("cb-graphics-t-rex"); err != nil || s.Name != "cb-graphics-t-rex" {
		t.Errorf("lookup failed: %v %v", s, err)
	}
}
