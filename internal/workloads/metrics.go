package workloads

import (
	"time"

	"gtpin/internal/obs"
)

// Observability for the supervised sweep pool and the replay cache —
// unit granularity only; per-dispatch accounting lives in internal/
// device.
var (
	mUnitsCompleted = obs.DefaultCounter("workloads_units_completed_total",
		"sweep units that produced a usable artifact by executing")
	mUnitsFailed = obs.DefaultCounter("workloads_units_failed_total",
		"sweep units that failed past the restart budget")
	mUnitsResumed = obs.DefaultCounter("workloads_units_resumed_total",
		"sweep units satisfied from a journaled artifact without executing")
	mUnitRestarts = obs.DefaultCounter("workloads_unit_restarts_total",
		"supervised restarts consumed across all units")
	mUnitsInflight = obs.DefaultGauge("workloads_units_inflight",
		"sweep units currently executing on pool workers")
	mUnitWallNs = obs.DefaultHistogram("workloads_unit_wall_ns",
		"wall-clock duration of one executed sweep unit in nanoseconds")
	mReplayHits = obs.DefaultCounter("workloads_replay_cache_hits_total",
		"instrumented-replay phases satisfied from the replay cache")
	mReplayMisses = obs.DefaultCounter("workloads_replay_cache_misses_total",
		"instrumented-replay phases executed on a cache miss")
	mNativeHits = obs.DefaultCounter("workloads_native_cache_hits_total",
		"native phases satisfied from the replay cache")
	mNativeMisses = obs.DefaultCounter("workloads_native_cache_misses_total",
		"native phases executed on a cache miss")
)

// observeOutcome records a settled unit and — when a tracer is
// installed — a wall-clock span on the worker's lane covering the
// unit's whole supervised execution.
func observeOutcome(o *Outcome, start time.Time) {
	switch {
	case o.Resumed:
		mUnitsResumed.Inc()
	case o.Err != nil:
		mUnitsFailed.Inc()
	default:
		mUnitsCompleted.Inc()
	}
	if o.Attempts > 1 {
		mUnitRestarts.Add(uint64(o.Attempts - 1))
	}
	if o.Resumed {
		return
	}
	mUnitWallNs.Observe(uint64(time.Since(start).Nanoseconds()))
	if t := obs.ActiveTracer(); t != nil {
		status := "ok"
		if o.Err != nil {
			status = "failed"
		}
		t.SpanWall("unit", o.Unit.Key(), "pool", start,
			obs.A("attempts", o.Attempts), obs.A("status", status))
	}
}
