package workloads

import (
	"encoding/json"
	"fmt"

	"gtpin/internal/device"
	"gtpin/internal/faults"
)

// UnitDescriptor is the self-contained, serializable form of a Unit —
// what the fleet coordinator hands a worker process inside a lease.
// Everything a worker needs to re-execute the unit rides along: the
// application is named (specs carry build functions and are looked up
// in the roster), but the scale and device configuration are embedded
// verbatim, so a descriptor does not depend on the worker agreeing
// with the coordinator about preset names. The round trip preserves
// Unit.Key exactly, which is what makes a re-dispatched unit land on
// the same journal identity wherever it runs.
type UnitDescriptor struct {
	App       string           `json:"app"`
	Scale     Scale            `json:"scale"`
	Cfg       device.Config    `json:"config"`
	TrialSeed int64            `json:"trial_seed"`
	Faults    *FaultDescriptor `json:"faults,omitempty"`
}

// FaultDescriptor is the serializable subset of FaultOptions. The
// resilience-policy override is deliberately absent: it carries
// function-valued policy and never appears on sweep units, so a unit
// using one is not re-dispatchable and Descriptor refuses it.
type FaultDescriptor struct {
	Rates    faults.Rates `json:"rates"`
	Seed     int64        `json:"seed"`
	Watchdog uint64       `json:"watchdog"`
}

// Descriptor returns the unit's portable form, or an error when the
// unit is not self-contained (a resilience-policy override cannot cross
// a process boundary).
func (u Unit) Descriptor() (UnitDescriptor, error) {
	d := UnitDescriptor{
		App:       u.Spec.Name,
		Scale:     u.Scale,
		Cfg:       u.Cfg,
		TrialSeed: u.TrialSeed,
	}
	if u.Faults != nil {
		if u.Faults.Resilience != nil {
			return UnitDescriptor{}, fmt.Errorf(
				"workloads: unit %s: resilience-policy overrides are not serializable", u.Key())
		}
		d.Faults = &FaultDescriptor{
			Rates:    u.Faults.Rates,
			Seed:     u.Faults.Seed,
			Watchdog: u.Faults.Watchdog,
		}
	}
	return d, nil
}

// Unit rebuilds the executable unit: the application spec is resolved
// from the roster by name; everything else is carried by value.
func (d UnitDescriptor) Unit() (Unit, error) {
	spec, err := ByName(d.App)
	if err != nil {
		return Unit{}, fmt.Errorf("workloads: descriptor: %w", err)
	}
	u := Unit{Spec: spec, Scale: d.Scale, Cfg: d.Cfg, TrialSeed: d.TrialSeed}
	if d.Faults != nil {
		u.Faults = &FaultOptions{
			Rates:    d.Faults.Rates,
			Seed:     d.Faults.Seed,
			Watchdog: d.Faults.Watchdog,
		}
	}
	return u, nil
}

// Key returns the journal identity the rebuilt unit will have, without
// resolving the spec — the coordinator uses it to address units whose
// descriptors it only holds serialized.
func (d UnitDescriptor) Key() string {
	var fo *FaultOptions
	if d.Faults != nil {
		fo = &FaultOptions{Rates: d.Faults.Rates, Seed: d.Faults.Seed, Watchdog: d.Faults.Watchdog}
	}
	return fmt.Sprintf("%s|%s@%dMHz|%s|t%d|%s",
		d.App, d.Cfg.Name, d.Cfg.FreqMHz, d.Scale.Name, d.TrialSeed, faultSig(fo))
}

// Encode serializes the descriptor canonically.
func (d UnitDescriptor) Encode() ([]byte, error) {
	data, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("workloads: encode descriptor for %s: %w", d.App, err)
	}
	return data, nil
}

// DecodeDescriptor parses a descriptor written by Encode.
func DecodeDescriptor(data []byte) (UnitDescriptor, error) {
	var d UnitDescriptor
	if err := json.Unmarshal(data, &d); err != nil {
		return UnitDescriptor{}, fmt.Errorf("workloads: decode descriptor: %w", err)
	}
	if d.App == "" {
		return UnitDescriptor{}, fmt.Errorf("workloads: decode descriptor: missing app")
	}
	return d, nil
}
