package workloads

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gtpin/internal/faults"
	"gtpin/internal/runstate"
)

// hangUnits returns a two-unit sweep whose second unit hangs forever
// (the test hook blocks until the test ends), the shape the timeout
// machinery exists for.
func hangUnits(t *testing.T) ([]Unit, string) {
	t.Helper()
	units := poolUnits(t)[:2]
	hung := units[1].Key()
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	poolTestHook = func(u Unit, attempt int) {
		if u.Key() == hung {
			<-release
		}
	}
	t.Cleanup(func() { poolTestHook = nil })
	return units, hung
}

// TestUnitTimeoutAbandonsHungUnit: a hung unit settles with a
// faults.ErrUnitTimeout failure within the per-unit budget while
// healthy units complete normally, and the failure is journaled as a
// typed terminal record.
func TestUnitTimeoutAbandonsHungUnit(t *testing.T) {
	units, hung := hangUnits(t)
	state, err := runstate.OpenDir(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()

	outs, err := RunPool(context.Background(), units, PoolOptions{
		State:       state,
		UnitTimeout: 50 * time.Millisecond,
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[0].Artifact == nil {
		t.Fatalf("healthy unit failed: %v", outs[0].Err)
	}
	if !errors.Is(outs[1].Err, faults.ErrUnitTimeout) {
		t.Fatalf("hung unit error = %v, want ErrUnitTimeout", outs[1].Err)
	}
	if faults.Kind(outs[1].Err) != "unit timeout" {
		t.Fatalf("Kind = %q, want %q", faults.Kind(outs[1].Err), "unit timeout")
	}

	// The timeout is a typed terminal failure in the journal: a resume
	// re-executes the unit (completion is the only accepted terminal
	// state) and failure tables can classify it.
	state.Close()
	state2, err := runstate.OpenDir(state.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	rec, ok := state2.Recovered.Failed()[hung]
	if !ok {
		t.Fatalf("hung unit not journaled failed; journal: %+v", state2.Recovered.Records)
	}
	if rec.Class != "unit timeout" {
		t.Fatalf("journaled class %q, want %q", rec.Class, "unit timeout")
	}
}

// TestSweepDeadlineAbandonsHungUnit: with only a context deadline (the
// -timeout flag's shape), a hung unit is abandoned when the deadline
// expires — the process does not hang — and the error carries both the
// taxonomy sentinel and context.DeadlineExceeded, so the journal leaves
// the unit in-flight for a resume with a larger budget.
func TestSweepDeadlineAbandonsHungUnit(t *testing.T) {
	units, hung := hangUnits(t)
	state, err := runstate.OpenDir(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var outs []Outcome
	go func() {
		defer close(done)
		outs, _ = RunPool(ctx, units, PoolOptions{State: state, Workers: 2})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunPool hung past the sweep deadline")
	}

	if !errors.Is(outs[1].Err, faults.ErrUnitTimeout) || !errors.Is(outs[1].Err, context.DeadlineExceeded) {
		t.Fatalf("hung unit error = %v, want ErrUnitTimeout wrapping DeadlineExceeded", outs[1].Err)
	}
	if !strings.Contains(outs[1].Err.Error(), "sweep deadline") {
		t.Fatalf("error text %q does not name the sweep deadline", outs[1].Err)
	}

	// Deadline abandonment is crash-shaped, not a terminal failure: the
	// unit stays in-flight so a resume re-executes it.
	state.Close()
	state2, err := runstate.OpenDir(state.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	if _, ok := state2.Recovered.InFlight()[hung]; !ok {
		t.Fatalf("deadline-abandoned unit not in-flight; journal: %+v", state2.Recovered.Records)
	}
}

// TestUnitTimeoutDisabledKeepsInlinePath: without a timeout or a
// deadline, outcomes are the plain supervised path (no goroutine
// detour), byte-identical to before.
func TestUnitTimeoutDisabledKeepsInlinePath(t *testing.T) {
	units := poolUnits(t)[:1]
	outs, err := RunPool(context.Background(), units, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[0].Attempts != 1 {
		t.Fatalf("outcome %+v", outs[0])
	}
}
