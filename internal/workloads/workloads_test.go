package workloads

import (
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/intervals"
)

func TestRegistryHas25Benchmarks(t *testing.T) {
	all := All()
	if len(all) != 25 {
		t.Fatalf("registry has %d benchmarks, want 25", len(all))
	}
	suites := map[string]int{}
	for _, s := range all {
		suites[s.Suite]++
	}
	if suites[SuiteCompuBenchDesktop] != 6 {
		t.Errorf("desktop suite has %d apps, want 6", suites[SuiteCompuBenchDesktop])
	}
	if suites[SuiteCompuBenchMobile] != 9 {
		t.Errorf("mobile suite has %d apps, want 9", suites[SuiteCompuBenchMobile])
	}
	if suites[SuiteSandra] != 3 {
		t.Errorf("sandra suite has %d apps, want 3", suites[SuiteSandra])
	}
	if suites[SuiteSonyVegas] != 7 {
		t.Errorf("vegas suite has %d apps, want 7", suites[SuiteSonyVegas])
	}
}

// TestAllBenchmarksRunTiny executes every benchmark's full profiling
// pipeline at tiny scale and checks basic profile invariants.
func TestAllBenchmarksRunTiny(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(spec, ScaleTiny, device.IvyBridgeHD4000(), 1)
			if err != nil {
				t.Fatal(err)
			}
			p := res.Profile
			if len(p.Invocations) == 0 {
				t.Fatal("no invocations profiled")
			}
			if p.TotalInstrs() == 0 {
				t.Fatal("no instructions counted")
			}
			if p.TotalTimeSec() <= 0 {
				t.Fatal("no time measured")
			}
			// Interval divisions must partition the profile.
			for _, s := range intervals.Schemes {
				ivs, err := intervals.Divide(p, s, ApproxTarget(ScaleTiny))
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if err := intervals.Validate(p, ivs); err != nil {
					t.Fatalf("%v: %v", s, err)
				}
			}
			k, sc, o := res.Tracer.Breakdown()
			if k == 0 || sc == 0 || o == 0 {
				t.Errorf("degenerate API breakdown: kernel=%d sync=%d other=%d", k, sc, o)
			}
			if k != len(p.Invocations) {
				t.Errorf("kernel calls %d != invocations %d", k, len(p.Invocations))
			}
		})
	}
}
