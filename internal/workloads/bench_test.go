package workloads

// Benchmarks for the sweep execution path: end-to-end pool runs at
// several worker counts, feeding `make bench` and the regression
// harness in cmd/bench.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSweep times the full supervised sweep (the chaos roster at
// tiny scale) serially, on two shards, and on NumCPU shards. The
// determinism property test guarantees all three produce byte-identical
// artifacts; this measures what the sharding buys in wall clock.
func BenchmarkSweep(b *testing.B) {
	units := poolUnits(b)
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs, err := RunPool(context.Background(), units, PoolOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				for j := range outs {
					if outs[j].Err != nil {
						b.Fatal(outs[j].Err)
					}
				}
			}
		})
	}
}
