package workloads

// LuxMark-style device scoring. In Section V-E the paper compares the
// raw performance of its two test GPUs with LuxMark, a cross-platform
// rendering benchmark (HD 4000: 269, HD 4600: 351), to establish that
// the architectures genuinely differ before validating selections across
// them. This file provides the equivalent: a fixed ray-tracing-flavoured
// rendering workload whose score is samples rendered per modelled second.

import (
	"fmt"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// luxScene builds the render program: a primary-ray pass, a shading
// pass, and a tone-map pass over a fixed scene buffer.
func luxScene() (*kernel.Program, error) {
	return asm.Program("luxmark",
		newRaycastAO("lux_trace", isa.W16),
		newFragShade("lux_shade", isa.W16),
		newStreamScale("lux_tonemap", isa.W8))
}

// LuxMarkScore renders the benchmark scene on the given device
// configuration and returns its score: kilo-samples per modelled GPU
// second (higher is better). The workload is fixed, so scores are
// comparable across configurations.
func LuxMarkScore(cfg device.Config) (float64, error) {
	prog, err := luxScene()
	if err != nil {
		return 0, err
	}
	dev, err := device.New(cfg)
	if err != nil {
		return 0, err
	}
	ctx := cl.NewContext(dev)
	tr := cofluent.Attach(ctx)
	h := newHost(ctx)

	const gws = 16384
	scene := h.buffer(1 << 19)
	fb := h.buffer(gws*4 + 4096)
	h.upload(scene, 881)
	p := h.build(prog)
	trace := h.kernel(p, "lux_trace")
	shade := h.kernel(p, "lux_shade")
	tone := h.kernel(p, "lux_tonemap")

	const frames = 24
	for f := 0; f < frames; f++ {
		h.dispatch(trace, gws, []uint32{24}, scene, fb)
		h.dispatch(shade, gws, []uint32{12, uint32(200 + f%8)}, scene, fb)
		h.dispatch(tone, gws, []uint32{1, 3, 9}, fb, fb)
		h.finish()
	}
	if err := h.done(); err != nil {
		return 0, fmt.Errorf("luxmark: %w", err)
	}
	samples := float64(frames * gws)
	seconds := tr.TotalKernelTimeNs() * 1e-9
	if seconds <= 0 {
		return 0, fmt.Errorf("luxmark: no time measured")
	}
	return samples / seconds / 1000, nil
}
