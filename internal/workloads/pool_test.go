package workloads

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/runstate"
)

// poolUnits builds the tiny-scale sweep the pool tests run: the chaos
// roster on the default device, one trial, no fault injection.
func poolUnits(t testing.TB) []Unit {
	t.Helper()
	units := make([]Unit, 0, len(chaosApps))
	for _, name := range chaosApps {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, Unit{Spec: spec, Scale: ScaleTiny, Cfg: device.IvyBridgeHD4000(), TrialSeed: 1})
	}
	return units
}

// encodeArtifact marshals with a fatal on error.
func encodeArtifact(t testing.TB, a *Artifact) []byte {
	t.Helper()
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPoolMatchesDirectRun: a pool run with no state dir produces, for
// every unit, the byte-identical artifact a direct pipeline run yields.
func TestPoolMatchesDirectRun(t *testing.T) {
	units := poolUnits(t)
	outs, err := RunPool(context.Background(), units, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil || o.Artifact == nil {
			t.Fatalf("unit %s: %v", units[i].Spec.Name, o.Err)
		}
		if o.Resumed || o.Result == nil || o.Attempts != 1 {
			t.Fatalf("unit %s: unexpected outcome shape %+v", units[i].Spec.Name, o)
		}
		res, derr := RunWithFaults(units[i].Spec, units[i].Scale, units[i].Cfg, units[i].TrialSeed, units[i].Faults)
		if derr != nil {
			t.Fatal(derr)
		}
		if !bytes.Equal(encodeArtifact(t, o.Artifact), encodeArtifact(t, NewArtifact(res))) {
			t.Errorf("unit %s: pool artifact differs from direct run", units[i].Spec.Name)
		}
	}
}

// TestArtifactRoundTrip: encode → decode → rebuild profile preserves
// every aggregate and re-encodes to identical bytes (the property that
// makes resumed reports byte-identical).
func TestArtifactRoundTrip(t *testing.T) {
	u := poolUnits(t)[0]
	res, err := RunWithFaults(u.Spec, u.Scale, u.Cfg, u.TrialSeed, u.Faults)
	if err != nil {
		t.Fatal(err)
	}
	art := NewArtifact(res)
	data := encodeArtifact(t, art)
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, encodeArtifact(t, back)) {
		t.Fatal("artifact did not round-trip to identical bytes")
	}
	p, err := back.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Aggregate() != res.Profile.Aggregate() {
		t.Fatalf("rebuilt profile aggregate diverged:\n got %+v\nwant %+v", p.Aggregate(), res.Profile.Aggregate())
	}
	if p.NumBlocks() != res.Profile.NumBlocks() {
		t.Fatalf("rebuilt block space %d != %d", p.NumBlocks(), res.Profile.NumBlocks())
	}
	k1, s1, o1 := res.Tracer.BreakdownPct()
	k2, s2, o2 := back.BreakdownPct()
	if k1 != k2 || s1 != s2 || o1 != o2 {
		t.Fatalf("breakdown diverged: (%v %v %v) != (%v %v %v)", k2, s2, o2, k1, s1, o1)
	}
}

// TestPoolPanicRestart: a worker panic on the first attempt is
// recovered, the unit restarted within its budget, and the final
// artifact is indistinguishable from an undisturbed run — with the
// modelled backoff accounted.
func TestPoolPanicRestart(t *testing.T) {
	units := poolUnits(t)
	target := units[1].Key()
	poolTestHook = func(u Unit, attempt int) {
		if u.Key() == target && attempt == 0 {
			panic("injected worker panic")
		}
	}
	defer func() { poolTestHook = nil }()

	outs, err := RunPool(context.Background(), units, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("unit %s failed: %v", units[i].Spec.Name, o.Err)
		}
	}
	hit := outs[1]
	if hit.Attempts != 2 || hit.BackoffNs != RestartBackoffBaseNs {
		t.Fatalf("panicked unit: attempts=%d backoff=%v, want 2 attempts with base backoff", hit.Attempts, hit.BackoffNs)
	}
	res, err := RunWithFaults(units[1].Spec, units[1].Scale, units[1].Cfg, units[1].TrialSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeArtifact(t, hit.Artifact), encodeArtifact(t, NewArtifact(res))) {
		t.Error("restarted unit's artifact differs from an undisturbed run")
	}
}

// TestPoolPanicBudgetExhausted: a unit that panics on every attempt
// settles as a typed failure wrapping faults.ErrWorkerPanic — journaled
// with its class — and never aborts the rest of the sweep.
func TestPoolPanicBudgetExhausted(t *testing.T) {
	state, err := runstate.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()
	units := poolUnits(t)
	target := units[0].Key()
	poolTestHook = func(u Unit, attempt int) {
		if u.Key() == target {
			panic("always panics")
		}
	}
	defer func() { poolTestHook = nil }()

	outs, err := RunPool(context.Background(), units, PoolOptions{State: state, MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := outs[0]
	if !errors.Is(bad.Err, faults.ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", bad.Err)
	}
	if bad.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (budget 1 restart)", bad.Attempts)
	}
	if !strings.Contains(bad.Err.Error(), "always panics") {
		t.Fatalf("panic value lost from error: %v", bad.Err)
	}
	for _, o := range outs[1:] {
		if o.Err != nil {
			t.Fatalf("healthy unit dragged down: %v", o.Err)
		}
	}
	rec, rerr := runstate.Recover(state.Path + "/journal.jsonl")
	if rerr != nil {
		t.Fatal(rerr)
	}
	f := rec.Failed()
	if r, ok := f[target]; !ok || r.Class != faults.ErrWorkerPanic.Error() || r.Attempt != 2 {
		t.Fatalf("journal failure record = %+v, want class %q", f[target], faults.ErrWorkerPanic.Error())
	}
	if len(rec.Completed()) != len(units)-1 {
		t.Fatalf("journal completed %d units, want %d", len(rec.Completed()), len(units)-1)
	}
}

// TestPoolRestartBackoffCapped: the modelled backoff doubles and caps.
func TestPoolRestartBackoffCapped(t *testing.T) {
	units := poolUnits(t)[:1]
	poolTestHook = func(u Unit, attempt int) { panic("forever") }
	defer func() { poolTestHook = nil }()
	outs, err := RunPool(context.Background(), units, PoolOptions{MaxRestarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if o.Attempts != 11 {
		t.Fatalf("attempts = %d, want 11", o.Attempts)
	}
	// 1+2+4+8+16+32+64+64+64+64 ms in ns.
	want := 0.0
	d := RestartBackoffBaseNs
	for i := 0; i < 10; i++ {
		want += d
		if d < RestartBackoffCapNs {
			d *= 2
			if d > RestartBackoffCapNs {
				d = RestartBackoffCapNs
			}
		}
	}
	if o.BackoffNs != want {
		t.Fatalf("backoff = %v, want %v", o.BackoffNs, want)
	}
}
