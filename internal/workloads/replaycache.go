package workloads

import (
	"fmt"
	"sync"

	"gtpin/internal/cofluent"
	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/gtpin"
)

// ReplayCacheStats reports a cache's hit/miss history. Hits/Misses
// count the instrumented-replay phase; NativeHits/NativeMisses count
// the native (timed) phase, which is memoizable for clean units because
// trial seeds only perturb its reported timings, never its execution.
type ReplayCacheStats struct {
	Hits         uint64
	Misses       uint64
	Entries      int
	NativeHits   uint64
	NativeMisses uint64
}

// ReplayCache memoizes the instrumented-replay phase of the profiling
// pipeline across sweep units that differ only in trial seed. The
// replay runs on an unjittered device — trial seeds perturb only the
// native phase's timings — so its invocation counts, static kernel
// shapes, and injected-fault tallies are a pure function of
// (application, scale, device config, fault model). A multi-trial
// sweep otherwise re-instruments and re-executes an identical replay
// once per trial; the cache collapses those to one execution whose
// GT-Pin state every trial's profile join shares read-only. Artifacts
// stay byte-identical to uncached runs because the memoized result is
// exactly what each trial would have recomputed.
type ReplayCache struct {
	mu        sync.Mutex
	entries   map[string]replayEntry
	natives   map[string]*nativeEntry
	hits      uint64
	misses    uint64
	natHits   uint64
	natMisses uint64
}

type replayEntry struct {
	g     *gtpin.GTPin
	stats faults.Stats
}

// nativeEntry is one memoized native phase: the built application, its
// replayable recording, and the tracer of an UNJITTERED run — per-trial
// timings are synthesized from it with Tracer.PerturbTimes. All three
// are shared read-only across trials.
type nativeEntry struct {
	app    *App
	rec    *cofluent.Recording
	tracer *cofluent.Tracer
}

// NewReplayCache creates an empty cache.
func NewReplayCache() *ReplayCache {
	return &ReplayCache{
		entries: make(map[string]replayEntry),
		natives: make(map[string]*nativeEntry),
	}
}

// Stats snapshots the cache counters.
func (rc *ReplayCache) Stats() ReplayCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ReplayCacheStats{
		Hits: rc.hits, Misses: rc.misses, Entries: len(rc.entries),
		NativeHits: rc.natHits, NativeMisses: rc.natMisses,
	}
}

// replayKey identifies one replay configuration. The trial seed is
// absent by design: it must never influence the replay phase, and the
// cache is what enforces that economy.
func replayKey(spec *Spec, sc Scale, cfg device.Config, fo *FaultOptions) string {
	key := fmt.Sprintf("%s|%+v|%+v|%s", spec.Name, cfg, sc, faultSig(fo))
	if fo != nil && fo.Resilience != nil {
		key += fmt.Sprintf("|%+v", *fo.Resilience)
	}
	return key
}

// do returns the cached replay for key, or runs f and caches its
// result. Failed replays are never cached, so supervised restarts
// re-execute from scratch. Concurrent shards may race to compute the
// same key; the first stored entry wins and the loser adopts it — both
// computations are deterministic and identical, the adoption only
// keeps pointer sharing canonical.
func (rc *ReplayCache) do(key string, f func() (*gtpin.GTPin, faults.Stats, error)) (*gtpin.GTPin, faults.Stats, error) {
	rc.mu.Lock()
	if e, ok := rc.entries[key]; ok {
		rc.hits++
		mReplayHits.Inc()
		rc.mu.Unlock()
		return e.g, e.stats, nil
	}
	rc.misses++
	mReplayMisses.Inc()
	rc.mu.Unlock()

	g, st, err := f()
	if err != nil {
		return nil, st, err
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e, ok := rc.entries[key]; ok {
		return e.g, e.stats, nil
	}
	rc.entries[key] = replayEntry{g: g, stats: st}
	return g, st, nil
}

// doNative is do for the native phase, with the same error and race
// discipline.
func (rc *ReplayCache) doNative(key string, f func() (*nativeEntry, error)) (*nativeEntry, error) {
	rc.mu.Lock()
	if e, ok := rc.natives[key]; ok {
		rc.natHits++
		mNativeHits.Inc()
		rc.mu.Unlock()
		return e, nil
	}
	rc.natMisses++
	mNativeMisses.Inc()
	rc.mu.Unlock()

	e, err := f()
	if err != nil {
		return nil, err
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if cached, ok := rc.natives[key]; ok {
		return cached, nil
	}
	rc.natives[key] = e
	return e, nil
}
