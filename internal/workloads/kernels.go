package workloads

// Reusable kernel builders. Each returns a real program in the kernel IR:
// blurs convolve, hashes mix, fractals iterate with data-dependent early
// exits, cascades branch per stage. Loop trip counts usually come from
// kernel arguments, so the same kernel exhibits argument-dependent
// behaviour — the property that makes kernel-name-only feature vectors
// inaccurate for some applications (Section V-B).
//
// Loop counters run at the kernel's dispatch width (every channel holds
// the same counter value, as vectorized GPU code does); only the loop
// back-edge branch executes scalar, plus a few deliberately scalar
// address computations, giving the small SIMD1 share seen in Figure 4b.
//
// Surface/argument conventions are per builder and documented on each.

import (
	"gtpin/internal/asm"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// gidAddr emits addr = (gid + offset) * elem, the canonical per-lane
// buffer address.
func gidAddr(a *asm.KernelBuilder, addr isa.Reg, offset isa.Operand, elemShift uint32) {
	a.Add(addr, asm.R(kernel.GIDReg), offset)
	a.Shl(addr, asm.R(addr), asm.I(elemShift))
}

// openLoop opens a counted loop with a full-width counter. Returns the
// counter register; the caller emits the body, then calls closeLoop.
func openLoop(a *asm.KernelBuilder, label string) isa.Reg {
	i := a.Temp()
	a.MovI(i, 0)
	a.Label(label)
	return i
}

// closeLoop increments the counter and branches back while i < limit.
// The comparison runs full width (all channels agree); the back-edge
// branch itself is scalar.
func closeLoop(a *asm.KernelBuilder, label string, i isa.Reg, limit isa.Operand) {
	a.AddI(i, i, 1)
	a.Cmp(isa.CondLT, asm.R(i), limit)
	a.SetWidth(1)
	a.Br(isa.BranchAny, label)
	a.SetWidth(0)
}

// guardTail emits a rarely-taken boundary/degenerate-case handler: a
// guard branch into a chain of n handler blocks that saturate the result
// register. Real JIT-compiled kernels carry many such statically-present
// but rarely-executed blocks (boundary clamps, NaN/denormal handling,
// format fallbacks), which is where the paper's large unique-basic-block
// counts (mean 1139 per program) come from. The guard costs two dynamic
// instructions per channel-group; the handler chain almost never runs.
func guardTail(a *asm.KernelBuilder, n int, result isa.Reg) {
	a.Cmp(isa.CondGE, asm.R(kernel.GIDReg), asm.I(0xFFFFFF00))
	a.SetWidth(1)
	a.Br(isa.BranchAny, "guard_tail")
	a.SetWidth(0)
	a.Jmp("guard_done")
	a.Label("guard_tail")
	t := a.Temp()
	for i := 0; i < n; i++ {
		// One handler block per case: clamp against a case-specific bound
		// and dispatch onwards.
		a.MovI(t, uint32(0x100+i*37))
		a.Min(result, asm.R(result), asm.R(t))
		a.Xor(t, asm.R(t), asm.R(result))
		a.Cmp(isa.CondEQ, asm.R(t), asm.I(uint32(i)))
		a.Br(isa.BranchAll, "guard_done")
	}
	a.Jmp("guard_done")
	a.Label("guard_done")
}

// newStreamCopy builds a double-buffered stream copy with register
// staging: y[i] = x[i] over `iters` (arg 0) strided passes.
// Args: 0=iters. Surfaces: 0=src, 1=dst.
func newStreamCopy(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	iters := a.Arg(0)
	src, dst := a.Surface(0), a.Surface(1)
	addr, v, stage, sum := a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(sum, 0)
	i := openLoop(a, "pass")
	// addr = (gid + i*width) * 4, so passes stream through the buffer.
	a.Mad(addr, asm.R(i), asm.I(uint32(w)), asm.R(kernel.GIDReg))
	a.Shl(addr, asm.R(addr), asm.I(2))
	a.Load(v, addr, src, 4)
	a.Mov(stage, asm.R(v))                      // stage through a register pair, as
	a.And(stage, asm.R(stage), asm.I(0xFFFFFF)) // unpack/repack idiom
	a.Or(stage, asm.R(stage), asm.R(v))
	a.Add(sum, asm.R(sum), asm.R(stage))
	a.Mov(v, asm.R(stage))
	a.Store(dst, addr, v, 4)
	closeLoop(a, "pass", i, asm.R(iters))
	guardTail(a, 8, sum)
	a.End()
	return a.MustBuild()
}

// newStreamScale builds y[i] = s*x[i] + b with clamp over iters passes.
// Args: 0=iters, 1=scale, 2=bias. Surfaces: 0=src, 1=dst.
func newStreamScale(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	iters, s, b := a.Arg(0), a.Arg(1), a.Arg(2)
	src, dst := a.Surface(0), a.Surface(1)
	addr, v, t, u := a.Temp(), a.Temp(), a.Temp(), a.Temp()
	i := openLoop(a, "pass")
	a.Mad(addr, asm.R(i), asm.I(uint32(w)), asm.R(kernel.GIDReg))
	a.Shl(addr, asm.R(addr), asm.I(2))
	a.Load(v, addr, src, 4)
	a.Mov(t, asm.R(v))
	a.Mad(t, asm.R(s), asm.R(t), asm.R(b))
	a.Mov(u, asm.R(t))
	a.Shr(u, asm.R(u), asm.I(9))
	a.Mad(t, asm.R(u), asm.I(3), asm.R(t))
	a.Min(t, asm.R(t), asm.I(0x7FFFFFFF))
	a.Max(t, asm.R(t), asm.I(1))
	a.Mov(v, asm.R(t))
	a.Store(dst, addr, v, 4)
	closeLoop(a, "pass", i, asm.R(iters))
	guardTail(a, 9, t)
	a.End()
	return a.MustBuild()
}

// newBlur builds a 1-D convolution with triangular weights over a radius
// given by arg 0: out[i] = Σ_{r=0}^{2R} w(r)·in[i+r], normalized.
// Args: 0=radius. Surfaces: 0=src, 1=dst.
func newBlur(name string, w isa.Width, elem uint8) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	radius := a.Arg(0)
	src, dst := a.Surface(0), a.Surface(1)
	addr, v, acc, wgt, span, wsum, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	shift := uint32(2)
	if elem == 1 {
		shift = 0
	}
	a.MovI(acc, 0)
	a.MovI(wsum, 0)
	// span = 2*radius + 1 taps
	a.Shl(span, asm.R(radius), asm.I(1))
	a.AddI(span, span, 1)
	r := openLoop(a, "tap")
	// weight = radius+1 - |r - radius|
	a.Mov(t, asm.R(r))
	a.Sub(wgt, asm.R(t), asm.R(radius))
	a.Abs(wgt, asm.R(wgt))
	a.Sub(wgt, asm.R(radius), asm.R(wgt))
	a.AddI(wgt, wgt, 1)
	a.Add(wsum, asm.R(wsum), asm.R(wgt))
	gidAddr(a, addr, asm.R(r), shift)
	a.Load(v, addr, src, elem)
	a.Mov(t, asm.R(v))
	a.And(t, asm.R(t), asm.I(0xFFFFFF))
	a.Mad(acc, asm.R(wgt), asm.R(t), asm.R(acc))
	closeLoop(a, "tap", r, asm.R(span))
	a.Math(isa.MathIDiv, acc, asm.R(acc), asm.R(wsum))
	guardTail(a, 12, acc)
	gidAddr(a, addr, asm.I(0), shift)
	a.Store(dst, addr, acc, elem)
	a.End()
	return a.MustBuild()
}

// newHistogram builds a histogram: for `perItem` (arg 0) elements per
// work-item, bin = luma(value) & 255, hist[bin] += 1 atomically.
// Args: 0=perItem. Surfaces: 0=data, 1=histogram.
func newHistogram(name string, w isa.Width, elem uint8) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	perItem := a.Arg(0)
	data, hist := a.Surface(0), a.Surface(1)
	addr, v, bin, one, t, u := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(one, 1)
	binShift := uint32(2)
	if elem == 8 {
		binShift = 3
	}
	i := openLoop(a, "item")
	a.Mad(addr, asm.R(i), asm.I(uint32(w)), asm.R(kernel.GIDReg))
	a.Shl(addr, asm.R(addr), asm.I(2))
	a.Load(v, addr, data, 4)
	// luma ≈ (r + 2g + b) / 4 from packed channels
	a.Mov(t, asm.R(v))
	a.Shr(t, asm.R(t), asm.I(8))
	a.And(t, asm.R(t), asm.I(255))
	a.Mov(u, asm.R(v))
	a.And(u, asm.R(u), asm.I(255))
	a.Mad(u, asm.R(t), asm.I(2), asm.R(u))
	a.Shr(t, asm.R(v), asm.I(16))
	a.And(t, asm.R(t), asm.I(255))
	a.Add(u, asm.R(u), asm.R(t))
	a.Shr(bin, asm.R(u), asm.I(2))
	a.And(bin, asm.R(bin), asm.I(255))
	a.Shl(bin, asm.R(bin), asm.I(binShift))
	a.AtomicAdd(v, hist, bin, one, elem)
	closeLoop(a, "item", i, asm.R(perItem))
	guardTail(a, 12, v)
	a.End()
	return a.MustBuild()
}

// newReduce builds a block-sum reduction: each group block-loads `spans`
// (arg 0) contiguous chunks, sums them, and stores one partial per group.
// The block addressing is deliberately scalar (SIMD1).
// Args: 0=spans. Surfaces: 0=src, 1=partials.
func newReduce(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	spans := a.Arg(0)
	src, out := a.Surface(0), a.Surface(1)
	addr, v, acc, t := a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(acc, 0)
	i := openLoop(a, "span")
	a.SetWidth(1)
	a.Mul(addr, asm.R(kernel.TIDReg), asm.R(spans))
	a.Add(addr, asm.R(addr), asm.R(i))
	a.Shl(addr, asm.R(addr), asm.I(6)) // 64-byte chunks
	a.SetWidth(0)
	a.LoadBlock(v, addr, src, 4)
	a.Mov(t, asm.R(v))
	a.Shr(t, asm.R(t), asm.I(1))
	a.Add(acc, asm.R(acc), asm.R(t))
	closeLoop(a, "span", i, asm.R(spans))
	guardTail(a, 8, acc)
	a.SetWidth(1)
	a.Shl(addr, asm.R(kernel.TIDReg), asm.I(2))
	a.SetWidth(0)
	a.Store(out, addr, acc, 4)
	a.End()
	return a.MustBuild()
}

// newHashRounds builds a logic-heavy mixing loop (SHA-flavoured):
// `rounds` (arg 0) rounds of xor/rotate/add over two per-lane state
// words.
// Args: 0=rounds, 1=key. Surfaces: 0=out.
func newHashRounds(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	rounds, key := a.Arg(0), a.Arg(1)
	out := a.Surface(0)
	v, v2, t, u, addr := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.Xor(v, asm.R(kernel.GIDReg), asm.R(key))
	a.Mov(v2, asm.R(kernel.GIDReg))
	a.Not(v2, asm.R(v2))
	a.MovI(u, 0x9E3779B9)
	i := openLoop(a, "round")
	// v = rotl(v, 7) ^ (v2 + u); v2 = rotl(v2, 13) + v; u += key
	a.Shl(t, asm.R(v), asm.I(7))
	a.Shr(v, asm.R(v), asm.I(25))
	a.Or(t, asm.R(t), asm.R(v))
	a.Add(v, asm.R(v2), asm.R(u))
	a.Xor(v, asm.R(v), asm.R(t))
	a.Shl(t, asm.R(v2), asm.I(13))
	a.Shr(v2, asm.R(v2), asm.I(19))
	a.Or(v2, asm.R(v2), asm.R(t))
	a.Add(v2, asm.R(v2), asm.R(v))
	a.Add(u, asm.R(u), asm.R(key))
	closeLoop(a, "round", i, asm.R(rounds))
	a.Xor(v, asm.R(v), asm.R(v2))
	guardTail(a, 10, v)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(out, addr, v, 4)
	a.End()
	return a.MustBuild()
}

// newAESRound builds table-lookup crypto rounds: per round, four
// S-box-style gathers indexed by state bytes, mixed and key-whitened.
// Args: 0=rounds, 1=key. Surfaces: 0=input, 1=sbox table, 2=output.
func newAESRound(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	rounds, key := a.Arg(0), a.Arg(1)
	in, sbox, out := a.Surface(0), a.Surface(1), a.Surface(2)
	addr, st, idx, t, acc := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	gidAddr(a, addr, asm.I(0), 2)
	a.Load(st, addr, in, 4)
	a.Xor(st, asm.R(st), asm.R(key))
	i := openLoop(a, "round")
	a.MovI(acc, 0)
	for b := uint32(0); b < 4; b++ {
		a.Mov(idx, asm.R(st))
		a.Shr(idx, asm.R(idx), asm.I(8*b))
		a.And(idx, asm.R(idx), asm.I(255))
		a.Shl(idx, asm.R(idx), asm.I(2))
		a.Load(t, idx, sbox, 4)
		if b > 0 {
			a.Shl(t, asm.R(t), asm.I(b))
		}
		a.Xor(acc, asm.R(acc), asm.R(t))
	}
	a.Mov(t, asm.R(acc))
	a.Shr(t, asm.R(t), asm.I(16))
	a.Xor(acc, asm.R(acc), asm.R(t))
	a.Xor(st, asm.R(acc), asm.R(key))
	closeLoop(a, "round", i, asm.R(rounds))
	guardTail(a, 28, st)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(out, addr, st, 4)
	a.End()
	return a.MustBuild()
}

// newNBody builds a particle-interaction kernel: for each of `count`
// (arg 0) other particles, compute an inverse-square-root interaction
// and accumulate. Math-unit heavy; the neighbour block address is scalar.
// Args: 0=count. Surfaces: 0=positions, 1=forces.
func newNBody(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	count := a.Arg(0)
	pos, force := a.Surface(0), a.Surface(1)
	addr, p, q, d, f, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	gidAddr(a, addr, asm.I(0), 2)
	a.Load(p, addr, pos, 4)
	a.MovI(f, 0)
	j := openLoop(a, "other")
	a.SetWidth(1)
	a.Shl(addr, asm.R(j), asm.I(2))
	a.SetWidth(0)
	a.LoadBlock(q, addr, pos, 4)
	a.Mov(t, asm.R(q))
	a.Sub(d, asm.R(p), asm.R(t))
	a.Mul(d, asm.R(d), asm.R(d))
	a.AddI(d, d, 1) // softening
	a.Math(isa.MathSqrt, d, asm.R(d), asm.I(0))
	a.Math(isa.MathInv, d, asm.R(d), asm.I(0))
	a.Shr(d, asm.R(d), asm.I(16))
	a.Mad(f, asm.R(d), asm.I(3), asm.R(f))
	closeLoop(a, "other", j, asm.R(count))
	guardTail(a, 14, f)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(force, addr, f, 4)
	a.End()
	return a.MustBuild()
}

// newJulia builds an escape-time fractal iteration with a data-dependent
// exit: lanes iterate z = z² + c until |z| exceeds a threshold or maxIter
// (arg 0) is reached; per-lane iteration counts are accumulated with
// predication and stored.
// Args: 0=maxIter, 1=cReal. Surfaces: 0=out.
func newJulia(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	maxIter, cr := a.Arg(0), a.Arg(1)
	out := a.Surface(0)
	addr, z, n, t, i := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	// z seeded from gid so neighbouring lanes diverge at different times.
	a.Mul(z, asm.R(kernel.GIDReg), asm.I(2654435761))
	a.Shr(z, asm.R(z), asm.I(12))
	a.MovI(n, 0)
	a.MovI(i, 0)
	a.Label("iter")
	// z = (z*z >> 16) + c, tracking the high product half
	a.Mov(t, asm.R(z))
	a.Mach(t, asm.R(t), asm.R(z))
	a.Shl(t, asm.R(t), asm.I(16))
	a.Mul(z, asm.R(z), asm.R(z))
	a.Shr(z, asm.R(z), asm.I(16))
	a.Or(z, asm.R(z), asm.R(t))
	a.Add(z, asm.R(z), asm.R(cr))
	// converged lanes (|z| < 2^24) bump their counters
	a.Cmp(isa.CondLT, asm.R(z), asm.I(1<<24))
	a.SetPred(isa.PredOn)
	a.AddI(n, n, 1)
	a.SetPred(isa.PredNoneMode)
	// loop while any lane is still converging and i < maxIter
	a.AddI(i, i, 1)
	a.Cmp(isa.CondGE, asm.R(i), asm.R(maxIter))
	a.SetWidth(1)
	a.Br(isa.BranchAny, "done") // iteration limit reached (scalar test)
	a.SetWidth(0)
	a.Cmp(isa.CondLT, asm.R(z), asm.I(1<<24))
	a.Br(isa.BranchAny, "iter") // some lane still inside
	a.Label("done")
	guardTail(a, 18, n)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(out, addr, n, 4)
	a.End()
	return a.MustBuild()
}

// newRaycastAO builds an ambient-occlusion sampler: `samples` (arg 0)
// rays per work-item, each marched 4 fixed steps with a hit test that
// predicates the occlusion accumulation. One scene fetch per march.
// Args: 0=samples. Surfaces: 0=scene, 1=out.
func newRaycastAO(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	samples := a.Arg(0)
	scene, out := a.Surface(0), a.Surface(1)
	addr, dir, pos, h, occ, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(occ, 0)
	s := openLoop(a, "ray")
	a.Add(dir, asm.R(kernel.GIDReg), asm.R(s))
	a.Math(isa.MathSin, dir, asm.R(dir), asm.I(0))
	a.Mov(pos, asm.R(kernel.GIDReg))
	for step := 0; step < 4; step++ {
		a.Mad(pos, asm.R(dir), asm.I(3), asm.R(pos))
		a.Mov(t, asm.R(pos))
		a.Shr(t, asm.R(t), asm.I(3))
		a.Xor(pos, asm.R(pos), asm.R(t))
	}
	a.And(addr, asm.R(pos), asm.I(0xFFFF))
	a.Shl(addr, asm.R(addr), asm.I(2))
	a.Load(h, addr, scene, 4)
	a.Cmp(isa.CondGT, asm.R(h), asm.I(1<<30))
	a.SetPred(isa.PredOn)
	a.AddI(occ, occ, 1)
	a.SetPred(isa.PredNoneMode)
	closeLoop(a, "ray", s, asm.R(samples))
	guardTail(a, 20, occ)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(out, addr, occ, 4)
	a.End()
	return a.MustBuild()
}

// newFFTPass builds one butterfly pass: x' = x + t·y, y' = x - t·y with a
// table twiddle, partner strided by arg 1.
// Args: 0=reps, 1=strideShift. Surfaces: 0=data (in/out).
func newFFTPass(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	reps, strideShift := a.Arg(0), a.Arg(1)
	data := a.Surface(0)
	addrA, addrB, x, y, tw, t, u := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	r := openLoop(a, "rep")
	gidAddr(a, addrA, asm.R(r), 2)
	a.MovI(t, 1)
	a.Shl(t, asm.R(t), asm.R(strideShift))
	a.Shl(t, asm.R(t), asm.I(2))
	a.Add(addrB, asm.R(addrA), asm.R(t))
	a.Load(x, addrA, data, 4)
	a.Load(y, addrB, data, 4)
	a.Math(isa.MathCos, tw, asm.R(kernel.GIDReg), asm.I(0))
	a.Mov(u, asm.R(y))
	a.Mul(t, asm.R(tw), asm.R(u))
	a.Shr(t, asm.R(t), asm.I(15))
	a.Mov(u, asm.R(x))
	a.Add(y, asm.R(u), asm.R(t))
	a.Sub(x, asm.R(u), asm.R(t))
	a.Avg(u, asm.R(x), asm.R(y))
	a.Xor(u, asm.R(u), asm.R(tw))
	a.Store(data, addrA, y, 4)
	a.Store(data, addrB, x, 4)
	closeLoop(a, "rep", r, asm.R(reps))
	guardTail(a, 22, x)
	a.End()
	return a.MustBuild()
}

// newJacobi builds a 5-point stencil smoothing step, `sweeps` (arg 0)
// times: out[i] = weighted avg of in[i], in[i±1], in[i±pitch].
// Args: 0=sweeps, 1=pitch. Surfaces: 0=in, 1=out.
func newJacobi(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	sweeps, pitch := a.Arg(0), a.Arg(1)
	in, out := a.Surface(0), a.Surface(1)
	addr, c, n1, n2, acc, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	s := openLoop(a, "sweep")
	gidAddr(a, addr, asm.R(s), 2)
	a.Load(c, addr, in, 4)
	a.AddI(addr, addr, 4)
	a.Load(n1, addr, in, 4)
	a.Mov(t, asm.R(c))
	a.Shl(t, asm.R(t), asm.I(1)) // centre weight 2
	a.Add(acc, asm.R(t), asm.R(n1))
	a.Sub(addr, asm.R(addr), asm.I(8))
	a.Load(n1, addr, in, 4)
	a.Add(acc, asm.R(acc), asm.R(n1))
	a.Mad(addr, asm.R(pitch), asm.I(4), asm.R(addr))
	a.Load(n2, addr, in, 4)
	a.Add(acc, asm.R(acc), asm.R(n2))
	a.Mov(t, asm.R(acc))
	a.Shr(acc, asm.R(t), asm.I(2))
	a.Avg(acc, asm.R(acc), asm.R(c))
	gidAddr(a, addr, asm.R(s), 2)
	a.Store(out, addr, acc, 4)
	closeLoop(a, "sweep", s, asm.R(sweeps))
	guardTail(a, 16, acc)
	a.End()
	return a.MustBuild()
}

// newCascade builds a classifier cascade with `stages` branchy stages:
// each stage loads a feature, compares against a threshold derived from
// arg 0, and rejects early — producing two basic blocks per stage plus a
// shared reject path, the structure that gives face detection its large
// unique-basic-block count.
// Args: 0=threshBase. Surfaces: 0=features, 1=out.
func newCascade(name string, w isa.Width, stages int) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	thresh := a.Arg(0)
	feat, out := a.Surface(0), a.Surface(1)
	addr, v, t, score := a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(score, 0)
	for s := 0; s < stages; s++ {
		a.Add(addr, asm.R(kernel.GIDReg), asm.I(uint32(s*17)))
		a.And(addr, asm.R(addr), asm.I(0xFFFF))
		a.Shl(addr, asm.R(addr), asm.I(2))
		a.Load(v, addr, feat, 4)
		a.Mov(t, asm.R(v))
		a.Shr(t, asm.R(t), asm.I(4))
		a.Mad(v, asm.R(t), asm.I(15), asm.R(v))
		a.Add(t, asm.R(thresh), asm.I(uint32(s)))
		a.Cmp(isa.CondLT, asm.R(v), asm.R(t))
		a.Br(isa.BranchAll, "reject") // all lanes weak: reject the window
		a.AddI(score, score, 1)
	}
	a.Jmp("accept")
	a.Label("reject")
	a.MovI(score, 0)
	a.Label("accept")
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(out, addr, score, 4)
	a.End()
	return a.MustBuild()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// newVertexTransform builds a 3-component matrix transform with register
// staging of the vertex. Kernels built with prefetch start with a narrow
// 4-wide warm-up fetch — the source of the rare SIMD4 instructions
// Figure 4b reports for a handful of applications.
// Args: 0=m0, 1=m1, 2=m2. Surfaces: 0=verts in, 1=verts out.
func newVertexTransform(name string, w isa.Width) *kernel.Kernel {
	return newVertexTransformOpt(name, w, false)
}

func newVertexTransformOpt(name string, w isa.Width, prefetch bool) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	m0, m1, m2 := a.Arg(0), a.Arg(1), a.Arg(2)
	in, out := a.Surface(0), a.Surface(1)
	addr, x, y, z, r, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Mul(addr, asm.R(addr), asm.I(3))
	if prefetch {
		// Quad-wide warm-up fetch of the leading vertices.
		a.SetWidth(4)
		a.Load(t, addr, in, 4)
		a.SetWidth(0)
	}
	a.Load(x, addr, in, 4)
	a.AddI(addr, addr, 4)
	a.Load(y, addr, in, 4)
	a.AddI(addr, addr, 4)
	a.Load(z, addr, in, 4)
	for c, m := range []isa.Reg{m0, m1, m2} {
		a.Mov(r, asm.R(x))
		a.Mul(r, asm.R(r), asm.R(m))
		a.Mov(t, asm.R(y))
		a.Mad(r, asm.R(t), asm.R(m), asm.R(r))
		a.Mov(t, asm.R(z))
		a.Mad(r, asm.R(t), asm.I(uint32(c+1)), asm.R(r))
		a.Shr(r, asm.R(r), asm.I(8))
		a.Store(out, addr, r, 4)
		a.Sub(addr, asm.R(addr), asm.I(4))
	}
	guardTail(a, 16, r)
	a.End()
	return a.MustBuild()
}

// newFragShade builds a texture-sampling fragment shader: `taps` (arg 0)
// texture fetches blended into a lit colour, with per-channel unpacking.
// Args: 0=taps, 1=light. Surfaces: 0=texture, 1=framebuffer.
func newFragShade(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	taps, light := a.Arg(0), a.Arg(1)
	tex, fb := a.Surface(0), a.Surface(1)
	addr, uv, c, acc, ch, t2 := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(acc, 0)
	t := openLoop(a, "tap")
	a.Mad(uv, asm.R(t), asm.I(97), asm.R(kernel.GIDReg))
	a.And(uv, asm.R(uv), asm.I(0x3FFFF))
	a.Shl(addr, asm.R(uv), asm.I(2))
	a.Load(c, addr, tex, 4)
	// unpack-shade-repack: two channels lit separately
	a.Mov(ch, asm.R(c))
	a.And(ch, asm.R(ch), asm.I(0xFFFF))
	a.Mul(ch, asm.R(ch), asm.R(light))
	a.Shr(ch, asm.R(ch), asm.I(8))
	a.Mov(t2, asm.R(c))
	a.Shr(t2, asm.R(t2), asm.I(16))
	a.Mul(t2, asm.R(t2), asm.R(light))
	a.Shr(t2, asm.R(t2), asm.I(8))
	a.Shl(t2, asm.R(t2), asm.I(16))
	a.Or(ch, asm.R(ch), asm.R(t2))
	a.Add(acc, asm.R(acc), asm.R(ch))
	closeLoop(a, "tap", t, asm.R(taps))
	guardTail(a, 24, acc)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(fb, addr, acc, 4)
	a.End()
	return a.MustBuild()
}

// newBlend builds a video crossfade: out = (alpha·a + (256-alpha)·b)>>8,
// repeated `rows` (arg 0) times at row stride to cover a frame slice.
// Args: 0=rows, 1=alpha, 2=pitch. Surfaces: 0=frameA, 1=frameB, 2=out.
func newBlend(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	rows, alpha, pitch := a.Arg(0), a.Arg(1), a.Arg(2)
	fa, fb, out := a.Surface(0), a.Surface(1), a.Surface(2)
	addr, va, vb, beta, r2, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(beta, 256)
	a.Sub(beta, asm.R(beta), asm.R(alpha))
	r := openLoop(a, "row")
	a.Mov(r2, asm.R(r))
	a.Mul(r2, asm.R(r2), asm.R(pitch))
	a.Add(addr, asm.R(r2), asm.R(kernel.GIDReg))
	a.Shl(addr, asm.R(addr), asm.I(2))
	a.Load(va, addr, fa, 4)
	a.Load(vb, addr, fb, 4)
	a.Mov(t, asm.R(va))
	a.Mul(t, asm.R(t), asm.R(alpha))
	a.Mad(t, asm.R(vb), asm.R(beta), asm.R(t))
	a.Shr(t, asm.R(t), asm.I(8))
	a.Min(t, asm.R(t), asm.I(0xFFFFFF))
	a.Mov(va, asm.R(t))
	a.Store(out, addr, va, 4)
	closeLoop(a, "row", r, asm.R(rows))
	guardTail(a, 18, va)
	a.End()
	return a.MustBuild()
}

// newColorGrade builds a write-heavy grading pass: one read feeds
// `writes` (arg 0) graded output planes — the Sony Vegas pattern of
// writing far more bytes than are read.
// Args: 0=writes, 1=gain. Surfaces: 0=in, 1=out.
func newColorGrade(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	writes, gain := a.Arg(0), a.Arg(1)
	in, out := a.Surface(0), a.Surface(1)
	addr, v, g, plane, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	gidAddr(a, addr, asm.I(0), 2)
	a.Load(v, addr, in, 4)
	p := openLoop(a, "plane")
	a.Mov(g, asm.R(v))
	a.Mad(g, asm.R(g), asm.R(gain), asm.R(p))
	a.Mov(t, asm.R(g))
	a.Shr(t, asm.R(t), asm.I(7))
	a.Add(g, asm.R(g), asm.R(t))
	a.Shr(g, asm.R(g), asm.I(4))
	a.Min(g, asm.R(g), asm.I(0xFFFFFF))
	a.Mad(plane, asm.R(p), asm.I(1<<18), asm.R(addr))
	a.Store(out, plane, g, 4)
	a.Xor(g, asm.R(g), asm.I(0x8080))
	a.AddI(plane, plane, 4)
	a.Store(out, plane, g, 4) // chroma companion
	closeLoop(a, "plane", p, asm.R(writes))
	guardTail(a, 22, g)
	a.End()
	return a.MustBuild()
}

// newMotionEstimate builds a sum-of-absolute-differences search over
// `cands` (arg 0) candidate offsets, tracking the best candidate.
// Args: 0=cands. Surfaces: 0=ref, 1=cur, 2=best.
func newMotionEstimate(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	cands := a.Arg(0)
	ref, cur, best := a.Surface(0), a.Surface(1), a.Surface(2)
	addr, rv, cv, sad, bestv, t := a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp(), a.Temp()
	a.MovI(bestv, 0xFFFFFFFF)
	gidAddr(a, addr, asm.I(0), 2)
	// Quad-wide warm-up fetch before the scalar-per-item search.
	a.SetWidth(4)
	a.Load(rv, addr, ref, 4)
	a.SetWidth(0)
	a.Load(cv, addr, cur, 4)
	k := openLoop(a, "cand")
	a.Mad(addr, asm.R(k), asm.I(31), asm.R(kernel.GIDReg))
	a.And(addr, asm.R(addr), asm.I(0x3FFFF))
	a.Shl(addr, asm.R(addr), asm.I(2))
	a.Load(rv, addr, ref, 4)
	a.Mov(t, asm.R(rv))
	a.Sub(sad, asm.R(t), asm.R(cv))
	a.Abs(sad, asm.R(sad))
	a.Mov(t, asm.R(sad))
	a.Shl(t, asm.R(t), asm.I(1))
	a.Add(sad, asm.R(sad), asm.R(t))
	a.Min(bestv, asm.R(bestv), asm.R(sad))
	closeLoop(a, "cand", k, asm.R(cands))
	guardTail(a, 20, bestv)
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(best, addr, bestv, 4)
	a.End()
	return a.MustBuild()
}

// newComputeStress builds the Sandra "Processor GPU" stress kernel:
// `iters` (arg 0) iterations of pure multiply-add chains — ~90%
// computation instructions, nearly no memory traffic.
// Args: 0=iters, 1=seed. Surfaces: 0=out.
func newComputeStress(name string, w isa.Width) *kernel.Kernel {
	a := asm.NewKernel(name, w)
	iters, seed := a.Arg(0), a.Arg(1)
	out := a.Surface(0)
	addr := a.Temp()
	v := a.Temps(4)
	for j, r := range v {
		a.Add(r, asm.R(kernel.GIDReg), asm.I(uint32(j*7+1)))
	}
	i := openLoop(a, "iter")
	for j, r := range v {
		n := v[(j+1)%len(v)]
		a.Mad(r, asm.R(r), asm.R(seed), asm.R(n))
		a.Mul(n, asm.R(n), asm.R(r))
		a.Add(r, asm.R(r), asm.R(n))
		a.Mad(n, asm.R(r), asm.I(uint32(2*j+3)), asm.R(n))
		a.Mach(r, asm.R(r), asm.R(n))
		a.Add(r, asm.R(r), asm.I(uint32(j+1)))
	}
	closeLoop(a, "iter", i, asm.R(iters))
	a.Add(v[0], asm.R(v[0]), asm.R(v[2]))
	guardTail(a, 10, v[0])
	gidAddr(a, addr, asm.I(0), 2)
	a.Store(out, addr, v[0], 4)
	a.End()
	return a.MustBuild()
}
