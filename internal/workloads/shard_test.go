package workloads

import (
	"bytes"
	"context"
	"runtime"
	"testing"
)

// TestPoolByteIdenticalAcrossWorkerCounts is the sharding determinism
// property: the same sweep executed serially, on two shards, and on
// NumCPU shards settles into byte-identical artifacts in unit order —
// the invariant that makes every report derived from a sharded run
// identical to a serial one.
func TestPoolByteIdenticalAcrossWorkerCounts(t *testing.T) {
	units := poolUnits(t)
	runAt := func(workers int) [][]byte {
		t.Helper()
		outs, err := RunPool(context.Background(), units, PoolOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		enc := make([][]byte, len(outs))
		for i, o := range outs {
			if o.Err != nil || o.Artifact == nil {
				t.Fatalf("workers=%d unit %s: %v", workers, units[i].Spec.Name, o.Err)
			}
			enc[i] = encodeArtifact(t, o.Artifact)
		}
		return enc
	}

	serial := runAt(1)
	for _, w := range []int{2, runtime.NumCPU()} {
		sharded := runAt(w)
		for i := range serial {
			if !bytes.Equal(serial[i], sharded[i]) {
				t.Errorf("workers=%d: unit %s artifact differs from serial run", w, units[i].Spec.Name)
			}
		}
	}
}

// TestPoolReplayCacheByteIdentical is the caching determinism property:
// a multi-trial sweep satisfied from the replay cache (one native
// execution plus synthesized per-trial timings, one shared instrumented
// replay) must produce artifacts byte-identical to a sweep where every
// unit executes both phases from scratch. This is what licenses the
// memoization in runPipeline — trial seeds must never influence
// anything but the reported timings.
func TestPoolReplayCacheByteIdentical(t *testing.T) {
	var units []Unit
	for trial := int64(1); trial <= 3; trial++ {
		for _, u := range poolUnits(t) {
			u.TrialSeed = trial
			units = append(units, u)
		}
	}
	runWith := func(opts PoolOptions) [][]byte {
		t.Helper()
		outs, err := RunPool(context.Background(), units, opts)
		if err != nil {
			t.Fatal(err)
		}
		enc := make([][]byte, len(outs))
		for i, o := range outs {
			if o.Err != nil || o.Artifact == nil {
				t.Fatalf("unit %s: %v", units[i].Key(), o.Err)
			}
			enc[i] = encodeArtifact(t, o.Artifact)
		}
		return enc
	}

	rc := NewReplayCache()
	cached := runWith(PoolOptions{Workers: 1, ReplayCache: rc})
	uncached := runWith(PoolOptions{Workers: 1, DisableReplayCache: true})
	for i := range uncached {
		if !bytes.Equal(uncached[i], cached[i]) {
			t.Errorf("unit %s: cached artifact differs from uncached run", units[i].Key())
		}
	}
	st := rc.Stats()
	if st.Hits == 0 || st.NativeHits == 0 {
		t.Errorf("cache never hit across trials: %+v", st)
	}
	if st.Misses != uint64(len(units))/3 || st.NativeMisses != uint64(len(units))/3 {
		t.Errorf("expected one miss per app, got %+v", st)
	}
}
