package workloads

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/runstate"
)

// sweepFingerprint renders the sweep's final aggregate state — per-unit
// artifact bytes in unit order — so interrupted-then-resumed runs can be
// compared byte-for-byte against uninterrupted ones. Any report a
// harness derives from these artifacts is a pure function of these
// bytes.
func sweepFingerprint(t *testing.T, outs []Outcome) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("unit %s did not settle cleanly: %v", o.Unit.Key(), o.Err)
		}
		data, err := o.Artifact.Encode()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s %s\n", o.Unit.Key(), runstate.Digest(data))
		b.Write(data)
	}
	return b.Bytes()
}

// chaosUnits builds the crash-recovery sweep: the chaos roster with
// fault injection on, so resumed runs must also reproduce the injector's
// deterministic fault absorption.
func chaosUnits(t *testing.T) []Unit {
	t.Helper()
	units := poolUnits(t)
	for i := range units {
		units[i].Faults = &FaultOptions{Rates: faults.Uniform(0.01), Seed: 12345}
	}
	return units
}

// runUninterrupted produces the reference: a fault-free-of-crashes
// single-shot sweep with its own state dir.
func runUninterrupted(t *testing.T, units []Unit) ([]Outcome, *runstate.Dir) {
	t.Helper()
	state, err := runstate.OpenDir(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { state.Close() })
	outs, err := RunPool(context.Background(), units, PoolOptions{State: state})
	if err != nil {
		t.Fatal(err)
	}
	return outs, state
}

// TestResumeAfterCancellation kills the sweep via context cancellation
// at every unit boundary, resumes it, and asserts the resumed final
// state is byte-identical to the uninterrupted run — completed units
// skipped, the rest re-executed.
func TestResumeAfterCancellation(t *testing.T) {
	units := chaosUnits(t)
	refOuts, refState := runUninterrupted(t, units)
	want := sweepFingerprint(t, refOuts)

	for kill := 0; kill < len(units); kill++ {
		kill := kill
		t.Run(fmt.Sprintf("kill-after-%d", kill), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "state")
			state, err := runstate.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Phase 1: cancel once `kill` units have settled. Units
			// already dispatched run to completion (par's contract);
			// undispatched ones never start — the crash shape.
			ctx, cancel := context.WithCancel(context.Background())
			var settled atomic.Int64
			outs1, _ := RunPool(ctx, units, PoolOptions{
				State: state,
				OnOutcome: func(Outcome) {
					if settled.Add(1) >= int64(kill) {
						cancel()
					}
				},
			})
			cancel()
			state.Close()
			done := 0
			for _, o := range outs1 {
				if o.Artifact != nil {
					done++
				}
			}

			// Phase 2: reopen the state dir and resume.
			state2, err := runstate.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer state2.Close()
			if got := len(state2.Recovered.Completed()); got != done {
				t.Fatalf("journal records %d completed units, phase 1 produced %d", got, done)
			}
			outs2, err := RunPool(context.Background(), units, PoolOptions{State: state2, Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			resumed := 0
			for _, o := range outs2 {
				if o.Resumed {
					resumed++
				}
			}
			if resumed != done {
				t.Errorf("resume skipped %d units, want %d (journaled complete)", resumed, done)
			}
			if got := sweepFingerprint(t, outs2); !bytes.Equal(got, want) {
				t.Errorf("resumed sweep diverged from uninterrupted run\n got %d bytes\nwant %d bytes", len(got), len(want))
			}
			// The on-disk artifacts must match the reference run's too.
			for _, u := range units {
				key := u.Key()
				a, err1 := os.ReadFile(refState.UnitFile(key, ".json"))
				b, err2 := os.ReadFile(state2.UnitFile(key, ".json"))
				if err1 != nil || err2 != nil {
					t.Fatalf("artifact files unreadable: %v / %v", err1, err2)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("unit %s: resumed artifact file differs from uninterrupted run", key)
				}
			}
		})
	}
}

// TestResumeAfterWorkerPanic simulates a sweep brought down by a
// persistently panicking unit (restart budget exhausted, typed failure
// journaled), then resumes after the "fix": the failed unit re-executes,
// completed ones are skipped, and the final state is byte-identical to a
// run that never panicked.
func TestResumeAfterWorkerPanic(t *testing.T) {
	units := chaosUnits(t)
	refOuts, _ := runUninterrupted(t, units)
	want := sweepFingerprint(t, refOuts)

	dir := filepath.Join(t.TempDir(), "state")
	state, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	target := units[2].Key()
	poolTestHook = func(u Unit, attempt int) {
		if u.Key() == target {
			panic("crash in worker")
		}
	}
	outs1, err := RunPool(context.Background(), units, PoolOptions{State: state, MaxRestarts: -1})
	poolTestHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if outs1[2].Err == nil {
		t.Fatal("panicking unit reported success")
	}
	state.Close()

	state2, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	if len(state2.Recovered.Failed()) != 1 || len(state2.Recovered.Completed()) != len(units)-1 {
		t.Fatalf("journal state: %d failed / %d completed, want 1 / %d",
			len(state2.Recovered.Failed()), len(state2.Recovered.Completed()), len(units)-1)
	}
	outs2, err := RunPool(context.Background(), units, PoolOptions{State: state2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if outs2[2].Resumed {
		t.Error("failed unit was skipped instead of re-executed")
	}
	for i, o := range outs2 {
		if i != 2 && !o.Resumed {
			t.Errorf("completed unit %s re-executed on resume", o.Unit.Key())
		}
	}
	if got := sweepFingerprint(t, outs2); !bytes.Equal(got, want) {
		t.Error("post-panic resume diverged from the clean run")
	}
}

// TestResumeReExecutesInFlight: a unit journaled started but never
// finished (the process died mid-unit) is re-executed on resume, and a
// torn journal tail from the crash is absorbed.
func TestResumeReExecutesInFlight(t *testing.T) {
	units := chaosUnits(t)
	refOuts, _ := runUninterrupted(t, units)
	want := sweepFingerprint(t, refOuts)

	dir := filepath.Join(t.TempDir(), "state")
	state, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Complete only the first unit, then simulate dying mid-way through
	// the second: a started record with no terminal, plus a torn tail.
	if _, err := RunPool(context.Background(), units[:1], PoolOptions{State: state}); err != nil {
		t.Fatal(err)
	}
	if err := state.Journal.Started(units[1].Key()); err != nil {
		t.Fatal(err)
	}
	state.Close()
	jpath := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"c":99,"r":{"seq":4,"status":"comp`) // torn mid-append
	f.Close()

	state2, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	if !state2.Recovered.Torn {
		t.Fatal("torn tail not detected on resume")
	}
	if inf := state2.Recovered.InFlight(); len(inf) != 1 {
		t.Fatalf("in-flight units = %+v, want exactly the mid-crash one", inf)
	}
	outs, err := RunPool(context.Background(), units, PoolOptions{State: state2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Resumed || outs[1].Resumed || outs[2].Resumed {
		t.Fatalf("resume shape wrong: resumed=[%v %v %v], want [true false false]",
			outs[0].Resumed, outs[1].Resumed, outs[2].Resumed)
	}
	if got := sweepFingerprint(t, outs); !bytes.Equal(got, want) {
		t.Error("in-flight re-execution diverged from the clean run")
	}
}

// TestResumeRejectsTamperedArtifact: if a journaled-complete unit's
// artifact no longer matches its digest, resume re-executes the unit
// rather than surfacing the corrupt bytes.
func TestResumeRejectsTamperedArtifact(t *testing.T) {
	units := chaosUnits(t)[:2]
	dir := filepath.Join(t.TempDir(), "state")
	state, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunPool(context.Background(), units, PoolOptions{State: state})
	if err != nil {
		t.Fatal(err)
	}
	want := sweepFingerprint(t, outs)
	state.Close()

	// Corrupt unit 0's artifact on disk.
	p := (&runstate.Dir{Path: dir}).UnitFile(units[0].Key(), ".json")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	state2, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	outs2, err := RunPool(context.Background(), units, PoolOptions{State: state2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if outs2[0].Resumed {
		t.Error("tampered artifact was trusted")
	}
	if !outs2[1].Resumed {
		t.Error("intact artifact was not reused")
	}
	if got := sweepFingerprint(t, outs2); !bytes.Equal(got, want) {
		t.Error("re-execution after tampering diverged")
	}
}

// TestPoolJournalConcurrency exercises concurrent journaling from many
// workers under the race detector: every unit's lifecycle must land in
// the journal with strictly increasing sequence numbers.
func TestPoolJournalConcurrency(t *testing.T) {
	spec, err := ByName(chaosApps[0])
	if err != nil {
		t.Fatal(err)
	}
	var units []Unit
	for trial := int64(1); trial <= 8; trial++ {
		units = append(units, Unit{Spec: spec, Scale: ScaleTiny, Cfg: device.IvyBridgeHD4000(), TrialSeed: trial})
	}
	state, err := runstate.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	outs, err := RunPool(context.Background(), units, PoolOptions{
		State: state,
		OnOutcome: func(o Outcome) {
			mu.Lock()
			seen[o.Unit.Key()] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	state.Close()
	if len(seen) != len(units) {
		t.Fatalf("OnOutcome observed %d units, want %d", len(seen), len(units))
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	rec, err := runstate.Recover(filepath.Join(state.Path, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Completed()) != len(units) || len(rec.Dropped) != 0 {
		t.Fatalf("journal: %d completed, %d dropped", len(rec.Completed()), len(rec.Dropped))
	}
}
