package workloads

// The seven Sony Vegas Pro press-project regions (Table I): video
// rendering passes demonstrating different effects. The regions write far
// more bytes than they read — the extreme being region 5 — via
// multi-plane colour-grading outputs.

import (
	"fmt"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// vegasRegion parameterizes one press-project region.
type vegasRegion struct {
	id       int
	frames   float64 // base frame count
	planes   int     // colour-grade output planes (write amplification)
	blurRad  int     // gaussian radius (regions with blur effects)
	crossfad bool    // region includes crossfades
	motion   bool    // region includes motion-compensated effects
}

var vegasRegions = []vegasRegion{
	{id: 1, frames: 740, planes: 10, blurRad: 3, crossfad: true},
	{id: 2, frames: 570, planes: 16, crossfad: true, motion: true},
	{id: 3, frames: 900, planes: 12, blurRad: 5},
	{id: 4, frames: 660, planes: 20, motion: true},
	{id: 5, frames: 430, planes: 96}, // extreme write amplification
	{id: 6, frames: 830, planes: 8, crossfad: true, blurRad: 4},
	{id: 7, frames: 440, planes: 24, motion: true, crossfad: true},
}

func init() {
	for _, r := range vegasRegions {
		r := r
		register(&Spec{
			Name:  fmt.Sprintf("sonyvegas-proj-r%d", r.id),
			Suite: SuiteSonyVegas,
			Paper: PaperStats{KernelPct: 15, UniqueKernels: 6, BytesWritten: 200e9},
			Build: func(sc Scale) (*App, error) { return vegasApp(r, sc) },
		})
	}
}

func vegasApp(r vegasRegion, sc Scale) (*App, error) {
	name := fmt.Sprintf("sonyvegas-proj-r%d", r.id)
	prefix := fmt.Sprintf("vegas_r%d", r.id)
	gradeW := isa.W16
	if r.id%2 == 0 {
		gradeW = isa.W8
	}
	ks := []*kernel.Kernel{
		newColorGrade(prefix+"_grade", gradeW),
		newBlend(prefix+"_fade", isa.W8),
		newStreamScale(prefix+"_levels", isa.W8),
	}
	if r.blurRad > 0 {
		ks = append(ks, newBlur(prefix+"_gauss", isa.W16, 4))
	}
	if r.motion {
		ks = append(ks, newMotionEstimate(prefix+"_me", isa.W16))
	}
	ks = append(ks, newStreamCopy(prefix+"_encode", isa.W8))
	prog, err := asm.Program(name, ks...)
	if err != nil {
		return nil, err
	}

	frames := sc.N(r.frames, sc.Invs, 4)
	gws := dim(sc, 1024)

	run := func(ctx *cl.Context) error {
		h := newHost(ctx)
		frameA := h.buffer(gws*4 + 8192)
		frameB := h.buffer(gws*4 + 8192)
		// Output plane buffer sized for the plane stride addressing.
		planes := h.buffer(1 << 21)
		h.upload(frameA, int64(181+r.id))
		h.upload(frameB, int64(191+r.id))
		p := h.build(prog)

		grade := h.kernel(p, prefix+"_grade")
		fade := h.kernel(p, prefix+"_fade")
		levels := h.kernel(p, prefix+"_levels")
		var gauss, me *cl.Kernel
		if r.blurRad > 0 {
			gauss = h.kernel(p, prefix+"_gauss")
		}
		if r.motion {
			me = h.kernel(p, prefix+"_me")
		}
		encode := h.kernel(p, prefix+"_encode")

		for f := 0; f < frames; f++ {
			// Crossfades only happen at cut points (phase structure).
			if r.crossfad && (f/40)%3 == 2 {
				h.dispatch(fade, gws,
					[]uint32{loops(sc, 3, 1), uint32((f * 7) % 256), 64}, frameA, frameB, frameA)
			}
			if gauss != nil {
				h.dispatch(gauss, gws, []uint32{loops(sc, r.blurRad, 1)}, frameA, frameB)
			}
			if me != nil {
				h.dispatch(me, gws, []uint32{loops(sc, 6, 2)}, frameA, frameB, planes)
			}
			h.dispatch(grade, gws, []uint32{uint32(r.planes), uint32(5 + f%3)}, frameA, planes)
			if f%2 == 1 {
				h.dispatch(levels, gws, []uint32{loops(sc, 1, 1), 3, 7}, frameA, frameA)
			}
			if f%4 == 3 {
				h.dispatch(encode, gws, []uint32{loops(sc, 2, 1)}, planes, planes)
			}
			h.finish()
			if f%25 == 24 {
				h.read(planes, 4096)
				h.query(2)
			}
		}
		h.read(planes, 8192)
		return h.done()
	}
	return &App{Name: name, Suite: SuiteSonyVegas, Programs: []*kernel.Program{prog}, Run: run}, nil
}
