package workloads

import (
	"encoding/json"
	"fmt"
	"sort"

	"gtpin/internal/faults"
	"gtpin/internal/profile"
)

// StaticKernel is one instrumented kernel's static shape — what Figure
// 3b reports. It is recorded separately from the profile's kernel list
// because instrumentation sees every built kernel, invoked or not.
type StaticKernel struct {
	Name         string `json:"name"`
	NumBlocks    int    `json:"num_blocks"`
	StaticInstrs int    `json:"static_instrs"`
}

// APICallCounts is the Figure 3a breakdown in count form — the piece of
// the CoFluent tracer a resumed report needs.
type APICallCounts struct {
	Kernel int `json:"kernel"`
	Sync   int `json:"sync"`
	Other  int `json:"other"`
}

// Artifact is the durable residue of one profiled unit: everything the
// report-producing harnesses consume, in a JSON form that round-trips
// exactly (uint64 counts verbatim, float64 timings via Go's shortest
// round-trip encoding). A sweep resumed from artifacts therefore emits
// the byte-identical aggregate report an uninterrupted run would.
//
// The CoFluent recording — needed only by replay-based validations —
// is persisted as a sibling blob (HasRecording) rather than inlined,
// keeping artifacts small.
type Artifact struct {
	App          string                 `json:"app"`
	APICalls     APICallCounts          `json:"api_calls"`
	Static       []StaticKernel         `json:"static_kernels"`
	Kernels      []profile.KernelStatic `json:"kernels"`
	Invocations  []profile.Invocation   `json:"invocations"`
	FaultStats   faults.Stats           `json:"fault_stats"`
	HasRecording bool                   `json:"has_recording,omitempty"`
}

// NewArtifact distills a pipeline Result into its durable form.
func NewArtifact(res *Result) *Artifact {
	k, s, o := res.Tracer.Breakdown()
	a := &Artifact{
		App:         res.Profile.App,
		APICalls:    APICallCounts{Kernel: k, Sync: s, Other: o},
		Invocations: res.Profile.Invocations,
		FaultStats:  res.FaultStats,
	}
	// Zero the indexing fields profile.New recomputes, so an encoded
	// artifact is identical whether built from a live Result or from a
	// decoded artifact's rebuilt profile.
	a.Kernels = append([]profile.KernelStatic(nil), res.Profile.Kernels...)
	for i := range a.Kernels {
		a.Kernels[i].BlockBase = 0
	}
	// Map iteration is randomized; sort so identical runs encode to
	// identical bytes.
	for _, ki := range res.GTPin.Kernels() {
		a.Static = append(a.Static, StaticKernel{Name: ki.Name, NumBlocks: ki.NumBlocks, StaticInstrs: ki.StaticInstrs})
	}
	sort.Slice(a.Static, func(i, j int) bool { return a.Static[i].Name < a.Static[j].Name })
	return a
}

// Profile rebuilds the selection-pipeline profile from the artifact.
func (a *Artifact) Profile() (*profile.Profile, error) {
	kernels := append([]profile.KernelStatic(nil), a.Kernels...)
	p, err := profile.New(a.App, kernels, a.Invocations)
	if err != nil {
		return nil, fmt.Errorf("workloads: artifact for %s: %w", a.App, err)
	}
	return p, nil
}

// BreakdownPct mirrors cofluent.Tracer.BreakdownPct for resumed units.
func (a *Artifact) BreakdownPct() (kernelPct, syncPct, otherPct float64) {
	total := float64(a.APICalls.Kernel + a.APICalls.Sync + a.APICalls.Other)
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(a.APICalls.Kernel) / total,
		100 * float64(a.APICalls.Sync) / total,
		100 * float64(a.APICalls.Other) / total
}

// TotalCalls returns the traced API call count.
func (a *Artifact) TotalCalls() int {
	return a.APICalls.Kernel + a.APICalls.Sync + a.APICalls.Other
}

// Encode serializes the artifact canonically (fixed field order, no
// maps), so identical results always produce identical bytes — the
// property the journal's digest binding relies on.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("workloads: encode artifact for %s: %w", a.App, err)
	}
	return data, nil
}

// DecodeArtifact parses an artifact written by Encode.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("workloads: decode artifact: %w", err)
	}
	if a.App == "" || len(a.Invocations) == 0 {
		return nil, fmt.Errorf("workloads: decode artifact: empty profile")
	}
	return &a, nil
}
