package fleet

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

// EnvWorker, when set in a process's environment, diverts it into the
// fleet worker loop: the value is the worker directory the coordinator
// prepared. Every fleet-capable binary calls MaybeWorker first thing in
// main (test binaries call it from TestMain), which is what lets the
// coordinator spawn workers by re-executing its own binary — no
// separate worker executable to build, install, or version-skew.
const EnvWorker = "GTPIN_FLEET_WORKER"

// MaybeWorker checks the environment and, when this process was spawned
// as a fleet worker, runs the worker loop and exits. It returns (doing
// nothing) in ordinary processes.
func MaybeWorker() {
	dir := os.Getenv(EnvWorker)
	if dir == "" {
		return
	}
	if err := RunWorker(dir); err != nil {
		fmt.Fprintf(os.Stderr, "fleet worker: %v\n", err)
		os.Exit(3)
	}
	os.Exit(0)
}

// Process is the coordinator's handle on a spawned worker — the
// narrow surface the supervision loop needs, and the seam chaos tests
// use to stand in fake workers.
type Process interface {
	// Pid identifies the process for logs and heartbeat cross-checks.
	Pid() int
	// Kill forcibly terminates the worker (SIGKILL semantics: the
	// worker gets no chance to clean up; its flock releases with it).
	Kill() error
	// Exited is closed once the process has been reaped.
	Exited() <-chan struct{}
}

// execProcess adapts exec.Cmd to Process.
type execProcess struct {
	cmd    *exec.Cmd
	exited chan struct{}
}

func (p *execProcess) Pid() int { return p.cmd.Process.Pid }

func (p *execProcess) Kill() error { return p.cmd.Process.Kill() }

func (p *execProcess) Exited() <-chan struct{} { return p.exited }

// SpawnSelf starts a worker by re-executing the current binary with
// EnvWorker pointing at workerDir. The worker's stdout/stderr go to
// <workerDir>/log for post-mortems. This is the default Options.Spawn;
// Options.WorkerEnv is honored by wrapping this with spawnSelfEnv.
func SpawnSelf(workerDir string) (Process, error) {
	return spawnSelfEnv(workerDir, nil)
}

// spawnSelfEnv is SpawnSelf with extra environment entries appended.
func spawnSelfEnv(workerDir string, extraEnv []string) (Process, error) {
	exe := os.Args[0]
	if p, err := os.Executable(); err == nil {
		exe = p
	}
	logf, err := os.OpenFile(filepath.Join(workerDir, "log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: worker log: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.Env = append(append(os.Environ(), extraEnv...), EnvWorker+"="+workerDir)
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("fleet: spawn worker: %w", err)
	}
	logf.Close() // the child holds its own descriptor
	p := &execProcess{cmd: cmd, exited: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(p.exited)
	}()
	return p, nil
}

// exited reports whether a Process has terminated, without blocking.
func exited(p Process) bool {
	select {
	case <-p.Exited():
		return true
	default:
		return false
	}
}
