package fleet

import "gtpin/internal/obs"

// Fleet metrics, registered on the default observability registry so
// /metrics (service mode) and -metrics-dump (CLI mode) both export
// them. Counters are cumulative across runs; per-run numbers live in
// Stats.
var (
	mWorkersSpawned = obs.DefaultCounter("fleet_workers_spawned_total",
		"Fleet worker processes started, respawns included.")
	mWorkersLost = obs.DefaultCounter("fleet_workers_lost_total",
		"Fleet worker processes that exited, froze, or were killed before stop.")
	mWorkersLive = obs.DefaultGauge("fleet_workers_live",
		"Fleet worker processes currently believed alive.")
	mLeasesGranted = obs.DefaultCounter("fleet_leases_granted_total",
		"Work-unit leases written to worker inboxes.")
	mLeasesExpired = obs.DefaultCounter("fleet_leases_expired_total",
		"Leases lost to dead, frozen, or hung workers.")
	mRedispatches = obs.DefaultCounter("fleet_redispatches_total",
		"Lease grants that retried a previously-lost unit.")
	mQuarantined = obs.DefaultCounter("fleet_quarantined_units_total",
		"Units quarantined as poison after killing consecutive workers.")
	mStaleResults = obs.DefaultCounter("fleet_stale_results_total",
		"Journaled results refused by the fencing epoch.")
)
