package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"syscall"

	"gtpin/internal/faults"
)

// EnvChaos carries a JSON-encoded Schedule into worker processes. It is
// a test/validation facility: production fleets never set it, and a
// worker with no schedule runs clean at zero cost.
const EnvChaos = "GTPIN_FLEET_CHAOS"

// Schedule is a deterministic fault plan for a fleet, keyed by worker
// ordinal (the spawn sequence number, so respawned replacements —
// which get fresh ordinals — run clean and the sweep terminates).
type Schedule struct {
	// KillAfter maps a worker ordinal to the number of leases the
	// worker completes before SIGKILLing itself at the start of the
	// next one — after journaling the start record, modeling a process
	// crash mid-unit.
	KillAfter map[int]int `json:"kill_after,omitempty"`
	// HangAfter is KillAfter's freeze variant: the worker stops
	// heartbeating and blocks forever while still holding its flock,
	// modeling a livelocked or SIGSTOPped process. The coordinator must
	// detect it by heartbeat staleness and kill it.
	HangAfter map[int]int `json:"hang_after,omitempty"`
	// Poison lists unit keys that crash whatever worker executes them
	// (SIGKILL after the start record), every time — the shape the
	// coordinator must quarantine rather than endlessly re-dispatch.
	Poison []string `json:"poison,omitempty"`
}

// Encode serializes the schedule for EnvChaos.
func (s Schedule) Encode() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("fleet: encode chaos schedule: %w", err)
	}
	return string(data), nil
}

// chaosFromEnv loads the worker's view of the schedule. No env, no
// chaos. A malformed schedule is an error: silently running clean
// would make a broken chaos suite pass vacuously.
func chaosFromEnv() (Schedule, error) {
	raw := os.Getenv(EnvChaos)
	if raw == "" {
		return Schedule{}, nil
	}
	var s Schedule
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		return Schedule{}, fmt.Errorf("fleet: parse %s: %w", EnvChaos, err)
	}
	return s, nil
}

// RandomSchedule derives a seeded fault plan over the first `workers`
// ordinals, guaranteeing at least two kills and one hang when the fleet
// is large enough (>= 3 workers) — the floor the chaos suite asserts
// byte-identity under. The same seed always yields the same schedule.
func RandomSchedule(seed int64, workers int) Schedule {
	r := rand.New(rand.NewSource(faults.DeriveSeed(seed, "fleet-chaos")))
	s := Schedule{KillAfter: map[int]int{}, HangAfter: map[int]int{}}
	kills, hangs := 2, 1
	if workers < 3 {
		kills, hangs = min(workers, 2), 0
	}
	ord := 0
	for i := 0; i < kills; i, ord = i+1, ord+1 {
		s.KillAfter[ord] = r.Intn(3)
	}
	for i := 0; i < hangs; i, ord = i+1, ord+1 {
		s.HangAfter[ord] = r.Intn(3)
	}
	// Remaining initial workers crash with some probability too, so the
	// schedule space covers everything-failed fleets.
	for ; ord < workers; ord++ {
		switch r.Intn(4) {
		case 0:
			s.KillAfter[ord] = r.Intn(3)
		case 1:
			s.HangAfter[ord] = r.Intn(3)
		}
	}
	return s
}

// Failures counts the scheduled process-level faults, which is the
// lease-expiry burst an innocent unit could at worst be caught in —
// chaos runs size PoisonThreshold above it.
func (s Schedule) Failures() int {
	return len(s.KillAfter) + len(s.HangAfter)
}

// killSelf delivers an uncatchable SIGKILL to this process — the
// worker-side crash primitive. The kernel releases the flock; no
// deferred cleanup runs, exactly like a real OOM kill.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL cannot be handled
}
