package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gtpin/internal/faults"
	"gtpin/internal/obs"
	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// unitState is the coordinator's ledger entry for one work unit.
type unitState struct {
	idx        int
	key        string
	desc       workloads.UnitDescriptor
	settled    bool
	leasedTo   *workerState // nil when unleased
	epoch      uint64       // epoch of the current lease, valid when leasedTo != nil
	expiries   int          // leases this unit lost to dead/expired workers
	redispatch bool         // next grant is a retry (expiry or nacked lease)
}

// leaseGrant is the coordinator's side of an outstanding lease.
type leaseGrant struct {
	unit    *unitState
	epoch   uint64
	path    string
	granted time.Time
}

// workerState is the coordinator's ledger entry for one worker process.
type workerState struct {
	id      string
	ordinal int
	dir     string
	proc    Process
	spawned time.Time
	ready   bool // first heartbeat seen
	hbRaw   []byte
	hbSeen  time.Time // local clock when hbRaw last changed
	lastSeq uint64    // journal records consumed
	lease   *leaseGrant
	dead    bool
}

func (w *workerState) stateDir() string { return filepath.Join(w.dir, "state") }

// coordinator drives one fleet run. Every field is owned by the single
// Run goroutine; workers communicate exclusively through the
// filesystem (leases in, heartbeats and journals out), which is what
// makes a worker's death at any instant representable: whatever it
// made durable is harvested, everything else expires.
type coordinator struct {
	opts     Options
	units    []*unitState
	byKey    map[string]*unitState
	outcomes []workloads.Outcome
	dir      string
	workers  []*workerState
	epoch    uint64 // fencing-epoch source, globally monotonic
	spawns   int    // total processes started; the ordinal source
	settledN int
}

func (c *coordinator) run(ctx context.Context) ([]workloads.Outcome, error) {
	dir := c.opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gtpin-fleet-")
		if err != nil {
			return c.outcomes, fmt.Errorf("fleet: scratch dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return c.outcomes, fmt.Errorf("fleet: fleet dir: %w", err)
	}
	c.dir = dir
	if err := c.writeManifest(); err != nil {
		return c.outcomes, err
	}

	if c.opts.Resume {
		c.adopt()
	}
	if c.settledN == len(c.units) {
		return c.outcomes, nil
	}

	defer c.killAll()
	if err := c.ensureWorkers(); err != nil {
		return c.outcomes, err
	}

	tick := time.NewTicker(c.opts.PollInterval)
	defer tick.Stop()
	for c.settledN < len(c.units) {
		select {
		case <-ctx.Done():
			return c.outcomes, ctx.Err()
		case <-tick.C:
		}
		if err := c.pump(); err != nil {
			return c.outcomes, err
		}
	}
	c.stopWorkers()
	return c.outcomes, nil
}

// pump is one supervision round: harvest results, detect failures,
// quarantine poison, keep the fleet staffed, hand out work.
func (c *coordinator) pump() error {
	now := time.Now()
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		// A dead process first gets a final harvest — results that
		// became durable before the crash are kept, only the in-flight
		// lease (if any) expires.
		if exited(w.proc) {
			if err := c.harvest(w); err != nil {
				return err
			}
			c.loseWorker(w, "process exited")
			continue
		}
		if err := c.harvest(w); err != nil {
			return err
		}
		if err := c.checkHeartbeat(w, now); err != nil {
			return err
		}
		if w.dead {
			continue
		}
		if err := c.checkLease(w, now); err != nil {
			return err
		}
	}
	if err := c.quarantine(); err != nil {
		return err
	}
	if err := c.ensureWorkers(); err != nil {
		return err
	}
	return c.dispatch()
}

// checkHeartbeat declares a worker lost when its heartbeat file stops
// changing: HeartbeatTTL once ready, StartupGrace before the first
// beat. Content change, not mtime, so coarse filesystem timestamps
// cannot fake liveness.
func (c *coordinator) checkHeartbeat(w *workerState, now time.Time) error {
	if data, err := os.ReadFile(filepath.Join(w.dir, "heartbeat.json")); err == nil {
		if !bytes.Equal(data, w.hbRaw) {
			w.hbRaw = append(w.hbRaw[:0], data...)
			w.hbSeen = now
			w.ready = true
		}
	}
	ttl := c.opts.HeartbeatTTL
	ref := w.hbSeen
	if !w.ready {
		ttl = c.opts.StartupGrace
		ref = w.spawned
	}
	if now.Sub(ref) <= ttl {
		return nil
	}
	return c.expireWorker(w, "heartbeat stale")
}

// checkLease handles the two recoverable lease states on a live,
// heartbeating worker: a nacked (corrupt) lease file is re-dispatched
// immediately, and a lease older than LeaseTTL means the unit has the
// worker wedged in a way the in-process supervisor couldn't catch — the
// worker is expendable, the unit is not.
func (c *coordinator) checkLease(w *workerState, now time.Time) error {
	if w.lease == nil {
		return nil
	}
	if leaseNacked(w.lease.path) {
		u := w.lease.unit
		c.opts.Logf("fleet: worker %s nacked corrupt lease for %s; re-dispatching", w.id, u.key)
		u.leasedTo = nil
		u.redispatch = true
		w.lease = nil
		return nil
	}
	if now.Sub(w.lease.granted) <= c.opts.LeaseTTL {
		return nil
	}
	return c.expireWorker(w, fmt.Sprintf("lease for %s exceeded TTL", w.lease.unit.key))
}

// expireWorker kills a worker the supervision loop gave up on, then
// harvests one last time: anything it journaled durably before the
// kill is still a valid result under its lease epoch.
func (c *coordinator) expireWorker(w *workerState, reason string) error {
	_ = w.proc.Kill()
	if err := c.harvest(w); err != nil {
		return err
	}
	c.loseWorker(w, reason)
	return nil
}

// loseWorker retires a dead worker and expires its outstanding lease,
// feeding the unit's poison counter.
func (c *coordinator) loseWorker(w *workerState, reason string) {
	w.dead = true
	c.opts.Stats.WorkersLost++
	mWorkersLost.Inc()
	mWorkersLive.Dec()
	c.opts.Logf("fleet: worker %s lost: %s", w.id, reason)
	if t := obs.ActiveTracer(); t != nil {
		t.InstantWall("fleet", "worker lost", "fleet:"+w.id, obs.A("reason", reason))
	}
	if w.lease == nil {
		return
	}
	u := w.lease.unit
	w.lease = nil
	if u.settled {
		return
	}
	u.leasedTo = nil
	u.expiries++
	u.redispatch = true
	c.opts.Stats.LeasesExpired++
	mLeasesExpired.Inc()
	c.opts.Logf("fleet: lease for %s expired with worker %s (%d of %d before quarantine)",
		u.key, w.id, u.expiries, c.opts.PoisonThreshold)
}

// harvest consumes a worker's journal records past the last consumed
// sequence number. The fencing epoch gates every terminal record: only
// a result journaled under the exact epoch of the lease this worker
// currently holds is accepted; everything else — a unit re-dispatched
// elsewhere, a worker declared lost that wrote before the kill landed —
// is counted stale and dropped.
func (c *coordinator) harvest(w *workerState) error {
	rec, err := runstate.Recover(filepath.Join(w.stateDir(), "journal.jsonl"))
	if err != nil {
		return err
	}
	for _, r := range rec.Records {
		if r.Seq <= w.lastSeq {
			continue
		}
		w.lastSeq = r.Seq
		if r.Status == runstate.StatusStarted {
			continue
		}
		u := c.byKey[r.Unit]
		if u == nil || u.settled || u.leasedTo != w || u.epoch != r.Epoch {
			c.opts.Stats.StaleResults++
			mStaleResults.Inc()
			c.opts.Logf("fleet: refused stale %s for %s from worker %s (epoch %d): %v",
				r.Status, r.Unit, w.id, r.Epoch, faults.ErrStaleWorker)
			if t := obs.ActiveTracer(); t != nil {
				t.InstantWall("fleet", "stale result refused", "fleet:"+w.id,
					obs.A("unit", r.Unit), obs.A("epoch", r.Epoch))
			}
			continue
		}
		switch r.Status {
		case runstate.StatusCompleted:
			if err := c.settleCompleted(w, u, r); err != nil {
				return err
			}
		case runstate.StatusFailed:
			if err := c.settleWorkerFailure(w, u, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// settleCompleted merges one harvested completion: digest-verify the
// artifact in the worker's state dir, copy it (and its recording) into
// the main state dir with WAL ordering, settle the outcome. An
// artifact that fails verification is treated like an expired lease —
// re-executed, never trusted.
func (c *coordinator) settleCompleted(w *workerState, u *unitState, r runstate.Record) error {
	granted := w.lease.granted
	data, err := runstate.ReadVerifiedArtifact(w.stateDir(), r.Unit, r.Digest)
	var art *workloads.Artifact
	if err == nil {
		art, err = workloads.DecodeArtifact(data)
	}
	var recording []byte
	if err == nil && art.HasRecording && c.opts.State != nil {
		recording, err = os.ReadFile(runstate.UnitFilePath(w.stateDir(), r.Unit, ".rec"))
	}
	if err != nil {
		c.opts.Logf("fleet: unharvestable result for %s from worker %s (%v); re-dispatching", u.key, w.id, err)
		w.lease = nil
		u.leasedTo = nil
		u.expiries++
		u.redispatch = true
		c.opts.Stats.LeasesExpired++
		mLeasesExpired.Inc()
		return nil
	}

	if c.opts.State != nil {
		// Same ordering a single-process pool uses: blobs and artifact
		// durable first, the completion record last.
		if recording != nil {
			err := c.opts.State.WriteBlob(r.Unit, ".rec", func(dst io.Writer) error {
				_, werr := dst.Write(recording)
				return werr
			})
			if err != nil {
				return err
			}
		}
		digest, err := c.opts.State.WriteArtifact(r.Unit, data)
		if err != nil {
			return err
		}
		if err := c.opts.State.Journal.Completed(r.Unit, digest, r.Attempt); err != nil {
			return err
		}
	}

	o := &c.outcomes[u.idx]
	o.Artifact = art
	o.Attempts = r.Attempt
	o.WallNs = time.Since(granted).Nanoseconds()
	u.settled = true
	c.settledN++
	u.leasedTo = nil
	w.lease = nil
	if t := obs.ActiveTracer(); t != nil {
		t.SpanWall("fleet", u.key, "fleet:"+w.id, granted, obs.A("epoch", r.Epoch))
	}
	if c.opts.OnOutcome != nil {
		c.opts.OnOutcome(*o)
	}
	return nil
}

// settleWorkerFailure settles a typed failure a worker journaled. The
// error is rebuilt around a sentinel carrying the journaled class name,
// so failure tables classify it exactly as a single-process run would.
func (c *coordinator) settleWorkerFailure(w *workerState, u *unitState, r runstate.Record) error {
	sent := faults.NewSentinel(r.Class, faults.Permanent)
	err := fmt.Errorf("fleet: unit %s on worker %s: %s: %w", r.Unit, w.id, r.Error, sent)
	w.lease = nil
	u.leasedTo = nil
	return c.settleFailure(u, r.Attempt, err, r.Error, r.Class)
}

// settleFailure records a terminal failure outcome, journaling it into
// the main state dir with the same record shape a single-process pool
// writes.
func (c *coordinator) settleFailure(u *unitState, attempts int, oerr error, errText, class string) error {
	if c.opts.State != nil {
		if err := c.opts.State.Journal.Failed(u.key, attempts, errText, class); err != nil {
			return err
		}
	}
	o := &c.outcomes[u.idx]
	o.Err = oerr
	o.Attempts = attempts
	u.settled = true
	c.settledN++
	if c.opts.OnOutcome != nil {
		c.opts.OnOutcome(*o)
	}
	return nil
}

// quarantine settles units that have burned their lease budget as
// typed poison faults: the unit is the common factor across the dead
// workers, and re-dispatching it again only destroys more fleet.
func (c *coordinator) quarantine() error {
	for _, u := range c.units {
		if u.settled || u.leasedTo != nil || u.expiries < c.opts.PoisonThreshold {
			continue
		}
		err := fmt.Errorf("fleet: unit %s: %w: lost %d consecutive leases (threshold %d)",
			u.key, faults.ErrPoisonUnit, u.expiries, c.opts.PoisonThreshold)
		c.opts.Stats.Quarantined++
		mQuarantined.Inc()
		c.opts.Logf("fleet: quarantined %s after %d lost leases", u.key, u.expiries)
		if t := obs.ActiveTracer(); t != nil {
			t.InstantWall("fleet", "unit quarantined", "fleet:coordinator", obs.A("unit", u.key))
		}
		if serr := c.settleFailure(u, u.expiries, err, err.Error(), faults.Kind(faults.ErrPoisonUnit)); serr != nil {
			return serr
		}
	}
	return nil
}

// ensureWorkers keeps the fleet staffed at min(Workers, unsettled
// units) live processes, respawning within the budget. An empty fleet
// with an exhausted budget and work remaining is an infrastructure
// failure: returning it beats polling forever.
func (c *coordinator) ensureWorkers() error {
	live := 0
	for _, w := range c.workers {
		if !w.dead {
			live++
		}
	}
	remaining := len(c.units) - c.settledN
	want := c.opts.Workers
	if remaining < want {
		want = remaining
	}
	for live < want {
		if c.spawns >= c.opts.Workers+c.opts.MaxRespawns {
			if live == 0 {
				return fmt.Errorf("fleet: spawn budget exhausted after %d workers with %d unit(s) unsettled",
					c.spawns, remaining)
			}
			return nil
		}
		if err := c.spawnWorker(); err != nil {
			return err
		}
		live++
	}
	return nil
}

// spawnWorker prepares a fresh worker directory (config, inbox) and
// starts the process. Worker directories are never reused: a respawn
// gets a new ordinal, a new flock, and an empty journal, so nothing a
// dead predecessor wrote can be misattributed.
func (c *coordinator) spawnWorker() error {
	ord := c.spawns
	c.spawns++
	id := fmt.Sprintf("w%03d", ord)
	wdir := filepath.Join(c.dir, "workers", id)
	if err := os.MkdirAll(inboxDir(wdir), 0o755); err != nil {
		return fmt.Errorf("fleet: worker dir: %w", err)
	}
	hbInterval := c.opts.HeartbeatTTL / 4
	if hbInterval < time.Millisecond {
		hbInterval = time.Millisecond
	}
	cfg := workerConfig{
		ID:             id,
		Ordinal:        ord,
		HeartbeatMs:    hbInterval.Milliseconds(),
		PollMs:         c.opts.PollInterval.Milliseconds(),
		MaxRestarts:    c.opts.MaxRestarts,
		UnitTimeoutMs:  c.opts.UnitTimeout.Milliseconds(),
		SaveRecordings: c.opts.SaveRecordings,
	}
	if cfg.PollMs < 1 {
		cfg.PollMs = 1
	}
	cfgData, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: marshal worker config: %w", err)
	}
	if err := runstate.WriteFileAtomic(filepath.Join(wdir, "config.json"), cfgData); err != nil {
		return err
	}
	proc, err := c.opts.Spawn(wdir)
	if err != nil {
		return fmt.Errorf("fleet: spawn %s: %w", id, err)
	}
	c.workers = append(c.workers, &workerState{
		id: id, ordinal: ord, dir: wdir, proc: proc, spawned: time.Now(),
	})
	c.opts.Stats.WorkersSpawned++
	mWorkersSpawned.Inc()
	mWorkersLive.Inc()
	c.opts.Logf("fleet: spawned worker %s (pid %d)", id, proc.Pid())
	return nil
}

// dispatch hands every idle ready worker the lowest-index unleased
// unit under a fresh fencing epoch. One outstanding lease per worker
// keeps the fleet self-balancing: fast workers come back for more,
// slow ones hold exactly one unit hostage.
func (c *coordinator) dispatch() error {
	next := 0
	for _, w := range c.workers {
		if w.dead || !w.ready || w.lease != nil {
			continue
		}
		u := c.nextUnit(&next)
		if u == nil {
			return nil
		}
		c.epoch++
		path, err := writeLease(w.dir, leaseFile{
			UnitIdx: u.idx, Key: u.key, Epoch: c.epoch, Descriptor: u.desc,
		})
		if err != nil {
			return err
		}
		u.leasedTo = w
		u.epoch = c.epoch
		w.lease = &leaseGrant{unit: u, epoch: c.epoch, path: path, granted: time.Now()}
		c.opts.Stats.LeasesGranted++
		mLeasesGranted.Inc()
		if u.redispatch {
			c.opts.Stats.Redispatches++
			mRedispatches.Inc()
			c.opts.Logf("fleet: re-dispatched %s to worker %s (epoch %d)", u.key, w.id, c.epoch)
		}
	}
	return nil
}

// nextUnit scans forward for the next dispatchable unit.
func (c *coordinator) nextUnit(next *int) *unitState {
	for ; *next < len(c.units); *next++ {
		u := c.units[*next]
		if !u.settled && u.leasedTo == nil && u.expiries < c.opts.PoisonThreshold {
			*next++
			return u
		}
	}
	return nil
}

// adopt satisfies units the main state dir's journal already records as
// completed, exactly like a resuming single-process pool: completion
// record plus digest-verified, decodable artifact, or re-execute.
func (c *coordinator) adopt() {
	completed := c.opts.State.Recovered.Completed()
	for _, u := range c.units {
		rec, ok := completed[u.key]
		if !ok {
			continue
		}
		data, err := c.opts.State.ReadArtifact(u.key, rec.Digest)
		if err != nil {
			continue
		}
		art, err := workloads.DecodeArtifact(data)
		if err != nil {
			continue
		}
		o := &c.outcomes[u.idx]
		o.Artifact = art
		o.Resumed = true
		o.Attempts = rec.Attempt
		u.settled = true
		c.settledN++
		c.opts.Stats.Adopted++
		if c.opts.OnOutcome != nil {
			c.opts.OnOutcome(*o)
		}
	}
}

// stopWorkers asks live workers to exit (STOP marker) and gives them a
// short grace before the deferred killAll reaps stragglers.
func (c *coordinator) stopWorkers() {
	deadline := time.Now().Add(2 * time.Second)
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		_ = runstate.WriteFileAtomic(filepath.Join(inboxDir(w.dir), stopMarker), []byte("stop\n"))
	}
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		select {
		case <-w.proc.Exited():
		case <-time.After(time.Until(deadline)):
		}
	}
}

// killAll force-terminates whatever is still running — the last line of
// defense on every exit path, error or clean.
func (c *coordinator) killAll() {
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		w.dead = true
		mWorkersLive.Dec()
		_ = w.proc.Kill()
	}
}

// writeManifest records the sweep's unit table for post-mortems: which
// index maps to which key, worker dirs aside.
func (c *coordinator) writeManifest() error {
	type entry struct {
		Idx int    `json:"idx"`
		Key string `json:"key"`
	}
	entries := make([]entry, len(c.units))
	for i, u := range c.units {
		entries[i] = entry{Idx: u.idx, Key: u.key}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: marshal manifest: %w", err)
	}
	return runstate.WriteFileAtomic(filepath.Join(c.dir, "units.json"), data)
}
