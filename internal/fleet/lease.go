package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// leaseFile is the on-disk handoff from coordinator to worker: one work
// unit, self-contained, under one fencing epoch. The file is named
// <epoch>.lease (epochs are globally monotonic, so names never collide)
// and written atomically, so a worker either sees a complete lease or
// none — the corrupt-lease path below only triggers when the file
// itself was damaged after publication.
type leaseFile struct {
	UnitIdx    int                      `json:"unit_idx"`
	Key        string                   `json:"key"`
	Epoch      uint64                   `json:"epoch"`
	Descriptor workloads.UnitDescriptor `json:"descriptor"`
}

const (
	leaseExt   = ".lease"
	corruptExt = ".corrupt"
	stopMarker = "STOP"
)

// inboxDir is where a worker receives leases and the stop marker.
func inboxDir(workerDir string) string { return filepath.Join(workerDir, "inbox") }

// writeLease atomically publishes a lease into a worker's inbox.
func writeLease(workerDir string, lf leaseFile) (string, error) {
	data, err := json.Marshal(lf)
	if err != nil {
		return "", fmt.Errorf("fleet: marshal lease for %s: %w", lf.Key, err)
	}
	path := filepath.Join(inboxDir(workerDir), fmt.Sprintf("%d%s", lf.Epoch, leaseExt))
	if err := runstate.WriteFileAtomic(path, data); err != nil {
		return "", err
	}
	return path, nil
}

// readLease parses a lease file, verifying it names a unit.
func readLease(path string) (leaseFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return leaseFile{}, fmt.Errorf("fleet: read lease: %w", err)
	}
	var lf leaseFile
	if err := json.Unmarshal(data, &lf); err != nil {
		return leaseFile{}, fmt.Errorf("fleet: parse lease %s: %w", filepath.Base(path), err)
	}
	if lf.Key == "" || lf.Descriptor.App == "" {
		return leaseFile{}, fmt.Errorf("fleet: lease %s is incomplete", filepath.Base(path))
	}
	return lf, nil
}

// scanInbox lists a worker's pending lease files in epoch order and
// reports whether the stop marker is present. Damaged lease files are
// quarantined in place: renamed to <name>.corrupt so they are never
// re-read, leaving the coordinator to notice the nack (the rename keeps
// the epoch in the filename) and re-dispatch the unit under a fresh
// epoch. Torn leases therefore delay a unit, never lose it.
func scanInbox(workerDir string) (leases []string, stop bool, err error) {
	dir := inboxDir(workerDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, fmt.Errorf("fleet: scan inbox: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == stopMarker:
			stop = true
		case strings.HasSuffix(name, leaseExt):
			path := filepath.Join(dir, name)
			if _, lerr := readLease(path); lerr != nil {
				// Nack the damaged file; ignore rename failure — the
				// next scan retries it.
				_ = os.Rename(path, path+corruptExt)
				continue
			}
			names = append(names, name)
		}
	}
	// Epoch order: filenames are "<epoch>.lease" with monotonic epochs;
	// numeric compare by length-then-lexicographic avoids parsing.
	sort.Slice(names, func(i, j int) bool {
		if len(names[i]) != len(names[j]) {
			return len(names[i]) < len(names[j])
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		leases = append(leases, filepath.Join(dir, n))
	}
	return leases, stop, nil
}

// leaseNacked reports whether the lease published at path was
// quarantined by the worker as corrupt.
func leaseNacked(path string) bool {
	_, err := os.Stat(path + corruptExt)
	return err == nil
}
