package fleet

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gtpin/internal/device"
	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// TestMain diverts re-executions of this test binary into the worker
// loop — the same hook every fleet-capable command installs — so the
// chaos e2e can spawn real worker processes.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// fleetUnits builds a tiny-scale sweep over the structurally diverse
// chaos roster, `trials` trial seeds per app.
func fleetUnits(t testing.TB, trials int) []workloads.Unit {
	t.Helper()
	apps := []string{"cb-throughput-juliaset", "cb-gaussian-buffer", "sandra-proc-gpu"}
	var units []workloads.Unit
	for trial := 1; trial <= trials; trial++ {
		for _, name := range apps {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			units = append(units, workloads.Unit{
				Spec: spec, Scale: workloads.ScaleTiny,
				Cfg: device.IvyBridgeHD4000(), TrialSeed: int64(trial),
			})
		}
	}
	return units
}

func TestLeaseRoundTrip(t *testing.T) {
	wdir := t.TempDir()
	if err := os.MkdirAll(inboxDir(wdir), 0o755); err != nil {
		t.Fatal(err)
	}
	u := fleetUnits(t, 1)[0]
	desc, err := u.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	want := leaseFile{UnitIdx: 3, Key: u.Key(), Epoch: 17, Descriptor: desc}
	path, err := writeLease(wdir, want)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "17.lease" {
		t.Fatalf("lease filename %s, want 17.lease (epoch-named)", filepath.Base(path))
	}
	got, err := readLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lease did not round-trip:\n got %+v\nwant %+v", got, want)
	}
	back, err := got.Descriptor.Unit()
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != u.Key() {
		t.Fatalf("rebuilt unit key %s != %s", back.Key(), u.Key())
	}
}

// TestScanInboxNacksTornLease: a lease file damaged after publication is
// quarantined (renamed .corrupt) so the worker never executes garbage,
// and the coordinator can see the nack at the original path.
func TestScanInboxNacksTornLease(t *testing.T) {
	wdir := t.TempDir()
	if err := os.MkdirAll(inboxDir(wdir), 0o755); err != nil {
		t.Fatal(err)
	}
	u := fleetUnits(t, 1)[0]
	desc, err := u.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	good, err := writeLease(wdir, leaseFile{UnitIdx: 0, Key: u.Key(), Epoch: 1, Descriptor: desc})
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(inboxDir(wdir), "2.lease")
	if err := os.WriteFile(torn, []byte(`{"unit_idx":0,"key":"x"`), 0o644); err != nil {
		t.Fatal(err)
	}

	leases, stop, err := scanInbox(wdir)
	if err != nil {
		t.Fatal(err)
	}
	if stop {
		t.Fatal("phantom stop marker")
	}
	if len(leases) != 1 || leases[0] != good {
		t.Fatalf("scanInbox = %v, want only %s", leases, good)
	}
	if !leaseNacked(torn) {
		t.Fatal("torn lease was not nacked (no .corrupt twin)")
	}
	if leaseNacked(good) {
		t.Fatal("healthy lease reported nacked")
	}
}

// TestScanInboxEpochOrder: leases come back in numeric epoch order even
// when lexicographic order disagrees (9 vs 10).
func TestScanInboxEpochOrder(t *testing.T) {
	wdir := t.TempDir()
	if err := os.MkdirAll(inboxDir(wdir), 0o755); err != nil {
		t.Fatal(err)
	}
	u := fleetUnits(t, 1)[0]
	desc, err := u.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []uint64{10, 2, 9} {
		if _, err := writeLease(wdir, leaseFile{Key: u.Key(), Epoch: ep, Descriptor: desc}); err != nil {
			t.Fatal(err)
		}
	}
	leases, _, err := scanInbox(wdir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range leases {
		names = append(names, filepath.Base(p))
	}
	want := []string{"2.lease", "9.lease", "10.lease"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("inbox order %v, want %v", names, want)
	}
}

// TestRandomScheduleDeterministic: the same seed yields the same plan,
// different seeds differ, and a >=3-worker fleet always gets the chaos
// floor the e2e asserts byte-identity under (2 kills + 1 hang).
func TestRandomScheduleDeterministic(t *testing.T) {
	a, b := RandomSchedule(42, 4), RandomSchedule(42, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if len(a.KillAfter) < 2 || len(a.HangAfter) < 1 {
		t.Fatalf("schedule %+v below the 2-kill 1-hang floor", a)
	}
	if a.Failures() != len(a.KillAfter)+len(a.HangAfter) {
		t.Fatalf("Failures() = %d, want %d", a.Failures(), len(a.KillAfter)+len(a.HangAfter))
	}
	if c := RandomSchedule(43, 4); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(EnvChaos, enc)
	back, err := chaosFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, a) {
		t.Fatalf("schedule did not survive the env round-trip:\n got %+v\nwant %+v", back, a)
	}
}

func TestChaosFromEnvRejectsGarbage(t *testing.T) {
	t.Setenv(EnvChaos, "{not json")
	if _, err := chaosFromEnv(); err == nil {
		t.Fatal("malformed chaos schedule accepted (would run a chaos suite vacuously clean)")
	}
}

func TestRunRejectsDuplicateUnits(t *testing.T) {
	u := fleetUnits(t, 1)[0]
	_, err := Run(context.Background(), []workloads.Unit{u, u}, Options{})
	if err == nil || !strings.Contains(err.Error(), "share key") {
		t.Fatalf("duplicate units accepted: %v", err)
	}
}

func TestRunResumeRequiresState(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{Resume: true}); err == nil {
		t.Fatal("Resume without State accepted")
	}
}

// testCoordinator builds a coordinator with one unit leased to one fake
// worker — the fixture the harvest fencing tests poke directly, with no
// processes involved.
func testCoordinator(t *testing.T, key string, epoch uint64) (*coordinator, *unitState, *workerState) {
	t.Helper()
	opts := Options{}
	applyDefaults(&opts)
	opts.Stats = &Stats{}
	u := &unitState{idx: 0, key: key}
	w := &workerState{id: "w000", dir: t.TempDir()}
	u.leasedTo = w
	u.epoch = epoch
	w.lease = &leaseGrant{unit: u, epoch: epoch, granted: time.Now()}
	c := &coordinator{
		opts:     opts,
		units:    []*unitState{u},
		byKey:    map[string]*unitState{key: u},
		outcomes: make([]workloads.Outcome, 1),
	}
	return c, u, w
}

// journalInWorker writes records into a fake worker's private state dir
// the way a real worker would, then releases the flock so the
// coordinator-side Recover in harvest reads a settled journal.
func journalInWorker(t *testing.T, w *workerState, write func(*runstate.Dir) error) {
	t.Helper()
	sd, err := runstate.OpenDir(w.stateDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := write(sd); err != nil {
		sd.Close()
		t.Fatal(err)
	}
	if err := sd.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHarvestRefusesStaleEpoch: a completion journaled under an epoch
// that is not the unit's current lease is fenced off — counted stale,
// never merged — exactly the write a worker declared dead could land
// after its unit was re-dispatched.
func TestHarvestRefusesStaleEpoch(t *testing.T) {
	c, u, w := testCoordinator(t, "unitA", 8)
	journalInWorker(t, w, func(sd *runstate.Dir) error {
		return sd.Journal.CompletedEpoch("unitA", "0123456789abcdef", 1, 7) // stale epoch
	})
	if err := c.harvest(w); err != nil {
		t.Fatal(err)
	}
	if u.settled {
		t.Fatal("stale-epoch result settled the unit")
	}
	if c.opts.Stats.StaleResults != 1 {
		t.Fatalf("StaleResults = %d, want 1", c.opts.Stats.StaleResults)
	}
	if u.leasedTo != w {
		t.Fatal("lease disturbed by a refused record")
	}
}

// TestHarvestUnverifiableArtifactExpiresLease: a completion whose
// artifact fails digest verification is treated like an expired lease —
// the unit re-executes, the bytes are never trusted.
func TestHarvestUnverifiableArtifactExpiresLease(t *testing.T) {
	c, u, w := testCoordinator(t, "unitA", 8)
	journalInWorker(t, w, func(sd *runstate.Dir) error {
		// Correct epoch, but no artifact file backs the digest.
		return sd.Journal.CompletedEpoch("unitA", "feedfacefeedface", 1, 8)
	})
	if err := c.harvest(w); err != nil {
		t.Fatal(err)
	}
	if u.settled {
		t.Fatal("unverifiable artifact settled the unit")
	}
	if u.expiries != 1 || !u.redispatch || u.leasedTo != nil || w.lease != nil {
		t.Fatalf("lease not expired: expiries=%d redispatch=%v leasedTo=%v", u.expiries, u.redispatch, u.leasedTo)
	}
	if c.opts.Stats.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", c.opts.Stats.LeasesExpired)
	}
}

// TestHarvestAcceptsCurrentEpochFailure: a typed failure journaled under
// the live epoch settles the unit with the journaled class preserved.
func TestHarvestAcceptsCurrentEpochFailure(t *testing.T) {
	c, u, w := testCoordinator(t, "unitA", 8)
	journalInWorker(t, w, func(sd *runstate.Dir) error {
		return sd.Journal.FailedEpoch("unitA", 3, "boom", "worker-panic", 8)
	})
	if err := c.harvest(w); err != nil {
		t.Fatal(err)
	}
	if !u.settled {
		t.Fatal("current-epoch failure did not settle the unit")
	}
	o := c.outcomes[0]
	if o.Err == nil || !strings.Contains(o.Err.Error(), "boom") || o.Attempts != 3 {
		t.Fatalf("outcome %+v lost the journaled failure detail", o)
	}
}

// TestCheckLeaseNackedRedispatch: a worker nacking a torn lease frees
// the unit for immediate re-dispatch — no TTL wait, no expiry charged
// against the unit's poison budget.
func TestCheckLeaseNackedRedispatch(t *testing.T) {
	c, u, w := testCoordinator(t, "unitA", 8)
	path := filepath.Join(t.TempDir(), "8.lease")
	if err := os.WriteFile(path+corruptExt, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	w.lease.path = path
	if err := c.checkLease(w, time.Now()); err != nil {
		t.Fatal(err)
	}
	if u.leasedTo != nil || w.lease != nil || !u.redispatch {
		t.Fatal("nacked lease was not freed for re-dispatch")
	}
	if u.expiries != 0 {
		t.Fatalf("nack charged %d expiries against the poison budget, want 0", u.expiries)
	}
}
