package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gtpin/internal/faults"
	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// workerConfig is what the coordinator writes into
// <workerDir>/config.json before spawning: everything the worker loop
// needs that is not per-lease. Durations travel as milliseconds to keep
// the file human-readable.
type workerConfig struct {
	ID             string `json:"id"`
	Ordinal        int    `json:"ordinal"`
	HeartbeatMs    int64  `json:"heartbeat_ms"`
	PollMs         int64  `json:"poll_ms"`
	MaxRestarts    int    `json:"max_restarts"`
	UnitTimeoutMs  int64  `json:"unit_timeout_ms"`
	SaveRecordings bool   `json:"save_recordings"`
}

// heartbeat is the liveness file a worker rewrites on every tick. The
// coordinator watches for the bytes changing, not the mtime — content
// change is immune to filesystems with coarse timestamps.
type heartbeat struct {
	Pid int    `json:"pid"`
	Seq uint64 `json:"seq"`
}

// RunWorker is the worker process's whole life: claim the private state
// directory (flock — a second worker pointed at the same directory dies
// with ErrStateDirLocked instead of corrupting it), heartbeat, and
// execute leases from the inbox until the stop marker appears. Results
// are journaled under each lease's fencing epoch and made durable
// (artifact first, completion record second) before the lease file is
// removed, so the coordinator can harvest everything this process
// finished no matter how it later dies.
func RunWorker(dir string) error {
	cfgData, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return fmt.Errorf("fleet: worker config: %w", err)
	}
	var cfg workerConfig
	if err := json.Unmarshal(cfgData, &cfg); err != nil {
		return fmt.Errorf("fleet: parse worker config: %w", err)
	}
	chaos, err := chaosFromEnv()
	if err != nil {
		return err
	}
	sd, err := runstate.OpenDir(filepath.Join(dir, "state"))
	if err != nil {
		return err
	}
	defer sd.Close()

	hb, err := startHeartbeat(dir, time.Duration(cfg.HeartbeatMs)*time.Millisecond)
	if err != nil {
		return err
	}
	defer hb.halt()

	w := &worker{cfg: cfg, dir: dir, state: sd, chaos: chaos, hb: hb, done: map[string]bool{}}
	poll := time.Duration(cfg.PollMs) * time.Millisecond
	for {
		leases, stop, err := scanInbox(dir)
		if err != nil {
			return err
		}
		pending := 0
		for _, path := range leases {
			if w.done[filepath.Base(path)] {
				continue
			}
			pending++
			if err := w.processLease(path); err != nil {
				return err
			}
		}
		if stop && pending == 0 {
			return nil
		}
		time.Sleep(poll)
	}
}

// worker is the per-process execution state of RunWorker.
type worker struct {
	cfg       workerConfig
	dir       string
	state     *runstate.Dir
	chaos     Schedule
	hb        *heartbeater
	done      map[string]bool
	processed int // leases fully handled, the chaos counters' clock
}

// processLease executes one lease end to end. Returned errors are
// infrastructure failures (journal I/O); unit failures are journaled
// as typed records and are not errors here.
func (w *worker) processLease(path string) error {
	lf, err := readLease(path)
	if err != nil {
		// Damaged between scan and read (or raced); nack and move on.
		_ = os.Rename(path, path+corruptExt)
		return nil
	}

	// Chaos faults fire after the start record, modeling a process that
	// died or froze mid-unit: the coordinator sees a started-but-never-
	// finished epoch and must recover the unit.
	poisoned := false
	for _, k := range w.chaos.Poison {
		if k == lf.Key {
			poisoned = true
		}
	}
	kill, killArmed := w.chaos.KillAfter[w.cfg.Ordinal]
	hang, hangArmed := w.chaos.HangAfter[w.cfg.Ordinal]
	if poisoned || (killArmed && w.processed == kill) {
		if err := w.state.Journal.StartedEpoch(lf.Key, lf.Epoch); err != nil {
			return err
		}
		killSelf()
	}
	if hangArmed && w.processed == hang {
		if err := w.state.Journal.StartedEpoch(lf.Key, lf.Epoch); err != nil {
			return err
		}
		w.hb.halt()
		select {} // frozen: flock held, no heartbeat, no progress
	}

	if err := w.state.Journal.StartedEpoch(lf.Key, lf.Epoch); err != nil {
		return err
	}
	if err := w.execute(lf); err != nil {
		return err
	}
	w.done[filepath.Base(path)] = true
	w.processed++
	return os.Remove(path)
}

// execute runs the leased unit through a single-unit supervised pool —
// inheriting panic isolation, the restart budget, and the per-attempt
// timeout — then persists and journals the terminal state under the
// lease's epoch.
func (w *worker) execute(lf leaseFile) error {
	journalFailed := func(attempts int, uerr error) error {
		class := faults.Kind(uerr)
		if class == "" {
			class = faults.ClassOf(uerr).String()
		}
		return w.state.Journal.FailedEpoch(lf.Key, attempts, uerr.Error(), class, lf.Epoch)
	}

	unit, err := lf.Descriptor.Unit()
	if err != nil {
		return journalFailed(0, err)
	}
	if got := unit.Key(); got != lf.Key {
		return journalFailed(0, fmt.Errorf("fleet: lease key %s rebuilt as %s", lf.Key, got))
	}

	outs, err := workloads.RunPool(context.Background(), []workloads.Unit{unit}, workloads.PoolOptions{
		Workers:     1,
		MaxRestarts: w.cfg.MaxRestarts,
		UnitTimeout: time.Duration(w.cfg.UnitTimeoutMs) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	o := outs[0]
	if o.Err != nil {
		return journalFailed(o.Attempts, o.Err)
	}

	art := o.Artifact
	if w.cfg.SaveRecordings && o.Result != nil {
		if err := w.state.WriteBlob(lf.Key, ".rec", o.Result.Recording.Save); err != nil {
			return err
		}
		art.HasRecording = true
	}
	data, err := art.Encode()
	if err != nil {
		return journalFailed(o.Attempts, err)
	}
	digest, err := w.state.WriteArtifact(lf.Key, data)
	if err != nil {
		return err
	}
	return w.state.Journal.CompletedEpoch(lf.Key, digest, o.Attempts, lf.Epoch)
}

// heartbeater rewrites the worker's liveness file on a fixed cadence.
type heartbeater struct {
	stop chan struct{}
	done chan struct{}
}

// startHeartbeat writes the first beat synchronously (so the
// coordinator sees readiness as soon as spawn succeeds) and then beats
// in the background until halted.
func startHeartbeat(dir string, interval time.Duration) (*heartbeater, error) {
	path := filepath.Join(dir, "heartbeat.json")
	var seq uint64
	beat := func() error {
		seq++
		data, err := json.Marshal(heartbeat{Pid: os.Getpid(), Seq: seq})
		if err != nil {
			return err
		}
		return runstate.WriteFileAtomic(path, data)
	}
	if err := beat(); err != nil {
		return nil, fmt.Errorf("fleet: first heartbeat: %w", err)
	}
	hb := &heartbeater{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hb.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hb.stop:
				return
			case <-t.C:
				_ = beat() // a missed beat is what the TTL is for
			}
		}
	}()
	return hb, nil
}

// halt stops the beat and waits for the last write to finish. Safe to
// call twice only from one goroutine (the worker loop).
func (h *heartbeater) halt() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}
