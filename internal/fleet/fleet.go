// Package fleet distributes a characterization sweep across worker
// processes and survives any of them failing.
//
// A single supervised pool (workloads.RunPool) already survives unit
// panics, hangs, and process crashes-with-resume — but one OOM-killed
// or wedged process still stalls the whole sweep until an operator
// intervenes. The fleet closes that gap with a coordinator/worker
// topology built from pieces the repo already trusts:
//
//   - The coordinator (Run) shards the sweep's units across N worker
//     processes. Each worker is handed one unit at a time as a lease:
//     an atomically-written file carrying the unit's self-contained
//     descriptor (workloads.UnitDescriptor) and a fencing epoch.
//   - Workers are plain re-executions of the current binary
//     (GTPIN_FLEET_WORKER=<dir>, see MaybeWorker). Each owns a private
//     runstate.Dir — flock-fenced, journaled, atomic artifacts — and
//     journals every unit result under the lease's epoch before
//     removing the lease file.
//   - The coordinator watches heartbeats and per-worker journals. A
//     worker that stops heartbeating (SIGKILL, freeze) or blows the
//     lease TTL (hung unit) is killed and its lease re-dispatched
//     under a fresh epoch to a healthy worker; the dead worker's
//     journal is harvested first, so results that became durable
//     before the crash are never re-executed.
//   - The fencing epoch makes late writes harmless: a result journaled
//     under an epoch the coordinator no longer considers leased is
//     counted (faults.ErrStaleWorker) and dropped, never merged.
//   - A unit that destroys PoisonThreshold consecutive workers is
//     quarantined as a typed faults.ErrPoisonUnit failure instead of
//     grinding the fleet down forever.
//
// Merging is deterministic: outcomes settle into unit-index order and
// artifacts are canonical bytes, so the merged report is byte-identical
// to a single-process run at any worker count and under any failure
// schedule — the property the chaos suite asserts. When Options.State
// is set, harvested artifacts (and recordings) are copied into the main
// state directory and journaled there, so -resume works on a fleet
// sweep exactly as on a single-process one.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// Defaults for Options fields left zero.
const (
	DefaultLeaseTTL        = 2 * time.Minute
	DefaultHeartbeatTTL    = 5 * time.Second
	DefaultPollInterval    = 25 * time.Millisecond
	DefaultStartupGrace    = 30 * time.Second
	DefaultPoisonThreshold = 3
	DefaultMaxRespawns     = 8
	DefaultWorkers         = 2
)

// Options configures a fleet run.
type Options struct {
	// Dir is the fleet scratch directory (manifest, per-worker state).
	// Empty uses a temp directory removed when Run returns; a fixed Dir
	// is kept for post-mortem inspection.
	Dir string
	// State, when set, receives the merged results: every harvested
	// artifact (and recording) is copied in and journaled, so the
	// directory is equivalent to one written by a single-process sweep
	// and -resume works on it. Nil merges in memory only.
	State *runstate.Dir
	// Resume adopts units State's journal already records as completed
	// (with digest-verified artifacts) without dispatching them.
	// Requires State.
	Resume bool
	// Workers is the number of worker processes; 0 means
	// DefaultWorkers.
	Workers int
	// LeaseTTL bounds how long a single lease may stay outstanding on a
	// heartbeating worker before the coordinator declares the unit hung,
	// kills the worker, and re-dispatches. 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// HeartbeatTTL is how long a ready worker's heartbeat file may stay
	// unchanged before the worker is declared lost. 0 means
	// DefaultHeartbeatTTL.
	HeartbeatTTL time.Duration
	// PollInterval is the coordinator's supervision cadence. 0 means
	// DefaultPollInterval.
	PollInterval time.Duration
	// StartupGrace bounds how long a spawned worker may take to produce
	// its first heartbeat. 0 means DefaultStartupGrace.
	StartupGrace time.Duration
	// PoisonThreshold quarantines a unit after it loses this many
	// leases to dead or expired workers. It must exceed the number of
	// unrelated worker crashes a single unit can plausibly be caught in
	// (each crash costs every in-flight unit one lease). 0 means
	// DefaultPoisonThreshold.
	PoisonThreshold int
	// MaxRespawns bounds replacement workers beyond the initial fleet;
	// when the budget is exhausted and no workers remain, Run fails
	// rather than spinning. 0 means DefaultMaxRespawns.
	MaxRespawns int
	// MaxRestarts is the per-unit in-process restart budget each worker
	// passes to its supervised pool (workloads.PoolOptions.MaxRestarts
	// semantics: 0 default, negative disables).
	MaxRestarts int
	// UnitTimeout bounds each in-worker execution attempt
	// (workloads.PoolOptions.UnitTimeout semantics). Independent of
	// LeaseTTL, which bounds the whole lease from the outside.
	UnitTimeout time.Duration
	// SaveRecordings makes workers persist CoFluent recordings, which
	// the coordinator then copies into State next to the artifacts.
	SaveRecordings bool
	// OnOutcome, when set, observes each outcome as it settles (from
	// the coordinator's own goroutine).
	OnOutcome func(workloads.Outcome)
	// Logf, when set, receives coordinator progress lines (spawns,
	// expiries, re-dispatches, quarantines).
	Logf func(format string, args ...any)
	// Stats, when set, is filled in as the run progresses. Read it only
	// after Run returns.
	Stats *Stats
	// Spawn overrides how worker processes are started — the test seam
	// that lets the suite inject crashing or hanging workers without a
	// real binary. Nil uses SpawnSelf.
	Spawn func(workerDir string) (Process, error)
	// WorkerEnv appends environment entries ("K=V") to spawned workers,
	// e.g. a chaos schedule.
	WorkerEnv []string
}

// Stats counts what the coordinator observed during one run.
type Stats struct {
	WorkersSpawned int // processes started, respawns included
	WorkersLost    int // processes that exited, froze, or were killed before STOP
	LeasesGranted  int // lease files written
	LeasesExpired  int // leases lost to dead, frozen, or hung workers
	Redispatches   int // grants that retried a previously-lost unit
	Quarantined    int // units settled as faults.ErrPoisonUnit
	StaleResults   int // journaled results refused by the fencing epoch
	Adopted        int // units satisfied from State's journal without dispatch
}

// Run executes units across a fleet of worker processes and returns
// their outcomes in unit-index order, exactly like workloads.RunPool.
// Unit failures settle into outcomes; the returned error is reserved
// for infrastructure failure (context cancellation, an unusable fleet
// directory, the spawn budget running dry).
func Run(ctx context.Context, units []workloads.Unit, opts Options) ([]workloads.Outcome, error) {
	if opts.Resume && opts.State == nil {
		return nil, errors.New("fleet: Options.Resume requires a state dir")
	}
	applyDefaults(&opts)

	table := make([]*unitState, len(units))
	byKey := make(map[string]*unitState, len(units))
	for i, u := range units {
		d, err := u.Descriptor()
		if err != nil {
			return nil, fmt.Errorf("fleet: unit %d is not dispatchable: %w", i, err)
		}
		key := u.Key()
		if dup, ok := byKey[key]; ok {
			return nil, fmt.Errorf("fleet: units %d and %d share key %s", dup.idx, i, key)
		}
		us := &unitState{idx: i, key: key, desc: d}
		table[i] = us
		byKey[key] = us
	}

	outcomes := make([]workloads.Outcome, len(units))
	for i := range units {
		outcomes[i].Unit = units[i]
	}
	if opts.Stats == nil {
		opts.Stats = &Stats{}
	}
	c := &coordinator{
		opts:     opts,
		units:    table,
		byKey:    byKey,
		outcomes: outcomes,
	}
	return c.run(ctx)
}

func applyDefaults(o *Options) {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = DefaultHeartbeatTTL
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultPollInterval
	}
	if o.StartupGrace <= 0 {
		o.StartupGrace = DefaultStartupGrace
	}
	if o.PoisonThreshold <= 0 {
		o.PoisonThreshold = DefaultPoisonThreshold
	}
	if o.MaxRespawns <= 0 {
		o.MaxRespawns = DefaultMaxRespawns
	}
	if o.Spawn == nil {
		extra := o.WorkerEnv
		o.Spawn = func(workerDir string) (Process, error) {
			return spawnSelfEnv(workerDir, extra)
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}
