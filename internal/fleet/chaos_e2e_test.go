package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"gtpin/internal/faults"
	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// chaosSeed lets the CI matrix pin the fault schedule (make fleet-chaos
// runs three fixed seeds); unset, the suite uses seed 1.
func chaosSeed(t *testing.T) int64 {
	raw := os.Getenv("GTPIN_FLEET_SEED")
	if raw == "" {
		return 1
	}
	seed, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("GTPIN_FLEET_SEED=%q: %v", raw, err)
	}
	return seed
}

// encodeAll canonicalizes a sweep's outcomes for byte comparison.
func encodeAll(t *testing.T, outs []workloads.Outcome) [][]byte {
	t.Helper()
	enc := make([][]byte, len(outs))
	for i, o := range outs {
		if o.Err != nil || o.Artifact == nil {
			t.Fatalf("unit %d (%s): %v", i, o.Unit.Key(), o.Err)
		}
		data, err := o.Artifact.Encode()
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = data
	}
	return enc
}

// TestFleetByteIdenticalUnderChaos is the acceptance gate: a 4-worker
// fleet with a seeded fault schedule — at least two workers SIGKILLed
// mid-unit, at least one frozen while holding its flock — must merge to
// outcomes byte-identical to an unfailed single-process sweep, with no
// unit lost, duplicated, or corrupted.
func TestFleetByteIdenticalUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const fleetWorkers = 4
	units := fleetUnits(t, 4) // 12 units: every initial worker sees several leases
	sched := RandomSchedule(chaosSeed(t), fleetWorkers)
	// Clamp the fire counters so every scheduled fault actually triggers:
	// a worker told to die on its 3rd lease might only ever be handed
	// two. Firing on the 1st or 2nd keeps the kill/hang mix and its
	// seed-dependence while making the fault count deterministic.
	for ord, k := range sched.KillAfter {
		if k > 1 {
			sched.KillAfter[ord] = 1
		}
	}
	for ord, h := range sched.HangAfter {
		if h > 1 {
			sched.HangAfter[ord] = 1
		}
	}
	chaosEnv, err := sched.Encode()
	if err != nil {
		t.Fatal(err)
	}

	baseline, err := workloads.RunPool(context.Background(), units, workloads.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeAll(t, baseline)

	state, err := runstate.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()
	var stats Stats
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	outs, err := Run(ctx, units, Options{
		State:   state,
		Workers: fleetWorkers,
		// Each process-level fault costs its in-flight unit one lease, so
		// an innocent unit can at worst burn Failures() leases to chaos
		// that had nothing to do with it; quarantine only past that.
		PoisonThreshold: sched.Failures() + 1,
		MaxRespawns:     2 * sched.Failures(),
		HeartbeatTTL:    2 * time.Second,
		PollInterval:    10 * time.Millisecond,
		WorkerEnv:       []string{EnvChaos + "=" + chaosEnv},
		Stats:           &stats,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run failed (stats %+v): %v", stats, err)
	}
	got := encodeAll(t, outs)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("unit %s: fleet artifact differs from single-process baseline", units[i].Key())
		}
	}

	if stats.WorkersLost < sched.Failures() {
		t.Errorf("WorkersLost = %d, want >= %d (every scheduled fault should fire)", stats.WorkersLost, sched.Failures())
	}
	if stats.LeasesExpired < sched.Failures() || stats.Redispatches < sched.Failures() {
		t.Errorf("stats %+v: expected >= %d expiries and re-dispatches", stats, sched.Failures())
	}
	if stats.Quarantined != 0 {
		t.Errorf("Quarantined = %d: chaos without poison units must not quarantine", stats.Quarantined)
	}

	// The merged state dir must be a valid single-process-equivalent
	// journal: every unit completed, every artifact digest-verified.
	rec, err := runstate.Recover(state.Path + "/journal.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	completed := rec.Completed()
	if len(completed) != len(units) {
		t.Fatalf("merged journal completed %d units, want %d", len(completed), len(units))
	}
	for _, u := range units {
		r, ok := completed[u.Key()]
		if !ok {
			t.Fatalf("unit %s missing from merged journal", u.Key())
		}
		if _, err := state.ReadArtifact(u.Key(), r.Digest); err != nil {
			t.Fatalf("merged artifact for %s unreadable: %v", u.Key(), err)
		}
	}
}

// TestFleetPoisonQuarantine: a unit that SIGKILLs every worker that
// touches it must be quarantined as a typed faults.ErrPoisonUnit after
// PoisonThreshold lost leases, while every other unit completes
// byte-identically.
func TestFleetPoisonQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	units := fleetUnits(t, 1) // 3 units
	poisonKey := units[1].Key()
	chaosEnv, err := Schedule{Poison: []string{poisonKey}}.Encode()
	if err != nil {
		t.Fatal(err)
	}

	baseline, err := workloads.RunPool(context.Background(), units, workloads.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var stats Stats
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	outs, err := Run(ctx, units, Options{
		Workers:         2,
		PoisonThreshold: 2,
		MaxRespawns:     6,
		HeartbeatTTL:    2 * time.Second,
		PollInterval:    10 * time.Millisecond,
		WorkerEnv:       []string{EnvChaos + "=" + chaosEnv},
		Stats:           &stats,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run failed (stats %+v): %v", stats, err)
	}

	bad := outs[1]
	if !errors.Is(bad.Err, faults.ErrPoisonUnit) {
		t.Fatalf("poison unit err = %v, want ErrPoisonUnit", bad.Err)
	}
	if faults.Kind(bad.Err) != faults.Kind(faults.ErrPoisonUnit) {
		t.Fatalf("poison unit classified %q", faults.Kind(bad.Err))
	}
	if stats.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (stats %+v)", stats.Quarantined, stats)
	}
	if stats.WorkersLost < 2 {
		t.Fatalf("WorkersLost = %d: quarantine at threshold 2 needs two kills", stats.WorkersLost)
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil || outs[i].Artifact == nil {
			t.Fatalf("healthy unit %d dragged down: %v", i, outs[i].Err)
		}
		wantData, err := baseline[i].Artifact.Encode()
		if err != nil {
			t.Fatal(err)
		}
		gotData, err := outs[i].Artifact.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotData, wantData) {
			t.Errorf("healthy unit %d artifact differs from baseline", i)
		}
	}
}

// TestFleetResumeAdopts: a second fleet run over a state dir the first
// run filled must adopt every unit from the journal without spawning a
// single worker — the resume contract, across the process topology.
func TestFleetResumeAdopts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	units := fleetUnits(t, 1)
	dir := t.TempDir()
	state, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), units, Options{
		State: state, Workers: 2,
		HeartbeatTTL: 2 * time.Second, PollInterval: 10 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := state.Close(); err != nil {
		t.Fatal(err)
	}

	state2, err := runstate.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer state2.Close()
	var stats Stats
	second, err := Run(context.Background(), units, Options{
		State: state2, Resume: true, Workers: 2,
		Stats: &stats, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Adopted != len(units) || stats.WorkersSpawned != 0 {
		t.Fatalf("stats %+v: want %d adopted, 0 spawned", stats, len(units))
	}
	for i := range units {
		if !second[i].Resumed {
			t.Fatalf("unit %d not marked resumed", i)
		}
		a, err := first[i].Artifact.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := second[i].Artifact.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("unit %d: resumed artifact differs from original", i)
		}
	}
}
