package cofluent

import (
	"reflect"
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// testApp drives a small two-kernel app and returns its program.
func testProgram(t *testing.T) *kernel.Program {
	t.Helper()
	a := asm.NewKernel("scale", isa.W16)
	s := a.Arg(0)
	buf := a.Surface(0)
	addr, v := a.Temp(), a.Temp()
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Load(v, addr, buf, 4)
	a.Mul(v, asm.R(v), asm.R(s))
	a.Store(buf, addr, v, 4)
	a.End()
	k1, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}

	b := asm.NewKernel("fill", isa.W8)
	val := b.Arg(0)
	out := b.Surface(0)
	ad, vv := b.Temp(), b.Temp()
	b.Shl(ad, asm.R(kernel.GIDReg), asm.I(2))
	b.Mov(vv, asm.R(val))
	b.Store(out, ad, vv, 4)
	b.End()
	k2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Program("cofluent-test", k1, k2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func driveApp(t *testing.T, ctx *cl.Context, prog *kernel.Program) {
	t.Helper()
	ctx.EmitSetupCalls()
	q := ctx.CreateQueue()
	buf, err := ctx.CreateBuffer(4 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueWriteBuffer(buf, 0, []byte{1, 0, 0, 0, 2, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	p := ctx.CreateProgram(prog)
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	fill, err := p.CreateKernel("fill")
	if err != nil {
		t.Fatal(err)
	}
	scale, err := p.CreateKernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	if err := fill.SetArg(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := fill.SetBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := scale.SetArg(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := scale.SetBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueNDRangeKernel(fill, 32); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.EnqueueNDRangeKernel(scale, 32); err != nil {
			t.Fatal(err)
		}
		if err := q.EnqueueReadBuffer(buf, 0, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	ctx.ReleaseBuffer(buf)
	scale.Release()
	fill.Release()
	p.Release()
}

func TestBreakdownAndTimings(t *testing.T) {
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	prog := testProgram(t)
	driveApp(t, ctx, prog)

	k, s, o := tr.Breakdown()
	if k != 4 {
		t.Errorf("kernel calls = %d, want 4", k)
	}
	if s != 4 { // 1 finish + 3 reads
		t.Errorf("sync calls = %d, want 4", s)
	}
	if o == 0 {
		t.Error("no other calls")
	}
	kp, sp, op := tr.BreakdownPct()
	if kp <= 0 || sp <= 0 || op <= 0 || kp+sp+op < 99.9 || kp+sp+op > 100.1 {
		t.Errorf("percentages: %f %f %f", kp, sp, op)
	}
	if len(tr.Timings()) != 4 {
		t.Fatalf("timings = %d", len(tr.Timings()))
	}
	for i, kt := range tr.Timings() {
		if kt.TimeNs <= 0 {
			t.Errorf("timing %d not positive", i)
		}
		if kt.Instrs == 0 {
			t.Errorf("timing %d has no instructions", i)
		}
	}
	if tr.TotalKernelTimeNs() <= 0 {
		t.Error("total time must be positive")
	}
	times := tr.TimesNs()
	if len(times) != 4 || times[0] <= 0 {
		t.Errorf("TimesNs = %v", times)
	}
}

func TestSyncEpochs(t *testing.T) {
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	driveApp(t, ctx, testProgram(t))
	epochs := tr.SyncEpochs()
	// fill enqueued at epoch 0; scale_i at epochs 1, 2, 3.
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(epochs, want) {
		t.Errorf("epochs = %v, want %v", epochs, want)
	}
}

func TestRecordReplayPreservesCallStream(t *testing.T) {
	prog := testProgram(t)
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	driveApp(t, ctx, prog)
	rec, err := Record("cofluent-test", tr, []*kernel.Program{prog})
	if err != nil {
		t.Fatal(err)
	}

	dev2, _ := device.New(device.IvyBridgeHD4000())
	tr2, err := rec.Replay(dev2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := tr.Calls(), tr2.Calls()
	if len(c1) != len(c2) {
		t.Fatalf("call counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].Name != c2[i].Name || c1[i].Kind != c2[i].Kind {
			t.Fatalf("call %d differs: %s vs %s", i, c1[i].Name, c2[i].Name)
		}
	}
	// Functional determinism: the same instruction counts.
	t1, t2 := tr.Timings(), tr2.Timings()
	for i := range t1 {
		if t1[i].Instrs != t2[i].Instrs || t1[i].Kernel != t2[i].Kernel || t1[i].GWS != t2[i].GWS {
			t.Fatalf("timing %d differs: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestReplayOnDifferentDeviceTimesDiffer(t *testing.T) {
	prog := testProgram(t)
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	driveApp(t, ctx, prog)
	rec, err := Record("cofluent-test", tr, []*kernel.Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := device.New(device.IvyBridgeHD4000().WithFrequency(350))
	trSlow, err := rec.Replay(slow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trSlow.TotalKernelTimeNs() <= tr.TotalKernelTimeNs() {
		t.Error("350MHz replay should be slower than 1150MHz original")
	}
}

func TestRecordRejectsUndrainedQueue(t *testing.T) {
	prog := testProgram(t)
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(64)
	p := ctx.CreateProgram(prog)
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	k, _ := p.CreateKernel("fill")
	if err := k.SetArg(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueNDRangeKernel(k, 16); err != nil {
		t.Fatal(err)
	}
	// No sync: one enqueue without completion.
	if _, err := Record("bad", tr, []*kernel.Program{prog}); err == nil {
		t.Error("expected error for undrained queue")
	}
}

func TestReplayUnknownProgram(t *testing.T) {
	prog := testProgram(t)
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	driveApp(t, ctx, prog)
	rec, err := Record("cofluent-test", tr, nil) // missing program IR
	if err != nil {
		t.Fatal(err)
	}
	dev2, _ := device.New(device.IvyBridgeHD4000())
	if _, err := rec.Replay(dev2, nil); err == nil {
		t.Error("expected error for missing program in recording")
	}
}
