package cofluent

import (
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// TestReplayMultipleProgramsAndBuffers: an application that builds two
// separate programs and copies between several buffers must replay
// faithfully.
func TestReplayMultipleProgramsAndBuffers(t *testing.T) {
	mk := func(name string, mult uint32) *kernel.Program {
		a := asm.NewKernel(name, isa.W16)
		buf := a.Surface(0)
		addr, v := a.Temp(), a.Temp()
		a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
		a.Load(v, addr, buf, 4)
		a.MulI(v, v, mult)
		a.Store(buf, addr, v, 4)
		a.End()
		p, err := asm.Program(name+"-prog", a.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := mk("triple", 3)
	p2 := mk("quint", 5)

	drive := func(ctx *cl.Context) []byte {
		ctx.EmitSetupCalls()
		q := ctx.CreateQueue()
		a, err := ctx.CreateBuffer(4 * 16)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ctx.CreateBuffer(4 * 16)
		if err != nil {
			t.Fatal(err)
		}
		seed := make([]byte, 64)
		for i := range seed {
			seed[i] = byte(i)
		}
		if err := q.EnqueueWriteBuffer(a, 0, seed); err != nil {
			t.Fatal(err)
		}
		prog1 := ctx.CreateProgram(p1)
		if err := prog1.Build(); err != nil {
			t.Fatal(err)
		}
		prog2 := ctx.CreateProgram(p2)
		if err := prog2.Build(); err != nil {
			t.Fatal(err)
		}
		k1, err := prog1.CreateKernel("triple")
		if err != nil {
			t.Fatal(err)
		}
		k2, err := prog2.CreateKernel("quint")
		if err != nil {
			t.Fatal(err)
		}
		if err := k1.SetBuffer(0, a); err != nil {
			t.Fatal(err)
		}
		if err := q.EnqueueNDRangeKernel(k1, 16); err != nil {
			t.Fatal(err)
		}
		// Copy a -> b between the programs' dispatches (a sync point).
		if err := q.EnqueueCopyBuffer(a, b, 0, 0, 64); err != nil {
			t.Fatal(err)
		}
		if err := k2.SetBuffer(0, b); err != nil {
			t.Fatal(err)
		}
		if err := q.EnqueueNDRangeKernel(k2, 16); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 64)
		if err := q.EnqueueReadBuffer(b, 0, out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	dev1, _ := device.New(device.IvyBridgeHD4000())
	ctx1 := cl.NewContext(dev1)
	tr := Attach(ctx1)
	want := drive(ctx1)
	// Spot-check the math: byte 4 seeds word value 4 -> *3 -> *5 = 60.
	if want[4] != 60 {
		t.Fatalf("original run wrong: %d", want[4])
	}
	rec, err := Record("multi", tr, []*kernel.Program{p1, p2})
	if err != nil {
		t.Fatal(err)
	}

	dev2, _ := device.New(device.IvyBridgeHD4000())
	tr2, err := rec.Replay(dev2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Timings()) != len(tr.Timings()) {
		t.Fatalf("replay ran %d invocations, want %d", len(tr2.Timings()), len(tr.Timings()))
	}
	for i := range tr.Timings() {
		if tr.Timings()[i].Instrs != tr2.Timings()[i].Instrs {
			t.Errorf("invocation %d instrs differ", i)
		}
	}
}
