// Package cofluent models the Intel CoFluent CPR tracing tool the paper
// uses alongside GT-Pin: it observes the host-side OpenCL API call stream
// without perturbing it, times kernel invocations, and supports recording
// an execution's API calls for deterministic replay on other devices —
// the mechanism behind the paper's cross-trial, cross-frequency, and
// cross-architecture validations (Section V-E).
package cofluent

import (
	"fmt"

	"gtpin/internal/cl"
	"gtpin/internal/device"
)

// KernelTiming is one kernel invocation's wall-clock measurement, plus
// the device-reported dynamic instruction count (used by the overhead
// study to compare instrumented and native instruction volumes).
type KernelTiming struct {
	Seq    int // invocation order
	Kernel string
	GWS    int
	TimeNs float64
	Instrs uint64
}

// Tracer records the API call stream and per-kernel timings of one
// context's execution.
type Tracer struct {
	calls   []cl.APICall
	timings []KernelTiming
}

// Attach creates a tracer and registers it on the context. Attach before
// the application issues any calls to observe the full stream.
func Attach(ctx *cl.Context) *Tracer {
	t := &Tracer{}
	ctx.AddInterceptor(t)
	return t
}

// OnAPICall implements cl.Interceptor.
func (t *Tracer) OnAPICall(call *cl.APICall) {
	t.calls = append(t.calls, *call)
}

// OnKernelComplete implements cl.Interceptor.
func (t *Tracer) OnKernelComplete(comp *cl.KernelCompletion) {
	t.timings = append(t.timings, KernelTiming{
		Seq:    comp.InvocationSeq,
		Kernel: comp.Kernel,
		GWS:    comp.GWS,
		TimeNs: comp.Stats.TimeNs,
		Instrs: comp.Stats.Instrs,
	})
}

// Calls returns the observed API call stream.
func (t *Tracer) Calls() []cl.APICall { return t.calls }

// Timings returns per-invocation kernel timings in invocation order.
func (t *Tracer) Timings() []KernelTiming { return t.timings }

// TimesNs returns just the per-invocation times, indexed by invocation
// sequence number.
func (t *Tracer) TimesNs() []float64 {
	out := make([]float64, len(t.timings))
	for _, kt := range t.timings {
		out[kt.Seq] = kt.TimeNs
	}
	return out
}

// PerturbTimes returns a copy of the tracer whose kernel timings carry
// j's multiplicative noise, applied in completion order — the order the
// device draws jitter factors during a live run. Given a tracer from an
// unjittered execution, the result is bit-identical to what re-running
// the same execution on a device with jitter j would record, because
// the device stores dispatchTime*drift and perturbs it with the same
// single multiplication. The call stream is shared, not copied.
func (t *Tracer) PerturbTimes(j *device.TimingJitter) *Tracer {
	nt := &Tracer{calls: t.calls, timings: append([]KernelTiming(nil), t.timings...)}
	for i := range nt.timings {
		nt.timings[i].TimeNs = j.Perturb(nt.timings[i].TimeNs)
	}
	return nt
}

// TotalKernelTimeNs returns the summed device time of all invocations.
func (t *Tracer) TotalKernelTimeNs() float64 {
	sum := 0.0
	for _, kt := range t.timings {
		sum += kt.TimeNs
	}
	return sum
}

// Breakdown counts API calls by Figure 3a's three categories.
func (t *Tracer) Breakdown() (kernelCalls, syncCalls, otherCalls int) {
	for i := range t.calls {
		switch t.calls[i].Kind {
		case cl.KindKernel:
			kernelCalls++
		case cl.KindSync:
			syncCalls++
		default:
			otherCalls++
		}
	}
	return
}

// BreakdownPct returns the Figure 3a percentages (kernel, sync, other).
func (t *Tracer) BreakdownPct() (kernelPct, syncPct, otherPct float64) {
	k, s, o := t.Breakdown()
	total := float64(k + s + o)
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(k) / total, 100 * float64(s) / total, 100 * float64(o) / total
}

// SyncEpochs returns, for each kernel invocation in order, the number of
// synchronization calls that preceded its enqueue — the information the
// interval divider uses to place synchronization boundaries.
func (t *Tracer) SyncEpochs() []int {
	var epochs []int
	epoch := 0
	for i := range t.calls {
		switch t.calls[i].Kind {
		case cl.KindKernel:
			epochs = append(epochs, epoch)
		case cl.KindSync:
			epoch++
		}
	}
	return epochs
}

// validate sanity-checks internal consistency between the call stream and
// completions (every enqueue must have completed).
func (t *Tracer) validate() error {
	k, _, _ := t.Breakdown()
	if k != len(t.timings) {
		return fmt.Errorf("cofluent: %d enqueues but %d completions (unflushed queue?)", k, len(t.timings))
	}
	return nil
}
