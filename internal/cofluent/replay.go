package cofluent

import (
	"fmt"

	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/kernel"
)

// Recording captures everything needed to re-execute an application's
// OpenCL interaction deterministically: the full API call stream
// (including write-buffer payloads) and the kernel IR of every program it
// built. The paper uses CoFluent recordings to guarantee that the kernel
// calls in selected intervals are "present and findable in future
// executions" despite host-side non-determinism.
type Recording struct {
	App      string
	Calls    []cl.APICall
	Programs []*kernel.Program
}

// Record finalizes a recording from a traced execution. programs must be
// the IR of each program the application created, in creation order.
func Record(app string, t *Tracer, programs []*kernel.Program) (*Recording, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	calls := make([]cl.APICall, len(t.calls))
	copy(calls, t.calls)
	return &Recording{App: app, Calls: calls, Programs: programs}, nil
}

// Replay re-executes the recorded API stream against a device, returning
// a tracer observing the replayed execution. The replay issues the same
// calls in the same order with the same data; only device timing differs
// (e.g. a different jitter seed, frequency, or architecture generation).
//
// Additional interceptors (such as a GT-Pin instance) can be attached by
// the setup callback, which runs after context creation and before any
// replayed call.
func (r *Recording) Replay(dev *device.Device, setup func(*cl.Context) error) (*Tracer, error) {
	ctx := cl.NewContext(dev)
	t := Attach(ctx)
	if setup != nil {
		if err := setup(ctx); err != nil {
			return nil, fmt.Errorf("cofluent: replay setup: %w", err)
		}
	}
	q := (*cl.Queue)(nil)
	buffers := make(map[int]*cl.Buffer)
	programs := make(map[int]*cl.Program)
	kernels := make(map[int]*cl.Kernel)
	numArgs := make(map[int]int) // kernel ID -> scalar arg count

	needQueue := func() *cl.Queue {
		if q == nil {
			q = ctx.CreateQueue()
		}
		return q
	}

	for i := range r.Calls {
		c := &r.Calls[i]
		var err error
		switch c.Name {
		case cl.CallGetPlatformIDs:
			// EmitSetupCalls covers the triple; emit via the first call
			// and skip its companions below.
			ctx.EmitSetupCalls()
		case cl.CallGetDeviceIDs, cl.CallCreateContext:
			// covered by EmitSetupCalls
		case cl.CallGetDeviceInfo:
			ctx.QueryDeviceInfo()
		case cl.CallGetEventProfilingInfo:
			ctx.QueryEventProfilingInfo()
		case cl.CallCreateCommandQueue:
			needQueue()
		case cl.CallCreateBuffer:
			var b *cl.Buffer
			b, err = ctx.CreateBuffer(c.Size)
			buffers[c.Buffer] = b
		case cl.CallCreateProgram:
			if c.Program >= len(r.Programs) {
				return nil, fmt.Errorf("cofluent: replay: program %d not in recording", c.Program)
			}
			programs[c.Program] = ctx.CreateProgram(r.Programs[c.Program])
		case cl.CallBuildProgram:
			p, ok := programs[c.Program]
			if !ok {
				return nil, fmt.Errorf("cofluent: replay: build of unknown program %d", c.Program)
			}
			err = p.Build()
		case cl.CallCreateKernel:
			p, ok := programs[c.Program]
			if !ok {
				return nil, fmt.Errorf("cofluent: replay: kernel %s of unknown program %d", c.Kernel, c.Program)
			}
			var k *cl.Kernel
			k, err = p.CreateKernel(c.Kernel)
			if err == nil {
				kernels[c.KID] = k
				numArgs[c.KID] = r.Programs[c.Program].Kernel(c.Kernel).NumArgs
			}
		case cl.CallSetKernelArg:
			k, ok := kernels[c.KID]
			if !ok {
				return nil, fmt.Errorf("cofluent: replay: arg on unknown kernel %d", c.KID)
			}
			if na := numArgs[c.KID]; c.ArgIdx >= na {
				b, ok := buffers[c.Buffer]
				if !ok {
					return nil, fmt.Errorf("cofluent: replay: unknown buffer %d", c.Buffer)
				}
				err = k.SetBuffer(c.ArgIdx-na, b)
			} else {
				err = k.SetArg(c.ArgIdx, c.ArgVal)
			}
		case cl.CallEnqueueNDRangeKernel:
			k, ok := kernels[c.KID]
			if !ok {
				return nil, fmt.Errorf("cofluent: replay: enqueue of unknown kernel %d", c.KID)
			}
			err = needQueue().EnqueueNDRangeKernel(k, c.GWS)
		case cl.CallEnqueueWriteBuffer:
			err = needQueue().EnqueueWriteBuffer(buffers[c.Buffer], c.Offset, c.Payload)
		case cl.CallEnqueueReadBuffer:
			err = needQueue().EnqueueReadBuffer(buffers[c.Buffer], c.Offset, make([]byte, c.Size))
		case cl.CallEnqueueReadImage:
			err = needQueue().EnqueueReadImage(buffers[c.Buffer], c.Offset, make([]byte, c.Size))
		case cl.CallEnqueueCopyBuffer:
			err = needQueue().EnqueueCopyBuffer(buffers[c.Buffer], buffers[c.Buffer2], c.Offset, c.Offset2, c.Size)
		case cl.CallEnqueueCopyImgToBuf:
			err = needQueue().EnqueueCopyImageToBuffer(buffers[c.Buffer], buffers[c.Buffer2], c.Offset, c.Offset2, c.Size)
		case cl.CallFinish:
			err = needQueue().Finish()
		case cl.CallFlush:
			err = needQueue().Flush()
		case cl.CallWaitForEvents:
			err = needQueue().WaitForEvents()
		case cl.CallReleaseMemObject:
			ctx.ReleaseBuffer(buffers[c.Buffer])
		case cl.CallReleaseKernel:
			if k, ok := kernels[c.KID]; ok {
				k.Release()
			}
		case cl.CallReleaseProgram:
			if p, ok := programs[c.Program]; ok {
				p.Release()
			}
		default:
			return nil, fmt.Errorf("cofluent: replay: unsupported call %s", c.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("cofluent: replay call %d (%s): %w", i, c.Name, err)
		}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}
