package cofluent

import (
	"bytes"
	"path/filepath"
	"testing"

	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/kernel"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	prog := testProgram(t)
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	driveApp(t, ctx, prog)
	rec, err := Record("persist-test", tr, []*kernel.Program{prog})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App != rec.App || len(loaded.Calls) != len(rec.Calls) || len(loaded.Programs) != len(rec.Programs) {
		t.Fatalf("loaded recording differs: %s %d %d", loaded.App, len(loaded.Calls), len(loaded.Programs))
	}

	// The loaded recording must replay identically.
	dev2, _ := device.New(device.IvyBridgeHD4000())
	tr2, err := loaded.Replay(dev2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Timings()) != len(tr.Timings()) {
		t.Fatalf("replay of loaded recording: %d invocations, want %d",
			len(tr2.Timings()), len(tr.Timings()))
	}
	for i := range tr.Timings() {
		if tr.Timings()[i].Instrs != tr2.Timings()[i].Instrs {
			t.Fatalf("invocation %d differs after save/load", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	prog := testProgram(t)
	dev, _ := device.New(device.IvyBridgeHD4000())
	ctx := cl.NewContext(dev)
	tr := Attach(ctx)
	driveApp(t, ctx, prog)
	rec, err := Record("persist-file", tr, []*kernel.Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.rec")
	if err := rec.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App != "persist-file" {
		t.Errorf("app = %q", loaded.App)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.rec")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a recording"))); err == nil {
		t.Error("expected error for garbage input")
	}
	// Valid gzip, invalid gob.
	var buf bytes.Buffer
	if _, err := Load(&buf); err == nil {
		t.Error("expected error for empty input")
	}
}
