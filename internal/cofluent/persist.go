package cofluent

// Recording persistence. CoFluent recordings outlive the capturing
// process — the paper generates one recording per application and replays
// it across trials, frequencies, and machines. Save/Load serialize the
// full recording (API stream with write payloads, plus kernel IR) with
// encoding/gob.

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"gtpin/internal/runstate"
)

// Save writes the recording to w, gzip-compressed (write-buffer payloads
// compress well).
func (r *Recording) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(r); err != nil {
		return fmt.Errorf("cofluent: save recording: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("cofluent: save recording: %w", err)
	}
	return nil
}

// Load reads a recording written by Save.
func Load(r io.Reader) (*Recording, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("cofluent: load recording: %w", err)
	}
	defer zr.Close()
	var rec Recording
	if err := gob.NewDecoder(zr).Decode(&rec); err != nil {
		return nil, fmt.Errorf("cofluent: load recording: %w", err)
	}
	if len(rec.Calls) == 0 {
		return nil, fmt.Errorf("cofluent: load recording: empty call stream")
	}
	return &rec, nil
}

// SaveFile writes the recording to path atomically: a crash mid-save
// leaves either the previous recording or none, never a torn gzip
// stream.
func (r *Recording) SaveFile(path string) error {
	if err := runstate.WriteAtomic(path, r.Save); err != nil {
		return fmt.Errorf("cofluent: %w", err)
	}
	return nil
}

// LoadFile reads a recording from path.
func LoadFile(path string) (*Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cofluent: %w", err)
	}
	defer f.Close()
	return Load(f)
}
