package cl

import (
	"fmt"
	"sort"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// BuildHook intercepts the driver JIT: it receives each kernel binary as
// the JIT produces it and returns the binary the device should actually
// load. The GT-Pin binary rewriter registers itself as a build hook
// (Figure 1 of the paper: the binary is "diverted to a GT-Pin binary
// re-writer" before reaching the GPU).
type BuildHook func(bin *jit.Binary) (*jit.Binary, error)

// ProgramTransform rewrites kernel IR as it enters the driver — the
// hook the cross-ISA tooling uses to retarget a workload to another
// dialect before any compilation happens. Transforms must be pure: the
// caller's IR is never mutated.
type ProgramTransform func(ir *kernel.Program) (*kernel.Program, error)

// defaultProgramTransform and defaultBinaryTransform are process-wide
// driver configuration, the analogue of environment-selected driver
// options on a real stack. They are installed once at process startup
// (before any Context exists) and only read afterwards, so plain
// variables suffice.
var (
	defaultProgramTransform ProgramTransform
	defaultBinaryTransform  BuildHook
)

// SetDefaultProgramTransform installs a transform applied to the IR of
// every program created in this process, in CreateProgram. Install it
// before creating contexts; nil removes it.
func SetDefaultProgramTransform(t ProgramTransform) { defaultProgramTransform = t }

// SetDefaultBinaryTransform installs a hook applied to every kernel
// binary at build time, before any context-registered build hook —
// so a binary translator installed here runs below GT-Pin's rewriter,
// and instrumentation lands on the translated code. Install it before
// creating contexts; nil removes it.
func SetDefaultBinaryTransform(h BuildHook) { defaultBinaryTransform = h }

// Context owns a device, the objects created against it, and the
// interception points tools attach to.
type Context struct {
	dev          *device.Device
	degraded     *device.Device // lazy graceful-degradation fallback
	resilience   Resilience
	interceptors []Interceptor
	buildHooks   []BuildHook

	seq         int
	invocations int
	programs    []*Program
	buffers     []*Buffer
	kernels     []*Kernel

	queue *Queue

	// traceBuf, when set, is appended to every dispatch's binding table —
	// the driver-level change GT-Pin's initialization makes so that
	// instrumented binaries can reach their trace buffer.
	traceBuf *device.Buffer
}

// SetTraceBuffer installs the GT-Pin trace buffer: a surface the driver
// binds after each kernel's own surfaces on every dispatch.
func (ctx *Context) SetTraceBuffer(b *device.Buffer) { ctx.traceBuf = b }

// NewContext creates a context on the device. No API calls are emitted
// yet, so tools (GT-Pin, CoFluent) attached immediately after creation
// observe the complete call stream; applications then issue their setup
// calls via EmitSetupCalls or individual methods.
func NewContext(dev *device.Device) *Context {
	return &Context{dev: dev, resilience: DefaultResilience()}
}

// EmitSetupCalls emits the platform/device/context setup sequence a real
// host performs before creating any objects.
func (ctx *Context) EmitSetupCalls() {
	ctx.emit(&APICall{Name: CallGetPlatformIDs})
	ctx.emit(&APICall{Name: CallGetDeviceIDs})
	ctx.emit(&APICall{Name: CallCreateContext})
}

// Device returns the underlying device.
func (ctx *Context) Device() *device.Device { return ctx.dev }

// AddInterceptor registers an API observer. Interceptors added before any
// other call see the full stream.
func (ctx *Context) AddInterceptor(i Interceptor) { ctx.interceptors = append(ctx.interceptors, i) }

// AddBuildHook registers a JIT diversion hook; hooks run in registration
// order on each kernel binary at program build time.
func (ctx *Context) AddBuildHook(h BuildHook) { ctx.buildHooks = append(ctx.buildHooks, h) }

func (ctx *Context) emit(call *APICall) {
	call.Seq = ctx.seq
	ctx.seq++
	call.Kind = KindOf(call.Name)
	observeAPICall(call.Kind)
	for _, i := range ctx.interceptors {
		i.OnAPICall(call)
	}
}

// QueryDeviceInfo emits a device-information query ("other" API traffic;
// real hosts issue many of these during setup).
func (ctx *Context) QueryDeviceInfo() {
	ctx.emit(&APICall{Name: CallGetDeviceInfo})
}

// QueryEventProfilingInfo emits a profiling-info query for the last event.
func (ctx *Context) QueryEventProfilingInfo() {
	ctx.emit(&APICall{Name: CallGetEventProfilingInfo})
}

// Buffer is a device memory object created on a context.
type Buffer struct {
	ID  int
	buf *device.Buffer
}

// Device returns the underlying device surface.
func (b *Buffer) Device() *device.Buffer { return b.buf }

// Size returns the buffer capacity in bytes.
func (b *Buffer) Size() int { return b.buf.Size() }

// CreateBuffer allocates a device buffer of the given size.
func (ctx *Context) CreateBuffer(size int) (*Buffer, error) {
	db, err := device.NewBuffer(size)
	if err != nil {
		return nil, fmt.Errorf("cl: %w", err)
	}
	b := &Buffer{ID: len(ctx.buffers), buf: db}
	ctx.buffers = append(ctx.buffers, b)
	ctx.emit(&APICall{Name: CallCreateBuffer, Buffer: b.ID, Size: size})
	return b, nil
}

// ReleaseBuffer emits the release call for b. The storage itself is
// garbage collected.
func (ctx *Context) ReleaseBuffer(b *Buffer) {
	ctx.emit(&APICall{Name: CallReleaseMemObject, Buffer: b.ID})
}

// Program is a program object: kernel IR plus, after Build, the
// (possibly instrumented) device binaries.
type Program struct {
	ID   int
	ctx  *Context
	ir   *kernel.Program
	bins map[string]*jit.Binary

	// xformErr is a failure of the default program transform, detected
	// at creation but surfaced at Build: CreateProgram mirrors the real
	// API's no-error signature, where source problems appear as build
	// errors.
	xformErr error
}

// CreateProgram creates a program from kernel IR (the analogue of
// clCreateProgramWithSource; our "source" is already IR). The default
// program transform, if installed, is applied here; a transform failure
// is reported by Build.
func (ctx *Context) CreateProgram(ir *kernel.Program) *Program {
	p := &Program{ID: len(ctx.programs), ctx: ctx, ir: ir}
	if defaultProgramTransform != nil {
		tir, err := defaultProgramTransform(ir)
		if err != nil {
			p.xformErr = fmt.Errorf("cl: program transform: %w", err)
		} else {
			p.ir = tir
		}
	}
	ctx.programs = append(ctx.programs, p)
	ctx.emit(&APICall{Name: CallCreateProgram, Program: p.ID})
	return p
}

// IR returns the program's kernel IR.
func (p *Program) IR() *kernel.Program { return p.ir }

// Build JIT-compiles every kernel and runs the registered build hooks on
// each binary, in order — the point where GT-Pin instruments the code.
// Transient JIT failures (faults.ErrJITTransient) are retried under the
// context's resilience policy before being surfaced.
func (p *Program) Build() error {
	p.ctx.emit(&APICall{Name: CallBuildProgram, Program: p.ID})
	if p.xformErr != nil {
		return p.xformErr
	}
	pol := p.ctx.resilience
	var err error
	for attempt := 0; ; attempt++ {
		var bins map[string]*jit.Binary
		bins, err = p.buildOnce()
		if err == nil {
			p.bins = bins
			return nil
		}
		if !faults.IsTransient(err) || attempt >= pol.MaxRetries {
			return err
		}
	}
}

// buildOnce is one JIT attempt: compile, consult the fault injector, run
// the build hooks. Kernels are visited in sorted-name order so the
// injector's per-kernel draw counts advance identically on every run.
func (p *Program) buildOnce() (map[string]*jit.Binary, error) {
	bins, err := jit.CompileProgram(p.ir)
	if err != nil {
		return nil, fmt.Errorf("cl: build program %d: %w", p.ID, err)
	}
	names := make([]string, 0, len(bins))
	for name := range bins {
		names = append(names, name)
	}
	sort.Strings(names)
	// Consult the injector for every kernel before any build hook runs:
	// a transient JIT failure must abort the attempt with no hook side
	// effects, so a retry re-runs the hooks (instrumentation, rewriting)
	// from a clean slate.
	inj := p.ctx.dev.FaultInjector()
	for _, name := range names {
		if inj.JITFault(name) {
			return nil, fmt.Errorf("cl: build program %d: jit of kernel %s: %w", p.ID, name, faults.ErrJITTransient)
		}
	}
	for _, name := range names {
		bin := bins[name]
		if defaultBinaryTransform != nil {
			bin, err = defaultBinaryTransform(bin)
			if err != nil {
				return nil, fmt.Errorf("cl: binary transform on kernel %s: %w", name, err)
			}
		}
		for _, h := range p.ctx.buildHooks {
			bin, err = h(bin)
			if err != nil {
				return nil, fmt.Errorf("cl: build hook on kernel %s: %w", name, err)
			}
		}
		bins[name] = bin
	}
	return bins, nil
}

// Release emits the program release call.
func (p *Program) Release() {
	p.ctx.emit(&APICall{Name: CallReleaseProgram, Program: p.ID})
}

// Kernel is a kernel object: a named entry point plus its currently-set
// arguments.
type Kernel struct {
	ID   int
	prog *Program
	name string
	bin  *jit.Binary

	args     []uint32
	surfaces []*Buffer
}

// CreateKernel creates a kernel object for the named kernel. The program
// must have been built.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.bins == nil {
		return nil, fmt.Errorf("cl: program %d not built", p.ID)
	}
	bin, ok := p.bins[name]
	if !ok {
		return nil, fmt.Errorf("cl: program %d has no kernel %q", p.ID, name)
	}
	ir := p.ir.Kernel(name)
	k := &Kernel{
		ID:       len(p.ctx.kernels),
		prog:     p,
		name:     name,
		bin:      bin,
		args:     make([]uint32, ir.NumArgs),
		surfaces: make([]*Buffer, ir.NumSurfaces),
	}
	p.ctx.kernels = append(p.ctx.kernels, k)
	p.ctx.emit(&APICall{Name: CallCreateKernel, Program: p.ID, Kernel: name, KID: k.ID})
	return k, nil
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// SetArg sets scalar argument i (the analogue of clSetKernelArg with a
// scalar value).
func (k *Kernel) SetArg(i int, v uint32) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("cl: kernel %s: arg index %d out of range (%d args)", k.name, i, len(k.args))
	}
	k.args[i] = v
	k.prog.ctx.emit(&APICall{Name: CallSetKernelArg, Kernel: k.name, KID: k.ID, ArgIdx: i, ArgVal: v})
	return nil
}

// SetBuffer binds a buffer to surface slot s (the analogue of
// clSetKernelArg with a memory object).
func (k *Kernel) SetBuffer(s int, b *Buffer) error {
	if s < 0 || s >= len(k.surfaces) {
		return fmt.Errorf("cl: kernel %s: surface index %d out of range (%d surfaces)", k.name, s, len(k.surfaces))
	}
	k.surfaces[s] = b
	k.prog.ctx.emit(&APICall{Name: CallSetKernelArg, Kernel: k.name, KID: k.ID,
		ArgIdx: len(k.args) + s, Buffer: b.ID})
	return nil
}

// Release emits the kernel release call.
func (k *Kernel) Release() {
	k.prog.ctx.emit(&APICall{Name: CallReleaseKernel, Kernel: k.name, KID: k.ID})
}
