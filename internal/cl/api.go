// Package cl models the OpenCL host runtime: contexts, command queues,
// buffers, programs, kernels, and the API-call semantics the paper's
// methodology is built around.
//
// Two properties of real OpenCL are preserved because the paper depends
// on them:
//
//  1. Kernels enqueued with EnqueueNDRangeKernel execute asynchronously
//     with respect to the host; only the seven synchronization calls
//     (Finish, Flush, WaitForEvents, EnqueueReadBuffer, EnqueueCopyBuffer,
//     EnqueueReadImage, EnqueueCopyImageToBuffer) align host and device.
//     Those calls are therefore the only legal simulation-interval
//     boundaries coarser than a kernel invocation (Section V-B).
//
//  2. Every API call flows through an interception point, where tools
//     like the CoFluent tracer observe the call stream without perturbing
//     it (Figure 3a), and where GT-Pin hooks runtime initialization and
//     the driver JIT (Figure 1).
package cl

import "gtpin/internal/device"

// APIKind classifies API calls the way Figure 3a of the paper does.
type APIKind uint8

// API call kinds.
const (
	KindOther  APIKind = iota // setup, argument supply, post-processing, cleanup
	KindKernel                // EnqueueNDRangeKernel: kernel invocations
	KindSync                  // the seven synchronization calls
)

// String returns the Figure 3a label for the kind.
func (k APIKind) String() string {
	switch k {
	case KindKernel:
		return "Kernel"
	case KindSync:
		return "Synchronization"
	default:
		return "Other"
	}
}

// API call names. SyncCallNames lists exactly the seven calls the paper
// identifies as synchronization points.
const (
	CallGetPlatformIDs        = "clGetPlatformIDs"
	CallGetDeviceIDs          = "clGetDeviceIDs"
	CallGetDeviceInfo         = "clGetDeviceInfo"
	CallCreateContext         = "clCreateContext"
	CallCreateCommandQueue    = "clCreateCommandQueue"
	CallCreateBuffer          = "clCreateBuffer"
	CallCreateProgram         = "clCreateProgramWithSource"
	CallBuildProgram          = "clBuildProgram"
	CallCreateKernel          = "clCreateKernel"
	CallSetKernelArg          = "clSetKernelArg"
	CallEnqueueNDRangeKernel  = "clEnqueueNDRangeKernel"
	CallEnqueueWriteBuffer    = "clEnqueueWriteBuffer"
	CallReleaseMemObject      = "clReleaseMemObject"
	CallReleaseKernel         = "clReleaseKernel"
	CallReleaseProgram        = "clReleaseProgram"
	CallGetEventProfilingInfo = "clGetEventProfilingInfo"
	CallFinish                = "clFinish"
	CallFlush                 = "clFlush"
	CallWaitForEvents         = "clWaitForEvents"
	CallEnqueueReadBuffer     = "clEnqueueReadBuffer"
	CallEnqueueCopyBuffer     = "clEnqueueCopyBuffer"
	CallEnqueueReadImage      = "clEnqueueReadImage"
	CallEnqueueCopyImgToBuf   = "clEnqueueCopyImageToBuffer"
)

// SyncCallNames is the set of the paper's seven synchronization calls.
var SyncCallNames = map[string]bool{
	CallFinish:              true,
	CallFlush:               true,
	CallWaitForEvents:       true,
	CallEnqueueReadBuffer:   true,
	CallEnqueueCopyBuffer:   true,
	CallEnqueueReadImage:    true,
	CallEnqueueCopyImgToBuf: true,
}

// KindOf classifies an API call name.
func KindOf(name string) APIKind {
	switch {
	case name == CallEnqueueNDRangeKernel:
		return KindKernel
	case SyncCallNames[name]:
		return KindSync
	default:
		return KindOther
	}
}

// APICall is one observed host API call. Payload fields are populated
// according to the call: argument sets carry ArgIndex/ArgValue, enqueues
// carry Kernel/GWS, data transfers carry BufferID/Offset/Size and, for
// writes, the data itself (so recordings can be replayed).
type APICall struct {
	Seq     int // global call order within the context
	Name    string
	Kind    APIKind
	Program int    // program ID for program-scoped calls
	Kernel  string // kernel name for kernel-scoped calls
	KID     int    // kernel object ID
	ArgIdx  int
	ArgVal  uint32
	Buffer  int // buffer object ID
	Buffer2 int // destination buffer for copies
	Offset  int
	Offset2 int // destination offset for copies
	Size    int
	GWS     int
	Payload []byte // write-buffer data, retained for replay
}

// KernelCompletion reports one finished kernel invocation, delivered to
// interceptors when a synchronization call drains the queue.
type KernelCompletion struct {
	// InvocationSeq numbers kernel invocations in enqueue order,
	// starting at 0, across the whole context.
	InvocationSeq int
	// EnqueueSeq is the Seq of the EnqueueNDRangeKernel call.
	EnqueueSeq int
	Kernel     string
	GWS        int
	Args       []uint32 // scalar argument snapshot at enqueue time
	Stats      device.ExecStats
}

// Interceptor observes the API stream and kernel completions. The
// CoFluent tracer and the GT-Pin runtime are both interceptors.
// Implementations must not mutate what they observe.
type Interceptor interface {
	OnAPICall(call *APICall)
	OnKernelComplete(comp *KernelCompletion)
}
