package cl

import (
	"errors"
	"testing"

	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/isa"
	"gtpin/internal/kernel"
)

// loopProgram holds "loop": for i in 0..arg0 { sum += i }; out[gid] = sum.
// The trip count scales the dynamic instruction count, which the watchdog
// tests use to make chosen enqueues exceed their budget.
func loopProgram(t *testing.T) *kernel.Program {
	t.Helper()
	k := &kernel.Kernel{
		Name: "loop", SIMD: isa.W16, NumArgs: 1, NumSurfaces: 1,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{
				{Op: isa.OpMovi, Width: isa.W16, Dst: 20, Src0: isa.Imm(0)},
				{Op: isa.OpMovi, Width: isa.W16, Dst: 21, Src0: isa.Imm(0)},
				{Op: isa.OpJmp, Width: isa.W16, Target: 1},
			}},
			{ID: 1, Instrs: []isa.Instruction{
				{Op: isa.OpAdd, Width: isa.W16, Dst: 21, Src0: isa.R(21), Src1: isa.R(20)},
				{Op: isa.OpAdd, Width: isa.W16, Dst: 20, Src0: isa.R(20), Src1: isa.Imm(1)},
				{Op: isa.OpCmp, Width: isa.W16, Cond: isa.CondLT, Src0: isa.R(20), Src1: isa.R(kernel.ArgReg(0))},
				{Op: isa.OpBr, Width: isa.W16, BrMode: isa.BranchAny, Target: 1},
			}},
			{ID: 2, Instrs: []isa.Instruction{
				{Op: isa.OpShl, Width: isa.W16, Dst: 22, Src0: isa.R(kernel.GIDReg), Src1: isa.Imm(2)},
				{Op: isa.OpSend, Width: isa.W16, Src0: isa.R(22), Src1: isa.R(21),
					Msg: isa.MsgDesc{Kind: isa.MsgStore, Surface: 0, ElemBytes: 4}},
				{Op: isa.OpEnd, Width: isa.W16},
			}},
		},
	}
	p := &kernel.Program{Name: "looper", Kernels: []*kernel.Kernel{k}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// faultyCtx builds a context whose device injects faults at the given
// rates and seed.
func faultyCtx(t *testing.T, seed int64, rates faults.Rates) (*Context, *faults.Injector) {
	t.Helper()
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(seed, rates)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultInjector(inj)
	return NewContext(dev), inj
}

// findSeed scans for an injector seed whose per-attempt draw pattern for
// the named kernel matches want (true = the probe fires on that attempt).
func findSeed(t *testing.T, rates faults.Rates, kernelName string, probe func(*faults.Invocation) bool, want []bool) int64 {
	t.Helper()
scan:
	for seed := int64(1); seed < 4096; seed++ {
		inj, err := faults.NewInjector(seed, rates)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if probe(inj.BeginInvocation(kernelName, 0)) != w {
				continue scan
			}
		}
		return seed
	}
	t.Fatal("no seed under 4096 draws the wanted fault pattern")
	return 0
}

func TestTransientFaultRetriedToSuccess(t *testing.T) {
	// First attempt corrupts, second is clean: the drain must succeed with
	// the retry recorded and the memory image intact.
	seed := findSeed(t, faults.Rates{Corrupt: 0.5}, "writeone",
		func(v *faults.Invocation) bool { return v.CorruptResult() }, []bool{true, false})
	ctx, inj := faultyCtx(t, seed, faults.Rates{Corrupt: 0.5})
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 7))
	check(t, k.SetBuffer(0, buf))
	ev, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)
	check(t, q.Finish())

	if !ev.Complete() {
		t.Fatal("event must complete after the retried drain")
	}
	st, _ := ev.Stats()
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one fault, one retry)", st.Attempts)
	}
	if st.Degraded {
		t.Error("a transient retry must not degrade the device")
	}
	if st.BackoffNs <= 0 {
		t.Error("the retry must record modelled backoff")
	}
	if inj.Stats().Corruptions != 1 {
		t.Errorf("injector stats = %+v, want exactly one corruption", inj.Stats())
	}
	got, _ := buf.Device().ReadU32(0, 1)
	if got[0] != 7 {
		t.Errorf("result = %d after retry, want 7", got[0])
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	// Three consecutive corruptions before success: backoff must be
	// base + 2*base + cap (the third retry's doubled delay hits the cap).
	seed := findSeed(t, faults.Rates{Corrupt: 0.5}, "writeone",
		func(v *faults.Invocation) bool { return v.CorruptResult() }, []bool{true, true, true, false})
	ctx, _ := faultyCtx(t, seed, faults.Rates{Corrupt: 0.5})
	ctx.SetResilience(Resilience{MaxRetries: 3, BackoffBaseNs: 100, BackoffCapNs: 300, Degrade: false})
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 1))
	check(t, k.SetBuffer(0, buf))
	ev, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)
	check(t, q.Finish())
	st, _ := ev.Stats()
	if st.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", st.Attempts)
	}
	if want := 100.0 + 200 + 300; st.BackoffNs != want {
		t.Errorf("backoff = %v ns, want %v (doubling capped at 300)", st.BackoffNs, want)
	}
}

func TestRetriesExhaustedSurfacesTypedError(t *testing.T) {
	// Corruption on every attempt and no degradation: the drain must fail
	// with a KernelExecError wrapping the transient sentinel.
	ctx, _ := faultyCtx(t, 1, faults.Rates{Corrupt: 1})
	ctx.SetResilience(Resilience{MaxRetries: 2, BackoffBaseNs: 1, BackoffCapNs: 8, Degrade: false})
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 1))
	check(t, k.SetBuffer(0, buf))
	check(t, q.EnqueueNDRangeKernel(k, 16))
	err := q.Finish()
	var kerr *KernelExecError
	if !errors.As(err, &kerr) {
		t.Fatalf("err = %v, want *KernelExecError", err)
	}
	if kerr.Kernel != "writeone" || kerr.Attempts != 3 {
		t.Errorf("kerr = %+v, want writeone after 3 attempts", kerr)
	}
	if !errors.Is(err, faults.ErrCorruptResult) {
		t.Error("the taxonomy sentinel must survive the wrap chain")
	}
}

func TestHangDegradesAndSucceeds(t *testing.T) {
	// The primary attempt hangs; the degraded re-execution draws clean and
	// must complete with Degraded recorded.
	seed := findSeed(t, faults.Rates{Hang: 0.5}, "writeone",
		func(v *faults.Invocation) bool { return v.Hang() }, []bool{true, false})
	ctx, inj := faultyCtx(t, seed, faults.Rates{Hang: 0.5})
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 5))
	check(t, k.SetBuffer(0, buf))
	ev, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)
	check(t, q.Finish())

	if !ev.Complete() {
		t.Fatal("event must complete via degradation")
	}
	st, _ := ev.Stats()
	if !st.Degraded {
		t.Error("stats must record the degraded re-execution")
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if inj.Stats().Hangs != 1 {
		t.Errorf("injector stats = %+v", inj.Stats())
	}
	got, _ := buf.Device().ReadU32(0, 1)
	if got[0] != 5 {
		t.Errorf("degraded result = %d, want 5", got[0])
	}
}

// TestInOrderSemanticsUnderPermanentFailure is the in-order queue contract
// under failure: with kernels A, B, C enqueued and B failing permanently
// mid-drain, A's event completes, B's carries the classified error, C stays
// pending for the next synchronization call, and the drain error identifies
// B by kernel name and enqueue sequence.
func TestInOrderSemanticsUnderPermanentFailure(t *testing.T) {
	dev, err := device.New(device.IvyBridgeHD4000())
	check(t, err)
	// Budget fits the short trips (46 instructions per group) but not the
	// long one; degradation shares the budget, so kernel B fails on both
	// configurations — a permanent failure.
	dev.SetWatchdog(500)
	ctx := NewContext(dev)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(loopProgram(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("loop")
	check(t, k.SetBuffer(0, buf))

	check(t, k.SetArg(0, 10)) // A: short
	evA, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)
	check(t, k.SetArg(0, 100000)) // B: exceeds the watchdog budget
	evB, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)
	check(t, k.SetArg(0, 20)) // C: short
	evC, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)

	drainErr := q.Finish()
	if drainErr == nil {
		t.Fatal("the drain must fail at kernel B")
	}
	var kerr *KernelExecError
	if !errors.As(drainErr, &kerr) {
		t.Fatalf("drain error = %v, want *KernelExecError", drainErr)
	}
	if kerr.Kernel != "loop" {
		t.Errorf("failing kernel = %q", kerr.Kernel)
	}
	if kerr.EnqueueSeq <= 0 {
		t.Errorf("enqueue seq = %d, must identify B's position in the API stream", kerr.EnqueueSeq)
	}
	if !errors.Is(drainErr, faults.ErrWatchdogTimeout) {
		t.Errorf("drain error must classify as watchdog timeout: %v", drainErr)
	}
	if !kerr.Degraded {
		t.Error("the policy must have tried the degraded configuration first")
	}

	// A completed; B failed with the same classified error; C never ran.
	if !evA.Complete() {
		t.Error("A must have completed before the failure")
	}
	if evB.Complete() {
		t.Error("B must not be complete")
	}
	if !errors.Is(evB.Err(), faults.ErrWatchdogTimeout) {
		t.Errorf("B's event error = %v", evB.Err())
	}
	if evC.Complete() || evC.Err() != nil {
		t.Error("C must still be pending, untouched by B's failure")
	}
	if q.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (only C)", q.Pending())
	}

	// The next synchronization call completes C: the failed command was
	// discarded, not the queue.
	check(t, q.Finish())
	if !evC.Complete() {
		t.Error("C must complete on the next drain")
	}
}

func TestBuildRetriesTransientJITFault(t *testing.T) {
	// One transient JIT failure, then success: Build must absorb it.
	seed := int64(0)
	for s := int64(1); s < 4096; s++ {
		inj, _ := faults.NewInjector(s, faults.Rates{JIT: 0.5})
		if inj.JITFault("writeone") && !inj.JITFault("writeone") {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed found")
	}
	ctx, inj := faultyCtx(t, seed, faults.Rates{JIT: 0.5})
	p := ctx.CreateProgram(writeOne(t))
	if err := p.Build(); err != nil {
		t.Fatalf("build must retry the transient JIT fault: %v", err)
	}
	if inj.Stats().JITFaults != 1 {
		t.Errorf("injector stats = %+v", inj.Stats())
	}
}

func TestBuildSurfacesPersistentJITFault(t *testing.T) {
	ctx, _ := faultyCtx(t, 1, faults.Rates{JIT: 1})
	p := ctx.CreateProgram(writeOne(t))
	err := p.Build()
	if !errors.Is(err, faults.ErrJITTransient) {
		t.Fatalf("build error = %v, want ErrJITTransient after exhausted retries", err)
	}
}

func TestEventErrorsUseTaxonomy(t *testing.T) {
	ctx := newCtx(t)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 1))
	check(t, k.SetBuffer(0, buf))
	ev, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	check(t, err)
	if _, perr := ev.ProfilingTimeNs(); !errors.Is(perr, faults.ErrEventNotComplete) {
		t.Errorf("profiling before sync = %v, want ErrEventNotComplete", perr)
	}
	foreign := &Event{kernel: "other"}
	if werr := q.WaitForEvents(foreign); !errors.Is(werr, faults.ErrEventNotComplete) {
		t.Errorf("waiting a foreign event = %v, want ErrEventNotComplete", werr)
	}
	if !ev.Complete() {
		t.Error("the wait drained the queue; our event must be complete")
	}
	if _, perr := ev.ProfilingTimeNs(); perr != nil {
		t.Errorf("profiling after sync: %v", perr)
	}
}
