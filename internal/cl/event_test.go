package cl

import (
	"testing"
)

func TestEventCompletesOnSync(t *testing.T) {
	ctx := newCtx(t)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 7))
	check(t, k.SetBuffer(0, buf))

	ev, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Complete() {
		t.Fatal("event complete before any sync call")
	}
	if _, err := ev.ProfilingTimeNs(); err == nil {
		t.Fatal("profiling info available before completion")
	}
	if _, ok := ev.Stats(); ok {
		t.Fatal("stats available before completion")
	}

	check(t, q.WaitForEvents(ev))
	if !ev.Complete() {
		t.Fatal("event incomplete after wait")
	}
	tm, err := ev.ProfilingTimeNs()
	if err != nil || tm <= 0 {
		t.Fatalf("profiling time = %f, %v", tm, err)
	}
	st, ok := ev.Stats()
	if !ok || st.Instrs == 0 {
		t.Fatalf("stats = %+v, %v", st, ok)
	}
	if ev.Kernel() != "writeone" {
		t.Errorf("event kernel = %q", ev.Kernel())
	}
}

func TestEventsCompleteInOrder(t *testing.T) {
	ctx := newCtx(t)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 1))
	check(t, k.SetBuffer(0, buf))

	var events []*Event
	for i := 0; i < 3; i++ {
		ev, err := q.EnqueueNDRangeKernelWithEvent(k, 16)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	// Waiting on the last event drains the in-order queue: all complete.
	check(t, q.WaitForEvents(events[2]))
	for i, ev := range events {
		if !ev.Complete() {
			t.Errorf("event %d incomplete", i)
		}
	}
}
