package cl

// Observability: API-call traffic by Figure-3a kind, completions, and
// the resilience policy's retry/degradation activity. All counters, all
// at API-call granularity.

import "gtpin/internal/obs"

var (
	mCallsKernel = obs.DefaultCounter("cl_api_calls_kernel_total",
		"EnqueueNDRangeKernel API calls emitted")
	mCallsSync = obs.DefaultCounter("cl_api_calls_sync_total",
		"synchronization API calls emitted")
	mCallsOther = obs.DefaultCounter("cl_api_calls_other_total",
		"other API calls emitted (setup, argument supply, cleanup)")
	mCompletions = obs.DefaultCounter("cl_kernel_completions_total",
		"kernel invocations completed by queue drains")
	mRetries = obs.DefaultCounter("cl_retries_total",
		"transient-fault retry attempts consumed by the resilience policy")
	mDegradedRuns = obs.DefaultCounter("cl_degraded_runs_total",
		"kernel invocations re-executed on the degraded device configuration")
)

func observeAPICall(kind APIKind) {
	switch kind {
	case KindKernel:
		mCallsKernel.Inc()
	case KindSync:
		mCallsSync.Inc()
	default:
		mCallsOther.Inc()
	}
}
