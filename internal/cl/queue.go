package cl

import (
	"fmt"

	"gtpin/internal/device"
	"gtpin/internal/faults"
)

// Queue is an in-order command queue. EnqueueNDRangeKernel defers
// execution; the seven synchronization calls drain the queue, executing
// pending kernels on the device and firing completion events — the
// OpenCL asynchrony the paper's interval rules derive from.
type Queue struct {
	ctx     *Context
	pending []pendingExec
}

type pendingExec struct {
	enqueueSeq int
	kernel     *Kernel
	gws        int
	args       []uint32  // snapshot at enqueue
	surfaces   []*Buffer // snapshot at enqueue
	event      *Event
}

// Event identifies one enqueued kernel invocation. After a
// synchronization call completes the invocation, the event carries its
// profiling information (the analogue of clGetEventProfilingInfo).
type Event struct {
	kernel string
	done   bool
	stats  device.ExecStats
	err    error // set when the invocation failed past the resilience policy
}

// Kernel returns the kernel name the event tracks.
func (e *Event) Kernel() string { return e.kernel }

// Complete reports whether the invocation has executed successfully.
func (e *Event) Complete() bool { return e.done }

// Err returns the classified execution error of a failed invocation, or
// nil if the invocation completed (or has not executed yet).
func (e *Event) Err() error { return e.err }

// ProfilingTimeNs returns the invocation's modelled execution time. It
// fails with faults.ErrEventNotComplete if the event has not completed
// (no synchronization call has drained the queue yet, or the invocation
// failed).
func (e *Event) ProfilingTimeNs() (float64, error) {
	if !e.done {
		return 0, fmt.Errorf("cl: event for kernel %s: %w", e.kernel, faults.ErrEventNotComplete)
	}
	return e.stats.TimeNs, nil
}

// Stats returns the invocation's execution statistics; the boolean is
// false until the event completes.
func (e *Event) Stats() (device.ExecStats, bool) {
	return e.stats, e.done
}

// CreateQueue creates the context's command queue. A context has a single
// in-order queue, matching the paper's applications.
func (ctx *Context) CreateQueue() *Queue {
	if ctx.queue == nil {
		ctx.queue = &Queue{ctx: ctx}
		ctx.emit(&APICall{Name: CallCreateCommandQueue})
	}
	return ctx.queue
}

// EnqueueNDRangeKernel dispatches the kernel over gws work-items. The
// kernel's current arguments are snapshotted; execution is deferred until
// the next synchronization call.
func (q *Queue) EnqueueNDRangeKernel(k *Kernel, gws int) error {
	_, err := q.EnqueueNDRangeKernelWithEvent(k, gws)
	return err
}

// EnqueueNDRangeKernelWithEvent is EnqueueNDRangeKernel returning an
// event that completes — and carries profiling information — once a
// synchronization call executes the invocation.
func (q *Queue) EnqueueNDRangeKernelWithEvent(k *Kernel, gws int) (*Event, error) {
	if gws <= 0 {
		return nil, fmt.Errorf("cl: enqueue %s: global work size %d", k.name, gws)
	}
	for s, b := range k.surfaces {
		if b == nil {
			return nil, fmt.Errorf("cl: enqueue %s: surface %d not set", k.name, s)
		}
	}
	seq := q.ctx.seq
	q.ctx.emit(&APICall{Name: CallEnqueueNDRangeKernel, Kernel: k.name, KID: k.ID, GWS: gws})
	args := make([]uint32, len(k.args))
	copy(args, k.args)
	surfaces := make([]*Buffer, len(k.surfaces))
	copy(surfaces, k.surfaces)
	ev := &Event{kernel: k.name}
	q.pending = append(q.pending, pendingExec{
		enqueueSeq: seq, kernel: k, gws: gws, args: args, surfaces: surfaces, event: ev,
	})
	return ev, nil
}

// drain executes all pending kernels in order on the device, each under
// the resilience policy, and notifies interceptors of each completion.
//
// On a failure that survives the policy, the drain stops at the failing
// kernel: earlier invocations are complete (their events fired), the
// failing kernel's pending entry is dropped, and later enqueues remain
// pending for a subsequent synchronization call — the in-order analogue
// of a command queue whose failed command is discarded. The returned
// *KernelExecError identifies the failing kernel and enqueue sequence.
func (q *Queue) drain() error {
	for len(q.pending) > 0 {
		p := q.pending[0]
		q.pending = q.pending[1:]
		st, err := q.executeResilient(&p)
		if err != nil {
			kerr := &KernelExecError{
				Kernel:        p.kernel.name,
				EnqueueSeq:    p.enqueueSeq,
				InvocationSeq: q.ctx.invocations,
				Attempts:      st.Attempts,
				Degraded:      st.Degraded,
				Err:           err,
			}
			if p.event != nil {
				p.event.err = kerr
			}
			return kerr
		}
		if p.event != nil {
			p.event.stats = st
			p.event.done = true
		}
		comp := &KernelCompletion{
			InvocationSeq: q.ctx.invocations,
			EnqueueSeq:    p.enqueueSeq,
			Kernel:        p.kernel.name,
			GWS:           p.gws,
			Args:          p.args,
			Stats:         st,
		}
		q.ctx.invocations++
		mCompletions.Inc()
		for _, i := range q.ctx.interceptors {
			i.OnKernelComplete(comp)
		}
	}
	return nil
}

// Finish drains the queue (clFinish).
func (q *Queue) Finish() error {
	q.ctx.emit(&APICall{Name: CallFinish})
	return q.drain()
}

// Flush drains the queue (clFlush; a true flush only submits, but with a
// synchronous device model submission and completion coincide).
func (q *Queue) Flush() error {
	q.ctx.emit(&APICall{Name: CallFlush})
	return q.drain()
}

// WaitForEvents blocks until the given events complete (clWaitForEvents);
// with no arguments it waits for all previously enqueued work. The queue
// is in-order, so any wait drains everything ahead of it.
func (q *Queue) WaitForEvents(events ...*Event) error {
	q.ctx.emit(&APICall{Name: CallWaitForEvents})
	if err := q.drain(); err != nil {
		return err
	}
	for _, e := range events {
		if e != nil && !e.done {
			return fmt.Errorf("cl: waited event for kernel %s: %w", e.kernel, faults.ErrEventNotComplete)
		}
	}
	return nil
}

// EnqueueWriteBuffer copies host data into a buffer. Writes are not
// synchronization points in the paper's taxonomy; the transfer is applied
// immediately (before any pending kernel reads it, matching a blocking
// write issued before dependent enqueues).
func (q *Queue) EnqueueWriteBuffer(b *Buffer, off int, data []byte) error {
	if off < 0 || off+len(data) > b.Size() {
		return fmt.Errorf("cl: write buffer %d: range [%d,%d) out of bounds (size %d)", b.ID, off, off+len(data), b.Size())
	}
	payload := make([]byte, len(data))
	copy(payload, data)
	q.ctx.emit(&APICall{Name: CallEnqueueWriteBuffer, Buffer: b.ID, Offset: off, Size: len(data), Payload: payload})
	copy(b.buf.Bytes()[off:], data)
	return nil
}

// EnqueueReadBuffer drains the queue and copies buffer contents to dst
// (clEnqueueReadBuffer, a synchronization call).
func (q *Queue) EnqueueReadBuffer(b *Buffer, off int, dst []byte) error {
	if off < 0 || off+len(dst) > b.Size() {
		return fmt.Errorf("cl: read buffer %d: range [%d,%d) out of bounds (size %d)", b.ID, off, off+len(dst), b.Size())
	}
	q.ctx.emit(&APICall{Name: CallEnqueueReadBuffer, Buffer: b.ID, Offset: off, Size: len(dst)})
	if err := q.drain(); err != nil {
		return err
	}
	copy(dst, b.buf.Bytes()[off:off+len(dst)])
	return nil
}

// EnqueueCopyBuffer drains the queue and copies n bytes between buffers
// (clEnqueueCopyBuffer, a synchronization call).
func (q *Queue) EnqueueCopyBuffer(src, dst *Buffer, srcOff, dstOff, n int) error {
	if srcOff < 0 || srcOff+n > src.Size() {
		return fmt.Errorf("cl: copy buffer: source range [%d,%d) out of bounds (size %d)", srcOff, srcOff+n, src.Size())
	}
	if dstOff < 0 || dstOff+n > dst.Size() {
		return fmt.Errorf("cl: copy buffer: dest range [%d,%d) out of bounds (size %d)", dstOff, dstOff+n, dst.Size())
	}
	q.ctx.emit(&APICall{Name: CallEnqueueCopyBuffer, Buffer: src.ID, Buffer2: dst.ID, Offset: srcOff, Offset2: dstOff, Size: n})
	if err := q.drain(); err != nil {
		return err
	}
	copy(dst.buf.Bytes()[dstOff:dstOff+n], src.buf.Bytes()[srcOff:srcOff+n])
	return nil
}

// EnqueueReadImage drains the queue and reads image data into dst.
// Images are modelled as buffers; the distinct call name matters because
// it is one of the seven synchronization calls.
func (q *Queue) EnqueueReadImage(img *Buffer, off int, dst []byte) error {
	if off < 0 || off+len(dst) > img.Size() {
		return fmt.Errorf("cl: read image %d: range [%d,%d) out of bounds (size %d)", img.ID, off, off+len(dst), img.Size())
	}
	q.ctx.emit(&APICall{Name: CallEnqueueReadImage, Buffer: img.ID, Offset: off, Size: len(dst)})
	if err := q.drain(); err != nil {
		return err
	}
	copy(dst, img.buf.Bytes()[off:off+len(dst)])
	return nil
}

// EnqueueCopyImageToBuffer drains the queue and copies image data into a
// buffer (clEnqueueCopyImageToBuffer, a synchronization call).
func (q *Queue) EnqueueCopyImageToBuffer(img, dst *Buffer, srcOff, dstOff, n int) error {
	if srcOff < 0 || srcOff+n > img.Size() {
		return fmt.Errorf("cl: copy image: source range [%d,%d) out of bounds (size %d)", srcOff, srcOff+n, img.Size())
	}
	if dstOff < 0 || dstOff+n > dst.Size() {
		return fmt.Errorf("cl: copy image: dest range [%d,%d) out of bounds (size %d)", dstOff, dstOff+n, dst.Size())
	}
	q.ctx.emit(&APICall{Name: CallEnqueueCopyImgToBuf, Buffer: img.ID, Buffer2: dst.ID, Offset: srcOff, Offset2: dstOff, Size: n})
	if err := q.drain(); err != nil {
		return err
	}
	copy(dst.buf.Bytes()[dstOff:dstOff+n], img.buf.Bytes()[srcOff:srcOff+n])
	return nil
}

// Pending returns the number of enqueued, not-yet-executed kernels.
func (q *Queue) Pending() int { return len(q.pending) }
