package cl

import (
	"strings"
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/device"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

func TestKindOf(t *testing.T) {
	if KindOf(CallEnqueueNDRangeKernel) != KindKernel {
		t.Error("enqueue must be a kernel call")
	}
	syncs := []string{
		CallFinish, CallFlush, CallWaitForEvents, CallEnqueueReadBuffer,
		CallEnqueueCopyBuffer, CallEnqueueReadImage, CallEnqueueCopyImgToBuf,
	}
	if len(syncs) != 7 {
		t.Fatal("the paper lists exactly seven synchronization calls")
	}
	for _, s := range syncs {
		if KindOf(s) != KindSync {
			t.Errorf("%s must be a sync call", s)
		}
	}
	for _, o := range []string{CallSetKernelArg, CallCreateBuffer, CallBuildProgram,
		CallEnqueueWriteBuffer, CallGetDeviceInfo, CallReleaseKernel} {
		if KindOf(o) != KindOther {
			t.Errorf("%s must be an other call", o)
		}
	}
}

// writeOne builds a kernel that stores its arg 0 to out[gid].
func writeOne(t *testing.T) *kernel.Program {
	t.Helper()
	a := asm.NewKernel("writeone", isa.W16)
	v := a.Arg(0)
	out := a.Surface(0)
	addr, vv := a.Temp(), a.Temp()
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Mov(vv, asm.R(v))
	a.Store(out, addr, vv, 4)
	a.End()
	k, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Program("app", k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newCtx(t *testing.T) *Context {
	t.Helper()
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	return NewContext(dev)
}

// recorder is a minimal interceptor for tests.
type recorder struct {
	calls []APICall
	comps []KernelCompletion
}

func (r *recorder) OnAPICall(c *APICall)                 { r.calls = append(r.calls, *c) }
func (r *recorder) OnKernelComplete(c *KernelCompletion) { r.comps = append(r.comps, *c) }

func TestEnqueueDefersUntilSync(t *testing.T) {
	ctx := newCtx(t)
	rec := &recorder{}
	ctx.AddInterceptor(rec)
	q := ctx.CreateQueue()
	buf, err := ctx.CreateBuffer(4 * 16)
	if err != nil {
		t.Fatal(err)
	}
	p := ctx.CreateProgram(writeOne(t))
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := p.CreateKernel("writeone")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueNDRangeKernel(k, 16); err != nil {
		t.Fatal(err)
	}
	if len(rec.comps) != 0 {
		t.Fatal("kernel must not execute before a synchronization call")
	}
	if q.Pending() != 1 {
		t.Fatalf("pending = %d", q.Pending())
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(rec.comps) != 1 {
		t.Fatal("finish must execute the pending kernel")
	}
	if q.Pending() != 0 {
		t.Error("queue must be drained")
	}
	got, _ := buf.Device().ReadU32(0, 1)
	if got[0] != 9 {
		t.Errorf("kernel result = %d, want 9", got[0])
	}
}

// TestArgsSnapshotAtEnqueue: changing an argument after enqueue must not
// affect the already-enqueued invocation.
func TestArgsSnapshotAtEnqueue(t *testing.T) {
	ctx := newCtx(t)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 1))
	check(t, k.SetBuffer(0, buf))
	check(t, q.EnqueueNDRangeKernel(k, 16))
	check(t, k.SetArg(0, 2)) // must not affect the queued invocation
	check(t, q.Finish())
	got, _ := buf.Device().ReadU32(0, 1)
	if got[0] != 1 {
		t.Errorf("queued invocation saw later argument: %d", got[0])
	}
}

func TestSevenSyncCallsAllDrain(t *testing.T) {
	prog := writeOne(t)
	drains := []struct {
		name string
		fire func(q *Queue, a, b *Buffer) error
	}{
		{"finish", func(q *Queue, a, b *Buffer) error { return q.Finish() }},
		{"flush", func(q *Queue, a, b *Buffer) error { return q.Flush() }},
		{"wait", func(q *Queue, a, b *Buffer) error { return q.WaitForEvents() }},
		{"read buffer", func(q *Queue, a, b *Buffer) error {
			return q.EnqueueReadBuffer(a, 0, make([]byte, 8))
		}},
		{"read image", func(q *Queue, a, b *Buffer) error {
			return q.EnqueueReadImage(a, 0, make([]byte, 8))
		}},
		{"copy buffer", func(q *Queue, a, b *Buffer) error {
			return q.EnqueueCopyBuffer(a, b, 0, 0, 8)
		}},
		{"copy image to buffer", func(q *Queue, a, b *Buffer) error {
			return q.EnqueueCopyImageToBuffer(a, b, 0, 0, 8)
		}},
	}
	for _, d := range drains {
		ctx := newCtx(t)
		rec := &recorder{}
		ctx.AddInterceptor(rec)
		q := ctx.CreateQueue()
		a, _ := ctx.CreateBuffer(64)
		b, _ := ctx.CreateBuffer(64)
		p := ctx.CreateProgram(prog)
		check(t, p.Build())
		k, _ := p.CreateKernel("writeone")
		check(t, k.SetArg(0, 3))
		check(t, k.SetBuffer(0, a))
		check(t, q.EnqueueNDRangeKernel(k, 16))
		if err := d.fire(q, a, b); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if len(rec.comps) != 1 {
			t.Errorf("%s: did not drain the queue", d.name)
		}
	}
}

func TestCopySemantics(t *testing.T) {
	ctx := newCtx(t)
	q := ctx.CreateQueue()
	a, _ := ctx.CreateBuffer(64)
	b, _ := ctx.CreateBuffer(64)
	check(t, q.EnqueueWriteBuffer(a, 0, []byte{1, 2, 3, 4}))
	check(t, q.EnqueueCopyBuffer(a, b, 0, 8, 4))
	if got := b.Device().Bytes()[8:12]; got[0] != 1 || got[3] != 4 {
		t.Errorf("copy result = %v", got)
	}
	dst := make([]byte, 4)
	check(t, q.EnqueueReadBuffer(b, 8, dst))
	if dst[0] != 1 {
		t.Errorf("read result = %v", dst)
	}
}

func TestQueueErrors(t *testing.T) {
	ctx := newCtx(t)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	if err := q.EnqueueNDRangeKernel(k, 0); err == nil {
		t.Error("expected error for zero work size")
	}
	if err := q.EnqueueNDRangeKernel(k, 16); err == nil {
		t.Error("expected error for unbound surface")
	}
	check(t, k.SetBuffer(0, buf))
	if err := q.EnqueueWriteBuffer(buf, 12, make([]byte, 8)); err == nil {
		t.Error("expected out-of-range write error")
	}
	if err := q.EnqueueReadBuffer(buf, 0, make([]byte, 64)); err == nil {
		t.Error("expected out-of-range read error")
	}
	if err := q.EnqueueCopyBuffer(buf, buf, 0, 8, 16); err == nil {
		t.Error("expected out-of-range copy error")
	}
}

func TestKernelObjectErrors(t *testing.T) {
	ctx := newCtx(t)
	p := ctx.CreateProgram(writeOne(t))
	if _, err := p.CreateKernel("writeone"); err == nil {
		t.Error("expected error creating kernel before build")
	}
	check(t, p.Build())
	if _, err := p.CreateKernel("missing"); err == nil {
		t.Error("expected error for unknown kernel")
	}
	k, _ := p.CreateKernel("writeone")
	if err := k.SetArg(5, 0); err == nil {
		t.Error("expected arg-range error")
	}
	if err := k.SetBuffer(3, nil); err == nil {
		t.Error("expected surface-range error")
	}
}

func TestBuildHookRuns(t *testing.T) {
	ctx := newCtx(t)
	hooked := 0
	ctx.AddBuildHook(func(bin *jit.Binary) (*jit.Binary, error) {
		hooked++
		return bin, nil
	})
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	if hooked != 1 {
		t.Errorf("build hook ran %d times, want 1", hooked)
	}
}

func TestAPISeqMonotonic(t *testing.T) {
	ctx := newCtx(t)
	rec := &recorder{}
	ctx.AddInterceptor(rec)
	ctx.EmitSetupCalls()
	ctx.CreateQueue()
	ctx.QueryDeviceInfo()
	for i := 1; i < len(rec.calls); i++ {
		if rec.calls[i].Seq != rec.calls[i-1].Seq+1 {
			t.Fatalf("non-monotonic sequence at %d", i)
		}
	}
	if len(rec.calls) != 5 {
		t.Errorf("calls = %d, want 5", len(rec.calls))
	}
}

func TestInvocationSeqOrdering(t *testing.T) {
	ctx := newCtx(t)
	rec := &recorder{}
	ctx.AddInterceptor(rec)
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 1))
	check(t, k.SetBuffer(0, buf))
	for i := 0; i < 3; i++ {
		check(t, q.EnqueueNDRangeKernel(k, 16))
	}
	check(t, q.Finish())
	for i, c := range rec.comps {
		if c.InvocationSeq != i {
			t.Errorf("completion %d has seq %d", i, c.InvocationSeq)
		}
	}
}

func TestBuildSurfacesTraceBuffer(t *testing.T) {
	// With a trace buffer installed, a kernel binary rewritten to
	// reference one extra surface must execute successfully.
	ctx := newCtx(t)
	tb, _ := device.NewBuffer(1 << 12)
	ctx.SetTraceBuffer(tb)
	ctx.AddBuildHook(func(bin *jit.Binary) (*jit.Binary, error) {
		k, err := jit.Decode(bin)
		if err != nil {
			return nil, err
		}
		k.NumSurfaces++ // pretend we instrumented it
		return jit.Recompile(k)
	})
	q := ctx.CreateQueue()
	buf, _ := ctx.CreateBuffer(4 * 16)
	p := ctx.CreateProgram(writeOne(t))
	check(t, p.Build())
	k, _ := p.CreateKernel("writeone")
	check(t, k.SetArg(0, 4))
	check(t, k.SetBuffer(0, buf))
	check(t, q.EnqueueNDRangeKernel(k, 16))
	check(t, q.Finish())
}

func TestBuildHookErrorPropagates(t *testing.T) {
	ctx := newCtx(t)
	ctx.AddBuildHook(func(bin *jit.Binary) (*jit.Binary, error) {
		return nil, errFake
	})
	p := ctx.CreateProgram(writeOne(t))
	if err := p.Build(); err == nil || !strings.Contains(err.Error(), "fake") {
		t.Errorf("expected hook error, got %v", err)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake failure" }

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
