package cl

import (
	"errors"
	"fmt"

	"gtpin/internal/device"
	"gtpin/internal/faults"
)

// Resilience is the runtime's failure policy, applied wherever the queue
// drains (Finish, Flush, WaitForEvents, and the read/copy synchronization
// calls) and at program build:
//
//   - transient faults (faults.IsTransient) are retried with capped
//     exponential backoff, the dispatch's memory replayed from a clean
//     snapshot each attempt;
//   - kernels that hang or exhaust their retries are re-executed once on
//     a degraded device configuration (device.Config.Degraded), recorded
//     in ExecStats.Degraded;
//   - everything else is surfaced as a typed *KernelExecError.
//
// Backoff is modelled in virtual nanoseconds (ExecStats.BackoffNs), never
// slept, so resilient runs stay deterministic and fast.
type Resilience struct {
	// MaxRetries bounds retry attempts per kernel execution (and per
	// program build) for transient faults.
	MaxRetries int
	// BackoffBaseNs is the first retry's modelled delay; each subsequent
	// retry doubles it up to BackoffCapNs.
	BackoffBaseNs float64
	BackoffCapNs  float64
	// Degrade enables re-execution on the degraded device configuration
	// after a hang/watchdog timeout or exhausted transient retries.
	Degrade bool
}

// DefaultResilience returns the policy contexts start with: three
// retries, 1µs→64µs modelled backoff, degradation enabled.
func DefaultResilience() Resilience {
	return Resilience{MaxRetries: 3, BackoffBaseNs: 1e3, BackoffCapNs: 64e3, Degrade: true}
}

// SetResilience replaces the context's failure policy.
func (ctx *Context) SetResilience(r Resilience) { ctx.resilience = r }

// ResiliencePolicy returns the context's current failure policy.
func (ctx *Context) ResiliencePolicy() Resilience { return ctx.resilience }

// KernelExecError reports a kernel execution that failed past the
// resilience policy during a queue drain. It identifies the failing
// kernel and its position in the command stream; the wrapped error
// carries the taxonomy classification.
type KernelExecError struct {
	Kernel        string
	EnqueueSeq    int // API-call sequence number of the enqueue
	InvocationSeq int // invocation order across the application
	Attempts      int // execution attempts consumed, degraded included
	Degraded      bool
	Err           error
}

// Error implements error.
func (e *KernelExecError) Error() string {
	return fmt.Sprintf("cl: kernel %s (enqueue seq %d, invocation %d) failed after %d attempt(s): %v",
		e.Kernel, e.EnqueueSeq, e.InvocationSeq, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/errors.As.
func (e *KernelExecError) Unwrap() error { return e.Err }

// degradedDevice lazily creates the fallback device the degradation
// policy re-executes on. It shares the primary device's jitter source,
// fault injector, and watchdog budget so degraded execution stays inside
// the same deterministic stream.
func (ctx *Context) degradedDevice() (*device.Device, error) {
	if ctx.degraded != nil {
		return ctx.degraded, nil
	}
	d, err := device.New(ctx.dev.Config().Degraded())
	if err != nil {
		return nil, fmt.Errorf("cl: degraded device: %w", err)
	}
	d.SetJitter(ctx.dev.Jitter())
	d.SetFaultInjector(ctx.dev.FaultInjector())
	d.SetWatchdog(ctx.dev.WatchdogBudget())
	ctx.degraded = d
	return d, nil
}

// executeResilient runs one pending dispatch under the resilience policy
// and returns its stats, with the attempt/degradation bookkeeping filled
// in, or the final classified error.
func (q *Queue) executeResilient(p *pendingExec) (device.ExecStats, error) {
	surfs := make([]*device.Buffer, len(p.surfaces), len(p.surfaces)+1)
	for i, b := range p.surfaces {
		surfs[i] = b.buf
	}
	if q.ctx.traceBuf != nil {
		surfs = append(surfs, q.ctx.traceBuf)
	}
	disp := device.Dispatch{
		Binary:         p.kernel.bin,
		Args:           p.args,
		Surfaces:       surfs,
		GlobalWorkSize: p.gws,
	}

	pol := q.ctx.resilience
	dev := q.ctx.dev
	// Snapshots make replay safe: a faulted attempt may have partially
	// mutated surfaces (and the GT-Pin trace buffer's counters), so every
	// retry and the degraded re-execution start from the pre-dispatch
	// memory image. Only taken when a fault source is actually present.
	var snap [][]byte
	if (pol.MaxRetries > 0 || pol.Degrade) &&
		(dev.FaultInjector() != nil || dev.WatchdogBudget() > 0) {
		snap = make([][]byte, len(surfs))
		for i, s := range surfs {
			snap[i] = append([]byte(nil), s.Bytes()...)
		}
	}
	restore := func() {
		for i, s := range surfs {
			copy(s.Bytes(), snap[i])
		}
	}

	attempts, retries := 0, 0
	backoff := pol.BackoffBaseNs
	var backoffNs float64
	degraded := false
	for {
		attempts++
		st, err := dev.Run(disp)
		if err == nil {
			st.Attempts = attempts
			st.Degraded = degraded
			st.BackoffNs = backoffNs
			return st, nil
		}
		transient := faults.IsTransient(err)
		hung := errors.Is(err, faults.ErrWatchdogTimeout) || errors.Is(err, faults.ErrKernelHang)
		switch {
		case snap != nil && transient && retries < pol.MaxRetries:
			retries++
			mRetries.Inc()
			backoffNs += backoff
			if backoff *= 2; backoff > pol.BackoffCapNs && pol.BackoffCapNs > 0 {
				backoff = pol.BackoffCapNs
			}
			restore()
		case snap != nil && pol.Degrade && !degraded && (hung || transient):
			ddev, derr := q.ctx.degradedDevice()
			if derr != nil {
				return st, err
			}
			dev = ddev
			degraded = true
			mDegradedRuns.Inc()
			retries = 0
			backoff = pol.BackoffBaseNs
			restore()
		default:
			st.Attempts = attempts
			st.Degraded = degraded
			st.BackoffNs = backoffNs
			return st, err
		}
	}
}
