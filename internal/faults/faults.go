// Package faults is the failure model of the GT-Pin reproduction: a typed
// error taxonomy shared by every layer of the stack (cl, device, detsim,
// jit, gtpin) and a deterministic, seedable fault injector that the device
// and runtime consult to simulate the driver/GPU misbehavior the paper's
// multi-hour characterization runs had to survive — hung kernels,
// transient JIT failures, send/memory errors, and corrupted results.
//
// Every sentinel carries a Transient/Permanent classification, so the
// resilience layer in internal/cl can decide mechanically whether an error
// is worth retrying (transient) or must be surfaced or degraded around
// (permanent). Callers match errors with errors.Is/errors.As across
// arbitrarily deep %w chains.
package faults

import (
	"context"
	"errors"
)

// Class partitions errors by whether retrying the failed operation can
// plausibly succeed.
type Class uint8

// Error classes.
const (
	// Permanent errors reproduce on retry: malformed binaries, invalid
	// dispatches, genuine hangs, programming errors.
	Permanent Class = iota
	// Transient errors model momentary conditions — a JIT hiccup, a flaky
	// memory transaction — that a retry with backoff can clear.
	Transient
)

// String returns "transient" or "permanent".
func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// Sentinel is a classified error kind. Sentinels are compared by identity
// (errors.Is), so each variable below names exactly one failure kind.
type Sentinel struct {
	name  string
	class Class
}

// NewSentinel creates a classified sentinel error; packages outside the
// core taxonomy (tools, tests) may mint their own kinds.
func NewSentinel(name string, class Class) *Sentinel {
	return &Sentinel{name: name, class: class}
}

// Error implements error.
func (s *Sentinel) Error() string { return s.name }

// Class reports the sentinel's retry classification.
func (s *Sentinel) Class() Class { return s.class }

// The taxonomy. Each layer wraps these with %w so call sites can classify
// failures without parsing strings.
var (
	// ErrKernelHang marks a kernel that stopped making forward progress;
	// the watchdog converts the hang into ErrWatchdogTimeout, and the two
	// are wrapped together. Hangs reproduce on retry but may clear on a
	// degraded configuration.
	ErrKernelHang = NewSentinel("kernel hang", Permanent)

	// ErrWatchdogTimeout is raised by the per-enqueue watchdog inside the
	// device and detsim step loops when a dispatch exceeds its
	// cycle/instruction budget.
	ErrWatchdogTimeout = NewSentinel("watchdog timeout", Permanent)

	// ErrSendFault is a failed send (memory) transaction — the modeled
	// analogue of a bus/ECC error on one message. Retryable.
	ErrSendFault = NewSentinel("send fault", Transient)

	// ErrJITTransient is a momentary driver JIT failure during program
	// build. Retryable.
	ErrJITTransient = NewSentinel("transient jit failure", Transient)

	// ErrCorruptResult marks a dispatch whose results failed integrity
	// checking (detected corruption). The execution side effects are
	// untrustworthy; the dispatch must be replayed from a clean snapshot.
	ErrCorruptResult = NewSentinel("corrupted result", Transient)

	// ErrEventNotComplete is returned when profiling information is
	// requested from an event no synchronization call has completed yet.
	ErrEventNotComplete = NewSentinel("event not complete", Permanent)

	// ErrBadBinary marks a malformed or truncated device binary.
	ErrBadBinary = NewSentinel("bad kernel binary", Permanent)

	// ErrInvalidDispatch marks a dispatch that fails validation: missing
	// binary, bad work size, unbound arguments or surfaces.
	ErrInvalidDispatch = NewSentinel("invalid dispatch", Permanent)

	// ErrAlreadyAttached is returned when a second instrumentation engine
	// attaches to an already-instrumented context or kernel.
	ErrAlreadyAttached = NewSentinel("already instrumented", Permanent)

	// ErrResourceExhausted marks an out-of-resource condition (trace
	// buffer slots, call-stack depth) that retrying cannot fix.
	ErrResourceExhausted = NewSentinel("resource exhausted", Permanent)

	// ErrSurfaceOverflow marks a kernel whose surface binding table
	// cannot hold one more surface: binding-table indices are 8-bit, so
	// instrumenting a kernel that already declares the maximum number of
	// surfaces would alias the trace surface onto a user surface.
	ErrSurfaceOverflow = NewSentinel("surface binding table overflow", Permanent)

	// ErrBadConfig marks an invalid tool or engine configuration (e.g. a
	// non-power-of-two trace-ring size) detected at construction time.
	// Retrying cannot fix a configuration.
	ErrBadConfig = NewSentinel("invalid configuration", Permanent)

	// ErrUntranslatable marks a kernel the cross-ISA binary translator
	// cannot retarget: a construct with no sound equivalent in the
	// target dialect (a dispatch or send at a width the target lacks, a
	// flag-reducing branch at such a width, a loop back into the entry
	// block when a legalization preamble is required, or a register file
	// too small for the kernel). Permanent: the same kernel fails the
	// same way until it is re-authored.
	ErrUntranslatable = NewSentinel("untranslatable kernel", Permanent)

	// ErrBadRecording marks a CoFluent recording whose call stream does
	// not form a valid replay: data transfers with out-of-range offsets
	// or sizes, references to objects that were never created. Permanent:
	// replaying the same bytes fails the same way, so the recording must
	// be regenerated.
	ErrBadRecording = NewSentinel("corrupt recording", Permanent)

	// ErrSnippetDiverged marks an interval-snippet replay whose final
	// memory images no longer hash to the digests recorded at capture
	// time — the snippet artifact and the simulator disagree about the
	// interval's architectural effect, so its detailed results cannot be
	// trusted. Permanent: the same snippet diverges identically on
	// retry.
	ErrSnippetDiverged = NewSentinel("snippet replay diverged", Permanent)

	// ErrWorkerPanic marks a panic recovered inside a sweep worker. It
	// is classified transient because the supervising pool grants
	// panicked units a bounded restart budget before surfacing the
	// failure; the panic value and stack are carried in the wrap chain.
	ErrWorkerPanic = NewSentinel("worker panic", Transient)

	// ErrUnitTimeout marks a work unit abandoned because it exceeded its
	// execution deadline — the pool's defense against a genuinely hung
	// unit wedging a sweep or a service worker. Permanent: the same unit
	// under the same budget hangs again, so the failure must surface (a
	// caller granting a larger budget is a new configuration).
	ErrUnitTimeout = NewSentinel("unit timeout", Permanent)

	// ErrQueueFull marks an admission rejected because a bounded queue
	// is at capacity — the load-shedding signal of the profiling
	// service. Transient: the queue drains, retrying later can succeed.
	ErrQueueFull = NewSentinel("queue full", Transient)

	// ErrCircuitOpen marks work refused by a tripped circuit breaker:
	// enough consecutive failures accumulated that continuing would
	// waste the queue's capacity on a job that keeps failing.
	ErrCircuitOpen = NewSentinel("circuit breaker open", Permanent)

	// ErrLeaseExpired marks a fleet work-unit lease whose worker stopped
	// heartbeating or blew its completion deadline before producing a
	// result. Transient: the coordinator re-dispatches the unit to a
	// healthy worker, and on a healthy fleet the retry succeeds.
	ErrLeaseExpired = NewSentinel("lease expired", Transient)

	// ErrPoisonUnit marks a work unit quarantined by the fleet
	// coordinator because it killed (or hung) several consecutive
	// workers. The unit itself is the common factor, so re-dispatching
	// it again would only keep destroying workers: the failure is
	// permanent and surfaces as a typed fault in the merged report.
	ErrPoisonUnit = NewSentinel("poison unit", Permanent)

	// ErrStaleWorker marks a result rejected by the fleet's fencing
	// epoch: a worker that was declared lost (and whose lease was
	// re-dispatched) came back from the dead and journaled a result for
	// a lease it no longer holds. Accepting it could double-count or
	// reorder units, so the late write is refused. Permanent: the epoch
	// never becomes valid again.
	ErrStaleWorker = NewSentinel("stale worker", Permanent)
)

// classifier lets non-Sentinel error types participate in classification.
type classifier interface{ Class() Class }

// ClassOf walks err's wrap chain and returns the classification of the
// first classified error found. Unclassified errors — including plain
// fmt.Errorf strings and context cancellation — default to Permanent, the
// safe choice: never retry what we don't understand.
func ClassOf(err error) Class {
	var c classifier
	if errors.As(err, &c) {
		return c.Class()
	}
	return Permanent
}

// IsTransient reports whether err is classified transient, i.e. a retry
// with backoff may succeed. Context cancellation is never transient.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return ClassOf(err) == Transient
}

// Kind returns the human-readable name of the taxonomy sentinel err wraps,
// or "" if err wraps none — what harnesses print in failure tables.
func Kind(err error) string {
	var s *Sentinel
	if errors.As(err, &s) {
		return s.name
	}
	return ""
}
