package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestTaxonomyClassification(t *testing.T) {
	transients := []*Sentinel{ErrSendFault, ErrJITTransient, ErrCorruptResult}
	permanents := []*Sentinel{
		ErrKernelHang, ErrWatchdogTimeout, ErrEventNotComplete,
		ErrBadBinary, ErrInvalidDispatch, ErrAlreadyAttached, ErrResourceExhausted,
		ErrSurfaceOverflow, ErrBadConfig,
	}
	for _, s := range transients {
		if s.Class() != Transient {
			t.Errorf("%v must be transient", s)
		}
		if !IsTransient(fmt.Errorf("layer: op: %w", s)) {
			t.Errorf("wrapped %v must classify transient", s)
		}
	}
	for _, s := range permanents {
		if s.Class() != Permanent {
			t.Errorf("%v must be permanent", s)
		}
		if IsTransient(fmt.Errorf("layer: op: %w", s)) {
			t.Errorf("wrapped %v must not classify transient", s)
		}
	}
}

func TestErrorsIsThroughDeepWrapping(t *testing.T) {
	err := fmt.Errorf("cl: drain: %w",
		fmt.Errorf("device: kernel k: %w: budget exhausted: %w", ErrWatchdogTimeout, ErrKernelHang))
	if !errors.Is(err, ErrWatchdogTimeout) {
		t.Error("errors.Is must find ErrWatchdogTimeout through two wraps")
	}
	if !errors.Is(err, ErrKernelHang) {
		t.Error("errors.Is must find ErrKernelHang in a multi-%w chain")
	}
	if errors.Is(err, ErrSendFault) {
		t.Error("errors.Is must not match a different sentinel")
	}
	var s *Sentinel
	if !errors.As(err, &s) {
		t.Fatal("errors.As must extract the sentinel")
	}
}

func TestClassOfDefaultsPermanent(t *testing.T) {
	if ClassOf(errors.New("opaque")) != Permanent {
		t.Error("unclassified errors must default permanent")
	}
	if ClassOf(nil) != Permanent {
		t.Error("nil defaults permanent (and IsTransient(nil) is false)")
	}
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
}

func TestContextCancellationNeverTransient(t *testing.T) {
	// Even wrapped under a transient sentinel, cancellation must not be
	// retried.
	err := fmt.Errorf("%w: interrupted: %w", ErrSendFault, context.Canceled)
	if IsTransient(err) {
		t.Error("context.Canceled must suppress retry classification")
	}
	if IsTransient(fmt.Errorf("op: %w", context.DeadlineExceeded)) {
		t.Error("context.DeadlineExceeded is never transient")
	}
}

func TestKind(t *testing.T) {
	if k := Kind(fmt.Errorf("x: %w", ErrCorruptResult)); k != "corrupted result" {
		t.Errorf("Kind = %q", k)
	}
	if k := Kind(errors.New("plain")); k != "" {
		t.Errorf("Kind of unclassified = %q, want empty", k)
	}
}

func TestNewSentinelMintsDistinctKinds(t *testing.T) {
	a := NewSentinel("custom", Transient)
	b := NewSentinel("custom", Transient)
	if errors.Is(fmt.Errorf("%w", a), b) {
		t.Error("sentinels compare by identity, not name")
	}
	if !IsTransient(fmt.Errorf("%w", a)) {
		t.Error("minted transient sentinel must classify transient")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() ([]bool, Stats) {
		inj, err := NewInjector(42, Uniform(0.3))
		if err != nil {
			t.Fatal(err)
		}
		var fired []bool
		for i := 0; i < 200; i++ {
			v := inj.BeginInvocation("k", 10)
			fired = append(fired, v.Hang(), v.CorruptResult())
			for s := uint64(1); s <= 10; s++ {
				fired = append(fired, v.SendFault(s))
			}
			fired = append(fired, inj.JITFault("k"))
		}
		return fired, inj.Stats()
	}
	a, as := run()
	b, bs := run()
	if as != bs {
		t.Fatalf("stats diverged: %+v vs %+v", as, bs)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged between identical runs", i)
		}
	}
	if as.Total() == 0 {
		t.Fatal("rate 0.3 over 200 invocations must fire some faults")
	}
}

func TestInjectorSeedsDiverge(t *testing.T) {
	plan := func(seed int64) string {
		inj, _ := NewInjector(seed, Uniform(0.5))
		out := ""
		for i := 0; i < 64; i++ {
			v := inj.BeginInvocation("k", 4)
			if v.Hang() {
				out += "H"
			} else {
				out += "."
			}
		}
		return out
	}
	if plan(1) == plan(2) {
		t.Error("different seeds must draw different fault sequences")
	}
	if DeriveSeed(1, "app/native") == DeriveSeed(1, "app/replay") {
		t.Error("derived seeds must differ per phase")
	}
}

func TestInjectorRates(t *testing.T) {
	// Zero rate never fires; rate 1 always fires; an intermediate rate
	// lands loosely in between over many draws.
	zero, _ := NewInjector(7, Rates{})
	if zero.BeginInvocation("k", 4) != nil {
		t.Error("zero rates must fire nothing")
	}
	always, _ := NewInjector(7, Rates{Hang: 1})
	for i := 0; i < 10; i++ {
		if !always.BeginInvocation("k", 4).Hang() {
			t.Fatal("rate 1 must hang every attempt")
		}
	}
	mid, _ := NewInjector(7, Rates{Corrupt: 0.2})
	n := 0
	for i := 0; i < 2000; i++ {
		if mid.BeginInvocation("k", 4).CorruptResult() {
			n++
		}
	}
	if n < 250 || n > 550 {
		t.Errorf("rate 0.2 fired %d/2000 times; hash stream badly biased", n)
	}
}

func TestInjectorRetriesRedraw(t *testing.T) {
	// With an intermediate rate, a faulting attempt must eventually be
	// followed by a clean draw for the same kernel — the property retry
	// depends on.
	inj, _ := NewInjector(3, Rates{Hang: 0.5})
	sawFault, sawClean := false, false
	for i := 0; i < 64 && !(sawFault && sawClean); i++ {
		if inj.BeginInvocation("k", 0).Hang() {
			sawFault = true
		} else {
			sawClean = true
		}
	}
	if !sawFault || !sawClean {
		t.Fatal("successive draws for one kernel must vary at rate 0.5")
	}
}

func TestInjectorRejectsBadRates(t *testing.T) {
	for _, r := range []Rates{{Hang: -0.1}, {Send: 1.5}, {JIT: 2}} {
		if _, err := NewInjector(1, r); err == nil {
			t.Errorf("rates %+v must be rejected", r)
		}
	}
}

func TestNilInjectorAndInvocationAreInert(t *testing.T) {
	var inj *Injector
	if inj.BeginInvocation("k", 4) != nil {
		t.Error("nil injector must return a nil invocation")
	}
	if inj.JITFault("k") {
		t.Error("nil injector never faults")
	}
	if inj.Stats() != (Stats{}) {
		t.Error("nil injector stats must be zero")
	}
	var v *Invocation
	if v.Hang() || v.SendFault(1) || v.CorruptResult() {
		t.Error("nil invocation must fire nothing")
	}
}

func TestSendFaultAtMostOncePerAttempt(t *testing.T) {
	inj, _ := NewInjector(11, Rates{Send: 1})
	v := inj.BeginInvocation("k", 8)
	fires := 0
	for s := uint64(1); s <= 8; s++ {
		if v.SendFault(s) {
			fires++
		}
	}
	if fires != 1 {
		t.Errorf("send rate 1 fired %d transactions in one attempt, want exactly 1", fires)
	}
}
