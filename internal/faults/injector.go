package faults

import (
	"fmt"
	"math"
)

// Rates configures per-site fault probabilities, each in [0, 1]:
//
//   - Hang: probability an invocation hangs (trips the watchdog).
//   - Send: probability an invocation suffers one failed send transaction
//     (the faulting send index is itself drawn deterministically).
//   - JIT: probability one kernel's JIT compilation fails transiently on
//     one build attempt.
//   - Corrupt: probability an invocation completes but its results fail
//     integrity checking.
type Rates struct {
	Hang    float64
	Send    float64
	JIT     float64
	Corrupt float64
}

// Uniform returns Rates with every site set to r — what the chaos sweeps
// use.
func Uniform(r float64) Rates { return Rates{Hang: r, Send: r, JIT: r, Corrupt: r} }

// Zero reports whether every rate is zero (injection disabled).
func (r Rates) Zero() bool { return r.Hang == 0 && r.Send == 0 && r.JIT == 0 && r.Corrupt == 0 }

func (r Rates) validate() error {
	for _, v := range [...]float64{r.Hang, r.Send, r.JIT, r.Corrupt} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("faults: rate %v outside [0,1]", v)
		}
	}
	return nil
}

// Stats counts the faults an injector has fired, by site. Tests use it to
// assert every injected fault was retried to success, degraded, or
// surfaced as a typed error.
type Stats struct {
	Hangs       uint64
	SendFaults  uint64
	JITFaults   uint64
	Corruptions uint64
}

// Total returns the number of faults fired across all sites.
func (s Stats) Total() uint64 { return s.Hangs + s.SendFaults + s.JITFaults + s.Corruptions }

// Injector draws faults deterministically: every decision is a pure
// function of (seed, site, kernel name, per-kernel draw count), with no
// wall-clock or global randomness, so two identical runs inject the
// identical fault sequence — the property the chaos suite's byte-identical
// determinism check rests on.
//
// A retry re-executes the kernel through a fresh draw (the per-kernel
// count has advanced), which is how transient faults clear: the next
// attempt's hash lands under the rate threshold or not, deterministically.
//
// An Injector is not safe for concurrent use; like the device it plugs
// into, it belongs to one in-order command stream. Parallel harnesses
// create one injector per application, with a per-application derived
// seed (see DeriveSeed).
type Injector struct {
	seed  uint64
	rates Rates

	invocations map[string]uint64 // per-kernel execution draws
	builds      map[string]uint64 // per-kernel JIT-attempt draws
	stats       Stats
}

// NewInjector creates an injector with the given seed and rates.
func NewInjector(seed int64, rates Rates) (*Injector, error) {
	if err := rates.validate(); err != nil {
		return nil, err
	}
	return &Injector{
		seed:        uint64(seed),
		rates:       rates,
		invocations: make(map[string]uint64),
		builds:      make(map[string]uint64),
	}, nil
}

// Rates returns the injector's configured rates.
func (inj *Injector) Rates() Rates {
	if inj == nil {
		return Rates{}
	}
	return inj.rates
}

// Stats returns how many faults have fired so far, by site.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return inj.stats
}

// DeriveSeed maps a base seed and a name (an application, a phase) to a
// stream-specific seed, so parallel per-application injectors draw
// independent but reproducible fault sequences.
func DeriveSeed(seed int64, name string) int64 {
	h := fnv1a(offset64, uint64(seed))
	h = fnv1aString(h, name)
	return int64(h)
}

// Invocation is the fault plan for one kernel execution attempt, drawn
// once at dispatch start. A nil *Invocation (from a nil injector) fires
// nothing, so the device consults it unconditionally.
type Invocation struct {
	inj     *Injector
	hang    bool
	corrupt bool
	// sendAt is the 1-based index of the faulting send transaction, or 0
	// when this attempt's sends all succeed.
	sendAt uint64
}

// BeginInvocation draws the fault plan for the next execution attempt of
// the named kernel. Each call advances the kernel's draw count, so
// repeated attempts (retries, degraded re-execution) see fresh draws.
func (inj *Injector) BeginInvocation(kernel string, sends uint64) *Invocation {
	if inj == nil || inj.rates.Zero() {
		return nil
	}
	n := inj.invocations[kernel]
	inj.invocations[kernel]++
	h := inj.draw(kernel, n)
	v := &Invocation{inj: inj}
	v.hang = fire(fnv1a(h, 'H'), inj.rates.Hang)
	v.corrupt = fire(fnv1a(h, 'C'), inj.rates.Corrupt)
	if fire(fnv1a(h, 'S'), inj.rates.Send) {
		// Pick which transaction fails; a dispatch with fewer sends than
		// the drawn index escapes the fault, mirroring how a shorter
		// kernel has a smaller exposure window.
		span := sends
		if span == 0 {
			span = 64
		}
		v.sendAt = 1 + fnv1a(h, 'I')%span
	}
	if v.hang || v.corrupt || v.sendAt > 0 {
		return v
	}
	return nil
}

// Hang reports whether this attempt hangs. Counted once per fired fault.
func (v *Invocation) Hang() bool {
	if v == nil || !v.hang {
		return false
	}
	v.inj.stats.Hangs++
	return true
}

// SendFault reports whether the n-th (1-based) send transaction of this
// attempt faults.
func (v *Invocation) SendFault(n uint64) bool {
	if v == nil || v.sendAt == 0 || n != v.sendAt {
		return false
	}
	v.inj.stats.SendFaults++
	return true
}

// CorruptResult reports whether this attempt's results are corrupted,
// checked after the dispatch completes.
func (v *Invocation) CorruptResult() bool {
	if v == nil || !v.corrupt {
		return false
	}
	v.inj.stats.Corruptions++
	return true
}

// JITFault reports whether the named kernel's next JIT attempt fails
// transiently. Each call advances the kernel's build-attempt count, so a
// rebuild after a failure draws fresh.
func (inj *Injector) JITFault(kernel string) bool {
	if inj == nil || inj.rates.JIT == 0 {
		return false
	}
	n := inj.builds[kernel]
	inj.builds[kernel]++
	if fire(fnv1a(inj.draw(kernel, n), 'J'), inj.rates.JIT) {
		inj.stats.JITFaults++
		return true
	}
	return false
}

// draw hashes (seed, kernel, count) into the 64-bit base from which the
// per-site decisions are derived.
func (inj *Injector) draw(kernel string, n uint64) uint64 {
	h := fnv1a(offset64, inj.seed)
	h = fnv1aString(h, kernel)
	return fnv1a(h, n)
}

// fire converts a hash to a uniform [0,1) variate and compares it to the
// rate.
func fire(h uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(h>>11)/(1<<53) < rate
}

// FNV-1a over 64-bit words and strings.
const (
	offset64 = 0xcbf29ce484222325
	prime64  = 0x100000001b3
)

func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
