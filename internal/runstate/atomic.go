package runstate

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes an artifact to path atomically: the payload is
// produced into a temp file in the same directory, fsynced, and renamed
// over path, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old file or the new
// file — never a torn mixture — which is the property every result
// writer in the sweeps relies on.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstate: atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("runstate: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("runstate: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("runstate: atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runstate: atomic write %s: %w", path, err)
	}
	err = syncDir(dir)
	return err
}

// WriteFileAtomic is WriteAtomic for a byte slice — the drop-in
// replacement for os.WriteFile on result paths.
func WriteFileAtomic(path string, data []byte) error {
	return WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Platforms whose directory handles reject fsync are tolerated: the
// rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("runstate: sync dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("runstate: sync dir %s: %w", dir, err)
	}
	return nil
}
