package runstate

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// buildJournal writes n records and returns the journal bytes plus the
// records by sequence number, for provenance checks.
func buildJournal(t testing.TB, n int) ([]byte, map[uint64]Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		unit := fmt.Sprintf("app-%d|hd4000|tiny|t1|s%d", i%7, i)
		switch i % 3 {
		case 0:
			err = j.Started(unit)
		case 1:
			err = j.Completed(unit, fmt.Sprintf("digest-%d", i), 1+i%2)
		default:
			err = j.Failed(unit, 2, "watchdog timeout", "permanent")
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := make(map[uint64]Record, len(rec.Records))
	for _, r := range rec.Records {
		orig[r.Seq] = r
	}
	return data, orig
}

// checkRecovered asserts the recovery invariants that matter: no error,
// every returned record is byte-for-byte one that was actually written
// (no corrupt data ever surfaces), and sequence numbers strictly
// increase.
func checkRecovered(t testing.TB, rec *Recovery, orig map[uint64]Record, label string) {
	t.Helper()
	var last uint64
	for _, r := range rec.Records {
		if r.Seq <= last {
			t.Fatalf("%s: seq not strictly increasing: %d after %d", label, r.Seq, last)
		}
		last = r.Seq
		want, ok := orig[r.Seq]
		if !ok {
			t.Fatalf("%s: recovery surfaced a record never written: %+v", label, r)
		}
		if r != want {
			t.Fatalf("%s: recovery surfaced corrupt data:\n got %+v\nwant %+v", label, r, want)
		}
	}
}

// TestRecoverTornAndBitFlipped sweeps randomized damage over a journal —
// truncation at every kind of offset and single-bit flips — and asserts
// recovery never errors and never returns a record that was not
// originally written. This is the crash-consistency contract the resume
// path stands on.
func TestRecoverTornAndBitFlipped(t *testing.T) {
	data, orig := buildJournal(t, 40)
	rng := rand.New(rand.NewSource(20260805))
	dir := t.TempDir()
	recoverBytes := func(mut []byte, label string) {
		t.Helper()
		path := filepath.Join(dir, "j.jsonl")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(path)
		if err != nil {
			t.Fatalf("%s: recovery errored: %v", label, err)
		}
		checkRecovered(t, rec, orig, label)
		// Reopening must truncate to a state that then recovers with no
		// torn tail.
		j, _, err := Create(path)
		if err != nil {
			t.Fatalf("%s: reopen after recovery: %v", label, err)
		}
		j.Close()
		rec2, err := Recover(path)
		if err != nil {
			t.Fatalf("%s: second recovery: %v", label, err)
		}
		if rec2.Torn {
			t.Fatalf("%s: torn tail survived truncation", label)
		}
		checkRecovered(t, rec2, orig, label+" (after truncation)")
	}

	for i := 0; i < 200; i++ {
		// Torn tail: truncate at a random byte offset.
		cut := rng.Intn(len(data) + 1)
		recoverBytes(append([]byte{}, data[:cut]...), fmt.Sprintf("truncate@%d", cut))

		// Bit flip: damage one random bit anywhere in the file.
		mut := append([]byte{}, data...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= 1 << uint(rng.Intn(8))
		recoverBytes(mut, fmt.Sprintf("bitflip@%d", pos))

		// Compound damage: truncate and flip.
		cut = rng.Intn(len(data) + 1)
		mut = append([]byte{}, data[:cut]...)
		if len(mut) > 0 {
			pos = rng.Intn(len(mut))
			mut[pos] ^= 1 << uint(rng.Intn(8))
		}
		recoverBytes(mut, fmt.Sprintf("truncate@%d+flip", cut))
	}
}

// FuzzRecover feeds arbitrary bytes to the recovery loader: it must
// never error on corruption, never panic, and any records it does
// return must be internally consistent (strictly increasing sequence
// numbers, valid statuses, non-empty unit keys).
func FuzzRecover(f *testing.F) {
	data, _ := buildJournal(f, 12)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte(`{"c":0,"r":{"seq":1,"status":"started","unit":"x"}}` + "\n"))
	f.Add([]byte("not json at all\n\n\x00\xff"))
	f.Fuzz(func(t *testing.T, in []byte) {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		if err := os.WriteFile(path, in, 0o644); err != nil {
			t.Skip()
		}
		rec, err := Recover(path)
		if err != nil {
			t.Fatalf("recovery errored on arbitrary input: %v", err)
		}
		var last uint64
		for _, r := range rec.Records {
			if r.Seq <= last {
				t.Fatalf("seq regression surfaced: %d after %d", r.Seq, last)
			}
			last = r.Seq
			if r.Unit == "" {
				t.Fatalf("record with empty unit surfaced: %+v", r)
			}
			switch r.Status {
			case StatusStarted, StatusCompleted, StatusFailed:
			default:
				t.Fatalf("record with invalid status surfaced: %+v", r)
			}
		}
	})
}
