package runstate

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"gtpin/internal/faults"
)

// ErrStateDirLocked is returned when a state directory is already
// claimed by another live process (or another open Dir in this one) —
// the guard that keeps a resuming daemon and a concurrent CLI run from
// both replaying the same journal. Transient: the holder releasing the
// lock (finishing or dying) makes a retry succeed.
var ErrStateDirLocked = faults.NewSentinel("state dir locked", faults.Transient)

// DirLock is an exclusive advisory claim on a state directory, held via
// flock(2) on <dir>/LOCK. The kernel releases it automatically when the
// process dies — including SIGKILL — so a crashed owner never leaves a
// stale lock behind, which is exactly what crash-resume needs: the
// restarted daemon re-acquires immediately, while a live concurrent
// owner is refused with ErrStateDirLocked.
type DirLock struct {
	f *os.File
}

// AcquireDirLock claims <dir>/LOCK exclusively without blocking. A held
// lock returns ErrStateDirLocked (wrapped with the directory path);
// anything else is a real I/O failure.
func AcquireDirLock(dir string) (*DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("runstate: %s: %w: held by a live process", dir, ErrStateDirLocked)
		}
		return nil, fmt.Errorf("runstate: flock %s: %w", dir, err)
	}
	return &DirLock{f: f}, nil
}

// Release drops the claim. Safe on a nil lock (from a failed acquire)
// and idempotent: the second call is a no-op.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	// Closing the descriptor releases the flock; an explicit unlock
	// first keeps the window where the file is closed-but-locked zero.
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return f.Close()
}
