package runstate

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gtpin/internal/faults"
)

// TestJournalRoundTrip: records written through the journal come back
// from recovery verbatim, in order, with the lifecycle maps agreeing —
// the WAL-format smoke check CI runs on every push.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, rec, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.MaxSeq != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Started("alpha"))
	must(j.Completed("alpha", "digest-a", 1))
	must(j.Started("beta"))
	must(j.Failed("beta", 3, "kernel hang", "permanent"))
	must(j.Started("gamma")) // left in flight
	must(j.Close())

	rec, err = Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Dropped) != 0 || rec.Torn {
		t.Fatalf("clean journal reported damage: %+v", rec.Dropped)
	}
	if len(rec.Records) != 5 || rec.MaxSeq != 5 {
		t.Fatalf("got %d records, max seq %d, want 5/5", len(rec.Records), rec.MaxSeq)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if c := rec.Completed(); len(c) != 1 || c["alpha"].Digest != "digest-a" || c["alpha"].Attempt != 1 {
		t.Fatalf("Completed() = %+v", c)
	}
	if f := rec.Failed(); len(f) != 1 || f["beta"].Error != "kernel hang" || f["beta"].Class != "permanent" {
		t.Fatalf("Failed() = %+v", f)
	}
	if inf := rec.InFlight(); len(inf) != 1 || inf["gamma"].Status != StatusStarted {
		t.Fatalf("InFlight() = %+v", inf)
	}
}

// TestJournalReopenContinuesSequence: a reopened journal appends with
// strictly increasing sequence numbers.
func TestJournalReopenContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Started("one"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rec, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.MaxSeq != 1 {
		t.Fatalf("recovered max seq %d, want 1", rec.MaxSeq)
	}
	if err := j2.Completed("one", "d", 1); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rec, err = Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.Records[1].Seq != 2 {
		t.Fatalf("after reopen: %+v", rec.Records)
	}
}

// TestJournalTornTailTruncated: an unterminated partial append is
// classified as a torn tail, truncated on reopen, and the journal keeps
// working from the last good record.
func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Started("u1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Completed("u1", "d1", 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"c":123,"r":{"seq":3,"st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn {
		t.Fatal("torn tail not detected")
	}
	if len(rec.Records) != 2 {
		t.Fatalf("salvaged %d records, want 2", len(rec.Records))
	}
	tornSeen := false
	for _, d := range rec.Dropped {
		if errors.Is(d, ErrTornTail) {
			tornSeen = true
		}
		if faults.ClassOf(d) != faults.Transient && !errors.Is(d, ErrCorruptRecord) && !errors.Is(d, ErrSeqRegression) {
			t.Errorf("dropped error not taxonomy-classified: %v", d)
		}
	}
	if !tornSeen {
		t.Fatalf("no ErrTornTail in %v", rec.Dropped)
	}
	// The tail is gone: appends continue at seq 3 and re-recover clean.
	if err := j2.Started("u2"); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rec, err = Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Dropped) != 0 || len(rec.Records) != 3 || rec.Records[2].Seq != 3 {
		t.Fatalf("post-truncation journal unclean: dropped=%v records=%+v", rec.Dropped, rec.Records)
	}
}

// TestRecoverMissingJournal: a missing journal is the empty state, not
// an error (first run of a sweep).
func TestRecoverMissingJournal(t *testing.T) {
	rec, err := Recover(filepath.Join(t.TempDir(), "nope", "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("missing journal recovered %+v", rec)
	}
}

// TestRecoverSeqRegression: a replayed/duplicated record (stale seq) is
// dropped and classified, later valid records still load.
func TestRecoverSeqRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Started("a"); err != nil {
		t.Fatal(err)
	}
	if err := j.Completed("a", "d", 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate line 1 between the two records: seq 1 after seq 1.
	lines := splitLines(data)
	mut := append(append(append([]byte{}, lines[0]...), lines[0]...), lines[1]...)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("salvaged %d records, want 2", len(rec.Records))
	}
	found := false
	for _, d := range rec.Dropped {
		if errors.Is(d, ErrSeqRegression) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ErrSeqRegression in %v", rec.Dropped)
	}
}

// splitLines splits keeping the trailing newline on each line.
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, data[start:i+1])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
