package runstate

import "gtpin/internal/obs"

// Observability for the persistence layer: WAL traffic and artifact
// volume. Journal appends each carry an fsync, so these counters are
// also a proxy for the sweep's durability cost.
var (
	mJournalRecords = obs.DefaultCounter("runstate_journal_records_total",
		"records durably appended to sweep journals")
	mArtifactsWritten = obs.DefaultCounter("runstate_artifacts_written_total",
		"unit artifacts atomically persisted")
	mArtifactBytes = obs.DefaultCounter("runstate_artifact_bytes_total",
		"bytes of unit artifacts atomically persisted")
)
