package runstate

import (
	"fmt"
	"io"
)

// OpenSweep is the shared -state-dir/-resume front door of the sweep
// harnesses (characterize, repro, subsets). It enforces the flag
// contract — -resume requires -state-dir, and a fresh run refuses to
// silently ignore a directory that already holds a journaled run — and,
// on resume, summarizes the recovered journal on w. An empty dir with
// resume=false returns (nil, nil): the harness runs unjournaled.
func OpenSweep(dir string, resume bool, cmd string, w io.Writer) (*Dir, error) {
	if dir == "" {
		if resume {
			return nil, fmt.Errorf("-resume requires -state-dir")
		}
		return nil, nil
	}
	state, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	rec := state.Recovered
	if !resume && len(rec.Records) > 0 {
		state.Close()
		return nil, fmt.Errorf("state dir %s already holds a journaled run (%d records); pass -resume to continue it or use a fresh directory", dir, len(rec.Records))
	}
	if resume && w != nil {
		fmt.Fprintf(w, "%s: recovered journal: %d completed, %d failed, %d in-flight unit(s)",
			cmd, len(rec.Completed()), len(rec.Failed()), len(rec.InFlight()))
		if rec.Torn {
			fmt.Fprint(w, "; torn tail truncated")
		}
		if n := len(rec.Dropped); n > 0 {
			fmt.Fprintf(w, "; %d damaged record(s) dropped", n)
		}
		fmt.Fprintln(w)
	}
	return state, nil
}
