package runstate

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// envelope is the on-disk line format: the CRC32 (IEEE) of the exact
// record bytes, then the record itself. Keeping the checksum outside the
// record lets the reader verify the raw bytes before trusting any field.
type envelope struct {
	CRC    uint32          `json:"c"`
	Record json.RawMessage `json:"r"`
}

// Journal is the append side of the run WAL. Appends are serialized,
// assigned the next sequence number, and fsynced record-by-record, so
// after Append returns the record survives a crash. A Journal is safe
// for concurrent use by the worker pool.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	seq uint64
}

// Create opens (or creates) the journal at path for appending, first
// running crash recovery: the torn tail, if any, is truncated so new
// records land on a clean record boundary, and the returned Recovery
// describes every unit the previous run journaled. The sequence number
// continues from the last valid record.
func Create(path string) (*Journal, *Recovery, error) {
	rec, err := Recover(path)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("runstate: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runstate: open journal: %w", err)
	}
	// Drop the torn tail (recovery already proved bytes past ValidLen
	// are unparseable) and position appends after the last valid record.
	if err := f.Truncate(rec.ValidLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runstate: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(rec.ValidLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runstate: seek journal: %w", err)
	}
	return &Journal{f: f, seq: rec.MaxSeq}, rec, nil
}

// Append durably writes one record, assigning it the next sequence
// number. The caller's Seq field is ignored.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.Seq = j.seq + 1
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runstate: marshal record: %w", err)
	}
	env, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(body), Record: body})
	if err != nil {
		return fmt.Errorf("runstate: marshal envelope: %w", err)
	}
	if _, err := j.f.Write(append(env, '\n')); err != nil {
		return fmt.Errorf("runstate: append record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runstate: sync journal: %w", err)
	}
	j.seq = r.Seq
	mJournalRecords.Inc()
	return nil
}

// Started journals that a unit began executing.
func (j *Journal) Started(unit string) error {
	return j.StartedEpoch(unit, 0)
}

// StartedEpoch is Started under a fleet fencing epoch — the form worker
// processes use so the coordinator can tell which dispatch of the unit
// produced the record.
func (j *Journal) StartedEpoch(unit string, epoch uint64) error {
	return j.Append(Record{Status: StatusStarted, Unit: unit, Epoch: epoch})
}

// Completed journals that a unit finished, binding it to the digest of
// its persisted artifact. Callers must make the artifact durable before
// journaling completion (WAL ordering), which Dir.WriteArtifact does.
func (j *Journal) Completed(unit, digest string, attempts int) error {
	return j.CompletedEpoch(unit, digest, attempts, 0)
}

// CompletedEpoch is Completed under a fleet fencing epoch.
func (j *Journal) CompletedEpoch(unit, digest string, attempts int, epoch uint64) error {
	return j.Append(Record{Status: StatusCompleted, Unit: unit, Digest: digest, Attempt: attempts, Epoch: epoch})
}

// Failed journals a unit's typed terminal failure.
func (j *Journal) Failed(unit string, attempts int, errText, class string) error {
	return j.FailedEpoch(unit, attempts, errText, class, 0)
}

// FailedEpoch is Failed under a fleet fencing epoch.
func (j *Journal) FailedEpoch(unit string, attempts int, errText, class string, epoch uint64) error {
	return j.Append(Record{Status: StatusFailed, Unit: unit, Attempt: attempts, Error: errText, Class: class, Epoch: epoch})
}

// Close releases the journal file. Records are already durable; Close
// never loses data.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
