package runstate

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Sealed artifacts: standalone digest-verified files for payloads that
// live outside a journaled state directory — interval snippets, merged
// reports, anything handed between processes by path alone. A sealed
// file binds its own digest into a one-line header:
//
//	gtpin-sealed-v1 <hex sha256>\n<payload bytes>
//
// so the reader needs no journal to verify it: truncation, bit rot, or
// a partially-migrated file all surface as ErrDigestMismatch instead of
// silently feeding corrupt bytes into a replay.

// sealedMagic is the header tag; the version is part of the tag so a
// future format bump fails loudly on old readers.
const sealedMagic = "gtpin-sealed-v1"

// WriteSealed atomically writes data to path under a digest header and
// returns the payload digest.
func WriteSealed(path string, data []byte) (string, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("runstate: sealed %s: %w", path, err)
	}
	digest := Digest(data)
	var buf bytes.Buffer
	buf.Grow(len(sealedMagic) + 1 + len(digest) + 1 + len(data))
	fmt.Fprintf(&buf, "%s %s\n", sealedMagic, digest)
	buf.Write(data)
	if err := WriteFileAtomic(path, buf.Bytes()); err != nil {
		return "", err
	}
	return digest, nil
}

// ReadSealed loads a sealed file, verifies the payload against the
// header digest, and returns the payload. A malformed header or a
// digest mismatch returns ErrDigestMismatch.
func ReadSealed(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: sealed %s: %w", path, err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("runstate: sealed %s: missing header: %w", path, ErrDigestMismatch)
	}
	header := string(raw[:nl])
	payload := raw[nl+1:]
	want := ""
	if n, _ := fmt.Sscanf(header, sealedMagic+" %64s", &want); n != 1 || len(header) != len(sealedMagic)+1+64 {
		return nil, fmt.Errorf("runstate: sealed %s: malformed header %q: %w", path, header, ErrDigestMismatch)
	}
	if got := Digest(payload); got != want {
		return nil, fmt.Errorf("runstate: sealed %s: %w: sha256 %s != sealed %s", path, ErrDigestMismatch, got, want)
	}
	return payload, nil
}
