package runstate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Dir is an on-disk sweep state directory:
//
//	<dir>/LOCK            exclusive flock claim of the live owner
//	<dir>/journal.jsonl   the run WAL
//	<dir>/units/          one artifact (and optional blobs) per unit
//
// Artifacts are written atomically and bound to the journal by digest:
// a completion record stores the SHA-256 of the artifact bytes, and
// ReadArtifact refuses bytes that no longer match, so a resume can
// never build its report from a corrupt or stale file.
type Dir struct {
	Path      string
	Journal   *Journal
	Recovered *Recovery
	lock      *DirLock
}

// OpenDir opens (creating if needed) a state directory, claiming it
// exclusively and running journal crash recovery. A directory whose
// lock another live process holds returns ErrStateDirLocked — a
// resuming daemon and a concurrent CLI run can never both replay the
// same journal. The Recovered field describes the previous run.
func OpenDir(path string) (*Dir, error) {
	if err := os.MkdirAll(filepath.Join(path, "units"), 0o755); err != nil {
		return nil, fmt.Errorf("runstate: state dir: %w", err)
	}
	lock, err := AcquireDirLock(path)
	if err != nil {
		return nil, err
	}
	j, rec, err := Create(filepath.Join(path, "journal.jsonl"))
	if err != nil {
		lock.Release()
		return nil, err
	}
	sweepTornTemps(filepath.Join(path, "units"))
	return &Dir{Path: path, Journal: j, Recovered: rec, lock: lock}, nil
}

// sweepTornTemps removes leftover WriteFileAtomic temp files. The
// rename that publishes an artifact is atomic, so any surviving
// ".tmp-" file is a write torn by a crash — and the exclusive flock
// guarantees no live writer shares the directory — making the sweep
// safe and keeping a resumed directory's contents identical to an
// uninterrupted run's. Best-effort: a file that cannot be removed is
// left for the next open rather than failing recovery.
func sweepTornTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.Contains(e.Name(), ".tmp-") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Close releases the journal and the directory claim.
func (d *Dir) Close() error {
	err := d.Journal.Close()
	if lerr := d.lock.Release(); err == nil {
		err = lerr
	}
	return err
}

// Digest returns the hex SHA-256 of an artifact's bytes — the value
// completion records carry.
func Digest(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// UnitFile maps a unit key to a stable file path under units/. The key
// is sanitized for the filesystem and suffixed with a short hash so
// distinct keys can never collide after sanitization.
func (d *Dir) UnitFile(unit, ext string) string {
	return UnitFilePath(d.Path, unit, ext)
}

// UnitFilePath is Dir.UnitFile without an open Dir: the path a unit's
// artifact lives at inside the state directory rooted at dir. The fleet
// coordinator uses it to harvest artifacts from a worker's state dir
// without claiming the worker's flock (the worker — or its zombie —
// still owns the directory; the coordinator only reads bytes it can
// digest-verify against the worker's journal).
func UnitFilePath(dir, unit, ext string) string {
	clean := make([]byte, 0, len(unit))
	for i := 0; i < len(unit); i++ {
		c := unit[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return filepath.Join(dir, "units",
		fmt.Sprintf("%s-%08x%s", clean, crc32.ChecksumIEEE([]byte(unit)), ext))
}

// WriteArtifact atomically persists a unit's artifact and returns its
// digest. The artifact is durable when this returns, so journaling the
// completion afterwards preserves WAL ordering.
func (d *Dir) WriteArtifact(unit string, data []byte) (string, error) {
	if err := WriteFileAtomic(d.UnitFile(unit, ".json"), data); err != nil {
		return "", err
	}
	mArtifactsWritten.Inc()
	mArtifactBytes.Add(uint64(len(data)))
	return Digest(data), nil
}

// ReadArtifact loads a unit's artifact and verifies it against the
// digest its completion record journaled. Any mismatch — truncation,
// bit rot, a stale file from an earlier configuration — returns
// ErrDigestMismatch so the caller re-executes the unit instead of
// trusting the bytes.
func (d *Dir) ReadArtifact(unit, wantDigest string) ([]byte, error) {
	return ReadVerifiedArtifact(d.Path, unit, wantDigest)
}

// ReadVerifiedArtifact is Dir.ReadArtifact without an open Dir: load
// the unit's artifact from the state directory rooted at dir and verify
// it against the journaled digest. Safe on a directory another process
// has flocked — it only reads, and the digest check rejects anything
// not yet durable.
func ReadVerifiedArtifact(dir, unit, wantDigest string) ([]byte, error) {
	data, err := os.ReadFile(UnitFilePath(dir, unit, ".json"))
	if err != nil {
		return nil, fmt.Errorf("runstate: artifact for %s: %w", unit, err)
	}
	if got := Digest(data); got != wantDigest {
		return nil, fmt.Errorf("runstate: artifact for %s: %w: sha256 %s != journaled %s",
			unit, ErrDigestMismatch, got, wantDigest)
	}
	return data, nil
}

// WriteBlob atomically writes an auxiliary unit file (e.g. a CoFluent
// recording) next to the artifact.
func (d *Dir) WriteBlob(unit, ext string, write func(io.Writer) error) error {
	return WriteAtomic(d.UnitFile(unit, ext), write)
}
