package runstate

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// The cross-process lock tests re-exec this test binary as a helper,
// selected by environment: "try" attempts a non-blocking acquire and
// exits with a code encoding the outcome; "hold" acquires, drops a
// marker file, and blocks until killed.
const (
	envLockMode = "GTPIN_RUNSTATE_LOCK_MODE"
	envLockDir  = "GTPIN_RUNSTATE_LOCK_DIR"

	exitAcquired = 0
	exitLocked   = 21 // ErrStateDirLocked, specifically
	exitOther    = 1
)

func TestMain(m *testing.M) {
	switch os.Getenv(envLockMode) {
	case "":
		os.Exit(m.Run())
	case "try":
		lock, err := AcquireDirLock(os.Getenv(envLockDir))
		if errors.Is(err, ErrStateDirLocked) {
			os.Exit(exitLocked)
		}
		if err != nil {
			os.Exit(exitOther)
		}
		_ = lock.Release()
		os.Exit(exitAcquired)
	case "hold":
		dir := os.Getenv(envLockDir)
		if _, err := AcquireDirLock(dir); err != nil {
			os.Exit(exitOther)
		}
		if err := os.WriteFile(filepath.Join(dir, "held"), []byte("1"), 0o644); err != nil {
			os.Exit(exitOther)
		}
		select {} // hold the flock until the parent kills us
	}
}

// tryFromChild runs the "try" helper and returns its exit code.
func tryFromChild(t *testing.T, dir string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), envLockMode+"=try", envLockDir+"="+dir)
	err := cmd.Run()
	if err == nil {
		return exitAcquired
	}
	var xerr *exec.ExitError
	if errors.As(err, &xerr) {
		return xerr.ExitCode()
	}
	t.Fatalf("lock helper: %v", err)
	return -1
}

// TestDirLockCrossProcess: the flock claim fences real processes, not
// just goroutines — a second process probing a held directory gets
// ErrStateDirLocked, and release makes the same probe succeed.
func TestDirLockCrossProcess(t *testing.T) {
	dir := t.TempDir()
	lock, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if code := tryFromChild(t, dir); code != exitLocked {
		t.Fatalf("child exit %d while lock held, want %d (ErrStateDirLocked)", code, exitLocked)
	}
	if err := lock.Release(); err != nil {
		t.Fatal(err)
	}
	if code := tryFromChild(t, dir); code != exitAcquired {
		t.Fatalf("child exit %d after release, want %d", code, exitAcquired)
	}
}

// TestDirLockReleasedOnKill: SIGKILLing the holder releases the flock at
// the kernel — the property that lets a fleet coordinator (or a
// restarted daemon) reclaim a crashed worker's state directory with no
// stale-lock cleanup.
func TestDirLockReleasedOnKill(t *testing.T) {
	dir := t.TempDir()
	holder := exec.Command(os.Args[0])
	holder.Env = append(os.Environ(), envLockMode+"=hold", envLockDir+"="+dir)
	if err := holder.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = holder.Process.Kill()
		_, _ = holder.Process.Wait()
	}()

	marker := filepath.Join(dir, "held")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(marker); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("holder never acquired the lock")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code := tryFromChild(t, dir); code != exitLocked {
		t.Fatalf("probe exit %d while holder alive, want %d", code, exitLocked)
	}
	if _, err := AcquireDirLock(dir); !errors.Is(err, ErrStateDirLocked) {
		t.Fatalf("in-process acquire = %v, want ErrStateDirLocked", err)
	}

	if err := holder.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = holder.Process.Wait()

	lock, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("acquire after SIGKILL of holder: %v (kernel should have released the flock)", err)
	}
	_ = lock.Release()
}
