package runstate

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteAtomic: the file appears with exactly the written content and
// no temp litter remains.
func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite is atomic too.
	if err := WriteFileAtomic(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
	assertNoTemps(t, dir)
}

// TestWriteAtomicFailureLeavesTarget: a failing producer must leave the
// previous file untouched and clean up its temp file — the
// no-half-written-output guarantee.
func TestWriteAtomicFailureLeavesTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer exploded")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half-writ") // partial payload that must never surface
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the producer's error", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "stable" {
		t.Fatalf("target corrupted by failed write: %q", got)
	}
	assertNoTemps(t, dir)
}

// TestDirArtifactDigest: artifacts round-trip through the state dir, and
// any byte damage is refused with ErrDigestMismatch instead of being
// returned.
func TestDirArtifactDigest(t *testing.T) {
	d, err := OpenDir(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	payload := []byte(`{"app":"juliaset","instrs":12345}`)
	digest, err := d.WriteArtifact("app|cfg|seed", payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.ReadArtifact("app|cfg|seed", digest)
	if err != nil || string(back) != string(payload) {
		t.Fatalf("round trip: %q, %v", back, err)
	}
	// Flip one byte on disk.
	p := d.UnitFile("app|cfg|seed", ".json")
	raw, _ := os.ReadFile(p)
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadArtifact("app|cfg|seed", digest); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("damaged artifact returned err %v, want ErrDigestMismatch", err)
	}
}

// TestUnitFileCollisionFree: keys that sanitize to the same name still
// map to distinct files.
func TestUnitFileCollisionFree(t *testing.T) {
	d := &Dir{Path: t.TempDir()}
	a := d.UnitFile("app/cfg", ".json")
	b := d.UnitFile("app|cfg", ".json")
	if a == b {
		t.Fatalf("distinct keys mapped to the same file %s", a)
	}
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}
