package runstate

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSealedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b.snip")
	payload := []byte("hello\nsealed\x00world")
	digest, err := WriteSealed(path, payload)
	if err != nil {
		t.Fatal(err)
	}
	if digest != Digest(payload) {
		t.Fatalf("digest %s != %s", digest, Digest(payload))
	}
	got, err := ReadSealed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
}

func TestSealedEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snip")
	if _, err := WriteSealed(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSealed(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(got))
	}
}

func TestSealedDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.snip")
	if _, err := WriteSealed(path, []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSealed(path); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("corrupt payload: want ErrDigestMismatch, got %v", err)
	}
}

func TestSealedDetectsTruncatedHeader(t *testing.T) {
	dir := t.TempDir()
	for name, contents := range map[string][]byte{
		"noheader.snip":  []byte("no newline at all"),
		"badmagic.snip":  []byte("gtpin-sealed-v9 0000\npayload"),
		"shortsum.snip":  []byte("gtpin-sealed-v1 abc\npayload"),
		"truncated.snip": {},
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSealed(path); !errors.Is(err, ErrDigestMismatch) {
			t.Errorf("%s: want ErrDigestMismatch, got %v", name, err)
		}
	}
}
