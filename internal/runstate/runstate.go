// Package runstate makes long characterization sweeps crash-consistent.
//
// The paper's value proposition (Section III) is that full-application
// profiling — 25 applications, billions of dynamic instructions — is
// expensive enough that losing a run matters. This package provides the
// three pieces a sweep needs to survive a crash, an OOM-kill, or a
// Ctrl-C without discarding completed work:
//
//  1. an append-only run journal (Journal): a JSONL write-ahead log
//     with a per-record CRC32 and a monotonic sequence number, recording
//     each (app, kernel-config, fault-seed) unit as started, completed,
//     or failed, together with the digest of the unit's persisted
//     artifact;
//  2. a recovery loader (Recover): truncates a torn tail, verifies
//     CRCs, classifies corrupt records through the internal/faults
//     taxonomy, and never surfaces a corrupt record to the caller;
//  3. an atomic artifact writer (WriteAtomic): temp file + fsync +
//     rename (+ directory fsync), so no output file is ever observable
//     half-written.
//
// Dir ties them together as an on-disk state directory a harness points
// -state-dir at; -resume then skips journaled-complete units and
// re-executes in-flight ones.
package runstate

import "gtpin/internal/faults"

// Journal-recovery error kinds, minted from the shared taxonomy so
// harness failure tables classify them like every other error in the
// stack. All of them describe records that were dropped during
// recovery; recovery itself never fails because of them.
var (
	// ErrTornTail marks an incomplete final record — the classic
	// crash-mid-append shape. Transient in the taxonomy sense: the tail
	// is truncated and the journal continues from the last good record.
	ErrTornTail = faults.NewSentinel("torn journal tail", faults.Transient)

	// ErrCorruptRecord marks a mid-file record whose CRC32 or JSON
	// framing check failed (bit rot, partial overwrite). The record is
	// dropped; re-reading reproduces the drop, so it is permanent.
	ErrCorruptRecord = faults.NewSentinel("corrupt journal record", faults.Permanent)

	// ErrSeqRegression marks a record whose sequence number does not
	// advance the journal — a sign of interleaved writers or a recycled
	// file. The record is dropped.
	ErrSeqRegression = faults.NewSentinel("journal sequence regression", faults.Permanent)

	// ErrDigestMismatch is returned by Dir.ReadArtifact when an
	// artifact's bytes no longer hash to the digest its completion
	// record promised.
	ErrDigestMismatch = faults.NewSentinel("artifact digest mismatch", faults.Permanent)
)

// Status is the lifecycle state a journal record assigns to a unit.
type Status string

// The unit lifecycle. A unit with a Started record and no terminal
// record was in flight when the process died and must be re-executed on
// resume.
const (
	StatusStarted   Status = "started"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
)

// Record is one journal entry. Unit is an opaque caller-defined key
// identifying the work unit (the sweeps use app|config|scale|trial|
// fault-seed). Digest is the artifact digest for completed units;
// Error/Class carry the typed failure for failed ones; Attempt counts
// execution attempts consumed, supervised restarts included.
//
// Epoch is the fencing token of the distributed fleet (internal/fleet):
// every dispatch of a unit to a worker process carries a fresh epoch,
// the worker journals its result under that epoch, and the coordinator
// accepts a terminal record only when its epoch matches the lease it
// currently holds valid — so a zombie worker whose lease was already
// re-dispatched cannot smuggle a late write into the merged report.
// Single-process sweeps leave it zero.
type Record struct {
	Seq     uint64 `json:"seq"`
	Status  Status `json:"status"`
	Unit    string `json:"unit"`
	Digest  string `json:"digest,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	Class   string `json:"class,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}
