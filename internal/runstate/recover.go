package runstate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// Recovery is what crash recovery salvages from a journal: every record
// that survived CRC and sequence verification, in order, plus an
// accounting of what was dropped. Corrupt data never appears in
// Records — a record is either verified or classified into Dropped.
type Recovery struct {
	// Records are the valid journal records, in file order, with
	// strictly increasing sequence numbers.
	Records []Record
	// MaxSeq is the sequence number appends continue from.
	MaxSeq uint64
	// ValidLen is the byte length of the journal up to the end of the
	// last valid record; everything past it is a torn tail the journal
	// truncates on reopen.
	ValidLen int64
	// Dropped classifies every discarded region via the faults
	// taxonomy: ErrTornTail, ErrCorruptRecord, or ErrSeqRegression.
	Dropped []error
	// Torn reports whether a torn tail was found (and will be
	// truncated by Create).
	Torn bool
}

// Recover reads the journal at path and salvages its valid prefix
// structure. Corruption — torn tails, bit flips, sequence anomalies —
// is never an error: the damaged records are classified and dropped.
// Only real I/O failures are returned. A missing journal recovers to
// the empty state.
func Recover(path string) (*Recovery, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Recovery{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runstate: read journal: %w", err)
	}
	rec := &Recovery{}
	// Invalid terminated lines are only classified after the scan: a bad
	// line followed by valid records is mid-file corruption; a bad line
	// with nothing valid after it is part of the torn tail.
	type bad struct {
		off int64
		err error
	}
	var invalid []bad
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated final chunk: the crash-mid-append shape.
			rec.Dropped = append(rec.Dropped,
				fmt.Errorf("runstate: %d unterminated byte(s) at offset %d: %w", len(data), off, ErrTornTail))
			rec.Torn = true
			break
		}
		line := data[:nl]
		lineEnd := off + int64(nl) + 1
		if r, verr := verifyLine(line, rec.MaxSeq); verr != nil {
			invalid = append(invalid, bad{off: off, err: verr})
		} else {
			rec.Records = append(rec.Records, r)
			rec.MaxSeq = r.Seq
			rec.ValidLen = lineEnd
		}
		data = data[nl+1:]
		off = lineEnd
	}
	for _, b := range invalid {
		if b.off >= rec.ValidLen {
			// No valid record follows: trailing damage, truncated with
			// the tail.
			rec.Dropped = append(rec.Dropped,
				fmt.Errorf("runstate: invalid trailing record at offset %d (%v): %w", b.off, b.err, ErrTornTail))
			rec.Torn = true
		} else {
			rec.Dropped = append(rec.Dropped,
				fmt.Errorf("runstate: dropped record at offset %d: %w", b.off, b.err))
		}
	}
	return rec, nil
}

// verifyLine parses and verifies one journal line against the running
// maximum sequence number, returning the record only if every check
// passes.
func verifyLine(line []byte, maxSeq uint64) (Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, fmt.Errorf("%w: bad framing: %v", ErrCorruptRecord, err)
	}
	if len(env.Record) == 0 {
		return Record{}, fmt.Errorf("%w: empty record", ErrCorruptRecord)
	}
	if got := crc32.ChecksumIEEE(env.Record); got != env.CRC {
		return Record{}, fmt.Errorf("%w: crc32 %08x != stored %08x", ErrCorruptRecord, got, env.CRC)
	}
	var r Record
	if err := json.Unmarshal(env.Record, &r); err != nil {
		return Record{}, fmt.Errorf("%w: bad record body: %v", ErrCorruptRecord, err)
	}
	switch r.Status {
	case StatusStarted, StatusCompleted, StatusFailed:
	default:
		return Record{}, fmt.Errorf("%w: unknown status %q", ErrCorruptRecord, r.Status)
	}
	if r.Unit == "" {
		return Record{}, fmt.Errorf("%w: missing unit key", ErrCorruptRecord)
	}
	if r.Seq <= maxSeq {
		return Record{}, fmt.Errorf("%w: seq %d after %d", ErrSeqRegression, r.Seq, maxSeq)
	}
	return r, nil
}

// state folds the record stream into each unit's latest status.
func (r *Recovery) state() map[string]Record {
	m := make(map[string]Record, len(r.Records))
	for _, rec := range r.Records {
		m[rec.Unit] = rec
	}
	return m
}

// Completed returns the units whose latest record is a completion,
// keyed by unit with the completion record (digest included). A resume
// skips exactly these.
func (r *Recovery) Completed() map[string]Record {
	return r.byStatus(StatusCompleted)
}

// InFlight returns the units whose latest record is a start — they were
// executing when the process died and must be re-executed.
func (r *Recovery) InFlight() map[string]Record {
	return r.byStatus(StatusStarted)
}

// Failed returns the units whose latest record is a typed failure. A
// resume re-executes them (completion is the only terminal state a
// sweep accepts).
func (r *Recovery) Failed() map[string]Record {
	return r.byStatus(StatusFailed)
}

func (r *Recovery) byStatus(s Status) map[string]Record {
	m := make(map[string]Record)
	for unit, rec := range r.state() {
		if rec.Status == s {
			m[unit] = rec
		}
	}
	return m
}
