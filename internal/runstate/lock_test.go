package runstate

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// TestDirLockExcludesConcurrentOpen is the journal-claim-race
// regression test: while one Dir holds a state directory, a second
// OpenDir of the same directory — the "resuming daemon vs concurrent
// CLI run" shape — must be refused with ErrStateDirLocked, and must
// succeed again once the holder closes.
func TestDirLockExcludesConcurrentOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")

	d1, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); !errors.Is(err, ErrStateDirLocked) {
		t.Fatalf("second OpenDir of a held dir: got %v, want ErrStateDirLocked", err)
	}
	if err := d1.Journal.Started("unit-a"); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir after holder closed: %v", err)
	}
	defer d2.Close()
	if got := len(d2.Recovered.InFlight()); got != 1 {
		t.Fatalf("recovered %d in-flight units, want 1", got)
	}
}

// TestDirLockRelease verifies Release is idempotent and nil-safe.
func TestDirLockRelease(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
	var nilLock *DirLock
	if err := nilLock.Release(); err != nil {
		t.Fatalf("nil Release: %v", err)
	}

	// Released dir is claimable again.
	l2, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2.Release()
}

// TestDirLockHeldByOtherDescriptor pins the flock semantics the guard
// relies on: two independent opens of the same LOCK file conflict even
// within one process (each os.Open creates its own open file
// description).
func TestDirLockHeldByOtherDescriptor(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Release()
	if _, err := AcquireDirLock(dir); !errors.Is(err, ErrStateDirLocked) {
		t.Fatalf("second acquire: got %v, want ErrStateDirLocked", err)
	}
}

// TestOpenDirSweepsTornTemps: a SIGKILL can land inside
// WriteFileAtomic, stranding a ".tmp-" file next to the artifacts. The
// next OpenDir (the resume) must remove it — the published artifacts
// are renamed atomically, so any surviving temp is garbage — keeping a
// resumed directory byte-identical to an uninterrupted run's.
func TestOpenDirSweepsTornTemps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")

	d1, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.WriteArtifact("unit-a", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "units", "unit-b.json.tmp-12345")
	if err := os.WriteFile(torn, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := os.Stat(torn); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("torn temp survived reopen: stat err = %v", err)
	}
	if _, err := os.Stat(d2.UnitFile("unit-a", ".json")); err != nil {
		t.Fatalf("published artifact swept too: %v", err)
	}
}
