package simpoint_test

import (
	"fmt"

	"gtpin/internal/features"
	"gtpin/internal/simpoint"
)

// Cluster a two-phase interval sequence: six intervals of phase A and
// two heavy intervals of phase B collapse to two representatives whose
// ratios reflect the instruction mass.
func Example() {
	var vecs []features.Vector
	var weights []float64
	for i := 0; i < 6; i++ {
		vecs = append(vecs, features.Vector{1: 100}) // phase A
		weights = append(weights, 100)
	}
	for i := 0; i < 2; i++ {
		vecs = append(vecs, features.Vector{2: 100}) // phase B
		weights = append(weights, 200)
	}
	res, err := simpoint.Run(vecs, weights, simpoint.DefaultConfig(42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("clusters: %d\n", res.K)
	for _, s := range res.Selections {
		fmt.Printf("representative interval %d carries ratio %.1f\n", s.Interval, s.Ratio)
	}
	// Output:
	// clusters: 2
	// representative interval 0 carries ratio 0.6
	// representative interval 6 carries ratio 0.4
}
