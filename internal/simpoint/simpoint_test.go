package simpoint

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gtpin/internal/features"
)

// clusteredVectors builds n vectors drawn from k well-separated sparse
// prototypes; returns the vectors and their true cluster labels.
func clusteredVectors(rng *rand.Rand, n, k int) ([]features.Vector, []int) {
	vecs := make([]features.Vector, n)
	labels := make([]int, n)
	for i := range vecs {
		c := i % k
		labels[i] = c
		v := make(features.Vector)
		// Prototype: two dominant keys per cluster, far apart in key
		// space, plus small noise on a shared key.
		v[uint64(1000*c+1)] = 100 + rng.Float64()
		v[uint64(1000*c+2)] = 50 + rng.Float64()
		v[9999] = rng.Float64() * 2
		vecs[i] = v
	}
	return vecs, labels
}

func TestClusterRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vecs, labels := clusteredVectors(rng, 60, 3)
	weights := make([]float64, len(vecs))
	for i := range weights {
		weights[i] = 100
	}
	res, err := Run(vecs, weights, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Purity: a k-means cluster must never mix two true clusters (it may
	// legitimately subdivide one along the noise dimension).
	clusterLabel := map[int]int{} // k-means cluster -> true label
	for i, a := range res.Assign {
		if prev, ok := clusterLabel[a]; ok {
			if prev != labels[i] {
				t.Fatalf("k-means cluster %d mixes true clusters %d and %d", a, prev, labels[i])
			}
		} else {
			clusterLabel[a] = labels[i]
		}
	}
	// Every true cluster carries 1/3 of the weight; the representation
	// ratios of its selections must sum to 1/3.
	mass := map[int]float64{}
	for _, s := range res.Selections {
		mass[labels[s.Interval]] += s.Ratio
	}
	for label := 0; label < 3; label++ {
		if math.Abs(mass[label]-1.0/3) > 1e-9 {
			t.Errorf("true cluster %d ratio mass = %f, want 1/3", label, mass[label])
		}
	}
}

func TestRatiosSumToOneAndReflectWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vecs, labels := clusteredVectors(rng, 30, 2)
	weights := make([]float64, len(vecs))
	// Cluster 0 carries 90% of the weight.
	var total float64
	for i := range weights {
		if labels[i] == 0 {
			weights[i] = 900
		} else {
			weights[i] = 100
		}
		total += weights[i]
	}
	res, err := Run(vecs, weights, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	heavy := 0.0
	for _, s := range res.Selections {
		sum += s.Ratio
		if labels[s.Interval] == 0 {
			heavy += s.Ratio
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ratios sum to %f", sum)
	}
	// Representatives drawn from the heavy true cluster must carry its
	// weight share (clustering may legitimately subdivide it).
	if math.Abs(heavy-0.9) > 1e-9 {
		t.Errorf("heavy-cluster ratio mass = %f, want 0.9", heavy)
	}
}

func TestIdenticalVectorsCollapse(t *testing.T) {
	vecs := make([]features.Vector, 20)
	weights := make([]float64, 20)
	for i := range vecs {
		vecs[i] = features.Vector{1: 10, 2: 20}
		weights[i] = 50
	}
	res, err := Run(vecs, weights, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("identical vectors should collapse to 1 cluster under BIC, got %d", res.K)
	}
	if len(res.Selections) != 1 || math.Abs(res.Selections[0].Ratio-1) > 1e-9 {
		t.Errorf("selections = %+v", res.Selections)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vecs, _ := clusteredVectors(rng, 40, 4)
	weights := make([]float64, len(vecs))
	for i := range weights {
		weights[i] = float64(10 + i)
	}
	r1, err := Run(vecs, weights, DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(vecs, weights, DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Selections, r2.Selections) || !reflect.DeepEqual(r1.Assign, r2.Assign) {
		t.Error("same seed must give identical clustering")
	}
}

func TestMaxKRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	vecs, _ := clusteredVectors(rng, 50, 10)
	weights := make([]float64, len(vecs))
	for i := range weights {
		weights[i] = 1
	}
	cfg := DefaultConfig(4)
	cfg.MaxK = 3
	res, err := Run(vecs, weights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 || len(res.Selections) > 3 {
		t.Errorf("K = %d, selections = %d, max 3", res.K, len(res.Selections))
	}
}

func TestSampledPathMatchesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	vecs, _ := clusteredVectors(rng, 500, 4)
	weights := make([]float64, len(vecs))
	for i := range weights {
		weights[i] = float64(1 + i%7)
	}
	cfg := DefaultConfig(5)
	cfg.MaxSample = 100 // force the sampled path
	res, err := Run(vecs, weights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(vecs) {
		t.Fatalf("assign covers %d of %d", len(res.Assign), len(vecs))
	}
	sum := 0.0
	for _, s := range res.Selections {
		sum += s.Ratio
		if s.Interval < 0 || s.Interval >= len(vecs) {
			t.Errorf("selection index %d out of range", s.Interval)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ratios sum to %f", sum)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Run(nil, nil, DefaultConfig(1)); err == nil {
		t.Error("expected error for no intervals")
	}
	v := []features.Vector{{1: 1}}
	if _, err := Run(v, []float64{1, 2}, DefaultConfig(1)); err == nil {
		t.Error("expected error for weight mismatch")
	}
	if _, err := Run(v, []float64{-1}, DefaultConfig(1)); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := Run(v, []float64{0}, DefaultConfig(1)); err == nil {
		t.Error("expected error for zero total weight")
	}
	bad := DefaultConfig(1)
	bad.MaxK = 0
	if _, err := Run(v, []float64{1}, bad); err == nil {
		t.Error("expected error for MaxK=0")
	}
}

func TestProjectionProperties(t *testing.T) {
	// Identical vectors project identically; proportional vectors too
	// (L1 normalization removes scale).
	a := features.Vector{5: 10, 9: 30}
	b := features.Vector{5: 20, 9: 60}
	pts := Project([]features.Vector{a, b}, 15)
	for j := range pts[0] {
		if math.Abs(pts[0][j]-pts[1][j]) > 1e-12 {
			t.Fatalf("proportional vectors project differently at dim %d", j)
		}
	}
	// Disjoint vectors should (almost surely) differ.
	c := features.Vector{77: 10}
	pts2 := Project([]features.Vector{a, c}, 15)
	same := true
	for j := range pts2[0] {
		if pts2[0][j] != pts2[1][j] {
			same = false
		}
	}
	if same {
		t.Error("distinct vectors projected identically")
	}
	// Empty vector projects to the origin.
	pts3 := Project([]features.Vector{{}}, 15)
	for _, x := range pts3[0] {
		if x != 0 {
			t.Error("empty vector must project to origin")
		}
	}
}

func TestDirectionIsBounded(t *testing.T) {
	for key := uint64(0); key < 500; key++ {
		for j := 0; j < 15; j++ {
			d := direction(key, j)
			if d < -1 || d >= 1 {
				t.Fatalf("direction(%d, %d) = %f out of [-1, 1)", key, j, d)
			}
		}
	}
}

func TestBICPrefersFewClustersForNoise(t *testing.T) {
	// One tight cluster: more clusters must not win by a large margin —
	// the chosen K should be small.
	vecs := make([]features.Vector, 30)
	weights := make([]float64, 30)
	rng := rand.New(rand.NewSource(16))
	for i := range vecs {
		vecs[i] = features.Vector{1: 100 + rng.Float64()*0.01, 2: 50}
		weights[i] = 1
	}
	res, err := Run(vecs, weights, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("near-identical vectors produced K=%d", res.K)
	}
}
