package simpoint

import (
	"math"
	"math/rand"
	"testing"

	"gtpin/internal/features"
)

// TestSingleInterval: one interval clusters to itself with ratio 1.
func TestSingleInterval(t *testing.T) {
	res, err := Run([]features.Vector{{1: 5}}, []float64{100}, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || len(res.Selections) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Selections[0].Interval != 0 || res.Selections[0].Ratio != 1 {
		t.Errorf("selection = %+v", res.Selections[0])
	}
}

// TestMaxKAboveN: MaxK larger than the interval count is clamped.
func TestMaxKAboveN(t *testing.T) {
	vecs := []features.Vector{{1: 1}, {2: 1}, {3: 1}}
	res, err := Run(vecs, []float64{1, 1, 1}, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Errorf("K = %d with 3 intervals", res.K)
	}
}

// TestZeroWeightIntervalsTolerated: intervals with zero weight (empty
// sync regions would have zero instructions) do not break clustering and
// get zero representation.
func TestZeroWeightIntervalsTolerated(t *testing.T) {
	vecs := []features.Vector{{1: 10}, {2: 10}, {1: 10}}
	weights := []float64{100, 0, 100}
	res, err := Run(vecs, weights, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range res.Selections {
		sum += s.Ratio
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ratios sum to %f", sum)
	}
}

// TestEmptyClusterReseed: ask for more clusters than distinct points and
// ensure selections stay well-formed (empty clusters are dropped or
// reseeded, never returned with NaN ratios).
func TestEmptyClusterReseed(t *testing.T) {
	vecs := make([]features.Vector, 12)
	weights := make([]float64, 12)
	for i := range vecs {
		// Only two distinct points.
		if i%2 == 0 {
			vecs[i] = features.Vector{1: 1}
		} else {
			vecs[i] = features.Vector{2: 1}
		}
		weights[i] = 1
	}
	cfg := DefaultConfig(4)
	cfg.MaxK = 8
	cfg.BICFrac = 1 // force the largest-BIC candidate
	res, err := Run(vecs, weights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range res.Selections {
		if math.IsNaN(s.Ratio) || s.Ratio < 0 {
			t.Fatalf("bad ratio %f", s.Ratio)
		}
		sum += s.Ratio
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ratios sum to %f", sum)
	}
}

// TestBICReported: every candidate k gets a BIC score.
func TestBICReported(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vecs, _ := clusteredVectors(rng, 30, 3)
	weights := make([]float64, len(vecs))
	for i := range weights {
		weights[i] = 1
	}
	res, err := Run(vecs, weights, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BIC) != 10 {
		t.Fatalf("BIC scores = %d, want 10", len(res.BIC))
	}
	for i, b := range res.BIC {
		if math.IsNaN(b) {
			t.Errorf("BIC[%d] is NaN", i)
		}
	}
}

// TestSampleIndicesProperties: systematic weighted sampling returns
// sorted, distinct, in-range indices and favours heavy intervals.
func TestSampleIndicesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	weights := make([]float64, 1000)
	for i := range weights {
		weights[i] = 1
	}
	weights[500] = 500 // one very heavy interval
	idx := sampleIndices(weights, 100, rng)
	if len(idx) == 0 || len(idx) > 100 {
		t.Fatalf("sampled %d", len(idx))
	}
	seen := map[int]bool{}
	prev := -1
	found500 := false
	for _, i := range idx {
		if i <= prev {
			t.Fatal("indices not strictly increasing")
		}
		prev = i
		if i < 0 || i >= len(weights) {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
		if i == 500 {
			found500 = true
		}
	}
	if !found500 {
		t.Error("heavy interval not sampled")
	}
}
