// Package simpoint implements the SimPoint 3.0 phase-analysis pipeline
// the paper uses for clustering interval feature vectors: sparse vectors
// are L1-normalized, randomly projected to a low dimension, clustered
// with weighted k-means across candidate cluster counts, and the best
// clustering under the Bayesian Information Criterion is selected. Each
// cluster contributes one representative interval (the member closest to
// the centroid) and a representation ratio (the cluster's share of total
// dynamic instructions) — the weights used to extrapolate whole-program
// performance from simulated subsets.
//
// SimPoint 3.0's support for variable-size intervals is modelled by
// weighting each interval's influence by its instruction count, both in
// the k-means objective and in the representation ratios.
package simpoint

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gtpin/internal/features"
)

// Config controls the clustering pipeline.
type Config struct {
	// MaxK is the maximum number of clusters (and therefore selected
	// intervals); the paper uses 10. Fewer clusters may be returned if a
	// smaller k scores well under BIC.
	MaxK int
	// Dims is the random-projection dimensionality; SimPoint uses 15.
	Dims int
	// Seed drives k-means++ initialization and restarts.
	Seed int64
	// BICFrac is the fraction of the BIC score range a clustering must
	// reach to be chosen; SimPoint's default policy picks the smallest k
	// scoring at least 90% of the best.
	BICFrac float64
	// Restarts is the number of random k-means initializations per k.
	Restarts int
	// MaxIters bounds Lloyd iterations per run.
	MaxIters int
	// MaxSample bounds the number of intervals the k-means iterations
	// run over; larger inputs are weighted-sampled first and every
	// interval is assigned to the nearest resulting center afterwards
	// (SimPoint's sampled clustering for very long programs). Zero means
	// the default of 3000.
	MaxSample int
}

// DefaultConfig returns the paper's settings: up to 10 clusters,
// 15 projected dimensions, 90% BIC threshold.
func DefaultConfig(seed int64) Config {
	return Config{MaxK: 10, Dims: 15, Seed: seed, BICFrac: 0.9, Restarts: 3, MaxIters: 60, MaxSample: 3000}
}

// Selection is one chosen representative interval.
type Selection struct {
	// Interval is the index of the representative interval.
	Interval int
	// Ratio is the cluster's representation ratio: its share of the
	// total weight (dynamic instructions). Ratios sum to 1.
	Ratio float64
	// Cluster is the cluster index.
	Cluster int
}

// Result is the outcome of a clustering run.
type Result struct {
	// K is the chosen number of clusters.
	K int
	// Selections holds one representative per non-empty cluster.
	Selections []Selection
	// Assign maps each interval to its cluster.
	Assign []int
	// BIC holds the score for each candidate k (index k-1).
	BIC []float64
}

// Run clusters interval feature vectors. weights[i] is interval i's
// dynamic instruction count.
func Run(vecs []features.Vector, weights []float64, cfg Config) (*Result, error) {
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("simpoint: no intervals")
	}
	if len(weights) != n {
		return nil, fmt.Errorf("simpoint: %d weights for %d intervals", len(weights), n)
	}
	if cfg.MaxK <= 0 || cfg.Dims <= 0 {
		return nil, fmt.Errorf("simpoint: invalid config (MaxK=%d, Dims=%d)", cfg.MaxK, cfg.Dims)
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 60
	}

	pts := Project(vecs, cfg.Dims)
	totalW := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("simpoint: negative weight")
		}
		totalW += w
	}
	if totalW == 0 {
		return nil, fmt.Errorf("simpoint: zero total weight")
	}

	maxK := cfg.MaxK
	if maxK > n {
		maxK = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Sampled clustering for very long programs: iterate k-means over a
	// weighted sample, then assign every interval to its nearest center.
	maxSample := cfg.MaxSample
	if maxSample <= 0 {
		maxSample = 3000
	}
	kpts, kweights := pts, weights
	if n > maxSample {
		idx := sampleIndices(weights, maxSample, rng)
		kpts = make([][]float64, len(idx))
		kweights = make([]float64, len(idx))
		for i, j := range idx {
			kpts[i] = pts[j]
			kweights[i] = weights[j]
		}
	}

	type candidate struct {
		assign  []int
		centers [][]float64
		bic     float64
	}
	cands := make([]candidate, maxK)
	for k := 1; k <= maxK; k++ {
		best := candidate{bic: math.Inf(-1)}
		for r := 0; r < cfg.Restarts; r++ {
			_, centers := kmeans(kpts, kweights, k, cfg.MaxIters, rng)
			assign := assignAll(pts, centers)
			b := bic(pts, weights, assign, centers, totalW)
			if b > best.bic {
				best = candidate{assign: assign, centers: centers, bic: b}
			}
		}
		cands[k-1] = best
	}

	// Pick the smallest k whose BIC reaches BICFrac of the score range.
	minB, maxB := cands[0].bic, cands[0].bic
	for _, c := range cands {
		minB = math.Min(minB, c.bic)
		maxB = math.Max(maxB, c.bic)
	}
	threshold := minB + cfg.BICFrac*(maxB-minB)
	chosen := maxK - 1
	for i := range cands {
		if cands[i].bic >= threshold {
			chosen = i
			break
		}
	}

	c := cands[chosen]
	res := &Result{K: chosen + 1, Assign: c.assign}
	for i := range cands {
		res.BIC = append(res.BIC, cands[i].bic)
	}

	// Representative per cluster: the member nearest the centroid;
	// ratio = cluster weight share.
	k := chosen + 1
	clusterW := make([]float64, k)
	bestIdx := make([]int, k)
	bestDist := make([]float64, k)
	for i := range bestIdx {
		bestIdx[i] = -1
		bestDist[i] = math.Inf(1)
	}
	for i, a := range c.assign {
		clusterW[a] += weights[i]
		d := sqDist(pts[i], c.centers[a])
		if d < bestDist[a] {
			bestDist[a] = d
			bestIdx[a] = i
		}
	}
	for cl := 0; cl < k; cl++ {
		if bestIdx[cl] < 0 {
			continue // empty cluster
		}
		res.Selections = append(res.Selections, Selection{
			Interval: bestIdx[cl],
			Ratio:    clusterW[cl] / totalW,
			Cluster:  cl,
		})
	}
	if len(res.Selections) == 0 {
		return nil, fmt.Errorf("simpoint: clustering produced no selections")
	}
	return res, nil
}

// Project maps sparse feature vectors to dense cfg.Dims-dimensional
// points: each vector is L1-normalized, then each feature key contributes
// its value along a deterministic pseudo-random direction derived from
// the key. Keys hash to the same direction across vectors, so projection
// preserves relative geometry without materializing a projection matrix.
func Project(vecs []features.Vector, dims int) [][]float64 {
	pts := make([][]float64, len(vecs))
	var keys []uint64
	for i, v := range vecs {
		p := make([]float64, dims)
		// Accumulate in sorted key order so the floating-point sums —
		// and therefore every downstream clustering decision — are
		// bit-reproducible across processes (map iteration order is not).
		keys = keys[:0]
		for key := range v {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		norm := 0.0
		for _, key := range keys {
			norm += v[key]
		}
		if norm == 0 {
			pts[i] = p
			continue
		}
		for _, key := range keys {
			x := v[key] / norm
			for j := 0; j < dims; j++ {
				p[j] += x * direction(key, j)
			}
		}
		pts[i] = p
	}
	return pts
}

// direction returns the j-th component of feature key's projection
// direction, a deterministic uniform value in [-1, 1).
func direction(key uint64, j int) float64 {
	x := key + uint64(j)*0x9E3779B97F4A7C15
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53)*2 - 1
}

// assignAll maps every point to its nearest center.
func assignAll(pts [][]float64, centers [][]float64) []int {
	assign := make([]int, len(pts))
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c := range centers {
			if d := sqDist(p, centers[c]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return assign
}

// sampleIndices draws m distinct interval indices with probability
// proportional to weight, via systematic sampling over the cumulative
// weight with a random phase.
func sampleIndices(weights []float64, m int, rng *rand.Rand) []int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	step := total / float64(m)
	next := rng.Float64() * step
	idx := make([]int, 0, m)
	acc := 0.0
	for i, w := range weights {
		acc += w
		for next < acc && len(idx) < m {
			idx = append(idx, i)
			next += step
		}
	}
	// Deduplicate (an index can absorb several steps when its weight is
	// large); k-means weights already account for mass, so keep one copy.
	out := idx[:0]
	prev := -1
	for _, i := range idx {
		if i != prev {
			out = append(out, i)
			prev = i
		}
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kmeans runs weighted Lloyd's algorithm with k-means++ seeding.
func kmeans(pts [][]float64, weights []float64, k, maxIters int, rng *rand.Rand) ([]int, [][]float64) {
	n := len(pts)
	dims := len(pts[0])
	centers := seedPlusPlus(pts, weights, k, rng)
	assign := make([]int, n)

	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute weighted centroids.
		sums := make([][]float64, k)
		ws := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, p := range pts {
			c := assign[i]
			w := weights[i]
			ws[c] += w
			for j, x := range p {
				sums[c][j] += w * x
			}
		}
		for c := range centers {
			if ws[c] == 0 {
				// Empty cluster: reseed to the point farthest from its
				// center.
				far, farD := 0, -1.0
				for i, p := range pts {
					if d := sqDist(p, centers[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], pts[far])
				continue
			}
			for j := range centers[c] {
				centers[c][j] = sums[c][j] / ws[c]
			}
		}
	}
	// Final assignment against final centers.
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c := range centers {
			if d := sqDist(p, centers[c]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return assign, centers
}

// seedPlusPlus performs weighted k-means++ initialization.
func seedPlusPlus(pts [][]float64, weights []float64, k int, rng *rand.Rand) [][]float64 {
	n := len(pts)
	centers := make([][]float64, 0, k)
	// First center: weighted random point.
	centers = append(centers, clonePt(pts[weightedPick(weights, rng)]))
	d2 := make([]float64, n)
	for len(centers) < k {
		sum := 0.0
		last := centers[len(centers)-1]
		for i, p := range pts {
			d := sqDist(p, last)
			if len(centers) == 1 || d < d2[i] {
				d2[i] = d
			}
			sum += d2[i] * weights[i]
		}
		if sum == 0 {
			// All points coincide with centers; duplicate any point.
			centers = append(centers, clonePt(pts[rng.Intn(n)]))
			continue
		}
		r := rng.Float64() * sum
		acc := 0.0
		pick := n - 1
		for i := range pts {
			acc += d2[i] * weights[i]
			if acc >= r {
				pick = i
				break
			}
		}
		centers = append(centers, clonePt(pts[pick]))
	}
	return centers
}

func weightedPick(weights []float64, rng *rand.Rand) int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	r := rng.Float64() * sum
	acc := 0.0
	for i, w := range weights {
		acc += w
		if acc >= r {
			return i
		}
	}
	return len(weights) - 1
}

func clonePt(p []float64) []float64 {
	c := make([]float64, len(p))
	copy(c, p)
	return c
}

// bic scores a clustering with the Bayesian Information Criterion under
// a spherical Gaussian model (the X-means formulation), with interval
// weights acting as effective point counts.
func bic(pts [][]float64, weights []float64, assign []int, centers [][]float64, totalW float64) float64 {
	k := len(centers)
	d := float64(len(pts[0]))
	// Pooled within-cluster variance.
	ss := 0.0
	for i, p := range pts {
		ss += weights[i] * sqDist(p, centers[assign[i]])
	}
	denom := totalW - float64(k)
	if denom <= 0 {
		denom = 1e-12
	}
	sigma2 := ss / (d * denom)
	// Variance floor: projected coordinates live in [-1, 1]; treat
	// spread below ~0.1% of that scale as measurement noise so the
	// likelihood cannot reward subdividing point-like clusters forever
	// (the classic spherical-BIC over-splitting pathology).
	if sigma2 < 1e-6 {
		sigma2 = 1e-6
	}
	clusterW := make([]float64, k)
	for i, a := range assign {
		clusterW[a] += weights[i]
	}
	loglik := 0.0
	for _, w := range clusterW {
		if w > 0 {
			loglik += w * math.Log(w/totalW)
		}
	}
	loglik += -totalW * d / 2 * math.Log(2*math.Pi*sigma2)
	loglik += -(totalW - float64(k)) * d / 2
	params := float64(k) * (d + 1)
	return loglik - params/2*math.Log(totalW)
}
