package xlate

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/cl"
	"gtpin/internal/device"
	"gtpin/internal/faults"
	"gtpin/internal/gtpin"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
	"gtpin/internal/testgen"
)

// runProgram executes a program on a fresh device through the cl stack
// and returns the final output-surface bytes, plus the GT-Pin records
// when instrument is set. Surface 0 is seeded input, surface 1 output.
func runProgram(t *testing.T, p *kernel.Program, steps []testgen.DriverStep, instrument bool) ([]byte, []*gtpin.InvocationRecord) {
	t.Helper()
	dev, err := device.New(device.IvyBridgeHD4000())
	if err != nil {
		t.Fatal(err)
	}
	ctx := cl.NewContext(dev)
	var g *gtpin.GTPin
	if instrument {
		g, err = gtpin.Attach(ctx, gtpin.Options{MemTrace: true, DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	q := ctx.CreateQueue()
	in, err := ctx.CreateBuffer(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 1<<12)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	if err := q.EnqueueWriteBuffer(in, 0, seed); err != nil {
		t.Fatal(err)
	}
	prog := ctx.CreateProgram(p)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	kernels := map[string]*cl.Kernel{}
	for _, k := range p.Kernels {
		ko, err := prog.CreateKernel(k.Name)
		if err != nil {
			t.Fatal(err)
		}
		if ik := p.Kernel(k.Name); ik.NumSurfaces > 0 {
			if err := ko.SetBuffer(0, in); err != nil {
				t.Fatal(err)
			}
			if ik.NumSurfaces > 1 {
				if err := ko.SetBuffer(1, out); err != nil {
					t.Fatal(err)
				}
			}
		}
		kernels[k.Name] = ko
	}
	for _, s := range steps {
		ko := kernels[s.Kernel]
		if p.Kernel(s.Kernel).NumArgs > 0 {
			if err := ko.SetArg(0, s.Iters); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.EnqueueNDRangeKernel(ko, s.GWS); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	final := make([]byte, out.Size())
	copy(final, out.Device().Bytes())
	if g != nil {
		return final, g.Records()
	}
	return final, nil
}

// TestRetargetRoundTripStructural: GEN → GENX → GEN is the identity on
// kernels with no W2 (nothing to legalize, so the instruction streams
// never change — only the dialect tag does).
func TestRetargetRoundTripStructural(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := testgen.Program(rng, fmt.Sprintf("rt%d", trial), testgen.DefaultConfig())
		px, err := RetargetProgram(p, isa.DialectGENX)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range px.Kernels {
			if k.Dialect != isa.DialectGENX {
				t.Fatalf("kernel %s dialect = %v", k.Name, k.Dialect)
			}
			if err := k.Validate(); err != nil {
				t.Fatalf("retargeted kernel invalid: %v", err)
			}
		}
		back, err := RetargetProgram(px, isa.DialectGEN)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatal("GEN → GENX → GEN did not round-trip")
		}
	}
}

// TestRetargetIdempotent: retargeting to the current dialect is a
// no-op returning the same pointers.
func TestRetargetIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := testgen.Program(rng, "noop", testgen.DefaultConfig())
	same, err := RetargetProgram(p, isa.DialectGEN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Kernels {
		if same.Kernels[i] != p.Kernels[i] {
			t.Fatal("same-dialect retarget copied a kernel")
		}
	}
}

// TestTranslateBinaryMatchesRecompile: translating a compiled GENX
// binary to GEN yields byte-identical code to compiling the
// GEN-retargeted IR directly — decode∘retarget∘encode commutes with
// the JIT.
func TestTranslateBinaryMatchesRecompile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := testgen.Program(rng, "comm", testgen.DefaultConfig())
	px, err := RetargetProgram(p, isa.DialectGENX)
	if err != nil {
		t.Fatal(err)
	}
	for i, kx := range px.Kernels {
		binX, err := jit.Compile(kx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TranslateBinary(binX, isa.DialectGEN)
		if err != nil {
			t.Fatal(err)
		}
		want, err := jit.Compile(p.Kernels[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Code, want.Code) {
			t.Fatalf("kernel %s: translated bytes differ from direct compile", kx.Name)
		}
		// Already at the target: same pointer back.
		same, err := TranslateBinary(got, isa.DialectGEN)
		if err != nil {
			t.Fatal(err)
		}
		if same != got {
			t.Error("same-dialect translate did not return its input")
		}
	}
}

// w2Kernel builds a GEN kernel exercising every legalization shape:
// a W2 ALU op, a W2 compare whose flags a later full-width sel
// consumes, a predicated W2 op under live flags, and full-width stores
// that make every destination lane observable.
func w2Kernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	a := asm.NewKernel("w2", isa.W8)
	in := a.Surface(0)
	out := a.Surface(1)
	addr := a.Temp()
	v := a.Temp()
	acc := a.Temp()
	selr := a.Temp()
	pv := a.Temp()
	addr2 := a.Temp()

	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Load(v, addr, in, 4)
	a.Mov(acc, asm.R(v))
	a.Mov(pv, asm.R(v))

	// W2 ALU: only lanes 0-1 of acc change.
	a.SetWidth(isa.W2)
	a.Add(acc, asm.R(acc), asm.I(5))
	// W2 compare: only flag lanes 0-1 change.
	a.Cmp(isa.CondLT, asm.R(v), asm.I(128))
	a.SetWidth(0)

	// Full-width sel consumes the merged flag vector.
	a.Sel(selr, asm.R(v), asm.I(7))

	// Predicated W2 op under the live flags.
	a.SetWidth(isa.W2)
	a.SetPred(isa.PredOn)
	a.Mov(pv, asm.R(selr))
	a.SetPred(isa.PredNoneMode)
	a.SetWidth(0)

	a.Store(out, addr, acc, 4)
	a.AddI(addr2, addr, 1<<9)
	a.Store(out, addr2, selr, 4)
	a.AddI(addr2, addr, 1<<10)
	a.Store(out, addr2, pv, 4)
	a.End()

	k, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestWidthLegalizationEquivalence is the semantic heart of the
// translator: a GEN kernel full of W2 operations and its legalized
// GENX translation must produce byte-identical memory images.
func TestWidthLegalizationEquivalence(t *testing.T) {
	k := w2Kernel(t)
	p, err := asm.Program("w2app", k)
	if err != nil {
		t.Fatal(err)
	}
	steps := []testgen.DriverStep{{Kernel: "w2", GWS: 64, Iters: 1}}

	before := mLegalizations.Load()
	px, err := RetargetProgram(p, isa.DialectGENX)
	if err != nil {
		t.Fatal(err)
	}
	if got := mLegalizations.Load() - before; got < 3 {
		t.Errorf("xlate_width_legalizations_total advanced by %d, want >= 3", got)
	}
	for _, b := range px.Kernels[0].Blocks {
		for _, in := range b.Instrs {
			if in.Width == isa.W2 {
				t.Fatal("W2 instruction survived legalization")
			}
		}
	}

	native, _ := runProgram(t, p, steps, false)
	translated, _ := runProgram(t, px, steps, false)
	if !bytes.Equal(native, translated) {
		t.Fatal("legalized GENX run diverged from the native GEN run")
	}
}

// TestLegalizedNarrowDispatch: a W1-dispatch kernel with W2 ops takes
// the plain-widening path (no mask preamble) and stays equivalent.
func TestLegalizedNarrowDispatch(t *testing.T) {
	a := asm.NewKernel("narrow", isa.W1)
	in := a.Surface(0)
	out := a.Surface(1)
	addr := a.Temp()
	v := a.Temp()
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Load(v, addr, in, 4)
	a.SetWidth(isa.W2)
	a.Add(v, asm.R(v), asm.I(3))
	a.SetWidth(0)
	a.Store(out, addr, v, 4)
	a.End()
	k, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Program("narrowapp", k)
	if err != nil {
		t.Fatal(err)
	}
	px, err := RetargetProgram(p, isa.DialectGENX)
	if err != nil {
		t.Fatal(err)
	}
	steps := []testgen.DriverStep{{Kernel: "narrow", GWS: 16, Iters: 1}}
	native, _ := runProgram(t, p, steps, false)
	translated, _ := runProgram(t, px, steps, false)
	if !bytes.Equal(native, translated) {
		t.Fatal("narrow-dispatch legalization diverged")
	}
}

// TestDifferentialCrossDialect is the cross-ISA differential property:
// seeded programs (no W2, so translation is a pure re-encode) must
// produce identical memory images, dynamic basic-block vectors,
// opcode-class counts, and send byte totals when run natively on GEN
// and retargeted to GENX. Timing is excluded by design — the dialects
// have different issue costs.
func TestDifferentialCrossDialect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := testgen.DefaultConfig()
	for trial := 0; trial < 10; trial++ {
		trial := trial
		p := testgen.Program(rng, fmt.Sprintf("xd%d", trial), cfg)
		steps := testgen.Driver(rng, p, 4+rng.Intn(6), cfg)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			px, err := RetargetProgram(p, isa.DialectGENX)
			if err != nil {
				t.Fatal(err)
			}
			memG, recsG := runProgram(t, p, steps, true)
			memX, recsX := runProgram(t, px, steps, true)
			if !bytes.Equal(memG, memX) {
				t.Fatal("memory images diverged across dialects")
			}
			if len(recsG) != len(recsX) {
				t.Fatalf("record counts diverged: %d vs %d", len(recsG), len(recsX))
			}
			for i := range recsG {
				g, x := recsG[i], recsX[i]
				if !reflect.DeepEqual(g.BlockCounts, x.BlockCounts) {
					t.Errorf("invocation %d: BBVs diverged:\ngen:  %v\ngenx: %v", i, g.BlockCounts, x.BlockCounts)
				}
				if g.ByCategory != x.ByCategory {
					t.Errorf("invocation %d: class counts diverged: %v vs %v", i, g.ByCategory, x.ByCategory)
				}
				if g.BytesRead != x.BytesRead || g.BytesWritten != x.BytesWritten {
					t.Errorf("invocation %d: send bytes diverged: %d/%d vs %d/%d",
						i, g.BytesRead, g.BytesWritten, x.BytesRead, x.BytesWritten)
				}
				if g.Instrs != x.Instrs {
					t.Errorf("invocation %d: instruction counts diverged: %d vs %d", i, g.Instrs, x.Instrs)
				}
			}
		})
	}
}

// TestUntranslatableCases enumerates every refusal, each classified
// under faults.ErrUntranslatable.
func TestUntranslatableCases(t *testing.T) {
	build := func(f func(a *asm.KernelBuilder)) *kernel.Kernel {
		t.Helper()
		a := asm.NewKernel("u", isa.W8)
		in := a.Surface(0)
		addr := a.Temp()
		v := a.Temp()
		a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
		a.Load(v, addr, in, 4)
		f(a)
		a.End()
		k, err := a.Build()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	cases := []struct {
		name string
		k    func() *kernel.Kernel
	}{
		{"W2 dispatch", func() *kernel.Kernel {
			a := asm.NewKernel("u", isa.W2)
			a.End()
			k, err := a.Build()
			if err != nil {
				t.Fatal(err)
			}
			return k
		}},
		{"W2 send", func() *kernel.Kernel {
			return build(func(a *asm.KernelBuilder) {
				s := a.Surface(0)
				v := a.Temp()
				addr := a.Temp()
				a.SetWidth(isa.W2)
				a.Load(v, addr, s, 4)
				a.SetWidth(0)
			})
		}},
		{"W2 br", func() *kernel.Kernel {
			return build(func(a *asm.KernelBuilder) {
				v := a.Temp()
				a.Label("top")
				a.AddI(v, v, 1)
				a.CmpI(isa.CondLT, v, 2)
				a.SetWidth(isa.W2)
				a.Br(isa.BranchAny, "top")
				a.SetWidth(0)
			})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := c.k()
			_, err := RetargetKernel(k, isa.DialectGENX)
			if err == nil {
				t.Fatal("expected ErrUntranslatable")
			}
			if !errors.Is(err, faults.ErrUntranslatable) {
				t.Fatalf("error %v is not ErrUntranslatable", err)
			}
		})
	}

	// Loop back into the entry block, constructed by hand.
	k := &kernel.Kernel{
		Name: "entry-loop", SIMD: isa.W8,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{
				{Op: isa.OpAdd, Width: isa.W2, Dst: kernel.FirstFreeReg,
					Src0: isa.R(kernel.FirstFreeReg), Src1: isa.Imm(1)},
				{Op: isa.OpCmp, Width: isa.W8, Cond: isa.CondLT,
					Src0: isa.R(kernel.FirstFreeReg), Src1: isa.Imm(4)},
				{Op: isa.OpBr, Width: isa.W8, BrMode: isa.BranchAny, Target: 0},
			}},
			{ID: 1, Instrs: []isa.Instruction{{Op: isa.OpEnd, Width: isa.W8}}},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("hand-built kernel invalid: %v", err)
	}
	if _, err := RetargetKernel(k, isa.DialectGENX); !errors.Is(err, faults.ErrUntranslatable) {
		t.Errorf("entry-block loop: got %v, want ErrUntranslatable", err)
	}

	// Register exhaustion: a kernel touching r87 leaves no room for the
	// six legalization registers below GENX's scratch band at r88.
	k = &kernel.Kernel{
		Name: "pressure", SIMD: isa.W8,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{
				{Op: isa.OpAdd, Width: isa.W2, Dst: 87,
					Src0: isa.R(87), Src1: isa.Imm(1)},
				{Op: isa.OpEnd, Width: isa.W8},
			}},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("pressure kernel invalid: %v", err)
	}
	if _, err := RetargetKernel(k, isa.DialectGENX); !errors.Is(err, faults.ErrUntranslatable) {
		t.Errorf("register exhaustion: got %v, want ErrUntranslatable", err)
	}

	// Instrumented binaries are refused by TranslateBinary.
	ik := &kernel.Kernel{
		Name: "inst", SIMD: isa.W8,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{
				{Op: isa.OpMovi, Width: isa.W1, Dst: isa.ScratchBase,
					Src0: isa.Imm(1), Injected: true},
				{Op: isa.OpEnd, Width: isa.W8},
			}},
		},
	}
	bin, err := jit.Compile(ik)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TranslateBinary(bin, isa.DialectGENX); !errors.Is(err, faults.ErrUntranslatable) {
		t.Errorf("instrumented binary: got %v, want ErrUntranslatable", err)
	}
}

// TestDriverTransformsEndToEnd wires the process-default transforms the
// way the -dialect/-translate flags do and checks results survive the
// full native-vs-retargeted-vs-translated-back loop.
func TestDriverTransformsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := testgen.Program(rng, "e2e", testgen.DefaultConfig())
	steps := testgen.Driver(rng, p, 5, testgen.DefaultConfig())

	native, _ := runProgram(t, p, steps, false)

	// -dialect genx: the workload behaves as if authored for GENX.
	cl.SetDefaultProgramTransform(func(ir *kernel.Program) (*kernel.Program, error) {
		return RetargetProgram(ir, isa.DialectGENX)
	})
	// -translate gen: every compiled binary is translated back to GEN
	// below the instrumentation layer.
	cl.SetDefaultBinaryTransform(func(bin *jit.Binary) (*jit.Binary, error) {
		return TranslateBinary(bin, isa.DialectGEN)
	})
	defer cl.SetDefaultProgramTransform(nil)
	defer cl.SetDefaultBinaryTransform(nil)

	transformed, recs := runProgram(t, p, steps, true)
	if !bytes.Equal(native, transformed) {
		t.Fatal("transform round-trip perturbed results")
	}
	if len(recs) == 0 {
		t.Fatal("no instrumentation records from the translated run")
	}
	for _, r := range recs {
		if r.Instrs == 0 {
			t.Errorf("invocation %d: no instructions counted", r.Seq)
		}
	}
}
