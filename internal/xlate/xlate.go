// Package xlate translates kernels and device binaries between ISA
// dialects: it decodes the source dialect's binary surface into the
// dialect-neutral kernel IR, legalizes any construct the target dialect
// cannot express (today: SIMD widths outside the target's width set),
// and re-encodes through the target dialect's JIT path.
//
// Translation preserves observable architectural behaviour: memory
// images, dynamic basic-block counts (BBVs), and send traffic are
// byte-identical between a native run and a translated run of the same
// program — the cross-ISA differential tests enforce it. Timing is
// deliberately NOT preserved: the whole point of retargeting is that
// the target dialect's issue costs apply.
//
// Width legalization. GENX lacks W2, and the ISA has no lane
// addressing, so a W2 operation cannot be narrowed or naively widened
// — a W4 op would clobber observable destination lanes 2-3 and flag
// lanes 2-3. Instead each W2 operation is widened inside a save/merge
// "sandwich" built from a per-kernel lane mask: the entry block
// computes mask[l] = (gid&(SIMD-1)) < 2 once per channel-group, and
// every legalized op saves the live flags and destination lanes, runs
// at W4, then merges lanes 2-3 back and restores the flags. Constructs
// with no sound expansion (W2 sends, W2 flag-reducing branches, W2
// dispatch widths, loops back into the entry block) are refused with
// faults.ErrUntranslatable.
package xlate

import (
	"fmt"

	"gtpin/internal/faults"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// RetargetProgram returns a copy of the program retargeted to the
// given dialect; kernels already in the target dialect are shared, not
// copied. The program name is preserved.
func RetargetProgram(p *kernel.Program, target isa.Dialect) (*kernel.Program, error) {
	if !target.Valid() {
		return nil, fmt.Errorf("xlate: invalid target dialect %d: %w", uint8(target), faults.ErrBadConfig)
	}
	out := &kernel.Program{Name: p.Name, Kernels: make([]*kernel.Kernel, len(p.Kernels))}
	for i, k := range p.Kernels {
		rk, err := RetargetKernel(k, target)
		if err != nil {
			return nil, err
		}
		out.Kernels[i] = rk
	}
	return out, nil
}

// RetargetKernel returns the kernel retargeted to the given dialect,
// legalizing widths the target lacks. A kernel already in the target
// dialect is returned unchanged (same pointer). The result validates
// under the target dialect's width set and register geometry.
func RetargetKernel(k *kernel.Kernel, target isa.Dialect) (*kernel.Kernel, error) {
	if !target.Valid() {
		return nil, fmt.Errorf("xlate: invalid target dialect %d: %w", uint8(target), faults.ErrBadConfig)
	}
	if k.Dialect == target {
		return k, nil
	}
	if !target.WidthValid(k.SIMD) {
		return nil, fmt.Errorf("xlate: kernel %s: dispatch width %d not in dialect %s: %w",
			k.Name, k.SIMD, target, faults.ErrUntranslatable)
	}
	out := &kernel.Kernel{
		Name:        k.Name,
		Dialect:     target,
		SIMD:        k.SIMD,
		NumArgs:     k.NumArgs,
		NumSurfaces: k.NumSurfaces,
		Blocks:      make([]*kernel.Block, len(k.Blocks)),
	}
	leg := &legalizer{k: k, target: target}
	for i, b := range k.Blocks {
		nb, err := leg.block(b)
		if err != nil {
			return nil, err
		}
		out.Blocks[i] = nb
	}
	if leg.allocated {
		// The mask sandwich was used: prepend the once-per-group mask
		// preamble. Plain widens (narrow dispatches) need none.
		if err := leg.checkPreambleSafe(); err != nil {
			return nil, err
		}
		pre := leg.preamble()
		entry := out.Blocks[0]
		out.Blocks[0] = &kernel.Block{ID: 0, Instrs: append(pre, entry.Instrs...)}
	}
	if leg.legalized > 0 {
		mLegalizations.Add(uint64(leg.legalized))
	}
	mKernels.Inc()
	return out, nil
}

// TranslateBinary translates a compiled device binary to the target
// dialect: decode through the source dialect named in the binary's
// header, retarget the IR, re-encode through the target's JIT path. A
// binary already in the target dialect is returned unchanged (same
// pointer). Instrumented binaries (any Injected instruction) are
// refused: injected code uses the source dialect's scratch band and
// must be re-injected, not translated — run the translator below
// GT-Pin, never above it.
func TranslateBinary(bin *jit.Binary, target isa.Dialect) (*jit.Binary, error) {
	d, err := jit.BinaryDialect(bin)
	if err != nil {
		return nil, fmt.Errorf("xlate: %w", err)
	}
	if d == target {
		return bin, nil
	}
	k, err := jit.Decode(bin)
	if err != nil {
		return nil, fmt.Errorf("xlate: %w", err)
	}
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Injected {
				return nil, fmt.Errorf("xlate: kernel %s: cannot translate an instrumented binary: %w",
					k.Name, faults.ErrUntranslatable)
			}
		}
	}
	rk, err := RetargetKernel(k, target)
	if err != nil {
		return nil, err
	}
	out, err := jit.Compile(rk)
	if err != nil {
		return nil, fmt.Errorf("xlate: kernel %s: re-encode for %s: %w", k.Name, target, err)
	}
	return out, nil
}

// legalizer rewrites one kernel's blocks for a target width set. The
// scratch registers live directly above the kernel's highest used
// register (and below the target's instrumentation band): x0/x1 hold
// the constants 0 and 1, xm the persistent 0/1 lane mask, xf the saved
// flags, xs the saved destination lanes, xt a transient.
type legalizer struct {
	k      *kernel.Kernel
	target isa.Dialect

	legalized int // widened instructions (the metric and preamble trigger)
	allocated bool
	x0, x1    isa.Reg
	xm, xf    isa.Reg
	xs, xt    isa.Reg
}

// legalizeWidth is the width W2 operations widen to.
const legalizeWidth = isa.W4

// alloc places the six scratch registers, failing if the kernel leaves
// no room below the target's scratch band.
func (lg *legalizer) alloc() error {
	if lg.allocated {
		return nil
	}
	base := isa.Reg(kernel.FirstFreeReg)
	for _, b := range lg.k.Blocks {
		for _, in := range b.Instrs {
			for _, r := range instrRegs(in) {
				if r+1 > base {
					base = r + 1
				}
			}
		}
	}
	if int(base)+6 > int(lg.target.ScratchBase()) {
		return fmt.Errorf("xlate: kernel %s: no free registers for width legalization (r%d..r%d needed, scratch band at r%d): %w",
			lg.k.Name, base, base+5, lg.target.ScratchBase(), faults.ErrUntranslatable)
	}
	lg.x0, lg.x1 = base, base+1
	lg.xm, lg.xf = base+2, base+3
	lg.xs, lg.xt = base+4, base+5
	lg.allocated = true
	return nil
}

// instrRegs lists every register an instruction names (destination and
// register sources), for the free-register scan.
func instrRegs(in isa.Instruction) []isa.Reg {
	regs := make([]isa.Reg, 0, 4)
	if in.Op != isa.OpCmp && !in.Op.IsControl() {
		regs = append(regs, in.Dst)
	}
	for _, s := range []isa.Operand{in.Src0, in.Src1, in.Src2} {
		if s.Kind == isa.OperandReg {
			regs = append(regs, s.Reg)
		}
	}
	return regs
}

// checkPreambleSafe refuses kernels whose control flow re-enters block
// 0: the preamble snapshots lane indices from the pristine dispatch
// GID register and resets the flag vector, both valid only at
// channel-group entry.
func (lg *legalizer) checkPreambleSafe() error {
	for _, b := range lg.k.Blocks {
		for _, s := range b.Succs() {
			if s == 0 {
				return fmt.Errorf("xlate: kernel %s: block %d branches to the entry block, which needs a legalization preamble: %w",
					lg.k.Name, b.ID, faults.ErrUntranslatable)
			}
		}
	}
	return nil
}

// preamble builds the once-per-group mask setup prepended to block 0:
//
//	movi x0, #0        (S)   constants for flag<->GRF round-trips
//	movi x1, #1        (S)
//	mov  xt, gid       (W4)  lane index = gid & (SIMD-1)
//	and  xt, xt, #S-1  (W4)
//	cmp.lt xt, #2      (W4)  flag[l] = lane < 2
//	sel  xm, x1, x0    (W4)  xm = mask as 0/1
//	cmp.lt xt, xt      (S)   leave a deterministic all-false flag vector
func (lg *legalizer) preamble() []isa.Instruction {
	s := lg.k.SIMD
	return []isa.Instruction{
		{Op: isa.OpMovi, Width: s, Dst: lg.x0, Src0: isa.Imm(0)},
		{Op: isa.OpMovi, Width: s, Dst: lg.x1, Src0: isa.Imm(1)},
		{Op: isa.OpMov, Width: legalizeWidth, Dst: lg.xt, Src0: isa.R(kernel.GIDReg)},
		{Op: isa.OpAnd, Width: legalizeWidth, Dst: lg.xt, Src0: isa.R(lg.xt), Src1: isa.Imm(uint32(s) - 1)},
		{Op: isa.OpCmp, Width: legalizeWidth, Cond: isa.CondLT, Src0: isa.R(lg.xt), Src1: isa.Imm(uint32(isa.W2))},
		{Op: isa.OpSel, Width: legalizeWidth, Dst: lg.xm, Src0: isa.R(lg.x1), Src1: isa.R(lg.x0)},
		{Op: isa.OpCmp, Width: s, Cond: isa.CondLT, Src0: isa.R(lg.xt), Src1: isa.R(lg.xt)},
	}
}

// block rewrites one block for the target width set.
func (lg *legalizer) block(b *kernel.Block) (*kernel.Block, error) {
	out := make([]isa.Instruction, 0, len(b.Instrs))
	for _, in := range b.Instrs {
		if lg.target.WidthValid(in.Width) {
			out = append(out, in)
			continue
		}
		seq, err := lg.legalize(in, b.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, seq...)
	}
	return &kernel.Block{ID: b.ID, Instrs: out}, nil
}

// legalize expands one instruction whose width the target lacks.
func (lg *legalizer) legalize(in isa.Instruction, blockID int) ([]isa.Instruction, error) {
	switch {
	case in.Op == isa.OpBr:
		// The branch reduces the flag vector over min(width, active)
		// lanes; widening would fold lanes 2-3 into the decision and
		// the flags cannot be restored after a terminator.
		return nil, fmt.Errorf("xlate: kernel %s: block %d: %s at width %d reduces flags the target cannot express: %w",
			lg.k.Name, blockID, in.Op, in.Width, faults.ErrUntranslatable)
	case in.Op.IsControl():
		// jmp/call/ret/end ignore their width entirely.
		in.Width = isa.W1
		return []isa.Instruction{in}, nil
	case in.Op.IsSend():
		// A widened send moves more bytes (and more channels) than the
		// original; traffic is observable, so there is no sound expansion.
		return nil, fmt.Errorf("xlate: kernel %s: block %d: %s at width %d moves width-dependent traffic: %w",
			lg.k.Name, blockID, in.Op, in.Width, faults.ErrUntranslatable)
	}

	if int(lg.k.SIMD) < int(legalizeWidth) {
		// Dispatch narrower than the widened width: lanes at or above
		// the active count never reach memory, branch reductions, or
		// block counters, so plain widening is sound.
		lg.legalized++
		in.Width = legalizeWidth
		return []isa.Instruction{in}, nil
	}

	if err := lg.alloc(); err != nil {
		return nil, err
	}
	lg.legalized++
	s := lg.k.SIMD
	w := legalizeWidth
	saveFlags := isa.Instruction{Op: isa.OpSel, Width: s, Dst: lg.xf, Src0: isa.R(lg.x1), Src1: isa.R(lg.x0)}
	restoreFlags := isa.Instruction{Op: isa.OpCmp, Width: s, Cond: isa.CondNE, Src0: isa.R(lg.xf), Src1: isa.Imm(0)}
	maskToFlags := isa.Instruction{Op: isa.OpCmp, Width: w, Cond: isa.CondNE, Src0: isa.R(lg.xm), Src1: isa.Imm(0)}

	if in.Op == isa.OpCmp {
		// Widen the compare, then merge new flag lanes 0-1 with the
		// saved lanes 2-3 through the 0/1 mask:
		//   xf = old flags; cmp' (W4); xt = new flags (0/1);
		//   flags = mask; xf = sel(xt, xf); flags = xf != 0.
		wide := in
		wide.Width = w
		return []isa.Instruction{
			saveFlags,
			wide,
			{Op: isa.OpSel, Width: w, Dst: lg.xt, Src0: isa.R(lg.x1), Src1: isa.R(lg.x0)},
			maskToFlags,
			{Op: isa.OpSel, Width: w, Dst: lg.xf, Src0: isa.R(lg.xt), Src1: isa.R(lg.xf)},
			restoreFlags,
		}, nil
	}

	// ALU (including sel/mov/movi/math): save flags and the destination
	// lanes the widened op may clobber, run at W4 under the original
	// predication (the live flags are still intact), then merge lanes
	// 2-3 back and restore the flags.
	wide := in
	wide.Width = w
	return []isa.Instruction{
		saveFlags,
		{Op: isa.OpMov, Width: w, Dst: lg.xs, Src0: isa.R(in.Dst)},
		wide,
		maskToFlags,
		{Op: isa.OpSel, Width: w, Dst: in.Dst, Src0: isa.R(in.Dst), Src1: isa.R(lg.xs)},
		restoreFlags,
	}, nil
}
