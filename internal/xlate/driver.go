package xlate

import (
	"flag"
	"fmt"

	"gtpin/internal/cl"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// Flags holds the command-line surface of the translator, shared by
// every harness binary (characterize, validate, subsets).
type Flags struct {
	Dialect   *string
	Translate *string
}

// RegisterFlags registers -dialect and -translate on the flag set.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		Dialect: fs.String("dialect", "",
			"retarget every program's IR to this ISA dialect before compilation (gen or genx)"),
		Translate: fs.String("translate", "",
			"binary-translate every compiled kernel to this ISA dialect before instrumentation (gen or genx)"),
	}
}

// Install applies the parsed flags: -dialect installs a process-wide
// program transform that retargets IR as it enters the driver (the
// workload now behaves as if authored for that dialect), and -translate
// installs a process-wide binary transform that runs the cross-ISA
// translator on every compiled kernel, below GT-Pin's rewriter. Both
// are idempotent on already-matching input, so either may be combined
// with any workload. Call once at startup, before any context exists;
// fleet worker processes re-exec with the parent's arguments, so the
// same installation happens in every shard.
func (f *Flags) Install() error {
	if *f.Dialect != "" {
		d, err := isa.ParseDialect(*f.Dialect)
		if err != nil {
			return fmt.Errorf("-dialect: %w", err)
		}
		cl.SetDefaultProgramTransform(func(ir *kernel.Program) (*kernel.Program, error) {
			return RetargetProgram(ir, d)
		})
	}
	if *f.Translate != "" {
		d, err := isa.ParseDialect(*f.Translate)
		if err != nil {
			return fmt.Errorf("-translate: %w", err)
		}
		cl.SetDefaultBinaryTransform(func(bin *jit.Binary) (*jit.Binary, error) {
			return TranslateBinary(bin, d)
		})
	}
	return nil
}
