package xlate

import "gtpin/internal/obs"

// Observability for the binary translator. Kernel counts measure how
// much of a workload crossed the translator; legalization counts
// measure how much of it needed width rewriting — a workload with
// zero legalizations translates by pure re-encoding, so any
// cross-dialect result divergence cannot be blamed on the sandwich.
var (
	mKernels = obs.DefaultCounter("xlate_kernels_total",
		"kernels retargeted to another ISA dialect")
	mLegalizations = obs.DefaultCounter("xlate_width_legalizations_total",
		"instructions rewritten because the target dialect lacks their width")
)
