package device

import (
	"fmt"

	"gtpin/internal/faults"
	"gtpin/internal/isa"
)

// execSend performs the memory message of a send instruction. Only
// channels below active (the dispatch mask) and enabled by predication
// participate in gather/scatter/atomic messages; block messages move the
// full SIMD width addressed by channel 0.
func (d *Device) execSend(in *isa.Instruction, disp Dispatch, width, active int, groupCycles uint64, st *ExecStats) error {
	st.Sends++
	if d.curInv.SendFault(st.Sends) {
		return fmt.Errorf("send %s (transaction %d): %w", in.Msg.Kind, st.Sends, faults.ErrSendFault)
	}
	msg := in.Msg
	switch msg.Kind {
	case isa.MsgEOT:
		return nil
	case isa.MsgTimer:
		d.grf[in.Dst][0] = uint32(d.cycles + groupCycles)
		return nil
	}

	if int(msg.Surface) >= len(disp.Surfaces) {
		return fmt.Errorf("send %s: surface %d not bound: %w", msg.Kind, msg.Surface, faults.ErrInvalidDispatch)
	}
	surf := disp.Surfaces[msg.Surface]
	elem := int(msg.ElemBytes)
	addrs := &d.grf[in.Src0.Reg]

	switch msg.Kind {
	case isa.MsgLoad:
		dst := &d.grf[in.Dst]
		for i := 0; i < active; i++ {
			if d.laneEnabled(in.Pred, i) {
				dst[i] = uint32(surf.LoadElem(addrs[i], elem))
				st.BytesRead += uint64(elem)
			}
		}
	case isa.MsgStore:
		data := &d.grf[in.Src1.Reg]
		for i := 0; i < active; i++ {
			if d.laneEnabled(in.Pred, i) {
				surf.StoreElem(addrs[i], elem, uint64(data[i]))
				st.BytesWritten += uint64(elem)
			}
		}
	case isa.MsgLoadBlock:
		dst := &d.grf[in.Dst]
		base := addrs[0]
		for i := 0; i < width; i++ {
			dst[i] = uint32(surf.LoadElem(base+uint32(i*elem), elem))
		}
		st.BytesRead += uint64(elem * width)
	case isa.MsgStoreBlock:
		data := &d.grf[in.Src1.Reg]
		base := addrs[0]
		for i := 0; i < width; i++ {
			surf.StoreElem(base+uint32(i*elem), elem, uint64(data[i]))
		}
		st.BytesWritten += uint64(elem * width)
	case isa.MsgAtomicAdd:
		data := &d.grf[in.Src1.Reg]
		dst := &d.grf[in.Dst]
		for i := 0; i < active; i++ {
			if d.laneEnabled(in.Pred, i) {
				old := surf.AtomicAdd(addrs[i], elem, uint64(data[i]))
				dst[i] = uint32(old)
				st.BytesRead += uint64(elem)
				st.BytesWritten += uint64(elem)
			}
		}
	default:
		return fmt.Errorf("send: unsupported message kind %s", msg.Kind)
	}
	return nil
}
