package device

import (
	"fmt"

	"gtpin/internal/faults"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// Dispatch describes one kernel invocation: the compiled binary, scalar
// arguments, bound surfaces, and the global work size (total work-items).
type Dispatch struct {
	Binary   *jit.Binary
	Args     []uint32
	Surfaces []*Buffer
	// GlobalWorkSize is the total number of work-items; the device runs
	// ceil(GlobalWorkSize/SIMD) channel-groups.
	GlobalWorkSize int
}

// ExecStats reports what one dispatch did, measured directly by the
// device (the "ground truth" that GT-Pin's instrumentation-derived
// profiles are validated against in tests). Counts include any injected
// instrumentation instructions, since the device has no notion of which
// instructions are original.
type ExecStats struct {
	Groups        int     // channel-groups executed
	Instrs        uint64  // dynamic instructions executed
	Sends         uint64  // send instructions executed
	BytesRead     uint64  // bytes read from surfaces
	BytesWritten  uint64  // bytes written to surfaces
	ComputeCycles uint64  // summed per-thread execution cycles
	TimeNs        float64 // modelled wall-clock time of the dispatch

	// Resilience bookkeeping, filled by the cl layer's resilient drain.
	// All three stay zero-valued on the fault-free path, so profiles from
	// injection-free runs are unchanged.
	Attempts  int     // execution attempts consumed (0 or 1 = no retries)
	Degraded  bool    // final attempt ran on the degraded fallback config
	BackoffNs float64 // modelled retry backoff delay, not in TimeNs
}

// maxGroupInstrs bounds dynamic instructions per channel-group, as a
// runaway-loop backstop.
const maxGroupInstrs = 64 << 20

// instruction base costs in EU cycles, indexed by opcode.
var instrCost = func() [isa.NumOpcodes]uint32 {
	var c [isa.NumOpcodes]uint32
	for op := isa.Opcode(1); int(op) < isa.NumOpcodes; op++ {
		switch {
		case op == isa.OpMath:
			c[op] = 8
		case op == isa.OpMul || op == isa.OpMach || op == isa.OpMad:
			c[op] = 2
		case op.IsControl():
			c[op] = 2
		case op.IsSend():
			c[op] = 4 // issue cost; latency modelled at dispatch level
		default:
			c[op] = 1
		}
	}
	return c
}()

// The interpreter's first-level dispatch collapses the opcode space into
// five classes, so the hot loop pays one dense table lookup instead of a
// sparse opcode switch; only control flow then re-examines the opcode.
const (
	classALU = iota
	classControl
	classEnd
	classSend
	classCmp
)

var opClass = func() [isa.NumOpcodes]uint8 {
	var t [isa.NumOpcodes]uint8
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		switch {
		case op == isa.OpEnd:
			t[op] = classEnd
		case op.IsControl():
			t[op] = classControl
		case op.IsSend():
			t[op] = classSend
		case op == isa.OpCmp:
			t[op] = classCmp
		default:
			t[op] = classALU
		}
	}
	return t
}()

// Device is one GPU instance. It owns a decoded-binary cache and the
// interpreter scratch state; it is not safe for concurrent use, matching
// a single in-order command queue.
type Device struct {
	cfg        Config
	cycles     uint64 // device timestamp counter, advanced per dispatch
	dispatches uint64 // dispatches completed, drives thermal drift
	jitter     *TimingJitter

	// Observability bookkeeping (metrics.go). id distinguishes trace
	// lanes between concurrent workers' devices; virtNs accumulates
	// modeled time so dispatch spans line up on a virtual timeline.
	// Neither feeds back into the timing model.
	id     uint64
	virtNs float64

	// watchdog is the per-enqueue dynamic-instruction budget; 0 keeps
	// only the per-group runaway backstop.
	watchdog uint64
	inj      *faults.Injector
	curInv   *faults.Invocation // fault plan of the dispatch in flight

	// memStallCycles is the per-send memory stall charged to a thread:
	// the wall-clock latency in cycles, divided by the EU's SMT depth
	// (co-resident threads hide most of each other's latency).
	memStallCycles uint64

	decoded map[*jit.Binary]*kernel.Kernel

	// Interpreter scratch, reused across groups. Register contents are
	// undefined at thread start, as on real hardware; kernels must write
	// registers before reading them.
	grf  [isa.NumRegs][isa.MaxWidth]uint32
	flag [isa.MaxWidth]bool
	imm  [3][isa.MaxWidth]uint32 // broadcast scratch for immediate operands
}

// New creates a device with the given configuration.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:            cfg,
		id:             deviceIDs.Add(1) - 1,
		decoded:        make(map[*jit.Binary]*kernel.Kernel),
		memStallCycles: uint64(cfg.MemLatencyNs * cfg.freqGHz() / float64(cfg.ThreadsPerEU)),
	}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Timestamp returns the device cycle counter, advanced as dispatches
// complete. The MsgTimer send reads this during execution.
func (d *Device) Timestamp() uint64 { return d.cycles }

// SetWatchdog installs a per-enqueue watchdog: any dispatch whose dynamic
// instruction count exceeds budget fails with faults.ErrWatchdogTimeout.
// A zero budget disables the watchdog, leaving only the per-group
// runaway-loop backstop.
func (d *Device) SetWatchdog(budget uint64) { d.watchdog = budget }

// WatchdogBudget returns the installed per-enqueue instruction budget
// (0 = disabled).
func (d *Device) WatchdogBudget() uint64 { return d.watchdog }

// SetFaultInjector installs a fault injector consulted on every dispatch;
// nil disables injection. The injector's draw counts advance per
// execution attempt, so it must not be shared across concurrently-running
// devices.
func (d *Device) SetFaultInjector(inj *faults.Injector) { d.inj = inj }

// FaultInjector returns the installed injector, or nil.
func (d *Device) FaultInjector() *faults.Injector { return d.inj }

// Jitter returns the installed timing jitter source, or nil.
func (d *Device) Jitter() *TimingJitter { return d.jitter }

// budget returns the effective per-enqueue instruction budget.
func (d *Device) budget() uint64 {
	if d.watchdog > 0 {
		return d.watchdog
	}
	return maxGroupInstrs
}

func (d *Device) kernelFor(bin *jit.Binary) (*kernel.Kernel, error) {
	if k, ok := d.decoded[bin]; ok {
		return k, nil
	}
	k, err := jit.Decode(bin)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	d.decoded[bin] = k
	return k, nil
}

// Run executes one dispatch to completion and returns its statistics.
func (d *Device) Run(disp Dispatch) (ExecStats, error) {
	var st ExecStats
	if disp.Binary == nil {
		return st, fmt.Errorf("device: dispatch has no binary: %w", faults.ErrInvalidDispatch)
	}
	k, err := d.kernelFor(disp.Binary)
	if err != nil {
		return st, err
	}
	if disp.GlobalWorkSize <= 0 {
		return st, fmt.Errorf("device: kernel %s: global work size %d: %w", k.Name, disp.GlobalWorkSize, faults.ErrInvalidDispatch)
	}
	if len(disp.Args) < k.NumArgs {
		return st, fmt.Errorf("device: kernel %s: %d args supplied, %d required: %w", k.Name, len(disp.Args), k.NumArgs, faults.ErrInvalidDispatch)
	}
	if len(disp.Surfaces) < k.NumSurfaces {
		return st, fmt.Errorf("device: kernel %s: %d surfaces bound, %d required: %w", k.Name, len(disp.Surfaces), k.NumSurfaces, faults.ErrInvalidDispatch)
	}
	for i, s := range disp.Surfaces {
		if s == nil {
			return st, fmt.Errorf("device: kernel %s: surface %d is nil: %w", k.Name, i, faults.ErrInvalidDispatch)
		}
	}

	d.curInv = d.inj.BeginInvocation(k.Name, 0)
	defer func() { d.curInv = nil }()
	if d.curInv.Hang() {
		// The kernel stops making forward progress; the watchdog detects
		// the hang once the enqueue's instruction budget is consumed.
		err := fmt.Errorf("device: kernel %s: %w: no forward progress after %d instructions: %w",
			k.Name, faults.ErrWatchdogTimeout, d.budget(), faults.ErrKernelHang)
		observeRunError(err)
		return st, err
	}

	width := int(k.SIMD)
	groups := (disp.GlobalWorkSize + width - 1) / width
	for g := 0; g < groups; g++ {
		active := disp.GlobalWorkSize - g*width
		if active > width {
			active = width
		}
		if err := d.runGroup(k, disp, g, active, &st); err != nil {
			err = fmt.Errorf("device: kernel %s group %d: %w", k.Name, g, err)
			observeRunError(err)
			return st, err
		}
	}
	if d.curInv.CorruptResult() {
		// Integrity checking rejects the dispatch; its side effects are
		// untrustworthy and the caller must replay from a clean snapshot.
		return st, fmt.Errorf("device: kernel %s: %w", k.Name, faults.ErrCorruptResult)
	}
	st.Groups = groups
	st.TimeNs = d.jitter.Perturb(d.cfg.dispatchTimeNs(&st) * d.thermalDrift())
	d.dispatches++
	d.cycles += uint64(st.TimeNs * d.cfg.freqGHz())
	d.observeDispatch(k.Name, &st)
	return st, nil
}

// operand resolves an instruction source to a channel vector. Immediates
// are broadcast into per-slot scratch.
func (d *Device) operand(o isa.Operand, slot, width int) *[isa.MaxWidth]uint32 {
	switch o.Kind {
	case isa.OperandReg:
		return &d.grf[o.Reg]
	case isa.OperandImm:
		s := &d.imm[slot]
		for i := 0; i < width; i++ {
			s[i] = o.Imm
		}
		return s
	}
	// OperandNone: a zero vector; reuse scratch.
	s := &d.imm[slot]
	for i := 0; i < width; i++ {
		s[i] = 0
	}
	return s
}

func (d *Device) runGroup(k *kernel.Kernel, disp Dispatch, group, active int, st *ExecStats) error {
	width := int(k.SIMD)

	// ABI setup: global IDs, group index, broadcast arguments.
	base := uint32(group * width)
	for l := 0; l < width; l++ {
		d.grf[kernel.GIDReg][l] = base + uint32(l)
	}
	for l := 0; l < width; l++ {
		d.grf[kernel.TIDReg][l] = uint32(group)
	}
	for i := 0; i < k.NumArgs; i++ {
		v := disp.Args[i]
		for l := 0; l < width; l++ {
			d.grf[kernel.ArgReg(i)][l] = v
		}
	}

	var retStack [16]int
	sp := 0
	blk := 0
	groupInstrs := uint64(0)
	groupCycles := uint64(0)

	for {
		if blk >= len(k.Blocks) {
			return fmt.Errorf("fell off end of kernel (block %d)", blk)
		}
		b := k.Blocks[blk]
		next := blk + 1
	body:
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			groupInstrs++
			groupCycles += uint64(instrCost[in.Op])
			if groupInstrs > maxGroupInstrs {
				return fmt.Errorf("%w: group exceeded %d instructions; runaway loop?", faults.ErrWatchdogTimeout, maxGroupInstrs)
			}
			if d.watchdog > 0 && st.Instrs+groupInstrs > d.watchdog {
				return fmt.Errorf("%w: enqueue exceeded its %d-instruction budget", faults.ErrWatchdogTimeout, d.watchdog)
			}

			iw := int(in.Width) // instruction execution width
			switch opClass[in.Op] {
			case classALU:
				d.execALU(in, iw)
			case classCmp:
				s0 := d.operand(in.Src0, 0, iw)
				s1 := d.operand(in.Src1, 1, iw)
				d.execCmp(in.Cond, s0, s1, iw)
			case classSend:
				sendActive := active
				if iw < sendActive {
					sendActive = iw
				}
				if err := d.execSend(in, disp, iw, sendActive, groupCycles, st); err != nil {
					return err
				}
				if in.Msg.Kind.Reads() || in.Msg.Kind.Writes() {
					// Charge the thread's SMT-amortized share of the memory
					// latency, so both the timing model and intra-thread
					// timer reads observe memory stall time.
					groupCycles += d.memStallCycles
				}
			case classEnd:
				st.Instrs += groupInstrs
				st.ComputeCycles += groupCycles
				return nil
			default: // classControl
				switch in.Op {
				case isa.OpJmp:
					next = int(in.Target)
				case isa.OpBr:
					// The branch reduces flags over its own execution width
					// (a scalar br considers only channel 0).
					ba := active
					if iw < ba {
						ba = iw
					}
					if d.reduceFlag(in.BrMode, ba) {
						next = int(in.Target)
					}
				case isa.OpCall:
					if sp == len(retStack) {
						return fmt.Errorf("call stack overflow")
					}
					retStack[sp] = blk + 1
					sp++
					next = int(in.Target)
				case isa.OpRet:
					if sp == 0 {
						return fmt.Errorf("ret with empty call stack")
					}
					sp--
					next = retStack[sp]
				}
				break body
			}
		}
		blk = next
	}
}

// reduceFlag reduces the flag vector over the first active channels.
func (d *Device) reduceFlag(mode isa.BranchMode, active int) bool {
	switch mode {
	case isa.BranchAny:
		for i := 0; i < active; i++ {
			if d.flag[i] {
				return true
			}
		}
		return false
	case isa.BranchAll:
		for i := 0; i < active; i++ {
			if !d.flag[i] {
				return false
			}
		}
		return true
	case isa.BranchNone:
		for i := 0; i < active; i++ {
			if d.flag[i] {
				return false
			}
		}
		return true
	}
	return false
}

func (d *Device) execCmp(cond isa.CondMod, s0, s1 *[isa.MaxWidth]uint32, width int) {
	for i := 0; i < width; i++ {
		a, b := s0[i], s1[i]
		var r bool
		switch cond {
		case isa.CondEQ:
			r = a == b
		case isa.CondNE:
			r = a != b
		case isa.CondLT:
			r = a < b
		case isa.CondLE:
			r = a <= b
		case isa.CondGT:
			r = a > b
		case isa.CondGE:
			r = a >= b
		case isa.CondLTS:
			r = int32(a) < int32(b)
		case isa.CondGTS:
			r = int32(a) > int32(b)
		}
		d.flag[i] = r
	}
}

// lanesEnabled reports whether channel i executes under the predication
// mode.
func (d *Device) laneEnabled(pred isa.PredMode, i int) bool {
	switch pred {
	case isa.PredOn:
		return d.flag[i]
	case isa.PredOff:
		return !d.flag[i]
	}
	return true
}

func (d *Device) execALU(in *isa.Instruction, width int) {
	s0 := d.operand(in.Src0, 0, width)
	s1 := d.operand(in.Src1, 1, width)
	dst := &d.grf[in.Dst]
	pred := in.Pred

	switch in.Op {
	case isa.OpMov, isa.OpMovi:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i]
			}
		}
	case isa.OpSel:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				if d.flag[i] {
					dst[i] = s0[i]
				} else {
					dst[i] = s1[i]
				}
			}
		}
	case isa.OpAnd:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] & s1[i]
			}
		}
	case isa.OpOr:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] | s1[i]
			}
		}
	case isa.OpXor:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] ^ s1[i]
			}
		}
	case isa.OpNot:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = ^s0[i]
			}
		}
	case isa.OpShl:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] << (s1[i] & 31)
			}
		}
	case isa.OpShr:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] >> (s1[i] & 31)
			}
		}
	case isa.OpAsr:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = uint32(int32(s0[i]) >> (s1[i] & 31))
			}
		}
	case isa.OpAdd:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] + s1[i]
			}
		}
	case isa.OpSub:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] - s1[i]
			}
		}
	case isa.OpMul:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i] * s1[i]
			}
		}
	case isa.OpMach:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = uint32((uint64(s0[i]) * uint64(s1[i])) >> 32)
			}
		}
	case isa.OpMad:
		s2 := d.operand(in.Src2, 2, width)
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = s0[i]*s1[i] + s2[i]
			}
		}
	case isa.OpMin:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				if s1[i] < s0[i] {
					dst[i] = s1[i]
				} else {
					dst[i] = s0[i]
				}
			}
		}
	case isa.OpMax:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				if s1[i] > s0[i] {
					dst[i] = s1[i]
				} else {
					dst[i] = s0[i]
				}
			}
		}
	case isa.OpAbs:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				v := int32(s0[i])
				if v < 0 {
					v = -v
				}
				dst[i] = uint32(v)
			}
		}
	case isa.OpAvg:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = uint32((uint64(s0[i]) + uint64(s1[i]) + 1) >> 1)
			}
		}
	case isa.OpMath:
		for i := 0; i < width; i++ {
			if d.laneEnabled(pred, i) {
				dst[i] = isa.EvalMath(in.Fn, s0[i], s1[i])
			}
		}
	}
}
