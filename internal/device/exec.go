package device

import (
	"fmt"

	"gtpin/internal/engine"
	"gtpin/internal/faults"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

// Dispatch describes one kernel invocation: the compiled binary, scalar
// arguments, bound surfaces, and the global work size (total work-items).
type Dispatch struct {
	Binary   *jit.Binary
	Args     []uint32
	Surfaces []*Buffer
	// GlobalWorkSize is the total number of work-items; the device runs
	// ceil(GlobalWorkSize/SIMD) channel-groups.
	GlobalWorkSize int
}

// ExecStats reports what one dispatch did, measured directly by the
// device (the "ground truth" that GT-Pin's instrumentation-derived
// profiles are validated against in tests). Counts include any injected
// instrumentation instructions, since the device has no notion of which
// instructions are original.
type ExecStats struct {
	Groups        int     // channel-groups executed
	Instrs        uint64  // dynamic instructions executed
	Sends         uint64  // send instructions executed
	BytesRead     uint64  // bytes read from surfaces
	BytesWritten  uint64  // bytes written to surfaces
	ComputeCycles uint64  // summed per-thread execution cycles
	TimeNs        float64 // modelled wall-clock time of the dispatch

	// Resilience bookkeeping, filled by the cl layer's resilient drain.
	// All three stay zero-valued on the fault-free path, so profiles from
	// injection-free runs are unchanged.
	Attempts  int     // execution attempts consumed (0 or 1 = no retries)
	Degraded  bool    // final attempt ran on the degraded fallback config
	BackoffNs float64 // modelled retry backoff delay, not in TimeNs
}

// Device is one GPU instance: the shared execution engine composed with
// the analytic timing model (timing.go) and the device's queue
// semantics. All ISA interpretation happens in internal/engine; the
// device contributes validation, fault-injection policy, and timing.
// It owns a decoded-binary cache and the engine's interpreter scratch;
// it is not safe for concurrent use, matching a single in-order command
// queue.
type Device struct {
	cfg        Config
	cycles     uint64 // device timestamp counter, advanced per dispatch
	dispatches uint64 // dispatches completed, drives thermal drift
	jitter     *TimingJitter

	// Observability bookkeeping (metrics.go). id distinguishes trace
	// lanes between concurrent workers' devices; virtNs accumulates
	// modeled time so dispatch spans line up on a virtual timeline.
	// Neither feeds back into the timing model.
	id     uint64
	virtNs float64

	// watchdog is the per-enqueue dynamic-instruction budget; 0 keeps
	// only the per-group runaway backstop.
	watchdog uint64
	inj      *faults.Injector
	curInv   *faults.Invocation // fault plan of the dispatch in flight

	probe *engine.Probe // attached analysis probe, or nil

	decoded map[*jit.Binary]*kernel.Kernel

	// eng is the shared execution engine: interpreter scratch state,
	// watchdog accounting, and the device's hooks (timer, send faults,
	// memory stall charge).
	eng engine.Env
}

// New creates a device with the given configuration.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:     cfg,
		id:      deviceIDs.Add(1) - 1,
		decoded: make(map[*jit.Binary]*kernel.Kernel),
	}
	// memory stall: the per-send latency charged to a thread — the
	// wall-clock latency in cycles, divided by the EU's SMT depth
	// (co-resident threads hide most of each other's latency).
	d.eng.MemStallCycles = uint64(cfg.MemLatencyNs * cfg.freqGHz() / float64(cfg.ThreadsPerEU))
	d.eng.Timer = func(groupCycles uint64) uint32 { return uint32(d.cycles + groupCycles) }
	d.eng.SendFault = func(sends uint64) bool { return d.curInv.SendFault(sends) }
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Timestamp returns the device cycle counter, advanced as dispatches
// complete. The MsgTimer send reads this during execution.
func (d *Device) Timestamp() uint64 { return d.cycles }

// SetWatchdog installs a per-enqueue watchdog: any dispatch whose dynamic
// instruction count exceeds budget fails with faults.ErrWatchdogTimeout.
// A zero budget disables the watchdog, leaving only the per-group
// runaway-loop backstop.
func (d *Device) SetWatchdog(budget uint64) { d.watchdog = budget }

// WatchdogBudget returns the installed per-enqueue instruction budget
// (0 = disabled).
func (d *Device) WatchdogBudget() uint64 { return d.watchdog }

// SetFaultInjector installs a fault injector consulted on every dispatch;
// nil disables injection. The injector's draw counts advance per
// execution attempt, so it must not be shared across concurrently-running
// devices.
func (d *Device) SetFaultInjector(inj *faults.Injector) { d.inj = inj }

// FaultInjector returns the installed injector, or nil.
func (d *Device) FaultInjector() *faults.Injector { return d.inj }

// Jitter returns the installed timing jitter source, or nil.
func (d *Device) Jitter() *TimingJitter { return d.jitter }

// SetProbe attaches an engine analysis probe observing every dispatch's
// dynamic basic-block entries; nil detaches. Pure observation: probes
// never alter execution, timing, or statistics.
func (d *Device) SetProbe(p *engine.Probe) { d.probe = p }

// SetTouchHook installs an observer called once per element-sized
// surface access with the engine's surface<<32|addr key and a write
// flag; nil detaches. Pure observation — detsim uses it to warm its
// simulated caches from fast-forwarded work and to record the touch
// sets snippet checkpoints are trimmed by; execution, timing, and
// statistics are unchanged.
func (d *Device) SetTouchHook(h func(key uint64, write bool)) { d.eng.Touch = h }

// SeedClock positions the device's timestamp counter and completed-
// dispatch count as if a prefix of work had already executed. Snippet
// replay (gtpin/internal/detsim) seeds a fresh device with the values
// captured at its window's start, so MsgTimer reads and the
// thermal-drift phase match a replay that actually fast-forwarded the
// prefix.
func (d *Device) SeedClock(cycles, dispatches uint64) {
	d.cycles = cycles
	d.dispatches = dispatches
}

// Dispatches returns the number of dispatches completed, the counter
// that drives thermal drift.
func (d *Device) Dispatches() uint64 { return d.dispatches }

// SetTimerHook overrides the value MsgTimer sends read with a
// deterministic function; nil restores the default live device cycle
// counter. Cross-backend tests install the same hook everywhere so
// timer-reading kernels produce identical memory images on every
// backend.
func (d *Device) SetTimerHook(h func(uint64) uint32) {
	if h != nil {
		d.eng.Timer = h
		return
	}
	d.eng.Timer = func(groupCycles uint64) uint32 { return uint32(d.cycles + groupCycles) }
}

// budget returns the effective per-enqueue instruction budget.
func (d *Device) budget() uint64 {
	if d.watchdog > 0 {
		return d.watchdog
	}
	return engine.MaxGroupInstrs
}

func (d *Device) kernelFor(bin *jit.Binary) (*kernel.Kernel, error) {
	if k, ok := d.decoded[bin]; ok {
		return k, nil
	}
	k, err := jit.Decode(bin)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	d.decoded[bin] = k
	return k, nil
}

// fill copies the engine's accumulated counters into the dispatch stats.
func (st *ExecStats) fill(es *engine.Stats) {
	st.Instrs = es.Instrs
	st.Sends = es.Sends
	st.BytesRead = es.BytesRead
	st.BytesWritten = es.BytesWritten
	st.ComputeCycles = es.Cycles
}

// Run executes one dispatch to completion and returns its statistics.
func (d *Device) Run(disp Dispatch) (ExecStats, error) {
	var st ExecStats
	if disp.Binary == nil {
		return st, fmt.Errorf("device: dispatch has no binary: %w", faults.ErrInvalidDispatch)
	}
	k, err := d.kernelFor(disp.Binary)
	if err != nil {
		return st, err
	}
	if disp.GlobalWorkSize <= 0 {
		return st, fmt.Errorf("device: kernel %s: global work size %d: %w", k.Name, disp.GlobalWorkSize, faults.ErrInvalidDispatch)
	}
	if len(disp.Args) < k.NumArgs {
		return st, fmt.Errorf("device: kernel %s: %d args supplied, %d required: %w", k.Name, len(disp.Args), k.NumArgs, faults.ErrInvalidDispatch)
	}
	if len(disp.Surfaces) < k.NumSurfaces {
		return st, fmt.Errorf("device: kernel %s: %d surfaces bound, %d required: %w", k.Name, len(disp.Surfaces), k.NumSurfaces, faults.ErrInvalidDispatch)
	}
	for i, s := range disp.Surfaces {
		if s == nil {
			return st, fmt.Errorf("device: kernel %s: surface %d is nil: %w", k.Name, i, faults.ErrInvalidDispatch)
		}
	}

	d.curInv = d.inj.BeginInvocation(k.Name, 0)
	defer func() { d.curInv = nil }()
	if d.curInv.Hang() {
		// The kernel stops making forward progress; the watchdog detects
		// the hang once the enqueue's instruction budget is consumed.
		err := fmt.Errorf("device: kernel %s: %w: no forward progress after %d instructions: %w",
			k.Name, faults.ErrWatchdogTimeout, d.budget(), faults.ErrKernelHang)
		observeRunError(err)
		return st, err
	}

	d.eng.Watchdog.Reset(d.watchdog)
	if d.probe != nil {
		d.eng.OnBlock = d.probe.Profile(k).CountBlock
	} else {
		d.eng.OnBlock = nil
	}

	var es engine.Stats
	width := int(k.SIMD)
	groups := (disp.GlobalWorkSize + width - 1) / width
	for g := 0; g < groups; g++ {
		active := disp.GlobalWorkSize - g*width
		if active > width {
			active = width
		}
		if err := d.eng.RunGroup(k, disp.Args, disp.Surfaces, g, active, &es); err != nil {
			st.fill(&es)
			err = fmt.Errorf("device: kernel %s group %d: %w", k.Name, g, err)
			observeRunError(err)
			return st, err
		}
	}
	st.fill(&es)
	if d.curInv.CorruptResult() {
		// Integrity checking rejects the dispatch; its side effects are
		// untrustworthy and the caller must replay from a clean snapshot.
		return st, fmt.Errorf("device: kernel %s: %w", k.Name, faults.ErrCorruptResult)
	}
	st.Groups = groups
	st.TimeNs = d.jitter.Perturb(d.cfg.dispatchTimeNs(&st) * d.thermalDrift())
	d.dispatches++
	d.cycles += uint64(st.TimeNs * d.cfg.freqGHz())
	d.observeDispatch(k, &st)
	return st, nil
}
