package device

import (
	"math"
	"math/rand"
)

// thermalDrift returns the current performance-drift factor; see
// Config.ThermalAmp.
func (d *Device) thermalDrift() float64 {
	f := 1.0
	n := float64(d.dispatches)
	if d.cfg.ThermalAmp != 0 {
		f += d.cfg.ThermalAmp * math.Sin(2*math.Pi*n/d.cfg.ThermalPeriod)
	}
	if d.cfg.ContentionAmp != 0 {
		f += d.cfg.ContentionAmp * math.Sin(2*math.Pi*n/d.cfg.ContentionPeriod)
	}
	return f
}

// dispatchTimeNs converts a dispatch's raw execution statistics into a
// modelled wall-clock time.
//
// The model is a roofline-style composition:
//
//   - compute: total thread-cycles (which already include the
//     SMT-amortized memory stall charged per send during execution)
//     spread across the effective hardware parallelism
//     (min(groups, EUs*ThreadsPerEU)), scaled by the clock.
//   - bandwidth: total bytes over peak bandwidth; the dispatch cannot be
//     faster than its bandwidth floor.
//
// Because latency and bandwidth are expressed in wall-clock terms while
// compute scales with frequency, seconds-per-instruction responds
// non-linearly to frequency changes — the property the paper's
// cross-frequency validation (Figure 8, middle) exercises.
func (c Config) dispatchTimeNs(st *ExecStats) float64 {
	par := float64(c.HWThreads())
	if g := float64(st.Groups); g > 0 && g < par {
		par = g
	}
	if par < 1 {
		par = 1
	}
	cyclesNs := 1.0 / c.freqGHz()
	computeNs := float64(st.ComputeCycles) / c.IssueRate * cyclesNs / par
	filter := c.BWFilter
	if filter <= 0 || filter > 1 {
		filter = 1
	}
	// bytes / (GB/s) = ns; only cache-filtered traffic reaches DRAM.
	bwNs := float64(st.BytesRead+st.BytesWritten) * filter / c.MemGBps
	t := computeNs
	if bwNs > t {
		t = bwNs
	}
	return c.DispatchNs + t
}

// TimingJitter applies multiplicative noise to modelled dispatch times,
// standing in for run-to-run variation on real hardware (the paper's
// cross-trial validation replays the same API sequence and observes
// slightly different timings). Sigma is the half-width of the uniform
// relative error; a given seed yields a reproducible trial.
type TimingJitter struct {
	rng   *rand.Rand
	sigma float64
}

// NewTimingJitter creates a jitter source. sigma of 0.01 means timings
// vary within ±1%.
func NewTimingJitter(seed int64, sigma float64) *TimingJitter {
	return &TimingJitter{rng: rand.New(rand.NewSource(seed)), sigma: sigma}
}

// Perturb returns t scaled by a random factor in [1-sigma, 1+sigma].
func (j *TimingJitter) Perturb(t float64) float64 {
	if j == nil || j.sigma == 0 {
		return t
	}
	return t * (1 + j.sigma*(2*j.rng.Float64()-1))
}

// SetJitter installs a timing jitter source on the device; nil disables
// noise. Jitter affects only modelled times, never functional results.
func (d *Device) SetJitter(j *TimingJitter) { d.jitter = j }
