// Package device models an Intel GEN-style GPU: a set of execution units
// (EUs) grouped into subslices, each EU running several SMT hardware
// threads, executing kernels as SIMD channel-groups.
//
// The device provides two things the paper's methodology depends on:
//
//  1. a functional vector interpreter with real flag/branch semantics, so
//     dynamic instruction behaviour is data-dependent (exec.go), standing
//     in for native execution on real hardware; and
//  2. an analytic timing model producing per-dispatch wall times that
//     respond to instruction mix, memory traffic, EU count, and frequency
//     (timing.go), standing in for the wall-clock times CoFluent measures.
package device

import "fmt"

// Config describes a GPU configuration. The two presets model the paper's
// test systems: the Ivy Bridge HD 4000 and the Haswell HD 4600.
type Config struct {
	Name         string
	EUs          int     // execution units
	SubSlices    int     // EU groupings (8 EUs per subslice on HD 4000)
	ThreadsPerEU int     // SMT hardware threads per EU
	FreqMHz      int     // core clock
	MemLatencyNs float64 // average memory access latency, wall-clock
	MemGBps      float64 // peak memory bandwidth
	// BWFilter is the fraction of request bytes that reach DRAM after
	// the cache hierarchy filters the rest; the fast timing model charges
	// only this fraction against MemGBps. (The detailed simulator models
	// the caches explicitly instead.)
	BWFilter   float64
	DispatchNs float64 // fixed per-kernel-dispatch overhead
	IssueRate  float64 // instructions issued per EU-thread per cycle

	// ThermalAmp/ThermalPeriod and ContentionAmp/ContentionPeriod model
	// performance drift at two time scales — slow thermal throttling and
	// faster shared-resource contention: dispatch times are scaled by
	// 1 + ThermalAmp·sin(2π·n/ThermalPeriod)
	//   + ContentionAmp·sin(2π·n/ContentionPeriod), where n counts
	// dispatches. The drift is deterministic — replayed trials see the
	// same drift — but it is invisible to phase-based feature vectors,
	// which is what keeps subset-selection errors realistically non-zero.
	// Zero amplitudes disable drift.
	ThermalAmp       float64
	ThermalPeriod    float64
	ContentionAmp    float64
	ContentionPeriod float64
}

// IvyBridgeHD4000 returns the paper's primary test device: 16 EUs in two
// subslices, 8 hardware threads per EU (128 simultaneous threads),
// 1150 MHz maximum frequency.
func IvyBridgeHD4000() Config {
	return Config{
		Name:             "HD4000 (Ivy Bridge)",
		EUs:              16,
		SubSlices:        2,
		ThreadsPerEU:     8,
		FreqMHz:          1150,
		MemLatencyNs:     180,
		MemGBps:          25.6,
		BWFilter:         0.12,
		DispatchNs:       4000,
		IssueRate:        1.0,
		ThermalAmp:       0.05,
		ThermalPeriod:    800,
		ContentionAmp:    0.025,
		ContentionPeriod: 63,
	}
}

// HaswellHD4600 returns the paper's cross-generation validation device:
// 20 EUs, a faster memory subsystem, and the same 8-thread SMT EUs.
func HaswellHD4600() Config {
	return Config{
		Name:             "HD4600 (Haswell)",
		EUs:              20,
		SubSlices:        2,
		ThreadsPerEU:     8,
		FreqMHz:          1250,
		MemLatencyNs:     160,
		MemGBps:          25.6,
		BWFilter:         0.10,
		DispatchNs:       3600,
		IssueRate:        1.05,
		ThermalAmp:       0.045,
		ThermalPeriod:    1100,
		ContentionAmp:    0.02,
		ContentionPeriod: 89,
	}
}

// WithFrequency returns a copy of the configuration clocked at freqMHz,
// used for the paper's cross-frequency validation (350-1150 MHz).
func (c Config) WithFrequency(freqMHz int) Config {
	c.FreqMHz = freqMHz
	c.Name = fmt.Sprintf("%s @%dMHz", c.Name, freqMHz)
	return c
}

// WithEUs returns a copy with a different EU count, used by design-space
// sweeps over candidate architectures.
func (c Config) WithEUs(eus int) Config {
	c.EUs = eus
	c.Name = fmt.Sprintf("%s x%dEU", c.Name, eus)
	return c
}

// Degraded returns the graceful-degradation fallback configuration: half
// the EUs (re-fused into a single subslice when the halved count no
// longer divides evenly), where a kernel that repeatedly failed on the
// full configuration is retried. Functional results are unaffected — only
// the timing model sees the narrower machine.
func (c Config) Degraded() Config {
	eus := c.EUs / 2
	if eus < 1 {
		eus = 1
	}
	if c.SubSlices > eus || eus%c.SubSlices != 0 {
		c.SubSlices = 1
	}
	c.EUs = eus
	c.Name = fmt.Sprintf("%s (degraded x%dEU)", c.Name, eus)
	return c
}

// Validate checks the configuration is physically sensible.
func (c Config) Validate() error {
	switch {
	case c.EUs <= 0:
		return fmt.Errorf("device %s: EUs must be positive", c.Name)
	case c.SubSlices <= 0 || c.EUs%c.SubSlices != 0:
		return fmt.Errorf("device %s: %d EUs not divisible into %d subslices", c.Name, c.EUs, c.SubSlices)
	case c.ThreadsPerEU <= 0:
		return fmt.Errorf("device %s: ThreadsPerEU must be positive", c.Name)
	case c.FreqMHz <= 0:
		return fmt.Errorf("device %s: FreqMHz must be positive", c.Name)
	case c.MemLatencyNs < 0 || c.MemGBps <= 0:
		return fmt.Errorf("device %s: invalid memory parameters", c.Name)
	case c.IssueRate <= 0:
		return fmt.Errorf("device %s: IssueRate must be positive", c.Name)
	}
	return nil
}

// HWThreads returns the number of simultaneously executing hardware
// threads (128 on the HD 4000).
func (c Config) HWThreads() int { return c.EUs * c.ThreadsPerEU }

// freqGHz returns the clock in GHz.
func (c Config) freqGHz() float64 { return float64(c.FreqMHz) / 1000 }
