package device

import (
	"errors"
	"testing"

	"gtpin/internal/faults"
)

func TestWatchdogBudgetTripsAsTypedTimeout(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	out, _ := NewBuffer(4 * 16)
	disp := Dispatch{Binary: bin, Args: []uint32{1000}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16}

	// Generous budget: runs fine.
	dev.SetWatchdog(100000)
	if _, err := dev.Run(disp); err != nil {
		t.Fatalf("under budget: %v", err)
	}
	// Tiny budget: the same dispatch must fail with the typed timeout.
	dev.SetWatchdog(100)
	_, err := dev.Run(disp)
	if !errors.Is(err, faults.ErrWatchdogTimeout) {
		t.Fatalf("err = %v, want ErrWatchdogTimeout", err)
	}
	if faults.IsTransient(err) {
		t.Error("a watchdog timeout is not transient")
	}
	// Disabling the watchdog restores execution.
	dev.SetWatchdog(0)
	if _, err := dev.Run(disp); err != nil {
		t.Fatalf("watchdog off: %v", err)
	}
}

func TestInjectedHangSurfacesBothSentinels(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	inj, _ := faults.NewInjector(1, faults.Rates{Hang: 1})
	dev.SetFaultInjector(inj)
	out, _ := NewBuffer(4 * 16)
	_, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{3}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16})
	if !errors.Is(err, faults.ErrWatchdogTimeout) || !errors.Is(err, faults.ErrKernelHang) {
		t.Fatalf("err = %v, want watchdog timeout wrapping kernel hang", err)
	}
	if inj.Stats().Hangs != 1 {
		t.Errorf("hang stats = %+v", inj.Stats())
	}
}

func TestInjectedSendFaultIsTransient(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	inj, _ := faults.NewInjector(1, faults.Rates{Send: 1})
	dev.SetFaultInjector(inj)
	// The faulting transaction index is drawn in [1,64]; give the dispatch
	// 64 send transactions (one per channel group) so it cannot escape.
	out, _ := NewBuffer(4 * 16 * 64)
	_, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{3}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16 * 64})
	if !errors.Is(err, faults.ErrSendFault) {
		t.Fatalf("err = %v, want ErrSendFault", err)
	}
	if !faults.IsTransient(err) {
		t.Error("send faults must classify transient")
	}
}

func TestInjectedCorruptionAfterExecution(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	inj, _ := faults.NewInjector(1, faults.Rates{Corrupt: 1})
	dev.SetFaultInjector(inj)
	out, _ := NewBuffer(4 * 16)
	_, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{3}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16})
	if !errors.Is(err, faults.ErrCorruptResult) {
		t.Fatalf("err = %v, want ErrCorruptResult", err)
	}
	if !faults.IsTransient(err) {
		t.Error("corruption must classify transient (replay from snapshot)")
	}
}

func TestValidationErrorsAreInvalidDispatch(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	for i, d := range []Dispatch{
		{},
		{Binary: bin, GlobalWorkSize: 0},
		{Binary: bin, Args: []uint32{1}, GlobalWorkSize: 16}, // missing surface
	} {
		if _, err := dev.Run(d); !errors.Is(err, faults.ErrInvalidDispatch) {
			t.Errorf("case %d: err = %v, want ErrInvalidDispatch", i, err)
		}
	}
}

func TestDegradedConfigValidAndSlower(t *testing.T) {
	cfg := IvyBridgeHD4000()
	cfg.ThermalAmp, cfg.ContentionAmp = 0, 0
	deg := cfg.Degraded()
	if deg.EUs >= cfg.EUs {
		t.Fatalf("degraded EUs = %d, want fewer than %d", deg.EUs, cfg.EUs)
	}
	bin := loopKernel(t)
	run := func(c Config) (float64, uint32) {
		dev, err := New(c)
		if err != nil {
			t.Fatalf("config %q invalid: %v", c.Name, err)
		}
		out, _ := NewBuffer(4 * 16)
		st, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{10}, Surfaces: []*Buffer{out}, GlobalWorkSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out.ReadU32(0, 1)
		return st.TimeNs, got[0]
	}
	fullNs, fullSum := run(cfg)
	degNs, degSum := run(deg)
	if degSum != fullSum {
		t.Errorf("degraded execution changed results: %d vs %d", degSum, fullSum)
	}
	if degNs < fullNs {
		t.Errorf("degraded config faster than full: %.1fns < %.1fns", degNs, fullNs)
	}
}

func TestDegradedDegradesAgain(t *testing.T) {
	// Degrading repeatedly must bottom out at a still-valid 1-EU config.
	cfg := IvyBridgeHD4000()
	for i := 0; i < 8; i++ {
		cfg = cfg.Degraded()
		if _, err := New(cfg); err != nil {
			t.Fatalf("degradation step %d produced invalid config %+v: %v", i, cfg, err)
		}
	}
	if cfg.EUs != 1 {
		t.Errorf("EUs = %d after repeated degradation, want 1", cfg.EUs)
	}
}
