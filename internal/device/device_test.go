package device

import (
	"math/rand"
	"testing"

	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

func TestBufferRoundTrip(t *testing.T) {
	b, err := NewBuffer(100) // rounds up to 104
	if err != nil {
		t.Fatal(err)
	}
	if b.Size()%8 != 0 || b.Size() < 100 {
		t.Errorf("size = %d", b.Size())
	}
	if err := b.WriteU32(0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadU32(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("ReadU32 = %v", got)
	}
	if err := b.WriteU64(8, 0xDEADBEEFCAFED00D); err != nil {
		t.Fatal(err)
	}
	v, err := b.ReadU64(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEFCAFED00D {
		t.Errorf("ReadU64 = %#x", v)
	}
}

func TestBufferBoundsChecks(t *testing.T) {
	b, _ := NewBuffer(16)
	if err := b.WriteU32(16, 1); err == nil {
		t.Error("expected out-of-bounds write error")
	}
	if _, err := b.ReadU32(-4, 1); err == nil {
		t.Error("expected negative-offset error")
	}
	if _, err := b.ReadU64(12); err == nil {
		t.Error("expected out-of-bounds u64 read error")
	}
	if _, err := NewBuffer(0); err == nil {
		t.Error("expected error for zero-size buffer")
	}
}

func TestBufferElemAccess(t *testing.T) {
	b, _ := NewBuffer(64)
	b.StoreElem(0, 4, 0x11223344)
	if got := b.LoadElem(0, 4); got != 0x11223344 {
		t.Errorf("elem4 = %#x", got)
	}
	b.StoreElem(8, 1, 0x1FF) // truncates
	if got := b.LoadElem(8, 1); got != 0xFF {
		t.Errorf("elem1 = %#x", got)
	}
	b.StoreElem(16, 2, 0x12345)
	if got := b.LoadElem(16, 2); got != 0x2345 {
		t.Errorf("elem2 = %#x", got)
	}
	b.StoreElem(24, 8, 0xAABBCCDDEEFF0011)
	if got := b.LoadElem(24, 8); got != 0xAABBCCDDEEFF0011 {
		t.Errorf("elem8 = %#x", got)
	}
	// Device offsets wrap instead of faulting.
	b.StoreElem(uint32(b.Size())+4, 4, 7)
	if got := b.LoadElem(uint32(b.Size())+4, 4); got != 7 {
		t.Errorf("wrapped access = %d", got)
	}
	if old := b.AtomicAdd(32, 8, 5); old != 0 {
		t.Errorf("atomic old = %d", old)
	}
	if old := b.AtomicAdd(32, 8, 5); old != 5 {
		t.Errorf("atomic old = %d", old)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, preset := range []Config{IvyBridgeHD4000(), HaswellHD4600()} {
		if err := preset.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", preset.Name, err)
		}
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.EUs = 0; return c },
		func(c Config) Config { c.EUs = 15; return c }, // not divisible by 2 subslices
		func(c Config) Config { c.ThreadsPerEU = 0; return c },
		func(c Config) Config { c.FreqMHz = 0; return c },
		func(c Config) Config { c.MemGBps = 0; return c },
		func(c Config) Config { c.IssueRate = 0; return c },
	}
	for i, mutate := range bad {
		if err := mutate(IvyBridgeHD4000()).Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	if IvyBridgeHD4000().HWThreads() != 128 {
		t.Error("HD4000 must have 128 hardware threads")
	}
	if HaswellHD4600().EUs != 20 {
		t.Error("HD4600 must have 20 EUs")
	}
}

func TestConfigVariants(t *testing.T) {
	c := IvyBridgeHD4000().WithFrequency(350)
	if c.FreqMHz != 350 {
		t.Error("WithFrequency")
	}
	c2 := IvyBridgeHD4000().WithEUs(32)
	if c2.EUs != 32 {
		t.Error("WithEUs")
	}
}

// buildOpKernel compiles a one-op kernel: load a and b, apply op, store.
func buildOpKernel(t *testing.T, op isa.Opcode, fn isa.MathFn) *jit.Binary {
	t.Helper()
	k := &kernel.Kernel{
		Name: "op", SIMD: isa.W16, NumSurfaces: 3,
		Blocks: []*kernel.Block{{ID: 0, Instrs: []isa.Instruction{
			{Op: isa.OpShl, Width: isa.W16, Dst: 20, Src0: isa.R(kernel.GIDReg), Src1: isa.Imm(2)},
			{Op: isa.OpSend, Width: isa.W16, Dst: 21, Src0: isa.R(20),
				Msg: isa.MsgDesc{Kind: isa.MsgLoad, Surface: 0, ElemBytes: 4}},
			{Op: isa.OpSend, Width: isa.W16, Dst: 22, Src0: isa.R(20),
				Msg: isa.MsgDesc{Kind: isa.MsgLoad, Surface: 1, ElemBytes: 4}},
			{Op: op, Width: isa.W16, Fn: fn, Dst: 23, Src0: isa.R(21), Src1: isa.R(22), Src2: isa.R(21)},
			{Op: isa.OpSend, Width: isa.W16, Src0: isa.R(20), Src1: isa.R(23),
				Msg: isa.MsgDesc{Kind: isa.MsgStore, Surface: 2, ElemBytes: 4}},
			{Op: isa.OpEnd, Width: isa.W16},
		}}},
	}
	bin, err := jit.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestALUMatchesSemantics: the vectorized interpreter must agree with the
// shared per-lane semantics (isa.Eval) on every data-processing opcode.
func TestALUMatchesSemantics(t *testing.T) {
	ops := []struct {
		op isa.Opcode
		fn isa.MathFn
	}{
		{isa.OpMov, 0}, {isa.OpAnd, 0}, {isa.OpOr, 0}, {isa.OpXor, 0},
		{isa.OpNot, 0}, {isa.OpShl, 0}, {isa.OpShr, 0}, {isa.OpAsr, 0},
		{isa.OpAdd, 0}, {isa.OpSub, 0}, {isa.OpMul, 0}, {isa.OpMach, 0},
		{isa.OpMad, 0}, {isa.OpMin, 0}, {isa.OpMax, 0}, {isa.OpAbs, 0},
		{isa.OpAvg, 0},
		{isa.OpMath, isa.MathInv}, {isa.OpMath, isa.MathSqrt},
		{isa.OpMath, isa.MathIDiv}, {isa.OpMath, isa.MathIRem},
		{isa.OpMath, isa.MathLog2}, {isa.OpMath, isa.MathExp2},
		{isa.OpMath, isa.MathSin}, {isa.OpMath, isa.MathCos},
	}
	rng := rand.New(rand.NewSource(3))
	const n = 64
	for _, o := range ops {
		bin := buildOpKernel(t, o.op, o.fn)
		dev, err := New(IvyBridgeHD4000())
		if err != nil {
			t.Fatal(err)
		}
		a, _ := NewBuffer(4 * n)
		b, _ := NewBuffer(4 * n)
		out, _ := NewBuffer(4 * n)
		av := make([]uint32, n)
		bv := make([]uint32, n)
		for i := 0; i < n; i++ {
			av[i] = rng.Uint32()
			bv[i] = rng.Uint32()
		}
		if err := a.WriteU32(0, av...); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteU32(0, bv...); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Run(Dispatch{Binary: bin, Surfaces: []*Buffer{a, b, out}, GlobalWorkSize: n}); err != nil {
			t.Fatalf("%s/%d: %v", o.op, o.fn, err)
		}
		got, _ := out.ReadU32(0, n)
		for i := 0; i < n; i++ {
			want := isa.Eval(o.op, o.fn, av[i], bv[i], av[i], false)
			if got[i] != want {
				t.Fatalf("%s/%d lane %d: got %#x, want %#x (a=%#x b=%#x)",
					o.op, o.fn, i, got[i], want, av[i], bv[i])
			}
		}
	}
}

// loopKernel builds: for i in 0..N { sum += i }; out[gid] = sum, with the
// trip count from arg 0.
func loopKernel(t *testing.T) *jit.Binary {
	t.Helper()
	k := &kernel.Kernel{
		Name: "loop", SIMD: isa.W16, NumArgs: 1, NumSurfaces: 1,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{
				{Op: isa.OpMovi, Width: isa.W16, Dst: 20, Src0: isa.Imm(0)}, // i
				{Op: isa.OpMovi, Width: isa.W16, Dst: 21, Src0: isa.Imm(0)}, // sum
				{Op: isa.OpJmp, Width: isa.W16, Target: 1},
			}},
			{ID: 1, Instrs: []isa.Instruction{
				{Op: isa.OpAdd, Width: isa.W16, Dst: 21, Src0: isa.R(21), Src1: isa.R(20)},
				{Op: isa.OpAdd, Width: isa.W16, Dst: 20, Src0: isa.R(20), Src1: isa.Imm(1)},
				{Op: isa.OpCmp, Width: isa.W16, Cond: isa.CondLT, Src0: isa.R(20), Src1: isa.R(kernel.ArgReg(0))},
				{Op: isa.OpBr, Width: isa.W16, BrMode: isa.BranchAny, Target: 1},
			}},
			{ID: 2, Instrs: []isa.Instruction{
				{Op: isa.OpShl, Width: isa.W16, Dst: 22, Src0: isa.R(kernel.GIDReg), Src1: isa.Imm(2)},
				{Op: isa.OpSend, Width: isa.W16, Src0: isa.R(22), Src1: isa.R(21),
					Msg: isa.MsgDesc{Kind: isa.MsgStore, Surface: 0, ElemBytes: 4}},
				{Op: isa.OpEnd, Width: isa.W16},
			}},
		},
	}
	bin, err := jit.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestLoopExecutesArgTimes(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	out, _ := NewBuffer(4 * 16)
	st, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{10}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := out.ReadU32(0, 1)
	if got[0] != 45 { // 0+1+...+9
		t.Errorf("sum = %d, want 45", got[0])
	}
	// 3 + 10*4 + 3 = 46 instructions per group, one group.
	if st.Instrs != 46 {
		t.Errorf("instrs = %d, want 46", st.Instrs)
	}
	if st.Groups != 1 {
		t.Errorf("groups = %d", st.Groups)
	}
}

func TestDispatchValidation(t *testing.T) {
	bin := loopKernel(t)
	dev, _ := New(IvyBridgeHD4000())
	out, _ := NewBuffer(64)
	cases := []Dispatch{
		{},                                // no binary
		{Binary: bin, GlobalWorkSize: 0},  // no work
		{Binary: bin, GlobalWorkSize: 16}, // missing args
		{Binary: bin, Args: []uint32{1}, GlobalWorkSize: 16},                           // missing surfaces
		{Binary: bin, Args: []uint32{1}, Surfaces: []*Buffer{nil}, GlobalWorkSize: 16}, // nil surface
	}
	for i, d := range cases {
		if _, err := dev.Run(d); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{1}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16}); err != nil {
		t.Errorf("valid dispatch failed: %v", err)
	}
}

func TestRunawayLoopDetected(t *testing.T) {
	k := &kernel.Kernel{
		Name: "forever", SIMD: isa.W16, NumSurfaces: 0,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{{Op: isa.OpJmp, Width: isa.W16, Target: 0}}},
		},
	}
	bin, err := jit.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := New(IvyBridgeHD4000())
	if _, err := dev.Run(Dispatch{Binary: bin, GlobalWorkSize: 16}); err == nil {
		t.Error("expected runaway-loop error")
	}
}

func TestTimingMonotonicity(t *testing.T) {
	// The same dispatch must not get slower with more EUs or higher
	// frequency (drift disabled to isolate the model).
	base := IvyBridgeHD4000()
	base.ThermalAmp, base.ContentionAmp = 0, 0
	run := func(cfg Config) float64 {
		dev, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bin := loopKernel(t)
		out, _ := NewBuffer(4 * 4096)
		st, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{100}, Surfaces: []*Buffer{out}, GlobalWorkSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		return st.TimeNs
	}
	t16 := run(base)
	t32 := run(base.WithEUs(32))
	if t32 > t16 {
		t.Errorf("more EUs got slower: %f vs %f", t32, t16)
	}
	tSlow := run(base.WithFrequency(350))
	if tSlow < t16 {
		t.Errorf("lower frequency got faster: %f vs %f", tSlow, t16)
	}
	// Frequency scaling is sub-linear: memory time does not scale.
	ratio := tSlow / t16
	if ratio >= 1150.0/350.0 {
		t.Errorf("frequency scaling should be sub-linear, ratio = %f", ratio)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	j1 := NewTimingJitter(7, 0.02)
	j2 := NewTimingJitter(7, 0.02)
	for i := 0; i < 1000; i++ {
		v1 := j1.Perturb(100)
		v2 := j2.Perturb(100)
		if v1 != v2 {
			t.Fatal("same seed must give same jitter")
		}
		if v1 < 98 || v1 > 102 {
			t.Fatalf("jitter out of bounds: %f", v1)
		}
	}
	var nilJitter *TimingJitter
	if nilJitter.Perturb(5) != 5 {
		t.Error("nil jitter must be identity")
	}
}

func TestThermalDriftBounded(t *testing.T) {
	cfg := IvyBridgeHD4000()
	dev, _ := New(cfg)
	maxAmp := cfg.ThermalAmp + cfg.ContentionAmp
	for i := 0; i < 3000; i++ {
		f := dev.thermalDrift()
		if f < 1-maxAmp-1e-9 || f > 1+maxAmp+1e-9 {
			t.Fatalf("drift %f out of [%f, %f]", f, 1-maxAmp, 1+maxAmp)
		}
		dev.dispatches++
	}
	// Disabled drift is exactly 1.
	cfg.ThermalAmp, cfg.ContentionAmp = 0, 0
	dev2, _ := New(cfg)
	if dev2.thermalDrift() != 1 {
		t.Error("disabled drift must be identity")
	}
}

func TestPartialGroupMasksSends(t *testing.T) {
	// GWS = 20 with SIMD16: the second group has 4 active channels; the
	// store must write only 4 lanes.
	k := &kernel.Kernel{
		Name: "mask", SIMD: isa.W16, NumSurfaces: 1,
		Blocks: []*kernel.Block{{ID: 0, Instrs: []isa.Instruction{
			{Op: isa.OpShl, Width: isa.W16, Dst: 20, Src0: isa.R(kernel.GIDReg), Src1: isa.Imm(2)},
			{Op: isa.OpMovi, Width: isa.W16, Dst: 21, Src0: isa.Imm(7)},
			{Op: isa.OpSend, Width: isa.W16, Src0: isa.R(20), Src1: isa.R(21),
				Msg: isa.MsgDesc{Kind: isa.MsgStore, Surface: 0, ElemBytes: 4}},
			{Op: isa.OpEnd, Width: isa.W16},
		}}},
	}
	bin, err := jit.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := New(IvyBridgeHD4000())
	out, _ := NewBuffer(4 * 32)
	st, err := dev.Run(Dispatch{Binary: bin, Surfaces: []*Buffer{out}, GlobalWorkSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 2 {
		t.Errorf("groups = %d", st.Groups)
	}
	if st.BytesWritten != 20*4 {
		t.Errorf("bytes written = %d, want 80", st.BytesWritten)
	}
	got, _ := out.ReadU32(0, 32)
	for i := 0; i < 20; i++ {
		if got[i] != 7 {
			t.Errorf("out[%d] = %d, want 7", i, got[i])
		}
	}
	for i := 20; i < 32; i++ {
		if got[i] != 0 {
			t.Errorf("out[%d] = %d: masked lane wrote memory", i, got[i])
		}
	}
}

func TestTimestampAdvances(t *testing.T) {
	dev, _ := New(IvyBridgeHD4000())
	bin := loopKernel(t)
	out, _ := NewBuffer(256)
	before := dev.Timestamp()
	if _, err := dev.Run(Dispatch{Binary: bin, Args: []uint32{5}, Surfaces: []*Buffer{out}, GlobalWorkSize: 16}); err != nil {
		t.Fatal(err)
	}
	if dev.Timestamp() <= before {
		t.Error("timestamp must advance across dispatches")
	}
}
