package device

import (
	"errors"
	"fmt"
	"sync/atomic"

	"gtpin/internal/engine"
	"gtpin/internal/faults"
	"gtpin/internal/kernel"
	"gtpin/internal/obs"
)

// Observability. Metric pointers are resolved once here, so recording
// is a single atomic add; everything is at dispatch granularity — the
// interpreter's per-instruction loop is never touched. Tracing is
// consulted through obs.ActiveTracer and costs one atomic load when
// disabled.
// Engine-level work (dispatches, instructions) is recorded under the
// shared engine_ prefix via engine.ObserveExecution; only the counters
// specific to this backend's timing model keep the device_ prefix.
var (
	mSends = obs.DefaultCounter("device_sends_total",
		"send (memory) instructions executed")
	mBytesRead = obs.DefaultCounter("device_bytes_read_total",
		"bytes read from surfaces")
	mBytesWritten = obs.DefaultCounter("device_bytes_written_total",
		"bytes written to surfaces")
	mModeledNs = obs.DefaultCounter("device_modeled_time_ns_total",
		"accumulated modeled dispatch time in nanoseconds")
	mWatchdogTrips = obs.DefaultCounter("device_watchdog_trips_total",
		"dispatches killed by the watchdog instruction budget")
	mDispatchNs = obs.DefaultHistogram("device_dispatch_time_ns",
		"modeled per-dispatch time in nanoseconds")
)

// deviceIDs hands each Device a stable id so concurrent sweep workers'
// devices land on distinct trace lanes.
var deviceIDs atomic.Uint64

// observeDispatch records a completed dispatch: counters always, and —
// when a tracer is installed — a kernel span on the device's queue lane
// plus busy spans on per-EU lanes, both on the virtual (modeled-ns)
// timeline. The EU lanes approximate the hardware walk: channel-groups
// distribute round-robin over EUs, and each EU's busy time is its group
// share of the dispatch's execution window (the fullest EU spans the
// whole window). Pure observation: nothing here feeds back into timing.
func (d *Device) observeDispatch(k *kernel.Kernel, st *ExecStats) {
	kernelName := k.Name
	start := d.virtNs
	d.virtNs += st.TimeNs

	engine.ObserveExecution(k.Dialect, 1, st.Instrs, 0)
	mSends.Add(st.Sends)
	mBytesRead.Add(st.BytesRead)
	mBytesWritten.Add(st.BytesWritten)
	mModeledNs.Add(uint64(st.TimeNs))
	mDispatchNs.Observe(uint64(st.TimeNs))

	t := obs.ActiveTracer()
	if t == nil {
		return
	}
	t.SpanVirtual("dispatch", kernelName, fmt.Sprintf("dev%d queue", d.id), start, st.TimeNs,
		obs.A("groups", st.Groups),
		obs.A("instrs", st.Instrs),
		obs.A("sends", st.Sends),
		obs.A("bytes_read", st.BytesRead),
		obs.A("bytes_written", st.BytesWritten))

	execNs := st.TimeNs - d.cfg.DispatchNs
	if execNs <= 0 || st.Groups <= 0 {
		return
	}
	eus := d.cfg.EUs
	fullest := (st.Groups + eus - 1) / eus
	for e := 0; e < eus && e < st.Groups; e++ {
		ge := st.Groups / eus
		if e < st.Groups%eus {
			ge++
		}
		dur := execNs * float64(ge) / float64(fullest)
		t.SpanVirtual("eu", kernelName, fmt.Sprintf("dev%d eu%02d", d.id, e),
			start+d.cfg.DispatchNs, dur, obs.A("groups", ge))
	}
}

// observeRunError records dispatch failures the taxonomy distinguishes.
func observeRunError(err error) {
	if errors.Is(err, faults.ErrWatchdogTimeout) {
		mWatchdogTrips.Inc()
	}
}
