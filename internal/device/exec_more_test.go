package device

import (
	"testing"

	"gtpin/internal/asm"
	"gtpin/internal/isa"
	"gtpin/internal/jit"
	"gtpin/internal/kernel"
)

func compile(t *testing.T, k *kernel.Kernel) *jit.Binary {
	t.Helper()
	bin, err := jit.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestCallRetExecution: a subroutine called twice accumulates twice and
// control resumes after each call site.
func TestCallRetExecution(t *testing.T) {
	a := asm.NewKernel("callret", isa.W16)
	out := a.Surface(0)
	addr, v := a.Temp(), a.Temp()
	a.MovI(v, 10)
	a.Call("double")
	a.Call("double")
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
	a.Store(out, addr, v, 4)
	a.End()
	a.Label("double")
	a.Add(v, asm.R(v), asm.R(v))
	a.Ret()
	k, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}

	dev, _ := New(IvyBridgeHD4000())
	buf, _ := NewBuffer(4 * 16)
	if _, err := dev.Run(Dispatch{Binary: compile(t, k), Surfaces: []*Buffer{buf}, GlobalWorkSize: 16}); err != nil {
		t.Fatal(err)
	}
	got, _ := buf.ReadU32(0, 1)
	if got[0] != 40 { // 10 doubled twice
		t.Errorf("result = %d, want 40", got[0])
	}
}

// TestRetWithoutCallFails: executing a bare ret is a hardware fault.
func TestRetWithoutCallFails(t *testing.T) {
	k := &kernel.Kernel{
		Name: "badret", SIMD: isa.W16,
		Blocks: []*kernel.Block{{ID: 0, Instrs: []isa.Instruction{
			{Op: isa.OpRet, Width: isa.W16},
		}}},
	}
	dev, _ := New(IvyBridgeHD4000())
	if _, err := dev.Run(Dispatch{Binary: compile(t, k), GlobalWorkSize: 16}); err == nil {
		t.Error("expected ret-underflow error")
	}
}

// TestCallStackOverflowFails: unbounded recursion is detected.
func TestCallStackOverflowFails(t *testing.T) {
	k := &kernel.Kernel{
		Name: "recurse", SIMD: isa.W16,
		Blocks: []*kernel.Block{
			{ID: 0, Instrs: []isa.Instruction{{Op: isa.OpCall, Width: isa.W16, Target: 0}}},
		},
	}
	dev, _ := New(IvyBridgeHD4000())
	if _, err := dev.Run(Dispatch{Binary: compile(t, k), GlobalWorkSize: 16}); err == nil {
		t.Error("expected call-stack overflow error")
	}
}

// TestPredicationGatesLanes: PredOn/PredOff write only flagged lanes, and
// Sel chooses per lane.
func TestPredicationGatesLanes(t *testing.T) {
	a := asm.NewKernel("pred", isa.W16)
	out := a.Surface(0)
	addr, v, w := a.Temp(), a.Temp(), a.Temp()
	a.MovI(v, 0)
	a.MovI(w, 111)
	// flag = gid < 8
	a.Cmp(isa.CondLT, asm.R(kernel.GIDReg), asm.I(8))
	a.SetPred(isa.PredOn)
	a.AddI(v, v, 1) // lanes 0-7 -> 1
	a.SetPred(isa.PredOff)
	a.AddI(v, v, 2) // lanes 8-15 -> 2
	a.SetPred(isa.PredNoneMode)
	a.Sel(w, asm.R(v), asm.I(99)) // flagged lanes keep v, others 99
	a.Shl(addr, asm.R(kernel.GIDReg), asm.I(3))
	a.Store(out, addr, v, 4)
	a.AddI(addr, addr, 4)
	a.Store(out, addr, w, 4)
	a.End()
	k, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := New(IvyBridgeHD4000())
	buf, _ := NewBuffer(8 * 16)
	if _, err := dev.Run(Dispatch{Binary: compile(t, k), Surfaces: []*Buffer{buf}, GlobalWorkSize: 16}); err != nil {
		t.Fatal(err)
	}
	vals, _ := buf.ReadU32(0, 32)
	for lane := 0; lane < 16; lane++ {
		v, w := vals[2*lane], vals[2*lane+1]
		if lane < 8 {
			if v != 1 || w != 1 {
				t.Errorf("lane %d: v=%d w=%d, want 1/1", lane, v, w)
			}
		} else {
			if v != 2 || w != 99 {
				t.Errorf("lane %d: v=%d w=%d, want 2/99", lane, v, w)
			}
		}
	}
}

// TestBranchModes: BranchAll vs BranchNone vs BranchAny reductions.
func TestBranchModes(t *testing.T) {
	build := func(mode isa.BranchMode, threshold uint32) *jit.Binary {
		a := asm.NewKernel("br", isa.W16)
		out := a.Surface(0)
		addr, v := a.Temp(), a.Temp()
		a.MovI(v, 0)
		a.Cmp(isa.CondLT, asm.R(kernel.GIDReg), asm.I(threshold))
		a.Br(mode, "taken")
		a.MovI(v, 1) // fall-through
		a.Jmp("store")
		a.Label("taken")
		a.MovI(v, 2)
		a.Label("store")
		a.Shl(addr, asm.R(kernel.GIDReg), asm.I(2))
		a.Store(out, addr, v, 4)
		a.End()
		return compile(t, a.MustBuild())
	}
	run := func(bin *jit.Binary) uint32 {
		dev, _ := New(IvyBridgeHD4000())
		buf, _ := NewBuffer(4 * 16)
		if _, err := dev.Run(Dispatch{Binary: bin, Surfaces: []*Buffer{buf}, GlobalWorkSize: 16}); err != nil {
			t.Fatal(err)
		}
		got, _ := buf.ReadU32(0, 1)
		return got[0]
	}
	// gid<8: half the lanes flagged.
	if got := run(build(isa.BranchAny, 8)); got != 2 {
		t.Errorf("any(half) = %d, want taken", got)
	}
	if got := run(build(isa.BranchAll, 8)); got != 1 {
		t.Errorf("all(half) = %d, want fall-through", got)
	}
	if got := run(build(isa.BranchAll, 16)); got != 2 {
		t.Errorf("all(all) = %d, want taken", got)
	}
	if got := run(build(isa.BranchNone, 0)); got != 2 {
		t.Errorf("none(none) = %d, want taken", got)
	}
	if got := run(build(isa.BranchNone, 8)); got != 1 {
		t.Errorf("none(half) = %d, want fall-through", got)
	}
}

// TestBlockLoadStore: contiguous block messages move width*elem bytes
// addressed by channel 0.
func TestBlockLoadStore(t *testing.T) {
	a := asm.NewKernel("blk", isa.W16)
	in := a.Surface(0)
	out := a.Surface(1)
	addr, v := a.Temp(), a.Temp()
	a.SetWidth(1)
	a.MovI(addr, 64) // block base
	a.SetWidth(0)
	a.LoadBlock(v, addr, in, 4)
	a.AddI(v, v, 1)
	a.StoreBlock(out, addr, v, 4)
	a.End()
	k := a.MustBuild()
	dev, _ := New(IvyBridgeHD4000())
	src, _ := NewBuffer(256)
	dst, _ := NewBuffer(256)
	for i := 0; i < 16; i++ {
		if err := src.WriteU32(64+4*i, uint32(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := dev.Run(Dispatch{Binary: compile(t, k), Surfaces: []*Buffer{src, dst}, GlobalWorkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dst.ReadU32(64, 16)
	for i, v := range got {
		if v != uint32(101+i) {
			t.Errorf("lane %d: %d, want %d", i, v, 101+i)
		}
	}
	if st.BytesRead != 64 || st.BytesWritten != 64 {
		t.Errorf("bytes = %d/%d, want 64/64", st.BytesRead, st.BytesWritten)
	}
}

// TestTimerMessageAdvances: timer reads within a thread are monotone.
func TestTimerMessageAdvances(t *testing.T) {
	a := asm.NewKernel("timer", isa.W16)
	out := a.Surface(0)
	addr, t0, t1 := a.Temp(), a.Temp(), a.Temp()
	a.Timer(t0)
	// Burn some cycles.
	x := a.Temp()
	a.MovI(x, 1)
	for i := 0; i < 20; i++ {
		a.Mul(x, asm.R(x), asm.I(3))
	}
	a.Timer(t1)
	a.Sub(t1, asm.R(t1), asm.R(t0))
	// Timer values land in channel 0 only, so store scalar.
	a.SetWidth(1)
	a.MovI(addr, 0)
	a.Store(out, addr, t1, 4)
	a.SetWidth(0)
	a.End()
	dev, _ := New(IvyBridgeHD4000())
	buf, _ := NewBuffer(64)
	if _, err := dev.Run(Dispatch{Binary: compile(t, a.MustBuild()), Surfaces: []*Buffer{buf}, GlobalWorkSize: 16}); err != nil {
		t.Fatal(err)
	}
	got, _ := buf.ReadU32(0, 1)
	if got[0] == 0 {
		t.Error("timer delta must be positive across 20 instructions")
	}
}
