package device

import "gtpin/internal/engine"

// Buffer is the engine's byte-addressable memory surface. The alias
// keeps the long-standing device API (every layer above binds
// *device.Buffer surfaces) while the engine owns the implementation all
// backends share.
type Buffer = engine.Buffer

// NewBuffer allocates a zeroed surface of the given size in bytes; see
// engine.NewBuffer.
func NewBuffer(size int) (*Buffer, error) { return engine.NewBuffer(size) }
