package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gtpin/internal/faults"
	"gtpin/internal/obs"
)

// maxBodyBytes bounds a job submission body; specs are small.
const maxBodyBytes = 1 << 20

// retryAfterSeconds is the fixed Retry-After hint on draining (503)
// responses, and the fallback for shed (429) responses before any unit
// has completed. Once units flow, 429s hint adaptively instead — see
// retryAfterHint in retryafter.go.
const retryAfterSeconds = "5"

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handler wires the API. One listener serves jobs, health, readiness,
// metrics, and artifacts — the acceptance shape for the daemon.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts", s.handleArtifactList)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() && !s.draining.Load() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
			return
		}
		w.Header().Set("Retry-After", retryAfterSeconds)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, obs.Default().Snapshot())
	})
	return mux
}

// handleSubmit is POST /api/v1/jobs: validate, authenticate, fold the
// tenant policy into the spec, and admit — or shed with 429 when the
// queue or the tenant quota is full, or 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeErr(w, http.StatusServiceUnavailable, "draining: not admitting jobs")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	tenant, pol, ok := s.cfg.Tenants.Lookup(r.Header.Get("X-API-Key"))
	if !ok {
		writeErr(w, http.StatusUnauthorized, "unknown API key")
		return
	}
	spec.applyPolicy(pol)

	// Idempotent resubmission: an existing ID returns the existing job.
	if spec.ID != "" {
		if j, found := s.job(spec.ID); found {
			writeJSON(w, http.StatusOK, j.View())
			return
		}
	} else {
		spec.ID = s.freshID()
	}

	if pol.MaxQueued > 0 && s.tenantJobs(tenant) >= pol.MaxQueued {
		mJobsShed.Inc()
		w.Header().Set("Retry-After", s.retryAfterHint())
		writeErr(w, http.StatusTooManyRequests,
			"tenant %q at max_queued=%d; retry later", tenant, pol.MaxQueued)
		return
	}

	dir := s.jobDir(spec.ID)
	if _, err := os.Stat(dir); err == nil {
		// On disk but not in the registry: a leftover from a recovery
		// skip. Refuse rather than silently reuse foreign state.
		writeErr(w, http.StatusConflict, "job directory %s already exists", spec.ID)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		writeErr(w, http.StatusInternalServerError, "create job dir: %v", err)
		return
	}
	j := newJob(spec.ID, tenant, spec, dir)
	if err := j.persistSpec(); err != nil {
		writeErr(w, http.StatusInternalServerError, "persist job spec: %v", err)
		return
	}
	if err := j.setState(StateQueued, ""); err != nil {
		writeErr(w, http.StatusInternalServerError, "persist job status: %v", err)
		return
	}
	s.register(j)
	if err := s.queue.push(j); err != nil {
		// Shed: roll the admission back completely so a retry of the
		// same ID starts clean.
		s.unregister(j.ID)
		_ = os.RemoveAll(dir)
		mJobsShed.Inc()
		if errors.Is(err, faults.ErrQueueFull) {
			w.Header().Set("Retry-After", s.retryAfterHint())
			writeErr(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	mJobsAdmitted.Inc()
	s.cfg.Logf("gtpind: job %s: admitted (%s, tenant %q, queue depth %d)",
		j.ID, spec.Kind, tenant, s.queue.depth())
	writeJSON(w, http.StatusCreated, j.View())
}

// freshID picks the next free job-NNNN identifier. IDs only need to be
// unique within the state dir; clients that care supply their own.
func (s *Server) freshID() string {
	s.mu.Lock()
	n := len(s.order)
	s.mu.Unlock()
	for ; ; n++ {
		id := fmt.Sprintf("job-%04d", n)
		if _, taken := s.job(id); taken {
			continue
		}
		if _, err := os.Stat(s.jobDir(id)); err == nil {
			continue
		}
		return id
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.listJobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleCancel is DELETE /api/v1/jobs/{id}: a queued job is unlinked
// and settled cancelled; a running job gets its context cancelled and
// settles asynchronously; a terminal job is left alone.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if j.State().Terminal() {
		writeJSON(w, http.StatusOK, j.View())
		return
	}
	j.requestCancel()
	if s.queue.remove(j.ID) {
		// Still queued: settle it here; no worker will ever claim it.
		mJobsCancelled.Inc()
		if err := j.setState(StateCancelled, "cancelled by client"); err != nil {
			s.cfg.Logf("gtpind: job %s: %v", j.ID, err)
		}
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	path := filepath.Join(j.dir, "result.json")
	if _, err := os.Stat(path); err != nil {
		writeErr(w, http.StatusConflict, "job %s has no result yet (state %s)", j.ID, j.State())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, path)
}

// handleArtifactList is GET /api/v1/jobs/{id}/artifacts: the flat file
// inventory a client can fetch by name.
func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	var names []string
	for _, top := range []string{"job.json", "status.json", "result.json"} {
		if _, err := os.Stat(filepath.Join(j.dir, top)); err == nil {
			names = append(names, top)
		}
	}
	if entries, err := os.ReadDir(filepath.Join(j.dir, "state", "units")); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, struct {
		Artifacts []string `json:"artifacts"`
	}{names})
}

// handleArtifact serves one named artifact file. Names are flat — any
// path separator is rejected, so the handler cannot traverse out of the
// job directory.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	name := r.PathValue("name")
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		writeErr(w, http.StatusBadRequest, "invalid artifact name")
		return
	}
	for _, path := range []string{
		filepath.Join(j.dir, "state", "units", name),
		filepath.Join(j.dir, name),
	} {
		if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
			http.ServeFile(w, r, path)
			return
		}
	}
	writeErr(w, http.StatusNotFound, "no such artifact")
}
