package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gtpin/internal/workloads"
)

// newTestServer builds and starts a server on a loopback port, closing
// it at cleanup. cfg.StateDir defaults to a temp dir and cfg.sleep to a
// no-op so retry passes don't slow tests down.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.sleep == nil {
		cfg.sleep = func(context.Context, time.Duration) error { return nil }
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func baseURL(s *Server) string { return "http://" + s.Addr() }

func postJob(t *testing.T, s *Server, spec string, apiKey string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", baseURL(s)+"/api/v1/jobs", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	return v
}

func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not settle (state %s)", j.ID, j.State())
	}
	return j.State()
}

func mustJob(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j, ok := s.job(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	return j
}

// waitState polls until the job reaches want.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockingRunner returns a runner that parks every call until release
// is closed (or the pool context dies), then reports success for every
// unit. It lets tests hold a job "running" deterministically.
func blockingRunner(release <-chan struct{}) runner {
	return func(ctx context.Context, units []workloads.Unit, opts workloads.PoolOptions) ([]workloads.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		outs := make([]workloads.Outcome, len(units))
		for i, u := range units {
			outs[i] = workloads.Outcome{Unit: u}
			if ctx.Err() != nil {
				outs[i].Err = ctx.Err()
				continue
			}
			outs[i].Artifact = &workloads.Artifact{App: u.Spec.Name}
			outs[i].Attempts = 1
			if opts.OnOutcome != nil {
				opts.OnOutcome(outs[i])
			}
		}
		return outs, ctx.Err()
	}
}

const tinySpec = `{"id":"t1","kind":"characterize","apps":["cb-gaussian-buffer"],"scale":"tiny"}`

// TestSubmitPollResultArtifacts drives the happy path end to end with
// the real pool: submit, settle, result, artifact inventory, idempotent
// resubmission.
func TestSubmitPollResultArtifacts(t *testing.T) {
	s := newTestServer(t, Config{})

	resp := postJob(t, s, tinySpec, "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: got %s, want 201", resp.Status)
	}
	v := decodeView(t, resp)
	if v.ID != "t1" || v.State != StateQueued {
		t.Fatalf("submit view = %+v", v)
	}

	j := mustJob(t, s, "t1")
	if st := waitTerminal(t, j); st != StateDone {
		t.Fatalf("job settled %s, want done", st)
	}
	view := j.View()
	if view.UnitsDone != 1 || view.UnitsTotal != 1 {
		t.Fatalf("progress = %+v", view.Progress)
	}

	// Result: canonical, one completed unit with a digest.
	var result resultFile
	resp2, err := http.Get(baseURL(s) + "/api/v1/jobs/t1/result")
	if err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %v %v", err, resp2.Status)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&result); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	resp2.Body.Close()
	if len(result.Units) != 1 || result.Units[0].Status != "completed" || result.Units[0].Digest == "" {
		t.Fatalf("result = %+v", result)
	}

	// Artifact inventory includes the result and the unit artifact.
	resp3, err := http.Get(baseURL(s) + "/api/v1/jobs/t1/artifacts")
	if err != nil {
		t.Fatalf("GET artifacts: %v", err)
	}
	var inv struct {
		Artifacts []string `json:"artifacts"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&inv); err != nil {
		t.Fatalf("decode artifacts: %v", err)
	}
	resp3.Body.Close()
	var unitName string
	for _, name := range inv.Artifacts {
		if strings.HasPrefix(name, "cb-gaussian-buffer") {
			unitName = name
		}
	}
	if unitName == "" || !contains(inv.Artifacts, "result.json") {
		t.Fatalf("artifact inventory = %v", inv.Artifacts)
	}
	resp4, err := http.Get(baseURL(s) + "/api/v1/jobs/t1/artifacts/" + unitName)
	if err != nil || resp4.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact %s: %v %v", unitName, err, resp4.Status)
	}
	resp4.Body.Close()

	// Traversal attempts are rejected outright.
	resp5, err := http.Get(baseURL(s) + "/api/v1/jobs/t1/artifacts/..%2Fjob.json")
	if err != nil {
		t.Fatalf("GET traversal: %v", err)
	}
	resp5.Body.Close()
	if resp5.StatusCode == http.StatusOK {
		t.Fatalf("traversal artifact fetch succeeded")
	}

	// Idempotent resubmission returns the existing job, not a new one.
	resp6 := postJob(t, s, tinySpec, "")
	if resp6.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: got %s, want 200", resp6.Status)
	}
	if v := decodeView(t, resp6); v.State != StateDone {
		t.Fatalf("resubmit view state = %s, want done", v.State)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestQueueFullSheds429 pins the backpressure contract: a full queue
// sheds with 429 + Retry-After and rolls the admission back so the same
// ID can be resubmitted once there is room.
func TestQueueFullSheds429(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{QueueCap: 1, JobWorkers: 1})
	s.runPool = blockingRunner(release)

	submit := func(id string) *http.Response {
		return postJob(t, s, fmt.Sprintf(`{"id":%q,"kind":"subsets","apps":["cb-gaussian-buffer"]}`, id), "")
	}

	r1 := submit("j1")
	r1.Body.Close()
	waitState(t, mustJob(t, s, "j1"), StateRunning) // worker claimed j1
	r2 := submit("j2")                              // fills the queue
	r2.Body.Close()
	if r1.StatusCode != http.StatusCreated || r2.StatusCode != http.StatusCreated {
		t.Fatalf("admissions: %s, %s", r1.Status, r2.Status)
	}

	r3 := submit("j3")
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: got %s, want 429", r3.Status)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	r3.Body.Close()
	if _, ok := s.job("j3"); ok {
		t.Fatalf("shed job left in registry")
	}
	if _, err := os.Stat(s.jobDir("j3")); !os.IsNotExist(err) {
		t.Fatalf("shed job left its directory behind: %v", err)
	}

	close(release)
	waitTerminal(t, mustJob(t, s, "j1"))
	waitTerminal(t, mustJob(t, s, "j2"))

	// Room again: the same ID now admits cleanly.
	r4 := submit("j3")
	if r4.StatusCode != http.StatusCreated {
		t.Fatalf("resubmit after shed: got %s, want 201", r4.Status)
	}
	r4.Body.Close()
	if st := waitTerminal(t, mustJob(t, s, "j3")); st != StateDone {
		t.Fatalf("j3 settled %s", st)
	}
}

// TestTenantPolicies pins closed admission, per-tenant quotas, and the
// policy fold into the persisted spec.
func TestTenantPolicies(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{
		JobWorkers: 1,
		Tenants: NewPolicies(map[string]Tenant{
			"key-alice": {Name: "alice", Policy: Policy{FaultRate: 0.5, FaultSeed: 9, MaxQueued: 1}},
		}),
	})
	s.runPool = blockingRunner(release)

	// No key, or an unknown key: 401.
	r := postJob(t, s, `{"id":"a1","kind":"characterize","apps":["cb-gaussian-buffer"]}`, "")
	r.Body.Close()
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous submit: got %s, want 401", r.Status)
	}
	r = postJob(t, s, `{"id":"a1","kind":"characterize","apps":["cb-gaussian-buffer"]}`, "key-bob")
	r.Body.Close()
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: got %s, want 401", r.Status)
	}

	// Admitted, and the tenant's fault policy overrides the spec's.
	r = postJob(t, s, `{"id":"a1","kind":"characterize","apps":["cb-gaussian-buffer"],"fault_rate":0.01}`, "key-alice")
	r.Body.Close()
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("alice submit: got %s, want 201", r.Status)
	}
	sp, err := readSpec(s.jobDir("a1"))
	if err != nil {
		t.Fatalf("readSpec: %v", err)
	}
	if sp.FaultRate != 0.5 || sp.FaultSeed != 9 {
		t.Fatalf("policy not folded into persisted spec: %+v", sp)
	}

	// Quota: one non-terminal job at a time.
	r = postJob(t, s, `{"id":"a2","kind":"characterize","apps":["cb-gaussian-buffer"]}`, "key-alice")
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: got %s, want 429", r.Status)
	}

	close(release)
	waitTerminal(t, mustJob(t, s, "a1"))
	r = postJob(t, s, `{"id":"a2","kind":"characterize","apps":["cb-gaussian-buffer"]}`, "key-alice")
	r.Body.Close()
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("post-quota submit: got %s, want 201", r.Status)
	}
}

// TestDrainOrderingAndRequeue pins the SIGTERM contract: during the
// drain window /readyz serves 503 while /healthz still answers, a job
// the drain timeout abandons stays resumable, and a queued job survives
// on disk — both re-enter the queue on the next start.
func TestDrainOrderingAndRequeue(t *testing.T) {
	release := make(chan struct{}) // never closed: j1 blocks until cancelled
	dir := t.TempDir()
	var readyzDuringDrain, healthzDuringDrain int
	cfg := Config{
		StateDir:     dir,
		JobWorkers:   1,
		QueueCap:     4,
		DrainTimeout: 100 * time.Millisecond,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.cfg.DrainHook = func() {
		for _, probe := range []struct {
			path string
			dst  *int
		}{{"/readyz", &readyzDuringDrain}, {"/healthz", &healthzDuringDrain}} {
			resp, err := http.Get(baseURL(s) + probe.path)
			if err != nil {
				t.Errorf("GET %s during drain: %v", probe.path, err)
				continue
			}
			*probe.dst = resp.StatusCode
			resp.Body.Close()
		}
	}
	s.runPool = blockingRunner(release)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	for _, id := range []string{"d1", "d2"} {
		r := postJob(t, s, fmt.Sprintf(`{"id":%q,"kind":"characterize","apps":["cb-gaussian-buffer"]}`, id), "")
		r.Body.Close()
		if r.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s: %s", id, r.Status)
		}
	}
	waitState(t, mustJob(t, s, "d1"), StateRunning)

	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if readyzDuringDrain != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", readyzDuringDrain)
	}
	if healthzDuringDrain != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", healthzDuringDrain)
	}
	if _, err := http.Get(baseURL(s) + "/healthz"); err == nil {
		t.Errorf("listener still serving after drain")
	}
	// The obs artifact flushed during drain.
	if _, err := os.Stat(filepath.Join(dir, "metrics.json")); err != nil {
		t.Errorf("metrics.json not flushed: %v", err)
	}

	// d1 was abandoned mid-run (status running), d2 never claimed
	// (status queued): a new life re-queues both.
	s2, err := New(Config{StateDir: dir, JobWorkers: 1})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer s2.Close()
	if got := s2.queue.depth(); got != 2 {
		t.Fatalf("recovered queue depth = %d, want 2", got)
	}
	for _, id := range []string{"d1", "d2"} {
		if _, ok := s2.job(id); !ok {
			t.Errorf("job %s not recovered", id)
		}
	}
}

// TestCancel covers all three cancellation shapes: queued, running, and
// already-terminal.
func TestCancel(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{JobWorkers: 1, QueueCap: 4})
	s.runPool = blockingRunner(release)

	for _, id := range []string{"c1", "c2"} {
		r := postJob(t, s, fmt.Sprintf(`{"id":%q,"kind":"characterize","apps":["cb-gaussian-buffer"]}`, id), "")
		r.Body.Close()
	}
	waitState(t, mustJob(t, s, "c1"), StateRunning)

	del := func(id string) *http.Response {
		req, _ := http.NewRequest("DELETE", baseURL(s)+"/api/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		return resp
	}

	// Queued: settles immediately.
	r := del("c2")
	r.Body.Close()
	if st := waitTerminal(t, mustJob(t, s, "c2")); st != StateCancelled {
		t.Fatalf("c2 settled %s, want cancelled", st)
	}

	// Running: the blocked runner's context dies, job settles cancelled.
	r = del("c1")
	r.Body.Close()
	if st := waitTerminal(t, mustJob(t, s, "c1")); st != StateCancelled {
		t.Fatalf("c1 settled %s, want cancelled", st)
	}

	// Terminal: a no-op.
	r = del("c1")
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel terminal job: got %s, want 200", r.Status)
	}
}

// TestStateDirExclusive pins the daemon-vs-daemon flock: a second
// server on the same state dir fails fast instead of double-replaying
// journals.
func TestStateDirExclusive(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StateDir: dir})
	if _, err := New(Config{StateDir: dir}); err == nil {
		t.Fatalf("second New on live state dir succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatalf("New after Close: %v", err)
	}
	_ = s2.Close()
}

// TestFreshIDSkipsTaken ensures generated IDs dodge both registry
// entries and leftover directories.
func TestFreshIDSkipsTaken(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := os.MkdirAll(s.jobDir("job-0000"), 0o755); err != nil {
		t.Fatal(err)
	}
	id := s.freshID()
	if id == "job-0000" {
		t.Fatalf("freshID returned a taken id")
	}
}

// TestBackoffDeterministicAndCapped pins the retry backoff shape.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 800 * time.Millisecond}
	for pass := 0; pass < 6; pass++ {
		d1 := b.Delay(pass, "job-a")
		d2 := b.Delay(pass, "job-a")
		if d1 != d2 {
			t.Fatalf("pass %d: non-deterministic delay %v != %v", pass, d1, d2)
		}
		nominal := 100 * time.Millisecond << uint(pass)
		if nominal > b.Cap {
			nominal = b.Cap
		}
		if d1 < nominal/2 || d1 >= nominal*3/2 {
			t.Fatalf("pass %d: delay %v outside [%v, %v)", pass, d1, nominal/2, nominal*3/2)
		}
	}
	if b.Delay(0, "job-a") == b.Delay(0, "job-b") {
		t.Fatalf("jitter identical across keys")
	}
}

// TestBreaker pins the consecutive-failure semantics.
func TestBreaker(t *testing.T) {
	b := newBreaker(3)
	seq := []struct {
		failed, trip bool
	}{
		{true, false}, {true, false}, {false, false}, // success resets
		{true, false}, {true, false}, {true, true}, // third consecutive trips
		{true, false}, // already tripped: no second trip signal
	}
	for i, step := range seq {
		if got := b.observe(step.failed); got != step.trip {
			t.Fatalf("step %d: observe(%v) = %v, want %v", i, step.failed, got, step.trip)
		}
	}
	if !b.Tripped() {
		t.Fatalf("breaker not tripped")
	}
	if newBreaker(0).observe(true) {
		t.Fatalf("disabled breaker tripped")
	}
}

// TestJobSpecValidate covers the canonicalization and rejection edges.
func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{Kind: KindCharacterize}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	if good.Scale != "tiny" || good.Trials != 1 || good.Config != "hd4000" {
		t.Fatalf("defaults not filled: %+v", good)
	}
	bad := []JobSpec{
		{},
		{Kind: "explode"},
		{Kind: KindRepro, ID: "../escape"},
		{Kind: KindRepro, ID: ".."},
		{Kind: KindRepro, Scale: "galactic"},
		{Kind: KindRepro, Trials: 65},
		{Kind: KindRepro, Config: "hd9999"},
		{Kind: KindRepro, Apps: []string{"no-such-app"}},
		{Kind: KindRepro, FaultRate: 1.5},
		{Kind: KindRepro, TimeoutSec: -1},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, sp)
		}
	}
}

// TestMetricsEndpoints ensures the obs surface is wired on the same
// listener.
func TestMetricsEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, err := http.Get(baseURL(s) + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %v %v", err, resp.Status)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "gtpind_jobs_admitted_total") {
		t.Fatalf("/metrics missing service counters:\n%s", body.String())
	}
	resp2, err := http.Get(baseURL(s) + "/metrics.json")
	if err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.json: %v %v", err, resp2.Status)
	}
	resp2.Body.Close()
}
