package service

import (
	"fmt"
	"sync"

	"gtpin/internal/faults"
)

// queue is the bounded admission queue. It is a mutex+cond FIFO rather
// than a channel for three reasons the service needs: recovered jobs
// re-enter above the capacity bound (they were admitted by a previous
// life of the daemon — shedding them would lose accepted work), a
// queued job can be removed (cancellation), and closing the queue for
// drain must wake blocked workers while leaving unclaimed items on disk
// for the next start.
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []*Job
	capacity int
	closed   bool
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job, shedding with faults.ErrQueueFull at capacity.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("service: queue closed (draining)")
	}
	if len(q.items) >= q.capacity {
		return fmt.Errorf("service: %w: %d job(s) queued at capacity %d", faults.ErrQueueFull, len(q.items), q.capacity)
	}
	q.items = append(q.items, j)
	mQueueDepth.Set(int64(len(q.items)))
	q.cond.Signal()
	return nil
}

// pushRecovered re-enters a job recovered from a previous life, exempt
// from the capacity bound.
func (q *queue) pushRecovered(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, j)
	mQueueDepth.Set(int64(len(q.items)))
	q.cond.Signal()
}

// pop blocks until a job is available or the queue closes. ok=false
// means the queue is closed; any items still queued stay queued (their
// on-disk state is already "queued", so the next start recovers them).
func (q *queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	mQueueDepth.Set(int64(len(q.items)))
	return j, true
}

// remove unlinks a queued job (cancellation); false if a worker already
// claimed it.
func (q *queue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			mQueueDepth.Set(int64(len(q.items)))
			return true
		}
	}
	return false
}

// depth is the current backlog.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops the queue: pops return false, pushes fail. Items still
// queued are deliberately left in place.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
