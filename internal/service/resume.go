package service

import (
	"fmt"
	"os"
	"path/filepath"
)

// recoverJobs rescans <StateDir>/jobs at startup and rebuilds the
// registry from disk: terminal jobs re-register for listing and
// artifact serving; queued or running jobs — the ones a crash or drain
// interrupted — re-enter the queue (capacity-exempt: they were already
// admitted once) and resume from their runstate journals when a worker
// claims them. Directory order is the recovery order, so listings stay
// deterministic across restarts.
func (s *Server) recoverJobs() error {
	root := filepath.Join(s.cfg.StateDir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("service: scan jobs: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		sp, err := readSpec(dir)
		if err != nil {
			// A torn admission (crash between mkdir and job.json): there
			// is nothing to resume. Leave the directory for inspection.
			s.cfg.Logf("gtpind: recover: skipping %s: %v", e.Name(), err)
			continue
		}
		st, err := readStatus(dir)
		if err != nil {
			s.cfg.Logf("gtpind: recover: skipping %s: %v", e.Name(), err)
			continue
		}
		j := newJob(e.Name(), st.Tenant, sp, dir)
		j.errText = st.Error
		j.progress = st.Progress
		if st.State.Terminal() {
			j.state = st.State
			close(j.done)
			s.register(j)
			continue
		}
		// queued or running: both resume as queued. The journal, not
		// status.json, knows which units already completed.
		j.state = StateQueued
		s.register(j)
		s.queue.pushRecovered(j)
		mJobsResumed.Inc()
		mJobsAdmitted.Inc()
		s.cfg.Logf("gtpind: recover: re-queued job %s (was %s, %d/%d units done)",
			j.ID, st.State, st.Progress.UnitsDone, st.Progress.UnitsTotal)
	}
	return nil
}
