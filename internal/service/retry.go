package service

import (
	"hash/fnv"
	"time"
)

// Backoff computes the delay before a retry pass: capped exponential
// growth from Base, multiplied by a deterministic jitter in [0.5, 1.5)
// derived from (key, pass). Jitter keeps a fleet of daemons retrying
// the same flaky dependency from thundering in lockstep; deriving it
// from the job key instead of a global RNG keeps every run of the same
// job reproducible — the same property the fault injector and the
// pool's virtual-time backoff already have.
type Backoff struct {
	Base time.Duration
	Cap  time.Duration
}

// Delay returns the backoff before retry pass `pass` (0-based: the
// delay between the initial pass and the first retry is Delay(0, ...)).
func (b Backoff) Delay(pass int, key string) time.Duration {
	d := b.Base
	for i := 0; i < pass && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	// Deterministic jitter in [0.5, 1.5): scale by (512 + h%1024)/1024.
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(pass), byte(pass >> 8)})
	frac := h.Sum64() % 1024
	return time.Duration(uint64(d) * (512 + frac) / 1024)
}
