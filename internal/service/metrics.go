package service

import "gtpin/internal/obs"

// Service metrics, registered on the process-wide obs registry so the
// daemon's /metrics endpoint exports them alongside the pool and cache
// metrics from internal/workloads.
var (
	mJobsAdmitted = obs.DefaultCounter("gtpind_jobs_admitted_total",
		"Jobs accepted into the queue (including recovered jobs).")
	mJobsShed = obs.DefaultCounter("gtpind_jobs_shed_total",
		"Job submissions rejected with 429 because the queue was full or a tenant hit its quota.")
	mJobsResumed = obs.DefaultCounter("gtpind_jobs_resumed_total",
		"Jobs re-queued at startup from a previous daemon life.")
	mJobsCompleted = obs.DefaultCounter("gtpind_jobs_completed_total",
		"Jobs that finished with every unit completed.")
	mJobsPartial = obs.DefaultCounter("gtpind_jobs_partial_total",
		"Jobs degraded to partial results (failed or skipped units, or a tripped breaker).")
	mJobsFailed = obs.DefaultCounter("gtpind_jobs_failed_total",
		"Jobs that produced no usable units or hit a job-level error.")
	mJobsCancelled = obs.DefaultCounter("gtpind_jobs_cancelled_total",
		"Jobs cancelled by the client.")
	mJobsInterrupted = obs.DefaultCounter("gtpind_jobs_interrupted_total",
		"Jobs interrupted by drain or shutdown and left resumable on disk.")
	mQueueDepth = obs.DefaultGauge("gtpind_queue_depth",
		"Jobs currently waiting in the admission queue.")
	mJobsRunning = obs.DefaultGauge("gtpind_jobs_running",
		"Jobs currently executing on the pool.")
	mUnitRetries = obs.DefaultCounter("gtpind_unit_retries_total",
		"Failed units re-dispatched by a service-level retry pass.")
	mRetryPasses = obs.DefaultCounter("gtpind_retry_passes_total",
		"Service-level retry passes executed across all jobs.")
	mBreakerTrips = obs.DefaultCounter("gtpind_breaker_trips_total",
		"Per-job circuit breakers tripped by consecutive unit failures.")
)
