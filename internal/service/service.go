// Package service is the fault-tolerant profiling daemon behind
// cmd/gtpind: an HTTP/JSON front end that admits characterize, repro,
// and subsets jobs into a bounded, supervised queue and executes them on
// the existing workloads.RunPool, keeping the process-wide hot caches
// (jit rewrite cache, replay/native memoization) alive across requests.
//
// Robustness is the headline, built from the primitives the earlier
// layers provide rather than re-invented:
//
//   - admission control: a bounded queue that sheds load with HTTP 429 +
//     Retry-After instead of accepting work it would lose (queue.go);
//   - per-job deadlines and context cancellation threaded through the
//     pool, with hung units abandoned via faults.ErrUnitTimeout;
//   - automatic retry of transiently-failed units across passes with
//     capped exponential backoff + deterministic jitter (retry.go),
//     classified by the internal/faults taxonomy;
//   - a per-job circuit breaker that degrades a job to partial results
//     after N consecutive unit failures instead of wedging the queue
//     (breaker.go);
//   - graceful drain on SIGTERM: /readyz flips to not-ready while the
//     listener still serves, admission stops, in-flight jobs finish or
//     stay journaled, obs artifacts are flushed, then the listener
//     closes;
//   - crash-resume: every job owns a runstate state directory (journal +
//     digest-verified artifacts); on restart the daemon rescans job
//     directories and re-executes interrupted jobs to byte-identical
//     artifacts (resume.go), guarded against concurrent CLI runs by the
//     runstate flock claim;
//   - per-tenant policies keyed by API key: fault rate, fault seed, and
//     watchdog budget reuse the deterministic injector so chaos can be
//     dialed per client (tenant.go).
//
// See docs/service.md for the HTTP API and the job lifecycle.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gtpin/internal/fleet"
	"gtpin/internal/obs"
	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// Defaults for Config fields left zero.
const (
	DefaultQueueCap         = 16
	DefaultJobWorkers       = 2
	DefaultMaxRetryPasses   = 2
	DefaultRetryBase        = 500 * time.Millisecond
	DefaultRetryCap         = 8 * time.Second
	DefaultBreakerThreshold = 5
	DefaultDrainTimeout     = 30 * time.Second
)

// Config parameterizes a Server. The zero value of every field selects
// a production-sane default; StateDir is the only required field.
type Config struct {
	// StateDir is the service root: <dir>/LOCK claims it, <dir>/jobs/
	// holds one directory per job (spec, status, runstate journal,
	// artifacts, result).
	StateDir string
	// QueueCap bounds the admission queue; a full queue sheds
	// submissions with 429 + Retry-After. 0 means DefaultQueueCap.
	QueueCap int
	// JobWorkers is the number of jobs executing concurrently.
	JobWorkers int
	// UnitWorkers is the per-job pool shard count (0 = GOMAXPROCS).
	UnitWorkers int
	// MaxRetryPasses bounds service-level retry of transiently-failed
	// units (in addition to the pool's own virtual-time restarts).
	// Negative disables retry passes; 0 means DefaultMaxRetryPasses.
	MaxRetryPasses int
	// RetryBase/RetryCap shape the capped exponential backoff between
	// retry passes; jitter is deterministic per job (retry.go).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold trips a job's circuit breaker after this many
	// consecutive unit failures, degrading the job to partial results.
	// Negative disables the breaker; 0 means DefaultBreakerThreshold.
	BreakerThreshold int
	// DrainTimeout bounds how long Drain waits for in-flight jobs
	// before abandoning them to their journals.
	DrainTimeout time.Duration
	// UnitTimeout bounds each unit attempt's wall time (see
	// workloads.PoolOptions.UnitTimeout). 0 disables.
	UnitTimeout time.Duration
	// MaxRestarts is the pool's per-unit restart budget passthrough
	// (0 = workloads.DefaultMaxRestarts, negative disables).
	MaxRestarts int
	// Tenants maps API keys to policies; nil admits every caller under
	// DefaultPolicy. See tenant.go.
	Tenants *Policies
	// Logf receives one line per lifecycle event; nil logs nothing.
	Logf func(format string, args ...any)
	// DrainHook, when set, runs during Drain after admission has
	// stopped (readyz already serves 503) but before the listener
	// closes — the window in which a load balancer would observe the
	// flip. The smoke harness and tests use it to pin the drain
	// ordering without racing the drain.
	DrainHook func()

	// sleep is the backoff clock, replaceable by tests. nil sleeps on
	// a real timer, honoring ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueCap == 0 {
		out.QueueCap = DefaultQueueCap
	}
	if out.JobWorkers <= 0 {
		out.JobWorkers = DefaultJobWorkers
	}
	switch {
	case out.MaxRetryPasses == 0:
		out.MaxRetryPasses = DefaultMaxRetryPasses
	case out.MaxRetryPasses < 0:
		out.MaxRetryPasses = 0
	}
	if out.RetryBase <= 0 {
		out.RetryBase = DefaultRetryBase
	}
	if out.RetryCap <= 0 {
		out.RetryCap = DefaultRetryCap
	}
	switch {
	case out.BreakerThreshold == 0:
		out.BreakerThreshold = DefaultBreakerThreshold
	case out.BreakerThreshold < 0:
		out.BreakerThreshold = 0
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = DefaultDrainTimeout
	}
	if out.Tenants == nil {
		out.Tenants = OpenPolicies()
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	if out.sleep == nil {
		out.sleep = sleepCtx
	}
	return out
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Server is one daemon instance: the job registry, the bounded queue,
// the worker set, and the HTTP listener.
type Server struct {
	cfg  Config
	lock *runstate.DirLock

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission/recovery order, for deterministic listing

	queue    *queue
	runPool  runner      // workloads.RunPool, replaceable by tests
	runFleet fleetRunner // fleet.Run, replaceable by tests
	lat      latencyTracker

	ready    atomic.Bool
	draining atomic.Bool

	jobCtx     context.Context
	cancelJobs context.CancelFunc
	wg         sync.WaitGroup

	httpSrv *http.Server
	lis     net.Listener
}

// New claims cfg.StateDir, recovers interrupted jobs from its journals
// into the queue, and returns a server ready to Start. The flock claim
// means a second daemon (or a CLI sweep pointed at the same root)
// cannot replay the same journals concurrently.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("service: Config.StateDir is required")
	}
	c := cfg.withDefaults()
	if err := os.MkdirAll(filepath.Join(c.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	lock, err := runstate.AcquireDirLock(c.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        c,
		lock:       lock,
		jobs:       make(map[string]*Job),
		queue:      newQueue(c.QueueCap),
		runPool:    workloads.RunPool,
		runFleet:   fleet.Run,
		jobCtx:     ctx,
		cancelJobs: cancel,
	}
	if err := s.recoverJobs(); err != nil {
		cancel()
		lock.Release()
		return nil, err
	}
	return s, nil
}

// Start binds the listener on addr (":0" picks a free port), starts the
// job workers, and flips /readyz to ready. Serving happens on
// background goroutines; Start returns once the listener is bound.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.httpSrv = &http.Server{Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(lis) }()
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
	s.cfg.Logf("gtpind: serving on http://%s/ (state %s, queue cap %d, %d job workers)",
		lis.Addr(), s.cfg.StateDir, s.cfg.QueueCap, s.cfg.JobWorkers)
	return nil
}

// Addr returns the bound listener address ("" before Start).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// worker drains the queue until it is closed, executing one job at a
// time. A job failure never takes the worker down — executeJob settles
// every error into the job's terminal state.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.executeJob(s.jobCtx, j)
	}
}

// Drain is the SIGTERM path, in strict order: stop admitting (readyz
// flips to not-ready while the listener still serves), let in-flight
// jobs finish — or, past the drain timeout, cancel them so they stay
// journaled for the next start — flush the obs metrics artifact, and
// only then close the listener. Idempotent: the second call waits for
// the first.
func (s *Server) Drain() error {
	if !s.draining.CompareAndSwap(false, true) {
		s.wg.Wait()
		return nil
	}
	s.ready.Store(false)
	s.cfg.Logf("gtpind: draining: admission stopped, %d job(s) queued, waiting up to %v for in-flight jobs",
		s.queue.depth(), s.cfg.DrainTimeout)
	s.queue.close()
	if s.cfg.DrainHook != nil {
		s.cfg.DrainHook()
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.cfg.Logf("gtpind: drain timeout: abandoning in-flight jobs to their journals")
		s.cancelJobs()
		<-done
	}

	var err error
	if werr := s.flushMetrics(); werr != nil {
		err = werr
	}
	if s.httpSrv != nil {
		if cerr := s.httpSrv.Close(); err == nil {
			err = cerr
		}
	}
	if lerr := s.lock.Release(); err == nil {
		err = lerr
	}
	s.cfg.Logf("gtpind: drained")
	return err
}

// Close hard-stops the server: cancel all jobs, then drain the residue.
// Tests and error paths use it; production exits through Drain.
func (s *Server) Close() error {
	s.cancelJobs()
	return s.Drain()
}

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// flushMetrics writes the process metrics snapshot next to the job
// directories, the same artifact the sweep harnesses leave in their
// state dirs.
func (s *Server) flushMetrics() error {
	buf, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("service: marshal metrics: %w", err)
	}
	buf = append(buf, '\n')
	if err := obs.ValidateMetrics(buf); err != nil {
		return fmt.Errorf("service: refusing to write metrics.json: %w", err)
	}
	return runstate.WriteFileAtomic(filepath.Join(s.cfg.StateDir, "metrics.json"), buf)
}

// register adds a job to the registry; jobDir is its on-disk home.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// job looks a job up by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// listJobs snapshots the registry in submission order.
func (s *Server) listJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// tenantJobs counts a tenant's non-terminal jobs, for admission quotas.
func (s *Server) tenantJobs(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.Tenant == tenant && !j.State().Terminal() {
			n++
		}
	}
	return n
}

// jobDir is the on-disk home of one job.
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "jobs", id)
}
