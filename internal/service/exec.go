package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"gtpin/internal/faults"
	"gtpin/internal/fleet"
	"gtpin/internal/runstate"
	"gtpin/internal/workloads"
)

// runner is the pool entry point, injected so tests can script unit
// outcomes without running the real pipeline.
type runner func(ctx context.Context, units []workloads.Unit, opts workloads.PoolOptions) ([]workloads.Outcome, error)

// fleetRunner is the fleet coordinator entry point, injected the same
// way.
type fleetRunner func(ctx context.Context, units []workloads.Unit, opts fleet.Options) ([]workloads.Outcome, error)

// fleetAdapter wraps the fleet coordinator in the pool's runner shape so
// runJob's retry-pass loop drives distributed jobs unchanged: each pass
// leases its pending units across Spec.Fleet worker processes (spawned
// by re-executing this binary) and the merged outcomes come back in the
// same order and byte-for-byte form the in-process pool would produce.
func (s *Server) fleetAdapter(j *Job) runner {
	return func(ctx context.Context, units []workloads.Unit, opts workloads.PoolOptions) ([]workloads.Outcome, error) {
		return s.runFleet(ctx, units, fleet.Options{
			Dir:            filepath.Join(j.dir, "fleet"),
			State:          opts.State,
			Resume:         opts.Resume,
			Workers:        j.Spec.Fleet,
			MaxRestarts:    opts.MaxRestarts,
			UnitTimeout:    opts.UnitTimeout,
			SaveRecordings: opts.SaveRecordings,
			OnOutcome:      opts.OnOutcome,
			Logf: func(format string, args ...any) {
				s.cfg.Logf("gtpind: job "+j.ID+": "+format, args...)
			},
		})
	}
}

// executeJob drives one popped job to rest. Every error settles into a
// terminal job state — workers never die with their job — with one
// deliberate exception: a job interrupted by daemon shutdown keeps its
// on-disk state at "running" so the next start re-queues it.
func (s *Server) executeJob(ctx context.Context, j *Job) {
	if j.State() != StateQueued {
		return // cancelled (or otherwise settled) while queued
	}
	jctx, cancel := context.WithCancel(ctx)
	if j.Spec.TimeoutSec > 0 {
		jctx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
	}
	j.setCancel(cancel)
	defer func() {
		j.setCancel(nil)
		cancel()
	}()

	if err := j.setState(StateRunning, ""); err != nil {
		s.cfg.Logf("gtpind: job %s: %v", j.ID, err)
	}
	mJobsRunning.Inc()
	defer mJobsRunning.Dec()
	s.cfg.Logf("gtpind: job %s: running (%s, tenant %q)", j.ID, j.Spec.Kind, j.Tenant)

	st, errText := s.runJob(jctx, j)

	switch {
	case j.cancelRequested():
		st, errText = StateCancelled, "cancelled by client"
	case ctx.Err() != nil:
		// Daemon shutdown or drain timeout: the job is not over, it is
		// interrupted. Leave status.json at "running" so the next start
		// resumes it from the journal.
		mJobsInterrupted.Inc()
		s.cfg.Logf("gtpind: job %s: interrupted, left resumable", j.ID)
		return
	case jctx.Err() == context.DeadlineExceeded:
		st = StateFailed
		errText = fmt.Sprintf("job deadline (%gs) exceeded; completed units remain journaled", j.Spec.TimeoutSec)
	}

	switch st {
	case StateDone:
		mJobsCompleted.Inc()
	case StatePartial:
		mJobsPartial.Inc()
	case StateCancelled:
		mJobsCancelled.Inc()
	default:
		mJobsFailed.Inc()
	}
	if err := j.setState(st, errText); err != nil {
		s.cfg.Logf("gtpind: job %s: %v", j.ID, err)
	}
	s.cfg.Logf("gtpind: job %s: %s%s", j.ID, st, suffixIf(errText))
}

func suffixIf(errText string) string {
	if errText == "" {
		return ""
	}
	return ": " + errText
}

// runJob executes the job's units on the pool: pass 0 resumes from the
// journal, later passes re-dispatch only transiently-failed units with
// backoff between passes, and the per-job breaker degrades a failing
// job to partial results. It returns the terminal state the job earned;
// the caller overrides it for cancellation/shutdown/deadline.
func (s *Server) runJob(ctx context.Context, j *Job) (State, string) {
	units, err := j.Spec.units(j.Spec.faultOptions())
	if err != nil {
		return StateFailed, err.Error()
	}
	j.mutateProgress(func(p *Progress) { p.UnitsTotal = len(units) })

	sd, err := runstate.OpenDir(filepath.Join(j.dir, "state"))
	if err != nil {
		// Includes ErrStateDirLocked: a CLI sweep owns this journal
		// right now. Fail the job rather than corrupt the journal.
		return StateFailed, err.Error()
	}
	defer sd.Close()
	hasJournal := len(sd.Recovered.Completed())+len(sd.Recovered.InFlight())+len(sd.Recovered.Failed()) > 0

	br := newBreaker(s.cfg.BreakerThreshold)
	backoff := Backoff{Base: s.cfg.RetryBase, Cap: s.cfg.RetryCap}

	run := s.runPool
	if j.Spec.Fleet > 0 {
		run = s.fleetAdapter(j)
	}

	final := make([]workloads.Outcome, len(units))
	pending := make([]int, len(units))
	for i := range pending {
		pending[i] = i
	}

	for pass := 0; ; pass++ {
		passUnits := make([]workloads.Unit, len(pending))
		for k, idx := range pending {
			passUnits[k] = units[idx]
		}
		pctx, pcancel := context.WithCancel(ctx)
		outs, perr := run(pctx, passUnits, workloads.PoolOptions{
			State:          sd,
			Resume:         pass == 0 && hasJournal,
			MaxRestarts:    s.cfg.MaxRestarts,
			SaveRecordings: j.Spec.Kind == KindRepro,
			Workers:        s.cfg.UnitWorkers,
			UnitTimeout:    s.cfg.UnitTimeout,
			OnOutcome: func(o workloads.Outcome) {
				j.noteOutcome(o)
				if o.Err == nil && !o.Resumed && o.WallNs > 0 {
					s.lat.observe(o.WallNs)
				}
				// Cancellation is not a unit failure; everything else
				// (including abandonment) feeds the breaker.
				failed := o.Err != nil && !errors.Is(o.Err, context.Canceled)
				if br.observe(failed) {
					mBreakerTrips.Inc()
					s.cfg.Logf("gtpind: job %s: breaker tripped after %d consecutive failures; degrading to partial",
						j.ID, s.cfg.BreakerThreshold)
					pcancel()
				}
			},
		})
		pcancel()
		for k, idx := range pending {
			if k < len(outs) {
				final[idx] = outs[k]
			}
		}
		tripped := br.Tripped()
		reconcileProgress(j, final, pass+1, tripped)
		if perr != nil && ctx.Err() == nil && !tripped {
			// A pool-level error that is not our own cancellation:
			// journal I/O failed. Nothing downstream is trustworthy.
			return StateFailed, perr.Error()
		}
		if ctx.Err() != nil || tripped {
			break
		}

		retry := retryableIndices(final)
		if len(retry) == 0 || pass >= s.cfg.MaxRetryPasses {
			break
		}
		mRetryPasses.Inc()
		mUnitRetries.Add(uint64(len(retry)))
		j.mutateProgress(func(p *Progress) { p.Retries += len(retry) })
		d := backoff.Delay(pass, j.ID)
		s.cfg.Logf("gtpind: job %s: retry pass %d: %d transient unit(s), backoff %v",
			j.ID, pass+1, len(retry), d)
		if err := s.cfg.sleep(ctx, d); err != nil {
			break
		}
		pending = retry
	}

	done, failed := 0, 0
	var firstErr error
	for i := range final {
		switch {
		case final[i].Artifact != nil:
			done++
		case final[i].Err != nil:
			failed++
			if firstErr == nil {
				firstErr = final[i].Err
			}
		}
	}

	if ctx.Err() != nil {
		return StateFailed, ctx.Err().Error() // caller refines this
	}
	if err := writeResult(j, sd, final); err != nil {
		return StateFailed, err.Error()
	}
	switch {
	case done == len(final):
		return StateDone, ""
	case done == 0:
		return StateFailed, fmt.Sprintf("all %d unit(s) failed; first: %v", len(final), firstErr)
	default:
		text := fmt.Sprintf("%d/%d unit(s) usable", done, len(final))
		if br.Tripped() {
			text += " (breaker tripped)"
		}
		return StatePartial, text
	}
}

// retryableIndices selects the units worth another pass: failed with a
// transient classification. Permanent failures (bad input, panic past
// the restart budget, timeout abandonment) are not retried — the pool
// already spent its restart budget on anything restartable.
func retryableIndices(final []workloads.Outcome) []int {
	var retry []int
	for i := range final {
		if final[i].Err != nil && faults.IsTransient(final[i].Err) {
			retry = append(retry, i)
		}
	}
	return retry
}

// reconcileProgress replaces the approximate live counters with the
// exact merged state at a pass boundary.
func reconcileProgress(j *Job, final []workloads.Outcome, passes int, tripped bool) {
	var p Progress
	p.UnitsTotal = len(final)
	for i := range final {
		switch {
		case final[i].Artifact != nil:
			p.UnitsDone++
			if final[i].Resumed {
				p.UnitsResumed++
			}
		case final[i].Err != nil:
			p.UnitsFailed++
		default:
			p.UnitsSkipped++
		}
	}
	j.mutateProgress(func(old *Progress) {
		p.Retries = old.Retries
		p.Passes = passes
		p.BreakerTripped = old.BreakerTripped || tripped
		*old = p
	})
}

// resultUnit is one row of result.json.
type resultUnit struct {
	Key      string `json:"key"`
	Status   string `json:"status"` // completed | failed | skipped
	Digest   string `json:"digest,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Class    string `json:"class,omitempty"` // fault taxonomy kind for failures
}

// resultFile is result.json, the job's summary artifact. It is
// canonical: unit rows in spec order, digests recomputed from the
// artifact encoding, no timestamps or wall-clock detail — so a resumed
// job and an uninterrupted one write byte-identical results.
type resultFile struct {
	ID     string       `json:"id"`
	Kind   string       `json:"kind"`
	Config string       `json:"config"`
	Scale  string       `json:"scale"`
	Trials int          `json:"trials"`
	Units  []resultUnit `json:"units"`
}

func writeResult(j *Job, sd *runstate.Dir, final []workloads.Outcome) error {
	rf := resultFile{
		ID: j.ID, Kind: j.Spec.Kind, Config: j.Spec.Config,
		Scale: j.Spec.Scale, Trials: j.Spec.Trials,
		Units: make([]resultUnit, 0, len(final)),
	}
	for i := range final {
		o := &final[i]
		ru := resultUnit{Key: o.Unit.Key(), Attempts: o.Attempts}
		switch {
		case o.Artifact != nil:
			data, err := o.Artifact.Encode()
			if err != nil {
				return fmt.Errorf("service: encode artifact for %s: %w", ru.Key, err)
			}
			ru.Status = "completed"
			ru.Digest = runstate.Digest(data)
		case o.Err != nil:
			ru.Status = "failed"
			if ru.Class = faults.Kind(o.Err); ru.Class == "" {
				ru.Class = faults.ClassOf(o.Err).String()
			}
		default:
			ru.Status = "skipped"
			ru.Attempts = 0
		}
		rf.Units = append(rf.Units, ru)
	}
	data, err := json.MarshalIndent(&rf, "", "  ")
	if err != nil {
		return fmt.Errorf("service: marshal result: %w", err)
	}
	return runstate.WriteFileAtomic(filepath.Join(j.dir, "result.json"), append(data, '\n'))
}
