package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash-resume e2e re-execs this test binary as a real gtpind-style
// daemon process (so it can be SIGKILLed), selected by environment.
const (
	envChild    = "GTPIND_E2E_CHILD"
	envState    = "GTPIND_E2E_STATE"
	envAddrFile = "GTPIND_E2E_ADDRFILE"
)

func TestMain(m *testing.M) {
	if os.Getenv(envChild) == "1" {
		runE2EChild()
		return
	}
	os.Exit(m.Run())
}

// runE2EChild is the daemon side of the crash test: start on a loopback
// port, publish the address, serve until SIGTERM (then drain) — or
// until the parent SIGKILLs us, which is the crash under test.
func runE2EChild() {
	srv, err := New(Config{
		StateDir:    os.Getenv(envState),
		JobWorkers:  1,
		UnitWorkers: 1,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatalf("e2e child: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatalf("e2e child: %v", err)
	}
	addrFile := os.Getenv(envAddrFile)
	if err := os.WriteFile(addrFile+".tmp", []byte(srv.Addr()), 0o644); err != nil {
		log.Fatalf("e2e child: %v", err)
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		log.Fatalf("e2e child: %v", err)
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
	<-ch
	if err := srv.Drain(); err != nil {
		log.Fatalf("e2e child: drain: %v", err)
	}
	os.Exit(0)
}

type child struct {
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
}

func startChild(t *testing.T, stateDir string) *child {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envChild+"=1", envState+"="+stateDir, envAddrFile+"="+addrFile)
	out := new(bytes.Buffer)
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			return &child{cmd: cmd, base: "http://" + string(data), out: out}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("child never published its address; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// e2eSpec's shape is chosen for the kill window: each app's FIRST
// trial costs ~2s at full scale, while later trials are nearly free
// (replay-cache memoization). Two apps mean that after the first unit
// completes — the wait condition below — the second app's first trial
// still has ~2s to run, so the SIGKILL reliably lands mid-job.
const e2eSpec = `{"id":"e2e","kind":"characterize","apps":["cb-gaussian-buffer","cb-graphics-t-rex"],"scale":"full","trials":2}`

func submitTo(t *testing.T, base, spec string) {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg := new(bytes.Buffer)
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, msg.String())
	}
}

func pollJob(t *testing.T, base, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var v JobView
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
		}
		if err == nil && v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not settle within %v (last %+v, err %v)", id, timeout, v, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// jobFiles reads the deterministic artifact set of a job: result.json
// plus every unit artifact, keyed by relative name.
func jobFiles(t *testing.T, jobDir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	data, err := os.ReadFile(filepath.Join(jobDir, "result.json"))
	if err != nil {
		t.Fatalf("read result.json: %v", err)
	}
	files["result.json"] = data
	unitsDir := filepath.Join(jobDir, "state", "units")
	entries, err := os.ReadDir(unitsDir)
	if err != nil {
		t.Fatalf("read units dir: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(unitsDir, e.Name()))
		if err != nil {
			t.Fatalf("read unit %s: %v", e.Name(), err)
		}
		files["units/"+e.Name()] = data
	}
	return files
}

// TestCrashResumeByteIdentical is the acceptance e2e: SIGKILL a daemon
// mid-job, restart it on the same state dir, and require the resumed
// job's artifacts — unit profiles and result.json — to be byte-
// identical to an uninterrupted run of the same spec.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("crash e2e spawns real daemon processes; skipped in -short")
	}
	stateDir := filepath.Join(t.TempDir(), "state")

	c1 := startChild(t, stateDir)
	submitTo(t, c1.base, e2eSpec)

	// Wait until the daemon reports at least one unit done — the pool
	// only counts a unit after its artifact is durable and its journal
	// completion is appended, so the kill is guaranteed to leave
	// something for the resume to skip. (Watching the units directory
	// instead is racy: an entry can be a mid-write temp file whose
	// journal record the SIGKILL then tears away, leaving resumed=0.)
	resultPath := filepath.Join(stateDir, "jobs", "e2e", "result.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v JobView
		resp, err := http.Get(c1.base + "/api/v1/jobs/e2e")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
		}
		if err == nil && v.UnitsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			_ = c1.cmd.Process.Kill()
			t.Fatalf("no unit completed (last %+v, err %v); child output:\n%s", v, err, c1.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := os.Stat(resultPath); err == nil {
		t.Fatalf("job finished before the kill; widen the spec")
	}
	if err := c1.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatalf("kill child: %v", err)
	}
	_ = c1.cmd.Wait()

	// Restart on the same state dir: the flock died with the process,
	// the journal survives, the job resumes and completes.
	c2 := startChild(t, stateDir)
	view := pollJob(t, c2.base, "e2e", 2*time.Minute)
	if view.State != StateDone {
		t.Fatalf("resumed job settled %s (%s); child output:\n%s", view.State, view.Error, c2.out.String())
	}
	if view.UnitsResumed == 0 {
		t.Errorf("resumed run re-executed every unit (resumed=0); journal not honored")
	}
	if err := c2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM child: %v", err)
	}
	if err := c2.cmd.Wait(); err != nil {
		t.Fatalf("child drain exit: %v; output:\n%s", err, c2.out.String())
	}
	crashed := jobFiles(t, filepath.Join(stateDir, "jobs", "e2e"))

	// Reference: the same spec, uninterrupted, in-process.
	refDir := filepath.Join(t.TempDir(), "ref")
	s, err := New(Config{StateDir: refDir, JobWorkers: 1, UnitWorkers: 1})
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("reference Start: %v", err)
	}
	submitTo(t, baseURL(s), e2eSpec)
	if st := waitTerminal(t, mustJob(t, s, "e2e")); st != StateDone {
		t.Fatalf("reference job settled %s", st)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("reference drain: %v", err)
	}
	reference := jobFiles(t, filepath.Join(refDir, "jobs", "e2e"))

	// Byte identity, file by file.
	if len(crashed) != len(reference) {
		t.Fatalf("artifact sets differ: crashed %v vs reference %v",
			sortedKeys(crashed), sortedKeys(reference))
	}
	for name, want := range reference {
		got, ok := crashed[name]
		if !ok {
			t.Errorf("crashed run missing %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs after crash-resume (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readJSONFile decodes a JSON file into v, failing the test on any
// error.
func readJSONFile(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

func jsonUnmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("unmarshal: %w", err)
	}
	return nil
}
