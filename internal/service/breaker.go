package service

import "sync"

// breaker is the per-job circuit breaker: after threshold consecutive
// unit failures it trips, and the job stops dispatching further units —
// settling into partial results — instead of grinding through a sweep
// that is evidently broken (a bad binary, a poisoned cache, a tenant
// fault policy dialed past survivability) while the queue backs up
// behind it. Any unit success resets the run of failures.
//
// Outcomes settle concurrently from pool workers, so observe is
// mutex-guarded; with more than one pool worker the exact trip point
// depends on settle order, which is fine — the breaker is a load-relief
// valve, not part of the deterministic artifact path (tripped jobs are
// partial, never silently different).
type breaker struct {
	mu          sync.Mutex
	threshold   int // <= 0 disables
	consecutive int
	tripped     bool
}

func newBreaker(threshold int) *breaker {
	return &breaker{threshold: threshold}
}

// observe records one settled unit; it returns true exactly once, on
// the observation that trips the breaker.
func (b *breaker) observe(failed bool) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !failed {
		b.consecutive = 0
		return false
	}
	b.consecutive++
	if b.consecutive >= b.threshold && !b.tripped {
		b.tripped = true
		return true
	}
	return false
}

// Tripped reports whether the breaker has opened.
func (b *breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}
