package service

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gtpin/internal/faults"
	"gtpin/internal/workloads"
)

// scriptedRunner drives executeJob with a per-(unit, pass) script while
// honoring the pool contract the real RunPool provides: outcomes settle
// in unit order, OnOutcome fires per settled unit, and cancellation
// stops dispatch (undispatched units keep zero-value outcomes, i.e.
// "skipped").
func scriptedRunner(script func(u workloads.Unit, pass int) workloads.Outcome) runner {
	var mu sync.Mutex
	pass := 0
	return func(ctx context.Context, units []workloads.Unit, opts workloads.PoolOptions) ([]workloads.Outcome, error) {
		mu.Lock()
		p := pass
		pass++
		mu.Unlock()
		outs := make([]workloads.Outcome, len(units))
		for i, u := range units {
			outs[i].Unit = u
			if ctx.Err() != nil {
				continue // undispatched
			}
			outs[i] = script(u, p)
			outs[i].Unit = u
			if opts.OnOutcome != nil {
				opts.OnOutcome(outs[i])
			}
		}
		return outs, ctx.Err()
	}
}

func transientErr() error {
	return fmt.Errorf("scripted: %w", faults.ErrSendFault)
}

// TestRetryPassRecoversTransientFailure: a unit that fails transiently
// on the first pass is re-dispatched after backoff and succeeds; the
// job still settles done.
func TestRetryPassRecoversTransientFailure(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, MaxRetryPasses: 2})
	s.runPool = scriptedRunner(func(u workloads.Unit, pass int) workloads.Outcome {
		if pass == 0 && u.TrialSeed == 2 {
			return workloads.Outcome{Err: transientErr(), Attempts: 3}
		}
		return workloads.Outcome{Artifact: &workloads.Artifact{App: u.Spec.Name}, Attempts: 1}
	})

	r := postJob(t, s, `{"id":"r1","kind":"characterize","apps":["cb-gaussian-buffer"],"trials":3}`, "")
	r.Body.Close()
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", r.Status)
	}
	j := mustJob(t, s, "r1")
	if st := waitTerminal(t, j); st != StateDone {
		t.Fatalf("job settled %s (%s), want done", st, j.View().Error)
	}
	v := j.View()
	if v.Passes != 2 || v.Retries != 1 || v.UnitsDone != 3 || v.UnitsFailed != 0 {
		t.Fatalf("progress = %+v", v.Progress)
	}

	// result.json records the recovered unit as completed.
	var rf resultFile
	readJSONFile(t, filepath.Join(s.jobDir("r1"), "result.json"), &rf)
	for _, u := range rf.Units {
		if u.Status != "completed" {
			t.Fatalf("unit %s status %s after retry", u.Key, u.Status)
		}
	}
}

// TestPermanentFailureNotRetried: permanent faults burn no retry
// passes; the job degrades to partial with the failure classified.
func TestPermanentFailureNotRetried(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s := newTestServer(t, Config{JobWorkers: 1, MaxRetryPasses: 3})
	s.runPool = scriptedRunner(func(u workloads.Unit, pass int) workloads.Outcome {
		mu.Lock()
		calls++
		mu.Unlock()
		if u.TrialSeed == 1 {
			return workloads.Outcome{Err: fmt.Errorf("scripted: %w", faults.ErrBadBinary), Attempts: 1}
		}
		return workloads.Outcome{Artifact: &workloads.Artifact{App: u.Spec.Name}, Attempts: 1}
	})

	r := postJob(t, s, `{"id":"p1","kind":"characterize","apps":["cb-gaussian-buffer"],"trials":2}`, "")
	r.Body.Close()
	j := mustJob(t, s, "p1")
	if st := waitTerminal(t, j); st != StatePartial {
		t.Fatalf("job settled %s, want partial", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("permanent failure was re-dispatched: %d unit executions, want 2", calls)
	}
	var rf resultFile
	readJSONFile(t, filepath.Join(s.jobDir("p1"), "result.json"), &rf)
	if rf.Units[0].Status != "failed" || rf.Units[0].Class != "bad kernel binary" {
		t.Fatalf("failed unit row = %+v", rf.Units[0])
	}
}

// TestBreakerDegradesToPartial: consecutive failures trip the per-job
// breaker; the remaining units are skipped, not executed, and the job
// settles partial.
func TestBreakerDegradesToPartial(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, BreakerThreshold: 3, MaxRetryPasses: -1})
	s.runPool = scriptedRunner(func(u workloads.Unit, pass int) workloads.Outcome {
		if u.TrialSeed <= 2 {
			return workloads.Outcome{Artifact: &workloads.Artifact{App: u.Spec.Name}, Attempts: 1}
		}
		return workloads.Outcome{Err: transientErr(), Attempts: 3}
	})

	r := postJob(t, s, `{"id":"b1","kind":"characterize","apps":["cb-gaussian-buffer"],"trials":8}`, "")
	r.Body.Close()
	j := mustJob(t, s, "b1")
	if st := waitTerminal(t, j); st != StatePartial {
		t.Fatalf("job settled %s (%s), want partial", st, j.View().Error)
	}
	v := j.View()
	if !v.BreakerTripped {
		t.Fatalf("breaker not recorded as tripped: %+v", v.Progress)
	}
	if v.UnitsDone != 2 || v.UnitsFailed != 3 || v.UnitsSkipped != 3 {
		t.Fatalf("progress = %+v", v.Progress)
	}
	var rf resultFile
	readJSONFile(t, filepath.Join(s.jobDir("b1"), "result.json"), &rf)
	skipped := 0
	for _, u := range rf.Units {
		if u.Status == "skipped" {
			skipped++
		}
	}
	if skipped != 3 {
		t.Fatalf("result records %d skipped units, want 3", skipped)
	}
}

// TestChaosInjectorDeterministic runs the real pool under the real
// fault injector at rate 1: every execution attempt fails the same way
// every time, so retry passes are exercised end to end and two
// independent runs of the same spec settle identically — including
// their result.json bytes.
func TestChaosInjectorDeterministic(t *testing.T) {
	const spec = `{"id":"x1","kind":"characterize","apps":["cb-gaussian-buffer"],"scale":"tiny","fault_rate":1,"fault_seed":7}`

	run := func() (State, Progress, []byte) {
		s := newTestServer(t, Config{JobWorkers: 1, UnitWorkers: 1, MaxRetryPasses: 1, BreakerThreshold: -1})
		r := postJob(t, s, spec, "")
		r.Body.Close()
		if r.StatusCode != http.StatusCreated {
			t.Fatalf("submit: %s", r.Status)
		}
		j := mustJob(t, s, "x1")
		st := waitTerminal(t, j)
		data, err := os.ReadFile(filepath.Join(s.jobDir("x1"), "result.json"))
		if err != nil {
			t.Fatalf("read result.json: %v", err)
		}
		return st, j.View().Progress, data
	}

	st1, p1, res1 := run()
	st2, p2, res2 := run()
	if st1 != st2 || p1 != p2 {
		t.Fatalf("chaos runs diverged: %s %+v vs %s %+v", st1, p1, st2, p2)
	}
	if string(res1) != string(res2) {
		t.Fatalf("chaos result.json diverged:\n%s\nvs\n%s", res1, res2)
	}
	if st1 == StateDone {
		t.Fatalf("fault rate 1 produced a clean run; injector not engaged")
	}
	var rf resultFile
	if err := jsonUnmarshal(res1, &rf); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	for _, u := range rf.Units {
		if u.Status == "failed" && u.Class == "" {
			t.Fatalf("failed unit missing fault class: %+v", u)
		}
	}
}
