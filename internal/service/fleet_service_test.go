package service

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gtpin/internal/fleet"
	"gtpin/internal/workloads"
)

// TestLatencyTrackerMedian: the ring keeps the newest 64 samples,
// ignores non-positive ones, and reports a stable median.
func TestLatencyTrackerMedian(t *testing.T) {
	var lt latencyTracker
	if lt.median() != 0 {
		t.Fatal("empty tracker reported a median")
	}
	lt.observe(0)
	lt.observe(-5)
	if lt.median() != 0 {
		t.Fatal("non-positive samples were recorded")
	}
	for _, ns := range []int64{1e9, 3e9, 2e9} {
		lt.observe(ns)
	}
	if got := lt.median(); got != 2*time.Second {
		t.Fatalf("median = %v, want 2s", got)
	}
	// Overflow the ring with 10ms samples: the old seconds-scale samples
	// must age out.
	for i := 0; i < 64; i++ {
		lt.observe(10e6)
	}
	if got := lt.median(); got != 10*time.Millisecond {
		t.Fatalf("median after ring wrap = %v, want 10ms", got)
	}
}

// TestRetryAfterHint: the shed hint scales with observed latency and
// queue depth, clamps to [1,120], and falls back to the fixed default
// before any sample exists.
func TestRetryAfterHint(t *testing.T) {
	s := &Server{queue: newQueue(64)}
	if got := s.retryAfterHint(); got != retryAfterSeconds {
		t.Fatalf("hint with no samples = %q, want fallback %q", got, retryAfterSeconds)
	}

	s.lat.observe(int64(2 * time.Second))
	if got := s.retryAfterHint(); got != "2" {
		t.Fatalf("hint with 2s median, empty queue = %q, want \"2\"", got)
	}

	for i := 0; i < 3; i++ {
		if err := s.queue.push(newJob(fmt.Sprintf("q%d", i), "", JobSpec{}, "")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.retryAfterHint(); got != "8" {
		t.Fatalf("hint with 2s median, depth 3 = %q, want \"8\" (2s x 4)", got)
	}

	s2 := &Server{queue: newQueue(4)}
	s2.lat.observe(int64(500 * time.Millisecond))
	if got := s2.retryAfterHint(); got != "1" {
		t.Fatalf("sub-second hint = %q, want floor \"1\"", got)
	}
	s3 := &Server{queue: newQueue(4)}
	s3.lat.observe(int64(400 * time.Second))
	if got := s3.retryAfterHint(); got != "120" {
		t.Fatalf("huge hint = %q, want cap \"120\"", got)
	}
}

// TestRetryAfterAdaptiveOn429: once units have flowed, a shed response
// carries the adaptive hint, not the fixed constant.
func TestRetryAfterAdaptiveOn429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, Config{JobWorkers: 1, QueueCap: 1})
	s.runPool = blockingRunner(release)
	s.lat.observe(int64(7 * time.Second))

	// One job runs (blocked), one fills the queue, the third sheds.
	for i := 0; i < 2; i++ {
		r := postJob(t, s, fmt.Sprintf(`{"id":"ra%d","kind":"characterize","apps":["cb-gaussian-buffer"]}`, i), "")
		r.Body.Close()
	}
	waitState(t, mustJob(t, s, "ra0"), StateRunning)
	resp := postJob(t, s, `{"kind":"characterize","apps":["cb-gaussian-buffer"]}`, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %s, want 429", resp.Status)
	}
	// Median 7s, one queued ahead: 7 x 2 = 14.
	if got := resp.Header.Get("Retry-After"); got != "14" {
		t.Fatalf("Retry-After = %q, want \"14\"", got)
	}
}

// TestLatencyFedFromOutcomes: completed unit wall times reach the
// tracker through the job's OnOutcome path; resumed and failed units do
// not.
func TestLatencyFedFromOutcomes(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, QueueCap: 4})
	s.runPool = func(ctx context.Context, units []workloads.Unit, opts workloads.PoolOptions) ([]workloads.Outcome, error) {
		outs := make([]workloads.Outcome, len(units))
		for i, u := range units {
			outs[i] = workloads.Outcome{
				Unit: u, Artifact: &workloads.Artifact{App: u.Spec.Name},
				Attempts: 1, WallNs: int64(3 * time.Second),
			}
			if opts.OnOutcome != nil {
				opts.OnOutcome(outs[i])
			}
		}
		return outs, nil
	}
	r := postJob(t, s, tinySpec, "")
	r.Body.Close()
	if st := waitTerminal(t, mustJob(t, s, "t1")); st != StateDone {
		t.Fatalf("job settled %s, want done", st)
	}
	if got := s.lat.median(); got != 3*time.Second {
		t.Fatalf("tracker median = %v, want 3s", got)
	}
}

// TestFleetJobUsesFleetRunner: a spec with "fleet": N routes execution
// through the fleet coordinator with N workers and the job's own fleet
// scratch dir, while a plain spec never touches it.
func TestFleetJobUsesFleetRunner(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, QueueCap: 4})
	var gotOpts fleet.Options
	calls := 0
	s.runFleet = func(ctx context.Context, units []workloads.Unit, opts fleet.Options) ([]workloads.Outcome, error) {
		calls++
		gotOpts = opts
		outs := make([]workloads.Outcome, len(units))
		for i, u := range units {
			outs[i] = workloads.Outcome{Unit: u, Artifact: &workloads.Artifact{App: u.Spec.Name}, Attempts: 1}
			if opts.OnOutcome != nil {
				opts.OnOutcome(outs[i])
			}
		}
		return outs, nil
	}

	r := postJob(t, s, `{"id":"f1","kind":"characterize","apps":["cb-gaussian-buffer"],"fleet":3}`, "")
	r.Body.Close()
	if st := waitTerminal(t, mustJob(t, s, "f1")); st != StateDone {
		t.Fatalf("fleet job settled %s, want done", st)
	}
	if calls != 1 {
		t.Fatalf("fleet runner called %d times, want 1", calls)
	}
	if gotOpts.Workers != 3 {
		t.Fatalf("fleet Workers = %d, want 3", gotOpts.Workers)
	}
	if want := filepath.Join(s.jobDir("f1"), "fleet"); gotOpts.Dir != want {
		t.Fatalf("fleet Dir = %q, want %q", gotOpts.Dir, want)
	}
	if gotOpts.State == nil {
		t.Fatal("fleet run not wired to the job's state dir")
	}

	// A non-fleet job must stay on the in-process pool.
	r = postJob(t, s, tinySpec, "")
	r.Body.Close()
	if st := waitTerminal(t, mustJob(t, s, "t1")); st != StateDone {
		t.Fatalf("plain job settled %s, want done", st)
	}
	if calls != 1 {
		t.Fatalf("fleet runner called %d times after a plain job, want still 1", calls)
	}
}

// TestJobSpecFleetBounds: out-of-range fleet sizes are rejected at
// validation.
func TestJobSpecFleetBounds(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := postJob(t, s, `{"kind":"characterize","fleet":33}`, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fleet=33 got %s, want 400", resp.Status)
	}
	sp := JobSpec{Kind: KindCharacterize, Fleet: -1}
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("fleet=-1 validated: %v", err)
	}
	sp.Fleet = 32
	if err := sp.Validate(); err != nil {
		t.Fatalf("fleet=32 rejected: %v", err)
	}
}
